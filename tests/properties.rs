//! Property-based integration tests: format equivalences and
//! simulator-vs-golden agreement on arbitrary inputs.

use hht::sparse::{
    kernels, BcsrMatrix, BitVectorMatrix, CooMatrix, CscMatrix, CsrMatrix, DenseVector, DiaMatrix,
    EllMatrix, RleMatrix, SmashMatrix, SparseFormat, SparseVector,
};
use hht::system::config::SystemConfig;
use hht::system::runner;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Arbitrary list of unique-coordinate triplets in an `r x c` matrix.
fn arb_triplets(max_dim: usize) -> impl Strategy<Value = (usize, usize, Vec<(usize, usize, f32)>)> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(move |(r, c)| {
        let entry = (0..r, 0..c, -4i32..=4);
        proptest::collection::vec(entry, 0..=r * c).prop_map(move |es| {
            // Deduplicate coordinates, skip zero values.
            let mut map = BTreeMap::new();
            for (i, j, q) in es {
                if q != 0 {
                    map.insert((i, j), q as f32 * 0.5);
                }
            }
            (r, c, map.into_iter().map(|((i, j), v)| (i, j, v)).collect())
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every format stores exactly the same matrix.
    #[test]
    fn all_formats_agree((r, c, ts) in arb_triplets(12)) {
        let csr = CsrMatrix::from_triplets(r, c, &ts).unwrap();
        let reference = csr.triplets();
        prop_assert_eq!(&CooMatrix::from_triplets(r, c, &ts).unwrap().triplets(), &reference);
        prop_assert_eq!(&CscMatrix::from_triplets(r, c, &ts).unwrap().triplets(), &reference);
        prop_assert_eq!(&BitVectorMatrix::from_triplets(r, c, &ts).unwrap().triplets(), &reference);
        prop_assert_eq!(&RleMatrix::from_triplets(r, c, &ts).unwrap().triplets(), &reference);
        prop_assert_eq!(&SmashMatrix::from_triplets(r, c, &ts).unwrap().triplets(), &reference);
        prop_assert_eq!(&EllMatrix::from_triplets(r, c, &ts).unwrap().triplets(), &reference);
        prop_assert_eq!(&DiaMatrix::from_triplets(r, c, &ts).unwrap().triplets(), &reference);
        // BCSR needs a block size that tiles the matrix: 1x1 always does.
        prop_assert_eq!(&BcsrMatrix::from_triplets(r, c, 1, 1, &ts).unwrap().triplets(), &reference);
    }

    /// Golden SpMV distributes over the dense reconstruction.
    #[test]
    fn golden_spmv_matches_dense((r, c, ts) in arb_triplets(10)) {
        let m = CsrMatrix::from_triplets(r, c, &ts).unwrap();
        let v = DenseVector::from((0..c).map(|i| (i % 5) as f32 - 2.0).collect::<Vec<_>>());
        let sparse_y = kernels::spmv(&m, &v).unwrap();
        let dense_y = m.to_dense().matvec(&v).unwrap();
        prop_assert!(sparse_y.max_abs_diff(&dense_y) < 1e-4);
    }

    /// SpMSpV through the sparse path equals SpMV on the densified vector.
    #[test]
    fn golden_spmspv_matches_spmv((r, c, ts) in arb_triplets(10), mask in proptest::collection::vec(any::<bool>(), 10)) {
        let m = CsrMatrix::from_triplets(r, c, &ts).unwrap();
        let pairs: Vec<(usize, f32)> = (0..c)
            .filter(|i| mask[i % mask.len()])
            .map(|i| (i, (i % 3) as f32 + 0.5))
            .collect();
        let x = SparseVector::from_pairs(c, &pairs).unwrap();
        let a = kernels::spmspv(&m, &x).unwrap();
        let b = kernels::spmv(&m, &x.to_dense()).unwrap();
        prop_assert!(a.max_abs_diff(&b) < 1e-4);
    }

    /// The full cycle-level system (CPU + HHT + SRAM) computes the same
    /// SpMV as the golden kernel on arbitrary small matrices.
    #[test]
    fn system_spmv_matches_golden((r, c, ts) in arb_triplets(8)) {
        let cfg = SystemConfig::paper_default();
        let m = CsrMatrix::from_triplets(r, c, &ts).unwrap();
        let v = DenseVector::from((0..c).map(|i| 1.0 + (i % 4) as f32).collect::<Vec<_>>());
        // Internal verification panics on divergence.
        let base = runner::run_spmv_baseline(&cfg, &m, &v);
        let hht = runner::run_spmv_hht(&cfg, &m, &v);
        prop_assert_eq!(base.y, hht.y);
    }

    /// Both HHT SpMSpV variants agree with the baseline merge on arbitrary
    /// inputs (exercises the chunked-header protocol for all row shapes).
    #[test]
    fn system_spmspv_variants_match((r, c, ts) in arb_triplets(8), mask in proptest::collection::vec(any::<bool>(), 8)) {
        let cfg = SystemConfig::paper_default();
        let m = CsrMatrix::from_triplets(r, c, &ts).unwrap();
        let pairs: Vec<(usize, f32)> = (0..c)
            .filter(|i| mask[i % mask.len()])
            .map(|i| (i, 1.0 - (i % 3) as f32))
            .collect();
        let x = SparseVector::from_pairs(c, &pairs).unwrap();
        let base = runner::run_spmspv_baseline(&cfg, &m, &x);
        let v1 = runner::run_spmspv_hht_v1(&cfg, &m, &x);
        let v2 = runner::run_spmspv_hht_v2(&cfg, &m, &x);
        prop_assert!(v1.y.max_abs_diff(&base.y) < 1e-3);
        prop_assert!(v2.y.max_abs_diff(&base.y) < 1e-3);
    }

    /// Tiled SpMV agrees with the untiled HHT run for arbitrary matrices
    /// and tile sizes (exercises edge tiles, empty tiles, single-tile).
    #[test]
    fn tiled_spmv_matches_untiled((r, c, ts) in arb_triplets(10), tile in 1usize..12) {
        let cfg = SystemConfig::paper_default();
        let m = CsrMatrix::from_triplets(r, c, &ts).unwrap();
        let v = DenseVector::from((0..c).map(|i| 0.25 + (i % 5) as f32).collect::<Vec<_>>());
        let untiled = runner::run_spmv_hht(&cfg, &m, &v);
        let tiled = hht::system::tiling::run_spmv_tiled(&cfg, &m, &v, tile);
        prop_assert!(tiled.out.y.max_abs_diff(&untiled.y) < 1e-3);
    }

    /// MatrixMarket write -> read is the identity on arbitrary matrices.
    #[test]
    fn matrix_market_round_trip((r, c, ts) in arb_triplets(12)) {
        let m = CsrMatrix::from_triplets(r, c, &ts).unwrap();
        let mut buf = Vec::new();
        hht::sparse::io::write_matrix_market(&mut buf, &m).unwrap();
        let back = hht::sparse::io::read_matrix_market_csr(std::io::Cursor::new(buf)).unwrap();
        prop_assert_eq!(back, m);
    }

    /// The programmable (§7) back-end computes the same SpMV as the ASIC
    /// engine on arbitrary inputs.
    #[test]
    fn programmable_matches_asic((r, c, ts) in arb_triplets(8)) {
        let cfg = SystemConfig::paper_default();
        let m = CsrMatrix::from_triplets(r, c, &ts).unwrap();
        let v = DenseVector::from((0..c).map(|i| 1.0 - (i % 3) as f32 * 0.5).collect::<Vec<_>>());
        let asic = runner::run_spmv_hht(&cfg, &m, &v);
        let prog = runner::run_spmv_hht_programmable(&cfg, &m, &v);
        prop_assert_eq!(asic.y, prog.y);
    }

    /// Storage sizes: CSR is never larger than COO; the bit-vector beats
    /// CSR beyond ~2/32 density of index overhead.
    #[test]
    fn storage_relations((r, c, ts) in arb_triplets(12)) {
        let csr = CsrMatrix::from_triplets(r, c, &ts).unwrap();
        let coo = CooMatrix::from_triplets(r, c, &ts).unwrap();
        // CSR: (r+1) + 2*nnz words; COO: 3*nnz words.
        if csr.nnz() > r {
            prop_assert!(csr.storage_bytes() <= coo.storage_bytes());
        }
        let smash = SmashMatrix::from_triplets(r, c, &ts).unwrap();
        let bv = BitVectorMatrix::from_triplets(r, c, &ts).unwrap();
        // SMASH adds only summary levels on top of the level-0 bitmap.
        prop_assert!(smash.storage_bytes() >= bv.storage_bytes());
        prop_assert!(smash.storage_bytes() <= bv.storage_bytes() + 8 * ((r * c).div_ceil(32 * 32) * 4 + 4));
    }
}
