//! End-to-end fault-injection tests: deterministic injection, cycle-domain
//! detection (buffer parity, HHT window-wait timeout), bounded retries,
//! and system-level graceful degradation to the baseline software kernel.

use hht::fault::{FaultConfig, FaultEvent, FaultKind, FaultPlan};
use hht::sparse::generate;
use hht::system::config::{SystemConfig, TraceConfig};
use hht::system::runner;
use proptest::prelude::*;

/// A configuration with the full robustness stack on: timeout/retry
/// protocol in the core, software fallback at the runner.
fn robust_cfg() -> SystemConfig {
    SystemConfig::paper_default().with_hht_timeout(64).with_recovery(true)
}

fn problem(n: usize) -> (hht::sparse::CsrMatrix, hht::sparse::DenseVector) {
    (generate::random_csr(n, n, 0.5, 0xFA11), generate::random_dense_vector(n, 0xFA12))
}

fn plan(events: Vec<(u64, FaultKind)>) -> FaultPlan {
    FaultPlan::new(events.into_iter().map(|(cycle, kind)| FaultEvent::new(cycle, kind)).collect())
}

/// The PR's acceptance criterion: an injected HHT fault that defeats the
/// retry protocol completes with numerically correct results via software
/// fallback and records the recovery in the metrics snapshot.
#[test]
fn dropped_response_recovers_via_software_fallback() {
    let (m, v) = problem(32);
    let clean = runner::run_spmv_hht(&robust_cfg(), &m, &v);
    // A dropped response permanently short-changes one stream window: the
    // retries re-poll but the element never arrives, so the core declares
    // the HHT failed and the runner falls back.
    let p = plan(vec![(400, FaultKind::DropResponse)]);
    let out = runner::run_spmv_hht_with_plan(&robust_cfg(), &m, &v, p);
    assert_eq!(out.y, clean.y, "fallback result must be numerically correct");
    let snap = out.stats.snapshot();
    snap.validate().unwrap();
    assert!(snap.faults.fallbacks >= 1, "no fallback recorded: {:?}", snap.faults);
    assert_eq!(snap.faults.injected, 1);
    assert!(snap.faults.failed_cycles > 0);
    assert!(
        out.stats.cycles > clean.stats.cycles,
        "degraded run must cost more than the clean run"
    );
    let report = out.recovery.expect("recovery report");
    assert!(report.error.contains("HHT failed"), "{}", report.error);
    assert!(report.failed_stats.core.hht_timeouts >= 1);
    assert!(report.failed_stats.core.hht_retries >= 1);
}

/// A transient delay shorter than the retry budget is ridden out by the
/// timeout/retry protocol alone: correct result, no fallback.
#[test]
fn transient_delay_is_absorbed_by_retries() {
    let (m, v) = problem(32);
    let clean = runner::run_spmv_hht(&robust_cfg(), &m, &v);
    let p = plan(vec![(400, FaultKind::DelayResponse { cycles: 150 })]);
    let out = runner::run_spmv_hht_with_plan(&robust_cfg(), &m, &v, p);
    assert_eq!(out.y, clean.y);
    assert!(out.recovery.is_none(), "retries alone should recover: {:?}", out.recovery);
    assert_eq!(out.stats.faults.fallbacks, 0);
    assert!(out.stats.core.hht_timeouts >= 1, "the delay must trip the timeout");
    assert!(out.stats.core.hht_retries >= 1);
    assert!(out.stats.cycles >= clean.stats.cycles);
}

/// A frozen engine resumes by itself; the run completes without even a
/// timeout when the freeze is short.
#[test]
fn engine_stall_resumes_cleanly() {
    let (m, v) = problem(32);
    let clean = runner::run_spmv_hht(&robust_cfg(), &m, &v);
    let p = plan(vec![(300, FaultKind::EngineStall { cycles: 40 })]);
    let out = runner::run_spmv_hht_with_plan(&robust_cfg(), &m, &v, p);
    assert_eq!(out.y, clean.y);
    assert!(out.recovery.is_none());
    assert!(out.stats.cycles >= clean.stats.cycles);
}

/// Corrupting SRAM program data produces a silently wrong accelerated
/// result; the runner's golden check catches it and falls back.
#[test]
fn sram_corruption_is_caught_by_golden_check() {
    use hht::mem::Sram;
    let (m, v) = problem(32);
    let cfg = robust_cfg();
    // The layout is deterministic: recompute it on a scratch SRAM to find
    // where the dense vector lives, then flip a high mantissa/exponent bit
    // in its first element.
    let mut scratch = Sram::new(cfg.ram_size, cfg.ram_word_cycles);
    let l = hht::system::layout::layout_spmv(&mut scratch, &m, &v);
    let p = plan(vec![(1, FaultKind::SramBitFlip { addr: l.v_base, bit: 30 })]);
    let out = runner::run_spmv_hht_with_plan(&cfg, &m, &v, p);
    let clean = runner::run_spmv_hht(&cfg, &m, &v);
    assert_eq!(out.y, clean.y, "fallback must return the uncorrupted result");
    let report = out.recovery.expect("divergence must trigger the fallback");
    assert!(report.error.contains("diverges"), "{}", report.error);
    assert_eq!(out.stats.faults.fallbacks, 1);
}

/// The sticky MMR error bit parks every window read forever. With the
/// timeout protocol *disabled* that becomes a watchdog expiry; the
/// recovery policy still degrades to software instead of erroring.
#[test]
fn watchdog_deadlock_recovers_when_recovery_enabled() {
    let (m, v) = problem(24);
    let mut cfg = SystemConfig::paper_default().with_recovery(true);
    cfg.core.max_cycles = 50_000; // keep the deadlocked attempt cheap
    let p = plan(vec![(200, FaultKind::MmrStickyError)]);
    let out = runner::run_spmv_hht_with_plan(&cfg, &m, &v, p);
    let clean = runner::run_spmv_hht(&cfg, &m, &v);
    assert_eq!(out.y, clean.y);
    let report = out.recovery.expect("watchdog expiry must trigger the fallback");
    assert!(report.error.contains("watchdog"), "{}", report.error);
    assert_eq!(out.stats.faults.fallbacks, 1);
    assert_eq!(report.failed_stats.cycles, 50_000);
}

/// The same deadlock with the recovery policy disabled keeps the seed
/// behaviour: the run fails with the watchdog error (surfaced by the
/// runner as a panic).
#[test]
#[should_panic(expected = "kernel fault: watchdog")]
fn watchdog_deadlock_errors_when_recovery_disabled() {
    let (m, v) = problem(24);
    let mut cfg = SystemConfig::paper_default();
    cfg.core.max_cycles = 50_000;
    let p = plan(vec![(200, FaultKind::MmrStickyError)]);
    let _ = runner::run_spmv_hht_with_plan(&cfg, &m, &v, p);
}

/// With timeout + retries on but recovery off, a permanent fault surfaces
/// the structured `HhtFailed` error (as a runner panic), not a hang.
#[test]
#[should_panic(expected = "kernel fault: HHT failed")]
fn hht_failed_without_recovery_is_an_error() {
    let (m, v) = problem(32);
    let cfg = SystemConfig::paper_default().with_hht_timeout(64);
    let p = plan(vec![(400, FaultKind::DropResponse)]);
    let _ = runner::run_spmv_hht_with_plan(&cfg, &m, &v, p);
}

/// Fault injection, detection, retry and fallback all land on the obs
/// fault track when tracing is enabled.
#[test]
fn fault_lifecycle_is_traced() {
    use hht::obs::{EventKind, Track};
    let (m, v) = problem(32);
    let cfg = robust_cfg().with_trace(TraceConfig::enabled());
    let p = plan(vec![(400, FaultKind::DropResponse)]);
    let out = runner::run_spmv_hht_with_plan(&cfg, &m, &v, p);
    let fault_events: Vec<_> = out.events.iter().filter(|e| e.track == Track::Fault).collect();
    let has = |pred: &dyn Fn(&EventKind) -> bool| fault_events.iter().any(|e| pred(&e.kind));
    assert!(has(&|k| matches!(k, EventKind::FaultInject { what: "drop_response" })));
    assert!(has(&|k| matches!(k, EventKind::FaultDetect { what: "hht_timeout" })));
    assert!(has(&|k| matches!(k, EventKind::Recovery { what: "hht_retry" })));
    assert!(has(&|k| matches!(k, EventKind::FaultDetect { what: "hht_failed" })));
    assert!(has(&|k| matches!(k, EventKind::Recovery { what: "software_fallback" })));
}

/// Seed-driven plans are a pure function of the seed: two runs with the
/// same fault seed are bit-identical, different seeds draw different
/// schedules.
#[test]
fn seeded_fault_runs_are_deterministic() {
    let (m, v) = problem(32);
    let cfg = robust_cfg().with_fault_seed(7);
    let a = runner::run_spmv_hht(&cfg, &m, &v);
    let b = runner::run_spmv_hht(&cfg, &m, &v);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.y, b.y);
    let plan_a = FaultPlan::from_seed(FaultConfig { seed: 7, ..FaultConfig::default() }, 1 << 20);
    let plan_b = FaultPlan::from_seed(FaultConfig { seed: 8, ..FaultConfig::default() }, 1 << 20);
    assert_ne!(plan_a.events(), plan_b.events());
}

// ---------------------------------------------------------------------
// Per-tile fault domains: quarantine, shard failover, chaos campaigns.
// ---------------------------------------------------------------------

use hht::prof::FabricCpi;
use hht::system::fabric::{FabricConfig, TileHealth};

/// Explicit tile-kill schedule: `(cycle, tile)` pairs.
fn kill_plan(kills: &[(u64, u32)]) -> FaultPlan {
    FaultPlan::new(
        kills.iter().map(|&(c, t)| FaultEvent::on_tile(c, FaultKind::TileKill, t)).collect(),
    )
}

/// The tentpole acceptance test: killing one tile of an 8-tile fabric
/// quarantines exactly that fault domain, fails its unfinished row shard
/// over to the 7 survivors, and completes bit-exact — under both
/// schedulers, with exact-sum stats.
#[test]
fn killed_tile_is_quarantined_and_its_shard_fails_over() {
    let (m, v) = problem(64);
    let fab = FabricConfig::scaled(8);
    for eq in [true, false] {
        let cfg = robust_cfg().with_event_queue(eq);
        let clean = runner::run_spmv_fabric(&cfg, fab, &m, &v);
        assert!(clean.recovery.is_none());
        let out = runner::run_spmv_fabric_with_plan(&cfg, fab, &m, &v, kill_plan(&[(100, 3)]));
        assert_eq!(out.y, clean.y, "failover result must be bit-exact (eq={eq})");
        let rec = out.recovery.expect("a killed tile must trigger recovery");
        assert_eq!(rec.health[3], TileHealth::Quarantined);
        assert_eq!(rec.quarantined(), vec![3]);
        assert_eq!(rec.survivors(), 7);
        assert!(rec.fallback.is_none(), "7 survivors must not fall back: {:?}", rec.fallback);
        assert_eq!(rec.attempts.len(), 2, "one failover attempt after the original");
        assert_eq!(rec.attempts[0].failed.len(), 1);
        assert_eq!(rec.attempts[0].failed[0].0, 3, "the report must name the fault domain");
        assert_eq!(rec.attempts[1].shards.len(), 7);
        assert!(rec.attempts[1].shards.iter().all(|&(t, _)| t != 3));
        let merged = out.stats.merged();
        assert_eq!(merged.faults.injected, 1);
        assert_eq!(merged.faults.failovers, 1);
        assert_eq!(merged.faults.fallbacks, 0);
        assert!(merged.faults.failed_cycles > 0);
        merged.snapshot().validate().unwrap();
        FabricCpi::from_fabric(&out.stats).unwrap();
        assert!(out.stats.cycles > clean.stats.cycles, "degradation must be visible");
    }
}

/// Killing every tile leaves no fault domain to fail over to: the run
/// degrades to the whole-run software fallback, still numerically correct.
#[test]
fn killing_every_tile_degrades_to_software_fallback() {
    let (m, v) = problem(32);
    let cfg = robust_cfg();
    let fab = FabricConfig::scaled(2);
    let clean = runner::run_spmv_fabric(&cfg, fab, &m, &v);
    let out = runner::run_spmv_fabric_with_plan(&cfg, fab, &m, &v, kill_plan(&[(50, 0), (50, 1)]));
    assert_eq!(out.y, clean.y);
    let rec = out.recovery.expect("recovery report");
    assert_eq!(rec.survivors(), 0);
    assert_eq!(rec.fallback.as_deref(), Some("every tile quarantined"));
    assert!(rec.fallback_cycles > 0);
    let merged = out.stats.merged();
    assert_eq!(merged.faults.fallbacks, 1);
    assert_eq!(merged.faults.failovers, 2);
    merged.snapshot().validate().unwrap();
}

/// A non-fatal per-tile fault (dropped response defeating the retry
/// protocol) suspects the tile instead of quarantining it: the shard is
/// failed over once, the retry runs clean, and the tile survives with one
/// charged backoff.
#[test]
fn transient_tile_fault_is_retried_with_backoff_not_quarantined() {
    let (m, v) = problem(48);
    let cfg = robust_cfg();
    let fab = FabricConfig::scaled(4);
    let clean = runner::run_spmv_fabric(&cfg, fab, &m, &v);
    let p = FaultPlan::new(vec![FaultEvent::on_tile(400, FaultKind::DropResponse, 2)]);
    let out = runner::run_spmv_fabric_with_plan(&cfg, fab, &m, &v, p);
    assert_eq!(out.y, clean.y);
    let rec = out.recovery.expect("the failed attempt must be recorded");
    assert_eq!(rec.health[2], TileHealth::Suspected { retries: 1 });
    assert_eq!(rec.survivors(), 4, "a suspected tile is not quarantined");
    assert!(rec.fallback.is_none());
    assert_eq!(rec.backoff_cycles, cfg.tile_backoff);
    assert_eq!(rec.attempts.len(), 2);
    // The retry re-shards the unfinished range across all four survivors.
    assert_eq!(rec.attempts[1].shards.len(), 4);
    let merged = out.stats.merged();
    assert_eq!(merged.faults.failovers, 1);
    assert_eq!(merged.faults.fallbacks, 0);
    assert!(out.stats.tiles[2].faults.failed_cycles >= cfg.tile_backoff);
    merged.snapshot().validate().unwrap();
    FabricCpi::from_fabric(&out.stats).unwrap();
}

/// A kill aimed at a tile that has already halted is dropped, not applied:
/// the run stays clean and the drop is counted on that tile.
#[test]
fn kill_after_halt_is_dropped_not_applied() {
    let (m, v) = problem(24);
    let cfg = robust_cfg();
    let fab = FabricConfig::scaled(2);
    let clean = runner::run_spmv_fabric(&cfg, fab, &m, &v);
    // Tile 1 halts well before this cycle; the kill must be discarded.
    let late = clean.stats.tiles[1].cycles + 1;
    let out = runner::run_spmv_fabric_with_plan(&cfg, fab, &m, &v, kill_plan(&[(late, 1)]));
    assert_eq!(out.y, clean.y);
    assert!(out.recovery.is_none(), "a dropped kill must not trigger recovery");
    assert_eq!(out.stats.tiles[1].faults.injected, 0);
    assert_eq!(out.stats.tiles[1].faults.dropped, 1);
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Seeded chaos campaign: kill k of N tiles at random cycles and
    /// require, under BOTH schedulers with identical decisions — bit-exact
    /// output, completion on the N−k survivors without a whole-run
    /// fallback, exact-sum fault accounting, and monotone degradation
    /// (failover never costs more than abandoning the whole run to the
    /// software baseline on top of the failed attempt).
    #[test]
    fn chaos_campaign_kills_degrade_gracefully(
        n_idx in 0usize..3,
        k_raw in 1usize..=3,
        kill_seed in 1u64..100_000,
    ) {
        let n = [2usize, 4, 8][n_idx];
        let k = k_raw.min(n - 1);
        let (m, v) = problem(48);
        let fab = FabricConfig::scaled(n);
        // k distinct victim tiles and kill cycles, derived deterministically
        // from the sampled seed.
        let mut state = kill_seed;
        let mut kills: Vec<(u64, u32)> = Vec::new();
        while kills.len() < k {
            let t = (splitmix(&mut state) % n as u64) as u32;
            if kills.iter().all(|&(_, kt)| kt != t) {
                kills.push((1 + splitmix(&mut state) % 400, t));
            }
        }
        let cfg_eq = robust_cfg().with_event_queue(true);
        let cfg_ls = robust_cfg().with_event_queue(false);
        let clean = runner::run_spmv_fabric(&cfg_eq, fab, &m, &v);
        let base = runner::run_spmv_baseline(&cfg_eq, &m, &v);
        let out = runner::run_spmv_fabric_with_plan(&cfg_eq, fab, &m, &v, kill_plan(&kills));
        let out_ls = runner::run_spmv_fabric_with_plan(&cfg_ls, fab, &m, &v, kill_plan(&kills));
        // Scheduler invariance: identical stats, result and failover
        // decisions under the event queue and the lock-step oracle.
        prop_assert_eq!(&out.stats, &out_ls.stats);
        prop_assert_eq!(&out.y, &out_ls.y);
        prop_assert_eq!(&out.recovery, &out_ls.recovery);
        // Bit-exact output on the survivors.
        prop_assert_eq!(&out.y, &clean.y);
        let merged = out.stats.merged();
        prop_assert!(merged.snapshot().validate().is_ok(),
            "{:?}", merged.snapshot().validate());
        prop_assert!(FabricCpi::from_fabric(&out.stats).is_ok());
        // Kills aimed at tiles that already halted are dropped; only the
        // ones that landed quarantine their domain.
        let killed: Vec<usize> =
            (0..n).filter(|&t| out.stats.tiles[t].faults.injected > 0).collect();
        prop_assert_eq!(merged.faults.injected + merged.faults.dropped, k as u64);
        match &out.recovery {
            None => prop_assert!(killed.is_empty()),
            Some(rec) => {
                prop_assert_eq!(&rec.quarantined(), &killed);
                prop_assert_eq!(rec.survivors(), n - killed.len());
                prop_assert!(rec.fallback.is_none(),
                    "k < n must never fall back: {:?}", rec.fallback);
                // One original attempt plus however many rounds the
                // survivors need to drain the re-queued ranges (each round
                // takes at most `survivors` pending ranges).
                prop_assert!(rec.attempts.len() >= 2);
                prop_assert!(rec.attempts.len() <= 1 + killed.len());
                prop_assert!(rec.attempts[1..].iter().all(|a| a.failed.is_empty()),
                    "retries run clean: {:?}", rec.attempts);
                prop_assert_eq!(merged.faults.failovers, killed.len() as u64);
                prop_assert_eq!(merged.faults.fallbacks, 0);
                prop_assert_eq!(rec.backoff_cycles, 0); // fatal: no retry ladder
                // Monotone degradation.
                prop_assert!(
                    out.stats.cycles <= rec.attempts[0].wall + base.stats.cycles,
                    "failover ({}) costs more than abandoning to software ({} + {})",
                    out.stats.cycles, rec.attempts[0].wall, base.stats.cycles
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever the seed draws, a robust-configured run always ends with
    /// the numerically correct result — recovered by retries or by
    /// fallback — and the fault accounting stays consistent.
    #[test]
    fn any_seeded_fault_ends_numerically_correct(
        fault_seed in 1u64..1_000_000,
        n in 16usize..40,
        seed in 0u64..1_000_000,
    ) {
        let m = generate::random_csr(n, n, 0.5, seed);
        let v = generate::random_dense_vector(n, seed ^ 0xF);
        let clean = runner::run_spmv_hht(&robust_cfg(), &m, &v);
        let cfg = robust_cfg().with_fault(FaultConfig {
            seed: fault_seed,
            max_faults: 3,
            horizon: 2048,
        });
        let out = runner::run_spmv_hht(&cfg, &m, &v);
        prop_assert_eq!(&out.y, &clean.y);
        let snap = out.stats.snapshot();
        prop_assert!(snap.validate().is_ok(), "{:?}", snap.validate());
        if out.recovery.is_some() {
            prop_assert_eq!(snap.faults.fallbacks, 1);
            prop_assert!(snap.faults.failed_cycles > 0);
        } else {
            prop_assert_eq!(snap.faults.fallbacks, 0);
        }
    }
}
