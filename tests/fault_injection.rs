//! End-to-end fault-injection tests: deterministic injection, cycle-domain
//! detection (buffer parity, HHT window-wait timeout), bounded retries,
//! and system-level graceful degradation to the baseline software kernel.

use hht::fault::{FaultConfig, FaultEvent, FaultKind, FaultPlan};
use hht::sparse::generate;
use hht::system::config::{SystemConfig, TraceConfig};
use hht::system::runner;
use proptest::prelude::*;

/// A configuration with the full robustness stack on: timeout/retry
/// protocol in the core, software fallback at the runner.
fn robust_cfg() -> SystemConfig {
    SystemConfig::paper_default().with_hht_timeout(64).with_recovery(true)
}

fn problem(n: usize) -> (hht::sparse::CsrMatrix, hht::sparse::DenseVector) {
    (generate::random_csr(n, n, 0.5, 0xFA11), generate::random_dense_vector(n, 0xFA12))
}

fn plan(events: Vec<(u64, FaultKind)>) -> FaultPlan {
    FaultPlan::new(events.into_iter().map(|(cycle, kind)| FaultEvent::new(cycle, kind)).collect())
}

/// The PR's acceptance criterion: an injected HHT fault that defeats the
/// retry protocol completes with numerically correct results via software
/// fallback and records the recovery in the metrics snapshot.
#[test]
fn dropped_response_recovers_via_software_fallback() {
    let (m, v) = problem(32);
    let clean = runner::run_spmv_hht(&robust_cfg(), &m, &v);
    // A dropped response permanently short-changes one stream window: the
    // retries re-poll but the element never arrives, so the core declares
    // the HHT failed and the runner falls back.
    let p = plan(vec![(400, FaultKind::DropResponse)]);
    let out = runner::run_spmv_hht_with_plan(&robust_cfg(), &m, &v, p);
    assert_eq!(out.y, clean.y, "fallback result must be numerically correct");
    let snap = out.stats.snapshot();
    snap.validate().unwrap();
    assert!(snap.faults.fallbacks >= 1, "no fallback recorded: {:?}", snap.faults);
    assert_eq!(snap.faults.injected, 1);
    assert!(snap.faults.failed_cycles > 0);
    assert!(
        out.stats.cycles > clean.stats.cycles,
        "degraded run must cost more than the clean run"
    );
    let report = out.recovery.expect("recovery report");
    assert!(report.error.contains("HHT failed"), "{}", report.error);
    assert!(report.failed_stats.core.hht_timeouts >= 1);
    assert!(report.failed_stats.core.hht_retries >= 1);
}

/// A transient delay shorter than the retry budget is ridden out by the
/// timeout/retry protocol alone: correct result, no fallback.
#[test]
fn transient_delay_is_absorbed_by_retries() {
    let (m, v) = problem(32);
    let clean = runner::run_spmv_hht(&robust_cfg(), &m, &v);
    let p = plan(vec![(400, FaultKind::DelayResponse { cycles: 150 })]);
    let out = runner::run_spmv_hht_with_plan(&robust_cfg(), &m, &v, p);
    assert_eq!(out.y, clean.y);
    assert!(out.recovery.is_none(), "retries alone should recover: {:?}", out.recovery);
    assert_eq!(out.stats.faults.fallbacks, 0);
    assert!(out.stats.core.hht_timeouts >= 1, "the delay must trip the timeout");
    assert!(out.stats.core.hht_retries >= 1);
    assert!(out.stats.cycles >= clean.stats.cycles);
}

/// A frozen engine resumes by itself; the run completes without even a
/// timeout when the freeze is short.
#[test]
fn engine_stall_resumes_cleanly() {
    let (m, v) = problem(32);
    let clean = runner::run_spmv_hht(&robust_cfg(), &m, &v);
    let p = plan(vec![(300, FaultKind::EngineStall { cycles: 40 })]);
    let out = runner::run_spmv_hht_with_plan(&robust_cfg(), &m, &v, p);
    assert_eq!(out.y, clean.y);
    assert!(out.recovery.is_none());
    assert!(out.stats.cycles >= clean.stats.cycles);
}

/// Corrupting SRAM program data produces a silently wrong accelerated
/// result; the runner's golden check catches it and falls back.
#[test]
fn sram_corruption_is_caught_by_golden_check() {
    use hht::mem::Sram;
    let (m, v) = problem(32);
    let cfg = robust_cfg();
    // The layout is deterministic: recompute it on a scratch SRAM to find
    // where the dense vector lives, then flip a high mantissa/exponent bit
    // in its first element.
    let mut scratch = Sram::new(cfg.ram_size, cfg.ram_word_cycles);
    let l = hht::system::layout::layout_spmv(&mut scratch, &m, &v);
    let p = plan(vec![(1, FaultKind::SramBitFlip { addr: l.v_base, bit: 30 })]);
    let out = runner::run_spmv_hht_with_plan(&cfg, &m, &v, p);
    let clean = runner::run_spmv_hht(&cfg, &m, &v);
    assert_eq!(out.y, clean.y, "fallback must return the uncorrupted result");
    let report = out.recovery.expect("divergence must trigger the fallback");
    assert!(report.error.contains("diverges"), "{}", report.error);
    assert_eq!(out.stats.faults.fallbacks, 1);
}

/// The sticky MMR error bit parks every window read forever. With the
/// timeout protocol *disabled* that becomes a watchdog expiry; the
/// recovery policy still degrades to software instead of erroring.
#[test]
fn watchdog_deadlock_recovers_when_recovery_enabled() {
    let (m, v) = problem(24);
    let mut cfg = SystemConfig::paper_default().with_recovery(true);
    cfg.core.max_cycles = 50_000; // keep the deadlocked attempt cheap
    let p = plan(vec![(200, FaultKind::MmrStickyError)]);
    let out = runner::run_spmv_hht_with_plan(&cfg, &m, &v, p);
    let clean = runner::run_spmv_hht(&cfg, &m, &v);
    assert_eq!(out.y, clean.y);
    let report = out.recovery.expect("watchdog expiry must trigger the fallback");
    assert!(report.error.contains("watchdog"), "{}", report.error);
    assert_eq!(out.stats.faults.fallbacks, 1);
    assert_eq!(report.failed_stats.cycles, 50_000);
}

/// The same deadlock with the recovery policy disabled keeps the seed
/// behaviour: the run fails with the watchdog error (surfaced by the
/// runner as a panic).
#[test]
#[should_panic(expected = "kernel fault: watchdog")]
fn watchdog_deadlock_errors_when_recovery_disabled() {
    let (m, v) = problem(24);
    let mut cfg = SystemConfig::paper_default();
    cfg.core.max_cycles = 50_000;
    let p = plan(vec![(200, FaultKind::MmrStickyError)]);
    let _ = runner::run_spmv_hht_with_plan(&cfg, &m, &v, p);
}

/// With timeout + retries on but recovery off, a permanent fault surfaces
/// the structured `HhtFailed` error (as a runner panic), not a hang.
#[test]
#[should_panic(expected = "kernel fault: HHT failed")]
fn hht_failed_without_recovery_is_an_error() {
    let (m, v) = problem(32);
    let cfg = SystemConfig::paper_default().with_hht_timeout(64);
    let p = plan(vec![(400, FaultKind::DropResponse)]);
    let _ = runner::run_spmv_hht_with_plan(&cfg, &m, &v, p);
}

/// Fault injection, detection, retry and fallback all land on the obs
/// fault track when tracing is enabled.
#[test]
fn fault_lifecycle_is_traced() {
    use hht::obs::{EventKind, Track};
    let (m, v) = problem(32);
    let cfg = robust_cfg().with_trace(TraceConfig::enabled());
    let p = plan(vec![(400, FaultKind::DropResponse)]);
    let out = runner::run_spmv_hht_with_plan(&cfg, &m, &v, p);
    let fault_events: Vec<_> = out.events.iter().filter(|e| e.track == Track::Fault).collect();
    let has = |pred: &dyn Fn(&EventKind) -> bool| fault_events.iter().any(|e| pred(&e.kind));
    assert!(has(&|k| matches!(k, EventKind::FaultInject { what: "drop_response" })));
    assert!(has(&|k| matches!(k, EventKind::FaultDetect { what: "hht_timeout" })));
    assert!(has(&|k| matches!(k, EventKind::Recovery { what: "hht_retry" })));
    assert!(has(&|k| matches!(k, EventKind::FaultDetect { what: "hht_failed" })));
    assert!(has(&|k| matches!(k, EventKind::Recovery { what: "software_fallback" })));
}

/// Seed-driven plans are a pure function of the seed: two runs with the
/// same fault seed are bit-identical, different seeds draw different
/// schedules.
#[test]
fn seeded_fault_runs_are_deterministic() {
    let (m, v) = problem(32);
    let cfg = robust_cfg().with_fault_seed(7);
    let a = runner::run_spmv_hht(&cfg, &m, &v);
    let b = runner::run_spmv_hht(&cfg, &m, &v);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.y, b.y);
    let plan_a = FaultPlan::from_seed(FaultConfig { seed: 7, ..FaultConfig::default() }, 1 << 20);
    let plan_b = FaultPlan::from_seed(FaultConfig { seed: 8, ..FaultConfig::default() }, 1 << 20);
    assert_ne!(plan_a.events(), plan_b.events());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever the seed draws, a robust-configured run always ends with
    /// the numerically correct result — recovered by retries or by
    /// fallback — and the fault accounting stays consistent.
    #[test]
    fn any_seeded_fault_ends_numerically_correct(
        fault_seed in 1u64..1_000_000,
        n in 16usize..40,
        seed in 0u64..1_000_000,
    ) {
        let m = generate::random_csr(n, n, 0.5, seed);
        let v = generate::random_dense_vector(n, seed ^ 0xF);
        let clean = runner::run_spmv_hht(&robust_cfg(), &m, &v);
        let cfg = robust_cfg().with_fault(FaultConfig {
            seed: fault_seed,
            max_faults: 3,
            horizon: 2048,
        });
        let out = runner::run_spmv_hht(&cfg, &m, &v);
        prop_assert_eq!(&out.y, &clean.y);
        let snap = out.stats.snapshot();
        prop_assert!(snap.validate().is_ok(), "{:?}", snap.validate());
        if out.recovery.is_some() {
            prop_assert_eq!(snap.faults.fallbacks, 1);
            prop_assert!(snap.faults.failed_cycles > 0);
        } else {
            prop_assert_eq!(snap.faults.fallbacks, 0);
        }
    }
}
