//! Cross-crate integration: every kernel, run end-to-end on the cycle-level
//! system (CPU + HHT + SRAM), must agree numerically with the golden
//! `hht-sparse` kernels across shapes, sparsities and configurations.

use hht::sparse::{generate, kernels, SmashMatrix, SparseFormat};
use hht::system::config::SystemConfig;
use hht::system::runner;

#[test]
fn spmv_matches_golden_across_shapes() {
    let cfg = SystemConfig::paper_default();
    for (rows, cols) in [(1, 1), (1, 16), (16, 1), (7, 13), (33, 65), (64, 64)] {
        let m = generate::random_csr(rows, cols, 0.6, rows as u64 * 131 + cols as u64);
        let v = generate::random_dense_vector(cols, 5);
        // Runners verify against golden internally; also check directly.
        let out = runner::run_spmv_hht(&cfg, &m, &v);
        let gold = kernels::spmv(&m, &v).unwrap();
        assert!(
            out.y.max_abs_diff(&gold) <= 1e-3,
            "{rows}x{cols}: diff {}",
            out.y.max_abs_diff(&gold)
        );
    }
}

#[test]
fn spmv_matches_golden_across_sparsities() {
    let cfg = SystemConfig::paper_default();
    for s in [0.0, 0.25, 0.5, 0.75, 0.95, 1.0] {
        let m = generate::random_csr(48, 48, s, (s * 100.0) as u64 + 3);
        let v = generate::random_dense_vector(48, 6);
        runner::run_spmv_baseline(&cfg, &m, &v);
        runner::run_spmv_hht(&cfg, &m, &v);
    }
}

#[test]
fn spmv_matches_golden_across_vector_widths() {
    let m = generate::random_csr(40, 40, 0.5, 77);
    let v = generate::random_dense_vector(40, 78);
    for vl in [1usize, 2, 4, 8, 16] {
        let cfg = SystemConfig::paper_default().with_vlen(vl);
        let b = runner::run_spmv_baseline(&cfg, &m, &v);
        let h = runner::run_spmv_hht(&cfg, &m, &v);
        assert_eq!(b.y, h.y, "VL={vl}");
    }
}

#[test]
fn spmspv_three_kernels_agree_across_sparsities() {
    let cfg = SystemConfig::paper_default();
    for s in [0.2, 0.5, 0.8, 0.98] {
        let m = generate::random_csr(48, 48, s, (s * 1000.0) as u64);
        let x = generate::random_sparse_vector(48, s, (s * 1000.0) as u64 + 1);
        let base = runner::run_spmspv_baseline(&cfg, &m, &x);
        let v1 = runner::run_spmspv_hht_v1(&cfg, &m, &x);
        let v2 = runner::run_spmspv_hht_v2(&cfg, &m, &x);
        assert!(v1.y.max_abs_diff(&base.y) < 1e-3, "v1 at s={s}");
        assert!(v2.y.max_abs_diff(&base.y) < 1e-3, "v2 at s={s}");
    }
}

#[test]
fn spmspv_with_mismatched_sparsities() {
    // Matrix and vector sparsity need not be equal.
    let cfg = SystemConfig::paper_default();
    let m = generate::random_csr(32, 32, 0.3, 91);
    let x = generate::random_sparse_vector(32, 0.95, 92);
    let base = runner::run_spmspv_baseline(&cfg, &m, &x);
    let v1 = runner::run_spmspv_hht_v1(&cfg, &m, &x);
    assert!(v1.y.max_abs_diff(&base.y) < 1e-3);
}

#[test]
fn smash_hht_agrees_with_csr_hht() {
    let cfg = SystemConfig::paper_default();
    for s in [0.5, 0.9, 0.99] {
        let csr = generate::random_csr(64, 64, s, (s * 100.0) as u64 + 40);
        let smash = SmashMatrix::from_triplets(64, 64, &csr.triplets()).unwrap();
        let v = generate::random_dense_vector(64, 41);
        let a = runner::run_spmv_hht(&cfg, &csr, &v);
        let b = runner::run_smash_spmv_hht(&cfg, &smash, &v);
        assert!(a.y.max_abs_diff(&b.y) < 1e-3, "s={s}");
    }
}

#[test]
fn buffer_counts_do_not_change_results() {
    let m = generate::random_csr(32, 32, 0.5, 55);
    let x = generate::random_sparse_vector(32, 0.5, 56);
    let mut last = None;
    for nb in [1usize, 2, 3, 4] {
        let cfg = SystemConfig::paper_default().with_buffers(nb);
        let out = runner::run_spmspv_hht_v1(&cfg, &m, &x);
        if let Some(prev) = &last {
            assert_eq!(&out.y, prev, "N={nb} changed the numeric result");
        }
        last = Some(out.y);
    }
}

#[test]
fn ram_latency_does_not_change_results() {
    let m = generate::random_csr(32, 32, 0.6, 65);
    let v = generate::random_dense_vector(32, 66);
    let mut last = None;
    for wc in [1u64, 2, 3, 5] {
        let cfg = SystemConfig::paper_default().with_ram_word_cycles(wc);
        let out = runner::run_spmv_hht(&cfg, &m, &v);
        if let Some(prev) = &last {
            assert_eq!(&out.y, prev, "word_cycles={wc} changed the numeric result");
        }
        last = Some(out.y);
    }
}

#[test]
fn empty_and_degenerate_inputs() {
    let cfg = SystemConfig::paper_default();
    // Fully empty matrix.
    let m = generate::random_csr(8, 8, 1.0, 1);
    let v = generate::random_dense_vector(8, 2);
    let out = runner::run_spmv_hht(&cfg, &m, &v);
    assert!(out.y.as_slice().iter().all(|y| *y == 0.0));
    // Empty sparse vector.
    let m = generate::random_csr(8, 8, 0.5, 3);
    let x = hht::sparse::SparseVector::zeros(8);
    let out = runner::run_spmspv_hht_v1(&cfg, &m, &x);
    assert!(out.y.as_slice().iter().all(|y| *y == 0.0));
    let out = runner::run_spmspv_hht_v2(&cfg, &m, &x);
    assert!(out.y.as_slice().iter().all(|y| *y == 0.0));
}

#[test]
fn single_dense_row_matrix() {
    // One row holding every non-zero: exercises chunking across many
    // buffers' worth of elements in a single row.
    let cfg = SystemConfig::paper_default();
    let triplets: Vec<(usize, usize, f32)> = (0..64).map(|c| (0usize, c, 1.0 + c as f32)).collect();
    let m = hht::sparse::CsrMatrix::from_triplets(1, 64, &triplets).unwrap();
    let x = generate::random_sparse_vector(64, 0.3, 9);
    let base = runner::run_spmspv_baseline(&cfg, &m, &x);
    let v1 = runner::run_spmspv_hht_v1(&cfg, &m, &x);
    assert!(v1.y.max_abs_diff(&base.y) < 1e-3);
}
