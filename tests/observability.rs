//! Observability-layer integration tests: the per-cause stall histogram
//! must sum exactly to the coarse wait counters, sinks must never change
//! simulated timing, and the Chrome trace export must stay byte-stable.

use hht::fault::{FaultEvent, FaultKind, FaultPlan};
use hht::mem::DramConfig;
use hht::obs::chrome::chrome_trace_json;
use hht::obs::{Event, EventKind, StallCause, Track};
use hht::sparse::generate;
use hht::system::config::{SystemConfig, TraceConfig};
use hht::system::{runner, MetricsSnapshot};
use proptest::prelude::*;

/// Sinks on or off, the simulated machine must be bit-identical: same
/// cycles, same statistics, same result vector (Fig. 4 reproducibility).
#[test]
fn sinks_never_change_simulated_timing() {
    let m = generate::random_csr(48, 48, 0.6, 77);
    let v = generate::random_dense_vector(48, 78);
    let plain_cfg = SystemConfig::paper_default();
    let traced_cfg =
        SystemConfig::paper_default().with_trace(TraceConfig::enabled().with_instr_trace());
    for run in [runner::run_spmv_baseline, runner::run_spmv_hht] {
        let plain = run(&plain_cfg, &m, &v);
        let traced = run(&traced_cfg, &m, &v);
        assert_eq!(plain.stats, traced.stats);
        assert_eq!(plain.y, traced.y);
        assert!(plain.events.is_empty());
        assert!(!traced.events.is_empty());
    }
}

/// Event-enabled HHT runs populate every track (SpMV never touches the
/// secondary window, so SpMSpV v1 covers that one; the fault track needs
/// an injected fault; the mem-queue track only carries events under the
/// DRAM backend) and export balanced Chrome traces (each `B` slice has a
/// matching `E`).
#[test]
fn traced_runs_cover_all_tracks_with_balanced_slices() {
    let cfg = SystemConfig::paper_default().with_trace(TraceConfig::enabled());
    let m = generate::random_csr(48, 48, 0.6, 41);
    let v = generate::random_dense_vector(48, 42);
    let x = generate::random_sparse_vector(48, 0.6, 43);
    let spmv = runner::run_spmv_hht(&cfg, &m, &v);
    let spmspv = runner::run_spmspv_hht_v1(&cfg, &m, &x);
    // A transient engine stall covers the fault track without perturbing
    // the result (the engine resumes and the run completes normally).
    let plan = FaultPlan::new(vec![FaultEvent::new(5, FaultKind::EngineStall { cycles: 16 })]);
    let faulty = runner::run_spmv_hht_with_plan(&cfg, &m, &v, plan);
    // The DRAM backend covers the mem-queue track (row transitions and
    // in-flight occupancy).
    let dram = runner::run_spmv_hht(&cfg.with_dram(DramConfig::slow_300ns()), &m, &v);
    for track in Track::ALL {
        assert!(
            spmv.events
                .iter()
                .chain(&spmspv.events)
                .chain(&faulty.events)
                .chain(&dram.events)
                .any(|e| e.track == track),
            "no events on track {:?}",
            track
        );
    }
    for events in [&spmv.events, &spmspv.events, &faulty.events, &dram.events] {
        let json = chrome_trace_json(events);
        assert_eq!(json.matches("\"ph\":\"B\"").count(), json.matches("\"ph\":\"E\"").count());
    }
}

/// A tiny event ring drops old events but the export still works and
/// reports the loss.
#[test]
fn bounded_event_ring_degrades_gracefully() {
    let cfg = SystemConfig::paper_default().with_trace(TraceConfig::enabled().with_capacity(32));
    let m = generate::random_csr(32, 32, 0.6, 51);
    let v = generate::random_dense_vector(32, 52);
    let out = runner::run_spmv_hht(&cfg, &m, &v);
    // Three component buses, each capped at 32 retained events.
    assert!(out.events.len() <= 3 * 32);
    let json = chrome_trace_json(&out.events);
    assert!(json.contains("traceEvents"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The fine-grained stall histogram sums exactly to the coarse wait
    /// counters on arbitrary problems, for both SpMV and SpMSpV kernels.
    #[test]
    fn stall_histogram_sums_to_wait_counters(
        n in 8usize..40,
        density_tenths in 2u32..9,
        seed in 0u64..1_000_000,
    ) {
        let cfg = SystemConfig::paper_default();
        let density = density_tenths as f64 / 10.0;
        let m = generate::random_csr(n, n, density, seed);
        let v = generate::random_dense_vector(n, seed ^ 0xABCD);
        let snap = runner::run_spmv_hht(&cfg, &m, &v).stats.snapshot();
        prop_assert!(snap.validate().is_ok(), "{:?}", snap.validate());
        prop_assert_eq!(snap.stalls.cpu_hht_wait(), snap.core.hht_wait_cycles);
        prop_assert_eq!(snap.stalls.arbitration_loss, snap.core.mem_port_stall_cycles);

        let x = generate::random_sparse_vector(n, density, seed ^ 0x5EED);
        let snap2 = runner::run_spmspv_hht_v1(&cfg, &m, &x).stats.snapshot();
        prop_assert!(snap2.validate().is_ok(), "{:?}", snap2.validate());
    }

    /// Sinks-off and sinks-on runs agree cycle-for-cycle on arbitrary
    /// problems, and the snapshot JSON round-trips losslessly.
    #[test]
    fn tracing_is_timing_neutral_and_snapshot_round_trips(
        n in 8usize..32,
        seed in 0u64..1_000_000,
    ) {
        let m = generate::random_csr(n, n, 0.5, seed);
        let v = generate::random_dense_vector(n, seed.wrapping_add(1));
        let plain = runner::run_spmv_hht(&SystemConfig::paper_default(), &m, &v);
        let traced = runner::run_spmv_hht(
            &SystemConfig::paper_default().with_trace(TraceConfig::enabled()),
            &m,
            &v,
        );
        prop_assert_eq!(plain.stats, traced.stats);
        prop_assert_eq!(&plain.y, &traced.y);

        let snap = traced.stats.snapshot();
        let back: MetricsSnapshot = serde_json::from_str(&snap.to_json()).unwrap();
        prop_assert_eq!(back, snap);
    }

    /// On an N-tile fabric the exact-sum invariants hold for *every tile's*
    /// snapshot (each tile's counters are its own, normalized by its own
    /// completion cycle) and for the merged record (normalized by total
    /// tile-time, so every wait fraction stays a proper fraction).
    #[test]
    fn fabric_metrics_validate_per_tile_and_merged(
        n in 16usize..40,
        density_tenths in 2u32..9,
        tiles_log in 0u32..3,
        seed in 0u64..1_000_000,
    ) {
        use hht::system::FabricConfig;
        let cfg = SystemConfig::paper_default();
        let density = density_tenths as f64 / 10.0;
        let m = generate::random_csr(n, n, density, seed);
        let v = generate::random_dense_vector(n, seed ^ 0xFAB);
        let out = runner::run_spmv_fabric(&cfg, FabricConfig::scaled(1usize << tiles_log), &m, &v);
        for t in &out.stats.tiles {
            let snap = t.snapshot();
            prop_assert!(snap.validate().is_ok(), "per-tile: {:?}", snap.validate());
            prop_assert!((0.0..=1.0).contains(&t.cpu_wait_frac()));
            prop_assert!((0.0..=1.0).contains(&t.hht_wait_frac()));
        }
        let merged = out.stats.merged().snapshot();
        prop_assert!(merged.validate().is_ok(), "merged: {:?}", merged.validate());
        let fracs = [
            out.stats.cpu_wait_frac(),
            out.stats.hht_wait_frac(),
            out.stats.bank_conflict_frac(),
        ];
        for f in fracs {
            prop_assert!((0.0..=1.0).contains(&f), "fabric frac {} out of range", f);
        }
    }
}

/// A fixed event stream exercising every event kind and track, used to pin
/// the Chrome trace export byte-for-byte.
fn golden_events() -> Vec<Event> {
    vec![
        Event { cycle: 0, track: Track::HhtBackend, kind: EventKind::SliceBegin("engine") },
        Event { cycle: 1, track: Track::SramPort, kind: EventKind::ArbGrant { requester: "hht" } },
        Event { cycle: 2, track: Track::BufferPrimary, kind: EventKind::BufferLevel { level: 3 } },
        Event { cycle: 2, track: Track::BufferCounts, kind: EventKind::BufferLevel { level: 1 } },
        Event {
            cycle: 3,
            track: Track::CpuPipe,
            kind: EventKind::StallBegin(StallCause::HhtWindowEmpty),
        },
        Event { cycle: 4, track: Track::SramPort, kind: EventKind::ArbConflict { loser: "cpu" } },
        Event {
            cycle: 5,
            track: Track::Fault,
            kind: EventKind::FaultInject { what: "drop_response" },
        },
        Event {
            cycle: 5,
            track: Track::Fault,
            kind: EventKind::FaultDetect { what: "hht_timeout" },
        },
        Event { cycle: 6, track: Track::Fault, kind: EventKind::Recovery { what: "hht_retry" } },
        Event {
            cycle: 6,
            track: Track::CpuPipe,
            kind: EventKind::StallEnd(StallCause::HhtWindowEmpty),
        },
        Event {
            cycle: 7,
            track: Track::CpuPipe,
            kind: EventKind::StallBegin(StallCause::ArbitrationLoss),
        },
        Event {
            cycle: 8,
            track: Track::CpuPipe,
            kind: EventKind::StallEnd(StallCause::ArbitrationLoss),
        },
        Event {
            cycle: 9,
            track: Track::BufferSecondary,
            kind: EventKind::BufferLevel { level: 0 },
        },
        // Deliberately left open: the exporter must auto-close it.
        Event { cycle: 10, track: Track::HhtBackend, kind: EventKind::SliceBegin("drain") },
    ]
}

/// The Chrome trace export is pinned byte-for-byte by a checked-in golden
/// file. Regenerate (after an intentional format change) with
/// `REGEN_GOLDEN=1 cargo test --test observability`.
#[test]
fn chrome_trace_matches_golden_file() {
    let json = chrome_trace_json(&golden_events());
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/chrome_trace.json");
    if std::env::var_os("REGEN_GOLDEN").is_some() {
        std::fs::write(path, &json).unwrap();
    }
    let golden = std::fs::read_to_string(path)
        .expect("missing tests/golden/chrome_trace.json (set REGEN_GOLDEN=1 to create it)");
    assert_eq!(
        json, golden,
        "Chrome trace export changed; if intentional, regenerate with REGEN_GOLDEN=1"
    );
}
