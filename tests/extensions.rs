//! Integration tests for the features beyond the paper's headline
//! evaluation: the programmable HHT (§7), 16×16 tiling (§5.5 fn. 6), the
//! L1D "high-performance integration" (§3.2), the dense-expansion
//! crossover (§6), MatrixMarket I/O, and conv-layer lowering.

use hht::sim::config::CacheGeometry;
use hht::sparse::{generate, io, SparseFormat};
use hht::system::config::SystemConfig;
use hht::system::{experiments, runner, tiling};
use std::io::Cursor;

#[test]
fn programmable_hht_is_correct_but_slower_than_asic() {
    let cfg = SystemConfig::paper_default();
    let m = generate::random_csr(64, 64, 0.6, 3);
    let v = generate::random_dense_vector(64, 4);
    let asic = runner::run_spmv_hht(&cfg, &m, &v);
    let prog = runner::run_spmv_hht_programmable(&cfg, &m, &v);
    assert_eq!(asic.y, prog.y, "both back-ends must compute the same result");
    assert!(
        prog.stats.cycles > asic.stats.cycles,
        "the microprogrammed gather ({}) must cost more than the FSM ({})",
        prog.stats.cycles,
        asic.stats.cycles
    );
}

#[test]
fn programmable_gap_narrows_at_high_sparsity() {
    // Fewer elements per row -> fixed overheads dominate -> the per-element
    // microprogram penalty matters less.
    let cfg = SystemConfig::paper_default();
    let pts = experiments::programmable_ablation(&cfg, 64);
    let lo = &pts[0];
    let hi = &pts[8];
    let gap_lo = lo.asic_speedup() / lo.programmable_speedup();
    let gap_hi = hi.asic_speedup() / hi.programmable_speedup();
    assert!(gap_hi < gap_lo, "gap should narrow: {gap_lo} -> {gap_hi}");
}

#[test]
fn tiled_spmv_matches_untiled_at_paper_tile_size() {
    let cfg = SystemConfig::paper_default();
    let m = generate::random_csr(80, 80, 0.7, 13);
    let v = generate::random_dense_vector(80, 14);
    let untiled = runner::run_spmv_hht(&cfg, &m, &v);
    let tiled = tiling::run_spmv_tiled(&cfg, &m, &v, 16);
    assert!(tiled.out.y.max_abs_diff(&untiled.y) < 1e-3);
    // Tiling costs extra cycles (MMR reprogramming + y read-modify-write).
    assert!(tiled.out.stats.cycles > untiled.stats.cycles);
}

#[test]
fn l1d_changes_timing_not_results() {
    let cfg = SystemConfig::paper_default().with_ram_word_cycles(4);
    let cached = cfg.with_l1d(CacheGeometry::embedded_4k());
    let m = generate::random_csr(64, 64, 0.5, 23);
    let v = generate::random_dense_vector(64, 24);
    let plain = runner::run_spmv_baseline(&cfg, &m, &v);
    let with_cache = runner::run_spmv_baseline(&cached, &m, &v);
    assert_eq!(plain.y, with_cache.y);
    // Sequential CSR streams cache well: the cached baseline is faster on
    // slow memory.
    assert!(
        with_cache.stats.cycles < plain.stats.cycles,
        "cache should help on 4-cycle memory ({} !< {})",
        with_cache.stats.cycles,
        plain.stats.cycles
    );
    assert!(with_cache.stats.core.l1d_hits > with_cache.stats.core.l1d_misses);
}

#[test]
fn l1d_composes_over_dram_backend() {
    // The L1D is a tags-only layer above the memory port: a hit skips the
    // port entirely, a miss issues a burst line fill through the
    // split-transaction request path and pays the DRAM toll (row extras,
    // window, budget) like any other transaction. Stacking it over the
    // DRAM backend must change timing only — same results, fewer slow
    // transactions, and the row extras the core does pay must show up in
    // the per-tile counters.
    use hht::mem::DramConfig;
    let dram = SystemConfig::paper_default().with_dram(DramConfig::slow_300ns());
    let cached = dram.with_l1d(CacheGeometry::embedded_4k());
    let m = generate::random_csr(64, 64, 0.5, 23);
    let v = generate::random_dense_vector(64, 24);
    let plain = runner::run_spmv_baseline(&dram, &m, &v);
    let with_cache = runner::run_spmv_baseline(&cached, &m, &v);
    assert_eq!(plain.y, with_cache.y, "the cache must not change the numeric result");
    assert!(
        with_cache.stats.cycles < plain.stats.cycles,
        "line fills should amortize 300ns-class rows ({} !< {})",
        with_cache.stats.cycles,
        plain.stats.cycles
    );
    assert!(with_cache.stats.core.l1d_hits > with_cache.stats.core.l1d_misses);
    // The misses that do go out pay DRAM row timing.
    let extras = with_cache.stats.sram.cpu_row_hit_extra + with_cache.stats.sram.cpu_row_miss_extra;
    assert!(extras > 0, "line fills over DRAM must accrue row extras");
}

#[test]
fn l1d_over_flat_dram_is_bit_identical_to_l1d_over_shared() {
    // Composability corollary of the flat-Dram differential: inserting a
    // zero-effect DRAM stage under the cache must be observationally
    // invisible, burst line fills included.
    use hht::mem::DramConfig;
    let cached = SystemConfig::paper_default()
        .with_ram_word_cycles(4)
        .with_l1d(CacheGeometry::embedded_4k());
    let m = generate::random_csr(64, 64, 0.5, 23);
    let v = generate::random_dense_vector(64, 24);
    let shared = runner::run_spmv_baseline(&cached, &m, &v);
    let flat = runner::run_spmv_baseline(&cached.with_dram(DramConfig::flat()), &m, &v);
    assert_eq!(shared.stats, flat.stats);
    assert_eq!(shared.y, flat.y);
}

#[test]
fn dense_expansion_crossover_exists_for_the_baseline() {
    let cfg = SystemConfig::paper_default();
    let pts = experiments::crossover(&cfg, 96);
    // At 10% sparsity the dense kernel beats the sparse *baseline*
    // (the [40]/[23] observation)...
    assert!(pts[0].dense_cycles < pts[0].sparse_baseline_cycles);
    // ...but at 90% sparsity sparse wins comfortably.
    assert!(pts[8].sparse_baseline_cycles < pts[8].dense_cycles);
    // The HHT beats the baseline at every sparsity.
    for p in &pts {
        assert!(p.sparse_hht_cycles < p.sparse_baseline_cycles);
    }
}

#[test]
fn matrix_market_round_trips_through_the_simulator() {
    // Write a generated matrix to .mtx, read it back, and run both copies:
    // identical cycle counts and results.
    let cfg = SystemConfig::paper_default();
    let m = generate::random_csr(48, 48, 0.8, 33);
    let mut buf = Vec::new();
    io::write_matrix_market(&mut buf, &m).unwrap();
    let m2 = io::read_matrix_market_csr(Cursor::new(buf)).unwrap();
    assert_eq!(m, m2);
    let v = generate::random_dense_vector(48, 34);
    let a = runner::run_spmv_hht(&cfg, &m, &v);
    let b = runner::run_spmv_hht(&cfg, &m2, &v);
    assert_eq!(a.stats.cycles, b.stats.cycles);
    assert_eq!(a.y, b.y);
}

#[test]
fn conv_layers_lower_and_accelerate() {
    let cfg = SystemConfig::paper_default();
    for (name, layer) in hht::workloads::conv::suite() {
        let w = layer.lowered_weights();
        let patch = layer.input_patch(0);
        let base = runner::run_spmv_baseline(&cfg, &w, &patch);
        let hht_run = runner::run_spmv_hht(&cfg, &w, &patch);
        let speedup = base.stats.cycles as f64 / hht_run.stats.cycles as f64;
        assert!(speedup > 1.3, "{name}: speedup {speedup}");
        assert_eq!(hht_run.y.len(), layer.out_channels);
    }
}

#[test]
fn csc_baseline_is_work_efficient_and_correct() {
    let cfg = SystemConfig::paper_default();
    for s in [0.5, 0.9] {
        let m = generate::random_csr(64, 64, s, 53);
        let x = generate::random_sparse_vector(64, s, 54);
        let merge = runner::run_spmspv_baseline(&cfg, &m, &x);
        let csc = runner::run_spmspv_csc_baseline(&cfg, &m, &x);
        assert!(csc.y.max_abs_diff(&merge.y) < 1e-3);
        // Column scatter does O(touched) work instead of O(rows * x_nnz):
        // it must be much faster than the row merge.
        assert!(
            csc.stats.cycles * 2 < merge.stats.cycles,
            "csc {} vs merge {}",
            csc.stats.cycles,
            merge.stats.cycles
        );
    }
}

#[test]
fn motivation_shows_metadata_dominates_baseline() {
    let cfg = SystemConfig::paper_default();
    let pts = experiments::motivation(&cfg, 96);
    for p in &pts {
        // Algorithm 1: 2 of 3 per-nnz loads are metadata/indirect, plus the
        // row-pointer array.
        assert!(p.metadata_load_fraction > 0.6, "meta fraction {}", p.metadata_load_fraction);
        // Offloading strips both instructions and memory beats from the CPU.
        assert!(p.hht_instr_per_nnz < p.baseline_instr_per_nnz);
        assert!(p.hht_beats_per_nnz < p.baseline_beats_per_nnz / 2.0);
    }
}

#[test]
fn execution_trace_is_inspectable() {
    use hht::isa::Instr;
    use hht::mem::mmio::NullDevice;
    use hht::mem::Sram;
    use hht::sim::{Core, CoreConfig};
    use hht::system::{kernels, layout};
    let cfg = SystemConfig::paper_default();
    let m = generate::random_csr(16, 16, 0.5, 43);
    let v = generate::random_dense_vector(16, 44);
    let mut sram = Sram::new(cfg.ram_size, cfg.ram_word_cycles);
    let l = layout::layout_spmv(&mut sram, &m, &v);
    let program = kernels::spmv_baseline(&l, true);
    let mut core = Core::new(CoreConfig::paper_default(), program);
    core.enable_trace();
    let mut dev = NullDevice;
    let mut now = 0u64;
    while !core.halted() {
        core.step(now, &mut sram, &mut dev);
        now += 1;
        assert!(now < 10_000_000, "runaway");
    }
    // The baseline trace contains gathers; the per-group count matches the
    // strip-mined structure (one vluxei32 per inner iteration).
    let gathers = core.trace().iter().filter(|e| matches!(e.instr, Instr::Vluxei32 { .. })).count();
    let groups: usize = (0..m.rows()).map(|r| m.row_nnz(r).div_ceil(8)).sum();
    assert_eq!(gathers, groups);
    // Disassembled trace mentions the gather mnemonic.
    assert!(core.trace_to_string().contains("vluxei32.v"));
}
