//! `hht-prof` integration tests: the top-down CPI stack must attribute
//! every simulated cycle exactly (per tile, merged, and wall-normalized),
//! profiling must be a pure function of counters (bit-identical with
//! tracing on or off, skip-mode or per-cycle), and the scheduler-lane
//! Chrome export must stay byte-stable.

use hht::fault::FaultConfig;
use hht::prof::{classify, BenchReport, CpiStack, FabricCpi, HostProfile};
use hht::sparse::generate;
use hht::system::config::{SystemConfig, TraceConfig};
use hht::system::{runner, FabricConfig, RunOutput};
use proptest::prelude::*;

/// Run one kernel flavour (the determinism-test grid).
fn run_kernel(cfg: &SystemConfig, kernel: usize, n: usize, sparsity: f64, seed: u64) -> RunOutput {
    let m = generate::random_csr(n, n, sparsity, seed);
    match kernel {
        0 => {
            let v = generate::random_dense_vector(n, seed ^ 1);
            runner::run_spmv_baseline(cfg, &m, &v)
        }
        1 => {
            let v = generate::random_dense_vector(n, seed ^ 1);
            runner::run_spmv_hht(cfg, &m, &v)
        }
        2 => {
            let x = generate::random_sparse_vector(n, sparsity, seed ^ 2);
            runner::run_spmspv_hht_v1(cfg, &m, &x)
        }
        3 => {
            let x = generate::random_sparse_vector(n, sparsity, seed ^ 2);
            runner::run_spmspv_hht_v2(cfg, &m, &x)
        }
        4 => {
            use hht::sparse::{SmashMatrix, SparseFormat};
            let v = generate::random_dense_vector(n, seed ^ 1);
            let sm = SmashMatrix::from_triplets(n, n, &m.triplets()).expect("valid triplets");
            runner::run_smash_spmv_hht(cfg, &sm, &v)
        }
        _ => {
            let v = generate::random_dense_vector(n, seed ^ 1);
            runner::run_spmv_hht_programmable(cfg, &m, &v)
        }
    }
}

/// Build the stack and check the exact-sum invariant.
fn stack_of(out: &RunOutput, label: &str) -> CpiStack {
    let stack = CpiStack::from_stats(&out.stats)
        .unwrap_or_else(|e| panic!("{label}: CPI attribution failed: {e}"));
    assert_eq!(stack.total(), stack.cycles, "{label}: buckets must sum to cycles");
    assert_eq!(stack.cycles, out.stats.cycles, "{label}: stack covers the whole run");
    stack
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every cycle of every kernel lands in exactly one CPI bucket, with
    /// both schedulers, and the stack is a pure function of the (identical)
    /// counters: skip-mode and per-cycle attribution agree bucket-for-bucket.
    #[test]
    fn cpi_stack_sums_exactly_across_kernels_and_schedulers(
        kernel in 0usize..6,
        sparsity_pct in 5u32..95,
        n in 12usize..40,
        seed in 0u64..1_000_000,
    ) {
        let s = sparsity_pct as f64 / 100.0;
        let base = SystemConfig::paper_default();
        let skip = run_kernel(&base.with_cycle_skip(true), kernel, n, s, seed);
        let percycle = run_kernel(&base.with_cycle_skip(false), kernel, n, s, seed);
        let a = stack_of(&skip, "skip");
        let b = stack_of(&percycle, "per-cycle");
        prop_assert_eq!(a, b, "CPI stack must not depend on the scheduler mode");
        // The scheduler split itself *does* differ, but it partitions the
        // same total: stepped + skipped == simulated cycles in both modes.
        prop_assert_eq!(skip.sched.stepped_cycles + skip.sched.skipped_cycles, skip.stats.cycles);
        prop_assert_eq!(percycle.sched.stepped_cycles, percycle.stats.cycles);
        prop_assert_eq!(percycle.sched.skipped_cycles, 0);
    }

    /// The exact-sum invariant survives deterministic fault injection,
    /// including runs that degrade to the software fallback — the failed
    /// attempt's cycles land in the `fault_recovery` bucket.
    #[test]
    fn cpi_stack_sums_exactly_under_fault_injection(
        kernel in 1usize..6,
        fault_seed in 1u64..1_000_000,
        timeout in 16u64..128,
        n in 12usize..32,
        seed in 0u64..1_000_000,
    ) {
        let cfg = SystemConfig::paper_default()
            .with_fault(FaultConfig { seed: fault_seed, max_faults: 3, horizon: 2048 })
            .with_hht_timeout(timeout)
            .with_recovery(true);
        let out = run_kernel(&cfg, kernel, n, 0.5, seed);
        let stack = stack_of(&out, "faulted");
        if out.recovery.is_some() {
            prop_assert!(stack.fault_recovery >= out.stats.faults.failed_cycles);
        }
    }

    /// Fabric runs: the invariant holds for every tile, for the merged
    /// record, and for the wall-normalized view
    /// (`merged.total() + idle_after_halt == wall * tiles`).
    #[test]
    fn fabric_cpi_sums_per_tile_merged_and_wall(
        n in 16usize..40,
        density_tenths in 2u32..9,
        tiles_log in 0u32..3,
        seed in 0u64..1_000_000,
    ) {
        let cfg = SystemConfig::paper_default();
        let m = generate::random_csr(n, n, density_tenths as f64 / 10.0, seed);
        let v = generate::random_dense_vector(n, seed ^ 0xFAB);
        let tiles = 1usize << tiles_log;
        let out = runner::run_spmv_fabric(&cfg, FabricConfig::scaled(tiles), &m, &v);
        let cpi = FabricCpi::from_fabric(&out.stats).expect("fabric attribution");
        prop_assert_eq!(cpi.per_tile.len(), tiles);
        for (t, stack) in cpi.per_tile.iter().enumerate() {
            prop_assert_eq!(stack.total(), stack.cycles, "tile {}", t);
            prop_assert_eq!(stack.cycles, out.stats.tiles[t].cycles, "tile {}", t);
        }
        prop_assert_eq!(cpi.merged.total(), cpi.merged.cycles);
        prop_assert_eq!(
            cpi.merged.total() + cpi.idle_after_halt,
            cpi.wall_cycles * tiles as u64
        );
        prop_assert!((0.0..=1.0).contains(&cpi.idle_frac()));
    }
}

/// Profiling is observability: turning tracing on must not change the CPI
/// stack, the bottleneck verdict, or the scheduler counters.
#[test]
fn profiling_is_bit_identical_with_tracing_on_and_off() {
    let m = generate::random_csr(48, 48, 0.6, 77);
    let v = generate::random_dense_vector(48, 78);
    let plain = runner::run_spmv_hht(&SystemConfig::paper_default(), &m, &v);
    let traced = runner::run_spmv_hht(
        &SystemConfig::paper_default().with_trace(TraceConfig::enabled()),
        &m,
        &v,
    );
    let a = stack_of(&plain, "plain");
    let b = stack_of(&traced, "traced");
    assert_eq!(a, b);
    assert_eq!(plain.sched, traced.sched);
    assert_eq!(classify(&a, &plain.stats), classify(&b, &traced.stats));
    // The slow-memory configuration must expose real memory-wait cycles.
    let slow = runner::run_spmv_hht(&SystemConfig::paper_default().with_ram_word_cycles(4), &m, &v);
    let s = stack_of(&slow, "slow");
    assert!(s.mem_wait() > 0, "4-cycle words must produce memory-wait attribution");
}

/// The skip spans recorded for the trace cover exactly the skipped cycles,
/// and the per-cycle scheduler records none.
#[test]
fn skip_spans_partition_the_skipped_cycles() {
    let cfg = SystemConfig::paper_default().with_trace(TraceConfig::enabled());
    let m = generate::random_csr(48, 48, 0.6, 91);
    let v = generate::random_dense_vector(48, 92);
    let out = runner::run_spmv_fabric(&cfg, FabricConfig::scaled(2), &m, &v);
    assert!(out.sched.skipped_cycles > 0, "cycle-skip must fire on an HHT run");
    let span_total: u64 = out.skip_spans.iter().map(|s| s.len()).sum();
    assert_eq!(span_total, out.sched.skipped_cycles);
    assert_eq!(out.skip_spans.len() as u64, out.sched.skip_spans);
    for w in out.skip_spans.windows(2) {
        assert!(w[0].end <= w[1].start, "spans must be ordered and disjoint");
    }
    let percycle =
        runner::run_spmv_fabric(&cfg.with_cycle_skip(false), FabricConfig::scaled(2), &m, &v);
    assert!(percycle.skip_spans.is_empty());
    assert_eq!(percycle.sched.skipped_cycles, 0);
    // Simulated results are scheduler-independent even though sched differs.
    assert_eq!(out.stats, percycle.stats);
}

/// An overflowing event ring is *reported*, not silent: the drop counters
/// surface in `RunOutput::dropped` and travel with the metrics snapshot.
#[test]
fn ring_overflow_is_counted_and_exported() {
    let m = generate::random_csr(32, 32, 0.6, 51);
    let v = generate::random_dense_vector(32, 52);
    let tiny = SystemConfig::paper_default().with_trace(TraceConfig::enabled().with_capacity(32));
    let out = runner::run_spmv_hht(&tiny, &m, &v);
    assert!(out.dropped.total() > 0, "a 32-slot ring must overflow on this run");
    let snap = out.stats.snapshot().with_drops(out.dropped);
    snap.validate().unwrap();
    let back: hht::system::MetricsSnapshot = serde_json::from_str(&snap.to_json()).unwrap();
    assert_eq!(back, snap);
    assert_eq!(back.dropped, out.dropped);
    // A generous ring drops nothing, and an untraced run has no sinks.
    let roomy = runner::run_spmv_hht(
        &SystemConfig::paper_default().with_trace(TraceConfig::enabled()),
        &m,
        &v,
    );
    assert_eq!(roomy.dropped.total(), 0);
    let untraced = runner::run_spmv_hht(&SystemConfig::paper_default(), &m, &v);
    assert_eq!(untraced.dropped.total(), 0);
}

/// Host self-profiling arithmetic.
#[test]
fn host_profile_derives_throughput_and_skip_efficiency() {
    let p = HostProfile {
        layout_secs: 0.25,
        run_secs: 2.0,
        export_secs: 0.75,
        sim_cycles: 50_000_000,
        stepped_cycles: 10_000_000,
        skipped_cycles: 40_000_000,
    };
    assert_eq!(p.total_secs(), 3.0);
    assert_eq!(p.skip_efficiency(), 0.8);
    assert_eq!(p.sim_mcycles_per_sec(), 25.0);
    let idle = HostProfile::default();
    assert_eq!(idle.skip_efficiency(), 0.0);
    assert_eq!(idle.sim_mcycles_per_sec(), 0.0);
}

/// The committed `BENCH_core.json` parses at the current schema and covers
/// the canonical configurations with sane deterministic metrics.
#[test]
fn committed_bench_report_is_valid() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_core.json");
    let text =
        std::fs::read_to_string(path).expect("BENCH_core.json must be committed at the repo root");
    let report = BenchReport::from_json(&text).unwrap();
    assert_eq!(report.schema, hht::prof::BENCH_SCHEMA);
    for name in ["paper_default", "slow_memory"] {
        let c = report
            .configs
            .iter()
            .find(|c| c.name == name)
            .unwrap_or_else(|| panic!("config '{name}' missing from BENCH_core.json"));
        assert!(c.hht_cycles > 0 && c.baseline_cycles > c.hht_cycles);
        assert!(c.speedup > 1.0);
        assert!(c.host.sim_cycles > 0);
    }
    // The committed baseline gates itself: identical report, no regressions.
    assert!(report.compare(&report, 0.0).is_empty());
}

/// The scheduler-lane Chrome export is pinned byte-for-byte by a golden
/// file. Regenerate (after an intentional format change) with
/// `REGEN_GOLDEN=1 cargo test --test profiling`.
#[test]
fn sched_lane_chrome_trace_matches_golden_file() {
    use hht::obs::chrome::chrome_trace_json_tiles_sched;
    use hht::obs::{Event, EventKind, SkipSpan, Track};
    let tiles = vec![
        vec![
            Event { cycle: 0, track: Track::HhtBackend, kind: EventKind::SliceBegin("engine") },
            Event {
                cycle: 6,
                track: Track::BufferPrimary,
                kind: EventKind::BufferLevel { level: 2 },
            },
        ],
        vec![Event {
            cycle: 1,
            track: Track::SramPort,
            kind: EventKind::ArbGrant { requester: "hht" },
        }],
    ];
    let spans = vec![SkipSpan { start: 2, end: 5 }, SkipSpan { start: 8, end: 16 }];
    let json = chrome_trace_json_tiles_sched(&tiles, &spans);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/chrome_trace_sched.json");
    if std::env::var_os("REGEN_GOLDEN").is_some() {
        std::fs::write(path, &json).unwrap();
    }
    let golden = std::fs::read_to_string(path)
        .expect("missing tests/golden/chrome_trace_sched.json (set REGEN_GOLDEN=1 to create it)");
    assert_eq!(
        json, golden,
        "sched-lane Chrome export changed; if intentional, regenerate with REGEN_GOLDEN=1"
    );
}
