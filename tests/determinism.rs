//! The simulation is fully deterministic: identical inputs produce
//! identical cycle counts, statistics and results — a property the
//! experiment sweeps rely on (and which a real Spike-with-extensions setup
//! also has).

use hht::sparse::generate;
use hht::system::config::SystemConfig;
use hht::system::{experiments, runner};

#[test]
fn repeated_runs_are_bit_identical() {
    let cfg = SystemConfig::paper_default();
    let m = generate::random_csr(48, 48, 0.6, 1234);
    let v = generate::random_dense_vector(48, 1235);
    let a = runner::run_spmv_hht(&cfg, &m, &v);
    let b = runner::run_spmv_hht(&cfg, &m, &v);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.y, b.y);
}

#[test]
fn experiment_points_are_reproducible() {
    let cfg = SystemConfig::paper_default();
    let a = experiments::spmv_point(&cfg, 48, 0.5, 2);
    let b = experiments::spmv_point(&cfg, 48, 0.5, 2);
    assert_eq!(a, b);
    let c = experiments::spmspv_point(&cfg, 48, 0.5, 2, experiments::SpMSpVKind::V1);
    let d = experiments::spmspv_point(&cfg, 48, 0.5, 2, experiments::SpMSpVKind::V1);
    assert_eq!(c, d);
}

#[test]
fn different_seeds_give_different_matrices_same_trends() {
    let cfg = SystemConfig::paper_default();
    // Three seeds, all must show HHT gains.
    for seed in [1u64, 1000, 424242] {
        let m = generate::random_csr(64, 64, 0.5, seed);
        let v = generate::random_dense_vector(64, seed ^ 0xF);
        let base = runner::run_spmv_baseline(&cfg, &m, &v);
        let hht = runner::run_spmv_hht(&cfg, &m, &v);
        assert!(
            hht.stats.cycles < base.stats.cycles,
            "seed {seed}: {} !< {}",
            hht.stats.cycles,
            base.stats.cycles
        );
    }
}

#[test]
fn stats_are_internally_consistent() {
    let cfg = SystemConfig::paper_default();
    let m = generate::random_csr(48, 48, 0.5, 7);
    let v = generate::random_dense_vector(48, 8);
    let out = runner::run_spmv_hht(&cfg, &m, &v);
    let s = out.stats;
    // The HHT delivered exactly nnz elements through the primary window.
    assert_eq!(s.hht.elements_delivered, 48 * 48 / 2);
    // Every delivered element was fetched from memory by the BE, plus one
    // metadata read per element (cols array).
    assert_eq!(s.hht.engine.mem_reads, 2 * s.hht.elements_delivered);
    // Wait fractions are proper fractions.
    assert!(s.cpu_wait_frac() >= 0.0 && s.cpu_wait_frac() <= 1.0);
    assert!(s.hht_wait_frac() >= 0.0 && s.hht_wait_frac() <= 1.0);
    // The core retired at least one instruction per matrix row.
    assert!(s.core.instructions > 48);
}
