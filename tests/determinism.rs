//! The simulation is fully deterministic: identical inputs produce
//! identical cycle counts, statistics and results — a property the
//! experiment sweeps rely on (and which a real Spike-with-extensions setup
//! also has).

use hht::fault::FaultConfig;
use hht::sparse::generate;
use hht::system::config::{SystemConfig, TraceConfig};
use hht::system::{experiments, runner, RunOutput};
use proptest::prelude::*;

#[test]
fn repeated_runs_are_bit_identical() {
    let cfg = SystemConfig::paper_default();
    let m = generate::random_csr(48, 48, 0.6, 1234);
    let v = generate::random_dense_vector(48, 1235);
    let a = runner::run_spmv_hht(&cfg, &m, &v);
    let b = runner::run_spmv_hht(&cfg, &m, &v);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.y, b.y);
}

#[test]
fn experiment_points_are_reproducible() {
    let cfg = SystemConfig::paper_default();
    let a = experiments::spmv_point(&cfg, 48, 0.5, 2);
    let b = experiments::spmv_point(&cfg, 48, 0.5, 2);
    assert_eq!(a, b);
    let c = experiments::spmspv_point(&cfg, 48, 0.5, 2, experiments::SpMSpVKind::V1);
    let d = experiments::spmspv_point(&cfg, 48, 0.5, 2, experiments::SpMSpVKind::V1);
    assert_eq!(c, d);
}

#[test]
fn different_seeds_give_different_matrices_same_trends() {
    let cfg = SystemConfig::paper_default();
    // Three seeds, all must show HHT gains.
    for seed in [1u64, 1000, 424242] {
        let m = generate::random_csr(64, 64, 0.5, seed);
        let v = generate::random_dense_vector(64, seed ^ 0xF);
        let base = runner::run_spmv_baseline(&cfg, &m, &v);
        let hht = runner::run_spmv_hht(&cfg, &m, &v);
        assert!(
            hht.stats.cycles < base.stats.cycles,
            "seed {seed}: {} !< {}",
            hht.stats.cycles,
            base.stats.cycles
        );
    }
}

#[test]
fn stats_are_internally_consistent() {
    let cfg = SystemConfig::paper_default();
    let m = generate::random_csr(48, 48, 0.5, 7);
    let v = generate::random_dense_vector(48, 8);
    let out = runner::run_spmv_hht(&cfg, &m, &v);
    let s = out.stats;
    // The HHT delivered exactly nnz elements through the primary window.
    assert_eq!(s.hht.elements_delivered, 48 * 48 / 2);
    // Every delivered element was fetched from memory by the BE, plus one
    // metadata read per element (cols array).
    assert_eq!(s.hht.engine.mem_reads, 2 * s.hht.elements_delivered);
    // Wait fractions are proper fractions.
    assert!(s.cpu_wait_frac() >= 0.0 && s.cpu_wait_frac() <= 1.0);
    assert!(s.hht_wait_frac() >= 0.0 && s.hht_wait_frac() <= 1.0);
    // The core retired at least one instruction per matrix row.
    assert!(s.core.instructions > 48);
}

// ---------------------------------------------------------------------------
// Cycle-skipping scheduler vs legacy per-cycle loop
// ---------------------------------------------------------------------------

/// Run every kernel flavour once for a given config; index selects one.
fn run_kernel(cfg: &SystemConfig, kernel: usize, n: usize, sparsity: f64, seed: u64) -> RunOutput {
    let m = generate::random_csr(n, n, sparsity, seed);
    match kernel {
        0 => {
            let v = generate::random_dense_vector(n, seed ^ 1);
            runner::run_spmv_baseline(cfg, &m, &v)
        }
        1 => {
            let v = generate::random_dense_vector(n, seed ^ 1);
            runner::run_spmv_hht(cfg, &m, &v)
        }
        2 => {
            let x = generate::random_sparse_vector(n, sparsity, seed ^ 2);
            runner::run_spmspv_hht_v1(cfg, &m, &x)
        }
        3 => {
            let x = generate::random_sparse_vector(n, sparsity, seed ^ 2);
            runner::run_spmspv_hht_v2(cfg, &m, &x)
        }
        4 => {
            use hht::sparse::{SmashMatrix, SparseFormat};
            let v = generate::random_dense_vector(n, seed ^ 1);
            let sm = SmashMatrix::from_triplets(n, n, &m.triplets()).expect("valid triplets");
            runner::run_smash_spmv_hht(cfg, &sm, &v)
        }
        _ => {
            let v = generate::random_dense_vector(n, seed ^ 1);
            runner::run_spmv_hht_programmable(cfg, &m, &v)
        }
    }
}

/// The skip-mode and legacy-mode runs of one kernel must agree bit-for-bit
/// on results, cycle counts, every counter and (when traced) every event.
fn assert_skip_matches_legacy(base: SystemConfig, kernel: usize, n: usize, s: f64, seed: u64) {
    let skip = run_kernel(&base.with_cycle_skip(true), kernel, n, s, seed);
    let legacy = run_kernel(&base.with_cycle_skip(false), kernel, n, s, seed);
    assert_eq!(
        skip.stats, legacy.stats,
        "kernel {kernel} n={n} s={s} buffers={}",
        base.hht.num_buffers
    );
    assert_eq!(skip.y, legacy.y);
    assert_eq!(skip.events, legacy.events);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The differential property behind the scheduler: `SystemStats` is
    /// bit-identical between the cycle-skipping and legacy loops across
    /// random kernels × sparsities × buffer counts.
    #[test]
    fn cycle_skipping_is_bit_identical(
        kernel in 0usize..6,
        sparsity_pct in 5u32..95,
        buffers in 1usize..=3,
        n in 12usize..40,
        seed in 0u64..1_000_000,
    ) {
        let cfg = SystemConfig::paper_default().with_buffers(buffers);
        assert_skip_matches_legacy(cfg, kernel, n, sparsity_pct as f64 / 100.0, seed);
    }

    /// The same differential property holds under deterministic fault
    /// injection with the timeout/retry protocol and recovery enabled:
    /// injections land at the same cycles in both loops, detections fire
    /// on the same stepped cycle, and a fallback reruns identically.
    /// (HHT kernels only: a corrupted baseline run has no recovery path.)
    #[test]
    fn cycle_skipping_is_bit_identical_under_fault_injection(
        kernel in 1usize..6,
        sparsity_pct in 10u32..90,
        fault_seed in 1u64..1_000_000,
        timeout in 16u64..128,
        n in 12usize..32,
        seed in 0u64..1_000_000,
    ) {
        let cfg = SystemConfig::paper_default()
            .with_fault(FaultConfig { seed: fault_seed, max_faults: 3, horizon: 2048 })
            .with_hht_timeout(timeout)
            .with_recovery(true);
        assert_skip_matches_legacy(cfg, kernel, n, sparsity_pct as f64 / 100.0, seed);
    }
}

#[test]
fn cycle_skipping_matches_legacy_with_slow_memory_and_events() {
    // Fixed heavier configurations the proptest would be too slow to cover:
    // multi-cycle SRAM words (burst wake hints) and full event tracing
    // (identical StallBegin/StallEnd cycle stamps).
    for kernel in 0..6 {
        let traced = SystemConfig::paper_default()
            .with_ram_word_cycles(4)
            .with_trace(TraceConfig::enabled());
        assert_skip_matches_legacy(traced, kernel, 24, 0.5, 0xD1FF);
    }
}

#[test]
fn cycle_skipping_matches_legacy_with_faults_and_events() {
    // Full event tracing under injection: the fault track (inject, detect,
    // retry, fallback) must carry identical cycle stamps in both loops.
    for kernel in 1..6 {
        let cfg = SystemConfig::paper_default()
            .with_trace(TraceConfig::enabled())
            .with_fault(FaultConfig { seed: 0xFEED ^ kernel as u64, max_faults: 3, horizon: 2048 })
            .with_hht_timeout(64)
            .with_recovery(true);
        assert_skip_matches_legacy(cfg, kernel, 24, 0.5, 0xABC);
    }
}

#[test]
fn cycle_skipping_matches_legacy_on_figure_sweep_cells() {
    // Spot-check the Fig. 4-7 sweep grid corners at reduced n.
    let cfg = SystemConfig::paper_default();
    for kernel in [1usize, 2, 3] {
        for s in [0.1, 0.9] {
            for buffers in [1usize, 2] {
                assert_skip_matches_legacy(cfg.with_buffers(buffers), kernel, 48, s, 99);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// One-tile fabric vs the preserved pre-refactor machine (LegacySystem)
// ---------------------------------------------------------------------------

/// Build the full-problem image and HHT program for one kernel flavour so
/// the port-based one-tile fabric and the pre-refactor `LegacySystem` can
/// run bit-identical inputs.
fn build_image(
    cfg: &SystemConfig,
    kernel: usize,
    n: usize,
    sparsity: f64,
    seed: u64,
) -> (hht::mem::Sram, hht::isa::Program, u32, usize) {
    use hht::system::{kernels, layout};
    let m = generate::random_csr(n, n, sparsity, seed);
    let mut sram = hht::mem::Sram::new(cfg.ram_size, cfg.ram_word_cycles);
    let (l, program) = match kernel {
        0 => {
            let v = generate::random_dense_vector(n, seed ^ 1);
            let l = layout::layout_spmv(&mut sram, &m, &v);
            (l, kernels::spmv_hht(&l, cfg.core.vlen > 1))
        }
        1 => {
            let x = generate::random_sparse_vector(n, sparsity, seed ^ 2);
            let l = layout::layout_spmspv(&mut sram, &m, &x);
            (l, kernels::spmspv_hht_v1(&l))
        }
        _ => {
            let x = generate::random_sparse_vector(n, sparsity, seed ^ 2);
            let l = layout::layout_spmspv(&mut sram, &m, &x);
            (l, kernels::spmspv_hht_v2(&l))
        }
    };
    (sram, program, l.y_base, n)
}

/// The one-tile port-based fabric (via the `System` wrapper) must agree
/// with the preserved pre-refactor machine bit-for-bit: final cycle count,
/// every counter, the result vector, and every traced event — in both the
/// cycle-skipping and per-cycle modes.
fn assert_fabric_matches_legacy(base: SystemConfig, kernel: usize, n: usize, s: f64, seed: u64) {
    use hht::system::{LegacySystem, System};
    for skip in [true, false] {
        let cfg = base.with_cycle_skip(skip).with_trace(TraceConfig::enabled());
        let (sram, program, y_base, rows) = build_image(&cfg, kernel, n, s, seed);
        let mut legacy = LegacySystem::new(&cfg, program.clone(), sram);
        let ls = legacy.run().expect("legacy run");
        let (sram, program, ..) = build_image(&cfg, kernel, n, s, seed);
        let mut sys = System::new(&cfg, program, sram);
        let fs = sys.run().expect("fabric run");
        assert_eq!(fs, ls, "kernel {kernel} n={n} s={s} skip={skip}");
        assert_eq!(sys.read_output(y_base, rows), legacy.read_output(y_base, rows));
        assert_eq!(sys.take_events(), legacy.take_events(), "kernel {kernel} skip={skip}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The differential property behind the port refactor: a one-tile
    /// fabric over one bank is observationally identical to the
    /// pre-refactor machine across random kernels × sparsities × buffer
    /// counts, with and without cycle skipping.
    #[test]
    fn one_tile_fabric_is_bit_identical_to_legacy(
        kernel in 0usize..3,
        sparsity_pct in 5u32..95,
        buffers in 1usize..=3,
        n in 12usize..40,
        seed in 0u64..1_000_000,
    ) {
        let cfg = SystemConfig::paper_default().with_buffers(buffers);
        assert_fabric_matches_legacy(cfg, kernel, n, sparsity_pct as f64 / 100.0, seed);
    }
}

#[test]
fn one_tile_fabric_matches_legacy_with_slow_memory() {
    // Multi-cycle SRAM words exercise the burst wake hints through the
    // banked port layer.
    for kernel in 0..3 {
        let cfg = SystemConfig::paper_default().with_ram_word_cycles(4);
        assert_fabric_matches_legacy(cfg, kernel, 24, 0.5, 0xD1FF);
    }
}

#[test]
fn multi_tile_fabric_skip_matches_per_cycle() {
    // The N-tile scheduler's skip spans differ from any single-tile span
    // choice, but replay correctness must still make the two modes
    // bit-identical: FabricStats (per tile and shared memory) and every
    // tile's event stream.
    use hht::system::FabricConfig;
    let m = generate::random_csr(40, 40, 0.6, 0xF4B);
    let v = generate::random_dense_vector(40, 0xF4C);
    for tiles in [2usize, 4] {
        let traced = SystemConfig::paper_default().with_trace(TraceConfig::enabled());
        let skip = runner::run_spmv_fabric(
            &traced.with_cycle_skip(true),
            FabricConfig::scaled(tiles),
            &m,
            &v,
        );
        let step = runner::run_spmv_fabric(
            &traced.with_cycle_skip(false),
            FabricConfig::scaled(tiles),
            &m,
            &v,
        );
        assert_eq!(skip.stats, step.stats, "tiles={tiles}");
        assert_eq!(skip.y, step.y);
        assert_eq!(skip.tile_events, step.tile_events, "tiles={tiles}");
    }
}

#[test]
fn watchdog_expiry_is_a_recoverable_error() {
    use hht::isa::asm::assemble;
    use hht::mem::Sram;
    use hht::sim::RunError;
    use hht::system::System;

    let mut cfg = SystemConfig::paper_default();
    cfg.core.max_cycles = 10_000;
    let p = assemble("loop:\n  j loop\n").unwrap();
    for skip in [true, false] {
        let sram = Sram::new(cfg.ram_size, cfg.ram_word_cycles);
        let mut sys = System::new(&cfg.with_cycle_skip(skip), p.clone(), sram);
        match sys.run() {
            Err(RunError::Watchdog(c)) => assert_eq!(c, 10_000),
            other => panic!("expected watchdog error, got {other:?}"),
        }
    }
}
