//! The simulation is fully deterministic: identical inputs produce
//! identical cycle counts, statistics and results — a property the
//! experiment sweeps rely on (and which a real Spike-with-extensions setup
//! also has).

use hht::fault::FaultConfig;
use hht::sparse::generate;
use hht::system::config::{SystemConfig, TraceConfig};
use hht::system::{experiments, runner, RunOutput};
use proptest::prelude::*;

#[test]
fn repeated_runs_are_bit_identical() {
    let cfg = SystemConfig::paper_default();
    let m = generate::random_csr(48, 48, 0.6, 1234);
    let v = generate::random_dense_vector(48, 1235);
    let a = runner::run_spmv_hht(&cfg, &m, &v);
    let b = runner::run_spmv_hht(&cfg, &m, &v);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.y, b.y);
}

#[test]
fn experiment_points_are_reproducible() {
    let cfg = SystemConfig::paper_default();
    let a = experiments::spmv_point(&cfg, 48, 0.5, 2);
    let b = experiments::spmv_point(&cfg, 48, 0.5, 2);
    assert_eq!(a, b);
    let c = experiments::spmspv_point(&cfg, 48, 0.5, 2, experiments::SpMSpVKind::V1);
    let d = experiments::spmspv_point(&cfg, 48, 0.5, 2, experiments::SpMSpVKind::V1);
    assert_eq!(c, d);
}

#[test]
fn different_seeds_give_different_matrices_same_trends() {
    let cfg = SystemConfig::paper_default();
    // Three seeds, all must show HHT gains.
    for seed in [1u64, 1000, 424242] {
        let m = generate::random_csr(64, 64, 0.5, seed);
        let v = generate::random_dense_vector(64, seed ^ 0xF);
        let base = runner::run_spmv_baseline(&cfg, &m, &v);
        let hht = runner::run_spmv_hht(&cfg, &m, &v);
        assert!(
            hht.stats.cycles < base.stats.cycles,
            "seed {seed}: {} !< {}",
            hht.stats.cycles,
            base.stats.cycles
        );
    }
}

#[test]
fn stats_are_internally_consistent() {
    let cfg = SystemConfig::paper_default();
    let m = generate::random_csr(48, 48, 0.5, 7);
    let v = generate::random_dense_vector(48, 8);
    let out = runner::run_spmv_hht(&cfg, &m, &v);
    let s = out.stats;
    // The HHT delivered exactly nnz elements through the primary window.
    assert_eq!(s.hht.elements_delivered, 48 * 48 / 2);
    // Every delivered element was fetched from memory by the BE, plus one
    // metadata read per element (cols array).
    assert_eq!(s.hht.engine.mem_reads, 2 * s.hht.elements_delivered);
    // Wait fractions are proper fractions.
    assert!(s.cpu_wait_frac() >= 0.0 && s.cpu_wait_frac() <= 1.0);
    assert!(s.hht_wait_frac() >= 0.0 && s.hht_wait_frac() <= 1.0);
    // The core retired at least one instruction per matrix row.
    assert!(s.core.instructions > 48);
}

// ---------------------------------------------------------------------------
// Cycle-skipping scheduler vs legacy per-cycle loop
// ---------------------------------------------------------------------------

/// Run every kernel flavour once for a given config; index selects one.
fn run_kernel(cfg: &SystemConfig, kernel: usize, n: usize, sparsity: f64, seed: u64) -> RunOutput {
    let m = generate::random_csr(n, n, sparsity, seed);
    match kernel {
        0 => {
            let v = generate::random_dense_vector(n, seed ^ 1);
            runner::run_spmv_baseline(cfg, &m, &v)
        }
        1 => {
            let v = generate::random_dense_vector(n, seed ^ 1);
            runner::run_spmv_hht(cfg, &m, &v)
        }
        2 => {
            let x = generate::random_sparse_vector(n, sparsity, seed ^ 2);
            runner::run_spmspv_hht_v1(cfg, &m, &x)
        }
        3 => {
            let x = generate::random_sparse_vector(n, sparsity, seed ^ 2);
            runner::run_spmspv_hht_v2(cfg, &m, &x)
        }
        4 => {
            use hht::sparse::{SmashMatrix, SparseFormat};
            let v = generate::random_dense_vector(n, seed ^ 1);
            let sm = SmashMatrix::from_triplets(n, n, &m.triplets()).expect("valid triplets");
            runner::run_smash_spmv_hht(cfg, &sm, &v)
        }
        _ => {
            let v = generate::random_dense_vector(n, seed ^ 1);
            runner::run_spmv_hht_programmable(cfg, &m, &v)
        }
    }
}

/// The skip-mode and legacy-mode runs of one kernel must agree bit-for-bit
/// on results, cycle counts, every counter and (when traced) every event.
fn assert_skip_matches_legacy(base: SystemConfig, kernel: usize, n: usize, s: f64, seed: u64) {
    let skip = run_kernel(&base.with_cycle_skip(true), kernel, n, s, seed);
    let legacy = run_kernel(&base.with_cycle_skip(false), kernel, n, s, seed);
    assert_eq!(
        skip.stats, legacy.stats,
        "kernel {kernel} n={n} s={s} buffers={}",
        base.hht.num_buffers
    );
    assert_eq!(skip.y, legacy.y);
    assert_eq!(skip.events, legacy.events);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The differential property behind the scheduler: `SystemStats` is
    /// bit-identical between the cycle-skipping and legacy loops across
    /// random kernels × sparsities × buffer counts.
    #[test]
    fn cycle_skipping_is_bit_identical(
        kernel in 0usize..6,
        sparsity_pct in 5u32..95,
        buffers in 1usize..=3,
        n in 12usize..40,
        seed in 0u64..1_000_000,
    ) {
        let cfg = SystemConfig::paper_default().with_buffers(buffers);
        assert_skip_matches_legacy(cfg, kernel, n, sparsity_pct as f64 / 100.0, seed);
    }

    /// The same differential property holds under deterministic fault
    /// injection with the timeout/retry protocol and recovery enabled:
    /// injections land at the same cycles in both loops, detections fire
    /// on the same stepped cycle, and a fallback reruns identically.
    /// (HHT kernels only: a corrupted baseline run has no recovery path.)
    #[test]
    fn cycle_skipping_is_bit_identical_under_fault_injection(
        kernel in 1usize..6,
        sparsity_pct in 10u32..90,
        fault_seed in 1u64..1_000_000,
        timeout in 16u64..128,
        n in 12usize..32,
        seed in 0u64..1_000_000,
    ) {
        let cfg = SystemConfig::paper_default()
            .with_fault(FaultConfig { seed: fault_seed, max_faults: 3, horizon: 2048 })
            .with_hht_timeout(timeout)
            .with_recovery(true);
        assert_skip_matches_legacy(cfg, kernel, n, sparsity_pct as f64 / 100.0, seed);
    }
}

#[test]
fn cycle_skipping_matches_legacy_with_slow_memory_and_events() {
    // Fixed heavier configurations the proptest would be too slow to cover:
    // multi-cycle SRAM words (burst wake hints) and full event tracing
    // (identical StallBegin/StallEnd cycle stamps).
    for kernel in 0..6 {
        let traced = SystemConfig::paper_default()
            .with_ram_word_cycles(4)
            .with_trace(TraceConfig::enabled());
        assert_skip_matches_legacy(traced, kernel, 24, 0.5, 0xD1FF);
    }
}

#[test]
fn cycle_skipping_matches_legacy_with_faults_and_events() {
    // Full event tracing under injection: the fault track (inject, detect,
    // retry, fallback) must carry identical cycle stamps in both loops.
    for kernel in 1..6 {
        let cfg = SystemConfig::paper_default()
            .with_trace(TraceConfig::enabled())
            .with_fault(FaultConfig { seed: 0xFEED ^ kernel as u64, max_faults: 3, horizon: 2048 })
            .with_hht_timeout(64)
            .with_recovery(true);
        assert_skip_matches_legacy(cfg, kernel, 24, 0.5, 0xABC);
    }
}

#[test]
fn cycle_skipping_matches_legacy_on_figure_sweep_cells() {
    // Spot-check the Fig. 4-7 sweep grid corners at reduced n.
    let cfg = SystemConfig::paper_default();
    for kernel in [1usize, 2, 3] {
        for s in [0.1, 0.9] {
            for buffers in [1usize, 2] {
                assert_skip_matches_legacy(cfg.with_buffers(buffers), kernel, 48, s, 99);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// One-tile fabric vs the preserved pre-refactor machine (LegacySystem)
// ---------------------------------------------------------------------------

/// Build the full-problem image and HHT program for one kernel flavour so
/// the port-based one-tile fabric and the pre-refactor `LegacySystem` can
/// run bit-identical inputs.
fn build_image(
    cfg: &SystemConfig,
    kernel: usize,
    n: usize,
    sparsity: f64,
    seed: u64,
) -> (hht::mem::Sram, hht::isa::Program, u32, usize) {
    use hht::system::{kernels, layout};
    let m = generate::random_csr(n, n, sparsity, seed);
    let mut sram = hht::mem::Sram::new(cfg.ram_size, cfg.ram_word_cycles);
    let (l, program) = match kernel {
        0 => {
            let v = generate::random_dense_vector(n, seed ^ 1);
            let l = layout::layout_spmv(&mut sram, &m, &v);
            (l, kernels::spmv_hht(&l, cfg.core.vlen > 1))
        }
        1 => {
            let x = generate::random_sparse_vector(n, sparsity, seed ^ 2);
            let l = layout::layout_spmspv(&mut sram, &m, &x);
            (l, kernels::spmspv_hht_v1(&l))
        }
        _ => {
            let x = generate::random_sparse_vector(n, sparsity, seed ^ 2);
            let l = layout::layout_spmspv(&mut sram, &m, &x);
            (l, kernels::spmspv_hht_v2(&l))
        }
    };
    (sram, program, l.y_base, n)
}

/// The one-tile port-based fabric (via the `System` wrapper) must agree
/// with the preserved pre-refactor machine bit-for-bit: final cycle count,
/// every counter, the result vector, and every traced event — in both the
/// cycle-skipping and per-cycle modes.
fn assert_fabric_matches_legacy(base: SystemConfig, kernel: usize, n: usize, s: f64, seed: u64) {
    use hht::system::{LegacySystem, System};
    for skip in [true, false] {
        let cfg = base.with_cycle_skip(skip).with_trace(TraceConfig::enabled());
        let (sram, program, y_base, rows) = build_image(&cfg, kernel, n, s, seed);
        let mut legacy = LegacySystem::new(&cfg, program.clone(), sram);
        let ls = legacy.run().expect("legacy run");
        let (sram, program, ..) = build_image(&cfg, kernel, n, s, seed);
        let mut sys = System::new(&cfg, program, sram);
        let fs = sys.run().expect("fabric run");
        assert_eq!(fs, ls, "kernel {kernel} n={n} s={s} skip={skip}");
        assert_eq!(sys.read_output(y_base, rows), legacy.read_output(y_base, rows));
        assert_eq!(sys.take_events(), legacy.take_events(), "kernel {kernel} skip={skip}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The differential property behind the port refactor: a one-tile
    /// fabric over one bank is observationally identical to the
    /// pre-refactor machine across random kernels × sparsities × buffer
    /// counts, with and without cycle skipping.
    #[test]
    fn one_tile_fabric_is_bit_identical_to_legacy(
        kernel in 0usize..3,
        sparsity_pct in 5u32..95,
        buffers in 1usize..=3,
        n in 12usize..40,
        seed in 0u64..1_000_000,
    ) {
        let cfg = SystemConfig::paper_default().with_buffers(buffers);
        assert_fabric_matches_legacy(cfg, kernel, n, sparsity_pct as f64 / 100.0, seed);
    }
}

#[test]
fn one_tile_fabric_matches_legacy_with_slow_memory() {
    // Multi-cycle SRAM words exercise the burst wake hints through the
    // banked port layer.
    for kernel in 0..3 {
        let cfg = SystemConfig::paper_default().with_ram_word_cycles(4);
        assert_fabric_matches_legacy(cfg, kernel, 24, 0.5, 0xD1FF);
    }
}

#[test]
fn multi_tile_fabric_skip_matches_per_cycle() {
    // The N-tile scheduler's skip spans differ from any single-tile span
    // choice, but replay correctness must still make the two modes
    // bit-identical: FabricStats (per tile and shared memory) and every
    // tile's event stream.
    use hht::system::FabricConfig;
    let m = generate::random_csr(40, 40, 0.6, 0xF4B);
    let v = generate::random_dense_vector(40, 0xF4C);
    for tiles in [2usize, 4] {
        let traced = SystemConfig::paper_default().with_trace(TraceConfig::enabled());
        let skip = runner::run_spmv_fabric(
            &traced.with_cycle_skip(true),
            FabricConfig::scaled(tiles),
            &m,
            &v,
        );
        let step = runner::run_spmv_fabric(
            &traced.with_cycle_skip(false),
            FabricConfig::scaled(tiles),
            &m,
            &v,
        );
        assert_eq!(skip.stats, step.stats, "tiles={tiles}");
        assert_eq!(skip.y, step.y);
        assert_eq!(skip.tile_events, step.tile_events, "tiles={tiles}");
    }
}

// ---------------------------------------------------------------------------
// Discrete-event queue vs lock-step fabric scheduler
// ---------------------------------------------------------------------------

/// Run one fabric kernel flavour for a given config; index selects one.
fn run_fabric_kernel(
    cfg: &SystemConfig,
    kernel: usize,
    tiles: usize,
    n: usize,
    sparsity: f64,
    seed: u64,
) -> runner::FabricRunOutput {
    use hht::system::FabricConfig;
    let fab = FabricConfig::scaled(tiles);
    let m = generate::random_csr(n, n, sparsity, seed);
    match kernel {
        0 => {
            let v = generate::random_dense_vector(n, seed ^ 1);
            runner::run_spmv_fabric(cfg, fab, &m, &v)
        }
        1 => {
            let x = generate::random_sparse_vector(n, sparsity, seed ^ 2);
            runner::run_spmspv_fabric_v1(cfg, fab, &m, &x)
        }
        _ => {
            let x = generate::random_sparse_vector(n, sparsity, seed ^ 2);
            runner::run_spmspv_fabric_v2(cfg, fab, &m, &x)
        }
    }
}

/// The event-queue and lock-step runs of one fabric kernel must agree
/// bit-for-bit: results, per-tile counters, shared-memory statistics and
/// (when traced) every tile's event stream.
fn assert_event_queue_matches_lockstep(
    base: SystemConfig,
    kernel: usize,
    tiles: usize,
    n: usize,
    s: f64,
    seed: u64,
) {
    let eq = run_fabric_kernel(&base.with_event_queue(true), kernel, tiles, n, s, seed);
    let ls = run_fabric_kernel(&base.with_event_queue(false), kernel, tiles, n, s, seed);
    assert_eq!(eq.stats, ls.stats, "kernel {kernel} tiles={tiles} n={n} s={s}");
    assert_eq!(eq.y, ls.y);
    assert_eq!(eq.tile_events, ls.tile_events, "kernel {kernel} tiles={tiles}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The differential property behind the discrete-event scheduler: the
    /// event queue is observationally identical to the lock-step loop
    /// across random fabric kernels × tile counts × sparsities.
    #[test]
    fn event_queue_is_bit_identical_to_lockstep(
        kernel in 0usize..3,
        tiles_log in 0u32..4, // 1, 2, 4, 8 tiles
        sparsity_pct in 5u32..95,
        n in 12usize..40,
        seed in 0u64..1_000_000,
    ) {
        let cfg = SystemConfig::paper_default();
        assert_event_queue_matches_lockstep(
            cfg, kernel, 1 << tiles_log, n, sparsity_pct as f64 / 100.0, seed,
        );
    }
}

#[test]
fn event_queue_matches_lockstep_with_slow_memory_and_events() {
    // Multi-cycle SRAM words make long parks the common case, and full
    // event tracing pins every replayed stall to its exact cycle stamp.
    for kernel in 0..3 {
        for tiles in [2usize, 8] {
            let traced = SystemConfig::paper_default()
                .with_ram_word_cycles(8)
                .with_trace(TraceConfig::enabled());
            assert_event_queue_matches_lockstep(traced, kernel, tiles, 24, 0.5, 0xD1FF);
        }
    }
}

#[test]
fn event_queue_matches_lockstep_under_fault_injection() {
    // Timing faults (delays, engine stalls) move wake times and memory
    // faults may corrupt the result, so drive the fabric directly (no
    // golden verify): both schedulers must produce the same outcome —
    // same stats, same output words, same traced fault timeline.
    use hht::system::FabricConfig;
    let m = generate::random_csr(32, 32, 0.5, 0xFA8);
    let v = generate::random_dense_vector(32, 0xFA9);
    for (tiles, fault_seed) in [(2usize, 11u64), (4, 23), (8, 37), (4, 59)] {
        let cfg = SystemConfig::paper_default()
            .with_trace(TraceConfig::enabled())
            .with_hht_timeout(64)
            .with_fault(FaultConfig { seed: fault_seed, max_faults: 3, horizon: 4096 });
        let fab = FabricConfig::scaled(tiles);
        let (mut eq, y_base) = runner::build_spmv_fabric(&cfg, fab, &m, &v);
        let eq_res = eq.run();
        let (mut ls, _) = runner::build_spmv_fabric(&cfg.with_event_queue(false), fab, &m, &v);
        let ls_res = ls.run();
        assert_eq!(
            format!("{eq_res:?}"),
            format!("{ls_res:?}"),
            "tiles={tiles} fault_seed={fault_seed}"
        );
        assert_eq!(eq.stats(), ls.stats(), "tiles={tiles} fault_seed={fault_seed}");
        assert_eq!(eq.read_output(y_base, 32), ls.read_output(y_base, 32));
        assert_eq!(eq.take_all_events(), ls.take_all_events(), "tiles={tiles}");
    }
}

#[test]
fn event_queue_matches_lockstep_under_recovery_failover() {
    // With the per-tile fault-domain recovery policy on, both schedulers
    // must take identical failover decisions: same quarantine verdicts,
    // same attempt walls and shard assignments, same degraded FabricStats,
    // the same assembled (bit-exact) result and the same event timelines
    // including the host-side quarantine/failover markers.
    use hht::fault::{FaultEvent, FaultKind, FaultPlan};
    use hht::system::FabricConfig;
    let m = generate::random_csr(40, 40, 0.6, 0xC4A);
    let v = generate::random_dense_vector(40, 0xC4B);
    let cases: [(usize, &[(u64, u32)]); 3] =
        [(2, &[(60, 0)]), (4, &[(80, 1), (200, 3)]), (8, &[(50, 2), (120, 5), (300, 7)])];
    for (tiles, kills) in cases {
        let cfg = SystemConfig::paper_default()
            .with_hht_timeout(64)
            .with_recovery(true)
            .with_trace(TraceConfig::enabled());
        let fab = FabricConfig::scaled(tiles);
        let plan = || {
            FaultPlan::new(
                kills
                    .iter()
                    .map(|&(c, t)| FaultEvent::on_tile(c, FaultKind::TileKill, t))
                    .collect(),
            )
        };
        let eq =
            runner::run_spmv_fabric_with_plan(&cfg.with_event_queue(true), fab, &m, &v, plan());
        let ls =
            runner::run_spmv_fabric_with_plan(&cfg.with_event_queue(false), fab, &m, &v, plan());
        assert_eq!(eq.stats, ls.stats, "tiles={tiles}");
        assert_eq!(eq.y, ls.y, "tiles={tiles}");
        assert_eq!(eq.recovery, ls.recovery, "tiles={tiles}");
        assert_eq!(eq.tile_events, ls.tile_events, "tiles={tiles}");
        let rec = eq.recovery.expect("tile kills must trigger recovery");
        assert!(!rec.quarantined().is_empty(), "tiles={tiles}: at least one kill must land");
        assert!(rec.quarantined().len() <= kills.len());
    }
}

/// The guarantee behind every park: single-stepping a parked tile through
/// its span produces no architectural event. Collect the event queue's
/// per-tile park spans, then replay the same image under the per-cycle
/// scheduler and check that the discrete per-tile counters (instructions,
/// memory beats, delivered elements, engine reads, faults) are frozen
/// across each span. Per-cycle tallies (stall and busy counters) are
/// excluded on purpose: they tick during inert cycles by design and the
/// scheduler replays them arithmetically on wake.
#[test]
fn event_queue_parks_are_architecturally_inert() {
    use hht::system::{Fabric, FabricConfig};
    use std::collections::{BTreeMap, BTreeSet};

    fn sigs(f: &Fabric) -> Vec<[u64; 12]> {
        f.stats()
            .tiles
            .iter()
            .map(|t| {
                [
                    t.core.instructions,
                    t.core.loads,
                    t.core.stores,
                    t.core.vector_instrs,
                    t.core.mem_beats,
                    t.core.l1d_hits,
                    t.core.l1d_misses,
                    t.core.hht_timeouts,
                    t.core.hht_retries,
                    t.hht.elements_delivered,
                    t.hht.engine.mem_reads,
                    t.faults.injected,
                ]
            })
            .collect()
    }

    let m = generate::random_csr(32, 32, 0.7, 0x9A7);
    let v = generate::random_dense_vector(32, 0x9A8);
    for tiles in [2usize, 4, 8] {
        let cfg = SystemConfig::paper_default()
            .with_ram_word_cycles(8)
            .with_trace(TraceConfig::enabled());
        let fab = FabricConfig::scaled(tiles);
        let (mut eq, _) = runner::build_spmv_fabric(&cfg, fab, &m, &v);
        let wall = eq.run().expect("event-queue run").cycles;
        let parks = eq.take_park_spans();
        let total: usize = parks.iter().map(Vec::len).sum();
        assert!(total > 0, "tiles={tiles}: event queue recorded no parks");

        // Capture tile signatures at every span boundary by single-stepping
        // the same image under the per-cycle scheduler (which the fabric
        // differential tests pin to the identical timeline).
        let boundaries: BTreeSet<u64> =
            parks.iter().flatten().flat_map(|s| [s.start, s.end]).collect();
        let (mut oracle, _) = runner::build_spmv_fabric(&cfg.with_cycle_skip(false), fab, &m, &v);
        let mut at: BTreeMap<u64, Vec<[u64; 12]>> = BTreeMap::new();
        while oracle.cycle() < wall {
            if boundaries.contains(&oracle.cycle()) {
                at.insert(oracle.cycle(), sigs(&oracle));
            }
            oracle.step();
        }
        at.insert(wall, sigs(&oracle));

        // The signature counters are monotone, so endpoint equality pins
        // the whole span.
        for (t, spans) in parks.iter().enumerate() {
            for s in spans {
                assert_eq!(
                    at[&s.start][t], at[&s.end][t],
                    "tiles={tiles} tile={t}: architectural event inside park [{}, {})",
                    s.start, s.end
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Split-transaction DRAM backend vs the seed flat SharedMemory
// ---------------------------------------------------------------------------

/// The refactor's safety net: wrapping the shared memory in a `Dram` whose
/// every effect is disabled (`DramConfig::flat()` — zero row extras, no
/// window, no budget) must be observationally invisible. Stats, result
/// vector and every traced event must match the unwrapped `SharedMemory`
/// path bit-for-bit, under both fabric schedulers.
fn assert_flat_dram_matches_shared(
    base: SystemConfig,
    kernel: usize,
    tiles: usize,
    n: usize,
    s: f64,
    seed: u64,
) {
    use hht::mem::DramConfig;
    for eq in [true, false] {
        let cfg = base.with_event_queue(eq).with_trace(TraceConfig::enabled());
        let shared = run_fabric_kernel(&cfg, kernel, tiles, n, s, seed);
        let dram = run_fabric_kernel(&cfg.with_dram(DramConfig::flat()), kernel, tiles, n, s, seed);
        assert_eq!(
            dram.stats, shared.stats,
            "kernel {kernel} tiles={tiles} n={n} s={s} event_queue={eq}"
        );
        assert_eq!(dram.y, shared.y, "kernel {kernel} tiles={tiles} event_queue={eq}");
        assert_eq!(
            dram.tile_events, shared.tile_events,
            "kernel {kernel} tiles={tiles} event_queue={eq}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The differential property behind the DRAM backend: a zero-latency,
    /// unlimited-window, unlimited-bandwidth `Dram` is bit-identical to the
    /// seed `SharedMemory` across random fabric kernels × tile counts ×
    /// sparsities, under both schedulers.
    #[test]
    fn flat_dram_is_bit_identical_to_shared_memory(
        kernel in 0usize..3,
        tiles_log in 0u32..3, // 1, 2, 4 tiles
        sparsity_pct in 5u32..95,
        n in 12usize..40,
        seed in 0u64..1_000_000,
    ) {
        let cfg = SystemConfig::paper_default();
        assert_flat_dram_matches_shared(
            cfg, kernel, 1 << tiles_log, n, sparsity_pct as f64 / 100.0, seed,
        );
    }

    /// With real DRAM timing in force (row extras, MLP window, bandwidth
    /// budget), the event-queue and lock-step schedulers must still agree
    /// bit-for-bit: queued responses, window-full parks and budget refusals
    /// all replay to the same cycle stamps.
    #[test]
    fn dram_event_queue_is_bit_identical_to_lockstep(
        kernel in 0usize..3,
        tiles_log in 0u32..3, // 1, 2, 4 tiles
        window in 0u32..3,
        budget in 0u32..3,
        sparsity_pct in 10u32..90,
        seed in 0u64..1_000_000,
    ) {
        use hht::mem::DramConfig;
        let dc = DramConfig::flat()
            .with_row_latency(8, 24)
            .with_window(window)
            .with_bandwidth(budget);
        let cfg = SystemConfig::paper_default().with_dram(dc);
        assert_event_queue_matches_lockstep(
            cfg, kernel, 1 << tiles_log, 24, sparsity_pct as f64 / 100.0, seed,
        );
    }
}

#[test]
fn dram_window_parks_replay_identically() {
    // Park soundness for in-flight response queues: with slow rows and a
    // one-deep MLP window, a refused tile's wake bound is the *oldest
    // in-flight arrival* (the window only drains when responses land, not
    // with time). All three scheduling modes — event queue, lock-step with
    // fast-forward, per-cycle lock-step — must agree bit-for-bit on stats,
    // result and traced events, and the scenario must actually exercise the
    // window (stalls observed), or the test proves nothing.
    use hht::mem::DramConfig;
    use hht::system::FabricConfig;
    let m = generate::random_csr(32, 32, 0.6, 0xDD1);
    let v = generate::random_dense_vector(32, 0xDD2);
    for tiles in [1usize, 2, 4] {
        let cfg = SystemConfig::paper_default()
            .with_dram(DramConfig::slow_300ns().with_window(1).with_bandwidth(2))
            .with_trace(TraceConfig::enabled());
        let fab = FabricConfig::scaled(tiles);
        let eq = runner::run_spmv_fabric(&cfg.with_event_queue(true), fab, &m, &v);
        let skip = runner::run_spmv_fabric(&cfg.with_event_queue(false), fab, &m, &v);
        let step = runner::run_spmv_fabric(
            &cfg.with_event_queue(false).with_cycle_skip(false),
            fab,
            &m,
            &v,
        );
        assert_eq!(eq.stats, skip.stats, "tiles={tiles}: event queue vs fast-forward");
        assert_eq!(skip.stats, step.stats, "tiles={tiles}: fast-forward vs per-cycle");
        assert_eq!(eq.y, skip.y, "tiles={tiles}");
        assert_eq!(skip.y, step.y, "tiles={tiles}");
        assert_eq!(eq.tile_events, skip.tile_events, "tiles={tiles}");
        assert_eq!(skip.tile_events, step.tile_events, "tiles={tiles}");
        assert!(eq.stats.mem.window_stalls > 0, "tiles={tiles}: scenario never hit the MLP window");
    }
}

#[test]
fn watchdog_expiry_is_a_recoverable_error() {
    use hht::isa::asm::assemble;
    use hht::mem::Sram;
    use hht::sim::RunError;
    use hht::system::System;

    let mut cfg = SystemConfig::paper_default();
    cfg.core.max_cycles = 10_000;
    let p = assemble("loop:\n  j loop\n").unwrap();
    for skip in [true, false] {
        let sram = Sram::new(cfg.ram_size, cfg.ram_word_cycles);
        let mut sys = System::new(&cfg.with_cycle_skip(skip), p.clone(), sram);
        match sys.run() {
            Err(RunError::Watchdog(c)) => assert_eq!(c, 10_000),
            other => panic!("expected watchdog error, got {other:?}"),
        }
    }
}

/// One serve request (pair of identical requests from two tenants) for
/// `kernel`, plus the naive cold one-shot runs of the same stream.
fn serve_pair(kernel: usize, n: usize, s: f64, seed: u64) -> Vec<hht::serve::Request> {
    use hht::serve::Request;
    use std::sync::Arc;
    let m = Arc::new(generate::random_csr(n, n, s, seed));
    match kernel {
        0 => {
            let v = Arc::new(generate::random_dense_vector(n, seed ^ 1));
            vec![Request::spmv(0, Arc::clone(&m), Arc::clone(&v)), Request::spmv(1, m, v)]
        }
        1 => {
            let x = Arc::new(generate::random_sparse_vector(n, s, seed ^ 2));
            vec![Request::spmspv_v1(0, Arc::clone(&m), Arc::clone(&x)), Request::spmspv_v1(1, m, x)]
        }
        _ => {
            let x = Arc::new(generate::random_sparse_vector(n, s, seed ^ 2));
            vec![Request::spmspv_v2(0, Arc::clone(&m), Arc::clone(&x)), Request::spmspv_v2(1, m, x)]
        }
    }
}

/// The differential property behind `hht-serve`: a request served through
/// the content-addressed caches and the warm fabric pool must be
/// bit-identical — output words, every counter of the fabric stats, every
/// traced event, the scheduler accounting and the recovery report — to the
/// naive cold one-shot run of the same job. Covered paths: cold service
/// run (fresh plan + fresh fabric through the provider), replay-tier hit,
/// and plan-cache hit re-simulated on a warm pooled fabric (replay off).
fn assert_serve_matches_cold(
    base: SystemConfig,
    kernel: usize,
    tiles: usize,
    n: usize,
    s: f64,
    seed: u64,
) {
    use hht::serve::{naive_run_stream, Service, ServiceConfig};
    use hht::system::FabricConfig;
    let fab = FabricConfig::scaled(tiles);
    let requests = serve_pair(kernel, n, s, seed);
    let naive = naive_run_stream(&base, fab, &requests);
    let shapes = [
        // Replay on: the repeat is served from the replay tier.
        ServiceConfig { batching: false, ..ServiceConfig::default() },
        // Replay off: the repeat re-simulates through the cached plan and
        // the warmed fabric pool.
        ServiceConfig { batching: false, replay: false, ..ServiceConfig::default() },
    ];
    for scfg in shapes {
        let mut svc = Service::new(base, fab, scfg);
        let responses = svc.run_stream(&requests);
        for (i, (resp, (cold, _))) in responses.iter().zip(&naive).enumerate() {
            let ctx = format!(
                "kernel {kernel} tiles={tiles} n={n} s={s} replay={} request {i} ({:?})",
                scfg.replay, resp.served
            );
            assert_eq!(resp.y.as_slice(), cold.y.as_slice(), "{ctx}: y");
            assert_eq!(resp.run.stats, cold.stats, "{ctx}: stats");
            assert_eq!(resp.run.tile_events, cold.tile_events, "{ctx}: events");
            assert_eq!(resp.run.sched, cold.sched, "{ctx}: sched");
            assert_eq!(resp.run.tile_sched, cold.tile_sched, "{ctx}: tile sched");
            assert_eq!(resp.run.recovery, cold.recovery, "{ctx}: recovery");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Serving through warm fabrics and content-addressed caches is
    /// observationally identical to cold one-shot runs across kernels ×
    /// tile counts × both fabric schedulers, with event tracing on.
    #[test]
    fn serving_is_bit_identical_to_cold_runs(
        kernel in 0usize..3,
        tiles_log in 0u32..3, // 1, 2, 4 tiles
        event_queue in 0u32..2,
        sparsity_pct in 40u32..95,
        n in 12usize..40,
        seed in 0u64..1_000_000,
    ) {
        let cfg = SystemConfig::paper_default()
            .with_event_queue(event_queue == 1)
            .with_trace(TraceConfig::enabled());
        assert_serve_matches_cold(cfg, kernel, 1 << tiles_log, n, sparsity_pct as f64 / 100.0, seed);
    }

    /// The same property under seeded fault injection with recovery on:
    /// cached plans re-derive the identical fault schedule (the image the
    /// seed hashes over is byte-identical), so detections, retries and
    /// failovers replay exactly.
    #[test]
    fn serving_is_bit_identical_to_cold_runs_under_faults(
        kernel in 0usize..3,
        tiles_log in 1u32..3, // 2, 4 tiles (failover needs a survivor)
        fault_seed in 1u64..1_000_000,
        sparsity_pct in 40u32..90,
        n in 12usize..32,
        seed in 0u64..1_000_000,
    ) {
        let cfg = SystemConfig::paper_default()
            .with_fault(FaultConfig { seed: fault_seed, max_faults: 3, horizon: 2048 })
            .with_hht_timeout(64)
            .with_recovery(true);
        assert_serve_matches_cold(cfg, kernel, 1 << tiles_log, n, sparsity_pct as f64 / 100.0, seed);
    }
}
