//! # hht — Heterogeneous Architecture for Sparse Data Processing
//!
//! Facade crate re-exporting the full HHT (Hardware Helper Thread) model:
//! a cycle-level reproduction of the memory-side accelerator described in
//! *"Heterogeneous Architecture for Sparse Data Processing"* (IPPS 2022).
//!
//! Most users should start with [`system`] — it wires the RV32 CPU model,
//! the HHT accelerator and the memory system together and exposes one-call
//! experiment drivers:
//!
//! ```
//! use hht::system::config::SystemConfig;
//! use hht::system::experiments;
//!
//! let cfg = SystemConfig::paper_default();
//! let r = experiments::spmv_point(&cfg, 64, 0.7, 1);
//! assert!(r.speedup() > 1.0);
//! ```
//!
//! The individual layers are available under their own names:
//!
//! - [`sparse`] — formats (CSR/CSC/COO/BCSR/bit-vector/RLE/SMASH), golden kernels.
//! - [`isa`] — RV32IMF+V subset: encode/decode/assemble.
//! - [`mem`] — SRAM/MMIO cycle-level memory model.
//! - [`accel`] — the HHT itself (front-end, back-end pipeline, engines).
//! - [`sim`] — the in-order CPU core timing model.
//! - [`obs`] — cycle-domain observability: stall attribution, structured
//!   event tracing, Chrome trace export.
//! - [`exec`] — scoped-thread parallel map for experiment sweeps.
//! - [`fault`] — deterministic cycle-domain fault plans (injection).
//! - [`system`] — composition + kernel library + experiments.
//! - [`energy`] — area/power/energy model (Synopsys-flow substitute).
//! - [`workloads`] — synthetic, DNN and SuiteSparse-profile generators.
//! - [`prof`] — post-run analysis: top-down CPI stacks, bottleneck
//!   classification, host self-profiling, bench regression reports.
//! - [`serve`] — persistent job service: warm fabric pools,
//!   content-addressed plan/replay caches, tenant-fair batched serving.

pub use hht_accel as accel;
pub use hht_energy as energy;
pub use hht_exec as exec;
pub use hht_fault as fault;
pub use hht_isa as isa;
pub use hht_mem as mem;
pub use hht_obs as obs;
pub use hht_prof as prof;
pub use hht_serve as serve;
pub use hht_sim as sim;
pub use hht_sparse as sparse;
pub use hht_system as system;
pub use hht_workloads as workloads;
