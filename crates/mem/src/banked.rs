//! The banked shared memory behind the N-tile fabric.
//!
//! [`SharedMemory`] generalizes the single-ported [`Sram`](crate::Sram):
//! the flat byte array is shared by every tile, but the timing model has
//! `banks` independent ports, address-interleaved at a `bank_words` granule
//! (32 bytes by default — one L1D line, so a line fill streams from one
//! bank). Each tile accesses memory through a [`TilePort`] view that
//! implements [`MemoryPort`](crate::MemoryPort); grants, conflicts and
//! arbitration events are accounted *per tile* (so a tile's `SramStats`
//! keeps exactly the meaning it had when the tile owned a private SRAM),
//! plus fabric-wide aggregates in [`SharedMemStats`] including how many
//! rejections lost to a bank held by a *different* tile.
//!
//! With one bank and one tile the timing model degenerates to `Sram`
//! exactly: same grant cycles, same burst cost, same per-requester stats,
//! same arbitration events. The fabric's 1-tile differential tests lean on
//! this equivalence.

use crate::sram::{Requester, Sram};
use crate::MemoryPort;
use hht_obs::{Event, EventBus, EventKind, Track};
use serde::{Deserialize, Serialize};

use crate::SramStats;

/// Fabric-wide counters for the banked shared memory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SharedMemStats {
    /// Number of banks.
    pub banks: u64,
    /// Word accesses granted (all tiles, all banks).
    pub accesses: u64,
    /// Attempts rejected because the target bank was busy.
    pub conflicts: u64,
    /// Rejections where the busy bank was held by a different tile — the
    /// contention that only exists because the memory is shared.
    pub cross_tile_conflicts: u64,
    /// Granted transactions that hit a bank's open row (all tiles). Zero
    /// unless a DRAM-class backend with row timing wraps this memory.
    pub row_hits: u64,
    /// Granted transactions that opened a new row.
    pub row_misses: u64,
    /// Refusal cycles lost to a full per-tile in-flight window (the subset
    /// of `conflicts` where no bank was busy — the MLP ceiling).
    pub window_stalls: u64,
    /// Refusal cycles lost to the cycle-wide grant budget (the bandwidth
    /// wall: bank free, window open, budget spent).
    pub bandwidth_stalls: u64,
    /// Grants-per-cycle budget in force (shape datum like `banks`, not a
    /// counter; 0 = unlimited).
    pub grant_budget: u64,
}

impl SharedMemStats {
    /// Fraction of port attempts that lost bank arbitration.
    pub fn conflict_frac(&self) -> f64 {
        let attempts = self.accesses + self.conflicts;
        if attempts == 0 {
            return 0.0;
        }
        self.conflicts as f64 / attempts as f64
    }

    /// Fold another attempt's counters into this one. `banks` and
    /// `grant_budget` are shape data, not counters: they are taken from
    /// `other`, never summed (every attempt of one recovered run shares the
    /// memory shape).
    pub fn absorb(&mut self, other: &SharedMemStats) {
        let SharedMemStats {
            banks,
            accesses,
            conflicts,
            cross_tile_conflicts,
            row_hits,
            row_misses,
            window_stalls,
            bandwidth_stalls,
            grant_budget,
        } = *other;
        self.banks = banks;
        self.accesses += accesses;
        self.conflicts += conflicts;
        self.cross_tile_conflicts += cross_tile_conflicts;
        self.row_hits += row_hits;
        self.row_misses += row_misses;
        self.window_stalls += window_stalls;
        self.bandwidth_stalls += bandwidth_stalls;
        self.grant_budget = grant_budget;
    }
}

#[derive(Debug, Clone, Copy)]
struct Bank {
    free_at: u64,
    /// Tile whose transaction holds the bank while `free_at` is in the
    /// future (valid only then).
    holder: usize,
}

/// Byte-addressable memory shared by N tiles over `banks` interleaved
/// ports. Functional access is untimed (exactly like [`Sram`]); timed
/// access goes through a per-tile [`TilePort`].
#[derive(Debug)]
pub struct SharedMemory {
    data: Vec<u8>,
    word_cycles: u64,
    bank_words: u32,
    banks: Vec<Bank>,
    tile_stats: Vec<SramStats>,
    obs: Vec<Option<Box<EventBus>>>,
    stats: SharedMemStats,
}

/// Default interleave granule: 8 words = 32 bytes, one L1D line.
pub const DEFAULT_BANK_WORDS: u32 = 8;

impl SharedMemory {
    /// Create a shared memory of `size` bytes with `word_cycles` per word,
    /// `banks` interleaved ports and `tiles` accounting domains.
    pub fn new(size: u32, word_cycles: u64, banks: usize, tiles: usize) -> Self {
        Self::from_parts(vec![0; size as usize], word_cycles, banks, tiles)
    }

    /// Re-house an already-built [`Sram`] image (problem data loaded by the
    /// layout code) behind `banks` ports shared by `tiles` tiles.
    pub fn from_sram(sram: Sram, banks: usize, tiles: usize) -> Self {
        let word_cycles = sram.word_cycles();
        Self::from_parts(sram.into_data(), word_cycles, banks, tiles)
    }

    /// Consume the memory and recover its raw byte buffer, discarding port
    /// state. The warm fabric pool recycles the multi-megabyte allocation
    /// of a retired fabric into the next job's image build.
    pub fn into_data(self) -> Vec<u8> {
        self.data
    }

    fn from_parts(data: Vec<u8>, word_cycles: u64, banks: usize, tiles: usize) -> Self {
        assert!(word_cycles >= 1, "an access takes at least one cycle");
        assert!(banks >= 1, "at least one bank");
        assert!(tiles >= 1, "at least one tile");
        SharedMemory {
            data,
            word_cycles,
            bank_words: DEFAULT_BANK_WORDS,
            banks: vec![Bank { free_at: 0, holder: 0 }; banks],
            tile_stats: vec![SramStats::default(); tiles],
            obs: (0..tiles).map(|_| None).collect(),
            stats: SharedMemStats { banks: banks as u64, ..SharedMemStats::default() },
        }
    }

    /// Override the interleave granule (in words). Rarely needed; the
    /// default is one L1D line so line fills stay within a bank.
    pub fn with_bank_words(mut self, bank_words: u32) -> Self {
        assert!(bank_words >= 1, "granule of at least one word");
        self.bank_words = bank_words;
        self
    }

    /// Install a structured-event sink for one tile's arbitration events.
    pub fn set_event_bus_for(&mut self, tile: usize, bus: EventBus) {
        self.obs[tile] = Some(Box::new(bus));
    }

    /// Move one tile's collected arbitration events out of its bus.
    pub fn take_events_for(&mut self, tile: usize) -> Vec<Event> {
        match self.obs[tile].as_mut() {
            Some(bus) => bus.take_events(),
            None => Vec::new(),
        }
    }

    /// Events evicted from one tile's bus by its ring bound.
    pub fn events_dropped_for(&self, tile: usize) -> u64 {
        self.obs[tile].as_ref().map_or(0, |b| b.dropped())
    }

    /// Number of banks.
    pub fn banks(&self) -> usize {
        self.banks.len()
    }

    /// Number of tile accounting domains.
    pub fn tiles(&self) -> usize {
        self.tile_stats.len()
    }

    /// Size in bytes.
    pub fn size(&self) -> u32 {
        self.data.len() as u32
    }

    /// Cycles one word access occupies a bank.
    pub fn word_cycles(&self) -> u64 {
        self.word_cycles
    }

    /// One tile's port statistics (same meaning as [`Sram::stats`] had for
    /// the tile's private SRAM).
    pub fn stats_for(&self, tile: usize) -> SramStats {
        self.tile_stats[tile]
    }

    /// Fabric-wide aggregates.
    pub fn shared_stats(&self) -> SharedMemStats {
        self.stats
    }

    pub(crate) fn bank_of(&self, addr: u32) -> usize {
        ((addr >> 2) / self.bank_words) as usize % self.banks.len()
    }

    /// Cycle the bank frees (≤ `now` means idle). Hook for the DRAM wrapper,
    /// which needs to test occupancy separately from granting.
    pub(crate) fn bank_free_at(&self, bank: usize) -> u64 {
        self.banks[bank].free_at
    }

    /// Record the memory shape's grants-per-cycle budget (a datum the
    /// DRAM wrapper sets once at construction; see
    /// [`SharedMemStats::grant_budget`]).
    pub(crate) fn set_grant_budget(&mut self, budget: u64) {
        self.stats.grant_budget = budget;
    }

    /// Emit one event on `tile`'s bus (no-op without a sink). Hook for the
    /// DRAM wrapper's row-transition and queue-occupancy events.
    pub(crate) fn emit_for(&mut self, tile: usize, now: u64, track: Track, kind: EventKind) {
        if let Some(bus) = self.obs[tile].as_mut() {
            bus.emit(now, track, kind);
        }
    }

    /// Charge `span` window-full refusal cycles to `tile`/`who` starting at
    /// `now`: the tile's bounded in-flight window — not a bank — refused
    /// the request, so no cross-tile attribution applies. Emits the same
    /// per-cycle conflict events a failing retry loop would.
    pub(crate) fn note_window_stall(&mut self, tile: usize, now: u64, span: u64, who: Requester) {
        self.tile_stats[tile].conflicts += span;
        self.stats.conflicts += span;
        self.stats.window_stalls += span;
        match who {
            Requester::Cpu => {
                self.tile_stats[tile].cpu_conflicts += span;
                self.tile_stats[tile].cpu_window_stalls += span;
            }
            Requester::Hht => self.tile_stats[tile].hht_window_stalls += span,
        }
        if let Some(bus) = self.obs[tile].as_mut() {
            for c in 0..span {
                bus.emit(now + c, Track::SramPort, EventKind::ArbConflict { loser: who.label() });
            }
        }
    }

    /// Charge one bandwidth-budget refusal cycle to `tile`/`who`: the bank
    /// was free but the cycle-wide grant budget was spent. Not cross-tile
    /// in the bank-holder sense (no bank is held), though the budget was of
    /// course consumed fabric-wide.
    pub(crate) fn note_bandwidth_stall(&mut self, tile: usize, now: u64, who: Requester) {
        self.tile_stats[tile].conflicts += 1;
        self.stats.conflicts += 1;
        self.stats.bandwidth_stalls += 1;
        if who == Requester::Cpu {
            self.tile_stats[tile].cpu_conflicts += 1;
        }
        if let Some(bus) = self.obs[tile].as_mut() {
            bus.emit(now, Track::SramPort, EventKind::ArbConflict { loser: who.label() });
        }
    }

    /// Record a granted transaction's row-buffer outcome and the extra
    /// response-latency cycles it was charged.
    pub(crate) fn note_row(&mut self, tile: usize, who: Requester, hit: bool, extra: u64) {
        if hit {
            self.stats.row_hits += 1;
        } else {
            self.stats.row_misses += 1;
        }
        if who == Requester::Cpu {
            if hit {
                self.tile_stats[tile].cpu_row_hit_extra += extra;
            } else {
                self.tile_stats[tile].cpu_row_miss_extra += extra;
            }
        }
    }

    pub(crate) fn reject(&mut self, tile: usize, now: u64, bank: usize, who: Requester) {
        self.tile_stats[tile].conflicts += 1;
        self.stats.conflicts += 1;
        let cross = self.banks[bank].holder != tile;
        if cross {
            self.stats.cross_tile_conflicts += 1;
        }
        if who == Requester::Cpu {
            self.tile_stats[tile].cpu_conflicts += 1;
            if cross {
                self.tile_stats[tile].cpu_cross_tile_conflicts += 1;
            }
        }
        if let Some(bus) = self.obs[tile].as_mut() {
            bus.emit(now, Track::SramPort, EventKind::ArbConflict { loser: who.label() });
        }
    }

    pub(crate) fn grant(
        &mut self,
        tile: usize,
        now: u64,
        bank: usize,
        who: Requester,
        words: u64,
    ) -> u64 {
        let cost = self.word_cycles + words.max(1) - 1;
        self.banks[bank] = Bank { free_at: now + cost, holder: tile };
        match who {
            Requester::Cpu => self.tile_stats[tile].cpu_accesses += words,
            Requester::Hht => self.tile_stats[tile].hht_accesses += words,
        }
        self.stats.accesses += words;
        if let Some(bus) = self.obs[tile].as_mut() {
            bus.emit(now, Track::SramPort, EventKind::ArbGrant { requester: who.label() });
        }
        now + cost
    }

    /// Timed word access by `tile` (see [`MemoryPort::try_start`]). A burst
    /// is charged wholly to the bank of its first word.
    pub fn try_start_for(
        &mut self,
        tile: usize,
        now: u64,
        addr: u32,
        who: Requester,
    ) -> Option<u64> {
        self.try_start_burst_for(tile, now, addr, who, 1)
    }

    /// Timed burst access by `tile` (see [`MemoryPort::try_start_burst`]).
    pub fn try_start_burst_for(
        &mut self,
        tile: usize,
        now: u64,
        addr: u32,
        who: Requester,
        words: u64,
    ) -> Option<u64> {
        let bank = self.bank_of(addr);
        if self.banks[bank].free_at > now {
            self.reject(tile, now, bank, who);
            return None;
        }
        Some(self.grant(tile, now, bank, who, words))
    }

    /// Earliest cycle at which any busy bank frees, `None` when all idle.
    pub fn next_event(&self, now: u64) -> Option<u64> {
        self.banks.iter().map(|b| b.free_at).filter(|&t| t > now).min()
    }

    /// When the bank serving `addr` frees, `None` when it is already free.
    pub fn next_event_at(&self, addr: u32, now: u64) -> Option<u64> {
        let t = self.banks[self.bank_of(addr)].free_at;
        (t > now).then_some(t)
    }

    /// Replay `span` skipped arbitration losses by `tile`/`who` against the
    /// bank serving `addr` (which the cycle-skipping scheduler has proved
    /// stays busy through the span, so the holder — and hence the
    /// cross-tile attribution — is constant).
    pub fn skip_conflicts_for(
        &mut self,
        tile: usize,
        now: u64,
        span: u64,
        addr: u32,
        who: Requester,
    ) {
        let bank = self.bank_of(addr);
        self.tile_stats[tile].conflicts += span;
        self.stats.conflicts += span;
        let cross = self.banks[bank].holder != tile;
        if cross {
            self.stats.cross_tile_conflicts += span;
        }
        if who == Requester::Cpu {
            self.tile_stats[tile].cpu_conflicts += span;
            if cross {
                self.tile_stats[tile].cpu_cross_tile_conflicts += span;
            }
        }
        if let Some(bus) = self.obs[tile].as_mut() {
            for c in 0..span {
                bus.emit(now + c, Track::SramPort, EventKind::ArbConflict { loser: who.label() });
            }
        }
    }

    // ---- functional storage (mirrors `Sram`) ----

    /// Read one byte.
    pub fn read_u8(&self, addr: u32) -> u8 {
        self.data[addr as usize]
    }

    /// Write one byte.
    pub fn write_u8(&mut self, addr: u32, value: u8) {
        self.data[addr as usize] = value;
    }

    /// Read a little-endian 16-bit halfword.
    pub fn read_u16(&self, addr: u32) -> u16 {
        let a = addr as usize;
        u16::from_le_bytes(self.data[a..a + 2].try_into().expect("in-range read"))
    }

    /// Write a little-endian 16-bit halfword.
    pub fn write_u16(&mut self, addr: u32, value: u16) {
        let a = addr as usize;
        self.data[a..a + 2].copy_from_slice(&value.to_le_bytes());
    }

    /// Read a little-endian 32-bit word (panics out of range).
    pub fn read_u32(&self, addr: u32) -> u32 {
        let a = addr as usize;
        u32::from_le_bytes(self.data[a..a + 4].try_into().expect("in-range read"))
    }

    /// Read a little-endian 32-bit word, or `None` out of range.
    pub fn read_u32_checked(&self, addr: u32) -> Option<u32> {
        let a = addr as usize;
        let end = a.checked_add(4)?;
        let bytes = self.data.get(a..end)?;
        Some(u32::from_le_bytes(bytes.try_into().expect("4-byte slice")))
    }

    /// Write a little-endian 32-bit word.
    pub fn write_u32(&mut self, addr: u32, value: u32) {
        let a = addr as usize;
        self.data[a..a + 4].copy_from_slice(&value.to_le_bytes());
    }

    /// Flip bit `bit % 32` of the word at `addr` (fault injection); `false`
    /// without touching memory when out of range.
    pub fn corrupt_word(&mut self, addr: u32, bit: u8) -> bool {
        match self.read_u32_checked(addr) {
            Some(w) => {
                self.write_u32(addr, w ^ (1 << (bit % 32)));
                true
            }
            None => false,
        }
    }

    /// Read an `f32`.
    pub fn read_f32(&self, addr: u32) -> f32 {
        f32::from_bits(self.read_u32(addr))
    }

    /// Read `n` consecutive `f32`s starting at `addr`.
    pub fn read_f32s(&self, addr: u32, n: usize) -> Vec<f32> {
        (0..n).map(|i| self.read_f32(addr + 4 * i as u32)).collect()
    }

    /// Read `n` consecutive `u32`s starting at `addr`.
    pub fn read_u32s(&self, addr: u32, n: usize) -> Vec<u32> {
        (0..n).map(|i| self.read_u32(addr + 4 * i as u32)).collect()
    }
}

/// One tile's view of the [`SharedMemory`]: the object the tile's core and
/// HHT hold as their `&mut dyn MemoryPort` for the current cycle.
pub struct TilePort<'a> {
    mem: &'a mut SharedMemory,
    tile: usize,
}

impl<'a> TilePort<'a> {
    /// Borrow `mem` as tile `tile`'s port.
    pub fn new(mem: &'a mut SharedMemory, tile: usize) -> Self {
        TilePort { mem, tile }
    }
}

impl MemoryPort for TilePort<'_> {
    fn try_start(&mut self, now: u64, addr: u32, who: Requester) -> Option<u64> {
        self.mem.try_start_for(self.tile, now, addr, who)
    }

    fn try_start_burst(&mut self, now: u64, addr: u32, who: Requester, words: u64) -> Option<u64> {
        self.mem.try_start_burst_for(self.tile, now, addr, who, words)
    }

    fn next_event(&self, now: u64) -> Option<u64> {
        self.mem.next_event(now)
    }

    fn next_event_at(&self, addr: u32, now: u64) -> Option<u64> {
        self.mem.next_event_at(addr, now)
    }

    fn skip_conflicts(&mut self, now: u64, span: u64, addr: u32, who: Requester) {
        self.mem.skip_conflicts_for(self.tile, now, span, addr, who)
    }

    fn size(&self) -> u32 {
        self.mem.size()
    }

    fn word_cycles(&self) -> u64 {
        self.mem.word_cycles()
    }

    fn read_u8(&self, addr: u32) -> u8 {
        self.mem.read_u8(addr)
    }

    fn read_u16(&self, addr: u32) -> u16 {
        self.mem.read_u16(addr)
    }

    fn read_u32(&self, addr: u32) -> u32 {
        self.mem.read_u32(addr)
    }

    fn read_u32_checked(&self, addr: u32) -> Option<u32> {
        self.mem.read_u32_checked(addr)
    }

    fn write_u8(&mut self, addr: u32, value: u8) {
        self.mem.write_u8(addr, value)
    }

    fn write_u16(&mut self, addr: u32, value: u16) {
        self.mem.write_u16(addr, value)
    }

    fn write_u32(&mut self, addr: u32, value: u32) {
        self.mem.write_u32(addr, value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One bank, one tile: grant cycles, burst cost and stats match the
    /// single-ported `Sram` call for call.
    #[test]
    fn single_bank_matches_sram() {
        let mut sram = Sram::new(256, 2);
        let mut shared = SharedMemory::new(256, 2, 1, 1);
        let script: &[(u64, u32, Requester, u64)] = &[
            (0, 0x00, Requester::Cpu, 1),
            (1, 0x40, Requester::Hht, 1),
            (2, 0x40, Requester::Hht, 1),
            (4, 0x80, Requester::Cpu, 8),
            (7, 0x10, Requester::Hht, 1),
            (12, 0x10, Requester::Hht, 1),
        ];
        for &(now, addr, who, words) in script {
            let a = sram.try_start_burst(now, who, words);
            let b = shared.try_start_burst_for(0, now, addr, who, words);
            assert_eq!(a, b, "diverged at cycle {now}");
            assert_eq!(sram.next_event(now), shared.next_event(now));
        }
        assert_eq!(sram.stats(), shared.stats_for(0));
        assert_eq!(shared.shared_stats().cross_tile_conflicts, 0);
    }

    #[test]
    fn different_banks_proceed_in_parallel() {
        // Granule 8 words = 32 bytes: 0x00 -> bank 0, 0x20 -> bank 1.
        let mut m = SharedMemory::new(256, 4, 2, 2);
        assert_eq!(m.try_start_for(0, 0, 0x00, Requester::Cpu), Some(4));
        assert_eq!(m.try_start_for(1, 0, 0x20, Requester::Cpu), Some(4));
        // Same bank, other tile: cross-tile conflict.
        assert_eq!(m.try_start_for(1, 1, 0x00, Requester::Hht), None);
        // Same bank, same tile (its own in-flight txn): not cross-tile.
        assert_eq!(m.try_start_for(0, 1, 0x04, Requester::Hht), None);
        let s = m.shared_stats();
        assert_eq!(s.accesses, 2);
        assert_eq!(s.conflicts, 2);
        assert_eq!(s.cross_tile_conflicts, 1);
        assert_eq!(m.stats_for(0).conflicts, 1);
        assert_eq!(m.stats_for(1).conflicts, 1);
        // Bank-targeted hints.
        assert_eq!(m.next_event_at(0x00, 1), Some(4));
        assert_eq!(m.next_event_at(0x40, 1), Some(4)); // bank 0 again (wraps)
        assert_eq!(m.next_event(4), None);
    }

    #[test]
    fn from_sram_preserves_the_image() {
        let mut sram = Sram::new(64, 1);
        sram.load_words(0, &[1, 2, 3, 4]);
        let m = SharedMemory::from_sram(sram, 2, 2);
        assert_eq!(m.read_u32s(0, 4), vec![1, 2, 3, 4]);
        assert_eq!(m.word_cycles(), 1);
        assert_eq!(m.banks(), 2);
        assert_eq!(m.tiles(), 2);
    }

    #[test]
    fn skip_replay_matches_per_cycle_conflicts() {
        // Per-cycle: tile 1 retries a bank held by tile 0 for 3 cycles.
        let mut a = SharedMemory::new(64, 8, 1, 2);
        a.try_start_for(0, 0, 0x0, Requester::Hht);
        for c in 1..4 {
            assert_eq!(a.try_start_for(1, c, 0x4, Requester::Cpu), None);
        }
        // Bulk replay of the same span.
        let mut b = SharedMemory::new(64, 8, 1, 2);
        b.try_start_for(0, 0, 0x0, Requester::Hht);
        b.skip_conflicts_for(1, 1, 3, 0x4, Requester::Cpu);
        assert_eq!(a.stats_for(1), b.stats_for(1));
        assert_eq!(a.shared_stats(), b.shared_stats());
    }

    #[test]
    fn conflict_frac_counts_rejections() {
        let mut m = SharedMemory::new(64, 2, 1, 1);
        m.try_start_for(0, 0, 0, Requester::Cpu);
        m.try_start_for(0, 1, 0, Requester::Cpu);
        assert_eq!(m.shared_stats().conflict_frac(), 0.5);
    }
}
