//! The on-chip SRAM: functional storage plus a single-port timing model.

use hht_obs::{Event, EventBus, EventKind, Track};
use serde::{Deserialize, Serialize};

/// Access counters for the SRAM port.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SramStats {
    /// Word accesses granted to the CPU port.
    pub cpu_accesses: u64,
    /// Word accesses granted to the HHT port.
    pub hht_accesses: u64,
    /// Attempts rejected because the port was busy (contention).
    pub conflicts: u64,
    /// The subset of `conflicts` whose loser was the CPU — one per stalled
    /// CPU cycle, so this equals the core's `mem_port_stall_cycles`.
    pub cpu_conflicts: u64,
    /// The subset of `cpu_conflicts` where the port/bank was held by a
    /// *different* tile (always zero for a private single-tile SRAM).
    pub cpu_cross_tile_conflicts: u64,
    /// Extra response-latency cycles (beyond the flat port occupancy)
    /// charged to CPU-granted transactions that hit the open row. Zero on
    /// SRAM-class backends; the DRAM backend fills it in.
    pub cpu_row_hit_extra: u64,
    /// Extra response-latency cycles charged to CPU-granted transactions
    /// that opened a new row (precharge + activate).
    pub cpu_row_miss_extra: u64,
    /// The subset of `cpu_conflicts` refused because the tile's bounded
    /// in-flight window was full (the MLP ceiling), not because a bank was
    /// busy.
    pub cpu_window_stalls: u64,
    /// Window-full refusal cycles whose loser was the HHT.
    pub hht_window_stalls: u64,
}

/// Which agent is asking for the port (for statistics only — priority is
/// established by call order within a cycle: the system steps the CPU
/// first).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Requester {
    /// The primary core.
    Cpu,
    /// The Hardware Helper Thread.
    Hht,
}

impl Requester {
    /// Stable label used on the arbitration event track.
    pub fn label(self) -> &'static str {
        match self {
            Requester::Cpu => "cpu",
            Requester::Hht => "hht",
        }
    }
}

/// Byte-addressable SRAM with a single shared port.
///
/// *Functional* reads/writes (`read_u32`, `write_u32`, …) are untimed —
/// they are used to build memory images and by agents that have already
/// been granted the port. *Timed* access goes through [`Sram::try_start`]:
/// each word access occupies the port for `word_cycles` cycles, and a
/// request made while the port is busy is rejected (the caller retries next
/// cycle, which is how contention between CPU and HHT arises).
#[derive(Debug, Clone)]
pub struct Sram {
    data: Vec<u8>,
    word_cycles: u64,
    free_at: u64,
    stats: SramStats,
    obs: Option<Box<EventBus>>,
}

impl Sram {
    /// Create an SRAM of `size` bytes with `word_cycles` per word access.
    pub fn new(size: u32, word_cycles: u64) -> Self {
        assert!(word_cycles >= 1, "an access takes at least one cycle");
        Sram {
            data: vec![0; size as usize],
            word_cycles,
            free_at: 0,
            stats: SramStats::default(),
            obs: None,
        }
    }

    /// Install a structured-event sink for arbitration grants/conflicts.
    pub fn set_event_bus(&mut self, bus: EventBus) {
        self.obs = Some(Box::new(bus));
    }

    /// Move the collected arbitration events out of the port's bus (empty
    /// when no bus is installed).
    pub fn take_events(&mut self) -> Vec<Event> {
        match self.obs.as_mut() {
            Some(bus) => bus.take_events(),
            None => Vec::new(),
        }
    }

    /// Events evicted from the port's bus by its ring bound.
    pub fn events_dropped(&self) -> u64 {
        self.obs.as_ref().map_or(0, |b| b.dropped())
    }

    /// Size in bytes.
    pub fn size(&self) -> u32 {
        self.data.len() as u32
    }

    /// Consume the SRAM and hand its byte array to another memory model
    /// (the banked shared memory re-houses images built here).
    pub fn into_data(self) -> Vec<u8> {
        self.data
    }

    /// House an existing byte array (e.g. a recycled buffer from a retired
    /// fabric, or a cached problem image) as a fresh SRAM. The port state
    /// is pristine — identical to [`Sram::new`] over the same bytes — so a
    /// warm-pool rebuild is bit-identical to a cold one by construction.
    pub fn from_data(data: Vec<u8>, word_cycles: u64) -> Self {
        assert!(word_cycles >= 1, "an access takes at least one cycle");
        assert!(u32::try_from(data.len()).is_ok(), "SRAM is 32-bit addressed");
        Sram { data, word_cycles, free_at: 0, stats: SramStats::default(), obs: None }
    }

    /// Cycles one word access occupies the port.
    pub fn word_cycles(&self) -> u64 {
        self.word_cycles
    }

    /// Port statistics.
    pub fn stats(&self) -> SramStats {
        self.stats
    }

    /// Try to start a word access at cycle `now`.
    ///
    /// Returns the completion cycle (data available / write committed) when
    /// the port is free, or `None` when busy. Call order within a cycle is
    /// the arbitration order.
    pub fn try_start(&mut self, now: u64, who: Requester) -> Option<u64> {
        if self.free_at > now {
            self.stats.conflicts += 1;
            if who == Requester::Cpu {
                self.stats.cpu_conflicts += 1;
            }
            if let Some(bus) = self.obs.as_mut() {
                bus.emit(now, Track::SramPort, EventKind::ArbConflict { loser: who.label() });
            }
            return None;
        }
        self.free_at = now + self.word_cycles;
        match who {
            Requester::Cpu => self.stats.cpu_accesses += 1,
            Requester::Hht => self.stats.hht_accesses += 1,
        }
        if let Some(bus) = self.obs.as_mut() {
            bus.emit(now, Track::SramPort, EventKind::ArbGrant { requester: who.label() });
        }
        Some(now + self.word_cycles)
    }

    /// Try to start a burst of `words` consecutive word accesses (an L1D
    /// line fill). Sequential bursts pipeline inside the array: the first
    /// word pays the full access latency, each further word streams out in
    /// one cycle. Returns the completion cycle or `None` when busy.
    pub fn try_start_burst(&mut self, now: u64, who: Requester, words: u64) -> Option<u64> {
        if self.free_at > now {
            self.stats.conflicts += 1;
            if who == Requester::Cpu {
                self.stats.cpu_conflicts += 1;
            }
            if let Some(bus) = self.obs.as_mut() {
                bus.emit(now, Track::SramPort, EventKind::ArbConflict { loser: who.label() });
            }
            return None;
        }
        let cost = self.word_cycles + words.max(1) - 1;
        self.free_at = now + cost;
        match who {
            Requester::Cpu => self.stats.cpu_accesses += words,
            Requester::Hht => self.stats.hht_accesses += words,
        }
        if let Some(bus) = self.obs.as_mut() {
            bus.emit(now, Track::SramPort, EventKind::ArbGrant { requester: who.label() });
        }
        Some(now + cost)
    }

    /// Cycle at which the port becomes free.
    pub fn free_at(&self) -> u64 {
        self.free_at
    }

    /// The cycle at which the port next changes state, when busy at `now` —
    /// the cycle-skipping scheduler's hint. `None` while idle (an idle port
    /// has no self-scheduled work; only the core or the HHT can start a
    /// transaction).
    #[inline]
    pub fn next_event(&self, now: u64) -> Option<u64> {
        (self.free_at > now).then_some(self.free_at)
    }

    /// Replay `span` skipped arbitration losses by `who`, one per cycle
    /// starting at `now` — exactly what `span` failing [`Sram::try_start`]
    /// retries would have recorded, including the per-cycle conflict events
    /// when a sink is installed (event streams stay bit-identical between
    /// the per-cycle and cycle-skipping schedulers).
    pub fn skip_conflicts(&mut self, now: u64, span: u64, who: Requester) {
        self.stats.conflicts += span;
        if who == Requester::Cpu {
            self.stats.cpu_conflicts += span;
        }
        if let Some(bus) = self.obs.as_mut() {
            for c in 0..span {
                bus.emit(now + c, Track::SramPort, EventKind::ArbConflict { loser: who.label() });
            }
        }
    }

    // ---- functional storage ----

    /// Read one byte.
    pub fn read_u8(&self, addr: u32) -> u8 {
        self.data[addr as usize]
    }

    /// Write one byte.
    pub fn write_u8(&mut self, addr: u32, value: u8) {
        self.data[addr as usize] = value;
    }

    /// Read a little-endian 16-bit halfword.
    pub fn read_u16(&self, addr: u32) -> u16 {
        let a = addr as usize;
        u16::from_le_bytes(self.data[a..a + 2].try_into().expect("in-range SRAM read"))
    }

    /// Write a little-endian 16-bit halfword.
    pub fn write_u16(&mut self, addr: u32, value: u16) {
        let a = addr as usize;
        self.data[a..a + 2].copy_from_slice(&value.to_le_bytes());
    }

    /// Read a little-endian 32-bit word. Panics on out-of-range addresses
    /// (a simulator wiring bug, not a guest-program condition).
    pub fn read_u32(&self, addr: u32) -> u32 {
        let a = addr as usize;
        u32::from_le_bytes(self.data[a..a + 4].try_into().expect("in-range SRAM read"))
    }

    /// Read a little-endian 32-bit word, or `None` when any byte of the
    /// word falls outside the array. Guest-programmable agents (the HHT
    /// engines, whose base addresses come from software-written MMRs) use
    /// this so bad programming reads open-bus instead of crashing the
    /// simulator.
    pub fn read_u32_checked(&self, addr: u32) -> Option<u32> {
        let a = addr as usize;
        let end = a.checked_add(4)?;
        let bytes = self.data.get(a..end)?;
        Some(u32::from_le_bytes(bytes.try_into().expect("4-byte slice")))
    }

    /// Flip bit `bit % 32` of the word at `addr` (fault injection: an SRAM
    /// soft error). Returns `false` without touching memory when the word
    /// is out of range.
    pub fn corrupt_word(&mut self, addr: u32, bit: u8) -> bool {
        match self.read_u32_checked(addr) {
            Some(w) => {
                self.write_u32(addr, w ^ (1 << (bit % 32)));
                true
            }
            None => false,
        }
    }

    /// Write a little-endian 32-bit word.
    pub fn write_u32(&mut self, addr: u32, value: u32) {
        let a = addr as usize;
        self.data[a..a + 4].copy_from_slice(&value.to_le_bytes());
    }

    /// Read an `f32` (bit pattern of the word at `addr`).
    pub fn read_f32(&self, addr: u32) -> f32 {
        f32::from_bits(self.read_u32(addr))
    }

    /// Write an `f32`.
    pub fn write_f32(&mut self, addr: u32, value: f32) {
        self.write_u32(addr, value.to_bits());
    }

    /// Copy a `u32` slice into memory starting at `addr`.
    pub fn load_words(&mut self, addr: u32, words: &[u32]) {
        for (i, w) in words.iter().enumerate() {
            self.write_u32(addr + 4 * i as u32, *w);
        }
    }

    /// Copy an `f32` slice into memory starting at `addr`.
    pub fn load_f32s(&mut self, addr: u32, values: &[f32]) {
        for (i, v) in values.iter().enumerate() {
            self.write_f32(addr + 4 * i as u32, *v);
        }
    }

    /// Read `n` consecutive `f32`s starting at `addr`.
    pub fn read_f32s(&self, addr: u32, n: usize) -> Vec<f32> {
        (0..n).map(|i| self.read_f32(addr + 4 * i as u32)).collect()
    }

    /// Read `n` consecutive `u32`s starting at `addr`.
    pub fn read_u32s(&self, addr: u32, n: usize) -> Vec<u32> {
        (0..n).map(|i| self.read_u32(addr + 4 * i as u32)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn functional_read_write() {
        let mut m = Sram::new(64, 2);
        m.write_u32(0, 0xdeadbeef);
        assert_eq!(m.read_u32(0), 0xdeadbeef);
        m.write_f32(4, 1.5);
        assert_eq!(m.read_f32(4), 1.5);
        m.load_words(8, &[1, 2, 3]);
        assert_eq!(m.read_u32s(8, 3), vec![1, 2, 3]);
        m.load_f32s(20, &[0.5, -0.5]);
        assert_eq!(m.read_f32s(20, 2), vec![0.5, -0.5]);
    }

    #[test]
    fn port_occupancy() {
        let mut m = Sram::new(64, 2);
        // First access at cycle 0 completes at 2.
        assert_eq!(m.try_start(0, Requester::Cpu), Some(2));
        // Port busy at cycle 1.
        assert_eq!(m.try_start(1, Requester::Hht), None);
        // Free again at cycle 2.
        assert_eq!(m.try_start(2, Requester::Hht), Some(4));
        let s = m.stats();
        assert_eq!(s.cpu_accesses, 1);
        assert_eq!(s.hht_accesses, 1);
        assert_eq!(s.conflicts, 1);
    }

    #[test]
    fn call_order_is_priority() {
        let mut m = Sram::new(64, 1);
        // Same cycle: CPU asks first and wins; HHT is rejected.
        assert!(m.try_start(5, Requester::Cpu).is_some());
        assert!(m.try_start(5, Requester::Hht).is_none());
    }

    #[test]
    fn single_cycle_word_access() {
        let mut m = Sram::new(64, 1);
        assert_eq!(m.try_start(0, Requester::Cpu), Some(1));
        assert_eq!(m.try_start(1, Requester::Cpu), Some(2));
    }

    #[test]
    fn sub_word_access() {
        let mut m = Sram::new(64, 1);
        m.write_u32(0, 0x11223344);
        assert_eq!(m.read_u8(0), 0x44);
        assert_eq!(m.read_u8(3), 0x11);
        assert_eq!(m.read_u16(0), 0x3344);
        assert_eq!(m.read_u16(2), 0x1122);
        m.write_u8(1, 0xAA);
        assert_eq!(m.read_u32(0), 0x1122AA44);
        m.write_u16(2, 0xBEEF);
        assert_eq!(m.read_u32(0), 0xBEEFAA44);
    }

    #[test]
    fn burst_pipelines_after_first_word() {
        let mut m = Sram::new(64, 2);
        // 2 (first word) + 7 (streamed) = 9 cycles for an 8-word line.
        assert_eq!(m.try_start_burst(0, Requester::Cpu, 8), Some(9));
        assert_eq!(m.try_start(5, Requester::Hht), None);
        assert_eq!(m.try_start(9, Requester::Hht), Some(11));
        assert_eq!(m.stats().cpu_accesses, 8);
    }

    #[test]
    #[should_panic]
    fn out_of_range_read_panics() {
        let m = Sram::new(8, 1);
        m.read_u32(8);
    }

    #[test]
    fn checked_read_is_total() {
        let mut m = Sram::new(8, 1);
        m.write_u32(4, 7);
        assert_eq!(m.read_u32_checked(4), Some(7));
        assert_eq!(m.read_u32_checked(5), None); // straddles the end
        assert_eq!(m.read_u32_checked(8), None);
        assert_eq!(m.read_u32_checked(u32::MAX), None); // end overflows
    }

    #[test]
    fn corrupt_word_flips_one_bit() {
        let mut m = Sram::new(8, 1);
        m.write_u32(0, 0xF0);
        assert!(m.corrupt_word(0, 4));
        assert_eq!(m.read_u32(0), 0xE0);
        assert!(m.corrupt_word(0, 36)); // bit index wraps mod 32
        assert_eq!(m.read_u32(0), 0xF0);
        assert!(!m.corrupt_word(8, 0)); // out of range: no-op
    }

    #[test]
    #[should_panic(expected = "at least one cycle")]
    fn zero_latency_rejected() {
        Sram::new(8, 0);
    }
}
