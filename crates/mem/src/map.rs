//! Physical address map of the simulated MCU.
//!
//! | Region | Base | Size |
//! |---|---|---|
//! | On-chip SRAM | `0x0000_0000` | 1 MB (Table 1) |
//! | HHT memory-mapped registers (§3.1) | `0x4000_0000` | 4 KB |
//! | HHT CPU-side buffer window (§3.1 "fixed buffer address") | `0x4001_0000` | 4 KB |

/// SRAM base address.
pub const RAM_BASE: u32 = 0x0000_0000;
/// Default SRAM size: 1 MB, per Table 1.
pub const RAM_SIZE: u32 = 1 << 20;

/// Base of the HHT's memory-mapped configuration registers.
pub const HHT_MMR_BASE: u32 = 0x4000_0000;
/// Size of the MMR window.
pub const HHT_MMR_SIZE: u32 = 0x1000;

/// The fixed buffer address the CPU loads gathered values from (§3.1: "The
/// software uses a fixed buffer address to load from").
pub const HHT_BUF_BASE: u32 = 0x4001_0000;
/// Size of the buffer load window.
pub const HHT_BUF_SIZE: u32 = 0x1000;

/// Is `addr` inside the SRAM region (of the given size)?
pub fn is_ram(addr: u32, ram_size: u32) -> bool {
    // RAM_BASE is 0; keep the subtraction form so the check stays correct
    // if the base ever moves.
    addr.wrapping_sub(RAM_BASE) < ram_size
}

/// Is `addr` inside the HHT MMR window?
pub fn is_hht_mmr(addr: u32) -> bool {
    (HHT_MMR_BASE..HHT_MMR_BASE + HHT_MMR_SIZE).contains(&addr)
}

/// Is `addr` inside the HHT buffer window?
pub fn is_hht_buffer(addr: u32) -> bool {
    (HHT_BUF_BASE..HHT_BUF_BASE + HHT_BUF_SIZE).contains(&addr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_do_not_overlap() {
        assert!(!is_ram(HHT_MMR_BASE, RAM_SIZE));
        assert!(!is_ram(HHT_BUF_BASE, RAM_SIZE));
        assert!(!is_hht_mmr(HHT_BUF_BASE));
        assert!(!is_hht_buffer(HHT_MMR_BASE));
    }

    #[test]
    fn region_membership() {
        assert!(is_ram(0, RAM_SIZE));
        assert!(is_ram(RAM_SIZE - 4, RAM_SIZE));
        assert!(!is_ram(RAM_SIZE, RAM_SIZE));
        assert!(is_hht_mmr(HHT_MMR_BASE));
        assert!(is_hht_mmr(HHT_MMR_BASE + HHT_MMR_SIZE - 4));
        assert!(!is_hht_mmr(HHT_MMR_BASE + HHT_MMR_SIZE));
        assert!(is_hht_buffer(HHT_BUF_BASE));
        assert!(!is_hht_buffer(HHT_BUF_BASE + HHT_BUF_SIZE));
    }
}
