//! The typed memory-port interface between cycle-domain components and
//! whatever memory implementation backs them.
//!
//! Before the fabric refactor every component held a concrete `&mut Sram`;
//! now the core and the HHT engines speak [`MemoryPort`], so the same
//! component code runs against the single-ported [`Sram`](crate::Sram) (the
//! paper's one-core-one-HHT configuration) or against one tile's view of
//! the banked [`SharedMemory`](crate::SharedMemory) (the N-tile fabric).
//!
//! The trait deliberately mirrors `Sram`'s split personality:
//!
//! - *timed* access ([`MemoryPort::try_start`]/[`MemoryPort::try_start_burst`])
//!   models port arbitration — a request while the port (bank) is busy is
//!   rejected and the caller retries next cycle;
//! - *functional* access (`read_u32`, `write_u32`, …) is untimed and used
//!   by agents that already won the port for the current transaction.

use crate::sram::Requester;

/// Why a split-transaction request was refused this cycle (see
/// [`MemoryPort::request`]). The caller retries next cycle in every case;
/// the distinction is what the retry is waiting *for*, which the scheduler
/// uses to pick a sound park bound and the profiler uses to attribute the
/// stall.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemRefusal {
    /// The bank serving the address is occupied by an earlier transaction.
    BankBusy,
    /// The requesting tile's bounded in-flight window is full (Little's-law
    /// MLP ceiling): no new transaction may issue until a response retires.
    WindowFull,
    /// The memory's cycle-wide grant budget is spent (bandwidth limit);
    /// the bank itself is free, so a retry next cycle usually wins.
    BandwidthExhausted,
}

/// Row-buffer outcome of a granted request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowOutcome {
    /// The backend models no row buffer (flat SRAM-class timing).
    Flat,
    /// The access hit the bank's open row.
    Hit,
    /// The access opened a new row (precharge + activate charged).
    Miss,
}

/// Result of a split-transaction request issue (see [`MemoryPort::request`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemIssue {
    /// The request was accepted; its response (data / write commit) is
    /// ready at `data_at`, queryable with [`MemoryPort::response_ready`].
    Granted {
        /// Cycle the response arrives.
        data_at: u64,
        /// Row-buffer outcome (always [`RowOutcome::Flat`] on SRAM-class
        /// backends).
        row: RowOutcome,
    },
    /// The request was not accepted this cycle; retry next cycle.
    Refused(MemRefusal),
}

impl MemIssue {
    /// The response-ready cycle of a granted issue, `None` when refused —
    /// the shape the legacy same-cycle `try_start` protocol exposed.
    pub fn data_at(self) -> Option<u64> {
        match self {
            MemIssue::Granted { data_at, .. } => Some(data_at),
            MemIssue::Refused(_) => None,
        }
    }
}

/// A component-facing memory port: timed arbitration plus functional
/// storage access. Implemented by [`Sram`](crate::Sram) (single shared
/// port) and [`FabricPort`](crate::FabricPort) (one tile's view of the
/// banked shared memory or the DRAM-class backend wrapped around it).
pub trait MemoryPort {
    // ---- timed port model ----

    /// Try to start a word access to `addr` at cycle `now`; `Some(done_at)`
    /// on grant, `None` when the port (bank) is busy. Call order within a
    /// cycle is the arbitration order. The single-ported [`Sram`](crate::Sram)
    /// ignores `addr`; the banked memory uses it to select the bank.
    fn try_start(&mut self, now: u64, addr: u32, who: Requester) -> Option<u64>;

    /// Try to start a burst of `words` consecutive word accesses starting
    /// at `addr` (an L1D line fill). Returns the completion cycle or `None`
    /// when busy.
    fn try_start_burst(&mut self, now: u64, addr: u32, who: Requester, words: u64) -> Option<u64>;

    // ---- split-transaction protocol ----

    /// Issue a word request to `addr` at cycle `now`. On grant the port
    /// queues a response for `data_at` and the requestor is free to do other
    /// work until [`MemoryPort::response_ready`]; on refusal the caller
    /// retries next cycle (the refusal kind says what the retry waits for).
    ///
    /// The default wraps the legacy same-cycle [`MemoryPort::try_start`]
    /// protocol: every grant is a [`RowOutcome::Flat`] response and every
    /// refusal a [`MemRefusal::BankBusy`] — exactly the zero-latency
    /// degenerate case. Backends that model response latency, in-flight
    /// windows or bandwidth budgets override this with the real outcome.
    fn request(&mut self, now: u64, addr: u32, who: Requester) -> MemIssue {
        match self.try_start(now, addr, who) {
            Some(data_at) => MemIssue::Granted { data_at, row: RowOutcome::Flat },
            None => MemIssue::Refused(MemRefusal::BankBusy),
        }
    }

    /// Issue a burst request (an L1D line fill) — the burst counterpart of
    /// [`MemoryPort::request`], one transaction against the window and the
    /// bandwidth budget regardless of `words`.
    fn request_burst(&mut self, now: u64, addr: u32, who: Requester, words: u64) -> MemIssue {
        match self.try_start_burst(now, addr, who, words) {
            Some(data_at) => MemIssue::Granted { data_at, row: RowOutcome::Flat },
            None => MemIssue::Refused(MemRefusal::BankBusy),
        }
    }

    /// Has the response issued with `data_at` arrived by cycle `now`? The
    /// response side of the split transaction: responses are delivered at a
    /// fixed cycle, never reordered and never retracted, so this is a pure
    /// comparison on every backend.
    fn response_ready(&self, now: u64, data_at: u64) -> bool {
        data_at <= now
    }

    /// The cycle at which the port next changes state when busy at `now`
    /// (the cycle-skipping scheduler's hint); `None` while idle. For a
    /// banked memory this is the earliest free cycle over all busy banks.
    fn next_event(&self, now: u64) -> Option<u64>;

    /// Like [`MemoryPort::next_event`], but for the specific port/bank that
    /// serves `addr` — `None` when that bank is already free at `now`. On a
    /// single-ported memory this is the same as `next_event`.
    fn next_event_at(&self, addr: u32, now: u64) -> Option<u64> {
        let _ = addr;
        self.next_event(now)
    }

    /// Replay `span` skipped arbitration losses by `who` against the bank
    /// serving `addr`, one per cycle starting at `now` — the per-requestor
    /// bulk-replay hook the cycle-skipping scheduler uses so conflict
    /// counters and per-cycle conflict events stay bit-identical to the
    /// per-cycle loop. The single-ported SRAM ignores `addr`.
    fn skip_conflicts(&mut self, now: u64, span: u64, addr: u32, who: Requester);

    // ---- functional storage ----

    /// Size in bytes.
    fn size(&self) -> u32;

    /// Cycles one word access occupies the port.
    fn word_cycles(&self) -> u64;

    /// Read one byte.
    fn read_u8(&self, addr: u32) -> u8;

    /// Read a little-endian 16-bit halfword.
    fn read_u16(&self, addr: u32) -> u16;

    /// Read a little-endian 32-bit word (panics out of range — a simulator
    /// wiring bug, not a guest condition).
    fn read_u32(&self, addr: u32) -> u32;

    /// Read a little-endian 32-bit word, or `None` when any byte falls
    /// outside the array (guest-programmed agents read open-bus instead of
    /// crashing the simulator).
    fn read_u32_checked(&self, addr: u32) -> Option<u32>;

    /// Write one byte.
    fn write_u8(&mut self, addr: u32, value: u8);

    /// Write a little-endian 16-bit halfword.
    fn write_u16(&mut self, addr: u32, value: u16);

    /// Write a little-endian 32-bit word.
    fn write_u32(&mut self, addr: u32, value: u32);

    /// Read an `f32` (bit pattern of the word at `addr`).
    fn read_f32(&self, addr: u32) -> f32 {
        f32::from_bits(self.read_u32(addr))
    }

    /// Write an `f32`.
    fn write_f32(&mut self, addr: u32, value: f32) {
        self.write_u32(addr, value.to_bits());
    }

    /// Copy a `u32` slice into memory starting at `addr`.
    fn load_words(&mut self, addr: u32, words: &[u32]) {
        for (i, w) in words.iter().enumerate() {
            self.write_u32(addr + 4 * i as u32, *w);
        }
    }

    /// Copy an `f32` slice into memory starting at `addr`.
    fn load_f32s(&mut self, addr: u32, values: &[f32]) {
        for (i, v) in values.iter().enumerate() {
            self.write_f32(addr + 4 * i as u32, *v);
        }
    }

    /// Read `n` consecutive `f32`s starting at `addr`.
    fn read_f32s(&self, addr: u32, n: usize) -> Vec<f32> {
        (0..n).map(|i| self.read_f32(addr + 4 * i as u32)).collect()
    }

    /// Read `n` consecutive `u32`s starting at `addr`.
    fn read_u32s(&self, addr: u32, n: usize) -> Vec<u32> {
        (0..n).map(|i| self.read_u32(addr + 4 * i as u32)).collect()
    }
}

impl MemoryPort for crate::Sram {
    fn try_start(&mut self, now: u64, _addr: u32, who: Requester) -> Option<u64> {
        crate::Sram::try_start(self, now, who)
    }

    fn try_start_burst(&mut self, now: u64, _addr: u32, who: Requester, words: u64) -> Option<u64> {
        crate::Sram::try_start_burst(self, now, who, words)
    }

    fn next_event(&self, now: u64) -> Option<u64> {
        crate::Sram::next_event(self, now)
    }

    /// `Sram` has exactly one port, so every address maps to the same
    /// arbitration domain and the bank-exactness `addr` exists for is
    /// vacuous: a replayed loss is charged to the same port (and emits the
    /// same events) no matter which address the retries targeted. Banked
    /// and DRAM-class backends must not discard it — they route the span to
    /// the bank serving `addr` (see `SharedMemory::skip_conflicts_for`).
    /// `sram_skip_replay_is_addr_independent` pins this equivalence.
    fn skip_conflicts(&mut self, now: u64, span: u64, _addr: u32, who: Requester) {
        crate::Sram::skip_conflicts(self, now, span, who)
    }

    fn size(&self) -> u32 {
        crate::Sram::size(self)
    }

    fn word_cycles(&self) -> u64 {
        crate::Sram::word_cycles(self)
    }

    fn read_u8(&self, addr: u32) -> u8 {
        crate::Sram::read_u8(self, addr)
    }

    fn read_u16(&self, addr: u32) -> u16 {
        crate::Sram::read_u16(self, addr)
    }

    fn read_u32(&self, addr: u32) -> u32 {
        crate::Sram::read_u32(self, addr)
    }

    fn read_u32_checked(&self, addr: u32) -> Option<u32> {
        crate::Sram::read_u32_checked(self, addr)
    }

    fn write_u8(&mut self, addr: u32, value: u8) {
        crate::Sram::write_u8(self, addr, value)
    }

    fn write_u16(&mut self, addr: u32, value: u16) {
        crate::Sram::write_u16(self, addr, value)
    }

    fn write_u32(&mut self, addr: u32, value: u32) {
        crate::Sram::write_u32(self, addr, value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sram;

    /// The trait impl on `Sram` forwards to the inherent methods, so a
    /// component holding `&mut dyn MemoryPort` sees the exact single-port
    /// timing model.
    #[test]
    fn sram_through_the_trait_is_the_sram() {
        let mut sram = Sram::new(64, 2);
        let port: &mut dyn MemoryPort = &mut sram;
        assert_eq!(port.try_start(0, 0, Requester::Cpu), Some(2));
        assert_eq!(port.try_start(1, 4, Requester::Hht), None);
        assert_eq!(port.next_event(1), Some(2));
        assert_eq!(port.next_event_at(0x20, 1), Some(2));
        port.write_u32(8, 0xABCD_EF01);
        assert_eq!(port.read_u32(8), 0xABCD_EF01);
        assert_eq!(port.read_u16(8), 0xEF01);
        assert_eq!(port.read_u8(11), 0xAB);
        assert_eq!(port.read_u32_checked(64), None);
        port.write_f32(12, 2.5);
        assert_eq!(port.read_f32(12), 2.5);
        assert_eq!(port.size(), 64);
        assert_eq!(port.word_cycles(), 2);
        port.skip_conflicts(2, 3, 0, Requester::Hht);
        assert_eq!(sram.stats().conflicts, 4);
    }

    /// The default split-transaction wrappers expose the legacy same-cycle
    /// protocol unchanged: grants become flat responses at the same cycle,
    /// refusals become `BankBusy`, and `response_ready` is the plain
    /// completion-cycle comparison.
    #[test]
    fn default_request_wraps_try_start() {
        let mut sram = Sram::new(64, 2);
        let port: &mut dyn MemoryPort = &mut sram;
        let issue = port.request(0, 0, Requester::Cpu);
        assert_eq!(issue, MemIssue::Granted { data_at: 2, row: RowOutcome::Flat });
        assert_eq!(issue.data_at(), Some(2));
        let refused = port.request(1, 4, Requester::Hht);
        assert_eq!(refused, MemIssue::Refused(MemRefusal::BankBusy));
        assert_eq!(refused.data_at(), None);
        assert!(!port.response_ready(1, 2));
        assert!(port.response_ready(2, 2));
        assert_eq!(port.request_burst(2, 0, Requester::Cpu, 8).data_at(), Some(11));
        assert_eq!(sram.stats().cpu_accesses, 9);
        assert_eq!(sram.stats().conflicts, 1);
    }

    /// Satellite regression for the discarded `addr` in `Sram`'s
    /// `skip_conflicts`: with a single port there is one arbitration
    /// domain, so a bulk replay must equal the per-cycle retries whatever
    /// addresses those retries used — counters and event-free state alike.
    #[test]
    fn sram_skip_replay_is_addr_independent() {
        // Per-cycle oracle: retries against three *different* addresses.
        let mut a = Sram::new(64, 8);
        a.try_start(0, Requester::Hht);
        for (c, addr) in [(1u64, 0x00u32), (2, 0x14), (3, 0x3c)] {
            let p: &mut dyn MemoryPort = &mut a;
            assert_eq!(p.try_start(c, addr, Requester::Cpu), None);
        }
        // Bulk replay of the same span via the trait, at yet another addr.
        let mut b = Sram::new(64, 8);
        b.try_start(0, Requester::Hht);
        {
            let p: &mut dyn MemoryPort = &mut b;
            p.skip_conflicts(1, 3, 0x28, Requester::Cpu);
        }
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.free_at(), b.free_at());
    }
}
