//! The typed memory-port interface between cycle-domain components and
//! whatever memory implementation backs them.
//!
//! Before the fabric refactor every component held a concrete `&mut Sram`;
//! now the core and the HHT engines speak [`MemoryPort`], so the same
//! component code runs against the single-ported [`Sram`](crate::Sram) (the
//! paper's one-core-one-HHT configuration) or against one tile's view of
//! the banked [`SharedMemory`](crate::SharedMemory) (the N-tile fabric).
//!
//! The trait deliberately mirrors `Sram`'s split personality:
//!
//! - *timed* access ([`MemoryPort::try_start`]/[`MemoryPort::try_start_burst`])
//!   models port arbitration — a request while the port (bank) is busy is
//!   rejected and the caller retries next cycle;
//! - *functional* access (`read_u32`, `write_u32`, …) is untimed and used
//!   by agents that already won the port for the current transaction.

use crate::sram::Requester;

/// A component-facing memory port: timed arbitration plus functional
/// storage access. Implemented by [`Sram`](crate::Sram) (single shared
/// port) and [`TilePort`](crate::TilePort) (one tile's view of the banked
/// shared memory).
pub trait MemoryPort {
    // ---- timed port model ----

    /// Try to start a word access to `addr` at cycle `now`; `Some(done_at)`
    /// on grant, `None` when the port (bank) is busy. Call order within a
    /// cycle is the arbitration order. The single-ported [`Sram`](crate::Sram)
    /// ignores `addr`; the banked memory uses it to select the bank.
    fn try_start(&mut self, now: u64, addr: u32, who: Requester) -> Option<u64>;

    /// Try to start a burst of `words` consecutive word accesses starting
    /// at `addr` (an L1D line fill). Returns the completion cycle or `None`
    /// when busy.
    fn try_start_burst(&mut self, now: u64, addr: u32, who: Requester, words: u64) -> Option<u64>;

    /// The cycle at which the port next changes state when busy at `now`
    /// (the cycle-skipping scheduler's hint); `None` while idle. For a
    /// banked memory this is the earliest free cycle over all busy banks.
    fn next_event(&self, now: u64) -> Option<u64>;

    /// Like [`MemoryPort::next_event`], but for the specific port/bank that
    /// serves `addr` — `None` when that bank is already free at `now`. On a
    /// single-ported memory this is the same as `next_event`.
    fn next_event_at(&self, addr: u32, now: u64) -> Option<u64> {
        let _ = addr;
        self.next_event(now)
    }

    /// Replay `span` skipped arbitration losses by `who` against the bank
    /// serving `addr`, one per cycle starting at `now` — the per-requestor
    /// bulk-replay hook the cycle-skipping scheduler uses so conflict
    /// counters and per-cycle conflict events stay bit-identical to the
    /// per-cycle loop. The single-ported SRAM ignores `addr`.
    fn skip_conflicts(&mut self, now: u64, span: u64, addr: u32, who: Requester);

    // ---- functional storage ----

    /// Size in bytes.
    fn size(&self) -> u32;

    /// Cycles one word access occupies the port.
    fn word_cycles(&self) -> u64;

    /// Read one byte.
    fn read_u8(&self, addr: u32) -> u8;

    /// Read a little-endian 16-bit halfword.
    fn read_u16(&self, addr: u32) -> u16;

    /// Read a little-endian 32-bit word (panics out of range — a simulator
    /// wiring bug, not a guest condition).
    fn read_u32(&self, addr: u32) -> u32;

    /// Read a little-endian 32-bit word, or `None` when any byte falls
    /// outside the array (guest-programmed agents read open-bus instead of
    /// crashing the simulator).
    fn read_u32_checked(&self, addr: u32) -> Option<u32>;

    /// Write one byte.
    fn write_u8(&mut self, addr: u32, value: u8);

    /// Write a little-endian 16-bit halfword.
    fn write_u16(&mut self, addr: u32, value: u16);

    /// Write a little-endian 32-bit word.
    fn write_u32(&mut self, addr: u32, value: u32);

    /// Read an `f32` (bit pattern of the word at `addr`).
    fn read_f32(&self, addr: u32) -> f32 {
        f32::from_bits(self.read_u32(addr))
    }

    /// Write an `f32`.
    fn write_f32(&mut self, addr: u32, value: f32) {
        self.write_u32(addr, value.to_bits());
    }

    /// Copy a `u32` slice into memory starting at `addr`.
    fn load_words(&mut self, addr: u32, words: &[u32]) {
        for (i, w) in words.iter().enumerate() {
            self.write_u32(addr + 4 * i as u32, *w);
        }
    }

    /// Copy an `f32` slice into memory starting at `addr`.
    fn load_f32s(&mut self, addr: u32, values: &[f32]) {
        for (i, v) in values.iter().enumerate() {
            self.write_f32(addr + 4 * i as u32, *v);
        }
    }

    /// Read `n` consecutive `f32`s starting at `addr`.
    fn read_f32s(&self, addr: u32, n: usize) -> Vec<f32> {
        (0..n).map(|i| self.read_f32(addr + 4 * i as u32)).collect()
    }

    /// Read `n` consecutive `u32`s starting at `addr`.
    fn read_u32s(&self, addr: u32, n: usize) -> Vec<u32> {
        (0..n).map(|i| self.read_u32(addr + 4 * i as u32)).collect()
    }
}

impl MemoryPort for crate::Sram {
    fn try_start(&mut self, now: u64, _addr: u32, who: Requester) -> Option<u64> {
        crate::Sram::try_start(self, now, who)
    }

    fn try_start_burst(&mut self, now: u64, _addr: u32, who: Requester, words: u64) -> Option<u64> {
        crate::Sram::try_start_burst(self, now, who, words)
    }

    fn next_event(&self, now: u64) -> Option<u64> {
        crate::Sram::next_event(self, now)
    }

    fn skip_conflicts(&mut self, now: u64, span: u64, _addr: u32, who: Requester) {
        crate::Sram::skip_conflicts(self, now, span, who)
    }

    fn size(&self) -> u32 {
        crate::Sram::size(self)
    }

    fn word_cycles(&self) -> u64 {
        crate::Sram::word_cycles(self)
    }

    fn read_u8(&self, addr: u32) -> u8 {
        crate::Sram::read_u8(self, addr)
    }

    fn read_u16(&self, addr: u32) -> u16 {
        crate::Sram::read_u16(self, addr)
    }

    fn read_u32(&self, addr: u32) -> u32 {
        crate::Sram::read_u32(self, addr)
    }

    fn read_u32_checked(&self, addr: u32) -> Option<u32> {
        crate::Sram::read_u32_checked(self, addr)
    }

    fn write_u8(&mut self, addr: u32, value: u8) {
        crate::Sram::write_u8(self, addr, value)
    }

    fn write_u16(&mut self, addr: u32, value: u16) {
        crate::Sram::write_u16(self, addr, value)
    }

    fn write_u32(&mut self, addr: u32, value: u32) {
        crate::Sram::write_u32(self, addr, value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sram;

    /// The trait impl on `Sram` forwards to the inherent methods, so a
    /// component holding `&mut dyn MemoryPort` sees the exact single-port
    /// timing model.
    #[test]
    fn sram_through_the_trait_is_the_sram() {
        let mut sram = Sram::new(64, 2);
        let port: &mut dyn MemoryPort = &mut sram;
        assert_eq!(port.try_start(0, 0, Requester::Cpu), Some(2));
        assert_eq!(port.try_start(1, 4, Requester::Hht), None);
        assert_eq!(port.next_event(1), Some(2));
        assert_eq!(port.next_event_at(0x20, 1), Some(2));
        port.write_u32(8, 0xABCD_EF01);
        assert_eq!(port.read_u32(8), 0xABCD_EF01);
        assert_eq!(port.read_u16(8), 0xEF01);
        assert_eq!(port.read_u8(11), 0xAB);
        assert_eq!(port.read_u32_checked(64), None);
        port.write_f32(12, 2.5);
        assert_eq!(port.read_f32(12), 2.5);
        assert_eq!(port.size(), 64);
        assert_eq!(port.word_cycles(), 2);
        port.skip_conflicts(2, 3, 0, Requester::Hht);
        assert_eq!(sram.stats().conflicts, 4);
    }
}
