//! A set-associative L1 data cache model with LRU replacement.
//!
//! Used for the paper's "high-performance processor integration" (§3.2: "the
//! BE issues requests to the L1D cache. If the request is a L1D miss, then
//! the usual cache miss processing is carried out") and for the memory-
//! latency ablation. The MCU configuration of the main results bypasses it.

use serde::{Deserialize, Serialize};

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed (triggering a line fill).
    pub misses: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; 0 when there were no accesses.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

#[derive(Debug, Clone)]
struct Line {
    tag: u32,
    valid: bool,
    /// Monotone timestamp of last use, for LRU.
    last_used: u64,
}

/// A physically-indexed set-associative cache (tags only — data lives in
/// the backing SRAM, which is exact because the model is write-through and
/// the simulator is sequentially consistent).
#[derive(Debug, Clone)]
pub struct L1dCache {
    line_bytes: u32,
    num_sets: u32,
    ways: Vec<Vec<Line>>,
    use_clock: u64,
    stats: CacheStats,
}

impl L1dCache {
    /// Build a cache of `size_bytes` with `assoc` ways and `line_bytes`
    /// lines. All three must be powers of two and consistent.
    pub fn new(size_bytes: u32, assoc: u32, line_bytes: u32) -> Self {
        assert!(size_bytes.is_power_of_two());
        assert!(line_bytes.is_power_of_two());
        assert!(assoc >= 1);
        let num_lines = size_bytes / line_bytes;
        assert!(num_lines.is_multiple_of(assoc), "geometry must divide evenly");
        let num_sets = num_lines / assoc;
        let ways = (0..num_sets)
            .map(|_| (0..assoc).map(|_| Line { tag: 0, valid: false, last_used: 0 }).collect())
            .collect();
        L1dCache { line_bytes, num_sets, ways, use_clock: 0, stats: CacheStats::default() }
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u32 {
        self.line_bytes
    }

    /// Number of sets.
    pub fn num_sets(&self) -> u32 {
        self.num_sets
    }

    /// Statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn set_and_tag(&self, addr: u32) -> (usize, u32) {
        let line = addr / self.line_bytes;
        ((line % self.num_sets) as usize, line / self.num_sets)
    }

    /// Access `addr`; returns `true` on hit. On miss the line is filled
    /// (victim chosen by LRU).
    pub fn access(&mut self, addr: u32) -> bool {
        self.use_clock += 1;
        let (set, tag) = self.set_and_tag(addr);
        let lines = &mut self.ways[set];
        if let Some(l) = lines.iter_mut().find(|l| l.valid && l.tag == tag) {
            l.last_used = self.use_clock;
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        // LRU victim (invalid lines first).
        let victim = lines
            .iter_mut()
            .min_by_key(|l| if l.valid { l.last_used + 1 } else { 0 })
            .expect("cache has at least one way");
        victim.valid = true;
        victim.tag = tag;
        victim.last_used = self.use_clock;
        false
    }

    /// Probe without filling; `true` if the address is resident.
    pub fn probe(&self, addr: u32) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        self.ways[set].iter().any(|l| l.valid && l.tag == tag)
    }

    /// Invalidate everything (e.g. between experiment runs).
    pub fn flush(&mut self) {
        for set in &mut self.ways {
            for l in set {
                l.valid = false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_miss_then_hit() {
        let mut c = L1dCache::new(1024, 2, 32);
        assert!(!c.access(0x100));
        assert!(c.access(0x100));
        assert!(c.access(0x104)); // same line
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_eviction() {
        // 2-way, 32B lines, 4 sets => size = 2*4*32 = 256.
        let mut c = L1dCache::new(256, 2, 32);
        let set_stride = 32 * 4; // addresses this far apart share a set
        assert!(!c.access(0)); // set 0, tag 0
        assert!(!c.access(set_stride)); // set 0, tag 1
        assert!(c.access(0)); // refresh tag 0
        assert!(!c.access(2 * set_stride)); // evicts tag 1 (LRU)
        assert!(c.access(0)); // tag 0 still resident
        assert!(!c.access(set_stride)); // tag 1 was evicted
    }

    #[test]
    fn probe_does_not_fill() {
        let mut c = L1dCache::new(256, 2, 32);
        assert!(!c.probe(0x40));
        c.access(0x40);
        assert!(c.probe(0x40));
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn flush_invalidates() {
        let mut c = L1dCache::new(256, 1, 32);
        c.access(0);
        assert!(c.probe(0));
        c.flush();
        assert!(!c.probe(0));
    }

    #[test]
    fn hit_rate() {
        let mut c = L1dCache::new(256, 1, 32);
        assert_eq!(c.stats().hit_rate(), 0.0);
        c.access(0);
        c.access(0);
        assert_eq!(c.stats().hit_rate(), 0.5);
    }

    #[test]
    fn direct_mapped_conflicts() {
        let mut c = L1dCache::new(128, 1, 32); // 4 sets
        assert!(!c.access(0));
        assert!(!c.access(128)); // same set, different tag -> evict
        assert!(!c.access(0)); // conflict miss
    }
}
