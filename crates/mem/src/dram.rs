//! DRAM-class timing backend: the split-transaction memory model behind
//! the latency/bandwidth/MLP wall.
//!
//! [`Dram`] wraps the banked [`SharedMemory`] and adds the three effects a
//! flat SRAM-class model cannot show:
//!
//! - **Row-buffer timing** — each bank tracks its open row; an access to
//!   the open row pays `row_hit_extra` response cycles on top of the flat
//!   port cost, any other access precharges + activates and pays
//!   `row_miss_extra`. The extra is *response latency*, not port
//!   occupancy: the bank frees at the flat cost (requests pipeline behind
//!   it) while the data arrives later — the split transaction.
//! - **Bounded in-flight window** — each tile may have at most
//!   `max_inflight_per_tile` transactions whose responses are still
//!   outstanding (Little's-law MLP ceiling). A full window refuses the
//!   request with [`MemRefusal::WindowFull`] until the oldest response
//!   retires.
//! - **Bandwidth budget** — at most `max_grants_per_cycle` grants per
//!   cycle across all banks; once spent, otherwise-grantable requests are
//!   refused with [`MemRefusal::BandwidthExhausted`].
//!
//! The flat configuration ([`DramConfig::flat`]: zero extras, unlimited
//! window and budget) short-circuits every check and delegates directly to
//! the inner [`SharedMemory`], so it is **bit-identical by construction**
//! — same grants, same stats, same events. The determinism suite pins this
//! across kernels × tiles × schedulers.
//!
//! Scheduler soundness of the park bounds ([`Dram::next_event_for`]):
//!
//! - *Window full*: the tile issues nothing while parked, so its window
//!   only drains; it stays full exactly until the oldest outstanding
//!   response retires, which is the bound returned.
//! - *Bank busy*: a busy bank's `free_at` cannot move (granting requires a
//!   free bank), the existing [`SharedMemory`] argument.
//! - *Budget spent*: only possible when the bank is free and the window
//!   open, in which case the hint is `None` — the fabric maps that to an
//!   immediate retry, so no park ever spans a bandwidth refusal.

use crate::banked::{SharedMemStats, SharedMemory};
use crate::port::{MemIssue, MemRefusal, MemoryPort, RowOutcome};
use crate::sram::{Requester, SramStats};
use hht_obs::{Event, EventBus, EventKind, Track};
use serde::{Deserialize, Serialize};

/// Timing parameters of the DRAM-class backend. All-zero (the
/// [`DramConfig::flat`] preset) degenerates to the wrapped
/// [`SharedMemory`] exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Extra response cycles for an access that hits the bank's open row.
    pub row_hit_extra: u64,
    /// Extra response cycles for an access that opens a new row
    /// (precharge + activate).
    pub row_miss_extra: u64,
    /// Words per DRAM row (the open-row granule; addresses in the same
    /// `row_words`-aligned window share a row).
    pub row_words: u32,
    /// Grants per cycle across all banks; 0 = unlimited.
    pub max_grants_per_cycle: u32,
    /// Outstanding transactions per tile; 0 = unlimited.
    pub max_inflight_per_tile: u32,
}

impl Default for DramConfig {
    fn default() -> Self {
        Self::flat()
    }
}

impl DramConfig {
    /// Zero latency, unlimited window and bandwidth: bit-identical to the
    /// wrapped [`SharedMemory`].
    pub fn flat() -> Self {
        DramConfig {
            row_hit_extra: 0,
            row_miss_extra: 0,
            row_words: 256,
            max_grants_per_cycle: 0,
            max_inflight_per_tile: 0,
        }
    }

    /// A 300 ns-class external DRAM at the paper's 1.1 GHz clock: ~330
    /// cycles to open a row, ~110 on an open-row hit, 1 KB rows, and a
    /// 4-deep per-tile window (the Little's-law MLP ceiling a small
    /// in-order tile can realistically sustain).
    pub fn slow_300ns() -> Self {
        DramConfig {
            row_hit_extra: 110,
            row_miss_extra: 330,
            row_words: 256,
            max_grants_per_cycle: 0,
            max_inflight_per_tile: 4,
        }
    }

    /// Set the row hit/miss response latencies.
    pub fn with_row_latency(mut self, hit_extra: u64, miss_extra: u64) -> Self {
        self.row_hit_extra = hit_extra;
        self.row_miss_extra = miss_extra;
        self
    }

    /// Set the open-row granule in words.
    pub fn with_row_words(mut self, row_words: u32) -> Self {
        assert!(row_words >= 1, "a row holds at least one word");
        self.row_words = row_words;
        self
    }

    /// Set the grants-per-cycle bandwidth budget (0 = unlimited).
    pub fn with_bandwidth(mut self, max_grants_per_cycle: u32) -> Self {
        self.max_grants_per_cycle = max_grants_per_cycle;
        self
    }

    /// Set the per-tile in-flight window (0 = unlimited).
    pub fn with_window(mut self, max_inflight_per_tile: u32) -> Self {
        self.max_inflight_per_tile = max_inflight_per_tile;
        self
    }

    /// True when every effect is disabled and the backend degenerates to
    /// the wrapped memory.
    pub fn is_flat(&self) -> bool {
        self.row_hit_extra == 0
            && self.row_miss_extra == 0
            && self.max_grants_per_cycle == 0
            && self.max_inflight_per_tile == 0
    }
}

/// The DRAM-class backend: a [`SharedMemory`] plus open-row tracking,
/// per-tile in-flight windows and a cycle-wide grant budget.
#[derive(Debug)]
pub struct Dram {
    mem: SharedMemory,
    cfg: DramConfig,
    /// Open row id per bank (`None` = all rows precharged).
    open_rows: Vec<Option<u32>>,
    /// Response-arrival cycles of each tile's outstanding transactions.
    inflight: Vec<Vec<u64>>,
    /// Cycle `budget_used` counts grants for.
    budget_cycle: u64,
    budget_used: u32,
}

impl Dram {
    /// Wrap `mem` with DRAM-class timing.
    pub fn new(mem: SharedMemory, cfg: DramConfig) -> Self {
        assert!(cfg.row_words >= 1, "a row holds at least one word");
        let mut mem = mem;
        mem.set_grant_budget(cfg.max_grants_per_cycle as u64);
        let banks = mem.banks();
        let tiles = mem.tiles();
        Dram {
            mem,
            cfg,
            open_rows: vec![None; banks],
            inflight: vec![Vec::new(); tiles],
            budget_cycle: 0,
            budget_used: 0,
        }
    }

    /// The timing parameters in force.
    pub fn config(&self) -> DramConfig {
        self.cfg
    }

    /// The wrapped functional memory + flat port model.
    pub fn inner(&self) -> &SharedMemory {
        &self.mem
    }

    /// Mutable access to the wrapped memory (functional writes, event-bus
    /// installation, fault injection).
    pub fn inner_mut(&mut self) -> &mut SharedMemory {
        &mut self.mem
    }

    /// Consume the wrapper and recover the banked memory (row/window/budget
    /// timing state is discarded).
    pub fn into_inner(self) -> SharedMemory {
        self.mem
    }

    /// Transactions of `tile` whose responses are still outstanding at
    /// `now` (the window occupancy the MLP cap is tested against).
    pub fn in_flight(&self, tile: usize, now: u64) -> usize {
        self.inflight[tile].iter().filter(|&&d| d > now).count()
    }

    fn window_full(&self, tile: usize, now: u64) -> bool {
        let cap = self.cfg.max_inflight_per_tile;
        cap > 0 && self.in_flight(tile, now) >= cap as usize
    }

    /// Earliest outstanding response of `tile` after `now` — the cycle a
    /// full window opens a slot.
    fn oldest_inflight(&self, tile: usize, now: u64) -> Option<u64> {
        self.inflight[tile].iter().copied().filter(|&d| d > now).min()
    }

    /// Issue a split-transaction burst request by `tile`. One transaction
    /// against the window and the budget regardless of `words`.
    pub fn request_burst_for(
        &mut self,
        tile: usize,
        now: u64,
        addr: u32,
        who: Requester,
        words: u64,
    ) -> MemIssue {
        if self.cfg.is_flat() {
            return match self.mem.try_start_burst_for(tile, now, addr, who, words) {
                Some(data_at) => MemIssue::Granted { data_at, row: RowOutcome::Flat },
                None => MemIssue::Refused(MemRefusal::BankBusy),
            };
        }
        // Retire delivered responses, then test the MLP window first: a
        // tile at its ceiling may not even arbitrate for a bank.
        self.inflight[tile].retain(|&d| d > now);
        if self.window_full(tile, now) {
            self.mem.note_window_stall(tile, now, 1, who);
            return MemIssue::Refused(MemRefusal::WindowFull);
        }
        let bank = self.mem.bank_of(addr);
        if self.mem.bank_free_at(bank) > now {
            self.mem.reject(tile, now, bank, who);
            return MemIssue::Refused(MemRefusal::BankBusy);
        }
        if self.budget_cycle != now {
            self.budget_cycle = now;
            self.budget_used = 0;
        }
        let budget = self.cfg.max_grants_per_cycle;
        if budget > 0 && self.budget_used >= budget {
            self.mem.note_bandwidth_stall(tile, now, who);
            return MemIssue::Refused(MemRefusal::BandwidthExhausted);
        }
        self.budget_used += 1;
        let done = self.mem.grant(tile, now, bank, who, words);
        let row = (addr >> 2) / self.cfg.row_words;
        let hit = self.open_rows[bank] == Some(row);
        let extra = if hit { self.cfg.row_hit_extra } else { self.cfg.row_miss_extra };
        if !hit {
            self.open_rows[bank] = Some(row);
            self.mem.emit_for(tile, now, Track::MemQueue, EventKind::RowOpen { bank: bank as u32 });
        }
        self.mem.note_row(tile, who, hit, extra);
        let data_at = done + extra;
        self.inflight[tile].push(data_at);
        let level = self.inflight[tile].len() as u32;
        self.mem.emit_for(tile, now, Track::MemQueue, EventKind::BufferLevel { level });
        MemIssue::Granted { data_at, row: if hit { RowOutcome::Hit } else { RowOutcome::Miss } }
    }

    /// Issue a split-transaction word request by `tile`.
    pub fn request_for(&mut self, tile: usize, now: u64, addr: u32, who: Requester) -> MemIssue {
        self.request_burst_for(tile, now, addr, who, 1)
    }

    /// Legacy same-cycle protocol shape (see [`MemoryPort::try_start`]).
    pub fn try_start_for(
        &mut self,
        tile: usize,
        now: u64,
        addr: u32,
        who: Requester,
    ) -> Option<u64> {
        self.request_for(tile, now, addr, who).data_at()
    }

    /// Legacy burst shape (see [`MemoryPort::try_start_burst`]).
    pub fn try_start_burst_for(
        &mut self,
        tile: usize,
        now: u64,
        addr: u32,
        who: Requester,
        words: u64,
    ) -> Option<u64> {
        self.request_burst_for(tile, now, addr, who, words).data_at()
    }

    /// Earliest cycle the memory next changes state: any busy bank freeing
    /// or any outstanding response arriving.
    pub fn next_event(&self, now: u64) -> Option<u64> {
        let responses = self.inflight.iter().flatten().copied().filter(|&d| d > now).min();
        match (self.mem.next_event(now), responses) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Tile-aware park bound for a request to `addr` refused at `now`:
    /// the cycle a retry could first succeed for a *different* reason.
    /// Window full → the oldest outstanding response's arrival (the
    /// window drains monotonically while the tile is parked); otherwise
    /// the bank's free cycle; `None` when the refusal was bandwidth-only
    /// (retry next cycle — never park over a budget refusal).
    pub fn next_event_for(&self, tile: usize, addr: u32, now: u64) -> Option<u64> {
        if self.cfg.is_flat() {
            return self.mem.next_event_at(addr, now);
        }
        if self.window_full(tile, now) {
            return self.oldest_inflight(tile, now);
        }
        self.mem.next_event_at(addr, now)
    }

    /// Replay `span` skipped refusal cycles by `tile`/`who` against `addr`
    /// — the bulk-replay hook of the cycle-skipping schedulers. The
    /// refusal kind is re-derived at replay time: if the tile's window is
    /// full at `now` it stays full through the span (the park bound is the
    /// oldest response's arrival and the parked tile issues nothing), so
    /// the whole span is window stalls; otherwise the span lost to a busy
    /// bank and delegates to the bank-exact inner replay.
    pub fn skip_conflicts_for(
        &mut self,
        tile: usize,
        now: u64,
        span: u64,
        addr: u32,
        who: Requester,
    ) {
        if self.cfg.is_flat() {
            return self.mem.skip_conflicts_for(tile, now, span, addr, who);
        }
        if self.window_full(tile, now) {
            debug_assert!(
                self.oldest_inflight(tile, now).is_none_or(|d| d >= now + span),
                "window-stall replay span outlives the oldest in-flight response"
            );
            self.mem.note_window_stall(tile, now, span, who);
        } else {
            self.mem.skip_conflicts_for(tile, now, span, addr, who);
        }
    }
}

/// The memory behind a fabric: either the flat banked [`SharedMemory`]
/// (the seed model) or the DRAM-class [`Dram`] wrapped around it. One
/// enum rather than a trait object so the fabric stays monomorphic and
/// the per-cycle hot path has no virtual dispatch.
#[derive(Debug)]
pub enum FabricMemory {
    /// Flat banked memory: every grant's response arrives at the flat
    /// port cost, no window, no budget.
    Shared(SharedMemory),
    /// DRAM-class timing behind the same banked arbitration.
    Dram(Dram),
}

impl From<SharedMemory> for FabricMemory {
    fn from(mem: SharedMemory) -> Self {
        FabricMemory::Shared(mem)
    }
}

impl From<Dram> for FabricMemory {
    fn from(dram: Dram) -> Self {
        FabricMemory::Dram(dram)
    }
}

impl FabricMemory {
    /// The underlying banked memory (functional storage, flat port state,
    /// per-tile stats and event buses) of either variant.
    pub fn shared(&self) -> &SharedMemory {
        match self {
            FabricMemory::Shared(m) => m,
            FabricMemory::Dram(d) => d.inner(),
        }
    }

    /// Mutable access to the underlying banked memory.
    pub fn shared_mut(&mut self) -> &mut SharedMemory {
        match self {
            FabricMemory::Shared(m) => m,
            FabricMemory::Dram(d) => d.inner_mut(),
        }
    }

    /// Consume the memory (either variant) and recover the raw byte buffer
    /// for recycling into the next job's image build.
    pub fn into_data(self) -> Vec<u8> {
        match self {
            FabricMemory::Shared(m) => m.into_data(),
            FabricMemory::Dram(d) => d.into_inner().into_data(),
        }
    }

    /// The DRAM wrapper, when this memory has one.
    pub fn dram(&self) -> Option<&Dram> {
        match self {
            FabricMemory::Shared(_) => None,
            FabricMemory::Dram(d) => Some(d),
        }
    }

    /// Number of tile accounting domains.
    pub fn tiles(&self) -> usize {
        self.shared().tiles()
    }

    /// Number of banks.
    pub fn banks(&self) -> usize {
        self.shared().banks()
    }

    /// Size in bytes.
    pub fn size(&self) -> u32 {
        self.shared().size()
    }

    /// Cycles one word access occupies a bank.
    pub fn word_cycles(&self) -> u64 {
        self.shared().word_cycles()
    }

    /// One tile's port statistics.
    pub fn stats_for(&self, tile: usize) -> SramStats {
        self.shared().stats_for(tile)
    }

    /// Fabric-wide aggregates.
    pub fn shared_stats(&self) -> SharedMemStats {
        self.shared().shared_stats()
    }

    /// Install a structured-event sink for one tile.
    pub fn set_event_bus_for(&mut self, tile: usize, bus: EventBus) {
        self.shared_mut().set_event_bus_for(tile, bus);
    }

    /// Move one tile's collected events out of its bus.
    pub fn take_events_for(&mut self, tile: usize) -> Vec<Event> {
        self.shared_mut().take_events_for(tile)
    }

    /// Events evicted from one tile's bus by its ring bound.
    pub fn events_dropped_for(&self, tile: usize) -> u64 {
        self.shared().events_dropped_for(tile)
    }

    /// Flip one bit of the word at `addr` (fault injection).
    pub fn corrupt_word(&mut self, addr: u32, bit: u8) -> bool {
        self.shared_mut().corrupt_word(addr, bit)
    }

    /// Read one `f32` at `addr`.
    pub fn read_f32(&self, addr: u32) -> f32 {
        self.shared().read_f32(addr)
    }

    /// Read `n` consecutive `f32`s starting at `addr`.
    pub fn read_f32s(&self, addr: u32, n: usize) -> Vec<f32> {
        self.shared().read_f32s(addr, n)
    }

    /// Read `n` consecutive `u32`s starting at `addr`.
    pub fn read_u32s(&self, addr: u32, n: usize) -> Vec<u32> {
        self.shared().read_u32s(addr, n)
    }

    /// Issue a split-transaction burst request by `tile`.
    pub fn request_burst_for(
        &mut self,
        tile: usize,
        now: u64,
        addr: u32,
        who: Requester,
        words: u64,
    ) -> MemIssue {
        match self {
            FabricMemory::Shared(m) => match m.try_start_burst_for(tile, now, addr, who, words) {
                Some(data_at) => MemIssue::Granted { data_at, row: RowOutcome::Flat },
                None => MemIssue::Refused(MemRefusal::BankBusy),
            },
            FabricMemory::Dram(d) => d.request_burst_for(tile, now, addr, who, words),
        }
    }

    /// Earliest cycle the memory next changes state.
    pub fn next_event(&self, now: u64) -> Option<u64> {
        match self {
            FabricMemory::Shared(m) => m.next_event(now),
            FabricMemory::Dram(d) => d.next_event(now),
        }
    }

    /// Tile-aware park bound for a request to `addr` refused at `now`
    /// (see [`Dram::next_event_for`]; on the flat variant this is the
    /// bank-exact hint).
    pub fn next_event_for(&self, tile: usize, addr: u32, now: u64) -> Option<u64> {
        match self {
            FabricMemory::Shared(m) => m.next_event_at(addr, now),
            FabricMemory::Dram(d) => d.next_event_for(tile, addr, now),
        }
    }

    /// Bulk-replay `span` skipped refusal cycles (see
    /// [`Dram::skip_conflicts_for`]).
    pub fn skip_conflicts_for(
        &mut self,
        tile: usize,
        now: u64,
        span: u64,
        addr: u32,
        who: Requester,
    ) {
        match self {
            FabricMemory::Shared(m) => m.skip_conflicts_for(tile, now, span, addr, who),
            FabricMemory::Dram(d) => d.skip_conflicts_for(tile, now, span, addr, who),
        }
    }
}

/// One tile's view of a [`FabricMemory`]: the `&mut dyn MemoryPort` the
/// tile's core and HHT hold for the current cycle (successor of the
/// Shared-only `TilePort`).
pub struct FabricPort<'a> {
    mem: &'a mut FabricMemory,
    tile: usize,
}

impl<'a> FabricPort<'a> {
    /// Borrow `mem` as tile `tile`'s port.
    pub fn new(mem: &'a mut FabricMemory, tile: usize) -> Self {
        FabricPort { mem, tile }
    }
}

impl MemoryPort for FabricPort<'_> {
    fn try_start(&mut self, now: u64, addr: u32, who: Requester) -> Option<u64> {
        self.mem.request_burst_for(self.tile, now, addr, who, 1).data_at()
    }

    fn try_start_burst(&mut self, now: u64, addr: u32, who: Requester, words: u64) -> Option<u64> {
        self.mem.request_burst_for(self.tile, now, addr, who, words).data_at()
    }

    fn request(&mut self, now: u64, addr: u32, who: Requester) -> MemIssue {
        self.mem.request_burst_for(self.tile, now, addr, who, 1)
    }

    fn request_burst(&mut self, now: u64, addr: u32, who: Requester, words: u64) -> MemIssue {
        self.mem.request_burst_for(self.tile, now, addr, who, words)
    }

    fn next_event(&self, now: u64) -> Option<u64> {
        self.mem.next_event(now)
    }

    fn next_event_at(&self, addr: u32, now: u64) -> Option<u64> {
        self.mem.next_event_for(self.tile, addr, now)
    }

    fn skip_conflicts(&mut self, now: u64, span: u64, addr: u32, who: Requester) {
        self.mem.skip_conflicts_for(self.tile, now, span, addr, who)
    }

    fn size(&self) -> u32 {
        self.mem.size()
    }

    fn word_cycles(&self) -> u64 {
        self.mem.word_cycles()
    }

    fn read_u8(&self, addr: u32) -> u8 {
        self.mem.shared().read_u8(addr)
    }

    fn read_u16(&self, addr: u32) -> u16 {
        self.mem.shared().read_u16(addr)
    }

    fn read_u32(&self, addr: u32) -> u32 {
        self.mem.shared().read_u32(addr)
    }

    fn read_u32_checked(&self, addr: u32) -> Option<u32> {
        self.mem.shared().read_u32_checked(addr)
    }

    fn write_u8(&mut self, addr: u32, value: u8) {
        self.mem.shared_mut().write_u8(addr, value)
    }

    fn write_u16(&mut self, addr: u32, value: u16) {
        self.mem.shared_mut().write_u16(addr, value)
    }

    fn write_u32(&mut self, addr: u32, value: u32) {
        self.mem.shared_mut().write_u32(addr, value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The flat configuration delegates straight to the inner memory:
    /// grant cycles, hints and every stats field match call for call.
    #[test]
    fn flat_dram_matches_shared_memory() {
        let mut shared = SharedMemory::new(256, 2, 2, 2);
        let mut dram = Dram::new(SharedMemory::new(256, 2, 2, 2), DramConfig::flat());
        let script: &[(usize, u64, u32, Requester, u64)] = &[
            (0, 0, 0x00, Requester::Cpu, 1),
            (1, 0, 0x20, Requester::Hht, 1),
            (0, 1, 0x20, Requester::Cpu, 1),
            (0, 2, 0x80, Requester::Cpu, 8),
            (1, 3, 0x84, Requester::Hht, 1),
            (1, 10, 0x84, Requester::Hht, 1),
        ];
        for &(tile, now, addr, who, words) in script {
            let a = shared.try_start_burst_for(tile, now, addr, who, words);
            let b = dram.try_start_burst_for(tile, now, addr, who, words);
            assert_eq!(a, b, "diverged at cycle {now}");
            assert_eq!(shared.next_event(now), dram.next_event(now));
            assert_eq!(shared.next_event_at(addr, now), dram.next_event_for(tile, addr, now));
        }
        assert_eq!(shared.stats_for(0), dram.inner().stats_for(0));
        assert_eq!(shared.stats_for(1), dram.inner().stats_for(1));
        assert_eq!(shared.shared_stats(), dram.inner().shared_stats());
        assert_eq!(dram.inner().shared_stats().row_hits, 0);
    }

    /// Row-buffer timing: the first access to a row pays the miss extra,
    /// subsequent accesses to the same open row pay the hit extra, and a
    /// different row on the same bank pays the miss extra again. The bank
    /// itself frees at the flat cost — the extra is response latency.
    #[test]
    fn row_hit_and_miss_response_latency() {
        let cfg = DramConfig::flat().with_row_latency(2, 10).with_row_words(16);
        let mut d = Dram::new(SharedMemory::new(1024, 1, 1, 1), cfg);
        // Cold: row miss. Flat cost 1, +10 response.
        assert_eq!(
            d.request_for(0, 0, 0x00, Requester::Cpu),
            MemIssue::Granted { data_at: 11, row: RowOutcome::Miss }
        );
        // Bank frees at the flat cost: a request at cycle 1 is granted
        // even though the first response is still in flight.
        assert_eq!(
            d.request_for(0, 1, 0x04, Requester::Cpu),
            MemIssue::Granted { data_at: 4, row: RowOutcome::Hit }
        );
        // Same bank (single bank), different 16-word row: miss again.
        assert_eq!(
            d.request_for(0, 2, 0x40, Requester::Hht),
            MemIssue::Granted { data_at: 13, row: RowOutcome::Miss }
        );
        let shared = d.inner().shared_stats();
        assert_eq!(shared.row_hits, 1);
        assert_eq!(shared.row_misses, 2);
        let tile = d.inner().stats_for(0);
        assert_eq!(tile.cpu_row_miss_extra, 10);
        assert_eq!(tile.cpu_row_hit_extra, 2);
    }

    /// The per-tile window refuses a request while the tile is at its MLP
    /// ceiling, charges window stalls (never cross-tile), and the park
    /// bound is the oldest outstanding response.
    #[test]
    fn window_caps_in_flight_transactions() {
        let cfg = DramConfig::flat().with_row_latency(0, 20).with_window(1);
        let mut d = Dram::new(SharedMemory::new(1024, 1, 1, 1), cfg);
        assert_eq!(d.request_for(0, 0, 0x00, Requester::Cpu).data_at(), Some(21));
        assert_eq!(d.in_flight(0, 1), 1);
        // Bank is free at cycle 1, but the window is full until cycle 21.
        assert_eq!(
            d.request_for(0, 1, 0x04, Requester::Cpu),
            MemIssue::Refused(MemRefusal::WindowFull)
        );
        assert_eq!(d.next_event_for(0, 0x04, 1), Some(21));
        // Response retires, window opens: open-row hit, zero extra.
        assert_eq!(
            d.request_for(0, 21, 0x04, Requester::Cpu),
            MemIssue::Granted { data_at: 22, row: RowOutcome::Hit }
        );
        let tile = d.inner().stats_for(0);
        assert_eq!(tile.cpu_window_stalls, 1);
        assert_eq!(tile.cpu_conflicts, 1);
        assert_eq!(tile.cpu_cross_tile_conflicts, 0);
        assert_eq!(d.inner().shared_stats().window_stalls, 1);
    }

    /// The grant budget refuses otherwise-grantable requests once spent,
    /// and the hint is `None` (retry next cycle, never park).
    #[test]
    fn bandwidth_budget_limits_grants_per_cycle() {
        let cfg = DramConfig::flat().with_bandwidth(1);
        let mut d = Dram::new(SharedMemory::new(1024, 1, 2, 2), cfg);
        // Two different banks, same cycle: second grant exceeds the budget.
        assert!(d.request_for(0, 5, 0x00, Requester::Cpu).data_at().is_some());
        assert_eq!(
            d.request_for(1, 5, 0x20, Requester::Cpu),
            MemIssue::Refused(MemRefusal::BandwidthExhausted)
        );
        assert_eq!(d.next_event_for(1, 0x20, 5), None);
        // Budget refreshes next cycle.
        assert!(d.request_for(1, 6, 0x20, Requester::Cpu).data_at().is_some());
        let shared = d.inner().shared_stats();
        assert_eq!(shared.bandwidth_stalls, 1);
        assert_eq!(shared.grant_budget, 1);
        // Budget refusals are not cross-tile: no bank was held.
        assert_eq!(shared.cross_tile_conflicts, 0);
    }

    /// A burst is one transaction against the window and the budget no
    /// matter how many words it carries.
    #[test]
    fn burst_is_one_transaction() {
        let cfg = DramConfig::flat().with_window(1).with_bandwidth(1);
        let mut d = Dram::new(SharedMemory::new(1024, 2, 1, 1), cfg);
        assert_eq!(d.request_burst_for(0, 0, 0x00, Requester::Cpu, 8).data_at(), Some(9));
        assert_eq!(d.in_flight(0, 0), 1);
        assert_eq!(d.inner().stats_for(0).cpu_accesses, 8);
    }

    /// Bulk window-stall replay charges exactly what the per-cycle retry
    /// loop would have: same counters, same per-tile attribution.
    #[test]
    fn window_skip_replay_matches_per_cycle_refusals() {
        let cfg = DramConfig::flat().with_row_latency(0, 30).with_window(1);
        // Per-cycle oracle: retry every cycle against the full window.
        let mut a = Dram::new(SharedMemory::new(1024, 1, 1, 1), cfg);
        a.request_for(0, 0, 0x00, Requester::Cpu);
        for c in 1..6 {
            assert_eq!(
                a.request_for(0, c, 0x40, Requester::Cpu),
                MemIssue::Refused(MemRefusal::WindowFull)
            );
        }
        // Bulk replay of the same span.
        let mut b = Dram::new(SharedMemory::new(1024, 1, 1, 1), cfg);
        b.request_for(0, 0, 0x00, Requester::Cpu);
        b.skip_conflicts_for(0, 1, 5, 0x40, Requester::Cpu);
        assert_eq!(a.inner().stats_for(0), b.inner().stats_for(0));
        assert_eq!(a.inner().shared_stats(), b.inner().shared_stats());
    }

    /// The DRAM backend emits row-transition and occupancy events on the
    /// mem-queue track; the flat configuration emits none.
    #[test]
    fn dram_emits_mem_queue_events() {
        let cfg = DramConfig::flat().with_row_latency(1, 5);
        let mut d = Dram::new(SharedMemory::new(1024, 1, 1, 1), cfg);
        d.inner_mut().set_event_bus_for(0, EventBus::new(64));
        d.request_for(0, 0, 0x00, Requester::Cpu); // miss: RowOpen + level
        d.request_for(0, 1, 0x04, Requester::Cpu); // hit: level only
        let events = d.inner_mut().take_events_for(0);
        let row_opens =
            events.iter().filter(|e| matches!(e.kind, EventKind::RowOpen { .. })).count();
        let levels = events
            .iter()
            .filter(|e| {
                e.track == Track::MemQueue && matches!(e.kind, EventKind::BufferLevel { .. })
            })
            .count();
        assert_eq!(row_opens, 1);
        assert_eq!(levels, 2);

        let mut flat = Dram::new(SharedMemory::new(1024, 1, 1, 1), DramConfig::flat());
        flat.inner_mut().set_event_bus_for(0, EventBus::new(64));
        flat.request_for(0, 0, 0x00, Requester::Cpu);
        let events = flat.inner_mut().take_events_for(0);
        assert!(events.iter().all(|e| e.track != Track::MemQueue));
    }

    /// `FabricPort` over either variant exposes the `MemoryPort` surface;
    /// over a DRAM it surfaces the real refusal kinds and row outcomes.
    #[test]
    fn fabric_port_surfaces_real_outcomes() {
        let cfg = DramConfig::flat().with_row_latency(0, 7).with_window(1);
        let mut mem = FabricMemory::Dram(Dram::new(SharedMemory::new(1024, 1, 1, 1), cfg));
        {
            let mut port = FabricPort::new(&mut mem, 0);
            let p: &mut dyn MemoryPort = &mut port;
            assert_eq!(
                p.request(0, 0x00, Requester::Cpu),
                MemIssue::Granted { data_at: 8, row: RowOutcome::Miss }
            );
            assert_eq!(
                p.request(1, 0x04, Requester::Hht),
                MemIssue::Refused(MemRefusal::WindowFull)
            );
            assert_eq!(p.next_event_at(0x04, 1), Some(8));
            assert!(p.response_ready(8, 8));
            p.write_u32(16, 99);
            assert_eq!(p.read_u32(16), 99);
        }
        assert_eq!(mem.stats_for(0).hht_window_stalls, 1);

        let mut flat = FabricMemory::from(SharedMemory::new(256, 2, 1, 1));
        let mut port = FabricPort::new(&mut flat, 0);
        assert_eq!(
            port.request(0, 0, Requester::Cpu),
            MemIssue::Granted { data_at: 2, row: RowOutcome::Flat }
        );
        assert_eq!(port.request(1, 0, Requester::Hht), MemIssue::Refused(MemRefusal::BankBusy));
    }
}
