//! Cycle-level memory system model.
//!
//! The paper's Table 1 memory is "buffers and RAM" — a 1 MB on-chip SRAM
//! shared by the CPU core and the HHT, reached over an on-chip interconnect
//! (§3.2: "In the MCU integration, the BE issues requests to the on-chip
//! RAM via an on-chip interconnect"). This crate models:
//!
//! - [`Sram`] — the RAM: functional byte/word storage plus a single-ported
//!   timing model (`try_start` arbitration; whoever calls first in a cycle
//!   wins the port, and the system steps the CPU before the HHT so the CPU
//!   has priority).
//! - [`L1dCache`] — an optional set-associative cache for the paper's
//!   "high-performance processor integration" (§3.2), used in ablations.
//! - [`Dram`] — the DRAM-class split-transaction backend wrapped around
//!   the banked memory: row-buffer hit/miss response latency, a per-tile
//!   bounded in-flight window (MLP ceiling) and a grants-per-cycle
//!   bandwidth budget. [`FabricMemory`] selects between the flat banked
//!   model and the DRAM wrapper behind one [`FabricPort`].
//! - [`map`] — the physical address map (RAM, HHT MMRs, HHT buffer window).
//! - [`MmioDevice`] — the trait the HHT front-end implements to appear in
//!   the CPU's load/store space.

pub mod banked;
pub mod cache;
pub mod dram;
pub mod map;
pub mod mmio;
pub mod port;
pub mod sram;

pub use banked::{SharedMemStats, SharedMemory, TilePort};
pub use cache::L1dCache;
pub use dram::{Dram, DramConfig, FabricMemory, FabricPort};
pub use mmio::{MmioDevice, MmioReadResult};
pub use port::{MemIssue, MemRefusal, MemoryPort, RowOutcome};
pub use sram::{Requester, Sram, SramStats};
