//! Memory-mapped device interface.
//!
//! The HHT front-end implements [`MmioDevice`]; the CPU core routes loads
//! and stores that fall outside SRAM to the device. Reads can *stall* —
//! §3.1: "If the CPU performs a load when the buffer is not ready, then the
//! FE stalls the load" — which is how the CPU-waiting-for-HHT cycles of
//! Figs. 6/7 arise.

/// Result of a device read at a given cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MmioReadResult {
    /// Data is available this cycle.
    Data(u32),
    /// The device is not ready; the CPU must retry next cycle (a stall).
    Stall,
}

/// A device mapped into the CPU's physical address space.
pub trait MmioDevice {
    /// Read a word at `addr` during cycle `now`. May stall.
    fn mmio_read(&mut self, addr: u32, now: u64) -> MmioReadResult;

    /// Write a word at `addr` during cycle `now`. Writes are posted
    /// (never stall): configuration stores complete in one cycle.
    fn mmio_write(&mut self, addr: u32, value: u32, now: u64);
}

/// A device that is never ready on reads and swallows writes. Useful for
/// running programs that do not touch any device (baseline kernels, unit
/// tests).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullDevice;

impl MmioDevice for NullDevice {
    fn mmio_read(&mut self, _addr: u32, _now: u64) -> MmioReadResult {
        MmioReadResult::Data(0)
    }
    fn mmio_write(&mut self, _addr: u32, _value: u32, _now: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial device: one register, reads stall until it was written.
    struct OneReg {
        value: Option<u32>,
    }

    impl MmioDevice for OneReg {
        fn mmio_read(&mut self, _addr: u32, _now: u64) -> MmioReadResult {
            match self.value {
                Some(v) => MmioReadResult::Data(v),
                None => MmioReadResult::Stall,
            }
        }
        fn mmio_write(&mut self, _addr: u32, value: u32, _now: u64) {
            self.value = Some(value);
        }
    }

    #[test]
    fn stall_then_data() {
        let mut d = OneReg { value: None };
        assert_eq!(d.mmio_read(0, 0), MmioReadResult::Stall);
        d.mmio_write(0, 7, 1);
        assert_eq!(d.mmio_read(0, 2), MmioReadResult::Data(7));
    }
}
