//! `hht-serve`: a persistent simulation service over the HHT fabric.
//!
//! Every earlier entry point in this repository is one-shot: build a
//! problem layout, construct a [`hht_system::fabric::Fabric`], simulate,
//! drop everything. That is the wrong shape for the ROADMAP's north star —
//! serving sustained sparse traffic from many tenants — where the same
//! matrices recur and the fixed costs (layout, image building, fabric and
//! memory allocation) are paid over and over. This crate keeps a
//! [`Service`] alive across requests and amortizes everything the
//! simulator's proven bit-determinism allows:
//!
//! - **Content-addressed job cache** ([`cache`]) — two tiers keyed by the
//!   stable content hashes from `hht_sparse::hash`. The *plan* tier caches
//!   [`hht_system::runner::FabricPlan`]s (pristine problem image, layout
//!   and nnz-balanced attempt-0 shards) per `(kernel family, matrix[,
//!   operand])`, so repeat traffic skips SRAM sizing, layout and shard
//!   balancing entirely; for SpMV a hit with a *new* dense operand patches
//!   the vector bytes into the cached image in place. The *replay* tier
//!   memoizes whole run outputs per `(kernel, matrix, operand)`: because
//!   the simulator is bit-deterministic (pinned by the determinism suite),
//!   an exact repeat request is served by replaying the stored output —
//!   bit-identical to re-running it, at near-zero host cost.
//! - **Warm fabric pool** ([`pool`]) — a [`FabricPool`] implements the
//!   runner's `FabricProvider` hook: retired fabrics donate their
//!   multi-megabyte memory buffers to the next job's image build
//!   ([`hht_system::fabric::Fabric::reset_for`]), so steady-state service
//!   stops allocating.
//! - **Tenant-fair admission** ([`service`]) — requests queue per tenant
//!   and each scheduling wave admits at most one request per tenant in
//!   round-robin order, so one tenant's burst cannot starve the others.
//!   Waves dispatch over the persistent `hht-exec` worker pool.
//! - **Request batching** ([`batch`]) — small cold SpMV jobs in a wave are
//!   packed into one block-diagonal fabric pass and the per-job `y`
//!   demultiplexed afterwards; block-diagonal structure keeps every row's
//!   f32 summation order identical to its singleton run, so demuxed
//!   results are bit-identical per job.
//!
//! Throughput is measured by the `figures serve` driver into the committed
//! `BENCH_serve.json` ([`report`]): deterministic fields (simulated cycle
//! totals, cache-hit and pool-reuse counts) are regression-gated in CI,
//! host jobs/sec is informational.

pub mod batch;
pub mod cache;
pub mod pool;
pub mod report;
pub mod request;
pub mod service;

pub use batch::SpmvBatch;
pub use cache::{CacheKey, PlanKey};
pub use pool::FabricPool;
pub use report::{percentile_us, ServeBenchReport, ServeConfigReport, SERVE_SCHEMA};
pub use request::{KernelKind, Operand, Request, Response, Served};
pub use service::{naive_run_stream, ServeStats, Service, ServiceConfig};
