//! Content-addressed job caches: the plan tier and the replay tier.
//!
//! Keys are built from `hht_sparse::hash` stable content hashes, so a key
//! names the *mathematical* job, not the allocation that carried it —
//! clients resubmitting an equal matrix from a different buffer still hit.
//! Both tiers are bounded FIFO caches: inserts past capacity evict the
//! oldest entry, which keeps eviction deterministic (no recency state that
//! would make hit counts depend on timing).

use crate::request::{KernelKind, Operand, Request};
use hht_system::runner::{FabricPlan, FabricRunOutput};
use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Replay-tier key: the exact job. `kernel` distinguishes the SpMSpV
/// variants (their outputs differ).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// [`KernelKind::tag`].
    pub kernel: u8,
    /// Matrix content hash.
    pub matrix: u64,
    /// Operand content hash.
    pub operand: u64,
}

/// Plan-tier key. For SpMV the operand hash is zero: the layout depends
/// only on the matrix shape (the dense vector occupies a fixed-size region
/// that a hit patches in place). For SpMSpV the operand's nonzero count
/// shapes the layout, so the operand hash participates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// [`KernelKind::family_tag`] (both SpMSpV variants share plans).
    pub family: u8,
    /// Matrix content hash.
    pub matrix: u64,
    /// Operand content hash (0 for SpMV).
    pub operand: u64,
}

impl CacheKey {
    /// Key for `request`, given its precomputed content hashes.
    pub fn new(kernel: KernelKind, matrix: u64, operand: u64) -> Self {
        CacheKey { kernel: kernel.tag(), matrix, operand }
    }
}

impl PlanKey {
    /// Plan key for `request`, given its precomputed content hashes.
    pub fn new(kernel: KernelKind, matrix: u64, operand: u64) -> Self {
        let operand = match kernel {
            KernelKind::Spmv => 0,
            KernelKind::SpmspvV1 | KernelKind::SpmspvV2 => operand,
        };
        PlanKey { family: kernel.family_tag(), matrix, operand }
    }
}

/// A cached plan plus the hash of the dense operand currently baked into
/// its image (SpMV only; `0` for SpMSpV plans, whose operand is part of
/// the key).
pub struct PlanEntry {
    /// The reusable image/layout/shards.
    pub plan: Arc<FabricPlan>,
    /// Content hash of the dense vector whose bytes `plan.image` holds.
    pub baked_operand: u64,
}

/// Bounded FIFO map used by both tiers.
pub struct FifoCache<K, V> {
    map: HashMap<K, V>,
    order: VecDeque<K>,
    cap: usize,
}

impl<K: std::hash::Hash + Eq + Copy, V> FifoCache<K, V> {
    /// An empty cache evicting beyond `cap` entries (`cap == 0` disables
    /// the tier: every lookup misses, every insert is dropped).
    pub fn new(cap: usize) -> Self {
        FifoCache { map: HashMap::new(), order: VecDeque::new(), cap }
    }

    /// Lookup without touching eviction order.
    pub fn get(&self, k: &K) -> Option<&V> {
        self.map.get(k)
    }

    /// Mutable lookup (the SpMV plan tier patches images in place).
    pub fn get_mut(&mut self, k: &K) -> Option<&mut V> {
        self.map.get_mut(k)
    }

    /// Insert, evicting the oldest entry when full.
    pub fn insert(&mut self, k: K, v: V) {
        if self.cap == 0 {
            return;
        }
        if self.map.insert(k, v).is_none() {
            self.order.push_back(k);
            if self.order.len() > self.cap {
                if let Some(old) = self.order.pop_front() {
                    self.map.remove(&old);
                }
            }
        }
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Content hashes of one request's operands, memoized by allocation
/// identity: serving streams resubmit the same `Arc`s, so each unique
/// buffer is hashed once no matter how often it recurs.
pub struct HashMemo {
    matrices: HashMap<usize, (Arc<hht_sparse::CsrMatrix>, u64)>,
    operands: HashMap<usize, u64>,
    /// Arcs pinned so the pointer keys above can never be reused by a new
    /// allocation while memoized.
    pinned: Vec<Operand>,
}

impl Default for HashMemo {
    fn default() -> Self {
        Self::new()
    }
}

impl HashMemo {
    /// An empty memo.
    pub fn new() -> Self {
        HashMemo { matrices: HashMap::new(), operands: HashMap::new(), pinned: Vec::new() }
    }

    /// `(matrix_hash, operand_hash)` for `req`, computing each at most
    /// once per distinct allocation.
    pub fn hashes(&mut self, req: &Request) -> (u64, u64) {
        let mp = Arc::as_ptr(&req.matrix) as usize;
        let mh = match self.matrices.get(&mp) {
            Some(&(_, h)) => h,
            None => {
                let h = req.matrix.content_hash();
                self.matrices.insert(mp, (Arc::clone(&req.matrix), h));
                h
            }
        };
        let op = match &req.operand {
            Operand::Dense(v) => Arc::as_ptr(v) as usize,
            Operand::Sparse(x) => Arc::as_ptr(x) as usize,
        };
        let oh = match self.operands.entry(op) {
            Entry::Occupied(e) => *e.get(),
            Entry::Vacant(e) => {
                let h = match &req.operand {
                    Operand::Dense(v) => v.content_hash(),
                    Operand::Sparse(x) => x.content_hash(),
                };
                e.insert(h);
                self.pinned.push(req.operand.clone());
                h
            }
        };
        (mh, oh)
    }
}

/// The replay tier's stored value: the complete run output of the
/// *singleton* pass that first served this job. Batched passes are never
/// entered here — a replay must be bit-identical to a cold one-shot run
/// (y, stats, events), which only a singleton pass is.
pub type CachedRun = Arc<FabricRunOutput>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_cache_evicts_oldest_first() {
        let mut c: FifoCache<u32, u32> = FifoCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(3, 30);
        assert!(c.get(&1).is_none());
        assert_eq!(c.get(&2), Some(&20));
        assert_eq!(c.get(&3), Some(&30));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn zero_capacity_disables_the_tier() {
        let mut c: FifoCache<u32, u32> = FifoCache::new(0);
        c.insert(1, 10);
        assert!(c.is_empty());
        assert!(c.get(&1).is_none());
    }

    #[test]
    fn spmv_plan_key_ignores_operand_spmspv_does_not() {
        let a = PlanKey::new(KernelKind::Spmv, 7, 100);
        let b = PlanKey::new(KernelKind::Spmv, 7, 200);
        assert_eq!(a, b);
        let c = PlanKey::new(KernelKind::SpmspvV1, 7, 100);
        let d = PlanKey::new(KernelKind::SpmspvV1, 7, 200);
        assert_ne!(c, d);
        // The SpMSpV variants share the plan tier…
        assert_eq!(c, PlanKey::new(KernelKind::SpmspvV2, 7, 100));
        // …but never the replay tier.
        assert_ne!(
            CacheKey::new(KernelKind::SpmspvV1, 7, 100),
            CacheKey::new(KernelKind::SpmspvV2, 7, 100)
        );
    }
}
