//! The persistent service: tenant-fair admission, wave scheduling, cache
//! resolution, batching, and dispatch over the `hht-exec` worker pool.
//!
//! # Scheduling model
//!
//! Requests are queued per tenant. The service runs in *waves*: each wave
//! admits at most one request per tenant, in ascending tenant order — a
//! tenant that bursts 100 jobs advances one per wave while every other
//! tenant keeps being served (round-robin admission; no starvation).
//! Within a wave:
//!
//! 1. **Replay resolution** (single-threaded, deterministic order): each
//!    request's content-hash key is looked up in the replay tier; hits are
//!    answered immediately without simulating. Duplicate misses inside the
//!    same wave are deduplicated — one leader simulates, followers share
//!    its pass.
//! 2. **Batching**: remaining small SpMV jobs are packed block-diagonally
//!    (up to the configured job/row caps); everything else becomes a
//!    singleton unit with plan-cache resolution.
//! 3. **Dispatch**: units execute over the persistent `hht-exec` worker
//!    pool (`jobs` wide). Each unit uses the warm fabric pool assigned by
//!    its *unit index* — not by thread — so pool-reuse counts are
//!    deterministic under any scheduling.
//! 4. **Demux & memoization**: per-job `y` is sliced out of batch passes;
//!    singleton passes enter the replay tier (batched passes do not: a
//!    replay must be bit-identical to a cold one-shot run, which only a
//!    singleton pass is).
//!
//! Because admission order, cache resolution order, and pool assignment
//! are all independent of thread timing, every field of [`ServeStats`]
//! except host wall time is bit-deterministic — which is what lets CI gate
//! them.

use crate::batch::concat_spmv;
use crate::cache::{CacheKey, FifoCache, HashMemo, PlanEntry, PlanKey};
use crate::pool::FabricPool;
use crate::request::{KernelKind, Operand, Request, Response, Served};
use hht_sparse::DenseVector;
use hht_system::config::SystemConfig;
use hht_system::fabric::FabricConfig;
use hht_system::runner::{
    plan_spmspv_fabric, plan_spmv_fabric, run_spmspv_fabric_planned, run_spmspv_fabric_v1,
    run_spmspv_fabric_v2, run_spmv_fabric, run_spmv_fabric_planned, FabricPlan, FabricRunOutput,
};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Tuning knobs of one [`Service`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Worker-pool width for wave dispatch (1 = serve on the caller, the
    /// apples-to-apples configuration for throughput comparisons).
    pub jobs: usize,
    /// Pack small cold SpMV jobs into block-diagonal passes.
    pub batching: bool,
    /// Only jobs with at most this many rows are batched.
    pub batch_row_threshold: usize,
    /// Max member jobs per batch pass.
    pub batch_max_jobs: usize,
    /// Max total rows per batch pass.
    pub batch_max_rows: usize,
    /// Memoize singleton run outputs for exact-repeat replay.
    pub replay: bool,
    /// Plan-tier capacity (entries).
    pub plan_cap: usize,
    /// Replay-tier capacity (entries).
    pub replay_cap: usize,
    /// Warm spares kept per fabric pool (one pool per dispatch lane).
    pub pool_cap: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            jobs: 1,
            batching: true,
            batch_row_threshold: 256,
            batch_max_jobs: 8,
            batch_max_rows: 1024,
            replay: true,
            plan_cap: 256,
            replay_cap: 1024,
            pool_cap: 4,
        }
    }
}

/// Serving counters. Everything here except nothing — all fields — is
/// bit-deterministic for a given request stream and configuration; host
/// timing lives in the per-response latencies instead.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests admitted.
    pub requests: u64,
    /// Scheduling waves run.
    pub waves: u64,
    /// Requests served from the replay tier (including in-wave duplicate
    /// followers).
    pub replay_hits: u64,
    /// Singleton jobs that reused a cached plan.
    pub plan_hits: u64,
    /// Singleton jobs that computed (and cached) a fresh plan.
    pub plan_misses: u64,
    /// Batch passes executed.
    pub batches: u64,
    /// Member jobs packed into those passes.
    pub batched_jobs: u64,
    /// Singleton fabric passes executed.
    pub singleton_passes: u64,
    /// Fabric acquires satisfied by resetting a warm spare.
    pub pool_reuses: u64,
    /// Fabric acquires that constructed from scratch.
    pub pool_builds: u64,
    /// Image builds that started from a recycled buffer.
    pub buffer_reuses: u64,
    /// Total simulated wall cycles across executed passes (replays add
    /// nothing — their cycles were counted when first simulated).
    pub sim_cycles: u64,
}

impl ServeStats {
    /// Replay hit rate over the whole stream.
    pub fn hit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.replay_hits as f64 / self.requests as f64
        }
    }

    /// Fraction of fabric acquires served warm.
    pub fn pool_reuse_rate(&self) -> f64 {
        let total = self.pool_reuses + self.pool_builds;
        if total == 0 {
            0.0
        } else {
            self.pool_reuses as f64 / total as f64
        }
    }
}

/// A single execution unit of one wave.
enum Unit {
    Single { idx: usize, key: CacheKey, plan: Arc<FabricPlan>, served: Served },
    Batch { members: Vec<(usize, CacheKey)> },
}

/// What executing a unit produced.
enum UnitOut {
    Single { idx: usize, key: CacheKey, run: Arc<FabricRunOutput>, served: Served, secs: Duration },
    Batch { members: Vec<(usize, CacheKey)>, run: Arc<FabricRunOutput>, secs: Duration },
}

/// The persistent serving front end for one `(SystemConfig,
/// FabricConfig)` shape. Construct once, feed request streams forever.
pub struct Service {
    cfg: SystemConfig,
    fab: FabricConfig,
    scfg: ServiceConfig,
    memo: HashMemo,
    plans: FifoCache<PlanKey, PlanEntry>,
    replays: FifoCache<CacheKey, Arc<FabricRunOutput>>,
    /// One warm pool per dispatch lane; units lock `pools[unit % lanes]`,
    /// keeping reuse accounting independent of thread scheduling.
    pools: Vec<Mutex<FabricPool>>,
    stats: ServeStats,
}

impl Service {
    /// A fresh service for one config shape.
    pub fn new(cfg: SystemConfig, fab: FabricConfig, scfg: ServiceConfig) -> Self {
        let lanes = scfg.jobs.max(1);
        Service {
            cfg,
            fab,
            scfg,
            memo: HashMemo::new(),
            plans: FifoCache::new(scfg.plan_cap),
            replays: FifoCache::new(scfg.replay_cap),
            pools: (0..lanes).map(|_| Mutex::new(FabricPool::new(scfg.pool_cap))).collect(),
            stats: ServeStats::default(),
        }
    }

    /// Accumulated serving counters (pool counters folded in).
    pub fn stats(&self) -> ServeStats {
        let mut s = self.stats;
        for p in &self.pools {
            let p = p.lock().unwrap();
            s.pool_reuses += p.reuses;
            s.pool_builds += p.builds;
            s.buffer_reuses += p.buffer_reuses;
        }
        s
    }

    /// Serve a whole request stream to completion, returning responses in
    /// input order.
    pub fn run_stream(&mut self, requests: &[Request]) -> Vec<Response> {
        let mut out: Vec<Option<Response>> = requests.iter().map(|_| None).collect();
        // Per-tenant FIFO queues of input indices, tenants in ascending id
        // order for deterministic round-robin.
        let mut queues: BTreeMap<usize, VecDeque<usize>> = BTreeMap::new();
        for (i, r) in requests.iter().enumerate() {
            queues.entry(r.tenant).or_default().push_back(i);
        }
        while !queues.is_empty() {
            let wave: Vec<usize> = queues
                .values_mut()
                .map(|q| q.pop_front().expect("empty queues are removed"))
                .collect();
            queues.retain(|_, q| !q.is_empty());
            self.run_wave(requests, &wave, &mut out);
        }
        out.into_iter().map(|r| r.expect("every request answered")).collect()
    }

    fn run_wave(&mut self, requests: &[Request], wave: &[usize], out: &mut [Option<Response>]) {
        self.stats.waves += 1;
        let mut units: Vec<Unit> = Vec::new();
        let mut batchable: Vec<(usize, CacheKey)> = Vec::new();
        // In-wave dedup: key -> indices of duplicate misses awaiting the
        // leader's pass.
        let mut followers: HashMap<CacheKey, Vec<usize>> = HashMap::new();
        let mut leaders: Vec<CacheKey> = Vec::new();
        for &idx in wave {
            let req = &requests[idx];
            self.stats.requests += 1;
            let (mh, oh) = self.memo.hashes(req);
            let key = CacheKey::new(req.kernel, mh, oh);
            if self.scfg.replay {
                if let Some(run) = self.replays.get(&key) {
                    self.stats.replay_hits += 1;
                    out[idx] = Some(replay_response(req, Arc::clone(run)));
                    continue;
                }
                // In-wave dedup (same memoization contract as the replay
                // tier, so it is gated by the same flag): identical misses
                // share the leader's pass.
                if leaders.contains(&key) {
                    self.stats.replay_hits += 1;
                    followers.entry(key).or_default().push(idx);
                    continue;
                }
            }
            leaders.push(key);
            let small = req.rows() <= self.scfg.batch_row_threshold;
            if self.scfg.batching && req.kernel == KernelKind::Spmv && small {
                batchable.push((idx, key));
            } else {
                let (plan, served) = self.resolve_plan(req, mh, oh);
                units.push(Unit::Single { idx, key, plan, served });
            }
        }
        // Greedy packing in wave order; a group of one is a plain
        // singleton (it then gets plan caching and replayability).
        let mut group: Vec<(usize, CacheKey)> = Vec::new();
        let mut group_rows = 0usize;
        for (idx, key) in batchable {
            let rows = requests[idx].rows();
            if group.len() >= self.scfg.batch_max_jobs
                || (!group.is_empty() && group_rows + rows > self.scfg.batch_max_rows)
            {
                self.flush_group(requests, &mut group, &mut units);
                group_rows = 0;
            }
            group.push((idx, key));
            group_rows += rows;
        }
        self.flush_group(requests, &mut group, &mut units);

        // Dispatch over the persistent worker pool; pool lane by unit
        // index so warm-pool accounting is scheduling-independent.
        let lanes = self.pools.len();
        let pools = &self.pools;
        let cfg = self.cfg;
        let fab = self.fab;
        let results: Vec<UnitOut> =
            hht_exec::parallel_map(self.scfg.jobs.max(1), units, |u_idx, unit| {
                let mut pool = pools[u_idx % lanes].lock().unwrap();
                let t0 = Instant::now();
                match unit {
                    Unit::Single { idx, key, plan, served } => {
                        let req = &requests[idx];
                        let run = match (&req.kernel, &req.operand) {
                            (KernelKind::Spmv, Operand::Dense(v)) => run_spmv_fabric_planned(
                                &cfg,
                                fab,
                                &req.matrix,
                                v,
                                &plan,
                                &mut *pool,
                            ),
                            (k, Operand::Sparse(x)) => run_spmspv_fabric_planned(
                                &cfg,
                                fab,
                                &req.matrix,
                                x,
                                *k == KernelKind::SpmspvV2,
                                &plan,
                                &mut *pool,
                            ),
                            _ => unreachable!("request constructors enforce operand kinds"),
                        };
                        UnitOut::Single { idx, key, run: Arc::new(run), served, secs: t0.elapsed() }
                    }
                    Unit::Batch { members } => {
                        let jobs: Vec<(&hht_sparse::CsrMatrix, &DenseVector)> = members
                            .iter()
                            .map(|&(idx, _)| {
                                let req = &requests[idx];
                                match &req.operand {
                                    Operand::Dense(v) => (req.matrix.as_ref(), v.as_ref()),
                                    Operand::Sparse(_) => unreachable!("only SpMV batches"),
                                }
                            })
                            .collect();
                        let b = concat_spmv(&jobs);
                        let plan = plan_spmv_fabric(&cfg, fab, &b.matrix, &b.v);
                        let run =
                            run_spmv_fabric_planned(&cfg, fab, &b.matrix, &b.v, &plan, &mut *pool);
                        UnitOut::Batch { members, run: Arc::new(run), secs: t0.elapsed() }
                    }
                }
            });

        for r in results {
            match r {
                UnitOut::Single { idx, key, run, served, secs } => {
                    self.stats.singleton_passes += 1;
                    self.stats.sim_cycles += run.stats.cycles;
                    if self.scfg.replay {
                        self.replays.insert(key, Arc::clone(&run));
                    }
                    let rows = run.y.len();
                    for &f in followers.get(&key).map(Vec::as_slice).unwrap_or(&[]) {
                        out[f] = Some(replay_response(&requests[f], Arc::clone(&run)));
                    }
                    out[idx] = Some(Response {
                        tenant: requests[idx].tenant,
                        y: run.y.clone(),
                        rows: (0, rows),
                        run,
                        served,
                        batch_size: 1,
                        latency: secs,
                    });
                }
                UnitOut::Batch { members, run, secs } => {
                    self.stats.batches += 1;
                    self.stats.batched_jobs += members.len() as u64;
                    self.stats.sim_cycles += run.stats.cycles;
                    let batch_size = members.len();
                    let mut r0 = 0usize;
                    for (idx, key) in members {
                        let req = &requests[idx];
                        let r1 = r0 + req.rows();
                        let y = DenseVector::from(run.y.as_slice()[r0..r1].to_vec());
                        for &f in followers.get(&key).map(Vec::as_slice).unwrap_or(&[]) {
                            out[f] = Some(Response {
                                tenant: requests[f].tenant,
                                y: y.clone(),
                                rows: (r0, r1),
                                run: Arc::clone(&run),
                                served: Served::ReplayHit,
                                batch_size,
                                latency: Duration::ZERO,
                            });
                        }
                        out[idx] = Some(Response {
                            tenant: req.tenant,
                            y,
                            rows: (r0, r1),
                            run: Arc::clone(&run),
                            served: Served::Cold,
                            batch_size,
                            latency: secs,
                        });
                        r0 = r1;
                    }
                }
            }
        }
    }

    /// Close out the pending batch group: one job falls back to the
    /// singleton path (plan cache + replayability), two or more become a
    /// batch unit.
    fn flush_group(
        &mut self,
        requests: &[Request],
        group: &mut Vec<(usize, CacheKey)>,
        units: &mut Vec<Unit>,
    ) {
        match group.len() {
            0 => {}
            1 => {
                let (idx, key) = group[0];
                let req = &requests[idx];
                let (mh, oh) = self.memo.hashes(req);
                let (plan, served) = self.resolve_plan(req, mh, oh);
                units.push(Unit::Single { idx, key, plan, served });
            }
            _ => units.push(Unit::Batch { members: std::mem::take(group) }),
        }
        group.clear();
    }

    fn resolve_plan(&mut self, req: &Request, mh: u64, oh: u64) -> (Arc<FabricPlan>, Served) {
        let pk = PlanKey::new(req.kernel, mh, oh);
        if let Some(entry) = self.plans.get_mut(&pk) {
            self.stats.plan_hits += 1;
            if entry.baked_operand != oh {
                // SpMV hit with a new dense operand: patch its bytes into
                // the cached image at the layout's vector base. (SpMSpV
                // keys include the operand, so they never get here.)
                let v = match &req.operand {
                    Operand::Dense(v) => v,
                    Operand::Sparse(_) => unreachable!("spmspv plan keys pin the operand"),
                };
                let plan = Arc::make_mut(&mut entry.plan);
                let base = plan.layout.v_base as usize;
                for (i, &val) in v.as_slice().iter().enumerate() {
                    plan.image[base + 4 * i..base + 4 * i + 4].copy_from_slice(&val.to_le_bytes());
                }
                entry.baked_operand = oh;
            }
            return (Arc::clone(&entry.plan), Served::PlanHit);
        }
        self.stats.plan_misses += 1;
        let plan = Arc::new(match (&req.kernel, &req.operand) {
            (KernelKind::Spmv, Operand::Dense(v)) => {
                plan_spmv_fabric(&self.cfg, self.fab, &req.matrix, v)
            }
            (_, Operand::Sparse(x)) => plan_spmspv_fabric(&self.cfg, self.fab, &req.matrix, x),
            _ => unreachable!("request constructors enforce operand kinds"),
        });
        self.plans.insert(pk, PlanEntry { plan: Arc::clone(&plan), baked_operand: oh });
        (plan, Served::Cold)
    }
}

/// A response served from a memoized singleton pass.
fn replay_response(req: &Request, run: Arc<FabricRunOutput>) -> Response {
    let rows = run.y.len();
    Response {
        tenant: req.tenant,
        y: run.y.clone(),
        rows: (0, rows),
        run,
        served: Served::ReplayHit,
        batch_size: 1,
        latency: Duration::ZERO,
    }
}

/// The comparator the serve benchmark is measured against: a serial cold
/// one-shot loop with no pool, no caches, no batching — exactly what a
/// client scripting the pre-serve runners would do.
pub fn naive_run_stream(
    cfg: &SystemConfig,
    fab: FabricConfig,
    requests: &[Request],
) -> Vec<(Arc<FabricRunOutput>, Duration)> {
    requests
        .iter()
        .map(|req| {
            let t0 = Instant::now();
            let run = match (&req.kernel, &req.operand) {
                (KernelKind::Spmv, Operand::Dense(v)) => run_spmv_fabric(cfg, fab, &req.matrix, v),
                (KernelKind::SpmspvV1, Operand::Sparse(x)) => {
                    run_spmspv_fabric_v1(cfg, fab, &req.matrix, x)
                }
                (KernelKind::SpmspvV2, Operand::Sparse(x)) => {
                    run_spmspv_fabric_v2(cfg, fab, &req.matrix, x)
                }
                _ => unreachable!("request constructors enforce operand kinds"),
            };
            (Arc::new(run), t0.elapsed())
        })
        .collect()
}
