//! Block-diagonal request batching.
//!
//! Small SpMV jobs are packed into one fabric pass by concatenating their
//! matrices block-diagonally: job *k*'s rows keep their column indices
//! shifted by the cumulative column offset, and the dense operands are
//! concatenated to match. Each output row of the batch touches only its
//! own job's block, in the same element order as the singleton run, so
//! the demultiplexed per-job `y` is **bit-identical** to running the job
//! alone (pinned by this module's tests and the determinism suite). The
//! pass itself shards nnz-balanced across tiles exactly like any other
//! matrix — the existing `layout::row_shards_range` machinery sees one
//! big CSR and needs no batching awareness.

use hht_sparse::{CsrMatrix, DenseVector, SparseFormat};

/// A packed batch: the block-diagonal matrix, the concatenated operand,
/// and each member job's row range for demultiplexing.
pub struct SpmvBatch {
    /// The block-diagonal CSR over all member jobs.
    pub matrix: CsrMatrix,
    /// Concatenated dense operands.
    pub v: DenseVector,
    /// Member row ranges: `y[r0..r1]` of the pass is job `k`'s output.
    pub row_ranges: Vec<(usize, usize)>,
}

/// Pack `jobs` into one block-diagonal pass, preserving order.
pub fn concat_spmv(jobs: &[(&CsrMatrix, &DenseVector)]) -> SpmvBatch {
    assert!(!jobs.is_empty(), "a batch holds at least one job");
    let total_rows: usize = jobs.iter().map(|(m, _)| m.rows()).sum();
    let total_nnz: usize = jobs.iter().map(|(m, _)| m.nnz()).sum();
    let total_cols: usize = jobs.iter().map(|(m, _)| m.cols()).sum();
    let mut row_ptr = Vec::with_capacity(total_rows + 1);
    let mut col_idx = Vec::with_capacity(total_nnz);
    let mut values = Vec::with_capacity(total_nnz);
    let mut v = Vec::with_capacity(total_cols);
    let mut row_ranges = Vec::with_capacity(jobs.len());
    row_ptr.push(0u32);
    let mut nnz0 = 0u32;
    let mut col0 = 0u32;
    let mut row0 = 0usize;
    for (m, vk) in jobs {
        for &p in &m.row_ptr()[1..] {
            row_ptr.push(nnz0 + p);
        }
        col_idx.extend(m.col_indices().iter().map(|&c| col0 + c));
        values.extend_from_slice(m.values());
        v.extend_from_slice(vk.as_slice());
        row_ranges.push((row0, row0 + m.rows()));
        nnz0 += m.nnz() as u32;
        col0 += m.cols() as u32;
        row0 += m.rows();
    }
    let matrix = CsrMatrix::from_raw(total_rows, total_cols, row_ptr, col_idx, values)
        .expect("block-diagonal concatenation of valid CSRs is valid");
    SpmvBatch { matrix, v: DenseVector::from(v), row_ranges }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hht_sparse::{generate, kernels};

    #[test]
    fn batch_golden_equals_per_job_golden_bitwise() {
        let ms: Vec<CsrMatrix> =
            (0..3).map(|s| generate::random_csr(8 + s, 10, 0.7, s as u64)).collect();
        let vs: Vec<DenseVector> =
            (0..3).map(|s| generate::random_dense_vector(10, 90 + s)).collect();
        let jobs: Vec<(&CsrMatrix, &DenseVector)> = ms.iter().zip(&vs).collect();
        let b = concat_spmv(&jobs);
        assert_eq!(b.matrix.rows(), 8 + 9 + 10);
        assert_eq!(b.matrix.cols(), 30);
        let y = kernels::spmv(&b.matrix, &b.v).unwrap();
        for ((m, v), &(r0, r1)) in jobs.iter().zip(&b.row_ranges) {
            let alone = kernels::spmv(m, v).unwrap();
            // Bitwise, not tolerance: each row's summation order is
            // untouched by the block-diagonal packing.
            assert_eq!(&y.as_slice()[r0..r1], alone.as_slice());
        }
    }

    #[test]
    fn singleton_batch_is_the_identity() {
        let m = generate::random_csr(6, 6, 0.5, 3);
        let v = generate::random_dense_vector(6, 4);
        let b = concat_spmv(&[(&m, &v)]);
        assert_eq!(b.matrix.row_ptr(), m.row_ptr());
        assert_eq!(b.matrix.col_indices(), m.col_indices());
        assert_eq!(b.matrix.values(), m.values());
        assert_eq!(b.v.as_slice(), v.as_slice());
        assert_eq!(b.row_ranges, vec![(0, 6)]);
    }

    #[test]
    fn empty_blocks_are_preserved() {
        // An all-zero member must keep its row range, producing zeros.
        let a = generate::random_csr(4, 4, 0.5, 5);
        let z = generate::random_csr(3, 3, 1.0, 6); // fully sparse
        let va = generate::random_dense_vector(4, 7);
        let vz = generate::random_dense_vector(3, 8);
        let b = concat_spmv(&[(&a, &va), (&z, &vz)]);
        let y = kernels::spmv(&b.matrix, &b.v).unwrap();
        assert!(y.as_slice()[4..].iter().all(|&x| x == 0.0));
    }
}
