//! The warm fabric pool: a `FabricProvider` that recycles retired
//! fabrics' memory buffers across jobs.
//!
//! A fabric's dominant allocation is its shared-memory byte array (the
//! problem image, typically megabytes). [`FabricPool::acquire`] resets a
//! spare fabric in place via [`Fabric::reset_for`] — bit-identical to
//! fresh construction, pinned by the determinism suite — and banks the
//! retired buffer; [`FabricPool::image_buffer`] hands banked buffers back
//! to the next image build. In steady state a serving loop therefore
//! stops allocating image-sized memory entirely.

use hht_isa::Program;
use hht_mem::SharedMemory;
use hht_system::config::SystemConfig;
use hht_system::fabric::{Fabric, FabricConfig};
use hht_system::runner::FabricProvider;

/// Bounded pool of spare fabrics and recycled image buffers for one
/// config shape. Also the provider-side half of the pool-reuse statistics
/// reported in `BENCH_serve.json`.
pub struct FabricPool {
    spares: Vec<Fabric>,
    buffers: Vec<Vec<u8>>,
    cap: usize,
    /// Acquires satisfied by resetting a warm spare.
    pub reuses: u64,
    /// Acquires that had to construct a fabric from scratch.
    pub builds: u64,
    /// Image builds that started from a recycled buffer.
    pub buffer_reuses: u64,
}

impl FabricPool {
    /// A pool keeping at most `cap` spare fabrics (and as many buffers).
    pub fn new(cap: usize) -> Self {
        FabricPool {
            spares: Vec::new(),
            buffers: Vec::new(),
            cap,
            reuses: 0,
            builds: 0,
            buffer_reuses: 0,
        }
    }

    /// Spare fabrics currently parked.
    pub fn spares(&self) -> usize {
        self.spares.len()
    }

    /// Fraction of acquires served from a warm spare.
    pub fn reuse_rate(&self) -> f64 {
        let total = self.reuses + self.builds;
        if total == 0 {
            0.0
        } else {
            self.reuses as f64 / total as f64
        }
    }
}

impl FabricProvider for FabricPool {
    fn image_buffer(&mut self) -> Vec<u8> {
        match self.buffers.pop() {
            Some(b) => {
                self.buffer_reuses += 1;
                b
            }
            None => Vec::new(),
        }
    }

    fn acquire(
        &mut self,
        cfg: &SystemConfig,
        fab: FabricConfig,
        programs: Vec<Program>,
        mem: SharedMemory,
    ) -> Fabric {
        match self.spares.pop() {
            Some(mut f) => {
                self.reuses += 1;
                let retired = f.reset_for(cfg, fab, programs, mem);
                if self.buffers.len() < self.cap {
                    self.buffers.push(retired);
                }
                f
            }
            None => {
                self.builds += 1;
                Fabric::new(cfg, fab, programs, mem)
            }
        }
    }

    fn release(&mut self, fabric: Fabric) {
        if self.spares.len() < self.cap {
            self.spares.push(fabric);
        }
    }
}
