//! The serving benchmark report (`BENCH_serve.json`) and its regression
//! comparator.
//!
//! Mirrors the repo's `BENCH_core.json` convention: a small committed
//! JSON baseline, a comparator that gates **only deterministic fields**.
//! For serving those are the cache/pool/batch counters (exact — they are
//! structural properties of the request stream and configuration) and the
//! total simulated cycles (relative tolerance). Host throughput varies
//! with the machine running CI, so jobs/sec and latencies are carried for
//! context; the serve-vs-naive *speedup* is a same-machine same-process
//! ratio and is gated only against the absolute `min_speedup` floor
//! committed in the baseline.

use serde::{Deserialize, Serialize};

/// Schema version stamped into every serve report; bump on incompatible
/// change.
pub const SERVE_SCHEMA: u32 = 1;

/// Serving results for one named configuration (one request stream shape
/// × one service configuration).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeConfigReport {
    /// Configuration name (stable key the comparator joins on).
    pub name: String,
    /// Tile count of the fabric being served.
    pub tiles: usize,
    /// Shared-memory bank count.
    pub banks: usize,
    /// Requests in the stream. Deterministic; gated exactly.
    pub requests: u64,
    /// Requests served from the replay tier. Deterministic; gated exactly.
    pub replay_hits: u64,
    /// Singleton jobs that reused a cached plan. Deterministic; gated
    /// exactly.
    pub plan_hits: u64,
    /// Singleton jobs that computed a fresh plan. Deterministic; gated
    /// exactly.
    pub plan_misses: u64,
    /// Batch passes executed. Deterministic; gated exactly.
    pub batches: u64,
    /// Jobs packed into batch passes. Deterministic; gated exactly.
    pub batched_jobs: u64,
    /// Singleton fabric passes executed. Deterministic; gated exactly.
    pub singleton_passes: u64,
    /// Fabric acquires served by resetting a warm spare. Deterministic;
    /// gated exactly.
    pub pool_reuses: u64,
    /// Fabric acquires that built from scratch. Deterministic; gated
    /// exactly.
    pub pool_builds: u64,
    /// Total simulated cycles across executed passes. Deterministic;
    /// gated with the relative tolerance (legitimate timing-model changes
    /// shift it slightly).
    pub sim_cycles: u64,
    /// Replay hit rate over the stream (informational, derived).
    pub hit_rate: f64,
    /// Warm-pool reuse rate (informational, derived).
    pub pool_reuse_rate: f64,
    /// Naive serial cold loop, host seconds (informational).
    pub naive_secs: f64,
    /// Service, host seconds for the same stream (informational).
    pub serve_secs: f64,
    /// Naive host throughput, jobs/second (informational).
    pub naive_jobs_per_sec: f64,
    /// Service host throughput, jobs/second (informational).
    pub serve_jobs_per_sec: f64,
    /// `naive_secs / serve_secs` — same machine, same process. Gated
    /// against `min_speedup`.
    pub speedup: f64,
    /// Gate floor for `speedup` (from the committed baseline).
    pub min_speedup: f64,
    /// Median served latency, host microseconds (informational).
    pub p50_us: f64,
    /// 99th-percentile served latency, host microseconds (informational).
    pub p99_us: f64,
}

/// The full serve report: schema stamp plus one entry per configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeBenchReport {
    /// Always [`SERVE_SCHEMA`] for reports this build writes.
    pub schema: u32,
    /// Per-configuration results, in a stable order.
    pub configs: Vec<ServeConfigReport>,
}

impl ServeBenchReport {
    /// An empty report at the current schema.
    pub fn new() -> Self {
        ServeBenchReport { schema: SERVE_SCHEMA, configs: Vec::new() }
    }

    /// Pretty JSON (deterministic field order — suitable for committing).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report fields are plain data")
    }

    /// Parse a committed report.
    pub fn from_json(s: &str) -> Result<Self, String> {
        serde_json::from_str(s).map_err(|e| format!("malformed serve report: {e}"))
    }

    /// Compare `self` (the current build) against a committed `baseline`.
    ///
    /// Returns one message per regression; empty means the gate passes.
    /// Counter fields must match exactly (they are bit-deterministic);
    /// `sim_cycles` may drift within the relative `tolerance`; host
    /// timing is never gated except `speedup` against the baseline's
    /// absolute `min_speedup` floor.
    pub fn compare(&self, baseline: &ServeBenchReport, tolerance: f64) -> Vec<String> {
        let mut regressions = Vec::new();
        if baseline.schema != self.schema {
            regressions.push(format!(
                "schema mismatch: baseline {} vs current {} (regenerate the baseline)",
                baseline.schema, self.schema
            ));
            return regressions;
        }
        for base in &baseline.configs {
            let Some(cur) = self.configs.iter().find(|c| c.name == base.name) else {
                regressions
                    .push(format!("serve config '{}' missing from current report", base.name));
                continue;
            };
            let exact = [
                ("requests", cur.requests, base.requests),
                ("replay_hits", cur.replay_hits, base.replay_hits),
                ("plan_hits", cur.plan_hits, base.plan_hits),
                ("plan_misses", cur.plan_misses, base.plan_misses),
                ("batches", cur.batches, base.batches),
                ("batched_jobs", cur.batched_jobs, base.batched_jobs),
                ("singleton_passes", cur.singleton_passes, base.singleton_passes),
                ("pool_reuses", cur.pool_reuses, base.pool_reuses),
                ("pool_builds", cur.pool_builds, base.pool_builds),
            ];
            for (label, cur_v, base_v) in exact {
                if cur_v != base_v {
                    regressions.push(format!(
                        "{}: {label} changed {} -> {} (deterministic counter; \
                         regenerate the baseline if intentional)",
                        base.name, base_v, cur_v
                    ));
                }
            }
            let limit = base.sim_cycles as f64 * (1.0 + tolerance);
            if cur.sim_cycles as f64 > limit {
                regressions.push(format!(
                    "{}: sim_cycles regressed {} -> {} (+{:.2}%, tolerance {:.2}%)",
                    base.name,
                    base.sim_cycles,
                    cur.sim_cycles,
                    100.0 * (cur.sim_cycles as f64 / base.sim_cycles as f64 - 1.0),
                    100.0 * tolerance
                ));
            }
            if cur.speedup < base.min_speedup {
                regressions.push(format!(
                    "{}: serve speedup {:.2}x below the {:.2}x floor",
                    base.name, cur.speedup, base.min_speedup
                ));
            }
        }
        regressions
    }
}

impl Default for ServeBenchReport {
    fn default() -> Self {
        Self::new()
    }
}

/// `q`-th percentile (0..=100) of host latencies, in microseconds.
/// Nearest-rank on a sorted copy; 0 for an empty set.
pub fn percentile_us(latencies: &[std::time::Duration], q: f64) -> f64 {
    if latencies.is_empty() {
        return 0.0;
    }
    let mut us: Vec<f64> = latencies.iter().map(|d| d.as_secs_f64() * 1e6).collect();
    us.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let rank = ((q / 100.0) * (us.len() as f64 - 1.0)).round() as usize;
    us[rank.min(us.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn cfg(name: &str, hits: u64, cycles: u64, speedup: f64, floor: f64) -> ServeConfigReport {
        ServeConfigReport {
            name: name.to_string(),
            tiles: 4,
            banks: 4,
            requests: 120,
            replay_hits: hits,
            plan_hits: 6,
            plan_misses: 12,
            batches: 3,
            batched_jobs: 9,
            singleton_passes: 15,
            pool_reuses: 14,
            pool_builds: 4,
            sim_cycles: cycles,
            hit_rate: hits as f64 / 120.0,
            pool_reuse_rate: 14.0 / 18.0,
            naive_secs: 1.0,
            serve_secs: 1.0 / speedup,
            naive_jobs_per_sec: 120.0,
            serve_jobs_per_sec: 120.0 * speedup,
            speedup,
            min_speedup: floor,
            p50_us: 50.0,
            p99_us: 4_000.0,
        }
    }

    #[test]
    fn identical_reports_pass_and_json_round_trips() {
        let mut r = ServeBenchReport::new();
        r.configs.push(cfg("mixed_stream_4t", 102, 1_000_000, 8.0, 5.0));
        assert!(r.compare(&r.clone(), 0.02).is_empty());
        let parsed = ServeBenchReport::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn counter_drift_fails_exactly_cycles_within_tolerance_pass() {
        let mut base = ServeBenchReport::new();
        base.configs.push(cfg("mixed_stream_4t", 102, 1_000_000, 8.0, 5.0));
        // One replay hit fewer: deterministic counter, must fail.
        let mut cur = ServeBenchReport::new();
        cur.configs.push(cfg("mixed_stream_4t", 101, 1_000_000, 8.0, 5.0));
        let regs = cur.compare(&base, 0.02);
        assert!(regs.iter().any(|r| r.contains("replay_hits")), "{regs:?}");
        // hit_rate derives from replay_hits, so it drifted too — but only
        // the counter is gated.
        // Cycles within tolerance pass; past it fail.
        let mut near = ServeBenchReport::new();
        near.configs.push(cfg("mixed_stream_4t", 102, 1_010_000, 8.0, 5.0));
        assert!(near.compare(&base, 0.02).is_empty());
        let mut far = ServeBenchReport::new();
        far.configs.push(cfg("mixed_stream_4t", 102, 1_040_000, 8.0, 5.0));
        let regs = far.compare(&base, 0.02);
        assert_eq!(regs.len(), 1, "{regs:?}");
        assert!(regs[0].contains("sim_cycles"));
    }

    #[test]
    fn speedup_gated_against_floor_not_baseline_measurement() {
        let mut base = ServeBenchReport::new();
        base.configs.push(cfg("mixed_stream_4t", 102, 1_000_000, 8.0, 5.0));
        // Slower than the baseline measured but above the floor: passes.
        let mut slower = ServeBenchReport::new();
        slower.configs.push(cfg("mixed_stream_4t", 102, 1_000_000, 6.1, 5.0));
        assert!(slower.compare(&base, 0.02).is_empty());
        // Below the floor: fails.
        let mut slow = ServeBenchReport::new();
        slow.configs.push(cfg("mixed_stream_4t", 102, 1_000_000, 4.4, 5.0));
        let regs = slow.compare(&base, 0.02);
        assert_eq!(regs.len(), 1, "{regs:?}");
        assert!(regs[0].contains("floor"));
        // Missing config fails.
        let empty = ServeBenchReport::new();
        assert_eq!(empty.compare(&base, 0.02).len(), 1);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let lats: Vec<Duration> = (1..=100).map(Duration::from_micros).collect();
        assert_eq!(percentile_us(&lats, 50.0), 51.0);
        assert_eq!(percentile_us(&lats, 99.0), 99.0);
        assert_eq!(percentile_us(&lats, 100.0), 100.0);
        assert_eq!(percentile_us(&[], 50.0), 0.0);
    }
}
