//! Request/response types of the serving layer.

use hht_sparse::{CsrMatrix, DenseVector, SparseFormat, SparseVector};
use hht_system::runner::FabricRunOutput;
use std::sync::Arc;
use std::time::Duration;

/// Which accelerated kernel a request asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// Sparse matrix × dense vector.
    Spmv,
    /// Sparse matrix × sparse vector, variant 1 (sparse gather against
    /// dense-indexed windows).
    SpmspvV1,
    /// Sparse matrix × sparse vector, variant 2 (intersection in the HHT).
    SpmspvV2,
}

impl KernelKind {
    /// Stable one-byte tag mixed into cache keys.
    pub fn tag(self) -> u8 {
        match self {
            KernelKind::Spmv => 0,
            KernelKind::SpmspvV1 => 1,
            KernelKind::SpmspvV2 => 2,
        }
    }

    /// Both SpMSpV variants run over the same problem image and layout,
    /// so they share plan-cache entries; the family tag keys that tier.
    pub fn family_tag(self) -> u8 {
        match self {
            KernelKind::Spmv => 0,
            KernelKind::SpmspvV1 | KernelKind::SpmspvV2 => 1,
        }
    }
}

/// The kernel's vector operand. Requests hold `Arc`s so a client replaying
/// the same operand shares storage (and the service can memoize its
/// content hash by allocation identity).
#[derive(Debug, Clone)]
pub enum Operand {
    /// Dense operand (SpMV).
    Dense(Arc<DenseVector>),
    /// Sparse operand (SpMSpV).
    Sparse(Arc<SparseVector>),
}

/// One job: a tenant asks for `kernel(matrix, operand)`.
#[derive(Debug, Clone)]
pub struct Request {
    /// Admission-fairness domain; each wave serves at most one request per
    /// tenant.
    pub tenant: usize,
    /// Which kernel to run.
    pub kernel: KernelKind,
    /// The CSR matrix operand.
    pub matrix: Arc<CsrMatrix>,
    /// The vector operand (dense for SpMV, sparse for SpMSpV).
    pub operand: Operand,
}

impl Request {
    /// An SpMV request. Panics if shapes disagree — a malformed request is
    /// a client bug, not a runtime condition.
    pub fn spmv(tenant: usize, matrix: Arc<CsrMatrix>, v: Arc<DenseVector>) -> Self {
        assert_eq!(v.len(), matrix.cols(), "spmv operand length must equal matrix cols");
        Request { tenant, kernel: KernelKind::Spmv, matrix, operand: Operand::Dense(v) }
    }

    /// An SpMSpV variant-1 request.
    pub fn spmspv_v1(tenant: usize, matrix: Arc<CsrMatrix>, x: Arc<SparseVector>) -> Self {
        assert_eq!(x.len(), matrix.cols(), "spmspv operand length must equal matrix cols");
        Request { tenant, kernel: KernelKind::SpmspvV1, matrix, operand: Operand::Sparse(x) }
    }

    /// An SpMSpV variant-2 request.
    pub fn spmspv_v2(tenant: usize, matrix: Arc<CsrMatrix>, x: Arc<SparseVector>) -> Self {
        assert_eq!(x.len(), matrix.cols(), "spmspv operand length must equal matrix cols");
        Request { tenant, kernel: KernelKind::SpmspvV2, matrix, operand: Operand::Sparse(x) }
    }

    /// Rows of this request's output vector.
    pub fn rows(&self) -> usize {
        self.matrix.rows()
    }
}

/// How a request was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Served {
    /// Full cold path: layout computed, fabric pass simulated.
    Cold,
    /// Plan-cache hit: layout/shards reused, fabric pass simulated.
    PlanHit,
    /// Replay-cache hit: no simulation, the memoized output was returned
    /// (bit-identical to re-running, by the pinned determinism).
    ReplayHit,
}

/// One served request.
#[derive(Debug, Clone)]
pub struct Response {
    /// Tenant the request belonged to.
    pub tenant: usize,
    /// This job's output vector (demultiplexed from the pass when the job
    /// was batched).
    pub y: DenseVector,
    /// The fabric pass (or replayed pass) that produced `y`. Shared by
    /// every job of a batch: its stats and recovery report describe the
    /// whole pass, with this job's share delimited by `rows`.
    pub run: Arc<FabricRunOutput>,
    /// This job's row range within `run.y`.
    pub rows: (usize, usize),
    /// Which serving tier satisfied the request.
    pub served: Served,
    /// Jobs co-batched into the producing pass (1 = singleton).
    pub batch_size: usize,
    /// Host latency from wave dispatch to completion of the producing
    /// unit (informational; replays are near-zero).
    pub latency: Duration,
}
