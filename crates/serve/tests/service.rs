//! Differential tests: everything the service's caches and pools do must
//! be invisible in the results. Each test compares served responses
//! field-by-field (bitwise for `y`) against the naive cold one-shot path.

use hht_serve::{naive_run_stream, Request, Served, Service, ServiceConfig};
use hht_sparse::{generate, DenseVector, SparseVector};
use hht_system::config::SystemConfig;
use hht_system::fabric::FabricConfig;
use hht_system::runner::FabricRunOutput;
use std::sync::Arc;

fn small_cfg() -> SystemConfig {
    // The paper config with a smaller SRAM so tests stay quick; shapes in
    // these streams are tiny.
    SystemConfig::paper_default()
}

/// Every field that describes the simulated run must match. `y` bitwise.
fn assert_run_eq(label: &str, a: &FabricRunOutput, b: &FabricRunOutput) {
    assert_eq!(a.y.as_slice(), b.y.as_slice(), "{label}: y differs");
    assert_eq!(a.stats, b.stats, "{label}: stats differ");
    assert_eq!(a.tile_events, b.tile_events, "{label}: events differ");
    assert_eq!(a.sched, b.sched, "{label}: sched stats differ");
    assert_eq!(a.tile_sched, b.tile_sched, "{label}: tile sched stats differ");
    assert_eq!(a.dropped, b.dropped, "{label}: obs drops differ");
    assert_eq!(a.skip_spans, b.skip_spans, "{label}: skip spans differ");
    assert_eq!(a.recovery, b.recovery, "{label}: recovery reports differ");
}

fn mixed_stream() -> Vec<Request> {
    let m1 = Arc::new(generate::random_csr(48, 48, 0.8, 11));
    let m2 = Arc::new(generate::random_csr(64, 64, 0.9, 22));
    let m3 = Arc::new(generate::random_csr(96, 96, 0.85, 33));
    let v1: Arc<DenseVector> = Arc::new(generate::random_dense_vector(48, 1));
    let v2: Arc<DenseVector> = Arc::new(generate::random_dense_vector(64, 2));
    let x3: Arc<SparseVector> = Arc::new(generate::random_sparse_vector(96, 0.7, 3));
    vec![
        Request::spmv(0, Arc::clone(&m1), Arc::clone(&v1)),
        Request::spmv(1, Arc::clone(&m2), Arc::clone(&v2)),
        Request::spmspv_v1(2, Arc::clone(&m3), Arc::clone(&x3)),
        Request::spmspv_v2(0, Arc::clone(&m3), Arc::clone(&x3)),
        // Exact repeats — replay-tier traffic.
        Request::spmv(1, Arc::clone(&m1), Arc::clone(&v1)),
        Request::spmv(2, Arc::clone(&m2), Arc::clone(&v2)),
        // Same matrix, new operand — plan-tier traffic.
        Request::spmv(0, Arc::clone(&m2), Arc::new(generate::random_dense_vector(64, 4))),
        Request::spmspv_v1(1, m3, Arc::new(generate::random_sparse_vector(96, 0.6, 5))),
    ]
}

#[test]
fn served_y_is_bitwise_equal_to_naive_for_every_path() {
    let cfg = small_cfg();
    let fab = FabricConfig { tiles: 2, ..FabricConfig::single() };
    let requests = mixed_stream();
    let naive = naive_run_stream(&cfg, fab, &requests);
    // Batching ON: some requests are served from block-diagonal passes.
    let mut svc = Service::new(cfg, fab, ServiceConfig::default());
    let responses = svc.run_stream(&requests);
    assert_eq!(responses.len(), requests.len());
    for (i, (resp, (cold, _))) in responses.iter().zip(&naive).enumerate() {
        assert_eq!(resp.tenant, requests[i].tenant);
        assert_eq!(
            resp.y.as_slice(),
            cold.y.as_slice(),
            "request {i}: served y differs from cold one-shot y"
        );
    }
    let stats = svc.stats();
    assert_eq!(stats.requests, requests.len() as u64);
    // With batching on, the small SpMV repeats re-batch rather than
    // replay (batched passes are never memoized — a replay must be
    // bit-identical to a cold one-shot, which only a singleton pass is).
    assert_eq!(stats.replay_hits, 0, "{stats:?}");
    assert_eq!(stats.batches, 2, "{stats:?}");
    assert_eq!(stats.batched_jobs, 4, "{stats:?}");
    assert_eq!(stats.plan_hits, 1, "the v2 repeat shares the SpMSpV plan: {stats:?}");
    assert_eq!(stats.singleton_passes, 4, "{stats:?}");
}

#[test]
fn singleton_service_runs_are_fully_bit_identical_to_cold() {
    // Batching off: every pass is a singleton, so the *entire* run output
    // (stats, events, sched accounting, recovery) must match the cold
    // path — not just y. Tracing on so event streams participate.
    let mut cfg = small_cfg();
    cfg.trace = hht_system::config::TraceConfig::enabled();
    let fab = FabricConfig { tiles: 2, ..FabricConfig::single() };
    let requests = mixed_stream();
    let naive = naive_run_stream(&cfg, fab, &requests);
    let scfg = ServiceConfig { batching: false, ..ServiceConfig::default() };
    let mut svc = Service::new(cfg, fab, scfg);
    let responses = svc.run_stream(&requests);
    for (i, (resp, (cold, _))) in responses.iter().zip(&naive).enumerate() {
        assert_eq!(resp.batch_size, 1);
        assert_run_eq(&format!("request {i} ({:?})", resp.served), &resp.run, cold);
    }
    // The repeats were served without simulating...
    assert!(responses[4].served == Served::ReplayHit, "{:?}", responses[4].served);
    assert!(responses[5].served == Served::ReplayHit, "{:?}", responses[5].served);
    // ...and still carried the full bit-identical run output (asserted
    // above), which is the replay tier's contract.
}

#[test]
fn warm_pool_and_plan_cache_do_not_change_results_when_replay_is_off() {
    // Replay off forces re-simulation of repeats — through cached plans
    // and warm fabrics, which must be invisible.
    let cfg = small_cfg();
    let fab = FabricConfig { tiles: 2, ..FabricConfig::single() };
    let base = mixed_stream();
    // Stack three copies of the stream so pools and plan tiers are
    // exercised hard (distinct tenants keep waves multi-request).
    let requests: Vec<Request> = (0..3)
        .flat_map(|r| {
            base.iter().cloned().map(move |mut q| {
                q.tenant = (q.tenant + r) % 4;
                q
            })
        })
        .collect();
    let naive = naive_run_stream(&cfg, fab, &requests);
    let scfg = ServiceConfig { batching: false, replay: false, ..ServiceConfig::default() };
    let mut svc = Service::new(cfg, fab, scfg);
    let responses = svc.run_stream(&requests);
    for (i, (resp, (cold, _))) in responses.iter().zip(&naive).enumerate() {
        assert_run_eq(&format!("request {i}"), &resp.run, cold);
    }
    let stats = svc.stats();
    assert_eq!(stats.replay_hits, 0);
    assert!(stats.plan_hits > 0, "repeats must reuse plans: {stats:?}");
    assert!(stats.pool_reuses > 0, "repeat passes must reuse warm fabrics: {stats:?}");
    assert_eq!(stats.singleton_passes, requests.len() as u64);
}

#[test]
fn batched_jobs_demux_bitwise_and_are_counted() {
    let cfg = small_cfg();
    let fab = FabricConfig::single();
    // Four small distinct SpMV jobs from four tenants: one wave, one
    // batch.
    let requests: Vec<Request> = (0..4)
        .map(|t| {
            let m = Arc::new(generate::random_csr(24 + t, 24 + t, 0.8, 77 + t as u64));
            let v = Arc::new(generate::random_dense_vector(24 + t, 7 + t as u64));
            Request::spmv(t, m, v)
        })
        .collect();
    let naive = naive_run_stream(&cfg, fab, &requests);
    let mut svc = Service::new(cfg, fab, ServiceConfig::default());
    let responses = svc.run_stream(&requests);
    for (i, (resp, (cold, _))) in responses.iter().zip(&naive).enumerate() {
        assert_eq!(resp.batch_size, 4, "request {i} should ride the one batch");
        assert_eq!(
            resp.y.as_slice(),
            cold.y.as_slice(),
            "request {i}: demuxed y differs from singleton run"
        );
        let (r0, r1) = resp.rows;
        assert_eq!(resp.y.as_slice(), &resp.run.y.as_slice()[r0..r1]);
    }
    let stats = svc.stats();
    assert_eq!(stats.batches, 1);
    assert_eq!(stats.batched_jobs, 4);
    assert_eq!(stats.singleton_passes, 0);
}

#[test]
fn round_robin_admission_is_tenant_fair() {
    let cfg = small_cfg();
    let fab = FabricConfig::single();
    let m = Arc::new(generate::random_csr(24, 24, 0.8, 5));
    // Tenant 0 bursts five distinct jobs; tenant 1 sends one. Round-robin
    // admission must serve tenant 1 in the first wave.
    let mut requests: Vec<Request> = (0..5)
        .map(|k| Request::spmv(0, Arc::clone(&m), Arc::new(generate::random_dense_vector(24, k))))
        .collect();
    requests.push(Request::spmv(1, m, Arc::new(generate::random_dense_vector(24, 99))));
    let scfg = ServiceConfig { batching: false, ..ServiceConfig::default() };
    let mut svc = Service::new(cfg, fab, scfg);
    let responses = svc.run_stream(&requests);
    assert_eq!(responses.len(), 6);
    let stats = svc.stats();
    // Five waves: tenant 0 advances one per wave; tenant 1 rides wave 1.
    assert_eq!(stats.waves, 5, "{stats:?}");
    // Tenant 0's repeat matrix means plans hit from the second wave on.
    assert_eq!(stats.plan_misses, 1, "{stats:?}");
    assert_eq!(stats.plan_hits, 5, "{stats:?}");
}

#[test]
fn in_wave_duplicates_share_one_pass() {
    let cfg = small_cfg();
    let fab = FabricConfig::single();
    let m = Arc::new(generate::random_csr(32, 32, 0.8, 8));
    let v = Arc::new(generate::random_dense_vector(32, 9));
    // Three tenants submit the identical job in the same wave.
    let requests: Vec<Request> =
        (0..3).map(|t| Request::spmv(t, Arc::clone(&m), Arc::clone(&v))).collect();
    let scfg = ServiceConfig { batching: false, ..ServiceConfig::default() };
    let mut svc = Service::new(cfg, fab, scfg);
    let responses = svc.run_stream(&requests);
    let stats = svc.stats();
    assert_eq!(stats.singleton_passes, 1, "one leader simulates: {stats:?}");
    assert_eq!(stats.replay_hits, 2, "followers share the pass: {stats:?}");
    for w in responses.windows(2) {
        assert_eq!(w[0].y.as_slice(), w[1].y.as_slice());
        assert!(Arc::ptr_eq(&w[0].run, &w[1].run), "duplicates share the run output");
    }
}

#[test]
fn spmspv_variants_never_share_replay_entries() {
    let cfg = small_cfg();
    let fab = FabricConfig::single();
    let m = Arc::new(generate::random_csr(40, 40, 0.85, 13));
    let x = Arc::new(generate::random_sparse_vector(40, 0.6, 14));
    let requests = vec![
        Request::spmspv_v1(0, Arc::clone(&m), Arc::clone(&x)),
        Request::spmspv_v2(1, Arc::clone(&m), Arc::clone(&x)),
        Request::spmspv_v1(2, Arc::clone(&m), Arc::clone(&x)),
    ];
    let naive = naive_run_stream(&cfg, fab, &requests);
    let mut svc = Service::new(cfg, fab, ServiceConfig::default());
    let responses = svc.run_stream(&requests);
    for (i, (resp, (cold, _))) in responses.iter().zip(&naive).enumerate() {
        assert_run_eq(&format!("request {i}"), &resp.run, cold);
    }
    let stats = svc.stats();
    // v1 and v2 share one plan (family key) but not results.
    assert_eq!(stats.plan_misses, 1, "{stats:?}");
    assert_eq!(stats.plan_hits, 1, "{stats:?}");
    assert_eq!(stats.replay_hits, 1, "only the exact v1 repeat replays: {stats:?}");
    assert_eq!(stats.singleton_passes, 2, "{stats:?}");
}

#[test]
fn stats_are_deterministic_across_identical_services() {
    let cfg = small_cfg();
    let fab = FabricConfig { tiles: 2, ..FabricConfig::single() };
    let requests = mixed_stream();
    let run = |jobs: usize| {
        let scfg = ServiceConfig { jobs, ..ServiceConfig::default() };
        let mut svc = Service::new(cfg, fab, scfg);
        let responses = svc.run_stream(&requests);
        (svc.stats(), responses)
    };
    let (s1, r1) = run(1);
    let (s2, r2) = run(1);
    assert_eq!(s1, s2, "same stream, same service config, same counters");
    // A wider dispatch pool changes pool-lane layout (lanes are part of
    // the configuration), but every cache/batch/simulation counter is
    // scheduling-independent: lanes are indexed by unit, not by thread.
    let (s4, r4) = run(4);
    let core = |s: &hht_serve::ServeStats| {
        (
            s.requests,
            s.waves,
            s.replay_hits,
            s.plan_hits,
            s.plan_misses,
            s.batches,
            s.batched_jobs,
            s.singleton_passes,
            s.sim_cycles,
        )
    };
    assert_eq!(core(&s1), core(&s4), "counters must not depend on dispatch width");
    for ((a, b), c) in r1.iter().zip(&r2).zip(&r4) {
        assert_eq!(a.y.as_slice(), b.y.as_slice());
        assert_eq!(a.y.as_slice(), c.y.as_slice());
        assert_eq!(a.served, b.served);
        assert_eq!(a.served, c.served);
    }
}
