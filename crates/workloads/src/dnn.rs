//! DNN fully-connected layer workloads (Fig. 9).
//!
//! The paper "leveraged the quantized weights matrix of this layer from a
//! variety of networks". We do not have the authors' quantized weights, so
//! each entry is a synthetic stand-in with
//!
//! - the network's real final-FC dimensionality (1000-class ImageNet heads),
//! - a per-network sparsity in the range quantized/pruned deployments of
//!   that family typically show.
//!
//! Since the only HHT-relevant properties of a weight matrix are its shape
//! and sparsity (the gather stream depends on the *positions* of non-zeros,
//! which for FC weights are unstructured), the substitution preserves the
//! measured behaviour; the paper itself notes the DNN results "are similar
//! to the synthetic results at different sparsity and matrix sizes" (§5.4).

use hht_sparse::{generate, CsrMatrix};
use serde::{Deserialize, Serialize};

/// One fully-connected layer workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FcLayer {
    /// Network name as in Fig. 9.
    pub network: String,
    /// Input features of the FC layer.
    pub in_features: usize,
    /// Output features (classes).
    pub out_features: usize,
    /// Weight sparsity (fraction of zeros).
    pub sparsity: f64,
    /// Generator seed (fixed per network for reproducibility).
    pub seed: u64,
}

impl FcLayer {
    /// Materialize the weight matrix in CSR (shape `out x in`, so SpMV
    /// computes one inference of the layer).
    pub fn weights(&self) -> CsrMatrix {
        generate::random_csr(self.out_features, self.in_features, self.sparsity, self.seed)
    }
}

/// The Fig. 9 suite. Shapes are the networks' classifier layers
/// (1000-class heads); sizes are scaled to `SCALE`th of the full
/// dimensionality so a full sweep stays tractable in a cycle-level
/// simulator, preserving each network's in/out ratio and sparsity.
pub fn suite() -> Vec<FcLayer> {
    suite_scaled(4)
}

/// The suite with an explicit down-scale divisor (1 = full layer sizes).
pub fn suite_scaled(scale: usize) -> Vec<FcLayer> {
    assert!(scale >= 1);
    // (name, in_features, typical deployment sparsity)
    let nets: &[(&str, usize, f64)] = &[
        ("MobileNet", 1024, 0.70),
        ("MobileNetV2", 1280, 0.72),
        ("DenseNet", 1024, 0.60),
        ("ResNet", 2048, 0.75),
        ("ResNetV2", 2048, 0.78),
        ("VGG16", 4096, 0.85),
        ("VGG19", 4096, 0.88),
    ];
    nets.iter()
        .enumerate()
        .map(|(i, (name, in_f, sp))| FcLayer {
            network: name.to_string(),
            in_features: (in_f / scale).max(8),
            out_features: (1000 / scale).max(8),
            sparsity: *sp,
            seed: 0xD77 + i as u64,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hht_sparse::SparseFormat;

    #[test]
    fn suite_has_seven_networks() {
        let s = suite();
        assert_eq!(s.len(), 7);
        let names: Vec<&str> = s.iter().map(|l| l.network.as_str()).collect();
        assert!(names.contains(&"DenseNet"));
        assert!(names.contains(&"VGG19"));
    }

    #[test]
    fn weights_match_requested_sparsity() {
        for l in suite() {
            let m = l.weights();
            assert_eq!(m.rows(), l.out_features);
            assert_eq!(m.cols(), l.in_features);
            assert!(
                (m.sparsity() - l.sparsity).abs() < 0.02,
                "{}: sparsity {} vs {}",
                l.network,
                m.sparsity(),
                l.sparsity
            );
        }
    }

    #[test]
    fn weights_are_reproducible() {
        let a = suite()[0].weights();
        let b = suite()[0].weights();
        assert_eq!(a, b);
    }

    #[test]
    fn scaling_preserves_ratio() {
        let full = suite_scaled(1);
        let quarter = suite_scaled(4);
        assert_eq!(full[0].in_features, 1024);
        assert_eq!(quarter[0].in_features, 256);
        assert_eq!(quarter[0].out_features, 250);
    }

    #[test]
    fn densenet_is_least_sparse_vgg19_most() {
        // Fig. 9's ordering driver: DenseNet lowest speedup (densest),
        // VGG19 highest.
        let s = suite();
        let dense = s.iter().find(|l| l.network == "DenseNet").unwrap();
        let vgg = s.iter().find(|l| l.network == "VGG19").unwrap();
        for l in &s {
            assert!(l.sparsity >= dense.sparsity);
            assert!(l.sparsity <= vgg.sparsity);
        }
    }
}
