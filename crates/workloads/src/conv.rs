//! Sparse convolution workloads (the paper's conclusion: "a heterogeneous
//! architecture ... to accelerate sparse matrix-vector and convolution
//! computations").
//!
//! A conv layer with pruned weights lowers to SpMV via *im2col*: the
//! weight tensor `[out_ch, in_ch, k, k]` flattens to a sparse
//! `out_ch x (in_ch*k*k)` matrix, and each output position's receptive
//! field becomes a dense column vector. One SpMV per output position (or a
//! batched SpMM) — the HHT accelerates the per-position gather exactly as
//! for FC layers.

use hht_sparse::{generate, CsrMatrix, DenseVector};
use serde::{Deserialize, Serialize};

/// A pruned 2-D convolution layer specification.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConvLayer {
    /// Input channels.
    pub in_channels: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Square kernel size.
    pub kernel: usize,
    /// Weight sparsity (fraction of pruned weights).
    pub sparsity: f64,
    /// Generator seed.
    pub seed: u64,
}

impl ConvLayer {
    /// The im2col patch length (`in_ch * k * k`).
    pub fn patch_len(&self) -> usize {
        self.in_channels * self.kernel * self.kernel
    }

    /// The lowered sparse weight matrix, `out_ch x patch_len`.
    pub fn lowered_weights(&self) -> CsrMatrix {
        generate::random_csr(self.out_channels, self.patch_len(), self.sparsity, self.seed)
    }

    /// One input patch (im2col column) for a single output position,
    /// synthesized from activations in `[-1, 1]`.
    pub fn input_patch(&self, position_seed: u64) -> DenseVector {
        generate::random_dense_vector(self.patch_len(), self.seed ^ position_seed)
    }
}

/// Representative pruned conv layers from the paper's network families.
pub fn suite() -> Vec<(String, ConvLayer)> {
    vec![
        (
            "mobilenet_pw".into(),
            // MobileNet pointwise conv: 1x1, many channels.
            ConvLayer { in_channels: 256, out_channels: 256, kernel: 1, sparsity: 0.7, seed: 0xC1 },
        ),
        (
            "vgg_conv3x3".into(),
            ConvLayer { in_channels: 64, out_channels: 128, kernel: 3, sparsity: 0.8, seed: 0xC2 },
        ),
        (
            "resnet_conv3x3".into(),
            ConvLayer { in_channels: 64, out_channels: 64, kernel: 3, sparsity: 0.75, seed: 0xC3 },
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use hht_sparse::SparseFormat;

    #[test]
    fn lowering_shapes() {
        let l = ConvLayer { in_channels: 8, out_channels: 4, kernel: 3, sparsity: 0.5, seed: 1 };
        assert_eq!(l.patch_len(), 72);
        let w = l.lowered_weights();
        assert_eq!(w.rows(), 4);
        assert_eq!(w.cols(), 72);
        assert!((w.sparsity() - 0.5).abs() < 0.05);
        assert_eq!(l.input_patch(0).len(), 72);
    }

    #[test]
    fn pointwise_conv_is_plain_matmul() {
        let l = ConvLayer { in_channels: 16, out_channels: 8, kernel: 1, sparsity: 0.6, seed: 2 };
        assert_eq!(l.patch_len(), 16);
    }

    #[test]
    fn suite_layers_are_valid() {
        for (name, l) in suite() {
            let w = l.lowered_weights();
            assert!(w.nnz() > 0, "{name} has no weights");
            assert_eq!(w.cols(), l.patch_len());
        }
    }

    #[test]
    fn patches_differ_by_position() {
        let l = suite()[1].1;
        assert_ne!(l.input_patch(0), l.input_patch(1));
        assert_eq!(l.input_patch(3), l.input_patch(3));
    }
}
