//! SuiteSparse-profile matrices (§4's Texas A&M collection stand-ins).
//!
//! The paper evaluated matrices from the collection but omitted the
//! numbers for space, noting they are "inline with those for synthetic
//! workloads ... very high sparsity levels (greater than 90%)". These
//! generators produce the dominant structural classes of the collection at
//! ≥ 90 % sparsity so that claim can be checked.

use hht_sparse::{generate, CsrMatrix};
use serde::{Deserialize, Serialize};

/// Structural profile of a collection matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Profile {
    /// Narrow-band PDE discretization (e.g. thermal/structural meshes).
    Banded,
    /// Power-law graph adjacency (web/social/citation graphs).
    PowerLaw,
    /// Block-diagonal multi-body / circuit structure.
    BlockDiagonal,
    /// Unstructured uniform-random at high sparsity.
    UniformRandom,
}

/// A named collection-style workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuiteMatrix {
    /// Identifier (styled after collection names).
    pub name: String,
    /// Structural profile.
    pub profile: Profile,
    /// Dimension (square).
    pub n: usize,
    /// Generator seed.
    pub seed: u64,
}

impl SuiteMatrix {
    /// Materialize the matrix. All profiles land at ≥ 90 % sparsity.
    pub fn matrix(&self) -> CsrMatrix {
        match self.profile {
            // bandwidth 2 -> ≤ 5 nnz/row
            Profile::Banded => generate::banded_csr(self.n, 2, self.seed),
            Profile::PowerLaw => generate::power_law_csr(self.n, self.n as f64 * 0.02, self.seed),
            Profile::BlockDiagonal => generate::block_diagonal_csr(self.n, 4, self.seed),
            Profile::UniformRandom => generate::random_csr(self.n, self.n, 0.95, self.seed),
        }
    }
}

/// The default suite: one matrix per profile.
pub fn suite(n: usize) -> Vec<SuiteMatrix> {
    vec![
        SuiteMatrix { name: "mesh_band".into(), profile: Profile::Banded, n, seed: 0x51 },
        SuiteMatrix { name: "web_graph".into(), profile: Profile::PowerLaw, n, seed: 0x52 },
        SuiteMatrix {
            name: "circuit_blocks".into(),
            profile: Profile::BlockDiagonal,
            n: n.div_ceil(4) * 4, // block size must tile n
            seed: 0x53,
        },
        SuiteMatrix { name: "random_hi".into(), profile: Profile::UniformRandom, n, seed: 0x54 },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use hht_sparse::SparseFormat;

    #[test]
    fn all_profiles_are_high_sparsity() {
        for sm in suite(128) {
            let m = sm.matrix();
            assert!(m.sparsity() >= 0.9, "{}: sparsity {} < 0.9", sm.name, m.sparsity());
        }
    }

    #[test]
    fn banded_structure_is_banded() {
        let m = suite(64)[0].matrix();
        for (r, c, _) in m.triplets() {
            assert!(r.abs_diff(c) <= 2);
        }
    }

    #[test]
    fn block_diagonal_n_is_rounded_to_block() {
        let s = suite(126);
        let blocks = &s[2];
        assert_eq!(blocks.n % 4, 0);
        let _ = blocks.matrix(); // must not panic
    }

    #[test]
    fn matrices_are_reproducible() {
        assert_eq!(suite(64)[1].matrix(), suite(64)[1].matrix());
    }
}
