//! Workload generators for the evaluation.
//!
//! - [`dnn`] — fully-connected-layer weight matrices of the seven networks
//!   of Fig. 9 (synthetic stand-ins with the real layer dimensions and
//!   deployment-typical sparsities; see DESIGN.md for the substitution
//!   rationale).
//! - [`suite`] — SuiteSparse-profile matrices (§4 mentions the Texas A&M
//!   collection at > 90 % sparsity; the paper omits those numbers for
//!   space, we provide the same class of inputs).
//! - [`sweep`] — the synthetic sparsity-sweep inputs of Figs. 4-8.
//! - [`conv`] — pruned convolution layers lowered to SpMV via im2col (the
//!   paper's conclusion lists convolution among the accelerated kernels).

pub mod conv;
pub mod dnn;
pub mod suite;
pub mod sweep;
