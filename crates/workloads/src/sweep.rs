//! The synthetic sparsity-sweep inputs of Figs. 4-8.

use hht_sparse::{generate, CsrMatrix, DenseVector, SparseVector};
use serde::{Deserialize, Serialize};

/// One (matrix, dense vector) SpMV input at a given sparsity.
#[derive(Debug, Clone, PartialEq)]
pub struct SpmvInput {
    /// The sparse matrix.
    pub matrix: CsrMatrix,
    /// The dense vector.
    pub vector: DenseVector,
    /// Target sparsity.
    pub sparsity: f64,
}

/// One (matrix, sparse vector) SpMSpV input at a given shared sparsity.
#[derive(Debug, Clone, PartialEq)]
pub struct SpmspvInput {
    /// The sparse matrix.
    pub matrix: CsrMatrix,
    /// The sparse vector.
    pub vector: SparseVector,
    /// Target sparsity (shared by matrix and vector, as in §5.1).
    pub sparsity: f64,
}

/// Parameters of a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepSpec {
    /// Matrix dimension (paper: 512).
    pub n: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for SweepSpec {
    fn default() -> Self {
        SweepSpec { n: 512, seed: 0xF1C5 }
    }
}

impl SweepSpec {
    /// SpMV input at one sparsity level.
    pub fn spmv_input(&self, sparsity: f64) -> SpmvInput {
        let seed = self.seed ^ ((sparsity * 1e3) as u64);
        SpmvInput {
            matrix: generate::random_csr(self.n, self.n, sparsity, seed),
            vector: generate::random_dense_vector(self.n, seed ^ 0xAA),
            sparsity,
        }
    }

    /// SpMSpV input at one sparsity level.
    pub fn spmspv_input(&self, sparsity: f64) -> SpmspvInput {
        let seed = self.seed ^ 0x5000 ^ ((sparsity * 1e3) as u64);
        SpmspvInput {
            matrix: generate::random_csr(self.n, self.n, sparsity, seed),
            vector: generate::random_sparse_vector(self.n, sparsity, seed ^ 0xBB),
            sparsity,
        }
    }

    /// The SpMV inputs for a whole sparsity sweep, generated on up to
    /// `jobs` threads (each level is seeded independently, so results are
    /// identical for every `jobs` value and come back in `sparsities`
    /// order).
    pub fn spmv_inputs(&self, sparsities: &[f64], jobs: usize) -> Vec<SpmvInput> {
        hht_exec::parallel_map(jobs, sparsities.to_vec(), |_, s| self.spmv_input(s))
    }

    /// The SpMSpV inputs for a whole sparsity sweep; see [`Self::spmv_inputs`].
    pub fn spmspv_inputs(&self, sparsities: &[f64], jobs: usize) -> Vec<SpmspvInput> {
        hht_exec::parallel_map(jobs, sparsities.to_vec(), |_, s| self.spmspv_input(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hht_sparse::SparseFormat;

    #[test]
    fn inputs_hit_requested_sparsity() {
        let spec = SweepSpec { n: 128, seed: 1 };
        for s in [0.1, 0.5, 0.9] {
            let i = spec.spmv_input(s);
            assert!((i.matrix.sparsity() - s).abs() < 0.02);
            let j = spec.spmspv_input(s);
            assert!((j.matrix.sparsity() - s).abs() < 0.02);
            assert!((j.vector.sparsity() - s).abs() < 0.02);
        }
    }

    #[test]
    fn default_spec_is_paper_size() {
        assert_eq!(SweepSpec::default().n, 512);
    }

    #[test]
    fn inputs_are_reproducible_and_distinct_across_sparsity() {
        let spec = SweepSpec { n: 64, seed: 2 };
        assert_eq!(spec.spmv_input(0.5), spec.spmv_input(0.5));
        assert_ne!(spec.spmv_input(0.5).matrix, spec.spmv_input(0.6).matrix);
    }

    #[test]
    fn parallel_inputs_match_serial() {
        let spec = SweepSpec { n: 64, seed: 3 };
        let levels = [0.1, 0.3, 0.5, 0.7, 0.9];
        assert_eq!(spec.spmv_inputs(&levels, 4), spec.spmv_inputs(&levels, 1));
        assert_eq!(spec.spmspv_inputs(&levels, 4), spec.spmspv_inputs(&levels, 1));
    }
}
