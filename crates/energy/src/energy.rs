//! Energy derivation (§5.5 anchor: ≈ 19 % average energy savings for SpMV
//! across 10-90 % sparsity).
//!
//! The paper's argument: core + HHT draws *more power* (314 µW vs 223 µW)
//! but finishes in *fewer cycles*, so the energy — power × time — drops.
//! Here the cycle counts come from the cycle-level simulator, so the
//! savings number is derived end-to-end rather than assumed.

use crate::inventory::{hht_inventory, ibex_inventory};
use crate::node::{ClockSpeed, ProcessNode};
use crate::power::power_watts;
use serde::{Deserialize, Serialize};

/// Energy of a run: `P × cycles / f`.
pub fn energy_joules(power_w: f64, cycles: u64, clock: ClockSpeed) -> f64 {
    power_w * cycles as f64 / clock.hz()
}

/// Baseline-vs-HHT energy comparison for one workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyComparison {
    /// Baseline (core-only) energy, joules.
    pub baseline_j: f64,
    /// Core + HHT energy, joules.
    pub hht_j: f64,
    /// Baseline power, watts.
    pub baseline_power_w: f64,
    /// Core + HHT power, watts.
    pub hht_power_w: f64,
}

impl EnergyComparison {
    /// Fractional energy savings (positive = HHT saves energy).
    pub fn savings(&self) -> f64 {
        1.0 - self.hht_j / self.baseline_j
    }
}

/// Compare energies given the two measured cycle counts.
pub fn energy_savings(
    baseline_cycles: u64,
    hht_cycles: u64,
    node: ProcessNode,
    clock: ClockSpeed,
) -> EnergyComparison {
    let p_core = power_watts(&ibex_inventory(), node, clock).total_w();
    let p_sys = power_watts(&ibex_inventory().plus(&hht_inventory()), node, clock).total_w();
    EnergyComparison {
        baseline_j: energy_joules(p_core, baseline_cycles, clock),
        hht_j: energy_joules(p_sys, hht_cycles, clock),
        baseline_power_w: p_core,
        hht_power_w: p_sys,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_is_power_times_time() {
        let e = energy_joules(100e-6, 50_000_000, ClockSpeed::MHz50);
        assert!((e - 100e-6).abs() < 1e-12); // 1 second at 100 µW
    }

    /// With the paper's ≈1.73× SpMV speedup, savings land near the
    /// reported 19 %.
    #[test]
    fn savings_at_paper_speedup() {
        let c = energy_savings(173, 100, ProcessNode::N16, ClockSpeed::MHz50);
        let s = c.savings();
        assert!((0.15..0.25).contains(&s), "savings = {s}");
    }

    #[test]
    fn no_speedup_means_negative_savings() {
        let c = energy_savings(100, 100, ProcessNode::N16, ClockSpeed::MHz50);
        assert!(c.savings() < 0.0, "more power at the same cycles must cost energy");
    }

    #[test]
    fn breakeven_speedup_is_power_ratio() {
        let c = energy_savings(1000, 1000, ProcessNode::N16, ClockSpeed::MHz50);
        let ratio = c.hht_power_w / c.baseline_power_w;
        // savings == 0 exactly when speedup == power ratio.
        let c2 = energy_savings((1000.0 * ratio) as u64, 1000, ProcessNode::N16, ClockSpeed::MHz50);
        assert!(c2.savings().abs() < 0.01);
    }
}
