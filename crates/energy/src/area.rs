//! Silicon area estimates (§5.5 anchor: HHT ≈ 38.9 % of an Ibex core at
//! 16 nm).

use crate::inventory::{hht_inventory, ibex_inventory, GateInventory};
use crate::node::ProcessNode;

/// Area of a block at a node, µm².
pub fn area_um2(inv: &GateInventory, node: ProcessNode) -> f64 {
    inv.total_ge() * node.area_per_ge_um2()
}

/// HHT area as a fraction of the Ibex-class core. Node-independent under
/// a uniform GE→area mapping — the paper reports the 16 nm value.
pub fn hht_to_ibex_area_ratio() -> f64 {
    hht_inventory().total_ge() / ibex_inventory().total_ge()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The §5.5 anchor: "Our HHT is approximately 38.9% the size of an
    /// Ibex core."
    #[test]
    fn ratio_matches_paper() {
        let r = hht_to_ibex_area_ratio();
        assert!((0.385..=0.393).contains(&r), "area ratio = {r}");
    }

    #[test]
    fn absolute_areas_scale_with_node() {
        let core = ibex_inventory();
        let a28 = area_um2(&core, ProcessNode::N28);
        let a16 = area_um2(&core, ProcessNode::N16);
        let a7 = area_um2(&core, ProcessNode::N7);
        assert!(a28 > a16 && a16 > a7);
        // 16nm Ibex-class core lands in the published few-thousand-µm²
        // class (20.5 kGE x 0.2 µm²).
        assert!((3_000.0..6_000.0).contains(&a16), "16nm area = {a16}");
    }
}
