//! Process-node and clock coefficients.
//!
//! The three feature sizes and clock speeds §5.5 synthesized. Coefficient
//! values are representative of published standard-cell characteristics
//! for each node class, with the 16 nm dynamic-energy and leakage values
//! calibrated so the Ibex-class core lands on the paper's 223 µW at
//! 16 nm / 50 MHz (see `power.rs` tests).

use serde::{Deserialize, Serialize};

/// Feature size of the synthesis run (§5.5: ARM libraries).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProcessNode {
    /// 28 nm planar.
    N28,
    /// 16 nm FinFET (the node of the paper's reported numbers).
    N16,
    /// 7 nm FinFET.
    N7,
}

impl ProcessNode {
    /// All nodes the paper synthesized.
    pub const ALL: [ProcessNode; 3] = [ProcessNode::N28, ProcessNode::N16, ProcessNode::N7];

    /// Area of one NAND2-equivalent gate, µm².
    pub fn area_per_ge_um2(self) -> f64 {
        match self {
            ProcessNode::N28 => 0.49,
            ProcessNode::N16 => 0.20,
            ProcessNode::N7 => 0.065,
        }
    }

    /// Dynamic switching energy per gate-equivalent per clock, joules
    /// (at nominal voltage, before the activity factor).
    pub fn dyn_energy_per_ge_j(self) -> f64 {
        match self {
            ProcessNode::N28 => 1.3e-15,
            ProcessNode::N16 => 0.6e-15,
            ProcessNode::N7 => 0.26e-15,
        }
    }

    /// Leakage power per gate-equivalent, watts.
    pub fn leakage_per_ge_w(self) -> f64 {
        match self {
            ProcessNode::N28 => 0.7e-9,
            ProcessNode::N16 => 1.0e-9,
            ProcessNode::N7 => 1.5e-9,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            ProcessNode::N28 => "28nm",
            ProcessNode::N16 => "16nm",
            ProcessNode::N7 => "7nm",
        }
    }
}

/// Synthesis clock (§5.5: 10, 50 and 100 MHz).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ClockSpeed {
    /// 10 MHz.
    MHz10,
    /// 50 MHz (the clock of the paper's reported numbers).
    MHz50,
    /// 100 MHz.
    MHz100,
}

impl ClockSpeed {
    /// All clocks the paper synthesized.
    pub const ALL: [ClockSpeed; 3] = [ClockSpeed::MHz10, ClockSpeed::MHz50, ClockSpeed::MHz100];

    /// Frequency in Hz.
    pub fn hz(self) -> f64 {
        match self {
            ClockSpeed::MHz10 => 10e6,
            ClockSpeed::MHz50 => 50e6,
            ClockSpeed::MHz100 => 100e6,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            ClockSpeed::MHz10 => "10MHz",
            ClockSpeed::MHz50 => "50MHz",
            ClockSpeed::MHz100 => "100MHz",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_shrinks_with_node() {
        assert!(ProcessNode::N28.area_per_ge_um2() > ProcessNode::N16.area_per_ge_um2());
        assert!(ProcessNode::N16.area_per_ge_um2() > ProcessNode::N7.area_per_ge_um2());
    }

    #[test]
    fn dynamic_energy_shrinks_leakage_grows() {
        assert!(ProcessNode::N28.dyn_energy_per_ge_j() > ProcessNode::N7.dyn_energy_per_ge_j());
        assert!(ProcessNode::N28.leakage_per_ge_w() < ProcessNode::N7.leakage_per_ge_w());
    }

    #[test]
    fn clock_values() {
        assert_eq!(ClockSpeed::MHz50.hz(), 50e6);
        assert_eq!(ClockSpeed::ALL.len(), 3);
        assert_eq!(ProcessNode::ALL.len(), 3);
    }
}
