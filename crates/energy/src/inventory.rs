//! Component-level gate inventories.

use serde::{Deserialize, Serialize};

/// Gate-equivalents a flip-flop occupies relative to a NAND2.
pub const GE_PER_FLOP: f64 = 4.5;

/// A hardware block's gate inventory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GateInventory {
    /// Combinational logic, NAND2-equivalents.
    pub combinational_ge: f64,
    /// Flip-flops (state bits implemented as registers; buffers of this
    /// size are flop-based in an ASIC, per §5.5's area accounting).
    pub flops: f64,
    /// Calibrated switching-activity factor for dynamic power.
    pub activity: f64,
}

impl GateInventory {
    /// Total NAND2-equivalents.
    pub fn total_ge(&self) -> f64 {
        self.combinational_ge + self.flops * GE_PER_FLOP
    }

    /// Merge two blocks (e.g. core + HHT as one chip); activity is the
    /// GE-weighted mean.
    pub fn plus(&self, other: &GateInventory) -> GateInventory {
        let a = self.total_ge();
        let b = other.total_ge();
        GateInventory {
            combinational_ge: self.combinational_ge + other.combinational_ge,
            flops: self.flops + other.flops,
            activity: (self.activity * a + other.activity * b) / (a + b),
        }
    }
}

/// An Ibex-class RV32IMC core ("small" parameterization): ≈ 12 kGE of
/// combinational logic (ALU, multiplier, decoder, LSU, CSRs) plus ≈ 1.9 k
/// state bits (31×32 register file, pipeline and CSR state). The total of
/// ≈ 20.5 kGE matches the publicly reported Ibex small-config area class.
pub fn ibex_inventory() -> GateInventory {
    GateInventory { combinational_ge: 12_000.0, flops: 1_900.0, activity: 0.33 }
}

/// The HHT (§5.5's itemization): memory-mapped registers (12 × 32 bits),
/// internal state registers, five pipeline-stage registers, two
/// memory-side buffers of 8 × 32 bits, one CPU-side buffer of 8 × 32 bits,
/// plus the control unit, address generators and comparators as
/// combinational logic.
pub fn hht_inventory() -> GateInventory {
    let mmr_flops = 12.0 * 32.0; // 384
    let internal_state = 64.0;
    let pipeline_regs = 5.0 * 48.0; // 240
    let mem_side_buffers = 2.0 * 8.0 * 32.0; // 512
    let cpu_side_buffer = 8.0 * 32.0; // 256
    GateInventory {
        combinational_ge: 1_442.0,
        flops: mmr_flops + internal_state + pipeline_regs + mem_side_buffers + cpu_side_buffer,
        activity: 0.342,
    }
}

/// The §7 *programmable* HHT: a minimal scalar helper core ("even simpler
/// than traditional 32-bit integer RISCV ... very few integer
/// instructions, very few integer registers" — modeled as an RV32E-class
/// 16-register machine without M/F/V) plus the same FE storage (MMRs and
/// buffers) as the ASIC HHT.
pub fn programmable_hht_inventory() -> GateInventory {
    let helper_comb = 3_500.0; // decoder + ALU + LSU of a minimal core
    let helper_flops = 16.0 * 32.0 + 88.0; // 16-reg file + pipeline/state
    let fe_storage = 384.0 + 512.0 + 256.0; // MMRs + mem-side + CPU-side buffers
    let control_comb = 300.0;
    GateInventory {
        combinational_ge: helper_comb + control_comb,
        flops: helper_flops + fe_storage,
        activity: 0.33,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ibex_total_in_published_class() {
        let ge = ibex_inventory().total_ge();
        assert!((18_000.0..24_000.0).contains(&ge), "Ibex GE = {ge}");
    }

    #[test]
    fn hht_flop_itemization_matches_section_5_5() {
        let h = hht_inventory();
        assert_eq!(h.flops, 384.0 + 64.0 + 240.0 + 512.0 + 256.0);
    }

    /// §7: the programmable HHT must be bigger than the ASIC HHT but
    /// still well under a full Ibex-class core.
    #[test]
    fn programmable_sits_between_asic_and_core() {
        let asic = hht_inventory().total_ge();
        let prog = programmable_hht_inventory().total_ge();
        let core = ibex_inventory().total_ge();
        assert!(asic < prog, "{asic} !< {prog}");
        assert!(prog < core, "{prog} !< {core}");
    }

    #[test]
    fn plus_merges_ge_weighted() {
        let a = GateInventory { combinational_ge: 100.0, flops: 0.0, activity: 0.5 };
        let b = GateInventory { combinational_ge: 100.0, flops: 0.0, activity: 0.1 };
        let m = a.plus(&b);
        assert_eq!(m.total_ge(), 200.0);
        assert!((m.activity - 0.3).abs() < 1e-12);
    }
}
