//! Analytical area / power / energy model — the substitute for the paper's
//! Synopsys Design Compiler + PrimeTime flow (§5.5).
//!
//! The paper synthesized System Verilog of the HHT and the Ibex RV32 core
//! at three feature sizes (28/16/7 nm, ARM libraries) and three clocks
//! (10/50/100 MHz), and reports three anchors at 16 nm / 50 MHz:
//!
//! 1. HHT area ≈ **38.9 %** of an Ibex core;
//! 2. **223 µW** for the core alone vs **314 µW** core + HHT;
//! 3. ≈ **19 %** average energy savings for SpMV across 10-90 % sparsity.
//!
//! We cannot run Synopsys, so this crate rebuilds the same derivation from
//! a component-level gate inventory (§5.5 lists the HHT's area as "the sum
//! of the logic gates of the control unit and storage for pipeline stages,
//! two HHT memory side buffers of size 8, memory-mapped registers, internal
//! state registers and one CPU side buffer") with per-node coefficients
//! calibrated to anchors (1) and (2). Anchor (3) is then *derived*, not
//! assumed: the energy experiment multiplies these powers by cycle counts
//! measured by the cycle-level simulator.

pub mod area;
pub mod energy;
pub mod inventory;
pub mod node;
pub mod power;

pub use area::{area_um2, hht_to_ibex_area_ratio};
pub use energy::{energy_joules, energy_savings, EnergyComparison};
pub use inventory::{hht_inventory, ibex_inventory, programmable_hht_inventory, GateInventory};
pub use node::{ClockSpeed, ProcessNode};
pub use power::{power_watts, PowerBreakdown};
