//! Power estimates (§5.5 anchors: 223 µW core-only, 314 µW core + HHT at
//! 16 nm / 50 MHz).

use crate::inventory::GateInventory;
use crate::node::{ClockSpeed, ProcessNode};
use serde::{Deserialize, Serialize};

/// Dynamic + leakage breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerBreakdown {
    /// Switching power, watts.
    pub dynamic_w: f64,
    /// Leakage power, watts.
    pub leakage_w: f64,
}

impl PowerBreakdown {
    /// Total power, watts.
    pub fn total_w(&self) -> f64 {
        self.dynamic_w + self.leakage_w
    }

    /// Total power, microwatts (the unit §5.5 reports).
    pub fn total_uw(&self) -> f64 {
        self.total_w() * 1e6
    }
}

/// Estimate a block's power at a node and clock:
/// `P_dyn = GE × activity × E_sw × f`, `P_leak = GE × leak`.
pub fn power_watts(inv: &GateInventory, node: ProcessNode, clock: ClockSpeed) -> PowerBreakdown {
    let ge = inv.total_ge();
    PowerBreakdown {
        dynamic_w: ge * inv.activity * node.dyn_energy_per_ge_j() * clock.hz(),
        leakage_w: ge * node.leakage_per_ge_w(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inventory::{hht_inventory, ibex_inventory};

    /// §5.5: "the RISCV core alone requires 223 µW" (16 nm, 50 MHz).
    #[test]
    fn core_power_matches_paper_anchor() {
        let p = power_watts(&ibex_inventory(), ProcessNode::N16, ClockSpeed::MHz50);
        let uw = p.total_uw();
        assert!((212.0..=234.0).contains(&uw), "core power = {uw} µW (paper: 223)");
    }

    /// §5.5: "RISCV core along with HHT requires 314 µW".
    #[test]
    fn system_power_matches_paper_anchor() {
        let sys = ibex_inventory().plus(&hht_inventory());
        let p = power_watts(&sys, ProcessNode::N16, ClockSpeed::MHz50);
        let uw = p.total_uw();
        assert!((298.0..=330.0).contains(&uw), "system power = {uw} µW (paper: 314)");
    }

    #[test]
    fn power_scales_with_clock() {
        let core = ibex_inventory();
        let p10 = power_watts(&core, ProcessNode::N16, ClockSpeed::MHz10);
        let p100 = power_watts(&core, ProcessNode::N16, ClockSpeed::MHz100);
        assert!(p100.dynamic_w > 9.0 * p10.dynamic_w);
        assert_eq!(p100.leakage_w, p10.leakage_w);
    }

    #[test]
    fn seven_nm_is_lower_dynamic_power() {
        let core = ibex_inventory();
        let p16 = power_watts(&core, ProcessNode::N16, ClockSpeed::MHz50);
        let p7 = power_watts(&core, ProcessNode::N7, ClockSpeed::MHz50);
        assert!(p7.dynamic_w < p16.dynamic_w);
    }
}
