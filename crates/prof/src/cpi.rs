//! Top-down CPI stack: every simulated cycle in exactly one bucket.
//!
//! The hierarchy (paper §4 counters, re-cut Intel-top-down style):
//!
//! ```text
//! cycles
//! ├── issue              core advanced architectural state
//! ├── branch_refill      taken-branch fetch bubbles
//! ├── vector_busy        multi-cycle vector op occupancy
//! ├── memory wait
//! │   ├── mem_load_latency    word/burst access latency (flat port cost)
//! │   ├── mem_row_hit         DRAM open-row response latency
//! │   ├── mem_row_miss        DRAM row precharge+activate latency
//! │   ├── mem_mlp_stall       refusals at the in-flight window ceiling
//! │   ├── mem_port_refusal    lost arbitration, same-tile holder
//! │   └── mem_cross_tile      lost arbitration, bank held by another tile
//! ├── HHT wait
//! │   ├── hht_window_empty    stream window had no element ready
//! │   └── hht_header_drain    chunk header not yet visible
//! └── fault_recovery     retry back-off + failed-attempt cycles
//! ```
//!
//! `issue` is the *remainder* after all attributed stalls, computed with
//! checked arithmetic: a counter bug that over-attributes stalls surfaces
//! as an [`Err`] here instead of a quietly negative bucket. The exact-sum
//! invariant `total() == cycles` therefore holds by construction, and the
//! differential property tests in `tests/profiling.rs` pin it across
//! kernels, scheduler modes, and fault injection.

use hht_system::fabric::FabricStats;
use hht_system::system::SystemStats;
use serde::{Deserialize, Serialize};

/// One run's (or one tile's) cycle attribution. All fields are cycle
/// counts; [`CpiStack::total`] returns their sum, which equals `cycles`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CpiStack {
    /// Total cycles attributed (the tile's own completion cycle).
    pub cycles: u64,
    /// Cycles the core advanced architectural state (issued work).
    pub issue: u64,
    /// Taken-branch fetch bubbles.
    pub branch_refill: u64,
    /// Cycles stalled behind a still-busy vector unit.
    pub vector_busy: u64,
    /// Memory access latency at the flat port cost (word / burst cycles
    /// beyond the first, excluding DRAM row extras).
    pub mem_load_latency: u64,
    /// Extra response cycles waiting on DRAM open-row hits (zero on the
    /// flat SRAM-class backend).
    pub mem_row_hit: u64,
    /// Extra response cycles waiting on DRAM row misses
    /// (precharge + activate; zero on the flat backend).
    pub mem_row_miss: u64,
    /// Refusal cycles at the per-tile in-flight window ceiling (the MLP
    /// limit; zero on the flat backend).
    pub mem_mlp_stall: u64,
    /// Lost port arbitration where the holder was this tile's own HHT
    /// (includes bandwidth-budget refusals, which hold no bank).
    pub mem_port_refusal: u64,
    /// Lost bank arbitration where the holder was *another* tile.
    pub mem_cross_tile: u64,
    /// CPU load on a stream window that had no element ready.
    pub hht_window_empty: u64,
    /// CPU wait for a chunk header the HHT had not yet produced.
    pub hht_header_drain: u64,
    /// Fault handling: HHT retry back-off plus the cycles burned by a
    /// failed accelerated attempt before software fallback.
    pub fault_recovery: u64,
}

impl CpiStack {
    /// Build the stack from one run's counters.
    ///
    /// Errors when the counters cannot be attributed consistently — stalls
    /// summing past `cycles`, cross-tile conflicts exceeding total
    /// arbitration losses, or a non-zero CPU-side `output_full` bucket
    /// (that cause lives on the HHT side). Any of these is a simulator
    /// accounting bug, not a property of the workload.
    pub fn from_stats(s: &SystemStats) -> Result<CpiStack, String> {
        let st = &s.core.stalls;
        if st.output_full != 0 {
            return Err(format!(
                "core-side stall histogram has output_full = {} (HHT-side cause)",
                st.output_full
            ));
        }
        let mem_cross_tile = s.sram.cpu_cross_tile_conflicts;
        // DRAM re-cuts of the coarse counters. The core attributes every
        // granted access's full wait (flat port cost + row extras) to
        // `load_latency` and every refusal cycle (bank busy, window full
        // or budget spent) to `arbitration_loss`; the memory side records
        // the exact row extras and window-stall cycles per tile, so the
        // fine buckets are checked subtractions from the coarse ones. All
        // four re-cut counters are zero on the flat backend, collapsing
        // the stack to its pre-DRAM shape.
        let mem_row_hit = s.sram.cpu_row_hit_extra;
        let mem_row_miss = s.sram.cpu_row_miss_extra;
        let mem_mlp_stall = s.sram.cpu_window_stalls;
        let row_extra = mem_row_hit + mem_row_miss;
        let mem_load_latency = st.load_latency.checked_sub(row_extra).ok_or_else(|| {
            format!("row extras ({row_extra}) exceed load latency ({})", st.load_latency)
        })?;
        let refused = mem_cross_tile + mem_mlp_stall;
        let mem_port_refusal = st.arbitration_loss.checked_sub(refused).ok_or_else(|| {
            format!(
                "cross-tile + window refusals ({refused}) exceed arbitration losses ({})",
                st.arbitration_loss
            )
        })?;
        let attributed = st.total() + s.faults.failed_cycles;
        let issue = s.cycles.checked_sub(attributed).ok_or_else(|| {
            format!("attributed stalls ({attributed}) exceed total cycles ({})", s.cycles)
        })?;
        Ok(CpiStack {
            cycles: s.cycles,
            issue,
            branch_refill: st.branch_refill,
            vector_busy: st.vector_busy,
            mem_load_latency,
            mem_row_hit,
            mem_row_miss,
            mem_mlp_stall,
            mem_port_refusal,
            mem_cross_tile,
            hht_window_empty: st.hht_window_empty,
            hht_header_drain: st.hht_header_wait,
            fault_recovery: st.hht_retry_backoff + s.faults.failed_cycles,
        })
    }

    /// Sum of every bucket — equals `cycles` for any stack built by
    /// [`CpiStack::from_stats`] (the exact-sum invariant).
    pub fn total(&self) -> u64 {
        // Exhaustive destructuring: a new bucket that is not added to the
        // sum breaks this at compile time.
        let CpiStack {
            cycles: _,
            issue,
            branch_refill,
            vector_busy,
            mem_load_latency,
            mem_row_hit,
            mem_row_miss,
            mem_mlp_stall,
            mem_port_refusal,
            mem_cross_tile,
            hht_window_empty,
            hht_header_drain,
            fault_recovery,
        } = *self;
        issue
            + branch_refill
            + vector_busy
            + mem_load_latency
            + mem_row_hit
            + mem_row_miss
            + mem_mlp_stall
            + mem_port_refusal
            + mem_cross_tile
            + hht_window_empty
            + hht_header_drain
            + fault_recovery
    }

    /// Cycles in the memory-wait super-bucket.
    pub fn mem_wait(&self) -> u64 {
        self.mem_load_latency
            + self.mem_row_hit
            + self.mem_row_miss
            + self.mem_mlp_stall
            + self.mem_port_refusal
            + self.mem_cross_tile
    }

    /// Cycles in the memory-latency sub-group (response latency the tile
    /// actually waited out: flat port cost plus DRAM row extras).
    pub fn mem_latency(&self) -> u64 {
        self.mem_load_latency + self.mem_row_hit + self.mem_row_miss
    }

    /// Cycles in the HHT-wait super-bucket.
    pub fn hht_wait(&self) -> u64 {
        self.hht_window_empty + self.hht_header_drain
    }

    /// `bucket / cycles`, 0 for an empty run.
    pub fn frac(&self, bucket: u64) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            bucket as f64 / self.cycles as f64
        }
    }

    /// `(label, cycles)` pairs in hierarchy display order.
    pub fn entries(&self) -> [(&'static str, u64); 12] {
        [
            ("issue", self.issue),
            ("branch_refill", self.branch_refill),
            ("vector_busy", self.vector_busy),
            ("mem.load_latency", self.mem_load_latency),
            ("mem.row_hit", self.mem_row_hit),
            ("mem.row_miss", self.mem_row_miss),
            ("mem.mlp_stall", self.mem_mlp_stall),
            ("mem.port_refusal", self.mem_port_refusal),
            ("mem.cross_tile", self.mem_cross_tile),
            ("hht.window_empty", self.hht_window_empty),
            ("hht.header_drain", self.hht_header_drain),
            ("fault_recovery", self.fault_recovery),
        ]
    }

    /// Fold another stack into this one (bucket-wise sum).
    pub fn add(&mut self, other: &CpiStack) {
        let CpiStack {
            cycles,
            issue,
            branch_refill,
            vector_busy,
            mem_load_latency,
            mem_row_hit,
            mem_row_miss,
            mem_mlp_stall,
            mem_port_refusal,
            mem_cross_tile,
            hht_window_empty,
            hht_header_drain,
            fault_recovery,
        } = *other;
        self.cycles += cycles;
        self.issue += issue;
        self.branch_refill += branch_refill;
        self.vector_busy += vector_busy;
        self.mem_load_latency += mem_load_latency;
        self.mem_row_hit += mem_row_hit;
        self.mem_row_miss += mem_row_miss;
        self.mem_mlp_stall += mem_mlp_stall;
        self.mem_port_refusal += mem_port_refusal;
        self.mem_cross_tile += mem_cross_tile;
        self.hht_window_empty += hht_window_empty;
        self.hht_header_drain += hht_header_drain;
        self.fault_recovery += fault_recovery;
    }

    /// Render as an indented text tree with percentages.
    pub fn render(&self, label: &str) -> String {
        let pct = |v: u64| 100.0 * self.frac(v);
        let mut s = format!("CPI stack [{label}] — {} cycles\n", self.cycles);
        s += &format!("  issue              {:>12}  {:5.1}%\n", self.issue, pct(self.issue));
        s += &format!(
            "  branch_refill      {:>12}  {:5.1}%\n",
            self.branch_refill,
            pct(self.branch_refill)
        );
        s += &format!(
            "  vector_busy        {:>12}  {:5.1}%\n",
            self.vector_busy,
            pct(self.vector_busy)
        );
        s += &format!(
            "  memory wait        {:>12}  {:5.1}%\n",
            self.mem_wait(),
            pct(self.mem_wait())
        );
        s += &format!(
            "    load_latency     {:>12}  {:5.1}%\n",
            self.mem_load_latency,
            pct(self.mem_load_latency)
        );
        s += &format!(
            "    row_hit          {:>12}  {:5.1}%\n",
            self.mem_row_hit,
            pct(self.mem_row_hit)
        );
        s += &format!(
            "    row_miss         {:>12}  {:5.1}%\n",
            self.mem_row_miss,
            pct(self.mem_row_miss)
        );
        s += &format!(
            "    mlp_stall        {:>12}  {:5.1}%\n",
            self.mem_mlp_stall,
            pct(self.mem_mlp_stall)
        );
        s += &format!(
            "    port_refusal     {:>12}  {:5.1}%\n",
            self.mem_port_refusal,
            pct(self.mem_port_refusal)
        );
        s += &format!(
            "    cross_tile       {:>12}  {:5.1}%\n",
            self.mem_cross_tile,
            pct(self.mem_cross_tile)
        );
        s += &format!(
            "  HHT wait           {:>12}  {:5.1}%\n",
            self.hht_wait(),
            pct(self.hht_wait())
        );
        s += &format!(
            "    window_empty     {:>12}  {:5.1}%\n",
            self.hht_window_empty,
            pct(self.hht_window_empty)
        );
        s += &format!(
            "    header_drain     {:>12}  {:5.1}%\n",
            self.hht_header_drain,
            pct(self.hht_header_drain)
        );
        s += &format!(
            "  fault_recovery     {:>12}  {:5.1}%\n",
            self.fault_recovery,
            pct(self.fault_recovery)
        );
        s
    }
}

/// The fabric-wide view: one stack per tile, the merged stack over total
/// tile-time, and the wall-normalized remainder.
#[derive(Debug, Clone, PartialEq)]
pub struct FabricCpi {
    /// One stack per tile (`per_tile[t].cycles` is tile `t`'s own
    /// completion cycle).
    pub per_tile: Vec<CpiStack>,
    /// Bucket-wise sum over tiles: attribution over *total tile-time*.
    pub merged: CpiStack,
    /// Wall cycles (last tile's completion).
    pub wall_cycles: u64,
    /// Tile-slots idle after their tile halted while the slowest tile kept
    /// running: `wall_cycles * tiles - merged.cycles`. The load-imbalance
    /// bucket of the wall-normalized view.
    pub idle_after_halt: u64,
}

impl FabricCpi {
    /// Build the per-tile, merged, and wall-normalized views from one
    /// fabric run. The wall-normalized exact sum
    /// `merged.total() + idle_after_halt == wall_cycles * tiles` holds for
    /// every `Ok` result.
    pub fn from_fabric(f: &FabricStats) -> Result<FabricCpi, String> {
        let per_tile =
            f.tiles.iter().map(CpiStack::from_stats).collect::<Result<Vec<_>, String>>()?;
        let mut merged = CpiStack::default();
        for t in &per_tile {
            merged.add(t);
        }
        let slots = f.cycles * f.tiles.len() as u64;
        let idle_after_halt = slots
            .checked_sub(merged.cycles)
            .ok_or_else(|| format!("tile-time ({}) exceeds wall slots ({slots})", merged.cycles))?;
        Ok(FabricCpi { per_tile, merged, wall_cycles: f.cycles, idle_after_halt })
    }

    /// Number of tiles.
    pub fn tiles(&self) -> usize {
        self.per_tile.len()
    }

    /// Fraction of wall-normalized tile-slots idle after halt (the
    /// load-imbalance overhead of the sharding).
    pub fn idle_frac(&self) -> f64 {
        let slots = self.wall_cycles * self.tiles() as u64;
        if slots == 0 {
            0.0
        } else {
            self.idle_after_halt as f64 / slots as f64
        }
    }
}
