//! Post-run performance analysis: where did the cycles go, and is the
//! build getting slower?
//!
//! The simulator's counters ([`SystemStats`](hht_system::system::SystemStats)
//! and friends) say *what happened*; this crate turns them into *answers*:
//!
//! - [`cpi`] — the top-down CPI stack: every simulated cycle attributed to
//!   exactly one bucket of a fixed hierarchy (issue / vector / memory-wait
//!   / HHT-wait / fault-recovery), with an exact-sum invariant against the
//!   run's total cycles, per tile and merged across a fabric.
//! - [`classify`] — a bottleneck classifier over the stack
//!   (compute-bound / latency-bound / bandwidth-bound) plus the
//!   "cycles hidden by the HHT" estimate.
//! - [`host`] — host-side self-profiling: phase timers (layout / run /
//!   export), cycle-skip efficiency, and simulated-cycles-per-host-second
//!   throughput.
//! - [`recovery`] — fault-domain attribution: joins the runner's
//!   [`FabricRecovery`](hht_system::runner::FabricRecovery) record with
//!   the per-tile CPI stacks into per-tile verdicts (health, failovers,
//!   recovery cycles).
//! - [`bench`] — the canonical `BENCH_core.json` report and the tolerance
//!   comparator the CI regression gate runs.
//!
//! Everything here is *derived* from counters after the run: nothing in
//! this crate touches simulated timing.

pub mod bench;
pub mod classify;
pub mod cpi;
pub mod host;
pub mod recovery;

pub use bench::{BenchConfig, BenchReport, FabricBenchConfig, FailoverBenchConfig, BENCH_SCHEMA};
pub use classify::{classify, classify_with_bus, Bottleneck, BottleneckReport};
pub use cpi::{CpiStack, FabricCpi};
pub use host::{HostProfile, Stopwatch};
pub use recovery::{FabricRecoveryReport, TileVerdict};
