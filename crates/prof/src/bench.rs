//! The canonical benchmark report (`BENCH_core.json`) and its regression
//! comparator.
//!
//! The report is small on purpose: a handful of headline metrics per named
//! configuration, committed at the repo root as the performance baseline.
//! The comparator gates **only deterministic simulated metrics** (cycle
//! counts and speedup) against a relative tolerance — host-throughput
//! numbers vary with the machine running CI and are carried for context
//! only.

use crate::host::HostProfile;
use serde::{Deserialize, Serialize};

/// Schema version stamped into every report; bump on incompatible change.
/// Schema 2 added the `fabric` scheduler-throughput section; schema 3 added
/// the `failover` degraded-mode section; schema 4 added the
/// `dram_slow_memory` configuration (split-transaction DRAM backend).
pub const BENCH_SCHEMA: u32 = 4;

/// Headline metrics for one named configuration (e.g. `paper_default`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchConfig {
    /// Configuration name (stable key the comparator joins on).
    pub name: String,
    /// Baseline (CPU-only) SpMV cycles. Deterministic; gated.
    pub baseline_cycles: u64,
    /// HHT-assisted SpMV cycles. Deterministic; gated.
    pub hht_cycles: u64,
    /// `baseline_cycles / hht_cycles`. Deterministic; gated.
    pub speedup: f64,
    /// Fraction of the HHT run the CPU waited on the accelerator.
    pub cpu_wait_frac: f64,
    /// CPI-stack issue fraction of the HHT run.
    pub issue_frac: f64,
    /// Host-side profile of the HHT run (informational, never gated).
    pub host: HostProfile,
}

/// Fabric scheduler throughput for one named configuration: the same
/// simulated run timed under all three schedulers (per-cycle lock-step,
/// lock-step with global fast-forward, and the discrete-event queue).
///
/// `wall_cycles` is deterministic and gated with the relative tolerance.
/// Host throughput varies with the machine, so the speedup *ratios* —
/// measured between runs on the same machine in the same process — are
/// gated only against the absolute `min_host_speedup` floor carried in
/// the committed baseline, not against the baseline's measured values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FabricBenchConfig {
    /// Configuration name (stable key the comparator joins on).
    pub name: String,
    /// Tile count of the fabric.
    pub tiles: usize,
    /// Shared-memory bank count.
    pub banks: usize,
    /// SRAM word occupancy in cycles (the "slow memory" knob).
    pub ram_word_cycles: u64,
    /// Simulated wall cycles — identical across all three schedulers by
    /// construction (the generator asserts it). Deterministic; gated.
    pub wall_cycles: u64,
    /// Event-queue scheduler host throughput, simulated Mcycles/second.
    pub eq_mcycles_per_sec: f64,
    /// Lock-step (global fast-forward) host throughput, Mcycles/second.
    pub lockstep_mcycles_per_sec: f64,
    /// Per-cycle lock-step host throughput, Mcycles/second.
    pub percycle_mcycles_per_sec: f64,
    /// Event queue vs lock-step-with-fast-forward, same machine.
    pub host_speedup_vs_lockstep: f64,
    /// Event queue vs per-cycle lock-step, same machine. Gated against
    /// `min_host_speedup`.
    pub host_speedup_vs_percycle: f64,
    /// Gate floor for `host_speedup_vs_percycle` (from the baseline).
    pub min_host_speedup: f64,
}

/// Degraded-mode throughput for one named fault scenario: the same SpMV
/// run clean and with tiles killed mid-run, recovery enabled. Both wall
/// cycle counts are deterministic (the chaos plan is fixed) and gated with
/// the relative tolerance; the overhead ratio is carried for context.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailoverBenchConfig {
    /// Scenario name (stable key the comparator joins on).
    pub name: String,
    /// Tile count the fabric starts with.
    pub tiles: usize,
    /// Shared-memory bank count.
    pub banks: usize,
    /// Tiles the fault plan kills.
    pub killed: usize,
    /// Tiles never quarantined by the end of the run.
    pub survivors: usize,
    /// Failed attempts the recovery policy absorbed (shard failovers).
    pub failovers: u64,
    /// Wall cycles of the clean (no-fault) run. Deterministic; gated.
    pub clean_wall_cycles: u64,
    /// Wall cycles of the degraded run: every attempt plus backoff.
    /// Deterministic; gated.
    pub degraded_wall_cycles: u64,
    /// `degraded_wall_cycles / clean_wall_cycles` (informational).
    pub degraded_overhead: f64,
}

/// The full report: schema stamp plus one entry per configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// Always [`BENCH_SCHEMA`] for reports this build writes.
    pub schema: u32,
    /// Per-configuration results, in a stable order.
    pub configs: Vec<BenchConfig>,
    /// Fabric scheduler-throughput results, in a stable order.
    pub fabric: Vec<FabricBenchConfig>,
    /// Degraded-mode (fault-domain failover) results, in a stable order.
    pub failover: Vec<FailoverBenchConfig>,
}

impl BenchReport {
    /// An empty report at the current schema.
    pub fn new() -> Self {
        BenchReport {
            schema: BENCH_SCHEMA,
            configs: Vec::new(),
            fabric: Vec::new(),
            failover: Vec::new(),
        }
    }

    /// Pretty JSON (deterministic field order — suitable for committing).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report fields are plain data")
    }

    /// Parse a committed report.
    pub fn from_json(s: &str) -> Result<Self, String> {
        serde_json::from_str(s).map_err(|e| format!("malformed bench report: {e}"))
    }

    /// Compare `self` (the current build) against a committed `baseline`.
    ///
    /// Returns one message per regression; empty means the gate passes.
    /// A metric regresses when it is *worse* than baseline by more than
    /// the relative `tolerance` (cycles up, speedup down). Improvements
    /// and host-timing drift never fail the gate; a configuration present
    /// in the baseline but missing from the current report does.
    pub fn compare(&self, baseline: &BenchReport, tolerance: f64) -> Vec<String> {
        let mut regressions = Vec::new();
        if baseline.schema != self.schema {
            regressions.push(format!(
                "schema mismatch: baseline {} vs current {} (regenerate the baseline)",
                baseline.schema, self.schema
            ));
            return regressions;
        }
        for base in &baseline.configs {
            let Some(cur) = self.configs.iter().find(|c| c.name == base.name) else {
                regressions.push(format!("config '{}' missing from current report", base.name));
                continue;
            };
            let worse_cycles = |label: &str, cur_v: u64, base_v: u64| {
                let limit = base_v as f64 * (1.0 + tolerance);
                (cur_v as f64 > limit).then(|| {
                    format!(
                        "{}: {label} regressed {} -> {} (+{:.2}%, tolerance {:.2}%)",
                        base.name,
                        base_v,
                        cur_v,
                        100.0 * (cur_v as f64 / base_v as f64 - 1.0),
                        100.0 * tolerance
                    )
                })
            };
            regressions.extend(worse_cycles("hht_cycles", cur.hht_cycles, base.hht_cycles));
            regressions.extend(worse_cycles(
                "baseline_cycles",
                cur.baseline_cycles,
                base.baseline_cycles,
            ));
            let speedup_floor = base.speedup * (1.0 - tolerance);
            if cur.speedup < speedup_floor {
                regressions.push(format!(
                    "{}: speedup regressed {:.3}x -> {:.3}x (tolerance {:.2}%)",
                    base.name,
                    base.speedup,
                    cur.speedup,
                    100.0 * tolerance
                ));
            }
        }
        for base in &baseline.fabric {
            let Some(cur) = self.fabric.iter().find(|c| c.name == base.name) else {
                regressions
                    .push(format!("fabric config '{}' missing from current report", base.name));
                continue;
            };
            let limit = base.wall_cycles as f64 * (1.0 + tolerance);
            if cur.wall_cycles as f64 > limit {
                regressions.push(format!(
                    "{}: wall_cycles regressed {} -> {} (+{:.2}%, tolerance {:.2}%)",
                    base.name,
                    base.wall_cycles,
                    cur.wall_cycles,
                    100.0 * (cur.wall_cycles as f64 / base.wall_cycles as f64 - 1.0),
                    100.0 * tolerance
                ));
            }
            // Host-timing ratio against the baseline's absolute floor (a
            // same-machine ratio is stable; the measured values are not).
            if cur.host_speedup_vs_percycle < base.min_host_speedup {
                regressions.push(format!(
                    "{}: event-queue host speedup {:.2}x below the {:.2}x floor",
                    base.name, cur.host_speedup_vs_percycle, base.min_host_speedup
                ));
            }
        }
        for base in &baseline.failover {
            let Some(cur) = self.failover.iter().find(|c| c.name == base.name) else {
                regressions
                    .push(format!("failover config '{}' missing from current report", base.name));
                continue;
            };
            let worse = |label: &str, cur_v: u64, base_v: u64| {
                let limit = base_v as f64 * (1.0 + tolerance);
                (cur_v as f64 > limit).then(|| {
                    format!(
                        "{}: {label} regressed {} -> {} (+{:.2}%, tolerance {:.2}%)",
                        base.name,
                        base_v,
                        cur_v,
                        100.0 * (cur_v as f64 / base_v as f64 - 1.0),
                        100.0 * tolerance
                    )
                })
            };
            regressions.extend(worse(
                "degraded_wall_cycles",
                cur.degraded_wall_cycles,
                base.degraded_wall_cycles,
            ));
            regressions.extend(worse(
                "clean_wall_cycles",
                cur.clean_wall_cycles,
                base.clean_wall_cycles,
            ));
        }
        regressions
    }
}

impl Default for BenchReport {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(name: &str, base: u64, hht: u64) -> BenchConfig {
        BenchConfig {
            name: name.to_string(),
            baseline_cycles: base,
            hht_cycles: hht,
            speedup: base as f64 / hht as f64,
            cpu_wait_frac: 0.1,
            issue_frac: 0.5,
            host: HostProfile::default(),
        }
    }

    #[test]
    fn identical_reports_pass() {
        let mut r = BenchReport::new();
        r.configs.push(cfg("paper_default", 1000, 400));
        assert!(r.compare(&r.clone(), 0.02).is_empty());
    }

    #[test]
    fn cycle_regression_past_tolerance_fails() {
        let mut base = BenchReport::new();
        base.configs.push(cfg("paper_default", 1000, 400));
        let mut cur = BenchReport::new();
        cur.configs.push(cfg("paper_default", 1000, 450)); // +12.5 %
        let regs = cur.compare(&base, 0.02);
        assert_eq!(regs.len(), 2, "hht_cycles and speedup both regress: {regs:?}");
        // Improvements never fail.
        let mut faster = BenchReport::new();
        faster.configs.push(cfg("paper_default", 1000, 350));
        assert!(faster.compare(&base, 0.02).is_empty());
    }

    fn fab(name: &str, wall: u64, vs_percycle: f64, floor: f64) -> FabricBenchConfig {
        FabricBenchConfig {
            name: name.to_string(),
            tiles: 16,
            banks: 8,
            ram_word_cycles: 64,
            wall_cycles: wall,
            eq_mcycles_per_sec: 20.0,
            lockstep_mcycles_per_sec: 9.0,
            percycle_mcycles_per_sec: 2.0,
            host_speedup_vs_lockstep: 2.2,
            host_speedup_vs_percycle: vs_percycle,
            min_host_speedup: floor,
        }
    }

    #[test]
    fn fabric_gate_checks_wall_cycles_and_speedup_floor() {
        let mut base = BenchReport::new();
        base.fabric.push(fab("fabric_slow_memory_16t", 1_000_000, 11.0, 10.0));
        // Identical passes.
        assert!(base.compare(&base.clone(), 0.02).is_empty());
        // Wall-cycle regression past tolerance fails; host-speed drift above
        // the floor does not.
        let mut cur = BenchReport::new();
        cur.fabric.push(fab("fabric_slow_memory_16t", 1_040_000, 10.4, 10.0));
        let regs = cur.compare(&base, 0.02);
        assert_eq!(regs.len(), 1, "{regs:?}");
        assert!(regs[0].contains("wall_cycles"));
        // Dropping below the absolute floor fails regardless of baseline
        // measurement.
        let mut slow = BenchReport::new();
        slow.fabric.push(fab("fabric_slow_memory_16t", 1_000_000, 9.3, 10.0));
        let regs = slow.compare(&base, 0.02);
        assert_eq!(regs.len(), 1, "{regs:?}");
        assert!(regs[0].contains("floor"));
        // Missing fabric config fails.
        let empty = BenchReport::new();
        assert_eq!(empty.compare(&base, 0.02).len(), 1);
    }

    fn failover(name: &str, clean: u64, degraded: u64) -> FailoverBenchConfig {
        FailoverBenchConfig {
            name: name.to_string(),
            tiles: 8,
            banks: 8,
            killed: 1,
            survivors: 7,
            failovers: 1,
            clean_wall_cycles: clean,
            degraded_wall_cycles: degraded,
            degraded_overhead: degraded as f64 / clean as f64,
        }
    }

    #[test]
    fn failover_gate_checks_degraded_wall_cycles() {
        let mut base = BenchReport::new();
        base.failover.push(failover("fabric_failover_8t", 10_000, 16_000));
        assert!(base.compare(&base.clone(), 0.02).is_empty());
        // Degraded-run regression past tolerance fails.
        let mut cur = BenchReport::new();
        cur.failover.push(failover("fabric_failover_8t", 10_000, 17_000));
        let regs = cur.compare(&base, 0.02);
        assert_eq!(regs.len(), 1, "{regs:?}");
        assert!(regs[0].contains("degraded_wall_cycles"));
        // Faster recovery never fails; missing scenario does.
        let mut faster = BenchReport::new();
        faster.failover.push(failover("fabric_failover_8t", 10_000, 15_000));
        assert!(faster.compare(&base, 0.02).is_empty());
        let empty = BenchReport::new();
        assert_eq!(empty.compare(&base, 0.02).len(), 1);
    }

    #[test]
    fn missing_config_fails_and_json_round_trips() {
        let mut base = BenchReport::new();
        base.configs.push(cfg("paper_default", 1000, 400));
        base.configs.push(cfg("slow_memory", 4000, 1300));
        let parsed = BenchReport::from_json(&base.to_json()).unwrap();
        assert_eq!(parsed, base);
        let mut cur = BenchReport::new();
        cur.configs.push(cfg("paper_default", 1000, 400));
        let regs = cur.compare(&base, 0.02);
        assert_eq!(regs.len(), 1);
        assert!(regs[0].contains("slow_memory"));
    }
}
