//! The canonical benchmark report (`BENCH_core.json`) and its regression
//! comparator.
//!
//! The report is small on purpose: a handful of headline metrics per named
//! configuration, committed at the repo root as the performance baseline.
//! The comparator gates **only deterministic simulated metrics** (cycle
//! counts and speedup) against a relative tolerance — host-throughput
//! numbers vary with the machine running CI and are carried for context
//! only.

use crate::host::HostProfile;
use serde::{Deserialize, Serialize};

/// Schema version stamped into every report; bump on incompatible change.
pub const BENCH_SCHEMA: u32 = 1;

/// Headline metrics for one named configuration (e.g. `paper_default`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchConfig {
    /// Configuration name (stable key the comparator joins on).
    pub name: String,
    /// Baseline (CPU-only) SpMV cycles. Deterministic; gated.
    pub baseline_cycles: u64,
    /// HHT-assisted SpMV cycles. Deterministic; gated.
    pub hht_cycles: u64,
    /// `baseline_cycles / hht_cycles`. Deterministic; gated.
    pub speedup: f64,
    /// Fraction of the HHT run the CPU waited on the accelerator.
    pub cpu_wait_frac: f64,
    /// CPI-stack issue fraction of the HHT run.
    pub issue_frac: f64,
    /// Host-side profile of the HHT run (informational, never gated).
    pub host: HostProfile,
}

/// The full report: schema stamp plus one entry per configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// Always [`BENCH_SCHEMA`] for reports this build writes.
    pub schema: u32,
    /// Per-configuration results, in a stable order.
    pub configs: Vec<BenchConfig>,
}

impl BenchReport {
    /// An empty report at the current schema.
    pub fn new() -> Self {
        BenchReport { schema: BENCH_SCHEMA, configs: Vec::new() }
    }

    /// Pretty JSON (deterministic field order — suitable for committing).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report fields are plain data")
    }

    /// Parse a committed report.
    pub fn from_json(s: &str) -> Result<Self, String> {
        serde_json::from_str(s).map_err(|e| format!("malformed bench report: {e}"))
    }

    /// Compare `self` (the current build) against a committed `baseline`.
    ///
    /// Returns one message per regression; empty means the gate passes.
    /// A metric regresses when it is *worse* than baseline by more than
    /// the relative `tolerance` (cycles up, speedup down). Improvements
    /// and host-timing drift never fail the gate; a configuration present
    /// in the baseline but missing from the current report does.
    pub fn compare(&self, baseline: &BenchReport, tolerance: f64) -> Vec<String> {
        let mut regressions = Vec::new();
        if baseline.schema != self.schema {
            regressions.push(format!(
                "schema mismatch: baseline {} vs current {} (regenerate the baseline)",
                baseline.schema, self.schema
            ));
            return regressions;
        }
        for base in &baseline.configs {
            let Some(cur) = self.configs.iter().find(|c| c.name == base.name) else {
                regressions.push(format!("config '{}' missing from current report", base.name));
                continue;
            };
            let worse_cycles = |label: &str, cur_v: u64, base_v: u64| {
                let limit = base_v as f64 * (1.0 + tolerance);
                (cur_v as f64 > limit).then(|| {
                    format!(
                        "{}: {label} regressed {} -> {} (+{:.2}%, tolerance {:.2}%)",
                        base.name,
                        base_v,
                        cur_v,
                        100.0 * (cur_v as f64 / base_v as f64 - 1.0),
                        100.0 * tolerance
                    )
                })
            };
            regressions.extend(worse_cycles("hht_cycles", cur.hht_cycles, base.hht_cycles));
            regressions.extend(worse_cycles(
                "baseline_cycles",
                cur.baseline_cycles,
                base.baseline_cycles,
            ));
            let speedup_floor = base.speedup * (1.0 - tolerance);
            if cur.speedup < speedup_floor {
                regressions.push(format!(
                    "{}: speedup regressed {:.3}x -> {:.3}x (tolerance {:.2}%)",
                    base.name,
                    base.speedup,
                    cur.speedup,
                    100.0 * tolerance
                ));
            }
        }
        regressions
    }
}

impl Default for BenchReport {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(name: &str, base: u64, hht: u64) -> BenchConfig {
        BenchConfig {
            name: name.to_string(),
            baseline_cycles: base,
            hht_cycles: hht,
            speedup: base as f64 / hht as f64,
            cpu_wait_frac: 0.1,
            issue_frac: 0.5,
            host: HostProfile::default(),
        }
    }

    #[test]
    fn identical_reports_pass() {
        let mut r = BenchReport::new();
        r.configs.push(cfg("paper_default", 1000, 400));
        assert!(r.compare(&r.clone(), 0.02).is_empty());
    }

    #[test]
    fn cycle_regression_past_tolerance_fails() {
        let mut base = BenchReport::new();
        base.configs.push(cfg("paper_default", 1000, 400));
        let mut cur = BenchReport::new();
        cur.configs.push(cfg("paper_default", 1000, 450)); // +12.5 %
        let regs = cur.compare(&base, 0.02);
        assert_eq!(regs.len(), 2, "hht_cycles and speedup both regress: {regs:?}");
        // Improvements never fail.
        let mut faster = BenchReport::new();
        faster.configs.push(cfg("paper_default", 1000, 350));
        assert!(faster.compare(&base, 0.02).is_empty());
    }

    #[test]
    fn missing_config_fails_and_json_round_trips() {
        let mut base = BenchReport::new();
        base.configs.push(cfg("paper_default", 1000, 400));
        base.configs.push(cfg("slow_memory", 4000, 1300));
        let parsed = BenchReport::from_json(&base.to_json()).unwrap();
        assert_eq!(parsed, base);
        let mut cur = BenchReport::new();
        cur.configs.push(cfg("paper_default", 1000, 400));
        let regs = cur.compare(&base, 0.02);
        assert_eq!(regs.len(), 1);
        assert!(regs[0].contains("slow_memory"));
    }
}
