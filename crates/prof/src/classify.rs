//! Bottleneck classification over a [`CpiStack`].
//!
//! The classifier cuts the stack into three roofline-style super-buckets
//! and names the largest one:
//!
//! - **compute** — `issue + branch_refill + vector_busy`: the core was the
//!   limiter.
//! - **latency** — `mem_load_latency + hht_window_empty +
//!   hht_header_drain`: waiting for data to *arrive*. HHT waits count here
//!   because an empty stream window is memory latency the accelerator
//!   failed to hide.
//! - **bandwidth** — `mem_port_refusal + mem_cross_tile`: the data was
//!   there but the port/bank was contended.
//!
//! `fault_recovery` cycles are reported separately and never win the
//! classification (a faulty run is still latency/bandwidth/compute bound
//! underneath its recovery overhead).
//!
//! The report also estimates **cycles hidden by the HHT**: back-end busy
//! cycles during which the CPU was *not* blocked on the accelerator —
//! gather work that overlapped useful CPU progress instead of serializing
//! in front of it.

use crate::cpi::CpiStack;
use hht_system::system::SystemStats;
use serde::{Deserialize, Serialize};

/// Which super-bucket limits the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Bottleneck {
    /// The core's own issue/vector throughput dominates.
    ComputeBound,
    /// Waiting for data to arrive (memory latency, unhidden HHT latency).
    LatencyBound,
    /// Port/bank contention: the fabric's wires, not the data, limit.
    BandwidthBound,
}

impl Bottleneck {
    /// Human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            Bottleneck::ComputeBound => "compute-bound",
            Bottleneck::LatencyBound => "latency-bound",
            Bottleneck::BandwidthBound => "bandwidth-bound",
        }
    }
}

/// The classifier's full output for one run (or one merged fabric view).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BottleneckReport {
    /// The winning super-bucket.
    pub bottleneck: Bottleneck,
    /// Fraction of cycles in the compute super-bucket.
    pub compute_frac: f64,
    /// Fraction of cycles in the latency super-bucket.
    pub latency_frac: f64,
    /// Fraction of cycles in the bandwidth super-bucket.
    pub bandwidth_frac: f64,
    /// Fraction of cycles in fault recovery (reported, never classified).
    pub fault_frac: f64,
    /// HHT back-end busy cycles that overlapped CPU progress: the latency
    /// the accelerator actually hid.
    pub cycles_hidden_by_hht: u64,
    /// `cycles_hidden_by_hht / cycles`.
    pub hidden_frac: f64,
}

/// Classify one run. `stats` must be the same record `stack` was built
/// from (the hidden-cycles estimate needs the HHT busy counter).
pub fn classify(stack: &CpiStack, stats: &SystemStats) -> BottleneckReport {
    let compute = stack.issue + stack.branch_refill + stack.vector_busy;
    let latency = stack.mem_load_latency + stack.hht_wait();
    let bandwidth = stack.mem_port_refusal + stack.mem_cross_tile;
    let bottleneck = if compute >= latency && compute >= bandwidth {
        Bottleneck::ComputeBound
    } else if latency >= bandwidth {
        Bottleneck::LatencyBound
    } else {
        Bottleneck::BandwidthBound
    };
    let hidden = stats.hht.busy_cycles.saturating_sub(stats.core.hht_wait_cycles);
    BottleneckReport {
        bottleneck,
        compute_frac: stack.frac(compute),
        latency_frac: stack.frac(latency),
        bandwidth_frac: stack.frac(bandwidth),
        fault_frac: stack.frac(stack.fault_recovery),
        cycles_hidden_by_hht: hidden,
        hidden_frac: stack.frac(hidden),
    }
}

impl BottleneckReport {
    /// One-paragraph terminal rendering.
    pub fn render(&self) -> String {
        format!(
            "verdict: {} (compute {:.1}%, latency {:.1}%, bandwidth {:.1}%, fault {:.1}%); \
             HHT hid {} cycles ({:.1}% of the run)",
            self.bottleneck.label(),
            100.0 * self.compute_frac,
            100.0 * self.latency_frac,
            100.0 * self.bandwidth_frac,
            100.0 * self.fault_frac,
            self.cycles_hidden_by_hht,
            100.0 * self.hidden_frac,
        )
    }
}
