//! Bottleneck classification over a [`CpiStack`].
//!
//! The classifier cuts the stack into three roofline-style super-buckets
//! and names the largest one:
//!
//! - **compute** — `issue + branch_refill + vector_busy`: the core was the
//!   limiter.
//! - **latency** — `mem_latency() + mem_mlp_stall + hht_window_empty +
//!   hht_header_drain`: waiting for data to *arrive*. DRAM row extras and
//!   window-ceiling stalls count here (the MLP cap is a latency-hiding
//!   limit, Little's law), and HHT waits count because an empty stream
//!   window is memory latency the accelerator failed to hide.
//! - **bandwidth** — `mem_port_refusal + mem_cross_tile`: the data was
//!   there but the port/bank was contended.
//!
//! [`classify_with_bus`] additionally consults the fabric-wide shared
//! memory counters: when a DRAM grants-per-cycle budget is configured and
//! nearly saturated, the verdict is forced to bandwidth-bound even if the
//! per-cycle stall cut would have named latency — a saturated bus shows up
//! partly as queueing latency, and the budget utilization is the direct
//! measurement.
//!
//! `fault_recovery` cycles are reported separately and never win the
//! classification (a faulty run is still latency/bandwidth/compute bound
//! underneath its recovery overhead).
//!
//! The report also estimates **cycles hidden by the HHT**: back-end busy
//! cycles during which the CPU was *not* blocked on the accelerator —
//! gather work that overlapped useful CPU progress instead of serializing
//! in front of it.

use crate::cpi::CpiStack;
use hht_mem::SharedMemStats;
use hht_system::system::SystemStats;
use serde::{Deserialize, Serialize};

/// Budget-utilization threshold above which a configured DRAM bandwidth
/// budget forces the bandwidth-bound verdict.
pub const BUS_SATURATION_FRAC: f64 = 0.9;

/// Which super-bucket limits the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Bottleneck {
    /// The core's own issue/vector throughput dominates.
    ComputeBound,
    /// Waiting for data to arrive (memory latency, unhidden HHT latency).
    LatencyBound,
    /// Port/bank contention: the fabric's wires, not the data, limit.
    BandwidthBound,
}

impl Bottleneck {
    /// Human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            Bottleneck::ComputeBound => "compute-bound",
            Bottleneck::LatencyBound => "latency-bound",
            Bottleneck::BandwidthBound => "bandwidth-bound",
        }
    }
}

/// The classifier's full output for one run (or one merged fabric view).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BottleneckReport {
    /// The winning super-bucket.
    pub bottleneck: Bottleneck,
    /// Fraction of cycles in the compute super-bucket.
    pub compute_frac: f64,
    /// Fraction of cycles in the latency super-bucket.
    pub latency_frac: f64,
    /// Fraction of cycles in the bandwidth super-bucket.
    pub bandwidth_frac: f64,
    /// Fraction of cycles in fault recovery (reported, never classified).
    pub fault_frac: f64,
    /// HHT back-end busy cycles that overlapped CPU progress: the latency
    /// the accelerator actually hid.
    pub cycles_hidden_by_hht: u64,
    /// `cycles_hidden_by_hht / cycles`.
    pub hidden_frac: f64,
    /// Utilization of the DRAM grants-per-cycle budget: granted
    /// transactions over `cycles × budget`. `None` when no budget is
    /// configured (flat backend, or an unlimited bus).
    pub bus_utilization: Option<f64>,
}

/// Classify one run. `stats` must be the same record `stack` was built
/// from (the hidden-cycles estimate needs the HHT busy counter).
pub fn classify(stack: &CpiStack, stats: &SystemStats) -> BottleneckReport {
    classify_with_bus(stack, stats, None)
}

/// Classify one run, consulting the fabric-wide shared-memory counters
/// when available. With a configured DRAM bandwidth budget
/// (`mem.grant_budget > 0`) whose utilization over the run is at least
/// [`BUS_SATURATION_FRAC`], the verdict is bandwidth-bound regardless of
/// the stall cut: the bus itself is the measured limiter.
pub fn classify_with_bus(
    stack: &CpiStack,
    stats: &SystemStats,
    mem: Option<&SharedMemStats>,
) -> BottleneckReport {
    let compute = stack.issue + stack.branch_refill + stack.vector_busy;
    let latency = stack.mem_latency() + stack.mem_mlp_stall + stack.hht_wait();
    let bandwidth = stack.mem_port_refusal + stack.mem_cross_tile;
    // Granted transactions = row outcomes recorded (one per grant on the
    // DRAM backend), measured against the budget's cycle capacity.
    let bus_utilization = mem.and_then(|m| {
        if m.grant_budget == 0 || stack.cycles == 0 {
            return None;
        }
        let grants = m.row_hits + m.row_misses;
        Some(grants as f64 / (stack.cycles as f64 * m.grant_budget as f64))
    });
    let saturated = bus_utilization.is_some_and(|u| u >= BUS_SATURATION_FRAC);
    let bottleneck = if saturated {
        Bottleneck::BandwidthBound
    } else if compute >= latency && compute >= bandwidth {
        Bottleneck::ComputeBound
    } else if latency >= bandwidth {
        Bottleneck::LatencyBound
    } else {
        Bottleneck::BandwidthBound
    };
    let hidden = stats.hht.busy_cycles.saturating_sub(stats.core.hht_wait_cycles);
    BottleneckReport {
        bottleneck,
        compute_frac: stack.frac(compute),
        latency_frac: stack.frac(latency),
        bandwidth_frac: stack.frac(bandwidth),
        fault_frac: stack.frac(stack.fault_recovery),
        cycles_hidden_by_hht: hidden,
        hidden_frac: stack.frac(hidden),
        bus_utilization,
    }
}

impl BottleneckReport {
    /// One-paragraph terminal rendering.
    pub fn render(&self) -> String {
        format!(
            "verdict: {} (compute {:.1}%, latency {:.1}%, bandwidth {:.1}%, fault {:.1}%); \
             HHT hid {} cycles ({:.1}% of the run)",
            self.bottleneck.label(),
            100.0 * self.compute_frac,
            100.0 * self.latency_frac,
            100.0 * self.bandwidth_frac,
            100.0 * self.fault_frac,
            self.cycles_hidden_by_hht,
            100.0 * self.hidden_frac,
        )
    }
}
