//! Fault-domain recovery attribution: per-tile verdicts after a degraded
//! fabric run.
//!
//! The runner's [`FabricRecovery`] records *what the policy decided*
//! (health transitions, attempts, failovers); the per-tile
//! [`CpiStack`](crate::cpi::CpiStack) records *what the decisions cost*
//! (every failed-attempt and backoff cycle lands in the `fault_recovery`
//! bucket). This module joins the two into one report: for each fault
//! domain, its final health, how many attempts it sank, and how many of
//! its cycles went to recovery instead of work — with the same exact-sum
//! discipline as the rest of the crate (a tile's `recovery_cycles` is its
//! CPI stack's `fault_recovery` bucket, never an estimate).

use crate::cpi::CpiStack;
use hht_system::fabric::{FabricStats, TileHealth};
use hht_system::runner::FabricRecovery;

/// One fault domain's verdict after a recovered run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileVerdict {
    /// Global (original) tile index.
    pub tile: usize,
    /// Final health state.
    pub health: TileHealth,
    /// Failed attempts this domain caused (its `faults.failovers`).
    pub failovers: u64,
    /// Cycles this domain burned on failed attempts and retry backoff —
    /// exactly its CPI stack's `fault_recovery` bucket minus the HHT
    /// retry-protocol share, i.e. `faults.failed_cycles`.
    pub recovery_cycles: u64,
    /// The domain's total accumulated cycles across every attempt.
    pub cycles: u64,
}

impl TileVerdict {
    /// Fraction of this domain's cycles lost to recovery.
    pub fn recovery_frac(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.recovery_cycles as f64 / self.cycles as f64
    }
}

/// Per-tile fault-domain verdicts for one recovered fabric run.
#[derive(Debug, Clone, PartialEq)]
pub struct FabricRecoveryReport {
    /// One verdict per original tile.
    pub tiles: Vec<TileVerdict>,
    /// Attempts the run took (1 = clean).
    pub attempts: usize,
    /// Total retry-backoff cycles charged to the wall clock.
    pub backoff_cycles: u64,
    /// Degraded wall cycles (every attempt plus backoff and any fallback).
    pub wall_cycles: u64,
    /// `Some(reason)` when the run abandoned the fabric for the software
    /// baseline.
    pub fallback: Option<String>,
}

impl FabricRecoveryReport {
    /// Join the runner's recovery record with the run's statistics. The
    /// per-tile CPI stacks are built (and therefore exact-sum validated)
    /// on the way; mismatched tile counts or broken stacks are errors.
    pub fn new(stats: &FabricStats, rec: &FabricRecovery) -> Result<FabricRecoveryReport, String> {
        if stats.tiles.len() != rec.health.len() {
            return Err(format!(
                "stats cover {} tiles but the recovery record has {}",
                stats.tiles.len(),
                rec.health.len()
            ));
        }
        let tiles = stats
            .tiles
            .iter()
            .enumerate()
            .map(|(t, s)| {
                // Validates the exact-sum invariant per tile.
                CpiStack::from_stats(s)?;
                Ok(TileVerdict {
                    tile: t,
                    health: rec.health[t],
                    failovers: s.faults.failovers,
                    recovery_cycles: s.faults.failed_cycles,
                    cycles: s.cycles,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(FabricRecoveryReport {
            tiles,
            attempts: rec.attempts.len(),
            backoff_cycles: rec.backoff_cycles,
            wall_cycles: stats.cycles,
            fallback: rec.fallback.clone(),
        })
    }

    /// Domains never quarantined.
    pub fn survivors(&self) -> usize {
        self.tiles.iter().filter(|t| !t.health.is_quarantined()).count()
    }

    /// Render as an aligned text table, one row per fault domain.
    pub fn render(&self) -> String {
        let health = |h: &TileHealth| match h {
            TileHealth::Healthy => "healthy".to_string(),
            TileHealth::Suspected { retries } => format!("suspected({retries})"),
            TileHealth::Quarantined => "quarantined".to_string(),
        };
        let mut s = format!(
            "fabric recovery — {} wall cycles, {} attempt(s), {}/{} survivors, backoff {}\n",
            self.wall_cycles,
            self.attempts,
            self.survivors(),
            self.tiles.len(),
            self.backoff_cycles,
        );
        if let Some(reason) = &self.fallback {
            s += &format!("  software fallback: {reason}\n");
        }
        s += "  tile  health          failovers  recovery_cycles        cycles  recovery%\n";
        for t in &self.tiles {
            s += &format!(
                "  {:>4}  {:<14}  {:>9}  {:>15}  {:>12}  {:>8.1}%\n",
                t.tile,
                health(&t.health),
                t.failovers,
                t.recovery_cycles,
                t.cycles,
                100.0 * t.recovery_frac(),
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hht_fault::{FaultEvent, FaultKind, FaultPlan};
    use hht_sparse::generate;
    use hht_system::config::SystemConfig;
    use hht_system::fabric::FabricConfig;
    use hht_system::runner;

    fn robust() -> SystemConfig {
        SystemConfig::paper_default().with_hht_timeout(64).with_recovery(true)
    }

    #[test]
    fn report_names_the_quarantined_domain_and_its_cost() {
        let m = generate::random_csr(48, 48, 0.5, 0xEC0);
        let v = generate::random_dense_vector(48, 0xEC1);
        let plan = FaultPlan::new(vec![FaultEvent::on_tile(100, FaultKind::TileKill, 1)]);
        let out =
            runner::run_spmv_fabric_with_plan(&robust(), FabricConfig::scaled(4), &m, &v, plan);
        let rec = out.recovery.expect("kill triggers recovery");
        let report = FabricRecoveryReport::new(&out.stats, &rec).unwrap();
        assert_eq!(report.tiles.len(), 4);
        assert_eq!(report.survivors(), 3);
        assert_eq!(report.tiles[1].health, TileHealth::Quarantined);
        assert_eq!(report.tiles[1].failovers, 1);
        assert!(report.tiles[1].recovery_cycles > 0);
        assert!(report.attempts >= 2);
        assert!(report.fallback.is_none());
        let text = report.render();
        assert!(text.contains("quarantined"), "{text}");
        assert!(text.contains("3/4 survivors"), "{text}");
    }

    #[test]
    fn clean_run_report_is_all_healthy_or_absent() {
        let m = generate::random_csr(32, 32, 0.5, 0xEC2);
        let v = generate::random_dense_vector(32, 0xEC3);
        let out = runner::run_spmv_fabric(&robust(), FabricConfig::scaled(2), &m, &v);
        assert!(out.recovery.is_none(), "clean runs carry no recovery record");
    }

    #[test]
    fn mismatched_tile_counts_are_rejected() {
        let stats = FabricStats { cycles: 0, tiles: Vec::new(), mem: Default::default() };
        let rec = FabricRecovery {
            health: vec![TileHealth::Healthy],
            attempts: Vec::new(),
            quarantined_at: vec![None],
            backoff_cycles: 0,
            fallback: None,
            fallback_cycles: 0,
        };
        assert!(FabricRecoveryReport::new(&stats, &rec).is_err());
    }
}
