//! Host-side self-profiling: how fast is the *simulator*, not the
//! simulated machine.
//!
//! Simulated timing is deterministic; host timing is not. Everything in
//! this module is therefore informational — the regression comparator in
//! [`crate::bench`] never gates on host seconds, only reports them.

use hht_system::fabric::SchedStats;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// A restartable phase timer.
///
/// ```
/// let mut sw = hht_prof::Stopwatch::start();
/// // ... phase 1 ...
/// let phase1_secs = sw.lap();
/// // ... phase 2 ...
/// let phase2_secs = sw.lap();
/// # let _ = (phase1_secs, phase2_secs);
/// ```
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Self {
        Stopwatch(Instant::now())
    }

    /// Seconds since the last `lap` (or `start`), and restart.
    pub fn lap(&mut self) -> f64 {
        let now = Instant::now();
        let secs = now.duration_since(self.0).as_secs_f64();
        self.0 = now;
        secs
    }

    /// Seconds since the last `lap`/`start`, without restarting.
    pub fn elapsed(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }
}

/// One experiment's host-side cost profile.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct HostProfile {
    /// Seconds building the SRAM image and assembling kernels.
    pub layout_secs: f64,
    /// Seconds inside the cycle loop.
    pub run_secs: f64,
    /// Seconds serializing metrics/traces/reports.
    pub export_secs: f64,
    /// Simulated cycles completed in `run_secs`.
    pub sim_cycles: u64,
    /// Cycles the scheduler actually stepped.
    pub stepped_cycles: u64,
    /// Cycles the event-driven scheduler fast-forwarded over.
    pub skipped_cycles: u64,
}

impl HostProfile {
    /// Fill the scheduler split from a run's [`SchedStats`].
    pub fn with_sched(mut self, sched: &SchedStats) -> Self {
        self.stepped_cycles = sched.stepped_cycles;
        self.skipped_cycles = sched.skipped_cycles;
        self
    }

    /// Total wall seconds across the three phases.
    pub fn total_secs(&self) -> f64 {
        self.layout_secs + self.run_secs + self.export_secs
    }

    /// Fraction of simulated cycles the scheduler skipped instead of
    /// stepping — the cycle-skip win (0 when the per-cycle loop ran).
    pub fn skip_efficiency(&self) -> f64 {
        let total = self.stepped_cycles + self.skipped_cycles;
        if total == 0 {
            0.0
        } else {
            self.skipped_cycles as f64 / total as f64
        }
    }

    /// Simulated megacycles per host second (the headline simulator
    /// throughput number); 0 when `run_secs` is too small to measure.
    pub fn sim_mcycles_per_sec(&self) -> f64 {
        if self.run_secs <= 0.0 {
            0.0
        } else {
            self.sim_cycles as f64 / self.run_secs / 1e6
        }
    }

    /// One-line terminal rendering.
    pub fn render(&self) -> String {
        format!(
            "host: layout {:.3}s, run {:.3}s, export {:.3}s; {:.1} Mcycle/s, \
             skip efficiency {:.1}% ({} skipped / {} stepped)",
            self.layout_secs,
            self.run_secs,
            self.export_secs,
            self.sim_mcycles_per_sec(),
            100.0 * self.skip_efficiency(),
            self.skipped_cycles,
            self.stepped_cycles,
        )
    }
}
