//! Deterministic, cycle-domain fault injection for the HHT system.
//!
//! A [`FaultPlan`] is a cycle-sorted list of [`FaultEvent`]s the system
//! applies at *exact* cycles, before the CPU step of the target cycle. The
//! plan is either derived from a seed ([`FaultPlan::from_seed`], a
//! splitmix64 stream — same seed, same machine image, same plan, always) or
//! parsed from an explicit spec string ([`FaultPlan::parse`], the
//! `figures --fault-plan` syntax).
//!
//! The crate is deliberately leaf-level (vendored serde only) so every
//! layer — `hht-system`'s injection loop, the bench CLI, the differential
//! tests — can share one fault vocabulary without dependency cycles.
//!
//! Determinism contract: a plan never consults wall-clock time or ambient
//! randomness, and the cycle of every event is fixed when the plan is
//! built. The cycle-skipping scheduler treats the next pending fault cycle
//! as a wake bound, so injection lands on the same cycle in the skip and
//! legacy loops (differentially tested in `tests/determinism.rs`).

use serde::{Deserialize, Serialize};

/// One kind of injected hardware mischief.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Flip bit `bit` (0-31) of the SRAM word at byte address `addr`
    /// (silent data corruption; surfaces as a wrong numeric result).
    SramBitFlip { addr: u32, bit: u8 },
    /// Silently discard the element at the head of the HHT primary stream
    /// buffer (a lost response: the CPU waits forever for its last
    /// element).
    DropResponse,
    /// The HHT stream windows answer `Stall` for the next `cycles` cycles
    /// (a transient response delay; survivable by the core's retry
    /// protocol when it outlasts the timeout).
    DelayResponse { cycles: u64 },
    /// The back-end engine freezes — makes no progress — for `cycles`
    /// cycles, then resumes where it left off.
    EngineStall { cycles: u64 },
    /// Flip bit `bit` of the element at the head of the primary stream
    /// buffer. The buffers are parity-protected, so this is *detected* at
    /// injection and latches the sticky error bit instead of delivering
    /// corrupt data.
    BufferCorrupt { bit: u8 },
    /// Latch the sticky error bit in the HHT STATUS register: the control
    /// unit has failed and every stream window stalls from here on.
    MmrStickyError,
    /// The whole tile dies: its HHT latches the sticky error *and* the
    /// tile is marked fatal, so a fabric's recovery policy quarantines it
    /// (no retry can bring it back) and fails its row shard over to the
    /// surviving tiles. Never drawn by seeded plans — a seeded sweep
    /// measures transient-fault behaviour; tile kills are the chaos
    /// campaign's explicit weapon.
    TileKill,
}

impl FaultKind {
    /// Stable snake_case label used in obs events and plan specs.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::SramBitFlip { .. } => "sram_bit_flip",
            FaultKind::DropResponse => "drop_response",
            FaultKind::DelayResponse { .. } => "delay_response",
            FaultKind::EngineStall { .. } => "engine_stall",
            FaultKind::BufferCorrupt { .. } => "buffer_corrupt",
            FaultKind::MmrStickyError => "mmr_sticky_error",
            FaultKind::TileKill => "tile_kill",
        }
    }

    /// True for faults no retry can survive: the targeted tile is dead for
    /// the rest of the run and must be quarantined rather than backed off.
    pub fn is_fatal(self) -> bool {
        matches!(self, FaultKind::TileKill)
    }
}

/// One fault at one cycle, aimed at one tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Cycle the fault is applied (before the CPU step of that cycle).
    pub cycle: u64,
    /// What happens.
    pub kind: FaultKind,
    /// Which tile's HHT the fault targets (tile 0 in a single-tile system;
    /// `SramBitFlip` hits the shared memory regardless). A fabric ignores
    /// HHT-side events whose tile does not exist.
    pub tile: u32,
}

impl FaultEvent {
    /// An event targeting tile 0 (the only tile in a single-tile system).
    pub fn new(cycle: u64, kind: FaultKind) -> Self {
        FaultEvent { cycle, kind, tile: 0 }
    }

    /// An event targeting a specific tile of a fabric.
    pub fn on_tile(cycle: u64, kind: FaultKind, tile: u32) -> Self {
        FaultEvent { cycle, kind, tile }
    }
}

/// Seed-driven fault generation knobs, carried by the system configuration
/// (`Copy` so `SystemConfig` stays `Copy`). `seed == 0` means no injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Splitmix64 seed for [`FaultPlan::from_seed`]; 0 disables injection.
    pub seed: u64,
    /// Number of faults a seeded plan contains.
    pub max_faults: u32,
    /// Seeded fault cycles are drawn from `[1, horizon]`.
    pub horizon: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig { seed: 0, max_faults: 2, horizon: 4096 }
    }
}

/// A cycle-sorted schedule of faults with an injection cursor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    /// Index of the first not-yet-applied event.
    cursor: usize,
}

/// Error from [`FaultPlan::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanParseError {
    /// The offending clause.
    pub clause: String,
    /// What was wrong with it.
    pub msg: String,
}

impl std::fmt::Display for PlanParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad fault clause `{}`: {}", self.clause, self.msg)
    }
}

impl std::error::Error for PlanParseError {}

/// splitmix64: the tiny deterministic PRNG the seeded plans draw from.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// Build a plan from explicit events (sorted by cycle, stably).
    pub fn new(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.cycle);
        FaultPlan { events, cursor: 0 }
    }

    /// Derive a plan deterministically from `cfg.seed`: `cfg.max_faults`
    /// events with cycles in `[1, cfg.horizon]`, kinds drawn uniformly,
    /// SRAM addresses word-aligned inside `[0, sram_size)`. `seed == 0`
    /// yields the empty plan (injection disabled).
    pub fn from_seed(cfg: FaultConfig, sram_size: u32) -> Self {
        if cfg.seed == 0 {
            return FaultPlan::new(Vec::new());
        }
        let mut state = cfg.seed;
        let horizon = cfg.horizon.max(1);
        let words = (sram_size / 4).max(1);
        let events = (0..cfg.max_faults)
            .map(|_| {
                let cycle = 1 + splitmix64(&mut state) % horizon;
                let kind = match splitmix64(&mut state) % 6 {
                    0 => FaultKind::SramBitFlip {
                        addr: (splitmix64(&mut state) as u32 % words) * 4,
                        bit: (splitmix64(&mut state) % 32) as u8,
                    },
                    1 => FaultKind::DropResponse,
                    2 => FaultKind::DelayResponse { cycles: 1 + splitmix64(&mut state) % 256 },
                    3 => FaultKind::EngineStall { cycles: 1 + splitmix64(&mut state) % 256 },
                    4 => FaultKind::BufferCorrupt { bit: (splitmix64(&mut state) % 32) as u8 },
                    _ => FaultKind::MmrStickyError,
                };
                FaultEvent::new(cycle, kind)
            })
            .collect();
        FaultPlan::new(events)
    }

    /// Parse a plan spec: comma-separated `cycle[@tile]:kind[:arg[:arg]]`
    /// clauses. The optional `@tile` suffix on the cycle aims the fault at
    /// one tile of a fabric (default tile 0, the only tile in a single-tile
    /// system).
    ///
    /// ```text
    /// 100:drop_response
    /// 50:delay_response:200,800:mmr_sticky_error
    /// 10:sram_bit_flip:0x200:7    (addr, bit)
    /// 30:engine_stall:64
    /// 40:buffer_corrupt:3         (bit)
    /// 100@2:drop_response         (tile 2 of a fabric)
    /// ```
    pub fn parse(spec: &str) -> Result<Self, PlanParseError> {
        let err = |clause: &str, msg: &str| PlanParseError {
            clause: clause.to_string(),
            msg: msg.to_string(),
        };
        let num = |clause: &str, s: &str| -> Result<u64, PlanParseError> {
            let s = s.trim();
            let parsed = match s.strip_prefix("0x") {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => s.parse(),
            };
            parsed.map_err(|_| err(clause, "expected a number"))
        };
        let mut events = Vec::new();
        for clause in spec.split(',').map(str::trim).filter(|c| !c.is_empty()) {
            let parts: Vec<&str> = clause.split(':').map(str::trim).collect();
            if parts.len() < 2 {
                return Err(err(clause, "expected `cycle:kind[:args]`"));
            }
            let (cycle, tile) = match parts[0].split_once('@') {
                Some((c, t)) => (num(clause, c)?, num(clause, t)? as u32),
                None => (num(clause, parts[0])?, 0),
            };
            let arg = |i: usize| -> Result<u64, PlanParseError> {
                num(clause, parts.get(i).copied().ok_or_else(|| err(clause, "missing argument"))?)
            };
            let kind = match parts[1] {
                "sram_bit_flip" => {
                    FaultKind::SramBitFlip { addr: arg(2)? as u32, bit: (arg(3)? % 32) as u8 }
                }
                "drop_response" => FaultKind::DropResponse,
                "delay_response" => FaultKind::DelayResponse { cycles: arg(2)?.max(1) },
                "engine_stall" => FaultKind::EngineStall { cycles: arg(2)?.max(1) },
                "buffer_corrupt" => FaultKind::BufferCorrupt { bit: (arg(2)? % 32) as u8 },
                "mmr_sticky_error" => FaultKind::MmrStickyError,
                "tile_kill" => FaultKind::TileKill,
                other => return Err(err(clause, &format!("unknown fault kind `{other}`"))),
            };
            events.push(FaultEvent::on_tile(cycle, kind, tile));
        }
        Ok(FaultPlan::new(events))
    }

    /// All events, in cycle order (applied and pending).
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of events not yet handed out by [`FaultPlan::take_due`].
    pub fn remaining(&self) -> usize {
        self.events.len() - self.cursor
    }

    /// True when no events are scheduled at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Cycle of the next pending fault — the scheduler's wake bound: a
    /// skipped span must never jump past it.
    pub fn next_cycle(&self) -> Option<u64> {
        self.events.get(self.cursor).map(|e| e.cycle)
    }

    /// The not-yet-taken events, in cycle order. Lets a scheduler look past
    /// events it knows are inert (e.g. a tile-targeted fault whose tile has
    /// already halted) when computing its wake bound.
    pub fn pending(&self) -> &[FaultEvent] {
        &self.events[self.cursor..]
    }

    /// Advance the cursor over every event with `cycle <= now` and return
    /// them (in cycle order) for injection.
    pub fn take_due(&mut self, now: u64) -> &[FaultEvent] {
        let start = self.cursor;
        while self.cursor < self.events.len() && self.events[self.cursor].cycle <= now {
            self.cursor += 1;
        }
        &self.events[start..self.cursor]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn seeded_plans_are_reproducible_and_sorted() {
        let cfg = FaultConfig { seed: 42, max_faults: 8, horizon: 1000 };
        let a = FaultPlan::from_seed(cfg, 1 << 16);
        let b = FaultPlan::from_seed(cfg, 1 << 16);
        assert_eq!(a, b);
        assert_eq!(a.events().len(), 8);
        assert!(a.events().windows(2).all(|w| w[0].cycle <= w[1].cycle));
        assert!(a.events().iter().all(|e| e.cycle >= 1 && e.cycle <= 1000));
    }

    #[test]
    fn zero_seed_is_the_empty_plan() {
        let plan = FaultPlan::from_seed(FaultConfig::default(), 1 << 16);
        assert!(plan.is_empty());
        assert_eq!(plan.next_cycle(), None);
    }

    #[test]
    fn different_seeds_differ() {
        let base = FaultConfig { seed: 1, max_faults: 4, horizon: 10_000 };
        let a = FaultPlan::from_seed(base, 1 << 16);
        let b = FaultPlan::from_seed(FaultConfig { seed: 2, ..base }, 1 << 16);
        assert_ne!(a, b);
    }

    #[test]
    fn take_due_walks_the_cursor_in_order() {
        let mut plan = FaultPlan::new(vec![
            FaultEvent::new(30, FaultKind::DropResponse),
            FaultEvent::new(10, FaultKind::MmrStickyError),
            FaultEvent::new(10, FaultKind::BufferCorrupt { bit: 1 }),
        ]);
        assert_eq!(plan.next_cycle(), Some(10));
        assert!(plan.take_due(9).is_empty());
        let due = plan.take_due(10);
        assert_eq!(due.len(), 2);
        assert_eq!(plan.next_cycle(), Some(30));
        assert_eq!(plan.take_due(100).len(), 1);
        assert_eq!(plan.remaining(), 0);
        assert_eq!(plan.next_cycle(), None);
    }

    #[test]
    fn parse_round_trips_each_kind() {
        let plan = FaultPlan::parse(
            "10:sram_bit_flip:0x200:7, 20:drop_response, 30:delay_response:64, \
             40:engine_stall:5, 50:buffer_corrupt:31, 60:mmr_sticky_error",
        )
        .unwrap();
        assert_eq!(
            plan.events(),
            &[
                FaultEvent::new(10, FaultKind::SramBitFlip { addr: 0x200, bit: 7 }),
                FaultEvent::new(20, FaultKind::DropResponse),
                FaultEvent::new(30, FaultKind::DelayResponse { cycles: 64 }),
                FaultEvent::new(40, FaultKind::EngineStall { cycles: 5 }),
                FaultEvent::new(50, FaultKind::BufferCorrupt { bit: 31 }),
                FaultEvent::new(60, FaultKind::MmrStickyError),
            ]
        );
    }

    #[test]
    fn parse_tile_suffix_targets_a_tile() {
        let plan = FaultPlan::parse("100@2:drop_response, 5:engine_stall:8").unwrap();
        assert_eq!(plan.events()[0].tile, 0);
        assert_eq!(plan.events()[0].cycle, 5);
        assert_eq!(plan.events()[1], FaultEvent::on_tile(100, FaultKind::DropResponse, 2));
        assert!(FaultPlan::parse("100@x:drop_response").is_err());
    }

    #[test]
    fn parse_rejects_malformed_clauses() {
        assert!(FaultPlan::parse("nonsense").is_err());
        assert!(FaultPlan::parse("10:unknown_kind").is_err());
        assert!(FaultPlan::parse("x:drop_response").is_err());
        assert!(FaultPlan::parse("10:sram_bit_flip").is_err()); // missing args
        assert!(FaultPlan::parse("").unwrap().is_empty());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(FaultKind::MmrStickyError.label(), "mmr_sticky_error");
        assert_eq!(FaultKind::SramBitFlip { addr: 0, bit: 0 }.label(), "sram_bit_flip");
        assert_eq!(FaultKind::TileKill.label(), "tile_kill");
    }

    #[test]
    fn tile_kill_is_the_only_fatal_kind_and_parses() {
        assert!(FaultKind::TileKill.is_fatal());
        for k in [
            FaultKind::SramBitFlip { addr: 0, bit: 0 },
            FaultKind::DropResponse,
            FaultKind::DelayResponse { cycles: 1 },
            FaultKind::EngineStall { cycles: 1 },
            FaultKind::BufferCorrupt { bit: 0 },
            FaultKind::MmrStickyError,
        ] {
            assert!(!k.is_fatal(), "{} must be retryable", k.label());
        }
        let plan = FaultPlan::parse("100@3:tile_kill").unwrap();
        assert_eq!(plan.events(), &[FaultEvent::on_tile(100, FaultKind::TileKill, 3)]);
        // Seeded plans model transient hardware mischief; they never kill
        // a tile outright.
        for seed in 1..64u64 {
            let cfg = FaultConfig { seed, max_faults: 16, horizon: 1000 };
            let plan = FaultPlan::from_seed(cfg, 1 << 16);
            assert!(plan.events().iter().all(|e| !e.kind.is_fatal()));
        }
    }

    #[test]
    fn pending_tracks_the_cursor() {
        let mut plan = FaultPlan::new(vec![
            FaultEvent::new(10, FaultKind::DropResponse),
            FaultEvent::new(20, FaultKind::MmrStickyError),
        ]);
        assert_eq!(plan.pending().len(), 2);
        let _ = plan.take_due(10);
        assert_eq!(plan.pending(), &[FaultEvent::new(20, FaultKind::MmrStickyError)]);
        let _ = plan.take_due(20);
        assert!(plan.pending().is_empty());
    }

    proptest! {
        /// Seeded generation never panics and always respects its bounds,
        /// for any seed/horizon/memory size.
        #[test]
        fn seeded_plan_bounds(
            seed in 0u64..=u64::MAX,
            horizon in 0u64..1 << 40,
            sram in 0u32..=u32::MAX,
        ) {
            let cfg = FaultConfig { seed, max_faults: 4, horizon };
            let plan = FaultPlan::from_seed(cfg, sram);
            for e in plan.events() {
                prop_assert!(e.cycle >= 1);
                if let FaultKind::SramBitFlip { addr, bit } = e.kind {
                    prop_assert!(bit < 32);
                    prop_assert!(sram < 8 || addr + 4 <= sram.max(4));
                    prop_assert!(addr.is_multiple_of(4));
                }
            }
        }

        /// The parser never panics on arbitrary input.
        #[test]
        fn parse_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
            let spec = String::from_utf8_lossy(&bytes);
            let _ = FaultPlan::parse(&spec);
        }
    }
}
