//! A persistent work-stealing worker pool for embarrassingly parallel
//! experiment cells.
//!
//! The figure sweeps are grids of independent `(figure, sparsity, config)`
//! cells and the serving layer (`hht-serve`) dispatches job waves — both
//! are fan-outs of deterministic simulations. Earlier versions spawned a
//! fresh set of scoped threads per call; this version keeps one global
//! [`WorkerPool`] of parked threads alive for the whole process and hands
//! each [`parallel_map`] / [`try_parallel_map`] call to it as a *batch*:
//! indices are dealt round-robin into per-participant deques, each
//! participant pops its own deque from the front and steals from the back
//! of others when dry. The calling thread is always participant 0 and
//! works too, so a pool with zero workers (or a fully busy pool) still
//! completes every batch — workers accelerate, they are never load-bearing
//! for progress.
//!
//! Results stay **deterministic and in input order**: every cell writes
//! into the slot of its input index, so the collected `Vec` is independent
//! of scheduling. With `jobs == 1` the cells run in the calling thread, in
//! order, reproducing serial behaviour exactly (including the order of any
//! side effects such as progress prints).
//!
//! A panicking cell (e.g. a deadlocked configuration hitting the system
//! watchdog) fails only its own slot: [`try_parallel_map`] surfaces it as a
//! [`CellError`] so the rest of a sweep still completes.
//!
//! # Safety of the borrowed-closure hand-off
//!
//! A batch's task is a `&(dyn Fn(usize) + Sync)` borrowed from the
//! caller's stack, type-erased to a raw pointer so the long-lived workers
//! can hold it (the classic scoped-pool lifetime erasure). The erasure is
//! sound because of three invariants, each enforced in exactly one place:
//!
//! 1. **Deref only between a successful deque pop and the matching
//!    `pending` decrement** ([`Batch::work`]). An empty pop touches only
//!    the heap-owned `Batch` state, never the erased pointer.
//! 2. **The caller returns only after `pending == 0`** ([`WorkerPool::run`]
//!    waits on the batch's condvar). Indices are enqueued once, before
//!    publication, so `pending == 0` means every index was popped *and*
//!    its task invocation finished — no future pop can succeed, hence no
//!    future deref.
//! 3. **Capture thread-safety is compiler-checked at the coercion site**:
//!    the closure built in [`try_parallel_map`] is only `Sync` because its
//!    captures are (`Mutex<Option<T>>` demands `T: Send`, etc.), so the
//!    bounds the scoped-thread version needed are still enforced
//!    structurally.
//!
//! A worker that wakes late and fetches an already-drained batch sees only
//! empty deques (kept alive by its `Arc`) and goes back to sleep.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// The host's available parallelism (the `--jobs` default), at least 1.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// One failed cell: its input index and the panic payload rendered to text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellError {
    /// Index of the failed item in the input order.
    pub index: usize,
    /// The panic message.
    pub message: String,
}

impl std::fmt::Display for CellError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cell {} failed: {}", self.index, self.message)
    }
}

impl std::error::Error for CellError {}

/// The erased borrow of a batch's task closure. Raw pointers are neither
/// `Send` nor `Sync`; these impls are what moves the borrow across threads
/// and they are sound only under the protocol in the module docs.
struct ErasedTask(*const (dyn Fn(usize) + Sync));

unsafe impl Send for ErasedTask {}
unsafe impl Sync for ErasedTask {}

/// One fan-out: the erased task, the per-participant index deques, and the
/// completion accounting. Heap-owned via `Arc` so late-waking workers can
/// inspect it safely after the caller has moved on.
struct Batch {
    task: ErasedTask,
    deques: Vec<Mutex<VecDeque<usize>>>,
    /// Indices not yet *completed* (popped and run). The caller's return
    /// gate: see safety invariant 2.
    pending: AtomicUsize,
    /// Deque count: caller (slot 0) plus the eligible workers.
    participants: usize,
    /// Set when a task invocation unwound past the task itself (the pool
    /// still completes the batch; [`WorkerPool::run`] re-panics on the
    /// caller so the escape stays visible).
    tripped: AtomicBool,
    done: Mutex<bool>,
    done_cv: Condvar,
}

impl Batch {
    /// Pop the participant's own deque front, else steal from the back of
    /// the others.
    fn pop(&self, slot: usize) -> Option<usize> {
        if let Some(i) = self.deques[slot].lock().unwrap().pop_front() {
            return Some(i);
        }
        for k in 1..self.participants {
            let victim = (slot + k) % self.participants;
            if let Some(i) = self.deques[victim].lock().unwrap().pop_back() {
                return Some(i);
            }
        }
        None
    }

    /// Drain work as participant `slot` until every deque is dry.
    fn work(&self, slot: usize) {
        while let Some(i) = self.pop(slot) {
            {
                // SAFETY: `i` was just popped, so the caller of
                // `WorkerPool::run` is still parked inside it (invariant 2)
                // and the closure it borrows is alive. The pointer is only
                // dereferenced here, between the pop and the decrement
                // below (invariant 1).
                let task = unsafe { &*self.task.0 };
                if catch_unwind(AssertUnwindSafe(|| task(i))).is_err() {
                    self.tripped.store(true, Ordering::Relaxed);
                }
            }
            if self.pending.fetch_sub(1, Ordering::Release) == 1 {
                *self.done.lock().unwrap() = true;
                self.done_cv.notify_all();
            }
        }
    }
}

struct PoolState {
    /// Bumped on every published batch; workers use it to tell "new batch"
    /// from a spurious wakeup.
    epoch: u64,
    batch: Option<Arc<Batch>>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    work_cv: Condvar,
}

/// A persistent pool of parked worker threads that cooperatively drain
/// batches of indexed tasks with per-participant work-stealing deques.
///
/// The calling thread always participates, so correctness never depends on
/// worker availability; `jobs` caps how many workers may join a given
/// batch. Construction parks the threads on a condvar — an idle pool costs
/// nothing but stack reservations.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: usize,
}

impl WorkerPool {
    /// Spawn a pool with `workers` threads (0 is valid: every batch then
    /// runs entirely on its caller).
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState { epoch: 0, batch: None, shutdown: false }),
            work_cv: Condvar::new(),
        });
        for w in 0..workers {
            let sh = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("hht-exec-worker-{w}"))
                .spawn(move || worker_loop(sh, w))
                .expect("spawn pool worker");
        }
        WorkerPool { shared, workers }
    }

    /// The process-wide pool used by [`parallel_map`] /
    /// [`try_parallel_map`]. Sized to at least 3 workers even on small
    /// hosts so the stealing paths are genuinely exercised; parked workers
    /// beyond the core count cost nothing.
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(|| WorkerPool::new(default_jobs().max(4) - 1))
    }

    /// Worker threads owned by this pool.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Run `task(i)` for every `i in 0..n` across the caller plus at most
    /// `jobs - 1` pool workers, returning when all `n` invocations have
    /// completed.
    ///
    /// The task must be safe to call concurrently from multiple threads
    /// (it is `Sync`) and should catch its own panics; one that unwinds is
    /// contained per-invocation, the batch still completes, and this call
    /// then panics on the caller to keep the escape visible.
    pub fn run(&self, jobs: usize, n: usize, task: &(dyn Fn(usize) + Sync)) {
        if n == 0 {
            return;
        }
        let participants = 1 + jobs.saturating_sub(1).min(self.workers);
        let mut deques: Vec<VecDeque<usize>> = (0..participants).map(|_| VecDeque::new()).collect();
        for i in 0..n {
            deques[i % participants].push_back(i);
        }
        // SAFETY: the transmute only erases the borrow's lifetime from the
        // fat pointer's type; invariants 1 and 2 (module docs) ensure no
        // dereference happens after this call returns, i.e. while the
        // borrow could be dead.
        let task: *const (dyn Fn(usize) + Sync + 'static) =
            unsafe { std::mem::transmute(task as *const (dyn Fn(usize) + Sync)) };
        let batch = Arc::new(Batch {
            task: ErasedTask(task),
            deques: deques.into_iter().map(Mutex::new).collect(),
            pending: AtomicUsize::new(n),
            participants,
            tripped: AtomicBool::new(false),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        });
        if participants > 1 {
            let mut st = self.shared.state.lock().unwrap();
            st.epoch += 1;
            st.batch = Some(Arc::clone(&batch));
            drop(st);
            self.shared.work_cv.notify_all();
        }
        batch.work(0);
        let mut done = batch.done.lock().unwrap();
        while !*done {
            done = batch.done_cv.wait(done).unwrap();
        }
        drop(done);
        // Acquire pairs with the workers' Release decrements: all task
        // effects (result-slot writes) are visible to the caller here.
        assert_eq!(batch.pending.load(Ordering::Acquire), 0);
        if participants > 1 {
            let mut st = self.shared.state.lock().unwrap();
            if st.batch.as_ref().is_some_and(|b| Arc::ptr_eq(b, &batch)) {
                st.batch = None;
            }
        }
        if batch.tripped.load(Ordering::Relaxed) {
            panic!("a worker-pool task panicked past its own handler");
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        let mut st = self.shared.state.lock().unwrap();
        st.shutdown = true;
        drop(st);
        self.shared.work_cv.notify_all();
    }
}

fn worker_loop(shared: Arc<Shared>, me: usize) {
    let mut seen = 0u64;
    loop {
        let batch = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen {
                    seen = st.epoch;
                    break st.batch.clone();
                }
                st = shared.work_cv.wait(st).unwrap();
            }
        };
        if let Some(b) = batch {
            // Caller is slot 0; this worker owns slot me + 1 when the
            // batch's `jobs` cap admits it.
            let slot = me + 1;
            if slot < b.participants {
                b.work(slot);
            }
        }
    }
}

/// Run `f(index, item)` over every item on up to `jobs` threads, returning
/// results in input order. Panics (after every cell has finished) if any
/// cell panicked, with a message naming **every** failed cell's input
/// index and original panic payload — use [`try_parallel_map`] to keep
/// partial results instead.
pub fn parallel_map<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let results = try_parallel_map(jobs, items, f);
    let failures: Vec<&CellError> = results.iter().filter_map(|r| r.as_ref().err()).collect();
    if !failures.is_empty() {
        let detail: Vec<String> = failures.iter().map(|e| e.to_string()).collect();
        panic!("{} of {} cells failed: {}", failures.len(), results.len(), detail.join("; "));
    }
    results.into_iter().map(|r| r.expect("failures handled above")).collect()
}

/// Like [`parallel_map`], but a panicking cell yields `Err(CellError)` in
/// its slot instead of poisoning the whole sweep.
///
/// Contract:
///
/// - **Every cell runs.** A panic in one cell never prevents other cells
///   from being claimed and executed (no short-circuit), so a sweep with
///   one deadlocked configuration still produces every other result.
/// - **Slots are in input order.** `out[i]` is always the outcome of
///   `items[i]`, independent of thread scheduling.
/// - **`Err(CellError)` localizes the failure**: `index` is the input
///   index and `message` is the panic payload rendered to text (`&str`
///   and `String` payloads verbatim; anything else as a placeholder).
///   The panic does not cross the sweep boundary — the calling thread
///   never unwinds.
/// - **`jobs == 1` is exactly serial**: cells run on the calling thread
///   in input order, so side-effect order is reproducible.
pub fn try_parallel_map<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<Result<R, CellError>>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let jobs = jobs.max(1);
    if jobs == 1 || items.len() <= 1 {
        // Serial fast path: calling thread, input order.
        return items.into_iter().enumerate().map(|(i, item)| run_cell(&f, i, item)).collect();
    }
    let n = items.len();
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let slots: Vec<Mutex<Option<Result<R, CellError>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    let task = |i: usize| {
        let item = work[i].lock().unwrap().take().expect("each cell claimed once");
        let r = run_cell(&f, i, item);
        *slots[i].lock().unwrap() = Some(r);
    };
    WorkerPool::global().run(jobs, n, &task);
    slots.into_iter().map(|m| m.into_inner().unwrap().expect("every cell ran")).collect()
}

fn run_cell<T, R>(f: &(impl Fn(usize, T) -> R + Sync), i: usize, item: T) -> Result<R, CellError> {
    catch_unwind(AssertUnwindSafe(|| f(i, item)))
        .map_err(|e| CellError { index: i, message: panic_message(e.as_ref()) })
}

fn panic_message(payload: &dyn std::any::Any) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order() {
        for jobs in [1, 2, 8] {
            let out = parallel_map(jobs, (0..100).collect(), |i, x: usize| {
                assert_eq!(i, x);
                // Stagger so completion order differs from input order.
                if x.is_multiple_of(7) {
                    std::thread::yield_now();
                }
                x * x
            });
            assert_eq!(out, (0..100).map(|x| x * x).collect::<Vec<_>>());
        }
    }

    #[test]
    fn serial_jobs_run_on_the_calling_thread() {
        let id = std::thread::current().id();
        parallel_map(1, vec![(); 4], |_, ()| assert_eq!(std::thread::current().id(), id));
    }

    #[test]
    fn a_panicking_cell_fails_alone() {
        for jobs in [1, 4] {
            let out = try_parallel_map(jobs, (0..10).collect(), |_, x: usize| {
                if x == 3 {
                    panic!("boom {x}");
                }
                x
            });
            for (i, r) in out.iter().enumerate() {
                if i == 3 {
                    let e = r.as_ref().unwrap_err();
                    assert_eq!(e.index, 3);
                    assert!(e.message.contains("boom 3"));
                } else {
                    assert_eq!(*r.as_ref().unwrap(), i);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "cell 2 failed")]
    fn parallel_map_propagates_cell_panics() {
        parallel_map(4, (0..8).collect(), |_, x: usize| assert_ne!(x, 2));
    }

    #[test]
    fn parallel_map_panic_names_every_failed_cell() {
        let caught = std::panic::catch_unwind(|| {
            parallel_map(4, (0..8).collect(), |_, x: usize| {
                if x == 2 || x == 5 {
                    panic!("cell payload {x}");
                }
                x
            });
        })
        .unwrap_err();
        let msg = caught.downcast_ref::<String>().expect("formatted panic message");
        assert!(msg.contains("2 of 8 cells failed"), "{msg}");
        assert!(msg.contains("cell 2 failed: cell payload 2"), "{msg}");
        assert!(msg.contains("cell 5 failed: cell payload 5"), "{msg}");
    }

    #[test]
    fn empty_and_oversubscribed_inputs() {
        assert!(parallel_map(8, Vec::<u32>::new(), |_, x| x).is_empty());
        let out = parallel_map(64, vec![1u32, 2], |_, x| x + 1);
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn pool_workers_genuinely_participate() {
        // A 2-party barrier can only be satisfied by two *concurrent*
        // threads: if the pool never lent a worker, the caller would wedge
        // on the first cell. Completion therefore proves participation.
        let barrier = std::sync::Barrier::new(2);
        let out = parallel_map(2, vec![10usize, 20], |_, x| {
            barrier.wait();
            x + 1
        });
        assert_eq!(out, vec![11, 21]);
    }

    #[test]
    fn pool_is_reused_across_batches() {
        let global = WorkerPool::global() as *const WorkerPool;
        for _ in 0..3 {
            let again = WorkerPool::global() as *const WorkerPool;
            assert_eq!(global, again);
            let out = parallel_map(8, (0..32).collect(), |_, x: usize| x * 2);
            assert_eq!(out, (0..32).map(|x| x * 2).collect::<Vec<_>>());
        }
        assert!(WorkerPool::global().workers() >= 3);
    }

    #[test]
    fn workerless_pool_completes_on_the_caller() {
        let pool = WorkerPool::new(0);
        let hits = AtomicUsize::new(0);
        pool.run(8, 17, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 17);
    }

    #[test]
    fn dropping_a_private_pool_does_not_hang() {
        let pool = WorkerPool::new(2);
        let hits = AtomicUsize::new(0);
        pool.run(3, 9, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 9);
        drop(pool);
    }

    #[test]
    fn jobs_cap_limits_participants_but_not_completion() {
        // jobs=2 on a >=3-worker global pool: at most one worker joins,
        // every cell still completes in order.
        let out = parallel_map(2, (0..50).collect(), |_, x: usize| x + 7);
        assert_eq!(out, (0..50).map(|x| x + 7).collect::<Vec<_>>());
    }
}
