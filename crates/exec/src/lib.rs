//! A minimal scoped-thread work queue for embarrassingly parallel
//! experiment cells.
//!
//! The figure sweeps are grids of independent `(figure, sparsity, config)`
//! cells, each a deterministic simulation. This crate fans those cells out
//! across host threads with `std::thread::scope` — no external
//! dependencies — while keeping results **deterministic and in input
//! order**: every cell writes into the slot of its input index, so the
//! collected `Vec` is independent of scheduling. With `jobs == 1` the cells
//! run in the calling thread, in order, reproducing serial behaviour
//! exactly (including the order of any side effects such as progress
//! prints).
//!
//! A panicking cell (e.g. a deadlocked configuration hitting the system
//! watchdog) fails only its own slot: [`try_parallel_map`] surfaces it as a
//! [`CellError`] so the rest of a sweep still completes.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The host's available parallelism (the `--jobs` default), at least 1.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// One failed cell: its input index and the panic payload rendered to text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellError {
    /// Index of the failed item in the input order.
    pub index: usize,
    /// The panic message.
    pub message: String,
}

impl std::fmt::Display for CellError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cell {} failed: {}", self.index, self.message)
    }
}

impl std::error::Error for CellError {}

/// Run `f(index, item)` over every item on up to `jobs` threads, returning
/// results in input order. Panics (after every cell has finished) if any
/// cell panicked, with a message naming **every** failed cell's input
/// index and original panic payload — use [`try_parallel_map`] to keep
/// partial results instead.
pub fn parallel_map<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let results = try_parallel_map(jobs, items, f);
    let failures: Vec<&CellError> = results.iter().filter_map(|r| r.as_ref().err()).collect();
    if !failures.is_empty() {
        let detail: Vec<String> = failures.iter().map(|e| e.to_string()).collect();
        panic!("{} of {} cells failed: {}", failures.len(), results.len(), detail.join("; "));
    }
    results.into_iter().map(|r| r.expect("failures handled above")).collect()
}

/// Like [`parallel_map`], but a panicking cell yields `Err(CellError)` in
/// its slot instead of poisoning the whole sweep.
///
/// Contract:
///
/// - **Every cell runs.** A panic in one cell never prevents other cells
///   from being claimed and executed (no short-circuit), so a sweep with
///   one deadlocked configuration still produces every other result.
/// - **Slots are in input order.** `out[i]` is always the outcome of
///   `items[i]`, independent of thread scheduling.
/// - **`Err(CellError)` localizes the failure**: `index` is the input
///   index and `message` is the panic payload rendered to text (`&str`
///   and `String` payloads verbatim; anything else as a placeholder).
///   The panic does not cross the sweep boundary — the calling thread
///   never unwinds.
/// - **`jobs == 1` is exactly serial**: cells run on the calling thread
///   in input order, so side-effect order is reproducible.
pub fn try_parallel_map<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<Result<R, CellError>>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let jobs = jobs.max(1);
    if jobs == 1 || items.len() <= 1 {
        // Serial fast path: calling thread, input order.
        return items.into_iter().enumerate().map(|(i, item)| run_cell(&f, i, item)).collect();
    }
    let n = items.len();
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let slots: Vec<Mutex<Option<Result<R, CellError>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(n) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = work[i].lock().unwrap().take().expect("each cell claimed once");
                let r = run_cell(&f, i, item);
                *slots[i].lock().unwrap() = Some(r);
            });
        }
    });
    slots.into_iter().map(|m| m.into_inner().unwrap().expect("every cell ran")).collect()
}

fn run_cell<T, R>(f: &(impl Fn(usize, T) -> R + Sync), i: usize, item: T) -> Result<R, CellError> {
    catch_unwind(AssertUnwindSafe(|| f(i, item)))
        .map_err(|e| CellError { index: i, message: panic_message(e.as_ref()) })
}

fn panic_message(payload: &dyn std::any::Any) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order() {
        for jobs in [1, 2, 8] {
            let out = parallel_map(jobs, (0..100).collect(), |i, x: usize| {
                assert_eq!(i, x);
                // Stagger so completion order differs from input order.
                if x.is_multiple_of(7) {
                    std::thread::yield_now();
                }
                x * x
            });
            assert_eq!(out, (0..100).map(|x| x * x).collect::<Vec<_>>());
        }
    }

    #[test]
    fn serial_jobs_run_on_the_calling_thread() {
        let id = std::thread::current().id();
        parallel_map(1, vec![(); 4], |_, ()| assert_eq!(std::thread::current().id(), id));
    }

    #[test]
    fn a_panicking_cell_fails_alone() {
        for jobs in [1, 4] {
            let out = try_parallel_map(jobs, (0..10).collect(), |_, x: usize| {
                if x == 3 {
                    panic!("boom {x}");
                }
                x
            });
            for (i, r) in out.iter().enumerate() {
                if i == 3 {
                    let e = r.as_ref().unwrap_err();
                    assert_eq!(e.index, 3);
                    assert!(e.message.contains("boom 3"));
                } else {
                    assert_eq!(*r.as_ref().unwrap(), i);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "cell 2 failed")]
    fn parallel_map_propagates_cell_panics() {
        parallel_map(4, (0..8).collect(), |_, x: usize| assert_ne!(x, 2));
    }

    #[test]
    fn parallel_map_panic_names_every_failed_cell() {
        let caught = std::panic::catch_unwind(|| {
            parallel_map(4, (0..8).collect(), |_, x: usize| {
                if x == 2 || x == 5 {
                    panic!("cell payload {x}");
                }
                x
            });
        })
        .unwrap_err();
        let msg = caught.downcast_ref::<String>().expect("formatted panic message");
        assert!(msg.contains("2 of 8 cells failed"), "{msg}");
        assert!(msg.contains("cell 2 failed: cell payload 2"), "{msg}");
        assert!(msg.contains("cell 5 failed: cell payload 5"), "{msg}");
    }

    #[test]
    fn empty_and_oversubscribed_inputs() {
        assert!(parallel_map(8, Vec::<u32>::new(), |_, x| x).is_empty());
        let out = parallel_map(64, vec![1u32, 2], |_, x| x + 1);
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }
}
