//! Host-side simulator throughput: simulated cycles per host second.
//!
//! Each benchmark runs one SpMV kernel to completion and sets criterion's
//! `Throughput::Elements` to the run's simulated cycle count, so the
//! reported `elem/s` reads directly as *simulated cycles per host second*.
//! The grid crosses {baseline, HHT} x {skip on, skip off} at two sparsity
//! levels and two memory speeds:
//!
//! - `sram1` — the paper's Table-1 single-cycle SRAM. Almost every cycle
//!   does real work, so the event-driven scheduler mostly measures its own
//!   overhead here (the expectation is parity with the legacy loop).
//! - `slow16` — a 16-cycle word access, modelling the same system against
//!   slower memory. Long pending-read, port-arbitration and window-wait
//!   spans dominate, and the scheduler collapses each into one jump: the
//!   high-sparsity SpMV HHT run is the headline (>= 2x over legacy).
//!
//! Simulated cycle counts are identical between the two modes (enforced by
//! `tests/determinism.rs`), so the elem/s ratio is exactly the wall-clock
//! ratio.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hht_sparse::generate;
use hht_system::config::SystemConfig;
use hht_system::runner;

const N: usize = 192;

fn bench_sim_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_throughput");
    group.sample_size(10);
    for (mem, word_cycles) in [("sram1", 1), ("slow16", 16)] {
        for sparsity in [0.5, 0.9] {
            let m = generate::random_csr(N, N, sparsity, 21);
            let v = generate::random_dense_vector(N, 22);
            for skip in [true, false] {
                let cfg = SystemConfig::paper_default()
                    .with_ram_word_cycles(word_cycles)
                    .with_cycle_skip(skip);
                let mode = if skip { "skip" } else { "legacy" };
                let param = format!("{mem}/s{sparsity}");
                let base_cycles = runner::run_spmv_baseline(&cfg, &m, &v).stats.cycles;
                let hht_cycles = runner::run_spmv_hht(&cfg, &m, &v).stats.cycles;
                group.throughput(Throughput::Elements(base_cycles));
                group.bench_with_input(
                    BenchmarkId::new(format!("spmv_baseline/{mode}"), &param),
                    &cfg,
                    |b, cfg| b.iter(|| runner::run_spmv_baseline(cfg, &m, &v).stats.cycles),
                );
                group.throughput(Throughput::Elements(hht_cycles));
                group.bench_with_input(
                    BenchmarkId::new(format!("spmv_hht/{mode}"), &param),
                    &cfg,
                    |b, cfg| b.iter(|| runner::run_spmv_hht(cfg, &m, &v).stats.cycles),
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_sim_throughput);
criterion_main!(benches);
