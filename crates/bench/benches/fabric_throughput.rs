//! Fabric scheduler throughput: simulated cycles per host second, per
//! scheduler, across tile counts.
//!
//! Each benchmark runs one fabric SpMV to completion and sets criterion's
//! `Throughput::Elements` to the simulated wall-cycle count, so `elem/s`
//! reads directly as *simulated cycles per host second*. The grid crosses
//! N in {4, 8, 16} tiles x {event queue, lock-step, per-cycle} at two
//! memory speeds:
//!
//! - `sram1` — the paper's single-cycle SRAM. Idle spans are short, so
//!   the event queue mostly measures its own heap overhead here.
//! - `slow64` — a 64-cycle word access. Parked tiles dominate the
//!   schedule, and the event queue's per-tile parking pays off: the
//!   16-tile run is the headline (>= 10x over the per-cycle loop, the
//!   ratio `BENCH_core.json` gates).
//!
//! The three schedulers produce bit-identical simulated results (enforced
//! by `tests/determinism.rs`), so elem/s ratios are exactly wall-clock
//! ratios.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hht_sparse::generate;
use hht_system::config::SystemConfig;
use hht_system::{runner, FabricConfig};

const N: usize = 192;

fn bench_fabric_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("fabric_throughput");
    group.sample_size(10);
    let m = generate::random_csr(N, N, 0.5, 21);
    let v = generate::random_dense_vector(N, 22);
    for (mem, word_cycles) in [("sram1", 1u64), ("slow64", 64)] {
        let base = SystemConfig::paper_default().with_ram_word_cycles(word_cycles);
        for tiles in [4usize, 8, 16] {
            let fab = FabricConfig::scaled(tiles);
            for (mode, cfg) in [
                ("event_queue", base),
                ("lockstep", base.with_event_queue(false)),
                ("percycle", base.with_cycle_skip(false)),
            ] {
                let cycles = runner::run_spmv_fabric(&cfg, fab, &m, &v).stats.cycles;
                group.throughput(Throughput::Elements(cycles));
                group.bench_with_input(
                    BenchmarkId::new(format!("spmv/{mode}"), format!("{mem}/t{tiles}")),
                    &cfg,
                    |b, cfg| b.iter(|| runner::run_spmv_fabric(cfg, fab, &m, &v).stats.cycles),
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fabric_throughput);
criterion_main!(benches);
