//! Fig. 4 / Fig. 6 bench: SpMV baseline vs HHT (1 and 2 buffers) across
//! sparsity. Criterion measures wall-clock of the *simulation*; the
//! figure-relevant output (simulated cycles) is printed once per point so
//! `cargo bench` regenerates the series.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hht_sparse::generate;
use hht_system::config::SystemConfig;
use hht_system::runner;

const N: usize = 64;

fn bench_fig4(c: &mut Criterion) {
    let cfg = SystemConfig::paper_default();
    let mut group = c.benchmark_group("fig4_spmv");
    group.sample_size(10);
    for sparsity in [0.1, 0.5, 0.9] {
        let m = generate::random_csr(N, N, sparsity, 4);
        let v = generate::random_dense_vector(N, 5);
        // Print the simulated-cycle series once (the actual figure data).
        let base = runner::run_spmv_baseline(&cfg, &m, &v);
        let h1 = runner::run_spmv_hht(&cfg.with_buffers(1), &m, &v);
        let h2 = runner::run_spmv_hht(&cfg.with_buffers(2), &m, &v);
        println!(
            "fig4 point: sparsity={sparsity} base={} hht1={} hht2={} speedup2={:.3} cpu_wait={:.4}",
            base.stats.cycles,
            h1.stats.cycles,
            h2.stats.cycles,
            base.stats.cycles as f64 / h2.stats.cycles as f64,
            h2.stats.cpu_wait_frac()
        );
        group.bench_with_input(
            BenchmarkId::new("baseline", format!("s{sparsity}")),
            &sparsity,
            |b, _| b.iter(|| runner::run_spmv_baseline(&cfg, &m, &v).stats.cycles),
        );
        group.bench_with_input(
            BenchmarkId::new("hht_2buf", format!("s{sparsity}")),
            &sparsity,
            |b, _| b.iter(|| runner::run_spmv_hht(&cfg, &m, &v).stats.cycles),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
