//! Fig. 5 / Fig. 7 bench: SpMSpV baseline vs HHT variant-1 / variant-2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hht_sparse::generate;
use hht_system::config::SystemConfig;
use hht_system::runner;

const N: usize = 64;

fn bench_fig5(c: &mut Criterion) {
    let cfg = SystemConfig::paper_default();
    let mut group = c.benchmark_group("fig5_spmspv");
    group.sample_size(10);
    for sparsity in [0.1, 0.5, 0.9] {
        let m = generate::random_csr(N, N, sparsity, 14);
        let x = generate::random_sparse_vector(N, sparsity, 15);
        let base = runner::run_spmspv_baseline(&cfg, &m, &x);
        let v1 = runner::run_spmspv_hht_v1(&cfg, &m, &x);
        let v2 = runner::run_spmspv_hht_v2(&cfg, &m, &x);
        println!(
            "fig5 point: sparsity={sparsity} base={} v1={} v2={} wait_v1={:.4} wait_v2={:.4}",
            base.stats.cycles,
            v1.stats.cycles,
            v2.stats.cycles,
            v1.stats.cpu_wait_frac(),
            v2.stats.cpu_wait_frac()
        );
        group.bench_with_input(
            BenchmarkId::new("baseline", format!("s{sparsity}")),
            &sparsity,
            |b, _| b.iter(|| runner::run_spmspv_baseline(&cfg, &m, &x).stats.cycles),
        );
        group.bench_with_input(
            BenchmarkId::new("variant1", format!("s{sparsity}")),
            &sparsity,
            |b, _| b.iter(|| runner::run_spmspv_hht_v1(&cfg, &m, &x).stats.cycles),
        );
        group.bench_with_input(
            BenchmarkId::new("variant2", format!("s{sparsity}")),
            &sparsity,
            |b, _| b.iter(|| runner::run_spmspv_hht_v2(&cfg, &m, &x).stats.cycles),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
