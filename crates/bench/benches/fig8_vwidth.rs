//! Fig. 8 bench: SpMV speedup sensitivity to the vector width (1/4/8).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hht_sparse::generate;
use hht_system::config::SystemConfig;
use hht_system::runner;

const N: usize = 64;

fn bench_fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_vwidth");
    group.sample_size(10);
    let m = generate::random_csr(N, N, 0.5, 84);
    let v = generate::random_dense_vector(N, 85);
    for vl in [1usize, 4, 8] {
        let cfg = SystemConfig::paper_default().with_vlen(vl);
        let base = runner::run_spmv_baseline(&cfg, &m, &v);
        let hht = runner::run_spmv_hht(&cfg, &m, &v);
        println!(
            "fig8 point: vl={vl} base={} hht={} speedup={:.3}",
            base.stats.cycles,
            hht.stats.cycles,
            base.stats.cycles as f64 / hht.stats.cycles as f64
        );
        group.bench_with_input(BenchmarkId::new("baseline", vl), &vl, |b, _| {
            b.iter(|| runner::run_spmv_baseline(&cfg, &m, &v).stats.cycles)
        });
        group.bench_with_input(BenchmarkId::new("hht", vl), &vl, |b, _| {
            b.iter(|| runner::run_spmv_hht(&cfg, &m, &v).stats.cycles)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
