//! Observability overhead check.
//!
//! The event sinks are `Option`-gated: with tracing disabled every event
//! site costs one branch, so a full kernel run must cost the same cycles
//! *and* essentially the same wall-clock as the seed simulator (<2 %).
//! This bench runs the same HHT SpMV problem with sinks disabled and
//! enabled so the two distributions can be compared directly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hht_sparse::{generate, SparseFormat};
use hht_system::config::{SystemConfig, TraceConfig};
use hht_system::runner;

fn obs_overhead(c: &mut Criterion) {
    let m = generate::random_csr(96, 96, 0.6, 97);
    let v = generate::random_dense_vector(96, 98);

    let mut group = c.benchmark_group("obs_overhead");
    group.throughput(Throughput::Elements(m.nnz() as u64));
    let configs = [
        ("sinks_disabled", SystemConfig::paper_default()),
        ("sinks_enabled", SystemConfig::paper_default().with_trace(TraceConfig::enabled())),
    ];
    for (name, cfg) in configs {
        group.bench_function(BenchmarkId::new("spmv_hht", name), |b| {
            b.iter(|| runner::run_spmv_hht(&cfg, &m, &v).stats.cycles)
        });
    }
    group.finish();
}

criterion_group!(benches, obs_overhead);
criterion_main!(benches);
