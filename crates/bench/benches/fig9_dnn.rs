//! Fig. 9 bench: DNN fully-connected layers (scaled suite).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hht_sparse::{generate, SparseFormat};
use hht_system::config::SystemConfig;
use hht_system::runner;
use hht_workloads::dnn;

fn bench_fig9(c: &mut Criterion) {
    let cfg = SystemConfig::paper_default();
    let mut group = c.benchmark_group("fig9_dnn");
    group.sample_size(10);
    // A further-scaled suite keeps criterion iteration counts tractable.
    for layer in dnn::suite_scaled(16) {
        let m = layer.weights();
        let v = generate::random_dense_vector(m.cols(), layer.seed ^ 0x9);
        let base = runner::run_spmv_baseline(&cfg, &m, &v);
        let hht = runner::run_spmv_hht(&cfg, &m, &v);
        println!(
            "fig9 point: net={} base={} hht={} speedup={:.3}",
            layer.network,
            base.stats.cycles,
            hht.stats.cycles,
            base.stats.cycles as f64 / hht.stats.cycles as f64
        );
        group.bench_with_input(BenchmarkId::new("hht", &layer.network), &layer, |b, l| {
            let m = l.weights();
            let v = generate::random_dense_vector(m.cols(), l.seed ^ 0x9);
            b.iter(|| runner::run_spmv_hht(&cfg, &m, &v).stats.cycles)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
