//! §5.5 bench: the area/power/energy derivation (Synopsys-flow
//! substitute). These are analytical, so the criterion numbers measure
//! model-evaluation cost; the derived figures are printed once.

use criterion::{criterion_group, criterion_main, Criterion};
use hht_energy::{
    area_um2, energy_savings, hht_inventory, hht_to_ibex_area_ratio, ibex_inventory, power_watts,
    ClockSpeed, ProcessNode,
};
use hht_system::config::SystemConfig;
use hht_system::experiments;

fn bench_sec55(c: &mut Criterion) {
    println!("sec5.5 area ratio: {:.3} (paper: 0.389)", hht_to_ibex_area_ratio());
    let p_core = power_watts(&ibex_inventory(), ProcessNode::N16, ClockSpeed::MHz50);
    let p_sys =
        power_watts(&ibex_inventory().plus(&hht_inventory()), ProcessNode::N16, ClockSpeed::MHz50);
    println!(
        "sec5.5 power: core {:.0} uW (paper 223), core+HHT {:.0} uW (paper 314)",
        p_core.total_uw(),
        p_sys.total_uw()
    );
    let cfg = SystemConfig::paper_default();
    let p = experiments::spmv_point(&cfg, 64, 0.5, 2);
    let e = energy_savings(p.baseline_cycles, p.hht_cycles, ProcessNode::N16, ClockSpeed::MHz50);
    println!("sec5.5 energy savings @50% sparsity: {:.1}% (paper avg ~19%)", e.savings() * 100.0);

    c.bench_function("sec55_power_model", |b| {
        b.iter(|| {
            power_watts(
                &ibex_inventory().plus(&hht_inventory()),
                ProcessNode::N16,
                ClockSpeed::MHz50,
            )
            .total_w()
        })
    });
    c.bench_function("sec55_area_model", |b| {
        b.iter(|| area_um2(&hht_inventory(), ProcessNode::N16))
    });
}

criterion_group!(benches, bench_sec55);
criterion_main!(benches);
