//! Benches for the extension features: programmable HHT (§7), tiled SpMV
//! (§5.5 fn. 6), the dense-expansion crossover (§6) and the L1D
//! integration (§3.2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hht_sim::config::CacheGeometry;
use hht_sparse::{generate, SparseFormat};
use hht_system::config::SystemConfig;
use hht_system::{runner, tiling};

const N: usize = 64;

fn bench_programmable(c: &mut Criterion) {
    let cfg = SystemConfig::paper_default();
    let m = generate::random_csr(N, N, 0.5, 61);
    let v = generate::random_dense_vector(N, 62);
    let asic = runner::run_spmv_hht(&cfg, &m, &v);
    let prog = runner::run_spmv_hht_programmable(&cfg, &m, &v);
    println!(
        "programmable: asic={} prog={} ratio={:.2}",
        asic.stats.cycles,
        prog.stats.cycles,
        prog.stats.cycles as f64 / asic.stats.cycles as f64
    );
    let mut group = c.benchmark_group("programmable_hht");
    group.sample_size(10);
    group.bench_function("asic", |b| b.iter(|| runner::run_spmv_hht(&cfg, &m, &v).stats.cycles));
    group.bench_function("microprogram", |b| {
        b.iter(|| runner::run_spmv_hht_programmable(&cfg, &m, &v).stats.cycles)
    });
    group.finish();
}

fn bench_tiling(c: &mut Criterion) {
    let cfg = SystemConfig::paper_default();
    let m = generate::random_csr(N, N, 0.5, 71);
    let v = generate::random_dense_vector(N, 72);
    let mut group = c.benchmark_group("tiled_spmv");
    group.sample_size(10);
    for tile in [8usize, 16, 32] {
        let t = tiling::run_spmv_tiled(&cfg, &m, &v, tile);
        println!("tiling: tile={tile} tiles={} cycles={}", t.tiles, t.out.stats.cycles);
        group.bench_with_input(BenchmarkId::from_parameter(tile), &tile, |b, &tile| {
            b.iter(|| tiling::run_spmv_tiled(&cfg, &m, &v, tile).out.stats.cycles)
        });
    }
    group.finish();
}

fn bench_crossover(c: &mut Criterion) {
    let cfg = SystemConfig::paper_default();
    let m = generate::random_csr(N, N, 0.2, 81);
    let v = generate::random_dense_vector(N, 82);
    let dense = m.to_dense();
    println!(
        "crossover @20%: dense={} sparse={} hht={}",
        runner::run_dense_matvec(&cfg, &dense, &v).stats.cycles,
        runner::run_spmv_baseline(&cfg, &m, &v).stats.cycles,
        runner::run_spmv_hht(&cfg, &m, &v).stats.cycles
    );
    let mut group = c.benchmark_group("crossover");
    group.sample_size(10);
    group.bench_function("dense_matvec", |b| {
        b.iter(|| runner::run_dense_matvec(&cfg, &dense, &v).stats.cycles)
    });
    group.bench_function("sparse_hht", |b| {
        b.iter(|| runner::run_spmv_hht(&cfg, &m, &v).stats.cycles)
    });
    group.finish();
}

fn bench_l1d(c: &mut Criterion) {
    let slow = SystemConfig::paper_default().with_ram_word_cycles(4);
    let cached = slow.with_l1d(CacheGeometry::embedded_4k());
    let m = generate::random_csr(N, N, 0.5, 91);
    let v = generate::random_dense_vector(N, 92);
    println!(
        "l1d @4-cycle mem: uncached={} cached={}",
        runner::run_spmv_baseline(&slow, &m, &v).stats.cycles,
        runner::run_spmv_baseline(&cached, &m, &v).stats.cycles
    );
    let mut group = c.benchmark_group("l1d");
    group.sample_size(10);
    group.bench_function("uncached", |b| {
        b.iter(|| runner::run_spmv_baseline(&slow, &m, &v).stats.cycles)
    });
    group.bench_function("cached", |b| {
        b.iter(|| runner::run_spmv_baseline(&cached, &m, &v).stats.cycles)
    });
    group.finish();
}

criterion_group!(benches, bench_programmable, bench_tiling, bench_crossover, bench_l1d);
criterion_main!(benches);
