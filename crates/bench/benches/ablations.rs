//! Ablation benches for the design choices DESIGN.md calls out: buffer
//! count, SRAM latency, and the CSR-vs-SMASH format engines (§6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hht_sparse::{generate, SmashMatrix, SparseFormat};
use hht_system::config::SystemConfig;
use hht_system::runner;

const N: usize = 64;

fn bench_buffers(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_buffers");
    group.sample_size(10);
    let m = generate::random_csr(N, N, 0.5, 21);
    let v = generate::random_dense_vector(N, 22);
    for nb in [1usize, 2, 4] {
        let cfg = SystemConfig::paper_default().with_buffers(nb);
        let r = runner::run_spmv_hht(&cfg, &m, &v);
        println!("ablate_buffers: N={nb} cycles={}", r.stats.cycles);
        group.bench_with_input(BenchmarkId::from_parameter(nb), &nb, |b, _| {
            b.iter(|| runner::run_spmv_hht(&cfg, &m, &v).stats.cycles)
        });
    }
    group.finish();
}

fn bench_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_latency");
    group.sample_size(10);
    let m = generate::random_csr(N, N, 0.5, 31);
    let v = generate::random_dense_vector(N, 32);
    for wc in [1u64, 2, 4] {
        let cfg = SystemConfig::paper_default().with_ram_word_cycles(wc);
        let r = runner::run_spmv_hht(&cfg, &m, &v);
        println!(
            "ablate_latency: word_cycles={wc} cycles={} cpu_wait={:.4}",
            r.stats.cycles,
            r.stats.cpu_wait_frac()
        );
        group.bench_with_input(BenchmarkId::from_parameter(wc), &wc, |b, _| {
            b.iter(|| runner::run_spmv_hht(&cfg, &m, &v).stats.cycles)
        });
    }
    group.finish();
}

fn bench_format(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_format");
    group.sample_size(10);
    let cfg = SystemConfig::paper_default();
    let csr = generate::random_csr(N, N, 0.9, 41);
    let smash = SmashMatrix::from_triplets(N, N, &csr.triplets()).unwrap();
    let v = generate::random_dense_vector(N, 42);
    let r_csr = runner::run_spmv_hht(&cfg, &csr, &v);
    let r_smash = runner::run_smash_spmv_hht(&cfg, &smash, &v);
    println!(
        "ablate_format: csr={} smash={} (Sec. 6: SMASH indexing is more HHT work)",
        r_csr.stats.cycles, r_smash.stats.cycles
    );
    group.bench_function("csr_hht", |b| {
        b.iter(|| runner::run_spmv_hht(&cfg, &csr, &v).stats.cycles)
    });
    group.bench_function("smash_hht", |b| {
        b.iter(|| runner::run_smash_spmv_hht(&cfg, &smash, &v).stats.cycles)
    });
    group.finish();
}

criterion_group!(benches, bench_buffers, bench_latency, bench_format);
criterion_main!(benches);
