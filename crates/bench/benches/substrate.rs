//! Substrate micro-benchmarks: raw throughput of the pieces the
//! reproduction is built on (assembler, decoder, golden kernels, simulator
//! steps per host-second). Not a paper figure — this is the engineering
//! dashboard for the simulator itself.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hht_isa::{asm::assemble, decode, encode};
use hht_sparse::{generate, kernels};
use hht_system::config::SystemConfig;
use hht_system::runner;

fn bench_isa(c: &mut Criterion) {
    let program = assemble(
        "li a0, 8\nvsetvli t0, a0, e32, m1\nloop:\nvle32.v v1, (a1)\nvsll.vi v1, v1, 2\n\
         vluxei32.v v2, (a3), v1\nvfmacc.vv v0, v1, v2\naddi a1, a1, 32\naddi t1, t1, -1\n\
         bnez t1, loop\nebreak",
    )
    .unwrap();
    let words = program.words();
    let mut group = c.benchmark_group("isa");
    group.throughput(Throughput::Elements(words.len() as u64));
    group.bench_function("encode", |b| {
        b.iter(|| program.instrs().iter().map(|i| encode(*i)).collect::<Vec<_>>())
    });
    group.bench_function("decode", |b| {
        b.iter(|| words.iter().map(|w| decode(*w).unwrap()).collect::<Vec<_>>())
    });
    group.finish();
}

fn bench_golden(c: &mut Criterion) {
    let m = generate::random_csr(256, 256, 0.8, 7);
    let v = generate::random_dense_vector(256, 8);
    let x = generate::random_sparse_vector(256, 0.8, 9);
    let mut group = c.benchmark_group("golden_kernels");
    group.bench_function("spmv", |b| b.iter(|| kernels::spmv(&m, &v).unwrap()));
    group.bench_function("spmspv", |b| b.iter(|| kernels::spmspv(&m, &x).unwrap()));
    group.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let cfg = SystemConfig::paper_default();
    let m = generate::random_csr(64, 64, 0.5, 17);
    let v = generate::random_dense_vector(64, 18);
    // Simulated cycles per run, for a cycles/host-second figure of merit.
    let cycles = runner::run_spmv_baseline(&cfg, &m, &v).stats.cycles;
    let mut group = c.benchmark_group("simulator");
    group.throughput(Throughput::Elements(cycles));
    group.bench_function("spmv_baseline_64", |b| {
        b.iter(|| runner::run_spmv_baseline(&cfg, &m, &v).stats.cycles)
    });
    group.finish();
}

criterion_group!(benches, bench_isa, bench_golden, bench_simulator);
criterion_main!(benches);
