//! Text-table formatting for figure output.

/// Render a header + rows as an aligned text table.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    for (i, h) in headers.iter().enumerate() {
        out += &format!("{:>w$}  ", h, w = widths[i]);
    }
    out += "\n";
    for (i, _) in headers.iter().enumerate() {
        out += &format!("{:->w$}  ", "", w = widths[i]);
    }
    out += "\n";
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            out += &format!("{:>w$}  ", cell, w = widths[i]);
        }
        out += "\n";
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligns_columns() {
        let t = table(
            &["a", "long_header"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("long_header"));
        assert!(lines[2].ends_with("2  "));
    }
}
