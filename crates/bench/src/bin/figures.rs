//! Regenerate every table and figure of the paper's evaluation as text
//! series, plus the ablations DESIGN.md calls out.
//!
//! ```text
//! cargo run --release -p hht-bench --bin figures -- all [n]
//! cargo run --release -p hht-bench --bin figures -- fig4 [n]
//! ```
//!
//! Subcommands: `table1`, `fig4`, `fig5`, `fig6`, `fig7`, `fig8`, `fig9`,
//! `area`, `energy`, `motivation`, `crossover`, `conv`, `suite`,
//! `scaling`, `memory`, `ablate-baseline`, `ablate-programmable`,
//! `ablate-tiling`, `ablate-cache`, `ablate-buffers`, `ablate-latency`,
//! `ablate-format`, `all`. The default matrix dimension is 512 (the
//! paper's); passing a smaller `n` speeds everything up with the same
//! shapes.
//!
//! Each figure also prints the paper's reported band next to the measured
//! values so the comparison in EXPERIMENTS.md can be regenerated.
//!
//! Flags (usable with any subcommand):
//!
//! - `--jobs N` — run the independent experiment cells of each figure on up
//!   to `N` host threads (default: available parallelism). Results are
//!   collected in input order, so output is identical for every `N`;
//!   `--jobs 1` reproduces the serial run exactly.
//! - `--metrics-out <path>` — run one instrumented HHT SpMV and write the
//!   unified [`hht_system::MetricsSnapshot`] as JSON (validated: the
//!   per-cause stall histogram sums exactly to the coarse wait counters).
//!   With the `scaling` subcommand the flag instead writes the scaling
//!   sweep itself: one record per tile count, each embedding a validated
//!   `MetricsSnapshot` of the merged fabric statistics;
//! - `--trace-out <path>` — same run, exported as Chrome trace-event JSON
//!   (open in `chrome://tracing` or <https://ui.perfetto.dev>).
//! - `--fault-seed <u64>` — run one HHT SpMV under deterministic
//!   seed-driven fault injection (timeout/retry protocol and software
//!   fallback enabled) and print what was injected and how the system
//!   recovered. Seed 0 disables injection.
//! - `--fault-plan <spec>` — same report with an explicit schedule, e.g.
//!   `1000:drop_response,2000:sram_bit_flip:0x420:3` (see
//!   `hht_fault::FaultPlan::parse`). Overrides `--fault-seed`.
//! - `--bench-out <path>` — run the canonical benchmark suite (SpMV on the
//!   paper-default and slow-memory configurations) and write the
//!   `BENCH_core.json` report: deterministic simulated-cycle metrics plus
//!   informational host throughput, CPI stack, and bottleneck verdict.
//! - `--bench-compare <path>` — same suite, compared against a committed
//!   baseline report; exits non-zero when a deterministic metric regressed
//!   past `--tolerance <frac>` (default 0.02). Combine with `--bench-out`
//!   to also refresh the report.
//! - `--chaos` — run the chaos campaign: deterministic tile-kill schedules
//!   against the N-tile fabric with recovery enabled, summarising how each
//!   scenario degrades (survivors, failover attempts and cycles, degraded
//!   speedup) while the result stays bit-exact. With `--metrics-out` the
//!   summary is also exported as the `chaos` section of the scaling JSON.

use hht_bench::format::table;
use hht_energy::{ClockSpeed, ProcessNode};
use hht_system::config::SystemConfig;
use hht_system::experiments::{self, PAPER_SPARSITIES};

/// Remove `flag <value>` from `args`, returning the value when present.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() {
        eprintln!("{flag} requires a value");
        std::process::exit(2);
    }
    let value = args.remove(i + 1);
    args.remove(i);
    Some(value)
}

/// Remove a bare `flag` (no value) from `args`, returning its presence.
fn take_switch(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|a| a == flag) {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let metrics_out = take_flag(&mut args, "--metrics-out");
    let trace_out = take_flag(&mut args, "--trace-out");
    let fault_seed = take_flag(&mut args, "--fault-seed");
    let fault_plan = take_flag(&mut args, "--fault-plan");
    let bench_out = take_flag(&mut args, "--bench-out");
    let bench_compare = take_flag(&mut args, "--bench-compare");
    let serve_out = take_flag(&mut args, "--serve-out");
    let serve_compare = take_flag(&mut args, "--serve-compare");
    let chaos = take_switch(&mut args, "--chaos");
    let tolerance = match take_flag(&mut args, "--tolerance") {
        Some(v) => v.parse().ok().filter(|t: &f64| *t >= 0.0).unwrap_or_else(|| {
            eprintln!("--tolerance expects a non-negative fraction, got `{v}`");
            std::process::exit(2);
        }),
        None => 0.02,
    };
    let jobs = match take_flag(&mut args, "--jobs") {
        Some(v) => v.parse().ok().filter(|&j| j >= 1).unwrap_or_else(|| {
            eprintln!("--jobs expects a positive integer, got `{v}`");
            std::process::exit(2);
        }),
        None => hht_exec::default_jobs(),
    };
    let which = args.first().map(String::as_str).unwrap_or("all");
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(512);
    let cfg = SystemConfig::paper_default();
    if bench_out.is_some() || bench_compare.is_some() {
        bench_observatory(&cfg, n.min(256), bench_out, bench_compare, tolerance);
        return;
    }
    if serve_out.is_some() || serve_compare.is_some() || which == "serve" {
        serve_bench(&cfg, serve_out, serve_compare, tolerance);
        return;
    }
    if chaos {
        chaos_campaign(&cfg, n.min(128), metrics_out);
        return;
    }
    // `scaling` and `memory` consume --metrics-out themselves (they export
    // the sweep rather than the default single-tile SpMV snapshot).
    if which == "scaling" {
        scaling(&cfg, n, jobs, metrics_out);
        return;
    }
    if which == "memory" {
        memory(&cfg, n.min(128), jobs, metrics_out);
        return;
    }
    if metrics_out.is_some() || trace_out.is_some() {
        export_observability(&cfg, n.min(256), metrics_out, trace_out);
    }
    if fault_seed.is_some() || fault_plan.is_some() {
        fault_report(&cfg, n.min(256), fault_seed, fault_plan);
        return;
    }
    match which {
        "table1" => table1(&cfg),
        "fig4" => fig4(&cfg, n, jobs),
        "fig5" => fig5(&cfg, n, jobs),
        "fig6" => fig6(&cfg, n, jobs),
        "fig7" => fig7(&cfg, n, jobs),
        "fig8" => fig8(&cfg, n, jobs),
        "fig9" => fig9(&cfg, jobs),
        "area" => area(),
        "energy" => energy(&cfg, n, jobs),
        "motivation" => motivation(&cfg, n.min(256), jobs),
        "crossover" => crossover(&cfg, n.min(256), jobs),
        "ablate-baseline" => ablate_baseline(&cfg, n.min(256), jobs),
        "ablate-programmable" => ablate_programmable(&cfg, n.min(256), jobs),
        "ablate-tiling" => ablate_tiling(&cfg, n.min(256)),
        "conv" => conv(&cfg, jobs),
        "ablate-cache" => ablate_cache(&cfg, n.min(256)),
        "ablate-buffers" => ablate_buffers(&cfg, n),
        "ablate-latency" => ablate_latency(&cfg, n),
        "ablate-format" => ablate_format(&cfg, n.min(256), jobs),
        "suite" => suite(&cfg, n.min(256), jobs),
        "all" => {
            table1(&cfg);
            fig4(&cfg, n, jobs);
            fig5(&cfg, n, jobs);
            fig6(&cfg, n, jobs);
            fig7(&cfg, n, jobs);
            fig8(&cfg, n, jobs);
            fig9(&cfg, jobs);
            area();
            energy(&cfg, n, jobs);
            motivation(&cfg, n.min(256), jobs);
            crossover(&cfg, n.min(256), jobs);
            ablate_baseline(&cfg, n.min(256), jobs);
            ablate_programmable(&cfg, n.min(256), jobs);
            ablate_tiling(&cfg, n.min(256));
            conv(&cfg, jobs);
            ablate_cache(&cfg, n.min(256));
            ablate_buffers(&cfg, n);
            ablate_latency(&cfg, n);
            ablate_format(&cfg, n.min(256), jobs);
            suite(&cfg, n.min(256), jobs);
            scaling(&cfg, n, jobs, None);
            memory(&cfg, n.min(128), jobs, None);
        }
        other => {
            eprintln!("unknown figure `{other}`");
            std::process::exit(2);
        }
    }
}

/// One instrumented HHT SpMV run exporting the unified metrics snapshot
/// and/or the Chrome event trace.
fn export_observability(
    cfg: &SystemConfig,
    n: usize,
    metrics_out: Option<String>,
    trace_out: Option<String>,
) {
    use hht_system::config::TraceConfig;
    let traced = cfg.with_trace(TraceConfig::enabled());
    let m = hht_sparse::generate::random_csr(n, n, 0.5, 0xB5);
    let v = hht_sparse::generate::random_dense_vector(n, 0xB6);
    let out = hht_system::runner::run_spmv_hht(&traced, &m, &v);
    let snap = out.stats.snapshot().with_drops(out.dropped);
    snap.validate().expect("stall histogram must sum exactly to the wait counters");
    if let Some(path) = metrics_out {
        write_or_exit(&path, &snap.to_json());
        eprintln!("wrote metrics snapshot ({n}x{n} SpMV, 50% sparsity) to {path}");
    }
    if let Some(path) = trace_out {
        write_or_exit(&path, &hht_obs::chrome::chrome_trace_json(&out.events));
        eprintln!("wrote Chrome trace ({} events) to {path}", out.events.len());
    }
}

/// The `BENCH_core.json` observatory: run the canonical suite, print the
/// top-down CPI stack + bottleneck verdict + host self-profile for every
/// configuration, optionally write the report, and optionally gate the
/// deterministic metrics against a committed baseline.
fn bench_observatory(
    cfg: &SystemConfig,
    n: usize,
    bench_out: Option<String>,
    bench_compare: Option<String>,
    tolerance: f64,
) {
    use hht_prof::{classify, BenchConfig, BenchReport, CpiStack, HostProfile, Stopwatch};
    header(
        &format!("Benchmark observatory ({n}x{n} SpMV, 50% sparsity)"),
        "regression gate: simulated cycles are deterministic; host throughput is informational",
    );
    let mut report = BenchReport::new();
    let configs = [
        ("paper_default", *cfg),
        ("slow_memory", cfg.with_ram_word_cycles(4)),
        ("dram_slow_memory", cfg.with_dram(hht_mem::DramConfig::slow_300ns())),
    ];
    for (name, c) in configs {
        let mut sw = Stopwatch::start();
        let m = hht_sparse::generate::random_csr(n, n, 0.5, 0xBE);
        let v = hht_sparse::generate::random_dense_vector(n, 0xBF);
        let layout_secs = sw.lap();
        let base = hht_system::runner::run_spmv_baseline(&c, &m, &v);
        let hht = hht_system::runner::run_spmv_hht(&c, &m, &v);
        let run_secs = sw.lap();
        let stack = CpiStack::from_stats(&hht.stats)
            .unwrap_or_else(|e| panic!("{name}: CPI attribution failed: {e}"));
        assert_eq!(stack.total(), stack.cycles, "{name}: CPI stack must sum to total cycles");
        let verdict = classify(&stack, &hht.stats);
        let mut sched = base.sched;
        sched.add(&hht.sched);
        let host = HostProfile {
            layout_secs,
            run_secs,
            export_secs: 0.0,
            sim_cycles: base.stats.cycles + hht.stats.cycles,
            stepped_cycles: 0,
            skipped_cycles: 0,
        }
        .with_sched(&sched);
        print!("{}", stack.render(name));
        println!("  {}", verdict.render());
        let speedup = base.stats.cycles as f64 / hht.stats.cycles as f64;
        println!("  speedup {speedup:.3}x  ({} -> {})", base.stats.cycles, hht.stats.cycles);
        let mut entry = BenchConfig {
            name: name.to_string(),
            baseline_cycles: base.stats.cycles,
            hht_cycles: hht.stats.cycles,
            speedup,
            cpu_wait_frac: hht.stats.cpu_wait_frac(),
            issue_frac: stack.frac(stack.issue),
            host,
        };
        entry.host.export_secs = sw.lap();
        println!("  {}", entry.host.render());
        report.configs.push(entry);
    }
    report.fabric.push(fabric_throughput_entry());
    report.failover.push(failover_entry());
    if let Some(path) = &bench_out {
        write_or_exit(path, &report.to_json());
        eprintln!("wrote bench report to {path}");
    }
    if let Some(path) = bench_compare {
        let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline report {path}: {e}");
            std::process::exit(2);
        });
        let baseline = BenchReport::from_json(&committed).unwrap_or_else(|e| {
            eprintln!("{path}: {e}");
            std::process::exit(2);
        });
        let regressions = report.compare(&baseline, tolerance);
        if regressions.is_empty() {
            println!(
                "bench-compare: no regressions vs {path} (tolerance {:.2}%)",
                100.0 * tolerance
            );
        } else {
            eprintln!("bench-compare: {} regression(s) vs {path}:", regressions.len());
            for r in &regressions {
                eprintln!("  {r}");
            }
            std::process::exit(1);
        }
    }
}

/// The fabric scheduler-throughput entry: one fixed 16-tile slow-memory
/// SpMV timed under all three schedulers (per-cycle lock-step, lock-step
/// with global fast-forward, event queue). The workload is pinned —
/// independent of `--n` — so `wall_cycles` is a deterministic gate; the
/// host speedups are same-machine ratios gated against the absolute
/// `min_host_speedup` floor carried in the committed baseline.
fn fabric_throughput_entry() -> hht_prof::FabricBenchConfig {
    use hht_system::FabricConfig;
    use std::time::Instant;
    let tiles = 16;
    let ram_word_cycles = 64;
    let fab = FabricConfig::scaled(tiles);
    let cfg = SystemConfig::paper_default().with_ram_word_cycles(ram_word_cycles);
    let m = hht_sparse::generate::random_csr(256, 256, 0.05, 42);
    let v = hht_sparse::generate::random_dense_vector(256, 7);
    let run = |c: &SystemConfig| {
        let t0 = Instant::now();
        let out = hht_system::runner::run_spmv_fabric(c, fab, &m, &v);
        (out, t0.elapsed().as_secs_f64())
    };
    let (eq, eq_secs) = run(&cfg);
    let (ls, ls_secs) = run(&cfg.with_event_queue(false));
    let (pc, pc_secs) = run(&cfg.with_cycle_skip(false));
    assert_eq!(eq.stats, ls.stats, "event queue must be bit-identical to lock-step");
    assert_eq!(eq.stats, pc.stats, "event queue must be bit-identical to per-cycle");
    let wall = eq.stats.cycles;
    let mcs = |secs: f64| wall as f64 / secs / 1e6;
    let entry = hht_prof::FabricBenchConfig {
        name: "fabric_slow_memory_16t".to_string(),
        tiles,
        banks: fab.banks,
        ram_word_cycles,
        wall_cycles: wall,
        eq_mcycles_per_sec: mcs(eq_secs),
        lockstep_mcycles_per_sec: mcs(ls_secs),
        percycle_mcycles_per_sec: mcs(pc_secs),
        host_speedup_vs_lockstep: ls_secs / eq_secs,
        host_speedup_vs_percycle: pc_secs / eq_secs,
        min_host_speedup: 10.0,
    };
    println!(
        "fabric {} ({} tiles, {} banks, {}-cycle words): {} wall cycles",
        entry.name, entry.tiles, entry.banks, entry.ram_word_cycles, entry.wall_cycles
    );
    println!(
        "  event queue {:.1} Mc/s | lock-step {:.1} Mc/s ({:.2}x) | per-cycle {:.1} Mc/s ({:.2}x, floor {:.0}x)",
        entry.eq_mcycles_per_sec,
        entry.lockstep_mcycles_per_sec,
        entry.host_speedup_vs_lockstep,
        entry.percycle_mcycles_per_sec,
        entry.host_speedup_vs_percycle,
        entry.min_host_speedup,
    );
    entry
}

/// The degraded-mode failover gate: a pinned 8-tile SpMV with one tile
/// killed mid-run and recovery enabled. The workload and the kill schedule
/// are fixed — independent of `--n` — so both wall-cycle counts are
/// deterministic gates; the overhead ratio is carried for context.
fn failover_entry() -> hht_prof::FailoverBenchConfig {
    use hht_fault::{FaultEvent, FaultKind, FaultPlan};
    use hht_system::FabricConfig;
    let tiles = 8;
    let fab = FabricConfig::scaled(tiles);
    let cfg = SystemConfig::paper_default().with_recovery(true).with_hht_timeout(64);
    let m = hht_sparse::generate::random_csr(256, 256, 0.05, 42);
    let v = hht_sparse::generate::random_dense_vector(256, 7);
    let clean = hht_system::runner::run_spmv_fabric(&cfg, fab, &m, &v);
    let plan = FaultPlan::new(vec![FaultEvent::on_tile(200, FaultKind::TileKill, 3)]);
    let out = hht_system::runner::run_spmv_fabric_with_plan(&cfg, fab, &m, &v, plan);
    assert_eq!(out.y, clean.y, "degraded run must stay bit-exact");
    let rec = out.recovery.as_ref().expect("the kill must trigger recovery");
    let report = hht_prof::FabricRecoveryReport::new(&out.stats, rec)
        .expect("recovery attribution must hold for every tile");
    let entry = hht_prof::FailoverBenchConfig {
        name: "fabric_failover_8t".to_string(),
        tiles,
        banks: fab.banks,
        killed: 1,
        survivors: report.survivors(),
        failovers: out.stats.tiles.iter().map(|t| t.faults.failovers).sum(),
        clean_wall_cycles: clean.stats.cycles,
        degraded_wall_cycles: out.stats.cycles,
        degraded_overhead: out.stats.cycles as f64 / clean.stats.cycles as f64,
    };
    println!(
        "failover {} ({} tiles, {} killed): {} -> {} wall cycles ({:.2}x overhead, {} survivors)",
        entry.name,
        entry.tiles,
        entry.killed,
        entry.clean_wall_cycles,
        entry.degraded_wall_cycles,
        entry.degraded_overhead,
        entry.survivors,
    );
    entry
}

/// A deterministic mixed-tenant request stream for the serving benchmark:
/// 120 requests over 12 unique jobs (SpMV and both SpMSpV variants,
/// 64–512 rows, 90% sparsity) from 4 tenants. Repeats resubmit the same
/// `Arc`s, as a real client holding its working set would.
fn serve_stream() -> Vec<hht_serve::Request> {
    use hht_serve::Request;
    use std::sync::Arc;
    let sizes = [64usize, 64, 96, 128, 128, 192, 256, 512];
    let spmv: Vec<(Arc<hht_sparse::CsrMatrix>, Arc<hht_sparse::DenseVector>)> = sizes
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            let m = Arc::new(hht_sparse::generate::random_csr(n, n, 0.9, 0xE0 + i as u64));
            let v = Arc::new(hht_sparse::generate::random_dense_vector(n, 0xF0 + i as u64));
            (m, v)
        })
        .collect();
    let spmspv: Vec<(Arc<hht_sparse::CsrMatrix>, Arc<hht_sparse::SparseVector>)> =
        [96usize, 128, 256, 256]
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                let m = Arc::new(hht_sparse::generate::random_csr(n, n, 0.9, 0xA0 + i as u64));
                let x =
                    Arc::new(hht_sparse::generate::random_sparse_vector(n, 0.8, 0xB0 + i as u64));
                (m, x)
            })
            .collect();
    let uniques = spmv.len() + spmspv.len();
    (0..120)
        .map(|k| {
            let tenant = k % 4;
            // A fixed stride pattern so every unique job recurs but waves
            // still mix jobs (co-prime stride over the 12 uniques).
            let j = (k * 7 + k / 13) % uniques;
            if j < spmv.len() {
                let (m, v) = &spmv[j];
                Request::spmv(tenant, Arc::clone(m), Arc::clone(v))
            } else {
                let (m, x) = &spmspv[j - spmv.len()];
                if j.is_multiple_of(2) {
                    Request::spmspv_v1(tenant, Arc::clone(m), Arc::clone(x))
                } else {
                    Request::spmspv_v2(tenant, Arc::clone(m), Arc::clone(x))
                }
            }
        })
        .collect()
}

/// The `BENCH_serve.json` benchmark: the pinned mixed-tenant stream served
/// under three service configurations, each measured against the same
/// naive serial cold one-shot loop. Cache/pool/batch counters and
/// simulated cycles are deterministic gates; host jobs/sec is
/// informational, and the serve-vs-naive speedup (a same-machine ratio) is
/// gated only against the committed `min_speedup` floor.
fn serve_bench(
    cfg: &SystemConfig,
    serve_out: Option<String>,
    serve_compare: Option<String>,
    tolerance: f64,
) {
    use hht_serve::{
        naive_run_stream, percentile_us, ServeBenchReport, ServeConfigReport, Service,
        ServiceConfig,
    };
    use hht_system::FabricConfig;
    use std::time::Instant;
    let tiles = 4;
    let fab = FabricConfig::scaled(tiles);
    header(
        "Serving benchmark (mixed 64-512 stream, 90% sparsity, 4 tenants)",
        "warm-fabric service vs naive one-shot loop; deterministic counters are the CI gate",
    );
    let requests = serve_stream();
    let t0 = Instant::now();
    let naive = naive_run_stream(cfg, fab, &requests);
    let naive_secs = t0.elapsed().as_secs_f64();
    let naive_jps = requests.len() as f64 / naive_secs;
    println!("naive: {} jobs in {:.3}s ({:.1} jobs/s)", requests.len(), naive_secs, naive_jps);
    drop(naive);
    // (name, service config, committed speedup floor). The headline
    // replay configuration carries the >=5x acceptance floor; the other
    // floors leave headroom for CI machine noise (measured ~2.8x and
    // ~1.05x respectively — plan+pool alone saves only host setup, which
    // is a few percent of a sim-dominated job).
    let shapes = [
        ("mixed_replay_4t", ServiceConfig { batching: false, ..ServiceConfig::default() }, 5.0),
        ("mixed_batching_4t", ServiceConfig::default(), 1.5),
        (
            "plan_pool_only_4t",
            ServiceConfig { batching: false, replay: false, ..ServiceConfig::default() },
            0.8,
        ),
    ];
    let mut report = ServeBenchReport::new();
    for (name, scfg, floor) in shapes {
        let mut svc = Service::new(*cfg, fab, scfg);
        let t0 = Instant::now();
        let responses = svc.run_stream(&requests);
        let serve_secs = t0.elapsed().as_secs_f64();
        let stats = svc.stats();
        let lats: Vec<std::time::Duration> = responses.iter().map(|r| r.latency).collect();
        let entry = ServeConfigReport {
            name: name.to_string(),
            tiles,
            banks: fab.banks,
            requests: stats.requests,
            replay_hits: stats.replay_hits,
            plan_hits: stats.plan_hits,
            plan_misses: stats.plan_misses,
            batches: stats.batches,
            batched_jobs: stats.batched_jobs,
            singleton_passes: stats.singleton_passes,
            pool_reuses: stats.pool_reuses,
            pool_builds: stats.pool_builds,
            sim_cycles: stats.sim_cycles,
            hit_rate: stats.hit_rate(),
            pool_reuse_rate: stats.pool_reuse_rate(),
            naive_secs,
            serve_secs,
            naive_jobs_per_sec: naive_jps,
            serve_jobs_per_sec: requests.len() as f64 / serve_secs,
            speedup: naive_secs / serve_secs,
            min_speedup: floor,
            p50_us: percentile_us(&lats, 50.0),
            p99_us: percentile_us(&lats, 99.0),
        };
        println!(
            "{}: {:.1} jobs/s ({:.2}x naive, floor {:.0}x)  p50 {:.0}us p99 {:.0}us",
            entry.name,
            entry.serve_jobs_per_sec,
            entry.speedup,
            entry.min_speedup,
            entry.p50_us,
            entry.p99_us,
        );
        println!(
            "  replay {}/{} ({:.0}% hit)  plans {}+{}  batches {} ({} jobs)  pool reuse {}/{} ({:.0}%)  {:.2} Mcycles",
            entry.replay_hits,
            entry.requests,
            100.0 * entry.hit_rate,
            entry.plan_hits,
            entry.plan_misses,
            entry.batches,
            entry.batched_jobs,
            entry.pool_reuses,
            entry.pool_reuses + entry.pool_builds,
            100.0 * entry.pool_reuse_rate,
            entry.sim_cycles as f64 / 1e6,
        );
        assert!(
            entry.speedup >= entry.min_speedup,
            "{}: measured speedup {:.2}x is below the committed {:.0}x floor",
            entry.name,
            entry.speedup,
            entry.min_speedup
        );
        report.configs.push(entry);
    }
    if let Some(path) = &serve_out {
        write_or_exit(path, &report.to_json());
        eprintln!("wrote serve report to {path}");
    }
    if let Some(path) = serve_compare {
        let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline serve report {path}: {e}");
            std::process::exit(2);
        });
        let baseline = ServeBenchReport::from_json(&committed).unwrap_or_else(|e| {
            eprintln!("{path}: {e}");
            std::process::exit(2);
        });
        let regressions = report.compare(&baseline, tolerance);
        if regressions.is_empty() {
            println!(
                "serve-compare: no regressions vs {path} (tolerance {:.2}%)",
                100.0 * tolerance
            );
        } else {
            eprintln!("serve-compare: {} regression(s) vs {path}:", regressions.len());
            for r in &regressions {
                eprintln!("  {r}");
            }
            std::process::exit(1);
        }
    }
}

/// The chaos campaign: deterministic tile-kill schedules against the
/// N-tile fabric with recovery enabled. Each scenario reports how the
/// fabric degraded (quarantines, shard failovers, wall-cycle overhead)
/// while asserting the result stays bit-exact with the clean run.
fn chaos_campaign(cfg: &SystemConfig, n: usize, metrics_out: Option<String>) {
    use hht_fault::{FaultEvent, FaultKind, FaultPlan};
    use hht_system::FabricConfig;
    header(
        &format!("Chaos campaign: tile kills under shard failover ({n}x{n} SpMV, 90% sparsity)"),
        "robustness extension (not in the paper): quarantined tiles fail their shards over to the survivors; results stay bit-exact",
    );
    let m = hht_sparse::generate::random_csr(n, n, 0.9, 0xD1);
    let v = hht_sparse::generate::random_dense_vector(n, 0xD2);
    let robust = cfg.with_recovery(true).with_hht_timeout(64);
    let scenarios: &[(usize, &[(u64, u32)])] = &[
        (4, &[(150, 1)]),
        (4, &[(100, 0), (220, 2)]),
        (8, &[(200, 3)]),
        (8, &[(80, 0), (160, 2), (240, 5), (320, 7)]),
    ];
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for &(tiles, kills) in scenarios {
        let fab = FabricConfig::scaled(tiles);
        let clean = hht_system::runner::run_spmv_fabric(&robust, fab, &m, &v);
        let plan = FaultPlan::new(
            kills.iter().map(|&(c, t)| FaultEvent::on_tile(c, FaultKind::TileKill, t)).collect(),
        );
        let out = hht_system::runner::run_spmv_fabric_with_plan(&robust, fab, &m, &v, plan);
        assert_eq!(out.y, clean.y, "degraded run must stay bit-exact");
        let rec = out.recovery.as_ref().expect("kills must trigger recovery");
        let report = hht_prof::FabricRecoveryReport::new(&out.stats, rec)
            .expect("recovery attribution must hold for every tile");
        let failover_cycles: u64 = out.stats.tiles.iter().map(|t| t.faults.failed_cycles).sum();
        let degraded_speedup = clean.stats.cycles as f64 / out.stats.cycles as f64;
        rows.push(vec![
            tiles.to_string(),
            kills.len().to_string(),
            format!("{}/{}", report.survivors(), tiles),
            report.attempts.to_string(),
            failover_cycles.to_string(),
            rec.backoff_cycles.to_string(),
            clean.stats.cycles.to_string(),
            out.stats.cycles.to_string(),
            format!("{degraded_speedup:.3}"),
        ]);
        records.push(format!(
            "{{\"tiles\":{tiles},\"killed\":{},\"survivors\":{},\"attempts\":{},\
             \"failover_cycles\":{failover_cycles},\"backoff_cycles\":{},\
             \"clean_wall_cycles\":{},\"degraded_wall_cycles\":{},\
             \"degraded_speedup\":{degraded_speedup:.6}}}",
            kills.len(),
            report.survivors(),
            report.attempts,
            rec.backoff_cycles,
            clean.stats.cycles,
            out.stats.cycles,
        ));
    }
    print!(
        "{}",
        table(
            &[
                "tiles",
                "killed",
                "survivors",
                "attempts",
                "failover cyc",
                "backoff",
                "clean wall",
                "degraded wall",
                "degraded speedup",
            ],
            &rows
        )
    );
    if let Some(path) = metrics_out {
        write_or_exit(&path, &format!("{{\"chaos\":[{}]}}", records.join(",")));
        eprintln!("wrote chaos campaign summary to {path}");
    }
}

/// One HHT SpMV run under deterministic fault injection, with the core's
/// timeout/retry protocol and the system-level software fallback enabled,
/// reported against the clean run.
fn fault_report(cfg: &SystemConfig, n: usize, seed: Option<String>, plan_spec: Option<String>) {
    use hht_fault::FaultPlan;
    header(
        &format!("Fault injection: HHT timeout/retry and software fallback ({n}x{n} SpMV)"),
        "robustness extension (not in the paper): results stay numerically correct, cycles degrade",
    );
    let m = hht_sparse::generate::random_csr(n, n, 0.5, 0xFA);
    let v = hht_sparse::generate::random_dense_vector(n, 0xFB);
    let robust = cfg.with_recovery(true).with_hht_timeout(64);
    let clean = hht_system::runner::run_spmv_hht(&robust, &m, &v);
    let (what, out) = match plan_spec {
        Some(spec) => {
            let plan = FaultPlan::parse(&spec).unwrap_or_else(|e| {
                eprintln!("--fault-plan: {e}");
                std::process::exit(2);
            });
            (
                format!("plan `{spec}`"),
                hht_system::runner::run_spmv_hht_with_plan(&robust, &m, &v, plan),
            )
        }
        None => {
            let raw = seed.expect("fault_report called with neither seed nor plan");
            let seed: u64 = raw.parse().unwrap_or_else(|_| {
                eprintln!("--fault-seed expects an unsigned integer, got `{raw}`");
                std::process::exit(2);
            });
            (
                format!("seed {seed}"),
                hht_system::runner::run_spmv_hht(&robust.with_fault_seed(seed), &m, &v),
            )
        }
    };
    let diff = out.y.max_abs_diff(&clean.y);
    // After a fallback the merged `out.stats.core` belongs to the clean
    // software rerun; the detection counters live in the failed attempt.
    let detect = out.recovery.as_ref().map_or(out.stats.core, |r| r.failed_stats.core);
    let rows = vec![
        vec!["fault source".into(), what],
        vec!["faults injected".into(), out.stats.faults.injected.to_string()],
        vec!["HHT timeouts detected".into(), detect.hht_timeouts.to_string()],
        vec!["HHT retries".into(), detect.hht_retries.to_string()],
        vec!["software fallbacks".into(), out.stats.faults.fallbacks.to_string()],
        vec!["clean cycles".into(), clean.stats.cycles.to_string()],
        vec!["faulted cycles".into(), out.stats.cycles.to_string()],
        vec![
            "cycle overhead".into(),
            format!("{:.3}x", out.stats.cycles as f64 / clean.stats.cycles as f64),
        ],
        vec!["max |y - y_clean|".into(), format!("{diff:.1e}")],
    ];
    print!("{}", table(&["quantity", "value"], &rows));
    if let Some(r) = &out.recovery {
        println!("recovered via software fallback after: {}", r.error);
    }
    assert!(diff == 0.0, "faulted run must return the numerically correct result");
}

fn write_or_exit(path: &str, contents: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(2);
    }
}

fn header(title: &str, paper: &str) {
    println!("\n=== {title} ===");
    println!("paper: {paper}\n");
}

fn table1(cfg: &SystemConfig) {
    header("Table 1: System Configuration", "RISCV RV32IMF+V, 1.1 GHz, VL=8, SEW=32, 4-cycle vector arithmetic; ASIC HHT N=2 buffers of 32B; 1MB RAM");
    let rows = vec![
        vec!["Core".into(), format!("RV32IMF+V subset, in-order, {} Hz", cfg.clock_hz)],
        vec!["Vector width (VL)".into(), format!("{} elements", cfg.core.vlen)],
        vec!["Element size (SEW)".into(), "32 bit".into()],
        vec![
            "Vector arithmetic latency".into(),
            format!("{} cycles (not pipelined)", cfg.core.vector_arith_cycles),
        ],
        vec!["ASIC HHT".into(), format!("N={} buffers", cfg.hht.num_buffers)],
        vec!["Buffer size".into(), format!("{} B", cfg.hht.blen * 4)],
        vec![
            "RAM".into(),
            format!("{} MB, {}-cycle word access", cfg.ram_size >> 20, cfg.ram_word_cycles),
        ],
    ];
    print!("{}", table(&["parameter", "value"], &rows));
}

fn fig4(cfg: &SystemConfig, n: usize, jobs: usize) {
    header(
        &format!("Fig. 4: HHT speedup for SpMV ({n}x{n})"),
        "1-buffer avg 1.70 (1.67-1.72); 2-buffer avg 1.73 (1.71-1.75); gains shrink at high sparsity",
    );
    let sweep = experiments::spmv_sweep_jobs(cfg, n, jobs);
    let mut rows = Vec::new();
    for (i, &s) in PAPER_SPARSITIES.iter().enumerate() {
        rows.push(vec![
            format!("{:.0}%", s * 100.0),
            format!("{:.3}", sweep[0].1[i].speedup()),
            format!("{:.3}", sweep[1].1[i].speedup()),
        ]);
    }
    let avg1: f64 = sweep[0].1.iter().map(|p| p.speedup()).sum::<f64>() / sweep[0].1.len() as f64;
    let avg2: f64 = sweep[1].1.iter().map(|p| p.speedup()).sum::<f64>() / sweep[1].1.len() as f64;
    rows.push(vec!["avg".into(), format!("{avg1:.3}"), format!("{avg2:.3}")]);
    print!("{}", table(&["sparsity", "HHT_1buffer", "HHT_2buffer"], &rows));
}

fn fig5(cfg: &SystemConfig, n: usize, jobs: usize) {
    header(
        &format!("Fig. 5: HHT speedup for SpMSpV ({n}x{n})"),
        "variant-1 avg 2.47 (1.48 to 4.0+, rising with sparsity); variant-2 avg 3.05 (2.5-3.52); v2 wins below ~80% sparsity, v1 above",
    );
    let sweep = experiments::spmspv_sweep_jobs(cfg, n, jobs);
    let mut rows = Vec::new();
    for (i, &s) in PAPER_SPARSITIES.iter().enumerate() {
        rows.push(vec![
            format!("{:.0}%", s * 100.0),
            format!("{:.3}", sweep[0].2[i].speedup()),
            format!("{:.3}", sweep[1].2[i].speedup()),
            format!("{:.3}", sweep[2].2[i].speedup()),
            format!("{:.3}", sweep[3].2[i].speedup()),
        ]);
    }
    print!("{}", table(&["sparsity", "v1_1buf", "v1_2buf", "v2_1buf", "v2_2buf"], &rows));
}

fn fig6(cfg: &SystemConfig, n: usize, jobs: usize) {
    header(
        &format!("Fig. 6: CPU wait-cycle fraction for SpMV ({n}x{n})"),
        "with the ASIC HHT the application CPU rarely waits",
    );
    let sweep = experiments::spmv_sweep_jobs(cfg, n, jobs);
    let mut rows = Vec::new();
    for (i, &s) in PAPER_SPARSITIES.iter().enumerate() {
        rows.push(vec![
            format!("{:.0}%", s * 100.0),
            format!("{:.4}", sweep[0].1[i].cpu_wait_frac),
            format!("{:.4}", sweep[1].1[i].cpu_wait_frac),
        ]);
    }
    print!("{}", table(&["sparsity", "wait_1buffer", "wait_2buffer"], &rows));
}

fn fig7(cfg: &SystemConfig, n: usize, jobs: usize) {
    header(
        &format!("Fig. 7: CPU wait-cycle fraction for SpMSpV ({n}x{n})"),
        "variant-1 idles the CPU a significant fraction (2 buffers help little); variant-2 greatly reduced",
    );
    let sweep = experiments::spmspv_sweep_jobs(cfg, n, jobs);
    let mut rows = Vec::new();
    for (i, &s) in PAPER_SPARSITIES.iter().enumerate() {
        rows.push(vec![
            format!("{:.0}%", s * 100.0),
            format!("{:.4}", sweep[0].2[i].cpu_wait_frac),
            format!("{:.4}", sweep[1].2[i].cpu_wait_frac),
            format!("{:.4}", sweep[2].2[i].cpu_wait_frac),
            format!("{:.4}", sweep[3].2[i].cpu_wait_frac),
        ]);
    }
    print!("{}", table(&["sparsity", "v1_1buf", "v1_2buf", "v2_1buf", "v2_2buf"], &rows));
}

fn fig8(cfg: &SystemConfig, n: usize, jobs: usize) {
    header(
        &format!("Fig. 8: sensitivity to vector width ({n}x{n}, 2 buffers)"),
        "speedup 1.77-1.81 scalar, 1.51-1.62 VL=4, 1.71-1.75 VL=8",
    );
    let sweep = experiments::vector_width_sweep_jobs(cfg, n, jobs);
    let mut rows = Vec::new();
    for (i, &s) in PAPER_SPARSITIES.iter().enumerate() {
        rows.push(vec![
            format!("{:.0}%", s * 100.0),
            format!("{:.3}", sweep[0].1[i].speedup()),
            format!("{:.3}", sweep[1].1[i].speedup()),
            format!("{:.3}", sweep[2].1[i].speedup()),
        ]);
    }
    print!("{}", table(&["sparsity", "VL=1", "VL=4", "VL=8"], &rows));
}

fn fig9(cfg: &SystemConfig, jobs: usize) {
    header("Fig. 9: DNN fully-connected layers", "1.53x on DenseNet up to 1.92x on VGG19");
    let results = experiments::dnn_suite_jobs(cfg, jobs);
    let rows = results
        .iter()
        .map(|r| {
            vec![
                r.network.clone(),
                format!("{}x{}", r.shape.0, r.shape.1),
                format!("{:.0}%", r.sparsity * 100.0),
                format!("{:.3}", r.point.speedup()),
            ]
        })
        .collect::<Vec<_>>();
    print!("{}", table(&["network", "fc shape", "sparsity", "speedup"], &rows));
}

fn area() {
    header(
        "Sec. 5.5: area estimates",
        "HHT is approximately 38.9% the size of an Ibex core (16nm)",
    );
    let ratio = hht_energy::hht_to_ibex_area_ratio();
    let prog_ratio = hht_energy::programmable_hht_inventory().total_ge()
        / hht_energy::ibex_inventory().total_ge();
    let mut rows = vec![
        vec!["ASIC HHT / Ibex area ratio".into(), format!("{:.1}%", ratio * 100.0)],
        vec!["programmable HHT / Ibex (Sec. 7)".into(), format!("{:.1}%", prog_ratio * 100.0)],
    ];
    for node in ProcessNode::ALL {
        let core = hht_energy::area_um2(&hht_energy::ibex_inventory(), node);
        let hht = hht_energy::area_um2(&hht_energy::hht_inventory(), node);
        rows.push(vec![format!("Ibex-class core @ {}", node.name()), format!("{core:.0} um^2")]);
        rows.push(vec![format!("HHT @ {}", node.name()), format!("{hht:.0} um^2")]);
    }
    print!("{}", table(&["quantity", "value"], &rows));
}

fn energy(cfg: &SystemConfig, n: usize, jobs: usize) {
    header(
        &format!("Sec. 5.5: power and energy ({n}x{n} SpMV, 16nm @ 50MHz)"),
        "223 uW core alone vs 314 uW core+HHT; ~19% average energy savings for SpMV across 10-90% sparsity",
    );
    // The paper measured a 16x16 matrix (a Synopsys tool limitation, §5.5
    // fn. 6: larger matrices are tiled into 16x16 on the HHT). Tiling means
    // the per-matrix software overheads amortize as at full scale, so we
    // derive the savings from the paper-scale cycle counts; the measured
    // 16x16-without-tiling row is printed last for completeness.
    let mut rows = Vec::new();
    let mut savings_sum = 0.0;
    let points = hht_exec::parallel_map(jobs, PAPER_SPARSITIES.to_vec(), |_, s| {
        (s, experiments::spmv_point(cfg, n, s, 2))
    });
    for (s, p) in points {
        let e = hht_energy::energy_savings(
            p.baseline_cycles,
            p.hht_cycles,
            ProcessNode::N16,
            ClockSpeed::MHz50,
        );
        savings_sum += e.savings();
        rows.push(vec![
            format!("{:.0}%", s * 100.0),
            format!("{:.1}", e.baseline_power_w * 1e6),
            format!("{:.1}", e.hht_power_w * 1e6),
            format!("{:.3}", p.speedup()),
            format!("{:.1}%", e.savings() * 100.0),
        ]);
    }
    rows.push(vec![
        "avg".into(),
        "".into(),
        "".into(),
        "".into(),
        format!("{:.1}%", savings_sum / PAPER_SPARSITIES.len() as f64 * 100.0),
    ]);
    let p16 = experiments::spmv_point(cfg, 16, 0.1, 2);
    let e16 = hht_energy::energy_savings(
        p16.baseline_cycles,
        p16.hht_cycles,
        ProcessNode::N16,
        ClockSpeed::MHz50,
    );
    rows.push(vec![
        "16x16/10% untiled".into(),
        format!("{:.1}", e16.baseline_power_w * 1e6),
        format!("{:.1}", e16.hht_power_w * 1e6),
        format!("{:.3}", p16.speedup()),
        format!("{:.1}%", e16.savings() * 100.0),
    ]);
    print!("{}", table(&["sparsity", "P_base(uW)", "P_hht(uW)", "speedup", "energy saved"], &rows));
}

fn motivation(cfg: &SystemConfig, n: usize, jobs: usize) {
    header(
        &format!("Sec. 2 motivation: metadata overhead of Algorithm 1 ({n}x{n})"),
        "indirect v[cols[.]] accesses are cache/prefetch-hostile and inflate the dynamic instruction count",
    );
    let pts = experiments::motivation_jobs(cfg, n, jobs);
    let rows = pts
        .iter()
        .map(|p| {
            vec![
                format!("{:.0}%", p.sparsity * 100.0),
                format!("{:.1}%", p.metadata_load_fraction * 100.0),
                format!("{:.2}", p.baseline_instr_per_nnz),
                format!("{:.2}", p.hht_instr_per_nnz),
                format!("{:.2}", p.baseline_beats_per_nnz),
                format!("{:.2}", p.hht_beats_per_nnz),
            ]
        })
        .collect::<Vec<_>>();
    print!(
        "{}",
        table(
            &[
                "sparsity",
                "meta loads",
                "base instr/nnz",
                "hht instr/nnz",
                "base beats/nnz",
                "hht beats/nnz"
            ],
            &rows
        )
    );
}

fn crossover(cfg: &SystemConfig, n: usize, jobs: usize) {
    header(
        &format!("Sec. 6: dense-expansion crossover ({n}x{n})"),
        "[40]/[23]: at lower sparsities, expanding sparse data to dense can improve performance; the HHT moves the crossover toward lower sparsity",
    );
    let pts = experiments::crossover_jobs(cfg, n, jobs);
    let rows = pts
        .iter()
        .map(|p| {
            let best = if p.dense_cycles <= p.sparse_baseline_cycles.min(p.sparse_hht_cycles) {
                "dense"
            } else if p.sparse_hht_cycles <= p.sparse_baseline_cycles {
                "sparse+HHT"
            } else {
                "sparse"
            };
            vec![
                format!("{:.0}%", p.sparsity * 100.0),
                p.dense_cycles.to_string(),
                p.sparse_baseline_cycles.to_string(),
                p.sparse_hht_cycles.to_string(),
                best.to_string(),
            ]
        })
        .collect::<Vec<_>>();
    print!("{}", table(&["sparsity", "dense", "sparse base", "sparse+HHT", "fastest"], &rows));
}

fn ablate_baseline(cfg: &SystemConfig, n: usize, jobs: usize) {
    header(
        &format!("Ablation: SpMSpV baseline choice ({n}x{n})"),
        "row-merge (the Fig. 5 baseline) vs work-efficient CSC scatter [43]; HHT speedups depend on which baseline the reader assumes",
    );
    let pts = experiments::baseline_ablation_jobs(cfg, n, jobs);
    let rows = pts
        .iter()
        .map(|p| {
            vec![
                format!("{:.0}%", p.sparsity * 100.0),
                p.merge_cycles.to_string(),
                p.csc_cycles.to_string(),
                p.v1_cycles.to_string(),
                p.v2_cycles.to_string(),
                format!("{:.2}", p.csc_cycles as f64 / p.v1_cycles as f64),
                format!("{:.2}", p.csc_cycles as f64 / p.v2_cycles as f64),
            ]
        })
        .collect::<Vec<_>>();
    print!(
        "{}",
        table(
            &["sparsity", "merge base", "csc base", "v1", "v2", "v1 spd(csc)", "v2 spd(csc)"],
            &rows
        )
    );
}

fn ablate_programmable(cfg: &SystemConfig, n: usize, jobs: usize) {
    header(
        &format!("Ablation: ASIC vs programmable HHT back-end ({n}x{n}, SpMV)"),
        "Sec. 7 future work: a programmable HHT using a simple RISCV-like core trades throughput for format flexibility",
    );
    let pts = experiments::programmable_ablation_jobs(cfg, n, jobs);
    let rows = pts
        .iter()
        .map(|p| {
            vec![
                format!("{:.0}%", p.sparsity * 100.0),
                format!("{:.3}", p.asic_speedup()),
                format!("{:.3}", p.programmable_speedup()),
                format!("{:.4}", p.programmable_cpu_wait),
            ]
        })
        .collect::<Vec<_>>();
    print!(
        "{}",
        table(&["sparsity", "ASIC speedup", "programmable speedup", "prog cpu_wait"], &rows)
    );
}

fn ablate_tiling(cfg: &SystemConfig, n: usize) {
    header(
        &format!("Ablation: HHT tile size ({n}x{n}, SpMV, 50% sparsity)"),
        "Sec. 5.5 fn. 6: bigger matrices are broken into 16x16 tiles; the sweep prices the per-tile reprogramming",
    );
    let m = hht_sparse::generate::random_csr(n, n, 0.5, 0x71);
    let v = hht_sparse::generate::random_dense_vector(n, 0x72);
    let untiled = hht_system::runner::run_spmv_hht(cfg, &m, &v);
    let mut rows = vec![vec![
        "untiled".to_string(),
        "1".into(),
        untiled.stats.cycles.to_string(),
        "1.000".into(),
    ]];
    for tile in [8usize, 16, 32, 64] {
        let t = hht_system::tiling::run_spmv_tiled(cfg, &m, &v, tile);
        rows.push(vec![
            format!("{tile}x{tile}"),
            t.tiles.to_string(),
            t.out.stats.cycles.to_string(),
            format!("{:.3}", t.out.stats.cycles as f64 / untiled.stats.cycles as f64),
        ]);
    }
    print!("{}", table(&["tile", "tiles", "cycles", "vs untiled"], &rows));
}

fn conv(cfg: &SystemConfig, jobs: usize) {
    header(
        "Conclusion: sparse convolution layers (im2col -> SpMV)",
        "the paper's conclusion lists convolution among the accelerated kernels",
    );
    let rows = hht_exec::parallel_map(jobs, hht_workloads::conv::suite(), |_, (name, layer)| {
        let w = layer.lowered_weights();
        let patch = layer.input_patch(0);
        let base = hht_system::runner::run_spmv_baseline(cfg, &w, &patch);
        let hht = hht_system::runner::run_spmv_hht(cfg, &w, &patch);
        vec![
            name,
            format!("{}x{}", layer.out_channels, layer.patch_len()),
            format!("{:.0}%", layer.sparsity * 100.0),
            format!("{:.3}", base.stats.cycles as f64 / hht.stats.cycles as f64),
        ]
    });
    print!("{}", table(&["layer", "lowered shape", "sparsity", "speedup"], &rows));
}

fn ablate_cache(cfg: &SystemConfig, n: usize) {
    header(
        &format!("Ablation: L1D cache on the CPU ({n}x{n}, SpMV, 4-cycle memory)"),
        "Sec. 3.2's high-performance integration; with slower memory a cache helps the baseline and shrinks the HHT's advantage",
    );
    use hht_sim::config::CacheGeometry;
    // The cache only matters when raw memory is slower than a hit; run the
    // ablation at a 4-cycle word access (vs the MCU's 1-cycle SRAM).
    let slow = cfg.with_ram_word_cycles(4);
    let m = hht_sparse::generate::random_csr(n, n, 0.5, 0x91);
    let v = hht_sparse::generate::random_dense_vector(n, 0x92);
    let mut rows = Vec::new();
    for (name, c) in [
        ("no cache".to_string(), slow),
        ("4KB 2-way L1D".to_string(), slow.with_l1d(CacheGeometry::embedded_4k())),
        (
            "16KB 4-way L1D".to_string(),
            slow.with_l1d(CacheGeometry { size_bytes: 16384, assoc: 4, line_bytes: 32 }),
        ),
    ] {
        let base = hht_system::runner::run_spmv_baseline(&c, &m, &v);
        let hht = hht_system::runner::run_spmv_hht(&c, &m, &v);
        rows.push(vec![
            name,
            base.stats.cycles.to_string(),
            hht.stats.cycles.to_string(),
            format!("{:.3}", base.stats.cycles as f64 / hht.stats.cycles as f64),
            format!(
                "{:.1}%",
                100.0 * base.stats.core.l1d_hits as f64
                    / (base.stats.core.l1d_hits + base.stats.core.l1d_misses).max(1) as f64
            ),
        ]);
    }
    print!(
        "{}",
        table(&["config", "base_cycles", "hht_cycles", "speedup", "base hit rate"], &rows)
    );
}

fn ablate_buffers(cfg: &SystemConfig, n: usize) {
    header(
        &format!("Ablation: buffer count N ({n}x{n}, SpMV, 50% sparsity)"),
        "N>=2 permits prefetch-ahead; the ASIC HHT is already adequate at N=1 for SpMV",
    );
    let mut rows = Vec::new();
    for nb in [1usize, 2, 4] {
        let p = experiments::spmv_point(cfg, n, 0.5, nb);
        rows.push(vec![
            nb.to_string(),
            p.hht_cycles.to_string(),
            format!("{:.3}", p.speedup()),
            format!("{:.4}", p.cpu_wait_frac),
        ]);
    }
    print!("{}", table(&["N", "hht_cycles", "speedup", "cpu_wait"], &rows));
}

fn ablate_latency(cfg: &SystemConfig, n: usize) {
    header(
        &format!("Ablation: SRAM word latency ({n}x{n}, SpMV, 50% sparsity)"),
        "not in the paper; shows where the shared port becomes the bottleneck",
    );
    let mut rows = Vec::new();
    for wc in [1u64, 2, 4] {
        let c = cfg.with_ram_word_cycles(wc);
        let p = experiments::spmv_point(&c, n, 0.5, 2);
        rows.push(vec![
            wc.to_string(),
            p.baseline_cycles.to_string(),
            p.hht_cycles.to_string(),
            format!("{:.3}", p.speedup()),
            format!("{:.4}", p.cpu_wait_frac),
        ]);
    }
    print!(
        "{}",
        table(&["word_cycles", "base_cycles", "hht_cycles", "speedup", "cpu_wait"], &rows)
    );
}

fn ablate_format(cfg: &SystemConfig, n: usize, jobs: usize) {
    header(
        &format!("Ablation: CSR vs SMASH HHT engines ({n}x{n})"),
        "Sec. 6: under SMASH the HHT performs more work than the CPU, causing the CPU to idle",
    );
    let pts = experiments::format_ablation_jobs(cfg, n, jobs);
    let rows = pts
        .iter()
        .map(|p| {
            // (sparsities include 95/99% beyond the paper sweep)
            vec![
                format!("{:.0}%", p.sparsity * 100.0),
                p.csr_hht_cycles.to_string(),
                p.smash_hht_cycles.to_string(),
                format!("{:.4}", p.csr_cpu_wait_frac),
                format!("{:.4}", p.smash_cpu_wait_frac),
            ]
        })
        .collect::<Vec<_>>();
    print!(
        "{}",
        table(&["sparsity", "csr_cycles", "smash_cycles", "csr_cpu_wait", "smash_cpu_wait"], &rows)
    );
}

fn scaling(cfg: &SystemConfig, n: usize, jobs: usize, metrics_out: Option<String>) {
    header(
        &format!("Fabric scaling: row-block sharded SpMV across N tiles ({n}x{n}, 90% sparsity)"),
        "extension (Sec. 7: the architecture \"can be extended with multiple HHTs\"); 8 shared banks, round-robin arbitration",
    );
    use hht_system::FabricConfig;
    let m = hht_sparse::generate::random_csr(n, n, 0.9, 0xC1);
    let v = hht_sparse::generate::random_dense_vector(n, 0xC2);
    let outs = hht_exec::parallel_map(jobs, vec![1usize, 2, 4, 8, 16], |_, t| {
        (t, hht_system::runner::run_spmv_fabric(cfg, FabricConfig::scaled(t), &m, &v))
    });
    let base = outs[0].1.stats.cycles;
    let mut rows = Vec::new();
    let mut imbalance = Vec::new();
    let mut records = Vec::new();
    for (t, out) in &outs {
        let s = &out.stats;
        let snap = s.merged().snapshot().with_drops(out.dropped);
        snap.validate().expect("merged stall histogram must sum exactly to the wait counters");
        rows.push(vec![
            t.to_string(),
            s.cycles.to_string(),
            format!("{:.3}", base as f64 / s.cycles as f64),
            format!("{:.4}", s.bank_conflict_frac()),
            s.mem.cross_tile_conflicts.to_string(),
            format!("{:.4}", s.cpu_wait_frac()),
        ]);
        // Load imbalance: nnz each row shard carries, and the share of the
        // wall each tile spent before halting.
        let ptr = m.row_ptr();
        let nnz: Vec<u64> = hht_system::layout::row_shards(&m, *t)
            .iter()
            .map(|&(r0, r1)| (ptr[r1] - ptr[r0]) as u64)
            .collect();
        let busy: Vec<f64> =
            s.tiles.iter().map(|ts| ts.cycles as f64 / s.cycles.max(1) as f64).collect();
        let fmin = |v: &[f64]| v.iter().cloned().fold(f64::INFINITY, f64::min);
        let fmax = |v: &[f64]| v.iter().cloned().fold(0.0f64, f64::max);
        let cpi = hht_prof::FabricCpi::from_fabric(s)
            .expect("fabric CPI attribution must hold for every tile");
        // Per-tile event-queue scheduler stats: how often each tile was
        // popped and how much of its life it sat parked.
        let pops: u64 = out.tile_sched.iter().map(|ts| ts.pops).sum();
        let park_cycles: u64 = out.tile_sched.iter().map(|ts| ts.skipped_cycles).sum();
        let park_count: u64 = out.tile_sched.iter().map(|ts| ts.parks).sum();
        let parked: Vec<f64> = out.tile_sched.iter().map(|ts| ts.parked_frac()).collect();
        imbalance.push(vec![
            t.to_string(),
            nnz.iter().max().copied().unwrap_or(0).to_string(),
            nnz.iter().min().copied().unwrap_or(0).to_string(),
            format!("{:.1}", nnz.iter().sum::<u64>() as f64 / nnz.len().max(1) as f64),
            format!("{:.3}", fmax(&busy)),
            format!("{:.3}", fmin(&busy)),
            format!("{:.4}", cpi.idle_frac()),
            pops.to_string(),
            format!("{:.1}", park_cycles as f64 / park_count.max(1) as f64),
            format!("{:.3}", fmin(&parked)),
            format!("{:.3}", fmax(&parked)),
        ]);
        let tile_sched: Vec<String> = out
            .tile_sched
            .iter()
            .map(|ts| {
                format!(
                    "{{\"pops\":{},\"stepped_cycles\":{},\"skipped_cycles\":{},\
                     \"parks\":{},\"mean_park\":{:.3},\"parked_frac\":{:.6}}}",
                    ts.pops,
                    ts.stepped_cycles,
                    ts.skipped_cycles,
                    ts.parks,
                    ts.mean_park(),
                    ts.parked_frac(),
                )
            })
            .collect();
        records.push(format!(
            "{{\"tiles\":{t},\"wall_cycles\":{},\"speedup\":{:.6},\
             \"bank_conflict_frac\":{:.6},\"cross_tile_conflicts\":{},\
             \"sched\":{{\"stepped_cycles\":{},\"skipped_cycles\":{},\"skip_spans\":{}}},\
             \"tile_sched\":[{}],\
             \"events_dropped\":{},\"merged\":{}}}",
            s.cycles,
            base as f64 / s.cycles as f64,
            s.bank_conflict_frac(),
            s.mem.cross_tile_conflicts,
            out.sched.stepped_cycles,
            out.sched.skipped_cycles,
            out.sched.skip_spans,
            tile_sched.join(","),
            out.dropped.total(),
            snap.to_json(),
        ));
    }
    print!(
        "{}",
        table(
            &["tiles", "wall cycles", "speedup", "bank conflict frac", "cross-tile", "cpu_wait"],
            &rows
        )
    );
    println!("per-tile load imbalance (row-shard nnz, busy-cycle share, event-queue parking):");
    print!(
        "{}",
        table(
            &[
                "tiles",
                "nnz max",
                "nnz min",
                "nnz mean",
                "busy max",
                "busy min",
                "idle frac",
                "pops",
                "mean park",
                "parked min",
                "parked max",
            ],
            &imbalance
        )
    );
    if let Some(path) = metrics_out {
        write_or_exit(&path, &format!("{{\"scaling\":[{}]}}", records.join(",")));
        eprintln!("wrote scaling sweep metrics to {path}");
    }
}

/// The DRAM-class memory sweep: single-tile SpMV across the split-transaction
/// backend's three axes — response latency (row hit/miss extras), MLP window
/// (in-flight ceiling), and grants-per-cycle bandwidth budget.
///
/// Every cell asserts the CPI exact-sum invariant (`stack.total() == cycles`
/// even with row extras and window stalls in the cut), and the all-zero
/// corner is asserted bit-identical — stats and output vector — to a run on
/// the seed `SharedMemory` with no DRAM wrapper at all.
fn memory(cfg: &SystemConfig, n: usize, jobs: usize, metrics_out: Option<String>) {
    use hht_mem::DramConfig;
    use hht_prof::{classify_with_bus, CpiStack};
    use hht_system::FabricConfig;
    header(
        &format!("Memory model: latency x MLP window x bandwidth budget ({n}x{n}, 90% sparsity)"),
        "beyond-paper: split-transaction DRAM-class backend; flat corner must equal the seed model",
    );
    let m = hht_sparse::generate::random_csr(n, n, 0.9, 0xD1);
    let v = hht_sparse::generate::random_dense_vector(n, 0xD2);
    // One tile over the 8-bank scaled shape: with a single bank, any
    // same-cycle CPU/HHT collision is a bank conflict before the grant
    // budget is even consulted, which would hide the bandwidth axis.
    let shape = FabricConfig::scaled(1);
    // Reference run on the raw SharedMemory path (cfg.dram = None): the
    // bit-identity baseline for the flat corner and the slowdown anchor.
    let reference = hht_system::runner::run_spmv_fabric(cfg, shape, &m, &v);
    let lats = [("flat", 0u64, 0u64), ("near", 8, 24), ("far-300ns", 110, 330)];
    let mut grid = Vec::new();
    for (lat, hit, miss) in lats {
        // Window 1 is the interesting MLP ceiling: each requestor blocks on
        // its own response, so the per-tile window only binds when it forces
        // the CPU and the HHT to serialize against each other.
        for window in [0u32, 1] {
            for budget in [0u32, 1] {
                grid.push((lat, hit, miss, window, budget));
            }
        }
    }
    let outs = hht_exec::parallel_map(jobs, grid, |_, (lat, hit, miss, window, budget)| {
        let dc = DramConfig::flat()
            .with_row_latency(hit, miss)
            .with_window(window)
            .with_bandwidth(budget);
        let c = cfg.with_dram(dc);
        let out = hht_system::runner::run_spmv_fabric(&c, shape, &m, &v);
        (lat, hit, miss, window, budget, out)
    });
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for (lat, hit, miss, window, budget, out) in &outs {
        let s = &out.stats;
        let tile = &s.tiles[0];
        let stack = CpiStack::from_stats(tile).unwrap_or_else(|e| {
            panic!("memory[{lat},w={window},b={budget}]: CPI attribution failed: {e}")
        });
        assert_eq!(
            stack.total(),
            stack.cycles,
            "memory[{lat},w={window},b={budget}]: CPI stack must sum to total cycles"
        );
        let verdict = classify_with_bus(&stack, tile, Some(&s.mem));
        if *hit == 0 && *miss == 0 && *window == 0 && *budget == 0 {
            // Flat-Dram corner: the wrapper must be invisible. Bit-identical
            // output and counters against the unwrapped reference run.
            assert_eq!(out.y, reference.y, "flat Dram changed the numeric result");
            assert_eq!(s.cycles, reference.stats.cycles, "flat Dram changed the cycle count");
            assert_eq!(s.mem, reference.stats.mem, "flat Dram changed shared-memory counters");
            assert_eq!(s.tiles, reference.stats.tiles, "flat Dram changed per-tile stats");
        }
        let slowdown = s.cycles as f64 / reference.stats.cycles.max(1) as f64;
        let util = verdict.bus_utilization.map_or_else(|| "-".to_string(), |u| format!("{:.3}", u));
        rows.push(vec![
            lat.to_string(),
            window.to_string(),
            budget.to_string(),
            s.cycles.to_string(),
            format!("{slowdown:.3}"),
            s.mem.row_hits.to_string(),
            s.mem.row_misses.to_string(),
            s.mem.window_stalls.to_string(),
            s.mem.bandwidth_stalls.to_string(),
            util,
            verdict.bottleneck.label().to_string(),
        ]);
        records.push(format!(
            "{{\"latency\":\"{lat}\",\"row_hit_extra\":{hit},\"row_miss_extra\":{miss},\
             \"window\":{window},\"budget\":{budget},\"wall_cycles\":{},\
             \"slowdown\":{slowdown:.6},\"row_hits\":{},\"row_misses\":{},\
             \"window_stalls\":{},\"bandwidth_stalls\":{},\"bus_utilization\":{},\
             \"verdict\":\"{}\",\"cpi\":{{{}}}}}",
            s.cycles,
            s.mem.row_hits,
            s.mem.row_misses,
            s.mem.window_stalls,
            s.mem.bandwidth_stalls,
            verdict.bus_utilization.map_or_else(|| "null".to_string(), |u| format!("{u:.6}")),
            verdict.bottleneck.label(),
            stack
                .entries()
                .iter()
                .map(|(k, c)| format!("\"{k}\":{c}"))
                .collect::<Vec<_>>()
                .join(","),
        ));
    }
    print!(
        "{}",
        table(
            &[
                "latency",
                "window",
                "budget",
                "wall cycles",
                "slowdown",
                "row hits",
                "row misses",
                "window stalls",
                "bw stalls",
                "bus util",
                "verdict",
            ],
            &rows
        )
    );
    println!("flat corner verified bit-identical to the seed SharedMemory path.");
    // The bandwidth wall: tiles contend for a single grant per cycle. Zero
    // response latency isolates the budget — every slowdown here is the bus,
    // and near-saturated utilization must force the bandwidth-bound verdict.
    println!("bandwidth wall (flat latency, grants/cycle budget shared by all tiles):");
    let wall_grid: Vec<(usize, u32)> =
        [1usize, 2, 4].iter().flat_map(|&t| [(t, 0u32), (t, 1)]).collect();
    let wall_outs = hht_exec::parallel_map(jobs, wall_grid, |_, (tiles, budget)| {
        let c = cfg.with_dram(DramConfig::flat().with_bandwidth(budget));
        let out = hht_system::runner::run_spmv_fabric(&c, FabricConfig::scaled(tiles), &m, &v);
        (tiles, budget, out)
    });
    let mut wall_rows = Vec::new();
    let mut wall_records = Vec::new();
    for (tiles, budget, out) in &wall_outs {
        let s = &out.stats;
        let cpi = hht_prof::FabricCpi::from_fabric(s).unwrap_or_else(|e| {
            panic!("memory wall[t={tiles},b={budget}]: CPI attribution failed: {e}")
        });
        assert_eq!(
            cpi.merged.total(),
            cpi.merged.cycles,
            "memory wall[t={tiles},b={budget}]: merged CPI stack must sum to total tile-time"
        );
        let free = wall_outs
            .iter()
            .find(|(t, b, _)| t == tiles && *b == 0)
            .map(|(_, _, o)| o.stats.cycles)
            .unwrap_or(s.cycles);
        let slowdown = s.cycles as f64 / free.max(1) as f64;
        // Fabric-wide utilization over wall cycles (tile-0's stack alone
        // would divide fabric-wide grants by one tile's shorter lifetime).
        let util = if *budget > 0 {
            Some((s.mem.row_hits + s.mem.row_misses) as f64 / (s.cycles * *budget as u64) as f64)
        } else {
            None
        };
        let verdict = classify_with_bus(&cpi.per_tile[0], &s.tiles[0], Some(&s.mem));
        wall_rows.push(vec![
            tiles.to_string(),
            budget.to_string(),
            s.cycles.to_string(),
            format!("{slowdown:.3}"),
            s.mem.bandwidth_stalls.to_string(),
            util.map_or_else(|| "-".to_string(), |u| format!("{u:.3}")),
            verdict.bottleneck.label().to_string(),
        ]);
        wall_records.push(format!(
            "{{\"tiles\":{tiles},\"budget\":{budget},\"wall_cycles\":{},\"slowdown\":{slowdown:.6},\
             \"bandwidth_stalls\":{},\"bus_utilization\":{},\"verdict\":\"{}\"}}",
            s.cycles,
            s.mem.bandwidth_stalls,
            util.map_or_else(|| "null".to_string(), |u| format!("{u:.6}")),
            verdict.bottleneck.label(),
        ));
    }
    print!(
        "{}",
        table(
            &["tiles", "budget", "wall cycles", "slowdown", "bw stalls", "bus util", "verdict"],
            &wall_rows
        )
    );
    if let Some(path) = metrics_out {
        write_or_exit(
            &path,
            &format!(
                "{{\"memory\":[{}],\"memory_wall\":[{}]}}",
                records.join(","),
                wall_records.join(",")
            ),
        );
        eprintln!("wrote memory sweep metrics to {path}");
    }
}

fn suite(cfg: &SystemConfig, n: usize, jobs: usize) {
    header(
        &format!("SuiteSparse-profile workloads ({n}x{n})"),
        "Sec. 4: collection matrices (>90% sparsity) show speedups inline with the synthetic results",
    );
    use hht_sparse::SparseFormat;
    let rows = hht_exec::parallel_map(jobs, hht_workloads::suite::suite(n), |_, sm| {
        let m = sm.matrix();
        let v = hht_sparse::generate::random_dense_vector(m.cols(), sm.seed ^ 0xEE);
        let base = hht_system::runner::run_spmv_baseline(cfg, &m, &v);
        let hht = hht_system::runner::run_spmv_hht(cfg, &m, &v);
        vec![
            sm.name.clone(),
            format!("{:.1}%", m.sparsity() * 100.0),
            format!("{:.3}", base.stats.cycles as f64 / hht.stats.cycles as f64),
        ]
    });
    print!("{}", table(&["matrix", "sparsity", "speedup"], &rows));
}
