//! Calibration probe: prints the measured speedups and wait fractions at a
//! few parameter points so the free timing parameters of DESIGN.md §4 can
//! be tuned against the paper's bands.
//!
//! ```text
//! cargo run --release -p hht-bench --bin calibration [-- n]
//! ```

use hht_system::config::SystemConfig;
use hht_system::experiments::{self, SpMSpVKind};

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(256);
    let cfg = SystemConfig::paper_default();
    println!("== SpMV ({n}x{n}), VL=8 ==");
    println!(
        "{:>9} {:>12} {:>12} {:>8} {:>8} {:>9} {:>9}",
        "sparsity", "base_cyc", "hht_cyc", "spd(1b)", "spd(2b)", "cpu_wait", "hht_wait"
    );
    for s in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let p1 = experiments::spmv_point(&cfg, n, s, 1);
        let p2 = experiments::spmv_point(&cfg, n, s, 2);
        println!(
            "{:>9.1} {:>12} {:>12} {:>8.3} {:>8.3} {:>9.4} {:>9.4}",
            s,
            p2.baseline_cycles,
            p2.hht_cycles,
            p1.speedup(),
            p2.speedup(),
            p2.cpu_wait_frac,
            p2.hht_wait_frac
        );
    }
    println!("\n== SpMSpV ({n}x{n}), VL=8, 2 buffers ==");
    println!(
        "{:>9} {:>12} {:>10} {:>10} {:>10} {:>10}",
        "sparsity", "base_cyc", "spd(v1)", "spd(v2)", "wait(v1)", "wait(v2)"
    );
    for s in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let v1 = experiments::spmspv_point(&cfg, n, s, 2, SpMSpVKind::V1);
        let v2 = experiments::spmspv_point(&cfg, n, s, 2, SpMSpVKind::V2);
        println!(
            "{:>9.1} {:>12} {:>10.3} {:>10.3} {:>10.4} {:>10.4}",
            s,
            v1.baseline_cycles,
            v1.speedup(),
            v2.speedup(),
            v1.cpu_wait_frac,
            v2.cpu_wait_frac
        );
    }
    println!("\n== SpMV vector-width sensitivity ({n}x{n}, 2 buffers) ==");
    println!("{:>9} {:>10} {:>10} {:>10}", "sparsity", "VL=1", "VL=4", "VL=8");
    for s in [0.1, 0.5, 0.9] {
        let mut row = format!("{s:>9.1}");
        for vl in [1usize, 4, 8] {
            let p = experiments::spmv_point(&cfg.with_vlen(vl), n, s, 2);
            row += &format!(" {:>10.3}", p.speedup());
        }
        println!("{row}");
    }
}
