//! Shared helpers for the figure harness and Criterion benches.
//!
//! The actual experiment logic lives in `hht_system::experiments`; this
//! crate only formats and persists results. See `src/bin/figures.rs` for
//! the per-figure regeneration entry point.

pub mod format;
