//! Programmatic assembler.
//!
//! [`KernelBuilder`] is how the kernel library in `hht-system` emits the
//! SpMV / SpMSpV programs: each method appends one instruction, labels
//! handle forward branches, and `build()` resolves everything into a
//! [`Program`]. Pseudo-instructions (`li`, `mv`, `j`, …) expand exactly as
//! a RISC-V assembler would.

use crate::instr::{AluOp, BranchOp, Instr, MemWidth, MulDivOp, VConfig};
use crate::program::Program;
use crate::reg::{FReg, Reg, VReg};
use std::collections::BTreeMap;

/// A label handle created by [`KernelBuilder::label`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Pending fixup kinds for unresolved labels.
#[derive(Debug, Clone, Copy)]
enum Fixup {
    /// Branch at instruction index, patch its `offset`.
    Branch(usize),
    /// Jal at instruction index, patch its `offset`.
    Jal(usize),
}

/// Incremental program builder with label support.
#[derive(Debug, Default)]
pub struct KernelBuilder {
    base: u32,
    instrs: Vec<Instr>,
    /// label id -> bound instruction index (None until `bind`).
    labels: Vec<Option<usize>>,
    /// label id -> uses awaiting resolution.
    fixups: Vec<(usize, Fixup)>,
    symbols: BTreeMap<String, u32>,
}

impl KernelBuilder {
    /// New builder with instructions starting at byte address `base`.
    pub fn new(base: u32) -> Self {
        KernelBuilder { base, ..Default::default() }
    }

    /// Create an unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Bind a label to the current position (the next emitted instruction).
    pub fn bind(&mut self, l: Label) {
        assert!(self.labels[l.0].is_none(), "label bound twice");
        self.labels[l.0] = Some(self.instrs.len());
    }

    /// Create a label already bound to the current position.
    pub fn here(&mut self) -> Label {
        let l = self.label();
        self.bind(l);
        l
    }

    /// Give the current position a symbolic name in the final [`Program`].
    pub fn name(&mut self, name: &str) {
        self.symbols.insert(name.to_string(), self.base + 4 * self.instrs.len() as u32);
    }

    /// Current instruction count.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True if nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Append a raw instruction.
    pub fn emit(&mut self, i: Instr) -> &mut Self {
        self.instrs.push(i);
        self
    }

    // ---- scalar integer ----

    /// `addi rd, rs1, imm`
    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        assert!((-2048..2048).contains(&imm), "addi immediate out of range: {imm}");
        self.emit(Instr::OpImm { op: AluOp::Add, rd, rs1, imm })
    }

    /// `add rd, rs1, rs2`
    pub fn add(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.emit(Instr::Op { op: AluOp::Add, rd, rs1, rs2 })
    }

    /// `sub rd, rs1, rs2`
    pub fn sub(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.emit(Instr::Op { op: AluOp::Sub, rd, rs1, rs2 })
    }

    /// `slli rd, rs1, shamt`
    pub fn slli(&mut self, rd: Reg, rs1: Reg, shamt: i32) -> &mut Self {
        assert!((0..32).contains(&shamt));
        self.emit(Instr::OpImm { op: AluOp::Sll, rd, rs1, imm: shamt })
    }

    /// `srli rd, rs1, shamt`
    pub fn srli(&mut self, rd: Reg, rs1: Reg, shamt: i32) -> &mut Self {
        assert!((0..32).contains(&shamt));
        self.emit(Instr::OpImm { op: AluOp::Srl, rd, rs1, imm: shamt })
    }

    /// `andi rd, rs1, imm`
    pub fn andi(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.emit(Instr::OpImm { op: AluOp::And, rd, rs1, imm })
    }

    /// Any register-register ALU op.
    pub fn alu(&mut self, op: AluOp, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.emit(Instr::Op { op, rd, rs1, rs2 })
    }

    /// Any ALU-immediate op (no `Sub`; shifts take a 5-bit shamt).
    pub fn alu_imm(&mut self, op: AluOp, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        assert!(op != AluOp::Sub, "no subi in RV32");
        self.emit(Instr::OpImm { op, rd, rs1, imm })
    }

    /// `lui rd, imm20`
    pub fn lui(&mut self, rd: Reg, imm20: i32) -> &mut Self {
        self.emit(Instr::Lui { rd, imm20: imm20 & 0xfffff })
    }

    /// `auipc rd, imm20`
    pub fn auipc(&mut self, rd: Reg, imm20: i32) -> &mut Self {
        self.emit(Instr::Auipc { rd, imm20: imm20 & 0xfffff })
    }

    /// `jalr rd, offset(rs1)`
    pub fn jalr(&mut self, rd: Reg, offset: i32, rs1: Reg) -> &mut Self {
        self.emit(Instr::Jalr { rd, rs1, offset })
    }

    /// `fsub.s rd, rs1, rs2`
    pub fn fsub_s(&mut self, rd: FReg, rs1: FReg, rs2: FReg) -> &mut Self {
        self.emit(Instr::FsubS { rd, rs1, rs2 })
    }

    /// `mul rd, rs1, rs2`
    pub fn mul(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.emit(Instr::Mul { rd, rs1, rs2 })
    }

    /// One of the remaining RV32M ops (`mulh`, `div`, `rem`, ...).
    pub fn muldiv(&mut self, op: MulDivOp, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.emit(Instr::MulDiv { op, rd, rs1, rs2 })
    }

    /// Pseudo `li rd, value` — expands to `lui`+`addi`, or just `addi` when
    /// the value fits 12 bits.
    pub fn li(&mut self, rd: Reg, value: i32) -> &mut Self {
        if (-2048..2048).contains(&value) {
            return self.addi(rd, Reg::ZERO, value);
        }
        // Split into hi20/lo12 accounting for lo12 sign extension.
        let lo = (value << 20) >> 20;
        let hi = (value.wrapping_sub(lo)) >> 12;
        self.emit(Instr::Lui { rd, imm20: hi & 0xfffff });
        if lo != 0 {
            self.addi(rd, rd, lo);
        }
        self
    }

    /// Pseudo `mv rd, rs`.
    pub fn mv(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.addi(rd, rs, 0)
    }

    /// Pseudo `nop`.
    pub fn nop(&mut self) -> &mut Self {
        self.addi(Reg::ZERO, Reg::ZERO, 0)
    }

    // ---- memory ----

    /// `lw rd, offset(rs1)`
    pub fn lw(&mut self, rd: Reg, offset: i32, rs1: Reg) -> &mut Self {
        self.emit(Instr::Lw { rd, rs1, offset })
    }

    /// `sw rs2, offset(rs1)`
    pub fn sw(&mut self, rs2: Reg, offset: i32, rs1: Reg) -> &mut Self {
        self.emit(Instr::Sw { rs1, rs2, offset })
    }

    /// Sub-word load (`lb`/`lbu`/`lh`/`lhu`).
    pub fn load_narrow(
        &mut self,
        rd: Reg,
        offset: i32,
        rs1: Reg,
        width: MemWidth,
        signed: bool,
    ) -> &mut Self {
        self.emit(Instr::LoadNarrow { rd, rs1, offset, width, signed })
    }

    /// Sub-word store (`sb`/`sh`).
    pub fn store_narrow(&mut self, rs2: Reg, offset: i32, rs1: Reg, width: MemWidth) -> &mut Self {
        self.emit(Instr::StoreNarrow { rs1, rs2, offset, width })
    }

    /// `flw rd, offset(rs1)`
    pub fn flw(&mut self, rd: FReg, offset: i32, rs1: Reg) -> &mut Self {
        self.emit(Instr::Flw { rd, rs1, offset })
    }

    /// `fsw rs2, offset(rs1)`
    pub fn fsw(&mut self, rs2: FReg, offset: i32, rs1: Reg) -> &mut Self {
        self.emit(Instr::Fsw { rs1, rs2, offset })
    }

    // ---- float ----

    /// `fadd.s rd, rs1, rs2`
    pub fn fadd_s(&mut self, rd: FReg, rs1: FReg, rs2: FReg) -> &mut Self {
        self.emit(Instr::FaddS { rd, rs1, rs2 })
    }

    /// `fmul.s rd, rs1, rs2`
    pub fn fmul_s(&mut self, rd: FReg, rs1: FReg, rs2: FReg) -> &mut Self {
        self.emit(Instr::FmulS { rd, rs1, rs2 })
    }

    /// `fmadd.s rd, rs1, rs2, rs3` — `rd = rs1*rs2 + rs3`.
    pub fn fmadd_s(&mut self, rd: FReg, rs1: FReg, rs2: FReg, rs3: FReg) -> &mut Self {
        self.emit(Instr::FmaddS { rd, rs1, rs2, rs3 })
    }

    /// `fmv.w.x rd, rs1` — bit-move integer to float.
    pub fn fmv_w_x(&mut self, rd: FReg, rs1: Reg) -> &mut Self {
        self.emit(Instr::FmvWX { rd, rs1 })
    }

    /// `fmv.x.w rd, rs1` — bit-move float to integer.
    pub fn fmv_x_w(&mut self, rd: Reg, rs1: FReg) -> &mut Self {
        self.emit(Instr::FmvXW { rd, rs1 })
    }

    // ---- control flow ----

    fn branch_to(&mut self, op: BranchOp, rs1: Reg, rs2: Reg, target: Label) -> &mut Self {
        let at = self.instrs.len();
        self.instrs.push(Instr::Branch { op, rs1, rs2, offset: 0 });
        self.fixups.push((target.0, Fixup::Branch(at)));
        self
    }

    /// `beq rs1, rs2, label`
    pub fn beq(&mut self, rs1: Reg, rs2: Reg, l: Label) -> &mut Self {
        self.branch_to(BranchOp::Eq, rs1, rs2, l)
    }

    /// `bne rs1, rs2, label`
    pub fn bne(&mut self, rs1: Reg, rs2: Reg, l: Label) -> &mut Self {
        self.branch_to(BranchOp::Ne, rs1, rs2, l)
    }

    /// `blt rs1, rs2, label`
    pub fn blt(&mut self, rs1: Reg, rs2: Reg, l: Label) -> &mut Self {
        self.branch_to(BranchOp::Lt, rs1, rs2, l)
    }

    /// `bge rs1, rs2, label`
    pub fn bge(&mut self, rs1: Reg, rs2: Reg, l: Label) -> &mut Self {
        self.branch_to(BranchOp::Ge, rs1, rs2, l)
    }

    /// `bltu rs1, rs2, label`
    pub fn bltu(&mut self, rs1: Reg, rs2: Reg, l: Label) -> &mut Self {
        self.branch_to(BranchOp::Ltu, rs1, rs2, l)
    }

    /// `bgeu rs1, rs2, label`
    pub fn bgeu(&mut self, rs1: Reg, rs2: Reg, l: Label) -> &mut Self {
        self.branch_to(BranchOp::Geu, rs1, rs2, l)
    }

    /// Pseudo `beqz rs, label`.
    pub fn beqz(&mut self, rs: Reg, l: Label) -> &mut Self {
        self.beq(rs, Reg::ZERO, l)
    }

    /// Pseudo `bnez rs, label`.
    pub fn bnez(&mut self, rs: Reg, l: Label) -> &mut Self {
        self.bne(rs, Reg::ZERO, l)
    }

    /// Pseudo `j label` (jal x0).
    pub fn j(&mut self, l: Label) -> &mut Self {
        let at = self.instrs.len();
        self.instrs.push(Instr::Jal { rd: Reg::ZERO, offset: 0 });
        self.fixups.push((l.0, Fixup::Jal(at)));
        self
    }

    // ---- vector ----

    /// `vsetvli rd, rs1, e32,m1`
    pub fn vsetvli(&mut self, rd: Reg, rs1: Reg) -> &mut Self {
        self.emit(Instr::Vsetvli { rd, rs1, cfg: VConfig::E32M1 })
    }

    /// `vle32.v vd, (rs1)`
    pub fn vle32(&mut self, vd: VReg, rs1: Reg) -> &mut Self {
        self.emit(Instr::Vle32 { vd, rs1 })
    }

    /// `vse32.v vs3, (rs1)`
    pub fn vse32(&mut self, vs3: VReg, rs1: Reg) -> &mut Self {
        self.emit(Instr::Vse32 { vs3, rs1 })
    }

    /// `vluxei32.v vd, (rs1), vs2` — indexed gather.
    pub fn vluxei32(&mut self, vd: VReg, rs1: Reg, vs2: VReg) -> &mut Self {
        self.emit(Instr::Vluxei32 { vd, rs1, vs2 })
    }

    /// `vfmacc.vv vd, vs1, vs2`
    pub fn vfmacc_vv(&mut self, vd: VReg, vs1: VReg, vs2: VReg) -> &mut Self {
        self.emit(Instr::VfmaccVV { vd, vs1, vs2 })
    }

    /// `vfmul.vv vd, vs1, vs2`
    pub fn vfmul_vv(&mut self, vd: VReg, vs1: VReg, vs2: VReg) -> &mut Self {
        self.emit(Instr::VfmulVV { vd, vs1, vs2 })
    }

    /// `vfadd.vv vd, vs1, vs2`
    pub fn vfadd_vv(&mut self, vd: VReg, vs1: VReg, vs2: VReg) -> &mut Self {
        self.emit(Instr::VfaddVV { vd, vs1, vs2 })
    }

    /// `vfredosum.vs vd, vs2, vs1` — `vd[0] = vs1[0] + sum(vs2)`.
    pub fn vfredosum_vs(&mut self, vd: VReg, vs2: VReg, vs1: VReg) -> &mut Self {
        self.emit(Instr::VfredosumVS { vd, vs1, vs2 })
    }

    /// `vsll.vi vd, vs2, shamt`
    pub fn vsll_vi(&mut self, vd: VReg, vs2: VReg, shamt: i32) -> &mut Self {
        assert!((0..32).contains(&shamt));
        self.emit(Instr::VsllVI { vd, vs2, imm5: shamt })
    }

    /// `vmv.v.i vd, imm5`
    pub fn vmv_v_i(&mut self, vd: VReg, imm5: i32) -> &mut Self {
        assert!((-16..16).contains(&imm5));
        self.emit(Instr::VmvVI { vd, imm5 })
    }

    /// `vmv.v.x vd, rs1`
    pub fn vmv_v_x(&mut self, vd: VReg, rs1: Reg) -> &mut Self {
        self.emit(Instr::VmvVX { vd, rs1 })
    }

    /// `vfmv.f.s rd, vs2`
    pub fn vfmv_f_s(&mut self, rd: FReg, vs2: VReg) -> &mut Self {
        self.emit(Instr::VfmvFS { rd, vs2 })
    }

    // ---- system ----

    /// `csrrs rd, csr, rs1`
    pub fn csrrs(&mut self, rd: Reg, csr: u32, rs1: Reg) -> &mut Self {
        self.emit(Instr::Csrrs { rd, csr, rs1 })
    }

    /// Pseudo `rdcycle rd`.
    pub fn rdcycle(&mut self, rd: Reg) -> &mut Self {
        self.csrrs(rd, 0xC00, Reg::ZERO)
    }

    /// `ebreak` — the simulator's halt.
    pub fn ebreak(&mut self) -> &mut Self {
        self.emit(Instr::Ebreak)
    }

    /// Resolve all labels and produce the final [`Program`].
    ///
    /// Panics if any referenced label was never bound (a kernel-library
    /// programming error, not a runtime condition).
    pub fn build(mut self) -> Program {
        for (label_id, fixup) in std::mem::take(&mut self.fixups) {
            let target = self.labels[label_id].expect("branch to unbound label");
            match fixup {
                Fixup::Branch(at) => {
                    let offset = (target as i64 - at as i64) as i32 * 4;
                    if let Instr::Branch { offset: o, .. } = &mut self.instrs[at] {
                        *o = offset;
                    } else {
                        unreachable!("fixup points at non-branch");
                    }
                }
                Fixup::Jal(at) => {
                    let offset = (target as i64 - at as i64) as i32 * 4;
                    if let Instr::Jal { offset: o, .. } = &mut self.instrs[at] {
                        *o = offset;
                    } else {
                        unreachable!("fixup points at non-jal");
                    }
                }
            }
        }
        Program::new(self.base, self.instrs, self.symbols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_branch_is_patched() {
        let mut b = KernelBuilder::new(0);
        let done = b.label();
        b.li(Reg::a(0), 0);
        b.beqz(Reg::a(0), done);
        b.addi(Reg::a(0), Reg::a(0), 1);
        b.bind(done);
        b.ebreak();
        let p = b.build();
        // beqz at index 1; done at index 3 -> offset +8
        match p.instrs()[1] {
            Instr::Branch { offset, .. } => assert_eq!(offset, 8),
            other => panic!("expected branch, got {other:?}"),
        }
    }

    #[test]
    fn backward_branch_is_negative() {
        let mut b = KernelBuilder::new(0);
        let top = b.here();
        b.addi(Reg::a(0), Reg::a(0), -1);
        b.bnez(Reg::a(0), top);
        b.ebreak();
        let p = b.build();
        match p.instrs()[1] {
            Instr::Branch { offset, .. } => assert_eq!(offset, -4),
            other => panic!("expected branch, got {other:?}"),
        }
    }

    #[test]
    fn li_small_is_one_instruction() {
        let mut b = KernelBuilder::new(0);
        b.li(Reg::a(0), 42);
        assert_eq!(b.len(), 1);
        let p = b.build();
        assert_eq!(
            p.instrs()[0],
            Instr::OpImm { op: AluOp::Add, rd: Reg::a(0), rs1: Reg::ZERO, imm: 42 }
        );
    }

    #[test]
    fn li_large_splits_correctly() {
        // Check the hi/lo split produces the right value for tricky cases
        // where the low 12 bits are negative.
        for value in [0x12345678i32, -1, 0x7ff, 0x800, 0xfff, 0x1000, -2049, i32::MAX, i32::MIN] {
            let mut b = KernelBuilder::new(0);
            b.li(Reg::a(0), value);
            let p = b.build();
            // Evaluate the sequence by hand.
            let mut x: i32 = 0;
            for i in p.instrs() {
                match *i {
                    Instr::Lui { imm20, .. } => x = imm20 << 12,
                    Instr::OpImm { imm, rs1, .. } => {
                        x = if rs1 == Reg::ZERO { imm } else { x.wrapping_add(imm) }
                    }
                    _ => unreachable!(),
                }
            }
            assert_eq!(x, value, "li {value:#x}");
        }
    }

    #[test]
    fn jump_fixups() {
        let mut b = KernelBuilder::new(0);
        let end = b.label();
        b.j(end);
        b.nop();
        b.bind(end);
        b.ebreak();
        let p = b.build();
        match p.instrs()[0] {
            Instr::Jal { offset, .. } => assert_eq!(offset, 8),
            other => panic!("expected jal, got {other:?}"),
        }
    }

    #[test]
    fn names_are_exported() {
        let mut b = KernelBuilder::new(0x1000);
        b.nop();
        b.name("loop_body");
        b.nop();
        let p = b.build();
        assert_eq!(p.symbol("loop_body"), Some(0x1004));
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics() {
        let mut b = KernelBuilder::new(0);
        let l = b.label();
        b.j(l);
        b.build();
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut b = KernelBuilder::new(0);
        let l = b.here();
        b.bind(l);
    }
}
