//! An assembled program: decoded instructions plus a symbol table.

use crate::instr::Instr;
use std::collections::BTreeMap;

/// An assembled program.
///
/// Instructions live at word-aligned addresses starting from
/// [`Program::base`]; `pc` values used by the simulator are byte addresses.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    base: u32,
    instrs: Vec<Instr>,
    symbols: BTreeMap<String, u32>,
}

impl Program {
    /// Build a program at base byte address `base` (must be 4-aligned).
    pub fn new(base: u32, instrs: Vec<Instr>, symbols: BTreeMap<String, u32>) -> Self {
        assert_eq!(base % 4, 0, "program base must be word aligned");
        Program { base, instrs, symbols }
    }

    /// Base byte address of the first instruction.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Decoded instructions in address order.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// The instruction at byte address `pc`, if in range.
    ///
    /// Executed once per non-stalled cycle, so this is a single
    /// subtract-shift-index: `base` is 4-aligned (asserted in `new`), so a
    /// misaligned `pc` leaves low bits in the wrapped offset, and `pc <
    /// base` wraps to an offset far past `instrs.len()` — both fall out of
    /// the one slice lookup.
    pub fn fetch(&self, pc: u32) -> Option<Instr> {
        let off = pc.wrapping_sub(self.base);
        if off & 3 != 0 {
            return None;
        }
        self.instrs.get((off >> 2) as usize).copied()
    }

    /// Address of a label.
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }

    /// All symbols (label → byte address).
    pub fn symbols(&self) -> &BTreeMap<String, u32> {
        &self.symbols
    }

    /// Encode every instruction to machine words (what would be burned into
    /// the instruction memory image).
    pub fn words(&self) -> Vec<u32> {
        self.instrs.iter().map(|i| crate::encode::encode(*i)).collect()
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True if the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Instr;
    use crate::reg::Reg;

    fn prog() -> Program {
        let mut syms = BTreeMap::new();
        syms.insert("start".to_string(), 0x100);
        Program::new(
            0x100,
            vec![
                Instr::OpImm { op: crate::AluOp::Add, rd: Reg::a(0), rs1: Reg::ZERO, imm: 1 },
                Instr::Ebreak,
            ],
            syms,
        )
    }

    #[test]
    fn fetch_by_byte_address() {
        let p = prog();
        assert!(p.fetch(0x100).is_some());
        assert_eq!(p.fetch(0x104), Some(Instr::Ebreak));
        assert_eq!(p.fetch(0x108), None);
        assert_eq!(p.fetch(0x0fc), None);
        assert_eq!(p.fetch(0x102), None); // misaligned
    }

    #[test]
    fn symbols_resolve() {
        let p = prog();
        assert_eq!(p.symbol("start"), Some(0x100));
        assert_eq!(p.symbol("nope"), None);
    }

    #[test]
    fn words_are_decodable() {
        let p = prog();
        for (w, i) in p.words().iter().zip(p.instrs()) {
            assert_eq!(crate::decode::decode(*w).unwrap(), *i);
        }
    }

    #[test]
    #[should_panic(expected = "word aligned")]
    fn misaligned_base_panics() {
        Program::new(2, vec![], BTreeMap::new());
    }
}
