//! RV32IMF + V-subset instruction set architecture.
//!
//! This crate is the ISA half of the paper's simulation substrate (§4 uses
//! *Spike* configured as "a 32-bit RISCV base architecture along with
//! vector, compressed, atomic, multiply, floating and double precision
//! extensions"; the kernels in the evaluation exercise the integer base,
//! multiply, single-float and vector subsets, which is what we implement).
//!
//! Provided here:
//!
//! - [`Instr`] — the instruction type (decoded form; this is what the
//!   `hht-sim` core executes).
//! - [`fn@encode`]/[`fn@decode`] — real RV32 binary encodings, round-trip tested.
//! - [`asm`] — a two-pass text assembler with labels.
//! - [`builder`] — a programmatic assembler ([`builder::KernelBuilder`])
//!   used by the kernel library in `hht-system`.
//! - [`Program`] — an assembled program: words plus symbol table.
//!
//! ```
//! use hht_isa::asm::assemble;
//!
//! let p = assemble(r#"
//!     li   a0, 40
//!     addi a0, a0, 2
//!     ebreak
//! "#).unwrap();
//! assert_eq!(p.instrs().len(), 3);
//! ```

pub mod asm;
pub mod builder;
pub mod decode;
pub mod disasm;
pub mod encode;
pub mod instr;
pub mod program;
pub mod reg;

pub use decode::{decode, DecodeError};
pub use encode::encode;
pub use instr::{AluOp, BranchOp, Instr, VConfig};
pub use program::Program;
pub use reg::{FReg, Reg, VReg};

#[cfg(test)]
mod tests {
    #[test]
    fn doc_example() {
        let p = crate::asm::assemble("li a0, 40\naddi a0, a0, 2\nebreak\n").unwrap();
        assert_eq!(p.instrs().len(), 3);
    }
}
