//! Two-pass text assembler for the supported RV32IMF+V subset.
//!
//! Accepts standard GNU-style assembly: one instruction per line, `label:`
//! definitions, `#` comments, ABI register names, decimal/hex immediates,
//! `offset(base)` memory operands and pseudo-instructions (`li`, `mv`,
//! `nop`, `j`, `beqz`, `bnez`, `rdcycle`).
//!
//! ```
//! let p = hht_isa::asm::assemble(r#"
//!     li   t0, 10        # counter
//! loop:
//!     addi t0, t0, -1
//!     bnez t0, loop
//!     ebreak
//! "#).unwrap();
//! assert_eq!(p.instrs().len(), 4);
//! ```

use crate::builder::{KernelBuilder, Label};
use crate::instr as hht_md;
use crate::instr::AluOp;
use crate::reg::{FReg, Reg, VReg};
use std::collections::HashMap;
use std::fmt;

/// An assembly error with 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AsmError {}

fn err<T>(line: usize, msg: impl Into<String>) -> Result<T, AsmError> {
    Err(AsmError { line, msg: msg.into() })
}

/// Parse an integer immediate: decimal, `0x` hex, optional leading `-`.
fn parse_imm(s: &str, line: usize) -> Result<i32, AsmError> {
    let t = s.trim();
    let (neg, t) = match t.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, t),
    };
    let v: Option<i64> = if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        u32::from_str_radix(hex, 16).ok().map(|v| v as i64)
    } else {
        t.parse::<i64>().ok()
    };
    match v {
        Some(v) => {
            let v = if neg { -v } else { v };
            if v < i32::MIN as i64 || v > u32::MAX as i64 {
                return err(line, format!("immediate out of range: {s}"));
            }
            Ok(v as i32)
        }
        None => err(line, format!("bad immediate: {s}")),
    }
}

/// Parse `offset(base)` into `(offset, Reg)`.
fn parse_mem(s: &str, line: usize) -> Result<(i32, Reg), AsmError> {
    let s = s.trim();
    let open = s
        .find('(')
        .ok_or_else(|| AsmError { line, msg: format!("expected offset(base), got {s}") })?;
    if !s.ends_with(')') {
        return err(line, format!("expected offset(base), got {s}"));
    }
    let off_str = &s[..open];
    let base_str = &s[open + 1..s.len() - 1];
    let offset = if off_str.trim().is_empty() { 0 } else { parse_imm(off_str, line)? };
    let base = Reg::parse(base_str.trim())
        .ok_or_else(|| AsmError { line, msg: format!("bad base register {base_str}") })?;
    Ok((offset, base))
}

fn xreg(s: &str, line: usize) -> Result<Reg, AsmError> {
    Reg::parse(s.trim()).ok_or_else(|| AsmError { line, msg: format!("bad register {s}") })
}

fn fregp(s: &str, line: usize) -> Result<FReg, AsmError> {
    FReg::parse(s.trim()).ok_or_else(|| AsmError { line, msg: format!("bad float register {s}") })
}

fn vregp(s: &str, line: usize) -> Result<VReg, AsmError> {
    VReg::parse(s.trim()).ok_or_else(|| AsmError { line, msg: format!("bad vector register {s}") })
}

/// Strip the surrounding parens of a vector memory operand `(a0)`.
fn vmem(s: &str, line: usize) -> Result<Reg, AsmError> {
    let s = s.trim();
    let inner = s
        .strip_prefix('(')
        .and_then(|s| s.strip_suffix(')'))
        .ok_or_else(|| AsmError { line, msg: format!("expected (base), got {s}") })?;
    xreg(inner, line)
}

struct Ctx {
    b: KernelBuilder,
    labels: HashMap<String, Label>,
}

impl Ctx {
    fn label_for(&mut self, name: &str) -> Label {
        if let Some(l) = self.labels.get(name) {
            return *l;
        }
        let l = self.b.label();
        self.labels.insert(name.to_string(), l);
        l
    }
}

/// Assemble source text into a [`Program`](crate::Program) based at 0.
pub fn assemble(src: &str) -> Result<crate::Program, AsmError> {
    assemble_at(src, 0)
}

/// Assemble source text into a [`Program`](crate::Program) at `base`.
pub fn assemble_at(src: &str, base: u32) -> Result<crate::Program, AsmError> {
    let mut ctx = Ctx { b: KernelBuilder::new(base), labels: HashMap::new() };
    let mut bound: Vec<String> = Vec::new();
    for (ln, raw) in src.lines().enumerate() {
        let line = ln + 1;
        let mut text = raw;
        if let Some(hash) = text.find('#') {
            text = &text[..hash];
        }
        let mut text = text.trim();
        // Labels (possibly several on one line).
        while let Some(colon) = text.find(':') {
            let name = text[..colon].trim();
            if name.is_empty() || name.contains(char::is_whitespace) {
                return err(line, format!("bad label {name:?}"));
            }
            let l = ctx.label_for(name);
            if bound.contains(&name.to_string()) {
                return err(line, format!("label {name} defined twice"));
            }
            ctx.b.bind(l);
            ctx.b.name(name);
            bound.push(name.to_string());
            text = text[colon + 1..].trim();
        }
        if text.is_empty() {
            continue;
        }
        let (mnemonic, rest) = match text.find(char::is_whitespace) {
            Some(i) => (&text[..i], text[i..].trim()),
            None => (text, ""),
        };
        let ops: Vec<&str> =
            if rest.is_empty() { Vec::new() } else { rest.split(',').map(str::trim).collect() };
        let nops = ops.len();
        let want = |n: usize| -> Result<(), AsmError> {
            if nops != n {
                return err(line, format!("{mnemonic} expects {n} operands, got {nops}"));
            }
            Ok(())
        };
        match mnemonic {
            "addi" => {
                want(3)?;
                ctx.b.addi(xreg(ops[0], line)?, xreg(ops[1], line)?, parse_imm(ops[2], line)?);
            }
            "slli" => {
                want(3)?;
                ctx.b.slli(xreg(ops[0], line)?, xreg(ops[1], line)?, parse_imm(ops[2], line)?);
            }
            "srli" => {
                want(3)?;
                ctx.b.srli(xreg(ops[0], line)?, xreg(ops[1], line)?, parse_imm(ops[2], line)?);
            }
            "andi" => {
                want(3)?;
                ctx.b.andi(xreg(ops[0], line)?, xreg(ops[1], line)?, parse_imm(ops[2], line)?);
            }
            "mul" => {
                want(3)?;
                ctx.b.mul(xreg(ops[0], line)?, xreg(ops[1], line)?, xreg(ops[2], line)?);
            }
            "add" | "sub" | "sll" | "slt" | "sltu" | "xor" | "srl" | "sra" | "or" | "and" => {
                want(3)?;
                let op = match mnemonic {
                    "add" => AluOp::Add,
                    "sub" => AluOp::Sub,
                    "sll" => AluOp::Sll,
                    "slt" => AluOp::Slt,
                    "sltu" => AluOp::Sltu,
                    "xor" => AluOp::Xor,
                    "srl" => AluOp::Srl,
                    "sra" => AluOp::Sra,
                    "or" => AluOp::Or,
                    _ => AluOp::And,
                };
                ctx.b.alu(op, xreg(ops[0], line)?, xreg(ops[1], line)?, xreg(ops[2], line)?);
            }
            "slti" | "sltiu" | "sltui" | "xori" | "ori" | "srai" => {
                want(3)?;
                let op = match mnemonic {
                    "slti" => AluOp::Slt,
                    "sltiu" | "sltui" => AluOp::Sltu,
                    "xori" => AluOp::Xor,
                    "ori" => AluOp::Or,
                    _ => AluOp::Sra,
                };
                ctx.b.alu_imm(
                    op,
                    xreg(ops[0], line)?,
                    xreg(ops[1], line)?,
                    parse_imm(ops[2], line)?,
                );
            }
            "lui" | "auipc" => {
                want(2)?;
                let rd = xreg(ops[0], line)?;
                let imm = parse_imm(ops[1], line)?;
                if mnemonic == "lui" {
                    ctx.b.lui(rd, imm);
                } else {
                    ctx.b.auipc(rd, imm);
                }
            }
            "jalr" => {
                want(2)?;
                let (off, base) = parse_mem(ops[1], line)?;
                ctx.b.jalr(xreg(ops[0], line)?, off, base);
            }
            "fsub.s" => {
                want(3)?;
                ctx.b.fsub_s(fregp(ops[0], line)?, fregp(ops[1], line)?, fregp(ops[2], line)?);
            }
            "mulh" | "mulhsu" | "mulhu" | "div" | "divu" | "rem" | "remu" => {
                want(3)?;
                use hht_md::MulDivOp::*;
                let op = match mnemonic {
                    "mulh" => Mulh,
                    "mulhsu" => Mulhsu,
                    "mulhu" => Mulhu,
                    "div" => Div,
                    "divu" => Divu,
                    "rem" => Rem,
                    _ => Remu,
                };
                ctx.b.muldiv(op, xreg(ops[0], line)?, xreg(ops[1], line)?, xreg(ops[2], line)?);
            }
            "li" => {
                want(2)?;
                ctx.b.li(xreg(ops[0], line)?, parse_imm(ops[1], line)?);
            }
            "mv" => {
                want(2)?;
                ctx.b.mv(xreg(ops[0], line)?, xreg(ops[1], line)?);
            }
            "nop" => {
                want(0)?;
                ctx.b.nop();
            }
            "lw" => {
                want(2)?;
                let (off, base) = parse_mem(ops[1], line)?;
                ctx.b.lw(xreg(ops[0], line)?, off, base);
            }
            "lb" | "lbu" | "lh" | "lhu" => {
                want(2)?;
                let (off, base) = parse_mem(ops[1], line)?;
                let (width, signed) = match mnemonic {
                    "lb" => (hht_md::MemWidth::Byte, true),
                    "lbu" => (hht_md::MemWidth::Byte, false),
                    "lh" => (hht_md::MemWidth::Half, true),
                    _ => (hht_md::MemWidth::Half, false),
                };
                ctx.b.load_narrow(xreg(ops[0], line)?, off, base, width, signed);
            }
            "sb" | "sh" => {
                want(2)?;
                let (off, base) = parse_mem(ops[1], line)?;
                let width =
                    if mnemonic == "sb" { hht_md::MemWidth::Byte } else { hht_md::MemWidth::Half };
                ctx.b.store_narrow(xreg(ops[0], line)?, off, base, width);
            }
            "sw" => {
                want(2)?;
                let (off, base) = parse_mem(ops[1], line)?;
                ctx.b.sw(xreg(ops[0], line)?, off, base);
            }
            "flw" => {
                want(2)?;
                let (off, base) = parse_mem(ops[1], line)?;
                ctx.b.flw(fregp(ops[0], line)?, off, base);
            }
            "fsw" => {
                want(2)?;
                let (off, base) = parse_mem(ops[1], line)?;
                ctx.b.fsw(fregp(ops[0], line)?, off, base);
            }
            "fadd.s" => {
                want(3)?;
                ctx.b.fadd_s(fregp(ops[0], line)?, fregp(ops[1], line)?, fregp(ops[2], line)?);
            }
            "fmul.s" => {
                want(3)?;
                ctx.b.fmul_s(fregp(ops[0], line)?, fregp(ops[1], line)?, fregp(ops[2], line)?);
            }
            "fmadd.s" => {
                want(4)?;
                ctx.b.fmadd_s(
                    fregp(ops[0], line)?,
                    fregp(ops[1], line)?,
                    fregp(ops[2], line)?,
                    fregp(ops[3], line)?,
                );
            }
            "fmv.w.x" => {
                want(2)?;
                ctx.b.fmv_w_x(fregp(ops[0], line)?, xreg(ops[1], line)?);
            }
            "fmv.x.w" => {
                want(2)?;
                ctx.b.fmv_x_w(xreg(ops[0], line)?, fregp(ops[1], line)?);
            }
            "beq" | "bne" | "blt" | "bge" | "bltu" | "bgeu" => {
                want(3)?;
                let rs1 = xreg(ops[0], line)?;
                let rs2 = xreg(ops[1], line)?;
                let l = ctx.label_for(ops[2]);
                match mnemonic {
                    "beq" => ctx.b.beq(rs1, rs2, l),
                    "bne" => ctx.b.bne(rs1, rs2, l),
                    "blt" => ctx.b.blt(rs1, rs2, l),
                    "bge" => ctx.b.bge(rs1, rs2, l),
                    "bltu" => ctx.b.bltu(rs1, rs2, l),
                    _ => ctx.b.bgeu(rs1, rs2, l),
                };
            }
            "beqz" | "bnez" => {
                want(2)?;
                let rs = xreg(ops[0], line)?;
                let l = ctx.label_for(ops[1]);
                if mnemonic == "beqz" {
                    ctx.b.beqz(rs, l);
                } else {
                    ctx.b.bnez(rs, l);
                }
            }
            "j" => {
                want(1)?;
                let l = ctx.label_for(ops[0]);
                ctx.b.j(l);
            }
            "vsetvli" => {
                // vsetvli rd, rs1, e32, m1 (the trailing vtype tokens are
                // validated but only e32/m1 is accepted)
                if nops < 2 {
                    return err(line, "vsetvli expects rd, rs1, e32, m1");
                }
                for extra in &ops[2..] {
                    if !matches!(*extra, "e32" | "m1" | "ta" | "ma") {
                        return err(line, format!("unsupported vtype element {extra}"));
                    }
                }
                ctx.b.vsetvli(xreg(ops[0], line)?, xreg(ops[1], line)?);
            }
            "vle32.v" => {
                want(2)?;
                ctx.b.vle32(vregp(ops[0], line)?, vmem(ops[1], line)?);
            }
            "vse32.v" => {
                want(2)?;
                ctx.b.vse32(vregp(ops[0], line)?, vmem(ops[1], line)?);
            }
            "vluxei32.v" => {
                want(3)?;
                ctx.b.vluxei32(vregp(ops[0], line)?, vmem(ops[1], line)?, vregp(ops[2], line)?);
            }
            "vfmacc.vv" => {
                want(3)?;
                ctx.b.vfmacc_vv(vregp(ops[0], line)?, vregp(ops[1], line)?, vregp(ops[2], line)?);
            }
            "vfmul.vv" => {
                want(3)?;
                ctx.b.vfmul_vv(vregp(ops[0], line)?, vregp(ops[1], line)?, vregp(ops[2], line)?);
            }
            "vfadd.vv" => {
                want(3)?;
                ctx.b.vfadd_vv(vregp(ops[0], line)?, vregp(ops[1], line)?, vregp(ops[2], line)?);
            }
            "vfredosum.vs" => {
                want(3)?;
                ctx.b.vfredosum_vs(
                    vregp(ops[0], line)?,
                    vregp(ops[1], line)?,
                    vregp(ops[2], line)?,
                );
            }
            "vsll.vi" => {
                want(3)?;
                ctx.b.vsll_vi(vregp(ops[0], line)?, vregp(ops[1], line)?, parse_imm(ops[2], line)?);
            }
            "vmv.v.i" => {
                want(2)?;
                ctx.b.vmv_v_i(vregp(ops[0], line)?, parse_imm(ops[1], line)?);
            }
            "vmv.v.x" => {
                want(2)?;
                ctx.b.vmv_v_x(vregp(ops[0], line)?, xreg(ops[1], line)?);
            }
            "vfmv.f.s" => {
                want(2)?;
                ctx.b.vfmv_f_s(fregp(ops[0], line)?, vregp(ops[1], line)?);
            }
            "rdcycle" => {
                want(1)?;
                ctx.b.rdcycle(xreg(ops[0], line)?);
            }
            "csrrs" => {
                want(3)?;
                ctx.b.csrrs(
                    xreg(ops[0], line)?,
                    parse_imm(ops[1], line)? as u32,
                    xreg(ops[2], line)?,
                );
            }
            "ebreak" => {
                want(0)?;
                ctx.b.ebreak();
            }
            "ecall" => {
                want(0)?;
                ctx.b.emit(crate::Instr::Ecall);
            }
            other => return err(line, format!("unknown mnemonic {other}")),
        }
    }
    // Any label used but never bound?
    for (name, l) in &ctx.labels {
        if !bound.iter().any(|b| b == name) {
            // Bind to end so build() doesn't panic, then report cleanly.
            let _ = l;
            return Err(AsmError { line: 0, msg: format!("undefined label {name}") });
        }
    }
    Ok(ctx.b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{AluOp, BranchOp, Instr};

    #[test]
    fn basic_program() {
        let p = assemble("li a0, 5\naddi a0, a0, 1\nebreak").unwrap();
        assert_eq!(p.instrs().len(), 3);
        assert_eq!(
            p.instrs()[0],
            Instr::OpImm { op: AluOp::Add, rd: Reg::a(0), rs1: Reg::ZERO, imm: 5 }
        );
    }

    #[test]
    fn labels_and_branches() {
        let p =
            assemble("start:\n  li t0, 3\nloop:\n  addi t0, t0, -1\n  bnez t0, loop\n  ebreak\n")
                .unwrap();
        assert_eq!(p.symbol("start"), Some(0));
        assert_eq!(p.symbol("loop"), Some(4));
        match p.instrs()[2] {
            Instr::Branch { op: BranchOp::Ne, offset, .. } => assert_eq!(offset, -4),
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn memory_operands() {
        let p = assemble("lw a1, 8(a0)\nsw a1, -4(sp)\nflw fa0, (a2)\nebreak").unwrap();
        assert_eq!(p.instrs()[0], Instr::Lw { rd: Reg::a(1), rs1: Reg::a(0), offset: 8 });
        assert_eq!(p.instrs()[1], Instr::Sw { rs1: Reg::SP, rs2: Reg::a(1), offset: -4 });
        assert_eq!(p.instrs()[2], Instr::Flw { rd: FReg::a(0), rs1: Reg::a(2), offset: 0 });
    }

    #[test]
    fn vector_syntax() {
        let p = assemble(
            "vsetvli t0, a0, e32, m1\nvle32.v v1, (a1)\nvluxei32.v v2, (a2), v1\nvfmacc.vv v3, v1, v2\nvfmv.f.s fa0, v3\nebreak",
        )
        .unwrap();
        assert!(matches!(p.instrs()[0], Instr::Vsetvli { .. }));
        assert!(matches!(p.instrs()[2], Instr::Vluxei32 { .. }));
    }

    #[test]
    fn comments_and_blank_lines() {
        let p = assemble("# header\n\n  li a0, 1 # trailing\n\nebreak\n").unwrap();
        assert_eq!(p.instrs().len(), 2);
    }

    #[test]
    fn hex_immediates() {
        let p = assemble("li a0, 0x10\nli a1, -0x10\nebreak").unwrap();
        assert_eq!(
            p.instrs()[0],
            Instr::OpImm { op: AluOp::Add, rd: Reg::a(0), rs1: Reg::ZERO, imm: 16 }
        );
        assert_eq!(
            p.instrs()[1],
            Instr::OpImm { op: AluOp::Add, rd: Reg::a(1), rs1: Reg::ZERO, imm: -16 }
        );
    }

    #[test]
    fn error_reporting() {
        let e = assemble("frobnicate a0").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.msg.contains("frobnicate"));
        let e = assemble("addi a0, a0").unwrap_err();
        assert!(e.msg.contains("expects 3"));
        let e = assemble("lw a0, nonsense").unwrap_err();
        assert!(e.msg.contains("offset(base)"));
        let e = assemble("j nowhere\nebreak").unwrap_err();
        assert!(e.msg.contains("undefined label"));
        let e = assemble("x: nop\nx: nop").unwrap_err();
        assert!(e.msg.contains("defined twice"));
    }

    #[test]
    fn li_expands_for_large_values() {
        let p = assemble("li a0, 0x40000000\nebreak").unwrap();
        assert!(matches!(p.instrs()[0], Instr::Lui { .. }));
    }

    #[test]
    fn assemble_at_base() {
        let p = assemble_at("entry: nop\nebreak", 0x800).unwrap();
        assert_eq!(p.base(), 0x800);
        assert_eq!(p.symbol("entry"), Some(0x800));
        assert!(p.fetch(0x800).is_some());
    }
}
