//! Binary decoding, the exact inverse of [`crate::encode::encode`].

use crate::instr::{AluOp, BranchOp, Instr, MemWidth, MulDivOp, VConfig};
use crate::reg::{FReg, Reg, VReg};
use std::fmt;

/// A word that does not decode to a supported instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The offending machine word.
    pub word: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot decode instruction word {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

fn reg(w: u32, lo: u32) -> Reg {
    Reg::new(((w >> lo) & 0x1f) as u8)
}

fn freg(w: u32, lo: u32) -> FReg {
    FReg::new(((w >> lo) & 0x1f) as u8)
}

fn vreg(w: u32, lo: u32) -> VReg {
    VReg::new(((w >> lo) & 0x1f) as u8)
}

fn i_imm(w: u32) -> i32 {
    (w as i32) >> 20
}

fn s_imm(w: u32) -> i32 {
    (((w as i32) >> 25) << 5) | ((w >> 7) & 0x1f) as i32
}

fn b_imm(w: u32) -> i32 {
    let sign = (w as i32) >> 31; // imm[12]
    (sign << 12)
        | ((((w >> 7) & 1) as i32) << 11)
        | ((((w >> 25) & 0x3f) as i32) << 5)
        | ((((w >> 8) & 0xf) as i32) << 1)
}

fn j_imm(w: u32) -> i32 {
    let sign = (w as i32) >> 31; // imm[20]
    (sign << 20)
        | ((((w >> 12) & 0xff) as i32) << 12)
        | ((((w >> 20) & 1) as i32) << 11)
        | ((((w >> 21) & 0x3ff) as i32) << 1)
}

fn alu_from_funct(funct3: u32, funct7: u32) -> Option<AluOp> {
    Some(match (funct3, funct7) {
        (0b000, 0) => AluOp::Add,
        (0b000, 0b0100000) => AluOp::Sub,
        (0b001, 0) => AluOp::Sll,
        (0b010, 0) => AluOp::Slt,
        (0b011, 0) => AluOp::Sltu,
        (0b100, 0) => AluOp::Xor,
        (0b101, 0) => AluOp::Srl,
        (0b101, 0b0100000) => AluOp::Sra,
        (0b110, 0) => AluOp::Or,
        (0b111, 0) => AluOp::And,
        _ => return None,
    })
}

/// Decode a 32-bit machine word.
pub fn decode(w: u32) -> Result<Instr, DecodeError> {
    let err = Err(DecodeError { word: w });
    let opcode = w & 0x7f;
    let funct3 = (w >> 12) & 0b111;
    let funct7 = w >> 25;
    Ok(match opcode {
        0b0110111 => Instr::Lui { rd: reg(w, 7), imm20: ((w >> 12) & 0xfffff) as i32 },
        0b0010111 => Instr::Auipc { rd: reg(w, 7), imm20: ((w >> 12) & 0xfffff) as i32 },
        0b1101111 => Instr::Jal { rd: reg(w, 7), offset: j_imm(w) },
        0b1100111 if funct3 == 0 => {
            Instr::Jalr { rd: reg(w, 7), rs1: reg(w, 15), offset: i_imm(w) }
        }
        0b1100011 => {
            let op = match funct3 {
                0b000 => BranchOp::Eq,
                0b001 => BranchOp::Ne,
                0b100 => BranchOp::Lt,
                0b101 => BranchOp::Ge,
                0b110 => BranchOp::Ltu,
                0b111 => BranchOp::Geu,
                _ => return err,
            };
            Instr::Branch { op, rs1: reg(w, 15), rs2: reg(w, 20), offset: b_imm(w) }
        }
        0b0000011 => {
            let (rd, rs1, offset) = (reg(w, 7), reg(w, 15), i_imm(w));
            match funct3 {
                0b010 => Instr::Lw { rd, rs1, offset },
                0b000 => Instr::LoadNarrow { rd, rs1, offset, width: MemWidth::Byte, signed: true },
                0b001 => Instr::LoadNarrow { rd, rs1, offset, width: MemWidth::Half, signed: true },
                0b100 => {
                    Instr::LoadNarrow { rd, rs1, offset, width: MemWidth::Byte, signed: false }
                }
                0b101 => {
                    Instr::LoadNarrow { rd, rs1, offset, width: MemWidth::Half, signed: false }
                }
                _ => return err,
            }
        }
        0b0100011 => {
            let (rs1, rs2, offset) = (reg(w, 15), reg(w, 20), s_imm(w));
            match funct3 {
                0b010 => Instr::Sw { rs1, rs2, offset },
                0b000 => Instr::StoreNarrow { rs1, rs2, offset, width: MemWidth::Byte },
                0b001 => Instr::StoreNarrow { rs1, rs2, offset, width: MemWidth::Half },
                _ => return err,
            }
        }
        0b0010011 => {
            if matches!(funct3, 0b001 | 0b101) {
                // shift-immediate forms carry funct7
                let op = alu_from_funct(funct3, funct7).ok_or(DecodeError { word: w })?;
                Instr::OpImm { op, rd: reg(w, 7), rs1: reg(w, 15), imm: ((w >> 20) & 0x1f) as i32 }
            } else {
                let op = alu_from_funct(funct3, 0).ok_or(DecodeError { word: w })?;
                Instr::OpImm { op, rd: reg(w, 7), rs1: reg(w, 15), imm: i_imm(w) }
            }
        }
        0b0110011 => {
            if funct7 == 0b0000001 {
                let (rd, rs1, rs2) = (reg(w, 7), reg(w, 15), reg(w, 20));
                match funct3 {
                    0b000 => Instr::Mul { rd, rs1, rs2 },
                    0b001 => Instr::MulDiv { op: MulDivOp::Mulh, rd, rs1, rs2 },
                    0b010 => Instr::MulDiv { op: MulDivOp::Mulhsu, rd, rs1, rs2 },
                    0b011 => Instr::MulDiv { op: MulDivOp::Mulhu, rd, rs1, rs2 },
                    0b100 => Instr::MulDiv { op: MulDivOp::Div, rd, rs1, rs2 },
                    0b101 => Instr::MulDiv { op: MulDivOp::Divu, rd, rs1, rs2 },
                    0b110 => Instr::MulDiv { op: MulDivOp::Rem, rd, rs1, rs2 },
                    _ => Instr::MulDiv { op: MulDivOp::Remu, rd, rs1, rs2 },
                }
            } else {
                let op = alu_from_funct(funct3, funct7).ok_or(DecodeError { word: w })?;
                Instr::Op { op, rd: reg(w, 7), rs1: reg(w, 15), rs2: reg(w, 20) }
            }
        }
        0b0000111 => match funct3 {
            0b010 => Instr::Flw { rd: freg(w, 7), rs1: reg(w, 15), offset: i_imm(w) },
            0b110 => {
                // vector load, EEW=32
                let mop = (w >> 26) & 0b11;
                match mop {
                    0b00 => Instr::Vle32 { vd: vreg(w, 7), rs1: reg(w, 15) },
                    0b01 => Instr::Vluxei32 { vd: vreg(w, 7), rs1: reg(w, 15), vs2: vreg(w, 20) },
                    _ => return err,
                }
            }
            _ => return err,
        },
        0b0100111 => match funct3 {
            0b010 => Instr::Fsw { rs1: reg(w, 15), rs2: freg(w, 20), offset: s_imm(w) },
            0b110 if (w >> 26) & 0b11 == 0 => Instr::Vse32 { vs3: vreg(w, 7), rs1: reg(w, 15) },
            _ => return err,
        },
        0b1000011 => {
            Instr::FmaddS { rd: freg(w, 7), rs1: freg(w, 15), rs2: freg(w, 20), rs3: freg(w, 27) }
        }
        0b1010011 => match funct7 {
            0b0000000 => Instr::FaddS { rd: freg(w, 7), rs1: freg(w, 15), rs2: freg(w, 20) },
            0b0000100 => Instr::FsubS { rd: freg(w, 7), rs1: freg(w, 15), rs2: freg(w, 20) },
            0b0001000 => Instr::FmulS { rd: freg(w, 7), rs1: freg(w, 15), rs2: freg(w, 20) },
            0b1111000 => Instr::FmvWX { rd: freg(w, 7), rs1: reg(w, 15) },
            0b1110000 => Instr::FmvXW { rd: reg(w, 7), rs1: freg(w, 15) },
            _ => return err,
        },
        0b1110011 => match funct3 {
            0b000 => match w >> 20 {
                0 => Instr::Ecall,
                1 => Instr::Ebreak,
                _ => return err,
            },
            0b010 => Instr::Csrrs { rd: reg(w, 7), csr: w >> 20, rs1: reg(w, 15) },
            _ => return err,
        },
        0b1010111 => {
            if funct3 == 0b111 {
                // vsetvli (bit 31 must be 0)
                if w >> 31 != 0 {
                    return err;
                }
                let cfg = VConfig::from_vtypei((w >> 20) & 0x7ff).ok_or(DecodeError { word: w })?;
                Instr::Vsetvli { rd: reg(w, 7), rs1: reg(w, 15), cfg }
            } else {
                let funct6 = w >> 26;
                let vm = (w >> 25) & 1;
                if vm != 1 {
                    return err; // masked forms unsupported
                }
                match (funct6, funct3) {
                    (0b000000, 0b001) => {
                        Instr::VfaddVV { vd: vreg(w, 7), vs1: vreg(w, 15), vs2: vreg(w, 20) }
                    }
                    (0b000011, 0b001) => {
                        Instr::VfredosumVS { vd: vreg(w, 7), vs1: vreg(w, 15), vs2: vreg(w, 20) }
                    }
                    (0b100100, 0b001) => {
                        Instr::VfmulVV { vd: vreg(w, 7), vs1: vreg(w, 15), vs2: vreg(w, 20) }
                    }
                    (0b101100, 0b001) => {
                        Instr::VfmaccVV { vd: vreg(w, 7), vs1: vreg(w, 15), vs2: vreg(w, 20) }
                    }
                    (0b010000, 0b001) if (w >> 15) & 0x1f == 0 => {
                        Instr::VfmvFS { rd: freg(w, 7), vs2: vreg(w, 20) }
                    }
                    (0b100101, 0b011) => {
                        let imm5 = ((w >> 15) & 0x1f) as i32; // shamt: zero-extended
                        Instr::VsllVI { vd: vreg(w, 7), vs2: vreg(w, 20), imm5 }
                    }
                    (0b010111, 0b011) if (w >> 20) & 0x1f == 0 => {
                        // sign-extend the 5-bit immediate
                        let raw = ((w >> 15) & 0x1f) as i32;
                        let imm5 = (raw << 27) >> 27;
                        Instr::VmvVI { vd: vreg(w, 7), imm5 }
                    }
                    (0b010111, 0b100) if (w >> 20) & 0x1f == 0 => {
                        Instr::VmvVX { vd: vreg(w, 7), rs1: reg(w, 15) }
                    }
                    _ => return err,
                }
            }
        }
        _ => return err,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;
    use proptest::prelude::*;

    fn arb_reg() -> impl Strategy<Value = Reg> {
        (0u8..32).prop_map(Reg::new)
    }
    fn arb_freg() -> impl Strategy<Value = FReg> {
        (0u8..32).prop_map(FReg::new)
    }
    fn arb_vreg() -> impl Strategy<Value = VReg> {
        (0u8..32).prop_map(VReg::new)
    }
    fn arb_alu() -> impl Strategy<Value = AluOp> {
        prop_oneof![
            Just(AluOp::Add),
            Just(AluOp::Sub),
            Just(AluOp::Sll),
            Just(AluOp::Slt),
            Just(AluOp::Sltu),
            Just(AluOp::Xor),
            Just(AluOp::Srl),
            Just(AluOp::Sra),
            Just(AluOp::Or),
            Just(AluOp::And),
        ]
    }
    fn arb_branch() -> impl Strategy<Value = BranchOp> {
        prop_oneof![
            Just(BranchOp::Eq),
            Just(BranchOp::Ne),
            Just(BranchOp::Lt),
            Just(BranchOp::Ge),
            Just(BranchOp::Ltu),
            Just(BranchOp::Geu),
        ]
    }

    /// Strategy over every instruction form with in-range fields.
    fn arb_instr() -> impl Strategy<Value = Instr> {
        let i12 = -2048i32..2048;
        let imm20 = 0i32..(1 << 20);
        prop_oneof![
            (arb_reg(), imm20.clone()).prop_map(|(rd, imm20)| Instr::Lui { rd, imm20 }),
            (arb_reg(), imm20).prop_map(|(rd, imm20)| Instr::Auipc { rd, imm20 }),
            (arb_reg(), (-(1i32 << 19)..(1 << 19)).prop_map(|o| o * 2))
                .prop_map(|(rd, offset)| Instr::Jal { rd, offset }),
            (arb_reg(), arb_reg(), i12.clone()).prop_map(|(rd, rs1, offset)| Instr::Jalr {
                rd,
                rs1,
                offset
            }),
            (arb_branch(), arb_reg(), arb_reg(), (-2048i32..2048).prop_map(|o| o * 2))
                .prop_map(|(op, rs1, rs2, offset)| Instr::Branch { op, rs1, rs2, offset }),
            (arb_reg(), arb_reg(), i12.clone()).prop_map(|(rd, rs1, offset)| Instr::Lw {
                rd,
                rs1,
                offset
            }),
            (arb_reg(), arb_reg(), i12.clone()).prop_map(|(rs1, rs2, offset)| Instr::Sw {
                rs1,
                rs2,
                offset
            }),
            (arb_alu(), arb_reg(), arb_reg(), i12.clone()).prop_map(|(op, rd, rs1, imm)| {
                // immediate forms: no Sub; shifts use 5-bit shamt
                let op = if op == AluOp::Sub { AluOp::Add } else { op };
                let imm = if matches!(op, AluOp::Sll | AluOp::Srl | AluOp::Sra) {
                    imm & 0x1f
                } else {
                    imm
                };
                Instr::OpImm { op, rd, rs1, imm }
            }),
            (arb_alu(), arb_reg(), arb_reg(), arb_reg()).prop_map(|(op, rd, rs1, rs2)| Instr::Op {
                op,
                rd,
                rs1,
                rs2
            }),
            (arb_reg(), arb_reg(), arb_reg()).prop_map(|(rd, rs1, rs2)| Instr::Mul {
                rd,
                rs1,
                rs2
            }),
            (
                prop_oneof![
                    Just(MulDivOp::Mulh),
                    Just(MulDivOp::Mulhsu),
                    Just(MulDivOp::Mulhu),
                    Just(MulDivOp::Div),
                    Just(MulDivOp::Divu),
                    Just(MulDivOp::Rem),
                    Just(MulDivOp::Remu),
                ],
                arb_reg(),
                arb_reg(),
                arb_reg()
            )
                .prop_map(|(op, rd, rs1, rs2)| Instr::MulDiv { op, rd, rs1, rs2 }),
            (
                arb_reg(),
                arb_reg(),
                -2048i32..2048,
                prop_oneof![Just(MemWidth::Byte), Just(MemWidth::Half)],
                any::<bool>()
            )
                .prop_map(|(rd, rs1, offset, width, signed)| Instr::LoadNarrow {
                    rd,
                    rs1,
                    offset,
                    width,
                    signed
                }),
            (
                arb_reg(),
                arb_reg(),
                -2048i32..2048,
                prop_oneof![Just(MemWidth::Byte), Just(MemWidth::Half)]
            )
                .prop_map(|(rs1, rs2, offset, width)| Instr::StoreNarrow {
                    rs1,
                    rs2,
                    offset,
                    width
                }),
            (arb_freg(), arb_reg(), i12.clone()).prop_map(|(rd, rs1, offset)| Instr::Flw {
                rd,
                rs1,
                offset
            }),
            (arb_reg(), arb_freg(), i12).prop_map(|(rs1, rs2, offset)| Instr::Fsw {
                rs1,
                rs2,
                offset
            }),
            (arb_freg(), arb_freg(), arb_freg()).prop_map(|(rd, rs1, rs2)| Instr::FaddS {
                rd,
                rs1,
                rs2
            }),
            (arb_freg(), arb_freg(), arb_freg()).prop_map(|(rd, rs1, rs2)| Instr::FsubS {
                rd,
                rs1,
                rs2
            }),
            (arb_freg(), arb_freg(), arb_freg()).prop_map(|(rd, rs1, rs2)| Instr::FmulS {
                rd,
                rs1,
                rs2
            }),
            (arb_freg(), arb_freg(), arb_freg(), arb_freg())
                .prop_map(|(rd, rs1, rs2, rs3)| Instr::FmaddS { rd, rs1, rs2, rs3 }),
            (arb_freg(), arb_reg()).prop_map(|(rd, rs1)| Instr::FmvWX { rd, rs1 }),
            (arb_reg(), arb_freg()).prop_map(|(rd, rs1)| Instr::FmvXW { rd, rs1 }),
            (arb_reg(), arb_reg()).prop_map(|(rd, rs1)| Instr::Vsetvli {
                rd,
                rs1,
                cfg: VConfig::E32M1
            }),
            (arb_vreg(), arb_reg()).prop_map(|(vd, rs1)| Instr::Vle32 { vd, rs1 }),
            (arb_vreg(), arb_reg()).prop_map(|(vs3, rs1)| Instr::Vse32 { vs3, rs1 }),
            (arb_vreg(), arb_reg(), arb_vreg()).prop_map(|(vd, rs1, vs2)| Instr::Vluxei32 {
                vd,
                rs1,
                vs2
            }),
            (arb_vreg(), arb_vreg(), arb_vreg()).prop_map(|(vd, vs1, vs2)| Instr::VfmaccVV {
                vd,
                vs1,
                vs2
            }),
            (arb_vreg(), arb_vreg(), arb_vreg()).prop_map(|(vd, vs1, vs2)| Instr::VfmulVV {
                vd,
                vs1,
                vs2
            }),
            (arb_vreg(), arb_vreg(), arb_vreg()).prop_map(|(vd, vs1, vs2)| Instr::VfaddVV {
                vd,
                vs1,
                vs2
            }),
            (arb_vreg(), arb_vreg(), arb_vreg()).prop_map(|(vd, vs1, vs2)| Instr::VfredosumVS {
                vd,
                vs1,
                vs2
            }),
            (arb_vreg(), -16i32..16).prop_map(|(vd, imm5)| Instr::VmvVI { vd, imm5 }),
            (arb_vreg(), arb_vreg(), 0i32..32).prop_map(|(vd, vs2, imm5)| Instr::VsllVI {
                vd,
                vs2,
                imm5
            }),
            (arb_vreg(), arb_reg()).prop_map(|(vd, rs1)| Instr::VmvVX { vd, rs1 }),
            (arb_freg(), arb_vreg()).prop_map(|(rd, vs2)| Instr::VfmvFS { rd, vs2 }),
            (arb_reg(), prop_oneof![Just(0xc00u32), Just(0xc02u32)], arb_reg())
                .prop_map(|(rd, csr, rs1)| Instr::Csrrs { rd, csr, rs1 }),
            Just(Instr::Ecall),
            Just(Instr::Ebreak),
        ]
    }

    proptest! {
        /// encode → decode is the identity on every supported instruction.
        #[test]
        fn round_trip(instr in arb_instr()) {
            let w = encode(instr);
            let back = decode(w).expect("decode of encoded instruction");
            prop_assert_eq!(instr, back);
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(decode(0xffff_ffff).is_err());
        assert!(decode(0).is_err());
        // A masked vector op (vm=0) is unsupported.
        let w = encode(Instr::VfaddVV { vd: VReg::new(0), vs1: VReg::new(1), vs2: VReg::new(2) })
            & !(1 << 25);
        assert!(decode(w).is_err());
    }

    #[test]
    fn negative_branch_offsets_round_trip() {
        for off in [-4096i32, -2048, -4, 4, 2048, 4094] {
            let i = Instr::Branch { op: BranchOp::Ne, rs1: Reg::a(0), rs2: Reg::a(1), offset: off };
            assert_eq!(decode(encode(i)).unwrap(), i, "offset {off}");
        }
    }

    #[test]
    fn negative_jal_offsets_round_trip() {
        for off in [-1048576i32, -2, 2, 1048574] {
            let i = Instr::Jal { rd: Reg::RA, offset: off };
            assert_eq!(decode(encode(i)).unwrap(), i, "offset {off}");
        }
    }

    #[test]
    fn vmv_vi_sign_extension() {
        let i = Instr::VmvVI { vd: VReg::new(3), imm5: -5 };
        assert_eq!(decode(encode(i)).unwrap(), i);
    }
}
