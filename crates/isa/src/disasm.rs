//! Disassembler: render [`Instr`] back to assembler syntax.
//!
//! The output re-assembles to the same instruction (modulo label names —
//! branch/jump targets are printed as numeric byte offsets like `.+8`,
//! which the assembler does not accept; everything else round-trips, and
//! the tests verify it).

use crate::instr::{AluOp, BranchOp, Instr, MemWidth, MulDivOp};
use std::fmt;

fn alu_name(op: AluOp) -> &'static str {
    match op {
        AluOp::Add => "add",
        AluOp::Sub => "sub",
        AluOp::Sll => "sll",
        AluOp::Slt => "slt",
        AluOp::Sltu => "sltu",
        AluOp::Xor => "xor",
        AluOp::Srl => "srl",
        AluOp::Sra => "sra",
        AluOp::Or => "or",
        AluOp::And => "and",
    }
}

fn branch_name(op: BranchOp) -> &'static str {
    match op {
        BranchOp::Eq => "beq",
        BranchOp::Ne => "bne",
        BranchOp::Lt => "blt",
        BranchOp::Ge => "bge",
        BranchOp::Ltu => "bltu",
        BranchOp::Geu => "bgeu",
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Instr::*;
        match *self {
            Lui { rd, imm20 } => write!(f, "lui {}, {:#x}", rd.abi_name(), imm20),
            Auipc { rd, imm20 } => write!(f, "auipc {}, {:#x}", rd.abi_name(), imm20),
            Jal { rd, offset } => write!(f, "jal {}, .{:+}", rd.abi_name(), offset),
            Jalr { rd, rs1, offset } => {
                write!(f, "jalr {}, {}({})", rd.abi_name(), offset, rs1.abi_name())
            }
            Branch { op, rs1, rs2, offset } => write!(
                f,
                "{} {}, {}, .{:+}",
                branch_name(op),
                rs1.abi_name(),
                rs2.abi_name(),
                offset
            ),
            Lw { rd, rs1, offset } => {
                write!(f, "lw {}, {}({})", rd.abi_name(), offset, rs1.abi_name())
            }
            LoadNarrow { rd, rs1, offset, width, signed } => {
                let m = match (width, signed) {
                    (MemWidth::Byte, true) => "lb",
                    (MemWidth::Byte, false) => "lbu",
                    (MemWidth::Half, true) => "lh",
                    (MemWidth::Half, false) => "lhu",
                    (MemWidth::Word, _) => "lw",
                };
                write!(f, "{m} {}, {}({})", rd.abi_name(), offset, rs1.abi_name())
            }
            Sw { rs1, rs2, offset } => {
                write!(f, "sw {}, {}({})", rs2.abi_name(), offset, rs1.abi_name())
            }
            StoreNarrow { rs1, rs2, offset, width } => {
                let m = match width {
                    MemWidth::Byte => "sb",
                    MemWidth::Half => "sh",
                    MemWidth::Word => "sw",
                };
                write!(f, "{m} {}, {}({})", rs2.abi_name(), offset, rs1.abi_name())
            }
            OpImm { op, rd, rs1, imm } => {
                let m = match op {
                    AluOp::Sltu => "sltiu".to_string(),
                    other => format!("{}i", alu_name(other)),
                };
                write!(f, "{m} {}, {}, {}", rd.abi_name(), rs1.abi_name(), imm)
            }
            Op { op, rd, rs1, rs2 } => write!(
                f,
                "{} {}, {}, {}",
                alu_name(op),
                rd.abi_name(),
                rs1.abi_name(),
                rs2.abi_name()
            ),
            Mul { rd, rs1, rs2 } => {
                write!(f, "mul {}, {}, {}", rd.abi_name(), rs1.abi_name(), rs2.abi_name())
            }
            MulDiv { op, rd, rs1, rs2 } => {
                let m = match op {
                    MulDivOp::Mul => "mul",
                    MulDivOp::Mulh => "mulh",
                    MulDivOp::Mulhsu => "mulhsu",
                    MulDivOp::Mulhu => "mulhu",
                    MulDivOp::Div => "div",
                    MulDivOp::Divu => "divu",
                    MulDivOp::Rem => "rem",
                    MulDivOp::Remu => "remu",
                };
                write!(f, "{m} {}, {}, {}", rd.abi_name(), rs1.abi_name(), rs2.abi_name())
            }
            Flw { rd, rs1, offset } => write!(f, "flw {}, {}({})", rd, offset, rs1.abi_name()),
            Fsw { rs1, rs2, offset } => write!(f, "fsw {}, {}({})", rs2, offset, rs1.abi_name()),
            FaddS { rd, rs1, rs2 } => write!(f, "fadd.s {rd}, {rs1}, {rs2}"),
            FsubS { rd, rs1, rs2 } => write!(f, "fsub.s {rd}, {rs1}, {rs2}"),
            FmulS { rd, rs1, rs2 } => write!(f, "fmul.s {rd}, {rs1}, {rs2}"),
            FmaddS { rd, rs1, rs2, rs3 } => write!(f, "fmadd.s {rd}, {rs1}, {rs2}, {rs3}"),
            FmvWX { rd, rs1 } => write!(f, "fmv.w.x {rd}, {}", rs1.abi_name()),
            FmvXW { rd, rs1 } => write!(f, "fmv.x.w {}, {rs1}", rd.abi_name()),
            Vsetvli { rd, rs1, .. } => {
                write!(f, "vsetvli {}, {}, e32, m1", rd.abi_name(), rs1.abi_name())
            }
            Vle32 { vd, rs1 } => write!(f, "vle32.v {vd}, ({})", rs1.abi_name()),
            Vse32 { vs3, rs1 } => write!(f, "vse32.v {vs3}, ({})", rs1.abi_name()),
            Vluxei32 { vd, rs1, vs2 } => {
                write!(f, "vluxei32.v {vd}, ({}), {vs2}", rs1.abi_name())
            }
            VfmaccVV { vd, vs1, vs2 } => write!(f, "vfmacc.vv {vd}, {vs1}, {vs2}"),
            VfmulVV { vd, vs1, vs2 } => write!(f, "vfmul.vv {vd}, {vs1}, {vs2}"),
            VfaddVV { vd, vs1, vs2 } => write!(f, "vfadd.vv {vd}, {vs1}, {vs2}"),
            VfredosumVS { vd, vs1, vs2 } => write!(f, "vfredosum.vs {vd}, {vs1}, {vs2}"),
            VsllVI { vd, vs2, imm5 } => write!(f, "vsll.vi {vd}, {vs2}, {imm5}"),
            VmvVI { vd, imm5 } => write!(f, "vmv.v.i {vd}, {imm5}"),
            VmvVX { vd, rs1 } => write!(f, "vmv.v.x {vd}, {}", rs1.abi_name()),
            VfmvFS { rd, vs2 } => write!(f, "vfmv.f.s {rd}, {vs2}"),
            Csrrs { rd, csr, rs1 } => {
                write!(f, "csrrs {}, {:#x}, {}", rd.abi_name(), csr, rs1.abi_name())
            }
            Ecall => write!(f, "ecall"),
            Ebreak => write!(f, "ebreak"),
        }
    }
}

/// Disassemble a machine word to text, or a `.word` directive if it does
/// not decode.
pub fn disassemble_word(w: u32) -> String {
    match crate::decode::decode(w) {
        Ok(i) => i.to_string(),
        Err(_) => format!(".word {w:#010x}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    #[test]
    fn display_examples() {
        let p = assemble("addi a0, a1, -3\nlw t0, 4(sp)\nvfmacc.vv v1, v2, v3\nebreak").unwrap();
        let lines: Vec<String> = p.instrs().iter().map(|i| i.to_string()).collect();
        assert_eq!(lines[0], "addi a0, a1, -3");
        assert_eq!(lines[1], "lw t0, 4(sp)");
        assert_eq!(lines[2], "vfmacc.vv v1, v2, v3");
        assert_eq!(lines[3], "ebreak");
    }

    /// Disassembled non-control instructions re-assemble to themselves.
    #[test]
    fn reassembly_round_trip() {
        let src = "li a0, 7\nlw a1, 8(a0)\nsw a1, 12(a0)\nadd a2, a0, a1\nmul a3, a2, a2\n\
                   flw fa0, (a0)\nfadd.s fa1, fa0, fa0\nfmadd.s fa2, fa0, fa1, fa1\n\
                   vsetvli t0, a0, e32, m1\nvle32.v v1, (a1)\nvluxei32.v v2, (a1), v1\n\
                   vfmacc.vv v3, v1, v2\nvmv.v.i v0, 0\nvfmv.f.s fa0, v3\nrdcycle t1\nebreak";
        let p1 = assemble(src).unwrap();
        let text: String = p1.instrs().iter().map(|i| i.to_string()).collect::<Vec<_>>().join("\n");
        let p2 = assemble(&text).unwrap();
        assert_eq!(p1.instrs(), p2.instrs());
    }

    /// Property: every non-control instruction's disassembly re-assembles
    /// to the identical instruction (control flow prints numeric offsets
    /// the assembler intentionally rejects).
    #[test]
    fn disassembly_reassembles_for_arbitrary_instructions() {
        use proptest::prelude::*;
        use proptest::test_runner::TestRunner;
        let mut runner = TestRunner::default();
        // Sample random words, keep the ones that decode, skip control flow.
        runner
            .run(&proptest::num::u32::ANY, |w| {
                let Ok(i) = crate::decode::decode(w) else {
                    return Ok(());
                };
                if i.is_control() {
                    return Ok(());
                }
                let text = i.to_string();
                let p = assemble(&format!("{text}\nebreak")).map_err(|e| {
                    proptest::test_runner::TestCaseError::fail(format!(
                        "{text:?} did not re-assemble: {e}"
                    ))
                })?;
                prop_assert_eq!(p.instrs()[0], i, "{}", text);
                Ok(())
            })
            .unwrap();
    }

    #[test]
    fn word_disassembly_falls_back() {
        assert_eq!(disassemble_word(0xffff_ffff), ".word 0xffffffff");
        assert_eq!(disassemble_word(0x00100073), "ebreak");
    }
}
