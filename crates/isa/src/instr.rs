//! The decoded instruction type executed by the `hht-sim` core.

use crate::reg::{FReg, Reg, VReg};

/// Integer ALU operation selector, shared by register-register and
/// register-immediate forms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Addition (`add`/`addi`).
    Add,
    /// Subtraction (`sub`; no immediate form in RV32).
    Sub,
    /// Logical left shift.
    Sll,
    /// Signed set-less-than.
    Slt,
    /// Unsigned set-less-than.
    Sltu,
    /// Bitwise xor.
    Xor,
    /// Logical right shift.
    Srl,
    /// Arithmetic right shift.
    Sra,
    /// Bitwise or.
    Or,
    /// Bitwise and.
    And,
}

/// RV32M operation selector (full multiply/divide extension — §4: the
/// simulated core includes the multiply extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MulDivOp {
    /// Low 32 bits of the signed product.
    Mul,
    /// High 32 bits of the signed x signed product.
    Mulh,
    /// High 32 bits of the signed x unsigned product.
    Mulhsu,
    /// High 32 bits of the unsigned product.
    Mulhu,
    /// Signed division (div-by-zero yields -1, overflow yields rs1).
    Div,
    /// Unsigned division (div-by-zero yields all-ones).
    Divu,
    /// Signed remainder.
    Rem,
    /// Unsigned remainder.
    Remu,
}

/// Width of a scalar memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemWidth {
    /// 8-bit.
    Byte,
    /// 16-bit.
    Half,
    /// 32-bit.
    Word,
}

impl MemWidth {
    /// Access size in bytes.
    pub fn bytes(self) -> u32 {
        match self {
            MemWidth::Byte => 1,
            MemWidth::Half => 2,
            MemWidth::Word => 4,
        }
    }
}

/// Branch comparison selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchOp {
    /// Branch if equal.
    Eq,
    /// Branch if not equal.
    Ne,
    /// Branch if signed less-than.
    Lt,
    /// Branch if signed greater-or-equal.
    Ge,
    /// Branch if unsigned less-than.
    Ltu,
    /// Branch if unsigned greater-or-equal.
    Geu,
}

/// Vector-unit configuration established by `vsetvli` (RVV 1.0 `vtype`
/// subset: we support SEW=32, LMUL=1, which is the paper's configuration —
/// Table 1: "Element Size (SEW) = 32 bit").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VConfig {
    /// Requested application vector length (AVL) comes from `rs1` at run
    /// time; this is the `vtype` immediate. Only `e32`/`m1` is supported,
    /// so the struct records just that choice for encode/decode fidelity.
    pub sew_bits: u8,
}

impl VConfig {
    /// The only supported configuration: SEW=32, LMUL=1.
    pub const E32M1: VConfig = VConfig { sew_bits: 32 };

    /// RVV `vtype` immediate encoding (vsew field = log2(sew/8)).
    pub fn vtypei(self) -> u32 {
        // vlmul=000 (m1), vsew at bits [5:3], vta/vma = 0
        let vsew = match self.sew_bits {
            8 => 0u32,
            16 => 1,
            32 => 2,
            64 => 3,
            _ => unreachable!("unsupported SEW"),
        };
        vsew << 3
    }

    /// Decode from a `vtype` immediate; `None` for unsupported configs.
    pub fn from_vtypei(z: u32) -> Option<VConfig> {
        if z & 0b111 != 0 {
            return None; // only LMUL=1
        }
        match (z >> 3) & 0b111 {
            2 => Some(VConfig::E32M1),
            _ => None,
        }
    }
}

/// One decoded instruction of the RV32IMF+V subset.
///
/// Loads/stores and vector memory operations are the instructions with
/// timing significance in the simulator; everything else retires with a
/// fixed latency from the core's `hht-sim` timing table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Instr {
    // ---- RV32I ----
    /// Load upper immediate: `rd = imm << 12`.
    Lui { rd: Reg, imm20: i32 },
    /// Add upper immediate to PC.
    Auipc { rd: Reg, imm20: i32 },
    /// Jump and link. `offset` is byte offset from this instruction.
    Jal { rd: Reg, offset: i32 },
    /// Jump and link register.
    Jalr { rd: Reg, rs1: Reg, offset: i32 },
    /// Conditional branch; `offset` is byte offset from this instruction.
    Branch { op: BranchOp, rs1: Reg, rs2: Reg, offset: i32 },
    /// Load 32-bit word.
    Lw { rd: Reg, rs1: Reg, offset: i32 },
    /// Sub-word load (`lb`/`lbu`/`lh`/`lhu`): sign- or zero-extended.
    LoadNarrow { rd: Reg, rs1: Reg, offset: i32, width: MemWidth, signed: bool },
    /// Store 32-bit word.
    Sw { rs1: Reg, rs2: Reg, offset: i32 },
    /// Sub-word store (`sb`/`sh`).
    StoreNarrow { rs1: Reg, rs2: Reg, offset: i32, width: MemWidth },
    /// ALU with immediate operand (no `Sub`).
    OpImm { op: AluOp, rd: Reg, rs1: Reg, imm: i32 },
    /// ALU register-register.
    Op { op: AluOp, rd: Reg, rs1: Reg, rs2: Reg },

    // ---- M ----
    /// 32-bit multiply (low word).
    Mul { rd: Reg, rs1: Reg, rs2: Reg },
    /// The remaining RV32M operations (`mulh*`, `div*`, `rem*`).
    MulDiv { op: MulDivOp, rd: Reg, rs1: Reg, rs2: Reg },

    // ---- F ----
    /// Load float word.
    Flw { rd: FReg, rs1: Reg, offset: i32 },
    /// Store float word.
    Fsw { rs1: Reg, rs2: FReg, offset: i32 },
    /// Single-precision add.
    FaddS { rd: FReg, rs1: FReg, rs2: FReg },
    /// Single-precision subtract.
    FsubS { rd: FReg, rs1: FReg, rs2: FReg },
    /// Single-precision multiply.
    FmulS { rd: FReg, rs1: FReg, rs2: FReg },
    /// Fused multiply-add: `rd = rs1*rs2 + rs3`.
    FmaddS { rd: FReg, rs1: FReg, rs2: FReg, rs3: FReg },
    /// Move integer bits to float register.
    FmvWX { rd: FReg, rs1: Reg },
    /// Move float bits to integer register.
    FmvXW { rd: Reg, rs1: FReg },

    // ---- V (RVV 1.0 subset, SEW=32 / LMUL=1) ----
    /// `vsetvli rd, rs1, e32,m1`: set vector length = min(rs1, VLMAX),
    /// write it to `rd`.
    Vsetvli { rd: Reg, rs1: Reg, cfg: VConfig },
    /// Unit-stride vector load of 32-bit elements from address `rs1`.
    Vle32 { vd: VReg, rs1: Reg },
    /// Unit-stride vector store of 32-bit elements to address `rs1`.
    Vse32 { vs3: VReg, rs1: Reg },
    /// Indexed-unordered vector load (gather): element `i` loads from
    /// `rs1 + vs2[i]` (byte offsets). This is the paper's "vector
    /// indexed-load instruction... similar to Intel AVX2 Gather" (§5.4).
    Vluxei32 { vd: VReg, rs1: Reg, vs2: VReg },
    /// Vector single-precision fused multiply-accumulate:
    /// `vd[i] += vs1[i] * vs2[i]`.
    VfmaccVV { vd: VReg, vs1: VReg, vs2: VReg },
    /// Vector single-precision multiply.
    VfmulVV { vd: VReg, vs1: VReg, vs2: VReg },
    /// Vector single-precision add.
    VfaddVV { vd: VReg, vs1: VReg, vs2: VReg },
    /// Ordered float reduction sum: `vd[0] = vs1[0] + sum(vs2[*])`.
    VfredosumVS { vd: VReg, vs1: VReg, vs2: VReg },
    /// Vector logical left shift by immediate (used to scale element
    /// indices to byte offsets before an indexed gather).
    VsllVI { vd: VReg, vs2: VReg, imm5: i32 },
    /// Splat immediate to all elements.
    VmvVI { vd: VReg, imm5: i32 },
    /// Splat integer register to all elements.
    VmvVX { vd: VReg, rs1: Reg },
    /// Move element 0 of a vector register to a float register.
    VfmvFS { rd: FReg, vs2: VReg },

    // ---- system ----
    /// Read a CSR (we model `cycle` = 0xC00 and `instret` = 0xC02).
    Csrrs { rd: Reg, csr: u32, rs1: Reg },
    /// Environment call (unused by kernels; retires as a no-op).
    Ecall,
    /// Breakpoint — the simulator's halt convention.
    Ebreak,
}

impl Instr {
    /// True for instructions that access data memory (scalar or vector).
    pub fn is_memory(self) -> bool {
        matches!(
            self,
            Instr::Lw { .. }
                | Instr::LoadNarrow { .. }
                | Instr::Sw { .. }
                | Instr::StoreNarrow { .. }
                | Instr::Flw { .. }
                | Instr::Fsw { .. }
                | Instr::Vle32 { .. }
                | Instr::Vse32 { .. }
                | Instr::Vluxei32 { .. }
        )
    }

    /// True for vector-unit instructions (Table 1: the vector unit is not
    /// pipelined, so these serialize on the unit).
    pub fn is_vector(self) -> bool {
        matches!(
            self,
            Instr::Vsetvli { .. }
                | Instr::Vle32 { .. }
                | Instr::Vse32 { .. }
                | Instr::Vluxei32 { .. }
                | Instr::VfmaccVV { .. }
                | Instr::VfmulVV { .. }
                | Instr::VfaddVV { .. }
                | Instr::VfredosumVS { .. }
                | Instr::VsllVI { .. }
                | Instr::VmvVI { .. }
                | Instr::VmvVX { .. }
                | Instr::VfmvFS { .. }
        )
    }

    /// True for control-flow instructions.
    pub fn is_control(self) -> bool {
        matches!(self, Instr::Jal { .. } | Instr::Jalr { .. } | Instr::Branch { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vconfig_round_trip() {
        let c = VConfig::E32M1;
        assert_eq!(VConfig::from_vtypei(c.vtypei()), Some(c));
        assert_eq!(VConfig::from_vtypei(0b001), None); // LMUL != 1
        assert_eq!(VConfig::from_vtypei(0b011_000), None); // SEW = 64
    }

    #[test]
    fn classification() {
        let lw = Instr::Lw { rd: Reg::a(0), rs1: Reg::a(1), offset: 0 };
        assert!(lw.is_memory());
        assert!(!lw.is_vector());
        let g = Instr::Vluxei32 { vd: VReg::new(1), rs1: Reg::a(0), vs2: VReg::new(2) };
        assert!(g.is_memory());
        assert!(g.is_vector());
        let b = Instr::Branch { op: BranchOp::Eq, rs1: Reg::ZERO, rs2: Reg::ZERO, offset: 8 };
        assert!(b.is_control());
        assert!(!b.is_memory());
        let f = Instr::FmaddS {
            rd: FReg::new(0),
            rs1: FReg::new(1),
            rs2: FReg::new(2),
            rs3: FReg::new(3),
        };
        assert!(!f.is_vector());
        assert!(!f.is_memory());
    }
}
