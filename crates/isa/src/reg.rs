//! Register file names: integer (`x0..x31`), float (`f0..f31`) and vector
//! (`v0..v31`) registers, with standard RISC-V ABI aliases.

use std::fmt;

macro_rules! reg_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(u8);

        impl $name {
            /// Construct from a register number; panics if `n >= 32`.
            pub const fn new(n: u8) -> Self {
                assert!(n < 32, "register number out of range");
                $name(n)
            }

            /// Construct from a register number, `None` if `n >= 32`.
            pub fn try_new(n: u8) -> Option<Self> {
                (n < 32).then_some($name(n))
            }

            /// The register number, 0..=31.
            pub const fn num(self) -> u8 {
                self.0
            }

            /// The register number as usize (for register-file indexing).
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", $prefix, self.0)
            }
        }
    };
}

reg_type!(
    /// An integer register `x0..x31`. `x0` is hard-wired to zero.
    Reg,
    "x"
);
reg_type!(
    /// A single-precision float register `f0..f31`.
    FReg,
    "f"
);
reg_type!(
    /// A vector register `v0..v31`.
    VReg,
    "v"
);

impl Reg {
    /// `x0`, hard-wired zero.
    pub const ZERO: Reg = Reg(0);
    /// `x1`, return address.
    pub const RA: Reg = Reg(1);
    /// `x2`, stack pointer.
    pub const SP: Reg = Reg(2);

    /// Argument registers `a0..a7` = `x10..x17`.
    pub const fn a(n: u8) -> Reg {
        assert!(n < 8);
        Reg(10 + n)
    }

    /// Temporaries `t0..t6` = `x5,x6,x7,x28..x31`.
    pub const fn t(n: u8) -> Reg {
        assert!(n < 7);
        if n < 3 {
            Reg(5 + n)
        } else {
            Reg(28 + n - 3)
        }
    }

    /// Saved registers `s0..s11` = `x8,x9,x18..x27`.
    pub const fn s(n: u8) -> Reg {
        assert!(n < 12);
        if n < 2 {
            Reg(8 + n)
        } else {
            Reg(18 + n - 2)
        }
    }

    /// Parse an ABI or numeric name (`a0`, `t3`, `s2`, `x17`, `zero`, `ra`,
    /// `sp`, `gp`, `tp`, `fp`).
    pub fn parse(s: &str) -> Option<Reg> {
        match s {
            "zero" => return Some(Reg(0)),
            "ra" => return Some(Reg(1)),
            "sp" => return Some(Reg(2)),
            "gp" => return Some(Reg(3)),
            "tp" => return Some(Reg(4)),
            "fp" => return Some(Reg(8)),
            _ => {}
        }
        let (prefix, n) = s.split_at(1);
        let n: u8 = n.parse().ok()?;
        match prefix {
            "x" => Reg::try_new(n),
            "a" if n < 8 => Some(Reg::a(n)),
            "t" if n < 7 => Some(Reg::t(n)),
            "s" if n < 12 => Some(Reg::s(n)),
            _ => None,
        }
    }

    /// The canonical ABI name.
    pub fn abi_name(self) -> &'static str {
        const NAMES: [&str; 32] = [
            "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3",
            "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
            "t3", "t4", "t5", "t6",
        ];
        NAMES[self.0 as usize]
    }
}

impl FReg {
    /// Float argument registers `fa0..fa7` = `f10..f17`.
    pub const fn a(n: u8) -> FReg {
        assert!(n < 8);
        FReg(10 + n)
    }

    /// Float temporaries `ft0..ft7` = `f0..f7`.
    pub const fn t(n: u8) -> FReg {
        assert!(n < 8);
        FReg(n)
    }

    /// Parse `f3`, `fa0`, `ft2`, `fs1` style names.
    pub fn parse(s: &str) -> Option<FReg> {
        let rest = s.strip_prefix('f')?;
        if let Ok(n) = rest.parse::<u8>() {
            return FReg::try_new(n);
        }
        let (kind, n) = rest.split_at(1);
        let n: u8 = n.parse().ok()?;
        match kind {
            "a" if n < 8 => Some(FReg(10 + n)),
            "t" if n < 8 => Some(FReg(n)),
            "t" if (8..12).contains(&n) => Some(FReg(28 + n - 8)),
            "s" if n < 2 => Some(FReg(8 + n)),
            "s" if (2..12).contains(&n) => Some(FReg(18 + n - 2)),
            _ => None,
        }
    }
}

impl VReg {
    /// Parse `v0..v31`.
    pub fn parse(s: &str) -> Option<VReg> {
        let n: u8 = s.strip_prefix('v')?.parse().ok()?;
        VReg::try_new(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abi_mapping() {
        assert_eq!(Reg::a(0).num(), 10);
        assert_eq!(Reg::a(7).num(), 17);
        assert_eq!(Reg::t(0).num(), 5);
        assert_eq!(Reg::t(2).num(), 7);
        assert_eq!(Reg::t(3).num(), 28);
        assert_eq!(Reg::t(6).num(), 31);
        assert_eq!(Reg::s(0).num(), 8);
        assert_eq!(Reg::s(2).num(), 18);
        assert_eq!(Reg::s(11).num(), 27);
    }

    #[test]
    fn parse_names() {
        assert_eq!(Reg::parse("zero"), Some(Reg::ZERO));
        assert_eq!(Reg::parse("ra"), Some(Reg::RA));
        assert_eq!(Reg::parse("a0"), Some(Reg::new(10)));
        assert_eq!(Reg::parse("t4"), Some(Reg::new(29)));
        assert_eq!(Reg::parse("s3"), Some(Reg::new(19)));
        assert_eq!(Reg::parse("x31"), Some(Reg::new(31)));
        assert_eq!(Reg::parse("x32"), None);
        assert_eq!(Reg::parse("q3"), None);
        assert_eq!(Reg::parse("a9"), None);
    }

    #[test]
    fn parse_float_names() {
        assert_eq!(FReg::parse("f5"), Some(FReg::new(5)));
        assert_eq!(FReg::parse("fa0"), Some(FReg::new(10)));
        assert_eq!(FReg::parse("ft3"), Some(FReg::new(3)));
        assert_eq!(FReg::parse("fs2"), Some(FReg::new(18)));
        assert_eq!(FReg::parse("g3"), None);
    }

    #[test]
    fn parse_vector_names() {
        assert_eq!(VReg::parse("v0"), Some(VReg::new(0)));
        assert_eq!(VReg::parse("v31"), Some(VReg::new(31)));
        assert_eq!(VReg::parse("v32"), None);
    }

    #[test]
    fn display_and_abi_name() {
        assert_eq!(Reg::new(10).to_string(), "x10");
        assert_eq!(Reg::new(10).abi_name(), "a0");
        assert_eq!(FReg::new(3).to_string(), "f3");
        assert_eq!(VReg::new(8).to_string(), "v8");
    }

    #[test]
    fn try_new_bounds() {
        assert!(Reg::try_new(31).is_some());
        assert!(Reg::try_new(32).is_none());
    }
}
