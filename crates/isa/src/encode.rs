//! Binary encoding to real RV32 machine words.
//!
//! Scalar instructions follow the RV32IMF encodings of the unprivileged
//! spec; vector instructions follow RVV 1.0 (OP-V major opcode plus the
//! vector overlays of LOAD-FP/STORE-FP). [`crate::decode::decode`] inverts this
//! exactly; the round trip is property-tested in `decode.rs`.

use crate::instr::{AluOp, BranchOp, Instr, MemWidth, MulDivOp};

const OPC_LUI: u32 = 0b0110111;
const OPC_AUIPC: u32 = 0b0010111;
const OPC_JAL: u32 = 0b1101111;
const OPC_JALR: u32 = 0b1100111;
const OPC_BRANCH: u32 = 0b1100011;
const OPC_LOAD: u32 = 0b0000011;
const OPC_STORE: u32 = 0b0100011;
const OPC_OP_IMM: u32 = 0b0010011;
const OPC_OP: u32 = 0b0110011;
const OPC_LOAD_FP: u32 = 0b0000111;
const OPC_STORE_FP: u32 = 0b0100111;
const OPC_MADD: u32 = 0b1000011;
const OPC_OP_FP: u32 = 0b1010011;
const OPC_SYSTEM: u32 = 0b1110011;
const OPC_OP_V: u32 = 0b1010111;

fn r_type(funct7: u32, rs2: u32, rs1: u32, funct3: u32, rd: u32, opcode: u32) -> u32 {
    (funct7 << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opcode
}

fn i_type(imm: i32, rs1: u32, funct3: u32, rd: u32, opcode: u32) -> u32 {
    (((imm as u32) & 0xfff) << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opcode
}

fn s_type(imm: i32, rs2: u32, rs1: u32, funct3: u32, opcode: u32) -> u32 {
    let imm = imm as u32;
    ((imm >> 5 & 0x7f) << 25)
        | (rs2 << 20)
        | (rs1 << 15)
        | (funct3 << 12)
        | ((imm & 0x1f) << 7)
        | opcode
}

fn b_type(offset: i32, rs2: u32, rs1: u32, funct3: u32, opcode: u32) -> u32 {
    let imm = offset as u32;
    ((imm >> 12 & 1) << 31)
        | ((imm >> 5 & 0x3f) << 25)
        | (rs2 << 20)
        | (rs1 << 15)
        | (funct3 << 12)
        | ((imm >> 1 & 0xf) << 8)
        | ((imm >> 11 & 1) << 7)
        | opcode
}

fn u_type(imm20: i32, rd: u32, opcode: u32) -> u32 {
    (((imm20 as u32) & 0xfffff) << 12) | (rd << 7) | opcode
}

fn j_type(offset: i32, rd: u32, opcode: u32) -> u32 {
    let imm = offset as u32;
    ((imm >> 20 & 1) << 31)
        | ((imm >> 1 & 0x3ff) << 21)
        | ((imm >> 11 & 1) << 20)
        | ((imm >> 12 & 0xff) << 12)
        | (rd << 7)
        | opcode
}

fn alu_funct(op: AluOp) -> (u32, u32) {
    // (funct3, funct7)
    match op {
        AluOp::Add => (0b000, 0),
        AluOp::Sub => (0b000, 0b0100000),
        AluOp::Sll => (0b001, 0),
        AluOp::Slt => (0b010, 0),
        AluOp::Sltu => (0b011, 0),
        AluOp::Xor => (0b100, 0),
        AluOp::Srl => (0b101, 0),
        AluOp::Sra => (0b101, 0b0100000),
        AluOp::Or => (0b110, 0),
        AluOp::And => (0b111, 0),
    }
}

fn branch_funct3(op: BranchOp) -> u32 {
    match op {
        BranchOp::Eq => 0b000,
        BranchOp::Ne => 0b001,
        BranchOp::Lt => 0b100,
        BranchOp::Ge => 0b101,
        BranchOp::Ltu => 0b110,
        BranchOp::Geu => 0b111,
    }
}

/// OP-V arithmetic: funct6 | vm=1 | vs2 | vs1 | funct3 | vd | OP-V.
fn opv(funct6: u32, vs2: u32, vs1: u32, funct3: u32, vd: u32) -> u32 {
    (funct6 << 26) | (1 << 25) | (vs2 << 20) | (vs1 << 15) | (funct3 << 12) | (vd << 7) | OPC_OP_V
}

/// Encode one instruction to its 32-bit machine word.
pub fn encode(i: Instr) -> u32 {
    use Instr::*;
    match i {
        Lui { rd, imm20 } => u_type(imm20, rd.num() as u32, OPC_LUI),
        Auipc { rd, imm20 } => u_type(imm20, rd.num() as u32, OPC_AUIPC),
        Jal { rd, offset } => j_type(offset, rd.num() as u32, OPC_JAL),
        Jalr { rd, rs1, offset } => {
            i_type(offset, rs1.num() as u32, 0b000, rd.num() as u32, OPC_JALR)
        }
        Branch { op, rs1, rs2, offset } => {
            b_type(offset, rs2.num() as u32, rs1.num() as u32, branch_funct3(op), OPC_BRANCH)
        }
        Lw { rd, rs1, offset } => {
            i_type(offset, rs1.num() as u32, 0b010, rd.num() as u32, OPC_LOAD)
        }
        LoadNarrow { rd, rs1, offset, width, signed } => {
            let funct3 = match (width, signed) {
                (MemWidth::Byte, true) => 0b000,
                (MemWidth::Half, true) => 0b001,
                (MemWidth::Byte, false) => 0b100,
                (MemWidth::Half, false) => 0b101,
                (MemWidth::Word, _) => 0b010,
            };
            i_type(offset, rs1.num() as u32, funct3, rd.num() as u32, OPC_LOAD)
        }
        Sw { rs1, rs2, offset } => {
            s_type(offset, rs2.num() as u32, rs1.num() as u32, 0b010, OPC_STORE)
        }
        StoreNarrow { rs1, rs2, offset, width } => {
            let funct3 = match width {
                MemWidth::Byte => 0b000,
                MemWidth::Half => 0b001,
                MemWidth::Word => 0b010,
            };
            s_type(offset, rs2.num() as u32, rs1.num() as u32, funct3, OPC_STORE)
        }
        OpImm { op, rd, rs1, imm } => {
            let (f3, f7) = alu_funct(op);
            if matches!(op, AluOp::Sll | AluOp::Srl | AluOp::Sra) {
                // shamt form: funct7 in the upper bits
                r_type(f7, (imm as u32) & 0x1f, rs1.num() as u32, f3, rd.num() as u32, OPC_OP_IMM)
            } else {
                i_type(imm, rs1.num() as u32, f3, rd.num() as u32, OPC_OP_IMM)
            }
        }
        Op { op, rd, rs1, rs2 } => {
            let (f3, f7) = alu_funct(op);
            r_type(f7, rs2.num() as u32, rs1.num() as u32, f3, rd.num() as u32, OPC_OP)
        }
        Mul { rd, rs1, rs2 } => {
            r_type(0b0000001, rs2.num() as u32, rs1.num() as u32, 0b000, rd.num() as u32, OPC_OP)
        }
        MulDiv { op, rd, rs1, rs2 } => {
            let funct3 = match op {
                MulDivOp::Mul => 0b000,
                MulDivOp::Mulh => 0b001,
                MulDivOp::Mulhsu => 0b010,
                MulDivOp::Mulhu => 0b011,
                MulDivOp::Div => 0b100,
                MulDivOp::Divu => 0b101,
                MulDivOp::Rem => 0b110,
                MulDivOp::Remu => 0b111,
            };
            r_type(0b0000001, rs2.num() as u32, rs1.num() as u32, funct3, rd.num() as u32, OPC_OP)
        }
        Flw { rd, rs1, offset } => {
            i_type(offset, rs1.num() as u32, 0b010, rd.num() as u32, OPC_LOAD_FP)
        }
        Fsw { rs1, rs2, offset } => {
            s_type(offset, rs2.num() as u32, rs1.num() as u32, 0b010, OPC_STORE_FP)
        }
        FaddS { rd, rs1, rs2 } => {
            r_type(0b0000000, rs2.num() as u32, rs1.num() as u32, 0b000, rd.num() as u32, OPC_OP_FP)
        }
        FsubS { rd, rs1, rs2 } => {
            r_type(0b0000100, rs2.num() as u32, rs1.num() as u32, 0b000, rd.num() as u32, OPC_OP_FP)
        }
        FmulS { rd, rs1, rs2 } => {
            r_type(0b0001000, rs2.num() as u32, rs1.num() as u32, 0b000, rd.num() as u32, OPC_OP_FP)
        }
        FmaddS { rd, rs1, rs2, rs3 } => {
            ((rs3.num() as u32) << 27)
                | ((rs2.num() as u32) << 20)
                | ((rs1.num() as u32) << 15)
                | ((rd.num() as u32) << 7)
                | OPC_MADD
        }
        FmvWX { rd, rs1 } => {
            r_type(0b1111000, 0, rs1.num() as u32, 0b000, rd.num() as u32, OPC_OP_FP)
        }
        FmvXW { rd, rs1 } => {
            r_type(0b1110000, 0, rs1.num() as u32, 0b000, rd.num() as u32, OPC_OP_FP)
        }
        Vsetvli { rd, rs1, cfg } => {
            i_type(cfg.vtypei() as i32, rs1.num() as u32, 0b111, rd.num() as u32, OPC_OP_V)
        }
        Vle32 { vd, rs1 } => {
            // nf=0 mew=0 mop=00 vm=1 lumop=00000 width=110
            (1 << 25)
                | ((rs1.num() as u32) << 15)
                | (0b110 << 12)
                | ((vd.num() as u32) << 7)
                | OPC_LOAD_FP
        }
        Vse32 { vs3, rs1 } => {
            (1 << 25)
                | ((rs1.num() as u32) << 15)
                | (0b110 << 12)
                | ((vs3.num() as u32) << 7)
                | OPC_STORE_FP
        }
        Vluxei32 { vd, rs1, vs2 } => {
            // mop=01 (indexed-unordered) at bits [27:26]
            (0b01 << 26)
                | (1 << 25)
                | ((vs2.num() as u32) << 20)
                | ((rs1.num() as u32) << 15)
                | (0b110 << 12)
                | ((vd.num() as u32) << 7)
                | OPC_LOAD_FP
        }
        VfmaccVV { vd, vs1, vs2 } => {
            opv(0b101100, vs2.num() as u32, vs1.num() as u32, 0b001, vd.num() as u32)
        }
        VfmulVV { vd, vs1, vs2 } => {
            opv(0b100100, vs2.num() as u32, vs1.num() as u32, 0b001, vd.num() as u32)
        }
        VfaddVV { vd, vs1, vs2 } => {
            opv(0b000000, vs2.num() as u32, vs1.num() as u32, 0b001, vd.num() as u32)
        }
        VfredosumVS { vd, vs1, vs2 } => {
            opv(0b000011, vs2.num() as u32, vs1.num() as u32, 0b001, vd.num() as u32)
        }
        VsllVI { vd, vs2, imm5 } => {
            opv(0b100101, vs2.num() as u32, (imm5 as u32) & 0x1f, 0b011, vd.num() as u32)
        }
        VmvVI { vd, imm5 } => opv(0b010111, 0, (imm5 as u32) & 0x1f, 0b011, vd.num() as u32),
        VmvVX { vd, rs1 } => opv(0b010111, 0, rs1.num() as u32, 0b100, vd.num() as u32),
        VfmvFS { rd, vs2 } => opv(0b010000, vs2.num() as u32, 0, 0b001, rd.num() as u32),
        Csrrs { rd, csr, rs1 } => {
            i_type(csr as i32, rs1.num() as u32, 0b010, rd.num() as u32, OPC_SYSTEM)
        }
        Ecall => OPC_SYSTEM,
        Ebreak => (1 << 20) | OPC_SYSTEM,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{FReg, Reg, VReg};
    use crate::VConfig;

    /// Spot-check against independently assembled words (GNU as output).
    #[test]
    fn known_words() {
        // addi a0, a0, 2  -> 0x00250513
        assert_eq!(
            encode(Instr::OpImm { op: AluOp::Add, rd: Reg::a(0), rs1: Reg::a(0), imm: 2 }),
            0x00250513
        );
        // lui a0, 0x12345 -> 0x12345537
        assert_eq!(encode(Instr::Lui { rd: Reg::a(0), imm20: 0x12345 }), 0x12345537);
        // lw a1, 8(a0) -> 0x00852583
        assert_eq!(encode(Instr::Lw { rd: Reg::a(1), rs1: Reg::a(0), offset: 8 }), 0x00852583);
        // sw a1, 12(a0) -> 0x00b52623
        assert_eq!(encode(Instr::Sw { rs1: Reg::a(0), rs2: Reg::a(1), offset: 12 }), 0x00b52623);
        // add a0, a1, a2 -> 0x00c58533
        assert_eq!(
            encode(Instr::Op { op: AluOp::Add, rd: Reg::a(0), rs1: Reg::a(1), rs2: Reg::a(2) }),
            0x00c58533
        );
        // sub a0, a1, a2 -> 0x40c58533
        assert_eq!(
            encode(Instr::Op { op: AluOp::Sub, rd: Reg::a(0), rs1: Reg::a(1), rs2: Reg::a(2) }),
            0x40c58533
        );
        // mul a0, a1, a2 -> 0x02c58533
        assert_eq!(
            encode(Instr::Mul { rd: Reg::a(0), rs1: Reg::a(1), rs2: Reg::a(2) }),
            0x02c58533
        );
        // ebreak -> 0x00100073
        assert_eq!(encode(Instr::Ebreak), 0x00100073);
        // ecall -> 0x00000073
        assert_eq!(encode(Instr::Ecall), 0x00000073);
        // beq a0, a1, +8 -> 0x00b50463
        assert_eq!(
            encode(Instr::Branch { op: BranchOp::Eq, rs1: Reg::a(0), rs2: Reg::a(1), offset: 8 }),
            0x00b50463
        );
        // jal ra, +16 -> 0x010000ef
        assert_eq!(encode(Instr::Jal { rd: Reg::RA, offset: 16 }), 0x010000ef);
        // flw fa0, 0(a0) -> 0x00052507
        assert_eq!(encode(Instr::Flw { rd: FReg::a(0), rs1: Reg::a(0), offset: 0 }), 0x00052507);
        // fadd.s fa0, fa1, fa2 (rm=rne) -> 0x00c58553
        assert_eq!(
            encode(Instr::FaddS { rd: FReg::a(0), rs1: FReg::a(1), rs2: FReg::a(2) }),
            0x00c58553
        );
    }

    #[test]
    fn negative_immediates() {
        // addi a0, a0, -1 -> 0xfff50513
        assert_eq!(
            encode(Instr::OpImm { op: AluOp::Add, rd: Reg::a(0), rs1: Reg::a(0), imm: -1 }),
            0xfff50513
        );
        // beq zero, zero, -4 -> imm[12|10:5]=111111, imm[4:1|11]=1110+1
        let w =
            encode(Instr::Branch { op: BranchOp::Eq, rs1: Reg::ZERO, rs2: Reg::ZERO, offset: -4 });
        assert_eq!(w, 0xfe000ee3);
    }

    #[test]
    fn vector_major_opcodes() {
        let w = encode(Instr::Vsetvli { rd: Reg::t(0), rs1: Reg::a(0), cfg: VConfig::E32M1 });
        assert_eq!(w & 0x7f, 0b1010111);
        assert_eq!((w >> 12) & 0b111, 0b111);
        let w = encode(Instr::Vle32 { vd: VReg::new(1), rs1: Reg::a(0) });
        assert_eq!(w & 0x7f, 0b0000111);
        assert_eq!((w >> 12) & 0b111, 0b110);
        let w = encode(Instr::Vluxei32 { vd: VReg::new(1), rs1: Reg::a(0), vs2: VReg::new(2) });
        assert_eq!((w >> 26) & 0b11, 0b01);
        let w = encode(Instr::VfmaccVV { vd: VReg::new(0), vs1: VReg::new(1), vs2: VReg::new(2) });
        assert_eq!(w >> 26, 0b101100);
    }
}
