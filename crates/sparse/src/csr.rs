//! Compressed Sparse Row (CSR) — the format the paper's HHT is designed for.
//!
//! Per §2/Fig. 1: a `row_ptr` array (the paper's *rows*) holds, for each row,
//! the index into `col_idx` (*cols*) where that row's column indices start;
//! `values` (*vals*) holds the non-zero values in the same order. The HHT's
//! memory-mapped registers (`M_Rows_Base`, `M_Cols_Base`, …) point at exactly
//! these three arrays, so [`CsrMatrix`] exposes them in the flat `u32`/`f32`
//! layout the simulated memory image uses.

use crate::{CooMatrix, DenseMatrix, Result, SparseError, SparseFormat};

/// A CSR sparse matrix with `u32` indices and `f32` values (SEW = 32).
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<u32>,
    col_idx: Vec<u32>,
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Build from raw CSR arrays, validating every structural invariant:
    /// `row_ptr.len() == rows + 1`, `row_ptr` monotone non-decreasing,
    /// `row_ptr[0] == 0`, `row_ptr[rows] == col_idx.len() == values.len()`,
    /// all column indices in range and strictly increasing within a row.
    pub fn from_raw(
        rows: usize,
        cols: usize,
        row_ptr: Vec<u32>,
        col_idx: Vec<u32>,
        values: Vec<f32>,
    ) -> Result<Self> {
        if row_ptr.len() != rows + 1 {
            return Err(SparseError::InvalidStructure {
                what: format!("row_ptr has {} entries, expected {}", row_ptr.len(), rows + 1),
            });
        }
        if row_ptr[0] != 0 {
            return Err(SparseError::InvalidStructure {
                what: format!("row_ptr[0] = {}, expected 0", row_ptr[0]),
            });
        }
        if col_idx.len() != values.len() {
            return Err(SparseError::InvalidStructure {
                what: format!("{} column indices but {} values", col_idx.len(), values.len()),
            });
        }
        if *row_ptr.last().unwrap() as usize != col_idx.len() {
            return Err(SparseError::InvalidStructure {
                what: format!(
                    "row_ptr[last] = {} but nnz = {}",
                    row_ptr.last().unwrap(),
                    col_idx.len()
                ),
            });
        }
        for w in row_ptr.windows(2) {
            if w[1] < w[0] {
                return Err(SparseError::InvalidStructure {
                    what: "row_ptr is not monotone non-decreasing".into(),
                });
            }
        }
        for r in 0..rows {
            let (lo, hi) = (row_ptr[r] as usize, row_ptr[r + 1] as usize);
            let row_cols = &col_idx[lo..hi];
            for w in row_cols.windows(2) {
                if w[1] <= w[0] {
                    return Err(SparseError::InvalidStructure {
                        what: format!("column indices in row {r} are not strictly increasing"),
                    });
                }
            }
            if let Some(&c) = row_cols.last() {
                if c as usize >= cols {
                    return Err(SparseError::IndexOutOfBounds {
                        row: r,
                        col: c as usize,
                        rows,
                        cols,
                    });
                }
            }
        }
        Ok(CsrMatrix { rows, cols, row_ptr, col_idx, values })
    }

    /// Build from `(row, col, value)` triplets.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: &[(usize, usize, f32)],
    ) -> Result<Self> {
        Ok(Self::from_coo(&CooMatrix::from_triplets(rows, cols, triplets)?))
    }

    /// Build from a sorted COO matrix (infallible: COO maintains the needed
    /// invariants).
    pub fn from_coo(coo: &CooMatrix) -> Self {
        let rows = coo.rows();
        let mut row_ptr = vec![0u32; rows + 1];
        let mut col_idx = Vec::with_capacity(coo.nnz());
        let mut values = Vec::with_capacity(coo.nnz());
        for &(r, c, v) in coo.entries() {
            row_ptr[r + 1] += 1;
            col_idx.push(c as u32);
            values.push(v);
        }
        for r in 0..rows {
            row_ptr[r + 1] += row_ptr[r];
        }
        CsrMatrix { rows, cols: coo.cols(), row_ptr, col_idx, values }
    }

    /// Build from a dense matrix keeping entries that are not exactly zero.
    pub fn from_dense(d: &DenseMatrix) -> Self {
        Self::from_coo(&CooMatrix::from_dense(d))
    }

    /// The paper's *rows* array: `rows() + 1` offsets into [`col_indices`].
    ///
    /// [`col_indices`]: CsrMatrix::col_indices
    pub fn row_ptr(&self) -> &[u32] {
        &self.row_ptr
    }

    /// The paper's *cols* array: column index of each non-zero.
    pub fn col_indices(&self) -> &[u32] {
        &self.col_idx
    }

    /// The paper's *vals* array: non-zero values.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Column indices and values of one row, as parallel slices.
    pub fn row(&self, r: usize) -> (&[u32], &[f32]) {
        let lo = self.row_ptr[r] as usize;
        let hi = self.row_ptr[r + 1] as usize;
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// Number of non-zeros in row `r` (the paper's `nnz` in Algorithm 1).
    pub fn row_nnz(&self, r: usize) -> usize {
        (self.row_ptr[r + 1] - self.row_ptr[r]) as usize
    }

    /// Largest row population, used to size HHT buffers in tests.
    pub fn max_row_nnz(&self) -> usize {
        (0..self.rows).map(|r| self.row_nnz(r)).max().unwrap_or(0)
    }
}

impl SparseFormat for CsrMatrix {
    fn rows(&self) -> usize {
        self.rows
    }
    fn cols(&self) -> usize {
        self.cols
    }
    fn nnz(&self) -> usize {
        self.values.len()
    }
    fn triplets(&self) -> Vec<(usize, usize, f32)> {
        let mut out = Vec::with_capacity(self.nnz());
        for r in 0..self.rows {
            let (cols, vals) = self.row(r);
            for (c, v) in cols.iter().zip(vals) {
                out.push((r, *c as usize, *v));
            }
        }
        out
    }
    fn storage_bytes(&self) -> usize {
        self.row_ptr.len() * 4 + self.col_idx.len() * 4 + self.values.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The 3x3 example of the paper's Fig. 1:
    /// [[5, 0, 2], [0, 0, 3], [1, 0, 0]]
    fn fig1() -> CsrMatrix {
        CsrMatrix::from_triplets(3, 3, &[(0, 0, 5.0), (0, 2, 2.0), (1, 2, 3.0), (2, 0, 1.0)])
            .unwrap()
    }

    #[test]
    fn fig1_arrays_match_paper_layout() {
        let m = fig1();
        assert_eq!(m.row_ptr(), &[0, 2, 3, 4]);
        assert_eq!(m.col_indices(), &[0, 2, 2, 0]);
        assert_eq!(m.values(), &[5.0, 2.0, 3.0, 1.0]);
    }

    #[test]
    fn row_accessors() {
        let m = fig1();
        assert_eq!(m.row_nnz(0), 2);
        assert_eq!(m.row_nnz(1), 1);
        assert_eq!(m.max_row_nnz(), 2);
        let (c, v) = m.row(0);
        assert_eq!(c, &[0, 2]);
        assert_eq!(v, &[5.0, 2.0]);
    }

    #[test]
    fn from_raw_validates_row_ptr_length() {
        let e = CsrMatrix::from_raw(2, 2, vec![0, 1], vec![0], vec![1.0]).unwrap_err();
        assert!(matches!(e, SparseError::InvalidStructure { .. }));
    }

    #[test]
    fn from_raw_validates_monotonicity() {
        let e = CsrMatrix::from_raw(2, 2, vec![0, 2, 1], vec![0], vec![1.0]).unwrap_err();
        assert!(matches!(e, SparseError::InvalidStructure { .. }));
    }

    #[test]
    fn from_raw_validates_nnz_agreement() {
        let e = CsrMatrix::from_raw(1, 2, vec![0, 2], vec![0], vec![1.0]).unwrap_err();
        assert!(matches!(e, SparseError::InvalidStructure { .. }));
        let e = CsrMatrix::from_raw(1, 2, vec![0, 1], vec![0, 1], vec![1.0]).unwrap_err();
        assert!(matches!(e, SparseError::InvalidStructure { .. }));
    }

    #[test]
    fn from_raw_validates_column_order_and_bounds() {
        // duplicate column in a row
        let e = CsrMatrix::from_raw(1, 3, vec![0, 2], vec![1, 1], vec![1.0, 2.0]).unwrap_err();
        assert!(matches!(e, SparseError::InvalidStructure { .. }));
        // out of range column
        let e = CsrMatrix::from_raw(1, 2, vec![0, 1], vec![5], vec![1.0]).unwrap_err();
        assert!(matches!(e, SparseError::IndexOutOfBounds { .. }));
    }

    #[test]
    fn from_raw_accepts_valid_input() {
        let m = CsrMatrix::from_raw(2, 3, vec![0, 2, 3], vec![0, 2, 1], vec![1., 2., 3.]).unwrap();
        assert_eq!(m.nnz(), 3);
    }

    #[test]
    fn triplets_round_trip_via_dense() {
        let m = fig1();
        let d = m.to_dense();
        assert_eq!(d[(0, 0)], 5.0);
        assert_eq!(d[(0, 1)], 0.0);
        assert_eq!(d[(2, 0)], 1.0);
        let back = CsrMatrix::from_dense(&d);
        assert_eq!(back, m);
    }

    #[test]
    fn empty_rows_are_fine() {
        let m = CsrMatrix::from_triplets(4, 4, &[(3, 3, 1.0)]).unwrap();
        assert_eq!(m.row_ptr(), &[0, 0, 0, 0, 1]);
        assert_eq!(m.row_nnz(0), 0);
        assert_eq!(m.row_nnz(3), 1);
    }

    #[test]
    fn storage_accounting() {
        let m = fig1();
        // (3+1) row ptrs + 4 cols + 4 vals = 12 words = 48 bytes
        assert_eq!(m.storage_bytes(), 48);
    }
}
