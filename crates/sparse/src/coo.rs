//! Coordinate-list (COO) format.
//!
//! COO stores one `(row, col, value)` triplet per non-zero. It is the
//! interchange format of this crate: every other format can be built from a
//! sorted COO and can enumerate itself back into triplets.

use crate::{DenseMatrix, Result, SparseError, SparseFormat};

/// A coordinate-list sparse matrix with entries kept sorted row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct CooMatrix {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, f32)>,
}

impl CooMatrix {
    /// An empty `rows x cols` matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        CooMatrix { rows, cols, entries: Vec::new() }
    }

    /// Build from triplets. Entries are sorted row-major; duplicate
    /// coordinates and out-of-bounds indices are rejected.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: &[(usize, usize, f32)],
    ) -> Result<Self> {
        let mut entries: Vec<(usize, usize, f32)> = Vec::with_capacity(triplets.len());
        for &(r, c, v) in triplets {
            if r >= rows || c >= cols {
                return Err(SparseError::IndexOutOfBounds { row: r, col: c, rows, cols });
            }
            entries.push((r, c, v));
        }
        entries.sort_unstable_by_key(|&(r, c, _)| (r, c));
        for w in entries.windows(2) {
            if w[0].0 == w[1].0 && w[0].1 == w[1].1 {
                return Err(SparseError::DuplicateEntry { row: w[0].0, col: w[0].1 });
            }
        }
        Ok(CooMatrix { rows, cols, entries })
    }

    /// Build from a dense matrix, storing only entries that are not exactly
    /// zero.
    pub fn from_dense(d: &DenseMatrix) -> Self {
        let mut entries = Vec::new();
        for r in 0..d.rows() {
            for c in 0..d.cols() {
                let v = d[(r, c)];
                if v != 0.0 {
                    entries.push((r, c, v));
                }
            }
        }
        CooMatrix { rows: d.rows(), cols: d.cols(), entries }
    }

    /// Insert one entry, keeping the row-major ordering.
    ///
    /// Returns an error on out-of-bounds or duplicate coordinates.
    pub fn push(&mut self, row: usize, col: usize, val: f32) -> Result<()> {
        if row >= self.rows || col >= self.cols {
            return Err(SparseError::IndexOutOfBounds {
                row,
                col,
                rows: self.rows,
                cols: self.cols,
            });
        }
        match self.entries.binary_search_by_key(&(row, col), |&(r, c, _)| (r, c)) {
            Ok(_) => Err(SparseError::DuplicateEntry { row, col }),
            Err(pos) => {
                self.entries.insert(pos, (row, col, val));
                Ok(())
            }
        }
    }

    /// Borrow the sorted entry list.
    pub fn entries(&self) -> &[(usize, usize, f32)] {
        &self.entries
    }

    /// Look up an entry; `None` if the coordinate is structurally zero.
    pub fn get(&self, row: usize, col: usize) -> Option<f32> {
        self.entries
            .binary_search_by_key(&(row, col), |&(r, c, _)| (r, c))
            .ok()
            .map(|i| self.entries[i].2)
    }
}

impl SparseFormat for CooMatrix {
    fn rows(&self) -> usize {
        self.rows
    }
    fn cols(&self) -> usize {
        self.cols
    }
    fn nnz(&self) -> usize {
        self.entries.len()
    }
    fn triplets(&self) -> Vec<(usize, usize, f32)> {
        self.entries.clone()
    }
    fn storage_bytes(&self) -> usize {
        // row index + col index + value, 4 bytes each
        self.entries.len() * 12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_triplets_sorts_row_major() {
        let m = CooMatrix::from_triplets(3, 3, &[(2, 0, 1.0), (0, 1, 2.0), (0, 0, 3.0)]).unwrap();
        assert_eq!(m.entries(), &[(0, 0, 3.0), (0, 1, 2.0), (2, 0, 1.0)]);
    }

    #[test]
    fn rejects_out_of_bounds() {
        let e = CooMatrix::from_triplets(2, 2, &[(2, 0, 1.0)]).unwrap_err();
        assert!(matches!(e, SparseError::IndexOutOfBounds { .. }));
    }

    #[test]
    fn rejects_duplicates() {
        let e = CooMatrix::from_triplets(2, 2, &[(1, 1, 1.0), (1, 1, 2.0)]).unwrap_err();
        assert!(matches!(e, SparseError::DuplicateEntry { row: 1, col: 1 }));
    }

    #[test]
    fn push_keeps_order_and_rejects_dups() {
        let mut m = CooMatrix::new(2, 2);
        m.push(1, 0, 4.0).unwrap();
        m.push(0, 1, 5.0).unwrap();
        assert_eq!(m.entries(), &[(0, 1, 5.0), (1, 0, 4.0)]);
        assert!(m.push(0, 1, 9.0).is_err());
        assert!(m.push(5, 0, 1.0).is_err());
    }

    #[test]
    fn get_finds_stored_entries_only() {
        let m = CooMatrix::from_triplets(2, 2, &[(0, 1, 5.0)]).unwrap();
        assert_eq!(m.get(0, 1), Some(5.0));
        assert_eq!(m.get(1, 1), None);
    }

    #[test]
    fn dense_round_trip() {
        let d = DenseMatrix::from_row_major(2, 3, vec![0., 1., 0., 2., 0., 3.]).unwrap();
        let m = CooMatrix::from_dense(&d);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.to_dense(), d);
    }

    #[test]
    fn storage_is_12_bytes_per_nnz() {
        let m = CooMatrix::from_triplets(4, 4, &[(0, 0, 1.0), (3, 3, 2.0)]).unwrap();
        assert_eq!(m.storage_bytes(), 24);
    }

    #[test]
    fn sparsity_matches_definition() {
        let m = CooMatrix::from_triplets(2, 2, &[(0, 0, 1.0)]).unwrap();
        assert_eq!(m.sparsity(), 0.75);
    }
}
