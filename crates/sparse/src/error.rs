//! Error type shared by every format constructor and kernel.

use std::fmt;

/// Errors produced by sparse-format constructors, conversions and kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparseError {
    /// An entry's row or column index lies outside the matrix dimensions.
    IndexOutOfBounds {
        /// Offending row index.
        row: usize,
        /// Offending column index.
        col: usize,
        /// Matrix row count.
        rows: usize,
        /// Matrix column count.
        cols: usize,
    },
    /// Two operands have incompatible shapes for the requested operation.
    DimensionMismatch {
        /// Human-readable description of the two shapes.
        what: String,
    },
    /// A format invariant is violated (e.g. a CSR row-pointer array that is
    /// not monotone, or whose last element disagrees with `cols.len()`).
    InvalidStructure {
        /// Description of the violated invariant.
        what: String,
    },
    /// Duplicate `(row, col)` coordinates were supplied where a format
    /// requires unique coordinates.
    DuplicateEntry {
        /// Row of the duplicate.
        row: usize,
        /// Column of the duplicate.
        col: usize,
    },
    /// A block size that does not divide the matrix dimensions was requested
    /// from a blocked format (BCSR).
    BadBlockSize {
        /// Requested block rows.
        br: usize,
        /// Requested block cols.
        bc: usize,
    },
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::IndexOutOfBounds { row, col, rows, cols } => {
                write!(f, "entry ({row}, {col}) out of bounds for a {rows}x{cols} matrix")
            }
            SparseError::DimensionMismatch { what } => {
                write!(f, "dimension mismatch: {what}")
            }
            SparseError::InvalidStructure { what } => {
                write!(f, "invalid sparse structure: {what}")
            }
            SparseError::DuplicateEntry { row, col } => {
                write!(f, "duplicate entry at ({row}, {col})")
            }
            SparseError::BadBlockSize { br, bc } => {
                write!(f, "block size {br}x{bc} does not tile the matrix")
            }
        }
    }
}

impl std::error::Error for SparseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SparseError::IndexOutOfBounds { row: 5, col: 7, rows: 4, cols: 4 };
        assert!(e.to_string().contains("(5, 7)"));
        assert!(e.to_string().contains("4x4"));
        let e = SparseError::DuplicateEntry { row: 1, col: 2 };
        assert!(e.to_string().contains("(1, 2)"));
        let e = SparseError::BadBlockSize { br: 3, bc: 3 };
        assert!(e.to_string().contains("3x3"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&SparseError::DimensionMismatch { what: "a vs b".into() });
    }
}
