//! MatrixMarket (`.mtx`) I/O.
//!
//! The paper evaluates matrices "drawn from the Texas A&M Sparse Matrix
//! collection" (§4), which distributes MatrixMarket files. This module
//! reads/writes the coordinate format so real collection matrices can be
//! run through the simulator, covering:
//!
//! - `matrix coordinate real general` (the common case),
//! - `integer` values (read as `f32`),
//! - `pattern` matrices (entries get value 1.0),
//! - `symmetric` / `skew-symmetric` storage (mirrored on load).

use crate::{CooMatrix, CsrMatrix, SparseFormat};
use std::fmt;
use std::io::{BufRead, Write};

/// MatrixMarket parse errors with 1-based line numbers.
#[derive(Debug)]
pub enum MtxError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed content.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description.
        msg: String,
    },
}

impl fmt::Display for MtxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MtxError::Io(e) => write!(f, "i/o error: {e}"),
            MtxError::Parse { line, msg } => write!(f, "line {line}: {msg}"),
        }
    }
}

impl std::error::Error for MtxError {}

impl From<std::io::Error> for MtxError {
    fn from(e: std::io::Error) -> Self {
        MtxError::Io(e)
    }
}

fn perr<T>(line: usize, msg: impl Into<String>) -> Result<T, MtxError> {
    Err(MtxError::Parse { line, msg: msg.into() })
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Field {
    Real,
    Integer,
    Pattern,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Symmetry {
    General,
    Symmetric,
    SkewSymmetric,
}

/// Read a MatrixMarket coordinate matrix into COO form.
pub fn read_matrix_market<R: BufRead>(reader: R) -> Result<CooMatrix, MtxError> {
    let mut lines = reader.lines().enumerate();
    // Header line.
    let (ln, header) = match lines.next() {
        Some((i, l)) => (i + 1, l?),
        None => return perr(1, "empty file"),
    };
    let head: Vec<String> = header.split_whitespace().map(|t| t.to_ascii_lowercase()).collect();
    if head.len() < 5 || head[0] != "%%matrixmarket" || head[1] != "matrix" {
        return perr(ln, "expected '%%MatrixMarket matrix ...' header");
    }
    if head[2] != "coordinate" {
        return perr(ln, format!("unsupported format '{}' (only coordinate)", head[2]));
    }
    let field = match head[3].as_str() {
        "real" => Field::Real,
        "integer" => Field::Integer,
        "pattern" => Field::Pattern,
        other => return perr(ln, format!("unsupported field type '{other}'")),
    };
    let symmetry = match head[4].as_str() {
        "general" => Symmetry::General,
        "symmetric" => Symmetry::Symmetric,
        "skew-symmetric" => Symmetry::SkewSymmetric,
        other => return perr(ln, format!("unsupported symmetry '{other}'")),
    };
    // Size line (skipping comments).
    let mut size_line = None;
    for (i, l) in lines.by_ref() {
        let l = l?;
        let t = l.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        size_line = Some((i + 1, l));
        break;
    }
    let Some((ln, size)) = size_line else {
        return perr(0, "missing size line");
    };
    let parts: Vec<&str> = size.split_whitespace().collect();
    if parts.len() != 3 {
        return perr(ln, "size line must be 'rows cols nnz'");
    }
    let rows: usize = parts[0]
        .parse()
        .map_err(|_| MtxError::Parse { line: ln, msg: format!("bad row count {}", parts[0]) })?;
    let cols: usize = parts[1]
        .parse()
        .map_err(|_| MtxError::Parse { line: ln, msg: format!("bad col count {}", parts[1]) })?;
    let nnz: usize = parts[2]
        .parse()
        .map_err(|_| MtxError::Parse { line: ln, msg: format!("bad nnz count {}", parts[2]) })?;
    // An adversarial size line can promise more entries than the matrix
    // can hold; reject it rather than trusting it (overflow-safe).
    if nnz > rows.saturating_mul(cols) {
        return perr(ln, format!("nnz {nnz} exceeds {rows}x{cols} capacity"));
    }
    // Cap the *preallocation* (not the matrix size) so a huge-but-plausible
    // promised nnz on a truncated file cannot allocate gigabytes up front;
    // the vector still grows to the real entry count.
    let mut triplets: Vec<(usize, usize, f32)> = Vec::with_capacity(nnz.min(1 << 20));
    let mut seen = 0usize;
    for (i, l) in lines {
        let l = l?;
        let ln = i + 1;
        let t = l.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let parts: Vec<&str> = t.split_whitespace().collect();
        let want = if field == Field::Pattern { 2 } else { 3 };
        if parts.len() < want {
            return perr(ln, format!("entry needs {want} fields, got {}", parts.len()));
        }
        let r: usize = parts[0]
            .parse()
            .map_err(|_| MtxError::Parse { line: ln, msg: format!("bad row {}", parts[0]) })?;
        let c: usize = parts[1]
            .parse()
            .map_err(|_| MtxError::Parse { line: ln, msg: format!("bad col {}", parts[1]) })?;
        if r == 0 || c == 0 || r > rows || c > cols {
            return perr(ln, format!("entry ({r}, {c}) out of 1-based bounds {rows}x{cols}"));
        }
        let v: f32 = match field {
            Field::Pattern => 1.0,
            _ => parts[2].parse().map_err(|_| MtxError::Parse {
                line: ln,
                msg: format!("bad value {}", parts[2]),
            })?,
        };
        if !v.is_finite() {
            return perr(ln, format!("non-finite value {v}"));
        }
        if seen == nnz {
            return perr(ln, format!("more entries than the promised {nnz}"));
        }
        let (r, c) = (r - 1, c - 1);
        if v != 0.0 {
            triplets.push((r, c, v));
        }
        match symmetry {
            Symmetry::General => {}
            Symmetry::Symmetric if r != c && v != 0.0 => triplets.push((c, r, v)),
            Symmetry::SkewSymmetric if r != c && v != 0.0 => triplets.push((c, r, -v)),
            _ => {}
        }
        seen += 1;
    }
    if seen != nnz {
        return perr(0, format!("size line promised {nnz} entries, file has {seen}"));
    }
    CooMatrix::from_triplets(rows, cols, &triplets)
        .map_err(|e| MtxError::Parse { line: 0, msg: e.to_string() })
}

/// Read a MatrixMarket matrix directly into CSR.
pub fn read_matrix_market_csr<R: BufRead>(reader: R) -> Result<CsrMatrix, MtxError> {
    Ok(CsrMatrix::from_coo(&read_matrix_market(reader)?))
}

/// Write a matrix in `coordinate real general` format.
pub fn write_matrix_market<W: Write, M: SparseFormat>(w: &mut W, m: &M) -> std::io::Result<()> {
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "% written by hht-sparse")?;
    writeln!(w, "{} {} {}", m.rows(), m.cols(), m.nnz())?;
    for (r, c, v) in m.triplets() {
        writeln!(w, "{} {} {}", r + 1, c + 1, v)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;
    use std::io::Cursor;

    #[test]
    fn reads_general_real() {
        let src = "%%MatrixMarket matrix coordinate real general\n\
                   % a comment\n\
                   3 3 4\n\
                   1 1 5.0\n1 3 2.0\n2 3 3.0\n3 1 1.0\n";
        let m = read_matrix_market_csr(Cursor::new(src)).unwrap();
        assert_eq!(m.rows(), 3);
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.row_ptr(), &[0, 2, 3, 4]);
        assert_eq!(m.values(), &[5.0, 2.0, 3.0, 1.0]);
    }

    #[test]
    fn reads_pattern_and_integer() {
        let src = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n2 2\n";
        let m = read_matrix_market(Cursor::new(src)).unwrap();
        assert_eq!(m.get(0, 0), Some(1.0));
        assert_eq!(m.get(1, 1), Some(1.0));
        let src = "%%MatrixMarket matrix coordinate integer general\n2 2 1\n2 1 7\n";
        let m = read_matrix_market(Cursor::new(src)).unwrap();
        assert_eq!(m.get(1, 0), Some(7.0));
    }

    #[test]
    fn mirrors_symmetric_storage() {
        let src = "%%MatrixMarket matrix coordinate real symmetric\n3 3 3\n\
                   1 1 1.0\n2 1 2.0\n3 2 3.0\n";
        let m = read_matrix_market(Cursor::new(src)).unwrap();
        assert_eq!(m.nnz(), 5); // diagonal not mirrored
        assert_eq!(m.get(0, 1), Some(2.0));
        assert_eq!(m.get(1, 0), Some(2.0));
        let src = "%%MatrixMarket matrix coordinate real skew-symmetric\n2 2 1\n2 1 4.0\n";
        let m = read_matrix_market(Cursor::new(src)).unwrap();
        assert_eq!(m.get(1, 0), Some(4.0));
        assert_eq!(m.get(0, 1), Some(-4.0));
    }

    #[test]
    fn explicit_zeros_are_dropped() {
        let src = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 0.0\n2 2 3.0\n";
        let m = read_matrix_market(Cursor::new(src)).unwrap();
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn error_cases() {
        assert!(read_matrix_market(Cursor::new("")).is_err());
        assert!(read_matrix_market(Cursor::new("hello\n")).is_err());
        let bad_fmt = "%%MatrixMarket matrix array real general\n2 2 4\n";
        assert!(read_matrix_market(Cursor::new(bad_fmt)).is_err());
        let oob = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        assert!(read_matrix_market(Cursor::new(oob)).is_err());
        let short = "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n";
        let e = read_matrix_market(Cursor::new(short)).unwrap_err();
        assert!(e.to_string().contains("promised"));
        let zero_based = "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n";
        assert!(read_matrix_market(Cursor::new(zero_based)).is_err());
    }

    #[test]
    fn write_read_round_trip() {
        let m = generate::random_csr(16, 24, 0.8, 5);
        let mut buf = Vec::new();
        write_matrix_market(&mut buf, &m).unwrap();
        let back = read_matrix_market_csr(Cursor::new(buf)).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn adversarial_inputs_error_instead_of_panicking() {
        // A size line promising more entries than rows*cols can hold (or
        // enough to overflow an allocation) must be rejected up front.
        let huge = "%%MatrixMarket matrix coordinate real general\n2 2 18446744073709551615\n";
        let e = read_matrix_market(Cursor::new(huge)).unwrap_err();
        assert!(e.to_string().contains("capacity"), "{e}");
        // Index overflow in an entry: parse error, not a wraparound.
        let overflow = "%%MatrixMarket matrix coordinate real general\n\
                        2 2 1\n99999999999999999999999 1 1.0\n";
        assert!(read_matrix_market(Cursor::new(overflow)).is_err());
        // More data lines than promised: rejected at the extra line.
        let extra = "%%MatrixMarket matrix coordinate real general\n\
                     2 2 1\n1 1 1.0\n2 2 2.0\n";
        let e = read_matrix_market(Cursor::new(extra)).unwrap_err();
        assert!(e.to_string().contains("more entries"), "{e}");
        // Non-finite values are data corruption, not numbers to compute on.
        let nan = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 NaN\n";
        assert!(read_matrix_market(Cursor::new(nan)).is_err());
        let inf = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 inf\n";
        assert!(read_matrix_market(Cursor::new(inf)).is_err());
        // Truncated size line / pattern entry lines.
        let short_size = "%%MatrixMarket matrix coordinate real general\n2 2\n";
        assert!(read_matrix_market(Cursor::new(short_size)).is_err());
        let short_entry = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1\n";
        assert!(read_matrix_market(Cursor::new(short_entry)).is_err());
    }

    mod fuzz {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            /// Arbitrary bytes never panic the parser: every outcome is
            /// `Ok` or a structured `MtxError`.
            #[test]
            fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
                let text = String::from_utf8_lossy(&bytes).into_owned();
                let _ = read_matrix_market(Cursor::new(text.as_bytes()));
            }

            /// A well-formed header followed by arbitrary size/entry bytes
            /// never panics (exercises the post-header paths the raw fuzz
            /// rarely reaches).
            #[test]
            fn arbitrary_body_never_panics(
                bytes in proptest::collection::vec(any::<u8>(), 0..200),
                sym in 0u8..3,
            ) {
                let sym = ["general", "symmetric", "skew-symmetric"][sym as usize];
                let body = String::from_utf8_lossy(&bytes).into_owned();
                let text = format!("%%MatrixMarket matrix coordinate real {sym}\n{body}");
                let _ = read_matrix_market(Cursor::new(text.as_bytes()));
            }

            /// Structured-but-hostile numeric triples: parse succeeds or
            /// errors, and any accepted matrix satisfies its own invariants.
            #[test]
            fn hostile_triples_parse_or_error(
                rows in 0usize..6, cols in 0usize..6,
                nnz in 0usize..12,
                entries in proptest::collection::vec((0u64..8, 0u64..8, -2i32..3), 0..12),
            ) {
                let mut text = format!("%%MatrixMarket matrix coordinate real general\n{rows} {cols} {nnz}\n");
                for (r, c, v) in &entries {
                    text.push_str(&format!("{r} {c} {v}\n"));
                }
                if let Ok(m) = read_matrix_market(Cursor::new(text.as_bytes())) {
                    prop_assert_eq!(m.rows(), rows);
                    prop_assert_eq!(m.cols(), cols);
                    prop_assert!(m.nnz() <= nnz);
                }
            }
        }
    }
}
