//! Bit-vector sparse format (§1 \[5], Fig. 1 right side).
//!
//! One presence bit per matrix entry (packed into `u32` words, row-major),
//! plus the non-zero values in row-major order. Position of a value is
//! recovered by counting set bits (popcount) before its bit position — this
//! is exactly the indexing work the HHT offloads when programmed for
//! bit-vector inputs.

use crate::{CooMatrix, Result, SparseFormat};

/// A bit-vector encoded sparse matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct BitVectorMatrix {
    rows: usize,
    cols: usize,
    /// Presence bitmap, row-major, packed LSB-first into u32 words.
    bits: Vec<u32>,
    /// Non-zero values in row-major order.
    values: Vec<f32>,
}

impl BitVectorMatrix {
    /// Build from `(row, col, value)` triplets.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: &[(usize, usize, f32)],
    ) -> Result<Self> {
        Ok(Self::from_coo(&CooMatrix::from_triplets(rows, cols, triplets)?))
    }

    /// Build from a COO matrix.
    pub fn from_coo(coo: &CooMatrix) -> Self {
        let (rows, cols) = (coo.rows(), coo.cols());
        let nbits = rows * cols;
        let mut bits = vec![0u32; nbits.div_ceil(32)];
        let mut values = Vec::with_capacity(coo.nnz());
        for &(r, c, v) in coo.entries() {
            let pos = r * cols + c;
            bits[pos / 32] |= 1 << (pos % 32);
            values.push(v);
        }
        BitVectorMatrix { rows, cols, bits, values }
    }

    /// Presence bit for `(row, col)`.
    pub fn is_set(&self, row: usize, col: usize) -> bool {
        let pos = row * self.cols + col;
        self.bits[pos / 32] & (1 << (pos % 32)) != 0
    }

    /// Rank query: number of set bits strictly before flat position `pos`.
    ///
    /// This is the popcount-based index computation that maps a matrix
    /// coordinate to its slot in the packed `values` array.
    pub fn rank(&self, pos: usize) -> usize {
        let word = pos / 32;
        let bit = pos % 32;
        let mut count = 0usize;
        for w in &self.bits[..word] {
            count += w.count_ones() as usize;
        }
        if bit > 0 {
            count += (self.bits[word] & ((1u32 << bit) - 1)).count_ones() as usize;
        }
        count
    }

    /// Value at `(row, col)`, or `None` when the presence bit is clear.
    pub fn get(&self, row: usize, col: usize) -> Option<f32> {
        if !self.is_set(row, col) {
            return None;
        }
        Some(self.values[self.rank(row * self.cols + col)])
    }

    /// Packed bitmap words.
    pub fn bitmap(&self) -> &[u32] {
        &self.bits
    }

    /// Packed non-zero values.
    pub fn values(&self) -> &[f32] {
        &self.values
    }
}

impl SparseFormat for BitVectorMatrix {
    fn rows(&self) -> usize {
        self.rows
    }
    fn cols(&self) -> usize {
        self.cols
    }
    fn nnz(&self) -> usize {
        self.values.len()
    }
    fn triplets(&self) -> Vec<(usize, usize, f32)> {
        let mut out = Vec::with_capacity(self.nnz());
        let mut k = 0usize;
        for pos in 0..self.rows * self.cols {
            if self.bits[pos / 32] & (1 << (pos % 32)) != 0 {
                out.push((pos / self.cols, pos % self.cols, self.values[k]));
                k += 1;
            }
        }
        out
    }
    fn storage_bytes(&self) -> usize {
        self.bits.len() * 4 + self.values.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CsrMatrix;

    fn fig1_triplets() -> Vec<(usize, usize, f32)> {
        vec![(0, 0, 5.0), (0, 2, 2.0), (1, 2, 3.0), (2, 0, 1.0)]
    }

    #[test]
    fn fig1_bitmap_matches_paper() {
        // Fig. 1 bit-vector for [[5,0,2],[0,0,3],[1,0,0]]: bits 101 001 100.
        let m = BitVectorMatrix::from_triplets(3, 3, &fig1_triplets()).unwrap();
        // Flat positions set: 0, 2, 5, 6 -> 0b0110_0101 = 0x65
        assert_eq!(m.bitmap(), &[0x65]);
        assert_eq!(m.values(), &[5.0, 2.0, 3.0, 1.0]);
    }

    #[test]
    fn rank_counts_preceding_bits() {
        let m = BitVectorMatrix::from_triplets(3, 3, &fig1_triplets()).unwrap();
        assert_eq!(m.rank(0), 0);
        assert_eq!(m.rank(1), 1);
        assert_eq!(m.rank(5), 2);
        assert_eq!(m.rank(6), 3);
        assert_eq!(m.rank(8), 4);
    }

    #[test]
    fn get_uses_rank() {
        let m = BitVectorMatrix::from_triplets(3, 3, &fig1_triplets()).unwrap();
        assert_eq!(m.get(0, 0), Some(5.0));
        assert_eq!(m.get(0, 2), Some(2.0));
        assert_eq!(m.get(1, 2), Some(3.0));
        assert_eq!(m.get(2, 0), Some(1.0));
        assert_eq!(m.get(1, 1), None);
    }

    #[test]
    fn multi_word_bitmaps() {
        // 8x8 = 64 bits spans two u32 words.
        let t = vec![(0, 0, 1.0), (7, 7, 2.0), (4, 0, 3.0)];
        let m = BitVectorMatrix::from_triplets(8, 8, &t).unwrap();
        assert_eq!(m.bitmap().len(), 2);
        assert_eq!(m.get(7, 7), Some(2.0));
        assert_eq!(m.get(4, 0), Some(3.0));
        assert_eq!(m.rank(63), 2);
    }

    #[test]
    fn round_trip_with_csr() {
        let t = fig1_triplets();
        let bv = BitVectorMatrix::from_triplets(3, 3, &t).unwrap();
        let csr = CsrMatrix::from_triplets(3, 3, &t).unwrap();
        assert_eq!(bv.triplets(), csr.triplets());
    }

    #[test]
    fn storage_is_bitmap_plus_values() {
        let m = BitVectorMatrix::from_triplets(3, 3, &fig1_triplets()).unwrap();
        // 1 bitmap word + 4 values = 20 bytes
        assert_eq!(m.storage_bytes(), 20);
    }
}
