//! Sparse matrix and vector formats for the HHT (Hardware Helper Thread)
//! model, together with *golden* (purely functional) kernels used to verify
//! the cycle-level simulator's results.
//!
//! The paper's HHT operates on compressed sparse row (CSR) data; §1 and §6
//! also discuss CSC, COO, BCSR, bit-vector, run-length and hierarchical
//! bit-vector (SMASH) representations, all of which are provided here so the
//! format ablations of the evaluation can be reproduced.
//!
//! # Layout
//!
//! - [`dense`] — dense matrix/vector reference types.
//! - [`csr`], [`csc`], [`coo`], [`bcsr`], [`ell`], [`dia`], [`bitvec`],
//!   [`rle`], [`smash`] — the compressed formats.
//! - [`vector`] — compressed sparse vectors (for SpMSpV).
//! - [`kernels`] — golden SpMV / SpMSpV / SpMM implementations.
//! - [`generate`] — reproducible random and structured generators.
//! - [`io`] — MatrixMarket (`.mtx`) reader/writer for real collection
//!   matrices (§4 evaluates Texas A&M collection inputs).
//!
//! # Quick example
//!
//! ```
//! use hht_sparse::{CsrMatrix, DenseVector, kernels};
//!
//! // 2x3 matrix [[1,0,2],[0,3,0]] times [1,1,1] = [3,3]
//! let m = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0)]).unwrap();
//! let v = DenseVector::from(vec![1.0, 1.0, 1.0]);
//! let y = kernels::spmv(&m, &v).unwrap();
//! assert_eq!(y.as_slice(), &[3.0, 3.0]);
//! ```

pub mod bcsr;
pub mod bitvec;
pub mod coo;
pub mod csc;
pub mod csr;
pub mod dense;
pub mod dia;
pub mod ell;
pub mod error;
pub mod generate;
pub mod hash;
pub mod io;
pub mod kernels;
pub mod rle;
pub mod smash;
pub mod vector;

pub use bcsr::BcsrMatrix;
pub use bitvec::BitVectorMatrix;
pub use coo::CooMatrix;
pub use csc::CscMatrix;
pub use csr::CsrMatrix;
pub use dense::{DenseMatrix, DenseVector};
pub use dia::DiaMatrix;
pub use ell::EllMatrix;
pub use error::SparseError;
pub use hash::StableHasher;
pub use rle::RleMatrix;
pub use smash::SmashMatrix;
pub use vector::SparseVector;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, SparseError>;

/// Common interface implemented by every sparse matrix format.
///
/// All formats can enumerate their structural non-zeros as `(row, col, val)`
/// triplets in row-major order, which is the basis of the format-conversion
/// round-trip tests and of the golden kernels that are format-agnostic.
pub trait SparseFormat {
    /// Number of rows.
    fn rows(&self) -> usize;
    /// Number of columns.
    fn cols(&self) -> usize;
    /// Number of stored (structural) non-zero entries.
    fn nnz(&self) -> usize;
    /// Enumerate stored entries as `(row, col, value)` in row-major order.
    fn triplets(&self) -> Vec<(usize, usize, f32)>;

    /// Fraction of entries that are *not* stored, in `[0, 1]`.
    ///
    /// This matches the paper's definition of sparsity ("% of zeros").
    fn sparsity(&self) -> f64 {
        let total = self.rows() * self.cols();
        if total == 0 {
            return 0.0;
        }
        1.0 - self.nnz() as f64 / total as f64
    }

    /// Materialize as a dense matrix (zero-filled where unstored).
    fn to_dense(&self) -> DenseMatrix {
        let mut d = DenseMatrix::zeros(self.rows(), self.cols());
        for (r, c, v) in self.triplets() {
            d[(r, c)] = v;
        }
        d
    }

    /// Size in bytes of the compressed representation assuming 32-bit values
    /// and 32-bit indices (the paper's SEW = 32 configuration), used for the
    /// storage-efficiency comparisons in §1.
    fn storage_bytes(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparsity_of_empty_matrix_is_zero() {
        let m = CooMatrix::new(0, 0);
        assert_eq!(m.sparsity(), 0.0);
    }

    #[test]
    fn doc_example_runs() {
        let m = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0)]).unwrap();
        let v = DenseVector::from(vec![1.0, 1.0, 1.0]);
        let y = kernels::spmv(&m, &v).unwrap();
        assert_eq!(y.as_slice(), &[3.0, 3.0]);
    }
}
