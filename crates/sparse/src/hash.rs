//! Stable content hashing for sparse operands.
//!
//! The serving layer (`hht-serve`) keys its content-addressed caches by the
//! *mathematical content* of a request's operands, so the hash must be:
//!
//! - **Deterministic across processes and platforms** — `std`'s
//!   `DefaultHasher` is randomly seeded per process and its algorithm is
//!   unspecified, so it is unusable as a cache key that outlives a run or
//!   appears in committed benchmark reports. [`StableHasher`] is a
//!   hand-rolled FNV-1a 64 over an explicitly little-endian byte encoding:
//!   the same bytes hash to the same value everywhere, forever.
//! - **Content-addressed, not representation-addressed** — CSR/CSC store a
//!   canonical form (sorted, deduplicated indices), so hashing the raw
//!   arrays *is* hashing the logical matrix: two matrices built from the
//!   same triplets in any order produce identical arrays and therefore
//!   identical hashes.
//! - **Complete** — dimensions, index structure and every value bit
//!   participate, so matrices that differ in any of them (including a
//!   `-0.0` vs `+0.0` value, which matters to bit-exact replay) get
//!   different keys. Each container type mixes in a distinct domain tag so
//!   e.g. an empty CSR and an empty CSC cannot collide structurally.

use crate::{CscMatrix, CsrMatrix, DenseVector, SparseFormat, SparseVector};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64 with explicit little-endian integer encoding.
///
/// Not a `std::hash::Hasher` on purpose: that trait's integer methods have
/// unspecified encodings, and we need every byte fed to the state to be
/// pinned by this crate alone.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl StableHasher {
    /// Start a fresh hash at the FNV-1a offset basis.
    pub fn new() -> Self {
        StableHasher { state: FNV_OFFSET }
    }

    /// Feed raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Feed a `u32` as 4 little-endian bytes.
    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feed a `u64` as 8 little-endian bytes.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feed an `f32` by its raw bit pattern (distinguishes `-0.0` from
    /// `+0.0` and every NaN payload — bit-exact replay needs bit-exact
    /// keys).
    pub fn write_f32(&mut self, v: f32) {
        self.write_u32(v.to_bits());
    }

    /// The accumulated 64-bit digest.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

fn hash_parts(tag: &[u8], dims: &[u64], idx: &[&[u32]], vals: &[f32]) -> u64 {
    let mut h = StableHasher::new();
    h.write_bytes(tag);
    for &d in dims {
        h.write_u64(d);
    }
    for arr in idx {
        h.write_u64(arr.len() as u64);
        for &i in *arr {
            h.write_u32(i);
        }
    }
    h.write_u64(vals.len() as u64);
    for &v in vals {
        h.write_f32(v);
    }
    h.finish()
}

impl CsrMatrix {
    /// Stable content hash over dimensions, `row_ptr`, `col_idx` and value
    /// bits. Identical logical matrices (same triplets, any build order)
    /// hash identically; any structural or value difference changes the
    /// digest with overwhelming probability.
    pub fn content_hash(&self) -> u64 {
        hash_parts(
            b"csr1",
            &[self.rows() as u64, self.cols() as u64],
            &[self.row_ptr(), self.col_indices()],
            self.values(),
        )
    }
}

impl CscMatrix {
    /// Stable content hash over dimensions, `col_ptr`, `row_idx` and value
    /// bits (domain-tagged so a CSC never aliases the CSR of the same
    /// matrix).
    pub fn content_hash(&self) -> u64 {
        hash_parts(
            b"csc1",
            &[self.rows() as u64, self.cols() as u64],
            &[self.col_ptr(), self.row_indices()],
            self.values(),
        )
    }
}

impl DenseVector {
    /// Stable content hash over length and value bits.
    pub fn content_hash(&self) -> u64 {
        hash_parts(b"dnv1", &[self.len() as u64], &[], self.as_slice())
    }
}

impl SparseVector {
    /// Stable content hash over logical length, stored indices and value
    /// bits.
    pub fn content_hash(&self) -> u64 {
        hash_parts(b"spv1", &[self.len() as u64], &[self.indices()], self.values())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn hash_is_deterministic_across_builds() {
        let t = &[(0usize, 0usize, 1.0f32), (0, 2, 2.0), (1, 1, 3.0)];
        let mut rev = t.to_vec();
        rev.reverse();
        let a = CsrMatrix::from_triplets(2, 3, t).unwrap();
        let b = CsrMatrix::from_triplets(2, 3, &rev).unwrap();
        assert_eq!(a.content_hash(), b.content_hash());
        assert_eq!(a.content_hash(), a.clone().content_hash());
    }

    #[test]
    fn hash_is_platform_pinned() {
        // Known-value pin: if this changes, committed BENCH_serve cache
        // keys and any on-disk cache would silently invalidate.
        let m = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0)]).unwrap();
        assert_eq!(m.content_hash(), 0x65d0_a206_1072_6fe7);
        let v = DenseVector::from(vec![1.0, -0.0]);
        assert_eq!(v.content_hash(), 0xcfa1_2821_5bc1_1b27);
    }

    #[test]
    fn any_component_changes_the_hash() {
        let base = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (1, 1, 3.0)]).unwrap();
        let value = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.5), (1, 1, 3.0)]).unwrap();
        let moved = CsrMatrix::from_triplets(2, 3, &[(0, 1, 1.0), (1, 1, 3.0)]).unwrap();
        let wider = CsrMatrix::from_triplets(2, 4, &[(0, 0, 1.0), (1, 1, 3.0)]).unwrap();
        let taller = CsrMatrix::from_triplets(3, 3, &[(0, 0, 1.0), (1, 1, 3.0)]).unwrap();
        let h = base.content_hash();
        assert_ne!(h, value.content_hash());
        assert_ne!(h, moved.content_hash());
        assert_ne!(h, wider.content_hash());
        assert_ne!(h, taller.content_hash());
    }

    #[test]
    fn negative_zero_is_distinguished() {
        let a = DenseVector::from(vec![0.0f32]);
        let b = DenseVector::from(vec![-0.0f32]);
        assert_ne!(a.content_hash(), b.content_hash());
    }

    #[test]
    fn formats_do_not_alias() {
        let t = &[(0usize, 0usize, 1.0f32), (1, 1, 2.0)];
        let csr = CsrMatrix::from_triplets(2, 2, t).unwrap();
        let csc = CscMatrix::from_triplets(2, 2, t).unwrap();
        assert_ne!(csr.content_hash(), csc.content_hash());
        // Empty containers of different types must differ too.
        let ev = DenseVector::from(vec![]);
        let es = SparseVector::zeros(0);
        assert_ne!(ev.content_hash(), es.content_hash());
    }

    #[test]
    fn collision_sanity_over_a_matrix_family() {
        // 160 structurally-near matrices: all hashes pairwise distinct.
        let mut seen = std::collections::HashSet::new();
        for seed in 0..40u64 {
            for &n in &[7usize, 8, 9, 16] {
                let m = generate::random_csr(n, n, 0.5, seed);
                assert!(seen.insert(m.content_hash()), "collision at n={n} seed={seed}");
            }
        }
    }

    #[test]
    fn sparse_vector_hash_tracks_indices_and_length() {
        let a = SparseVector::from_pairs(8, &[(1, 2.0), (5, 3.0)]).unwrap();
        let b = SparseVector::from_pairs(8, &[(2, 2.0), (5, 3.0)]).unwrap();
        let c = SparseVector::from_pairs(9, &[(1, 2.0), (5, 3.0)]).unwrap();
        assert_ne!(a.content_hash(), b.content_hash());
        assert_ne!(a.content_hash(), c.content_hash());
        assert_eq!(a.content_hash(), a.clone().content_hash());
    }
}
