//! ELLPACK (ELL) format.
//!
//! Fixed `K = max_row_nnz` slots per row, stored column-major as two
//! `rows x K` arrays (column indices and values) with padding entries
//! marked by a sentinel index. Classic for SIMD/GPU SpMV because every row
//! is the same length; wasteful when row populations are skewed — which is
//! exactly what [`BcsrMatrix::fill_ratio`]-style accounting exposes here
//! via [`EllMatrix::padding_ratio`].
//!
//! [`BcsrMatrix::fill_ratio`]: crate::BcsrMatrix::fill_ratio

use crate::{CooMatrix, Result, SparseFormat};

/// Sentinel column index marking a padding slot.
pub const PAD: u32 = u32::MAX;

/// An ELLPACK sparse matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct EllMatrix {
    rows: usize,
    cols: usize,
    /// Slots per row (the maximum row population).
    k: usize,
    /// Column indices, row-major `rows x k`, [`PAD`] in padding slots.
    col_idx: Vec<u32>,
    /// Values, row-major `rows x k`, 0.0 in padding slots.
    values: Vec<f32>,
    nnz: usize,
}

impl EllMatrix {
    /// Build from `(row, col, value)` triplets.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: &[(usize, usize, f32)],
    ) -> Result<Self> {
        Ok(Self::from_coo(&CooMatrix::from_triplets(rows, cols, triplets)?))
    }

    /// Build from a COO matrix.
    pub fn from_coo(coo: &CooMatrix) -> Self {
        let (rows, cols) = (coo.rows(), coo.cols());
        let mut pop = vec![0usize; rows];
        for &(r, _, _) in coo.entries() {
            pop[r] += 1;
        }
        let k = pop.iter().copied().max().unwrap_or(0);
        let mut col_idx = vec![PAD; rows * k];
        let mut values = vec![0.0f32; rows * k];
        let mut cursor = vec![0usize; rows];
        for &(r, c, v) in coo.entries() {
            let slot = r * k + cursor[r];
            col_idx[slot] = c as u32;
            values[slot] = v;
            cursor[r] += 1;
        }
        EllMatrix { rows, cols, k, col_idx, values, nnz: coo.nnz() }
    }

    /// Slots per row.
    pub fn k(&self) -> usize {
        self.k
    }

    /// One row's column-index slots.
    pub fn row_cols(&self, r: usize) -> &[u32] {
        &self.col_idx[r * self.k..(r + 1) * self.k]
    }

    /// One row's value slots.
    pub fn row_vals(&self, r: usize) -> &[f32] {
        &self.values[r * self.k..(r + 1) * self.k]
    }

    /// Stored slots per true non-zero (≥ 1; 1 = perfectly uniform rows).
    pub fn padding_ratio(&self) -> f64 {
        if self.nnz == 0 {
            return 1.0;
        }
        (self.rows * self.k) as f64 / self.nnz as f64
    }
}

impl SparseFormat for EllMatrix {
    fn rows(&self) -> usize {
        self.rows
    }
    fn cols(&self) -> usize {
        self.cols
    }
    fn nnz(&self) -> usize {
        self.nnz
    }
    fn triplets(&self) -> Vec<(usize, usize, f32)> {
        let mut out = Vec::with_capacity(self.nnz);
        for r in 0..self.rows {
            for (c, v) in self.row_cols(r).iter().zip(self.row_vals(r)) {
                if *c != PAD {
                    out.push((r, *c as usize, *v));
                }
            }
        }
        out.sort_unstable_by_key(|&(r, c, _)| (r, c));
        out
    }
    fn storage_bytes(&self) -> usize {
        // index + value per slot.
        self.rows * self.k * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CsrMatrix;

    fn fig1() -> Vec<(usize, usize, f32)> {
        vec![(0, 0, 5.0), (0, 2, 2.0), (1, 2, 3.0), (2, 0, 1.0)]
    }

    #[test]
    fn k_is_max_row_population() {
        let m = EllMatrix::from_triplets(3, 3, &fig1()).unwrap();
        assert_eq!(m.k(), 2);
        assert_eq!(m.row_cols(0), &[0, 2]);
        assert_eq!(m.row_cols(1), &[2, PAD]);
        assert_eq!(m.row_vals(1), &[3.0, 0.0]);
    }

    #[test]
    fn padding_ratio_counts_waste() {
        let m = EllMatrix::from_triplets(3, 3, &fig1()).unwrap();
        // 3 rows x 2 slots = 6 slots for 4 nnz.
        assert!((m.padding_ratio() - 1.5).abs() < 1e-12);
        // A single dense row against empty rows is the pathological case.
        let skewed =
            EllMatrix::from_triplets(4, 4, &(0..4).map(|c| (0usize, c, 1.0)).collect::<Vec<_>>())
                .unwrap();
        assert_eq!(skewed.padding_ratio(), 4.0);
    }

    #[test]
    fn round_trip_with_csr() {
        let t = fig1();
        let e = EllMatrix::from_triplets(3, 3, &t).unwrap();
        let c = CsrMatrix::from_triplets(3, 3, &t).unwrap();
        assert_eq!(e.triplets(), c.triplets());
        assert_eq!(e.to_dense(), c.to_dense());
    }

    #[test]
    fn empty_matrix() {
        let m = EllMatrix::from_triplets(4, 4, &[]).unwrap();
        assert_eq!(m.k(), 0);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.padding_ratio(), 1.0);
        assert!(m.triplets().is_empty());
    }
}
