//! Block Compressed Sparse Row (BCSR) — CSR over fixed-size dense blocks
//! (§1 \[18]). Any block containing at least one non-zero is stored densely.

use crate::{CooMatrix, Result, SparseError, SparseFormat};

/// A BCSR matrix: CSR structure over `br x bc` dense blocks.
#[derive(Debug, Clone, PartialEq)]
pub struct BcsrMatrix {
    rows: usize,
    cols: usize,
    br: usize,
    bc: usize,
    block_row_ptr: Vec<u32>,
    block_col_idx: Vec<u32>,
    /// Block contents, row-major within each block, concatenated.
    block_values: Vec<f32>,
}

impl BcsrMatrix {
    /// Build from triplets with the given block shape. The block shape must
    /// tile the matrix exactly.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        br: usize,
        bc: usize,
        triplets: &[(usize, usize, f32)],
    ) -> Result<Self> {
        Self::from_coo(&CooMatrix::from_triplets(rows, cols, triplets)?, br, bc)
    }

    /// Build from a COO matrix with the given block shape.
    pub fn from_coo(coo: &CooMatrix, br: usize, bc: usize) -> Result<Self> {
        let (rows, cols) = (coo.rows(), coo.cols());
        if br == 0 || bc == 0 || rows % br != 0 || cols % bc != 0 {
            return Err(SparseError::BadBlockSize { br, bc });
        }
        let brows = rows / br;
        // Gather non-empty blocks in block-row-major order.
        let mut blocks: Vec<Vec<u32>> = vec![Vec::new(); brows]; // per block-row: sorted block-col list
        for &(r, c, _) in coo.entries() {
            let (rb, cb) = (r / br, (c / bc) as u32);
            if let Err(pos) = blocks[rb].binary_search(&cb) {
                blocks[rb].insert(pos, cb);
            }
        }
        let nblocks: usize = blocks.iter().map(Vec::len).sum();
        let mut block_row_ptr = vec![0u32; brows + 1];
        let mut block_col_idx = Vec::with_capacity(nblocks);
        let mut block_values = vec![0.0f32; nblocks * br * bc];
        for rb in 0..brows {
            block_row_ptr[rb + 1] = block_row_ptr[rb] + blocks[rb].len() as u32;
            block_col_idx.extend_from_slice(&blocks[rb]);
        }
        for &(r, c, v) in coo.entries() {
            let (rb, cb) = (r / br, (c / bc) as u32);
            let lo = block_row_ptr[rb] as usize;
            let hi = block_row_ptr[rb + 1] as usize;
            let k = lo + block_col_idx[lo..hi].binary_search(&cb).unwrap();
            block_values[k * br * bc + (r % br) * bc + (c % bc)] = v;
        }
        Ok(BcsrMatrix { rows, cols, br, bc, block_row_ptr, block_col_idx, block_values })
    }

    /// Block shape `(rows, cols)`.
    pub fn block_shape(&self) -> (usize, usize) {
        (self.br, self.bc)
    }

    /// Number of stored blocks.
    pub fn num_blocks(&self) -> usize {
        self.block_col_idx.len()
    }

    /// Block row-pointer array.
    pub fn block_row_ptr(&self) -> &[u32] {
        &self.block_row_ptr
    }

    /// Block column-index array.
    pub fn block_col_idx(&self) -> &[u32] {
        &self.block_col_idx
    }

    /// The `k`-th stored block as a row-major slice of `br*bc` values.
    pub fn block(&self, k: usize) -> &[f32] {
        &self.block_values[k * self.br * self.bc..(k + 1) * self.br * self.bc]
    }

    /// Fill-in ratio: stored values (incl. explicit zeros inside blocks)
    /// divided by true non-zeros. Always ≥ 1; 1 means blocks are fully dense.
    pub fn fill_ratio(&self) -> f64 {
        let true_nnz = self.block_values.iter().filter(|v| **v != 0.0).count().max(1);
        self.block_values.len() as f64 / true_nnz as f64
    }
}

impl SparseFormat for BcsrMatrix {
    fn rows(&self) -> usize {
        self.rows
    }
    fn cols(&self) -> usize {
        self.cols
    }
    /// Stored entries, counting every slot of every stored block (this is
    /// what determines memory traffic, which is what the HHT model cares
    /// about).
    fn nnz(&self) -> usize {
        self.block_values.len()
    }
    fn triplets(&self) -> Vec<(usize, usize, f32)> {
        let mut out = Vec::new();
        let brows = self.rows / self.br;
        for rb in 0..brows {
            let lo = self.block_row_ptr[rb] as usize;
            let hi = self.block_row_ptr[rb + 1] as usize;
            for k in lo..hi {
                let cb = self.block_col_idx[k] as usize;
                let blk = self.block(k);
                for i in 0..self.br {
                    for j in 0..self.bc {
                        let v = blk[i * self.bc + j];
                        if v != 0.0 {
                            out.push((rb * self.br + i, cb * self.bc + j, v));
                        }
                    }
                }
            }
        }
        out.sort_unstable_by_key(|&(r, c, _)| (r, c));
        out
    }
    fn storage_bytes(&self) -> usize {
        self.block_row_ptr.len() * 4 + self.block_col_idx.len() * 4 + self.block_values.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CsrMatrix;

    #[test]
    fn rejects_non_tiling_blocks() {
        let e = BcsrMatrix::from_triplets(3, 3, 2, 2, &[]).unwrap_err();
        assert!(matches!(e, SparseError::BadBlockSize { br: 2, bc: 2 }));
        assert!(BcsrMatrix::from_triplets(4, 4, 0, 2, &[]).is_err());
    }

    #[test]
    fn single_block_holds_neighbors() {
        // Two nnz in the same 2x2 block -> one stored block of 4 slots.
        let m = BcsrMatrix::from_triplets(4, 4, 2, 2, &[(0, 0, 1.0), (1, 1, 2.0)]).unwrap();
        assert_eq!(m.num_blocks(), 1);
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.block(0), &[1.0, 0.0, 0.0, 2.0]);
        assert_eq!(m.fill_ratio(), 2.0);
    }

    #[test]
    fn triplets_round_trip_with_csr() {
        let t = vec![(0, 0, 1.0), (1, 3, 2.0), (2, 2, 3.0), (3, 0, 4.0)];
        let b = BcsrMatrix::from_triplets(4, 4, 2, 2, &t).unwrap();
        let c = CsrMatrix::from_triplets(4, 4, &t).unwrap();
        assert_eq!(b.triplets(), c.triplets());
        assert_eq!(b.to_dense(), c.to_dense());
    }

    #[test]
    fn block_indexing_structure() {
        let t = vec![(0, 0, 1.0), (0, 2, 2.0), (2, 0, 3.0)];
        let b = BcsrMatrix::from_triplets(4, 4, 2, 2, &t).unwrap();
        assert_eq!(b.num_blocks(), 3);
        assert_eq!(b.block_row_ptr(), &[0, 2, 3]);
        assert_eq!(b.block_col_idx(), &[0, 1, 0]);
    }

    #[test]
    fn storage_counts_full_blocks() {
        let b = BcsrMatrix::from_triplets(4, 4, 2, 2, &[(0, 0, 1.0)]).unwrap();
        // 3 block-row ptrs + 1 block col + 4 block slots = 8 words
        assert_eq!(b.storage_bytes(), 32);
    }
}
