//! Dense matrix and vector types.
//!
//! These are the reference representations: every sparse format converts to
//! and from [`DenseMatrix`], and the golden kernels compare against plain
//! dense matrix-vector products computed here.

use crate::{Result, SparseError};
use std::ops::{Index, IndexMut};

/// A row-major dense `f32` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl DenseMatrix {
    /// Create a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Create from a row-major data slice.
    ///
    /// Returns [`SparseError::DimensionMismatch`] if `data.len() != rows*cols`.
    pub fn from_row_major(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(SparseError::DimensionMismatch {
                what: format!("{} data elements for a {rows}x{cols} matrix", data.len()),
            });
        }
        Ok(DenseMatrix { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row-major backing storage.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// One row as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Count of entries that are exactly zero.
    pub fn count_zeros(&self) -> usize {
        self.data.iter().filter(|v| **v == 0.0).count()
    }

    /// Fraction of zero entries, the paper's "sparsity".
    pub fn sparsity(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.count_zeros() as f64 / self.data.len() as f64
    }

    /// Dense matrix-vector product `y = A * x`.
    pub fn matvec(&self, x: &DenseVector) -> Result<DenseVector> {
        if x.len() != self.cols {
            return Err(SparseError::DimensionMismatch {
                what: format!("matrix has {} cols, vector has {} entries", self.cols, x.len()),
            });
        }
        let mut y = vec![0.0f32; self.rows];
        for r in 0..self.rows {
            let mut s = 0.0f32;
            for c in 0..self.cols {
                s += self[(r, c)] * x[c];
            }
            y[r] = s;
        }
        Ok(DenseVector::from(y))
    }
}

impl Index<(usize, usize)> for DenseMatrix {
    type Output = f32;
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for DenseMatrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }
}

/// A dense `f32` vector.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DenseVector {
    data: Vec<f32>,
}

impl DenseVector {
    /// A zero vector of length `n`.
    pub fn zeros(n: usize) -> Self {
        DenseVector { data: vec![0.0; n] }
    }

    /// Length of the vector.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the vector has zero length.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Backing storage.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable backing storage.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Fraction of exactly-zero entries.
    pub fn sparsity(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().filter(|v| **v == 0.0).count() as f64 / self.data.len() as f64
    }

    /// Maximum absolute elementwise difference against `other`.
    ///
    /// Used by tests to compare simulator-produced results with golden
    /// results under floating-point reassociation.
    pub fn max_abs_diff(&self, other: &DenseVector) -> f32 {
        assert_eq!(self.len(), other.len(), "max_abs_diff on different lengths");
        self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max)
    }
}

impl From<Vec<f32>> for DenseVector {
    fn from(data: Vec<f32>) -> Self {
        DenseVector { data }
    }
}

impl Index<usize> for DenseVector {
    type Output = f32;
    fn index(&self, i: usize) -> &f32 {
        &self.data[i]
    }
}

impl IndexMut<usize> for DenseVector {
    fn index_mut(&mut self, i: usize) -> &mut f32 {
        &mut self.data[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_right_shape() {
        let m = DenseMatrix::zeros(3, 4);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert_eq!(m.as_slice().len(), 12);
        assert_eq!(m.count_zeros(), 12);
        assert_eq!(m.sparsity(), 1.0);
    }

    #[test]
    fn from_row_major_checks_length() {
        assert!(DenseMatrix::from_row_major(2, 2, vec![1.0; 3]).is_err());
        assert!(DenseMatrix::from_row_major(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn index_is_row_major() {
        let m = DenseMatrix::from_row_major(2, 3, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m[(1, 0)], 4.0);
        assert_eq!(m.row(1), &[4., 5., 6.]);
    }

    #[test]
    fn matvec_matches_hand_computation() {
        let m = DenseMatrix::from_row_major(2, 3, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let x = DenseVector::from(vec![1., 0., -1.]);
        let y = m.matvec(&x).unwrap();
        assert_eq!(y.as_slice(), &[-2.0, -2.0]);
    }

    #[test]
    fn matvec_rejects_bad_shape() {
        let m = DenseMatrix::zeros(2, 3);
        let x = DenseVector::zeros(4);
        assert!(m.matvec(&x).is_err());
    }

    #[test]
    fn vector_sparsity() {
        let v = DenseVector::from(vec![0.0, 1.0, 0.0, 2.0]);
        assert_eq!(v.sparsity(), 0.5);
        assert_eq!(DenseVector::zeros(0).sparsity(), 0.0);
    }

    #[test]
    fn max_abs_diff_works() {
        let a = DenseVector::from(vec![1.0, 2.0]);
        let b = DenseVector::from(vec![1.5, 1.0]);
        assert_eq!(a.max_abs_diff(&b), 1.0);
    }
}
