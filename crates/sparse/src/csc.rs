//! Compressed Sparse Column (CSC) — the column-major dual of CSR (§1 \[19]).

use crate::{CooMatrix, Result, SparseError, SparseFormat};

/// A CSC sparse matrix with `u32` indices and `f32` values.
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix {
    rows: usize,
    cols: usize,
    col_ptr: Vec<u32>,
    row_idx: Vec<u32>,
    values: Vec<f32>,
}

impl CscMatrix {
    /// Build from `(row, col, value)` triplets.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: &[(usize, usize, f32)],
    ) -> Result<Self> {
        Ok(Self::from_coo(&CooMatrix::from_triplets(rows, cols, triplets)?))
    }

    /// Build from a COO matrix (resorted column-major internally).
    pub fn from_coo(coo: &CooMatrix) -> Self {
        let mut entries: Vec<(usize, usize, f32)> = coo.entries().to_vec();
        entries.sort_unstable_by_key(|&(r, c, _)| (c, r));
        let cols = coo.cols();
        let mut col_ptr = vec![0u32; cols + 1];
        let mut row_idx = Vec::with_capacity(entries.len());
        let mut values = Vec::with_capacity(entries.len());
        for &(r, c, v) in &entries {
            col_ptr[c + 1] += 1;
            row_idx.push(r as u32);
            values.push(v);
        }
        for c in 0..cols {
            col_ptr[c + 1] += col_ptr[c];
        }
        CscMatrix { rows: coo.rows(), cols, col_ptr, row_idx, values }
    }

    /// Build from raw arrays, validating structure.
    pub fn from_raw(
        rows: usize,
        cols: usize,
        col_ptr: Vec<u32>,
        row_idx: Vec<u32>,
        values: Vec<f32>,
    ) -> Result<Self> {
        if col_ptr.len() != cols + 1 || col_ptr.first() != Some(&0) {
            return Err(SparseError::InvalidStructure {
                what: "col_ptr must have cols+1 entries starting at 0".into(),
            });
        }
        if row_idx.len() != values.len() || *col_ptr.last().unwrap() as usize != row_idx.len() {
            return Err(SparseError::InvalidStructure {
                what: "col_ptr[last], row_idx and values disagree on nnz".into(),
            });
        }
        for w in col_ptr.windows(2) {
            if w[1] < w[0] {
                return Err(SparseError::InvalidStructure {
                    what: "col_ptr is not monotone".into(),
                });
            }
        }
        for c in 0..cols {
            let seg = &row_idx[col_ptr[c] as usize..col_ptr[c + 1] as usize];
            for w in seg.windows(2) {
                if w[1] <= w[0] {
                    return Err(SparseError::InvalidStructure {
                        what: format!("row indices in column {c} not strictly increasing"),
                    });
                }
            }
            if let Some(&r) = seg.last() {
                if r as usize >= rows {
                    return Err(SparseError::IndexOutOfBounds {
                        row: r as usize,
                        col: c,
                        rows,
                        cols,
                    });
                }
            }
        }
        Ok(CscMatrix { rows, cols, col_ptr, row_idx, values })
    }

    /// Column pointer array (`cols() + 1` offsets).
    pub fn col_ptr(&self) -> &[u32] {
        &self.col_ptr
    }

    /// Row index of each stored entry (column-major order).
    pub fn row_indices(&self) -> &[u32] {
        &self.row_idx
    }

    /// Stored values (column-major order).
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Row indices and values of one column, as parallel slices.
    pub fn col(&self, c: usize) -> (&[u32], &[f32]) {
        let lo = self.col_ptr[c] as usize;
        let hi = self.col_ptr[c + 1] as usize;
        (&self.row_idx[lo..hi], &self.values[lo..hi])
    }
}

impl SparseFormat for CscMatrix {
    fn rows(&self) -> usize {
        self.rows
    }
    fn cols(&self) -> usize {
        self.cols
    }
    fn nnz(&self) -> usize {
        self.values.len()
    }
    fn triplets(&self) -> Vec<(usize, usize, f32)> {
        let mut out = Vec::with_capacity(self.nnz());
        for c in 0..self.cols {
            let (rows, vals) = self.col(c);
            for (r, v) in rows.iter().zip(vals) {
                out.push((*r as usize, c, *v));
            }
        }
        out.sort_unstable_by_key(|&(r, c, _)| (r, c));
        out
    }
    fn storage_bytes(&self) -> usize {
        self.col_ptr.len() * 4 + self.row_idx.len() * 4 + self.values.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CsrMatrix;

    fn fig1_triplets() -> Vec<(usize, usize, f32)> {
        vec![(0, 0, 5.0), (0, 2, 2.0), (1, 2, 3.0), (2, 0, 1.0)]
    }

    #[test]
    fn csc_layout_is_column_major() {
        let m = CscMatrix::from_triplets(3, 3, &fig1_triplets()).unwrap();
        assert_eq!(m.col_ptr(), &[0, 2, 2, 4]);
        assert_eq!(m.row_indices(), &[0, 2, 0, 1]);
        assert_eq!(m.values(), &[5.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn col_accessor() {
        let m = CscMatrix::from_triplets(3, 3, &fig1_triplets()).unwrap();
        let (rows, vals) = m.col(0);
        assert_eq!(rows, &[0, 2]);
        assert_eq!(vals, &[5.0, 1.0]);
        let (rows, _) = m.col(1);
        assert!(rows.is_empty());
    }

    #[test]
    fn triplets_agree_with_csr() {
        let t = fig1_triplets();
        let csc = CscMatrix::from_triplets(3, 3, &t).unwrap();
        let csr = CsrMatrix::from_triplets(3, 3, &t).unwrap();
        assert_eq!(csc.triplets(), csr.triplets());
        assert_eq!(csc.to_dense(), csr.to_dense());
    }

    #[test]
    fn from_raw_validation() {
        assert!(CscMatrix::from_raw(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        assert!(CscMatrix::from_raw(2, 2, vec![0, 2, 1], vec![0], vec![1.0]).is_err());
        assert!(CscMatrix::from_raw(2, 2, vec![0, 2, 2], vec![1, 0], vec![1.0, 2.0]).is_err());
        assert!(CscMatrix::from_raw(2, 2, vec![0, 1, 1], vec![7], vec![1.0]).is_err());
        assert!(CscMatrix::from_raw(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0, 2.0]).is_ok());
    }
}
