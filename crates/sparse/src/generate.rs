//! Reproducible random and structured matrix/vector generators.
//!
//! The paper's primary evaluation uses "randomly generated matrices with
//! varying degrees of sparsity" (§4); the SuiteSparse-profile generators in
//! `hht-workloads` build on the structured generators here.

use crate::{CooMatrix, CsrMatrix, DenseVector, SparseVector};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Draw a non-zero value uniformly from `[-1, 1] \ {0}`.
fn nonzero_value(rng: &mut SmallRng) -> f32 {
    loop {
        let v: f32 = rng.gen_range(-1.0..=1.0);
        if v != 0.0 {
            return v;
        }
    }
}

/// Generate a random `rows x cols` CSR matrix with the given sparsity
/// (fraction of zeros, per the paper's definition) using the seed for
/// reproducibility.
///
/// The generator places `round((1 - sparsity) * rows * cols)` non-zeros at
/// distinct uniformly random coordinates, so the realized sparsity is exact
/// up to rounding.
pub fn random_csr(rows: usize, cols: usize, sparsity: f64, seed: u64) -> CsrMatrix {
    assert!((0.0..=1.0).contains(&sparsity), "sparsity must be in [0,1]");
    let total = rows * cols;
    let nnz = ((1.0 - sparsity) * total as f64).round() as usize;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut coo = CooMatrix::new(rows, cols);
    if nnz * 3 < total {
        // Sparse regime: rejection-sample coordinates.
        let mut placed = 0usize;
        while placed < nnz {
            let r = rng.gen_range(0..rows);
            let c = rng.gen_range(0..cols);
            if coo.push(r, c, nonzero_value(&mut rng)).is_ok() {
                placed += 1;
            }
        }
    } else {
        // Dense regime: partial Fisher-Yates over all coordinates.
        let mut coords: Vec<usize> = (0..total).collect();
        for i in 0..nnz {
            let j = rng.gen_range(i..total);
            coords.swap(i, j);
        }
        let mut chosen = coords[..nnz].to_vec();
        chosen.sort_unstable();
        for flat in chosen {
            coo.push(flat / cols, flat % cols, nonzero_value(&mut rng)).unwrap();
        }
    }
    CsrMatrix::from_coo(&coo)
}

/// Generate a random dense vector of length `n` with entries in `[-1, 1]`,
/// all non-zero.
pub fn random_dense_vector(n: usize, seed: u64) -> DenseVector {
    let mut rng = SmallRng::seed_from_u64(seed);
    DenseVector::from((0..n).map(|_| nonzero_value(&mut rng)).collect::<Vec<_>>())
}

/// Generate a random sparse vector of length `n` with the given sparsity.
pub fn random_sparse_vector(n: usize, sparsity: f64, seed: u64) -> SparseVector {
    assert!((0.0..=1.0).contains(&sparsity), "sparsity must be in [0,1]");
    let nnz = ((1.0 - sparsity) * n as f64).round() as usize;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut idx: Vec<usize> = (0..n).collect();
    for i in 0..nnz {
        let j = rng.gen_range(i..n);
        idx.swap(i, j);
    }
    let pairs: Vec<(usize, f32)> =
        idx[..nnz].iter().map(|&i| (i, nonzero_value(&mut rng))).collect();
    SparseVector::from_pairs(n, &pairs).expect("generated indices are unique and in range")
}

/// A banded matrix: non-zeros only within `bandwidth` of the diagonal, all
/// band slots filled. Typical of discretized-PDE SuiteSparse matrices.
pub fn banded_csr(n: usize, bandwidth: usize, seed: u64) -> CsrMatrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut triplets = Vec::new();
    for i in 0..n {
        let lo = i.saturating_sub(bandwidth);
        let hi = (i + bandwidth + 1).min(n);
        for j in lo..hi {
            triplets.push((i, j, nonzero_value(&mut rng)));
        }
    }
    CsrMatrix::from_triplets(n, n, &triplets).expect("band coordinates are valid")
}

/// A power-law (graph-like) matrix: row populations follow a Zipf-like
/// distribution, columns uniform. Typical of web/social-graph SuiteSparse
/// matrices.
pub fn power_law_csr(n: usize, avg_row_nnz: f64, seed: u64) -> CsrMatrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut coo = CooMatrix::new(n, n);
    // Zipf weights w_i = 1/(i+1); scale so the mean matches avg_row_nnz.
    let hn: f64 = (1..=n).map(|i| 1.0 / i as f64).sum();
    let scale = avg_row_nnz * n as f64 / hn;
    for i in 0..n {
        let target = ((scale / (i + 1) as f64).round() as usize).min(n);
        let mut placed = 0usize;
        let mut attempts = 0usize;
        while placed < target && attempts < 4 * n {
            let c = rng.gen_range(0..n);
            if coo.push(i, c, nonzero_value(&mut rng)).is_ok() {
                placed += 1;
            }
            attempts += 1;
        }
    }
    CsrMatrix::from_coo(&coo)
}

/// A block-diagonal matrix of dense `block x block` blocks. Typical of
/// multi-body / circuit SuiteSparse matrices.
pub fn block_diagonal_csr(n: usize, block: usize, seed: u64) -> CsrMatrix {
    assert!(block > 0 && n.is_multiple_of(block), "block must tile n");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut triplets = Vec::new();
    for b in (0..n).step_by(block) {
        for i in 0..block {
            for j in 0..block {
                triplets.push((b + i, b + j, nonzero_value(&mut rng)));
            }
        }
    }
    CsrMatrix::from_triplets(n, n, &triplets).expect("block coordinates are valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SparseFormat;

    #[test]
    fn random_csr_hits_target_sparsity() {
        for &s in &[0.1, 0.5, 0.9] {
            let m = random_csr(64, 64, s, 42);
            assert!((m.sparsity() - s).abs() < 0.01, "sparsity {} vs {}", m.sparsity(), s);
        }
    }

    #[test]
    fn random_csr_is_reproducible() {
        let a = random_csr(32, 32, 0.7, 7);
        let b = random_csr(32, 32, 0.7, 7);
        assert_eq!(a, b);
        let c = random_csr(32, 32, 0.7, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn random_csr_extremes() {
        let full = random_csr(8, 8, 0.0, 1);
        assert_eq!(full.nnz(), 64);
        let empty = random_csr(8, 8, 1.0, 1);
        assert_eq!(empty.nnz(), 0);
    }

    #[test]
    fn random_dense_vector_has_no_zeros() {
        let v = random_dense_vector(256, 3);
        assert!(v.as_slice().iter().all(|x| *x != 0.0));
        assert_eq!(v.len(), 256);
    }

    #[test]
    fn random_sparse_vector_hits_sparsity() {
        let v = random_sparse_vector(200, 0.8, 5);
        assert_eq!(v.nnz(), 40);
        assert_eq!(v.len(), 200);
        // reproducible
        assert_eq!(v, random_sparse_vector(200, 0.8, 5));
    }

    #[test]
    fn banded_structure() {
        let m = banded_csr(16, 1, 9);
        // tridiagonal: 16 + 15 + 15 nnz
        assert_eq!(m.nnz(), 46);
        for (r, c, _) in m.triplets() {
            assert!(r.abs_diff(c) <= 1);
        }
    }

    #[test]
    fn power_law_rows_decay() {
        let m = power_law_csr(64, 4.0, 11);
        assert!(m.row_nnz(0) >= m.row_nnz(63));
        assert!(m.nnz() > 0);
    }

    #[test]
    fn block_diagonal_structure() {
        let m = block_diagonal_csr(12, 3, 13);
        assert_eq!(m.nnz(), 12 / 3 * 9);
        for (r, c, _) in m.triplets() {
            assert_eq!(r / 3, c / 3);
        }
    }
}
