//! Run-length encoded sparse format (§1 \[5]).
//!
//! Each non-zero is stored as a `(zero_run, value)` pair: the number of
//! zeros separating it from the previous non-zero in row-major order,
//! followed by its value. This is the encoding used by several DNN
//! accelerators (e.g. SCNN) for weight streams.

use crate::{CooMatrix, Result, SparseFormat};

/// A run-length encoded sparse matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct RleMatrix {
    rows: usize,
    cols: usize,
    /// Zero-run length preceding each value, in row-major scan order.
    runs: Vec<u32>,
    values: Vec<f32>,
}

impl RleMatrix {
    /// Build from `(row, col, value)` triplets.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: &[(usize, usize, f32)],
    ) -> Result<Self> {
        Ok(Self::from_coo(&CooMatrix::from_triplets(rows, cols, triplets)?))
    }

    /// Build from a COO matrix.
    pub fn from_coo(coo: &CooMatrix) -> Self {
        let cols = coo.cols();
        let mut runs = Vec::with_capacity(coo.nnz());
        let mut values = Vec::with_capacity(coo.nnz());
        let mut prev_flat: Option<usize> = None;
        for &(r, c, v) in coo.entries() {
            let flat = r * cols + c;
            let run = match prev_flat {
                None => flat,
                Some(p) => flat - p - 1,
            };
            runs.push(run as u32);
            values.push(v);
            prev_flat = Some(flat);
        }
        RleMatrix { rows: coo.rows(), cols, runs, values }
    }

    /// The zero-run lengths.
    pub fn runs(&self) -> &[u32] {
        &self.runs
    }

    /// The stored values.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Longest zero run in the stream (determines the run-length field width
    /// a hardware decoder needs).
    pub fn max_run(&self) -> u32 {
        self.runs.iter().copied().max().unwrap_or(0)
    }
}

impl SparseFormat for RleMatrix {
    fn rows(&self) -> usize {
        self.rows
    }
    fn cols(&self) -> usize {
        self.cols
    }
    fn nnz(&self) -> usize {
        self.values.len()
    }
    fn triplets(&self) -> Vec<(usize, usize, f32)> {
        let mut out = Vec::with_capacity(self.nnz());
        let mut flat = 0usize;
        for (run, v) in self.runs.iter().zip(&self.values) {
            flat += *run as usize;
            out.push((flat / self.cols, flat % self.cols, *v));
            flat += 1;
        }
        out
    }
    fn storage_bytes(&self) -> usize {
        self.runs.len() * 4 + self.values.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CsrMatrix;

    #[test]
    fn runs_encode_gaps() {
        // [[5,0,2],[0,0,3],[1,0,0]] -> flat positions 0,2,5,6
        let t = vec![(0, 0, 5.0), (0, 2, 2.0), (1, 2, 3.0), (2, 0, 1.0)];
        let m = RleMatrix::from_triplets(3, 3, &t).unwrap();
        assert_eq!(m.runs(), &[0, 1, 2, 0]);
        assert_eq!(m.values(), &[5.0, 2.0, 3.0, 1.0]);
        assert_eq!(m.max_run(), 2);
    }

    #[test]
    fn leading_zeros_counted_in_first_run() {
        let m = RleMatrix::from_triplets(2, 2, &[(1, 1, 9.0)]).unwrap();
        assert_eq!(m.runs(), &[3]);
    }

    #[test]
    fn round_trip_with_csr() {
        let t = vec![(0, 1, 1.0), (1, 0, 2.0), (1, 3, 3.0), (3, 2, 4.0)];
        let rle = RleMatrix::from_triplets(4, 4, &t).unwrap();
        let csr = CsrMatrix::from_triplets(4, 4, &t).unwrap();
        assert_eq!(rle.triplets(), csr.triplets());
        assert_eq!(rle.to_dense(), csr.to_dense());
    }

    #[test]
    fn empty_matrix() {
        let m = RleMatrix::from_triplets(4, 4, &[]).unwrap();
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.max_run(), 0);
        assert!(m.triplets().is_empty());
    }
}
