//! Compressed sparse vectors, the second operand of SpMSpV.
//!
//! A sparse vector stores sorted indices of its non-zeros plus their values
//! — the *Vector indexes* that the SpMSpV HHT variant-1 engine matches
//! against matrix column indices (§5.1).

use crate::{DenseVector, Result, SparseError};

/// A compressed sparse `f32` vector with sorted `u32` indices.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SparseVector {
    len: usize,
    indices: Vec<u32>,
    values: Vec<f32>,
}

impl SparseVector {
    /// An all-zero sparse vector of logical length `len`.
    pub fn zeros(len: usize) -> Self {
        SparseVector { len, indices: Vec::new(), values: Vec::new() }
    }

    /// Build from parallel `(index, value)` pairs. Indices must be unique
    /// and in range; they are sorted internally.
    pub fn from_pairs(len: usize, pairs: &[(usize, f32)]) -> Result<Self> {
        let mut sorted: Vec<(usize, f32)> = Vec::with_capacity(pairs.len());
        for &(i, v) in pairs {
            if i >= len {
                return Err(SparseError::IndexOutOfBounds { row: 0, col: i, rows: 1, cols: len });
            }
            sorted.push((i, v));
        }
        sorted.sort_unstable_by_key(|&(i, _)| i);
        for w in sorted.windows(2) {
            if w[0].0 == w[1].0 {
                return Err(SparseError::DuplicateEntry { row: 0, col: w[0].0 });
            }
        }
        Ok(SparseVector {
            len,
            indices: sorted.iter().map(|&(i, _)| i as u32).collect(),
            values: sorted.iter().map(|&(_, v)| v).collect(),
        })
    }

    /// Build from a dense vector, keeping entries that are not exactly zero.
    pub fn from_dense(d: &DenseVector) -> Self {
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for (i, &v) in d.as_slice().iter().enumerate() {
            if v != 0.0 {
                indices.push(i as u32);
                values.push(v);
            }
        }
        SparseVector { len: d.len(), indices, values }
    }

    /// Logical (uncompressed) length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the logical length is zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Sorted indices of the non-zeros.
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// Values parallel to [`indices`](SparseVector::indices).
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Fraction of zero entries.
    pub fn sparsity(&self) -> f64 {
        if self.len == 0 {
            return 0.0;
        }
        1.0 - self.nnz() as f64 / self.len as f64
    }

    /// Value at logical index `i` (0.0 when structurally zero).
    pub fn get(&self, i: usize) -> f32 {
        match self.indices.binary_search(&(i as u32)) {
            Ok(k) => self.values[k],
            Err(_) => 0.0,
        }
    }

    /// Expand to a dense vector.
    pub fn to_dense(&self) -> DenseVector {
        let mut d = DenseVector::zeros(self.len);
        for (i, v) in self.indices.iter().zip(&self.values) {
            d[*i as usize] = *v;
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_pairs_sorts_and_validates() {
        let v = SparseVector::from_pairs(8, &[(5, 2.0), (1, 1.0)]).unwrap();
        assert_eq!(v.indices(), &[1, 5]);
        assert_eq!(v.values(), &[1.0, 2.0]);
        assert!(SparseVector::from_pairs(4, &[(4, 1.0)]).is_err());
        assert!(SparseVector::from_pairs(4, &[(2, 1.0), (2, 3.0)]).is_err());
    }

    #[test]
    fn get_returns_zero_for_missing() {
        let v = SparseVector::from_pairs(8, &[(3, 7.0)]).unwrap();
        assert_eq!(v.get(3), 7.0);
        assert_eq!(v.get(4), 0.0);
    }

    #[test]
    fn dense_round_trip() {
        let d = DenseVector::from(vec![0.0, 1.0, 0.0, 0.0, 2.0]);
        let s = SparseVector::from_dense(&d);
        assert_eq!(s.nnz(), 2);
        assert_eq!(s.sparsity(), 0.6);
        assert_eq!(s.to_dense(), d);
    }

    #[test]
    fn zeros_vector() {
        let v = SparseVector::zeros(10);
        assert_eq!(v.len(), 10);
        assert_eq!(v.nnz(), 0);
        assert_eq!(v.sparsity(), 1.0);
        assert_eq!(v.get(5), 0.0);
    }
}
