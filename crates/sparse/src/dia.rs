//! DIA (diagonal) format.
//!
//! Stores one dense array per non-empty diagonal, indexed by diagonal
//! offset `d = col - row`. Ideal for the banded discretized-PDE matrices
//! of the SuiteSparse collection (§4): a tridiagonal matrix stores exactly
//! three arrays with no index metadata at all. Degenerates badly on
//! unstructured matrices (one array per touched diagonal).

use crate::{CooMatrix, Result, SparseFormat};
use std::collections::BTreeMap;

/// A diagonal-storage sparse matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DiaMatrix {
    rows: usize,
    cols: usize,
    /// Sorted diagonal offsets (`col - row`).
    offsets: Vec<i64>,
    /// One `rows`-long array per offset; slot `r` holds `M[r][r+offset]`
    /// (0.0 where the diagonal leaves the matrix or the entry is zero).
    diags: Vec<Vec<f32>>,
    nnz: usize,
}

impl DiaMatrix {
    /// Build from `(row, col, value)` triplets.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: &[(usize, usize, f32)],
    ) -> Result<Self> {
        Ok(Self::from_coo(&CooMatrix::from_triplets(rows, cols, triplets)?))
    }

    /// Build from a COO matrix.
    pub fn from_coo(coo: &CooMatrix) -> Self {
        let (rows, cols) = (coo.rows(), coo.cols());
        let mut by_offset: BTreeMap<i64, Vec<f32>> = BTreeMap::new();
        for &(r, c, v) in coo.entries() {
            let d = c as i64 - r as i64;
            by_offset.entry(d).or_insert_with(|| vec![0.0; rows])[r] = v;
        }
        let offsets: Vec<i64> = by_offset.keys().copied().collect();
        let diags: Vec<Vec<f32>> = by_offset.into_values().collect();
        DiaMatrix { rows, cols, offsets, diags, nnz: coo.nnz() }
    }

    /// Number of stored diagonals.
    pub fn num_diagonals(&self) -> usize {
        self.offsets.len()
    }

    /// Sorted diagonal offsets.
    pub fn offsets(&self) -> &[i64] {
        &self.offsets
    }

    /// The array for one stored diagonal (by position in [`offsets`]).
    ///
    /// [`offsets`]: DiaMatrix::offsets
    pub fn diagonal(&self, i: usize) -> &[f32] {
        &self.diags[i]
    }

    /// The matrix bandwidth: maximum `|col - row|` over stored entries.
    pub fn bandwidth(&self) -> usize {
        self.offsets.iter().map(|d| d.unsigned_abs() as usize).max().unwrap_or(0)
    }
}

impl SparseFormat for DiaMatrix {
    fn rows(&self) -> usize {
        self.rows
    }
    fn cols(&self) -> usize {
        self.cols
    }
    fn nnz(&self) -> usize {
        self.nnz
    }
    fn triplets(&self) -> Vec<(usize, usize, f32)> {
        let mut out = Vec::with_capacity(self.nnz);
        for (d, diag) in self.offsets.iter().zip(&self.diags) {
            for (r, v) in diag.iter().enumerate() {
                if *v != 0.0 {
                    let c = r as i64 + d;
                    debug_assert!(c >= 0 && (c as usize) < self.cols);
                    out.push((r, c as usize, *v));
                }
            }
        }
        out.sort_unstable_by_key(|&(r, c, _)| (r, c));
        out
    }
    fn storage_bytes(&self) -> usize {
        // offsets (8B each; i64) + one rows-long f32 array per diagonal.
        self.offsets.len() * 8 + self.diags.len() * self.rows * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, CsrMatrix};

    #[test]
    fn tridiagonal_stores_three_diagonals() {
        let m = generate::banded_csr(8, 1, 3);
        let d = DiaMatrix::from_triplets(8, 8, &m.triplets()).unwrap();
        assert_eq!(d.num_diagonals(), 3);
        assert_eq!(d.offsets(), &[-1, 0, 1]);
        assert_eq!(d.bandwidth(), 1);
        assert_eq!(d.triplets(), m.triplets());
    }

    #[test]
    fn banded_storage_beats_csr() {
        let m = generate::banded_csr(64, 2, 5);
        let dia = DiaMatrix::from_triplets(64, 64, &m.triplets()).unwrap();
        // 5 diagonals x 64 f32 + offsets vs CSR's (65 + 2*nnz) words.
        assert!(dia.storage_bytes() < m.storage_bytes());
    }

    #[test]
    fn round_trip_on_unstructured() {
        let m = generate::random_csr(16, 16, 0.8, 9);
        let dia = DiaMatrix::from_triplets(16, 16, &m.triplets()).unwrap();
        let back = CsrMatrix::from_triplets(16, 16, &dia.triplets()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn rectangular_diagonals() {
        let t = vec![(0usize, 3usize, 1.0f32), (1, 0, 2.0)];
        let d = DiaMatrix::from_triplets(2, 4, &t).unwrap();
        assert_eq!(d.offsets(), &[-1, 3]);
        assert_eq!(d.triplets(), {
            let mut s = t.clone();
            s.sort_unstable_by_key(|&(r, c, _)| (r, c));
            s
        });
    }

    #[test]
    fn empty_matrix() {
        let d = DiaMatrix::from_triplets(4, 4, &[]).unwrap();
        assert_eq!(d.num_diagonals(), 0);
        assert_eq!(d.bandwidth(), 0);
        assert!(d.triplets().is_empty());
    }
}
