//! Hierarchical bit-vector format in the style of SMASH (§1 \[21], §6).
//!
//! A hierarchy of bitmaps over the row-major entry stream: the lowest level
//! has one presence bit per matrix entry; each higher level has one bit per
//! `FANOUT`-bit group of the level below, set when *any* bit in the group is
//! set. Locating the value for a coordinate walks the hierarchy from the
//! top, skipping all-zero regions — §6 notes that this "complicated
//! indexing" means an HHT programmed for SMASH performs more work than the
//! CPU, which is the ablation `figures -- ablate-format` reproduces.

use crate::{CooMatrix, Result, SparseFormat};

/// Bits summarized by one bit of the next level up.
pub const FANOUT: usize = 32;

/// A SMASH-style hierarchical bitmap sparse matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct SmashMatrix {
    rows: usize,
    cols: usize,
    /// `levels[0]` is the finest bitmap (one bit per entry, packed in u32);
    /// each subsequent level summarizes `FANOUT` bits of the previous one.
    /// The last level always fits in a handful of words.
    levels: Vec<Vec<u32>>,
    values: Vec<f32>,
}

fn bit(bits: &[u32], pos: usize) -> bool {
    bits[pos / 32] & (1 << (pos % 32)) != 0
}

fn set_bit(bits: &mut [u32], pos: usize) {
    bits[pos / 32] |= 1 << (pos % 32);
}

impl SmashMatrix {
    /// Build from `(row, col, value)` triplets.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: &[(usize, usize, f32)],
    ) -> Result<Self> {
        Ok(Self::from_coo(&CooMatrix::from_triplets(rows, cols, triplets)?))
    }

    /// Build from a COO matrix, constructing the full hierarchy.
    pub fn from_coo(coo: &CooMatrix) -> Self {
        let (rows, cols) = (coo.rows(), coo.cols());
        let nbits = (rows * cols).max(1);
        let mut level0 = vec![0u32; nbits.div_ceil(32)];
        let mut values = Vec::with_capacity(coo.nnz());
        for &(r, c, v) in coo.entries() {
            set_bit(&mut level0, r * cols + c);
            values.push(v);
        }
        let mut levels = vec![level0];
        // Build summary levels until one fits in a single u32 word.
        loop {
            let below = levels.last().unwrap();
            let below_bits = below.len() * 32;
            if below_bits <= FANOUT {
                break;
            }
            let this_bits = below_bits.div_ceil(FANOUT);
            let mut level = vec![0u32; this_bits.div_ceil(32)];
            // One u32 word of the level below == one FANOUT-bit group.
            for (g, w) in below.iter().enumerate() {
                if *w != 0 {
                    set_bit(&mut level, g);
                }
            }
            levels.push(level);
        }
        SmashMatrix { rows, cols, levels, values }
    }

    /// Number of hierarchy levels (≥ 1).
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Borrow one level's packed bitmap (level 0 is the finest).
    pub fn level(&self, i: usize) -> &[u32] {
        &self.levels[i]
    }

    /// Packed non-zero values, row-major order.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Look up `(row, col)` by walking the hierarchy top-down.
    ///
    /// Returns `(value, probes)` where `probes` counts the bitmap words
    /// touched — the metric that makes SMASH indexing "more work" in §6.
    pub fn get_counting(&self, row: usize, col: usize) -> (Option<f32>, usize) {
        let pos = row * self.cols + col;
        let mut probes = 0usize;
        // Walk from the coarsest level down; bail early on a cleared summary
        // bit.
        for li in (1..self.levels.len()).rev() {
            // Position of the summary bit covering `pos` at level li:
            // each level-li bit covers FANOUT^li entry bits.
            let span = FANOUT.pow(li as u32);
            let p = pos / span;
            probes += 1;
            if !bit(&self.levels[li], p) {
                return (None, probes);
            }
        }
        probes += 1;
        if !bit(&self.levels[0], pos) {
            return (None, probes);
        }
        // Rank within level 0 gives the value slot.
        let mut rank = 0usize;
        let word = pos / 32;
        for w in &self.levels[0][..word] {
            rank += w.count_ones() as usize;
            probes += 1;
        }
        let b = pos % 32;
        if b > 0 {
            rank += (self.levels[0][word] & ((1u32 << b) - 1)).count_ones() as usize;
        }
        (Some(self.values[rank]), probes)
    }

    /// Look up `(row, col)` without probe accounting.
    pub fn get(&self, row: usize, col: usize) -> Option<f32> {
        self.get_counting(row, col).0
    }
}

impl SparseFormat for SmashMatrix {
    fn rows(&self) -> usize {
        self.rows
    }
    fn cols(&self) -> usize {
        self.cols
    }
    fn nnz(&self) -> usize {
        self.values.len()
    }
    fn triplets(&self) -> Vec<(usize, usize, f32)> {
        let mut out = Vec::with_capacity(self.nnz());
        let mut k = 0usize;
        for pos in 0..self.rows * self.cols {
            if bit(&self.levels[0], pos) {
                out.push((pos / self.cols, pos % self.cols, self.values[k]));
                k += 1;
            }
        }
        out
    }
    fn storage_bytes(&self) -> usize {
        self.levels.iter().map(|l| l.len() * 4).sum::<usize>() + self.values.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CsrMatrix;

    #[test]
    fn small_matrix_has_one_level() {
        let m = SmashMatrix::from_triplets(3, 3, &[(0, 0, 5.0)]).unwrap();
        assert_eq!(m.num_levels(), 1);
        assert_eq!(m.get(0, 0), Some(5.0));
        assert_eq!(m.get(1, 1), None);
    }

    #[test]
    fn large_matrix_builds_hierarchy() {
        // 64x64 = 4096 bits -> level1 has 128 bits -> level2 has 4 bits.
        let m = SmashMatrix::from_triplets(64, 64, &[(0, 0, 1.0), (63, 63, 2.0)]).unwrap();
        assert_eq!(m.num_levels(), 3);
        assert_eq!(m.get(0, 0), Some(1.0));
        assert_eq!(m.get(63, 63), Some(2.0));
        assert_eq!(m.get(30, 30), None);
    }

    #[test]
    fn summary_bits_enable_early_exit() {
        let m = SmashMatrix::from_triplets(64, 64, &[(0, 0, 1.0)]).unwrap();
        // A probe far away from the only nnz should stop at a summary level
        // with fewer word touches than a full rank scan.
        let (v, probes_far) = m.get_counting(63, 63);
        assert_eq!(v, None);
        let (v, probes_hit) = m.get_counting(0, 0);
        assert_eq!(v, Some(1.0));
        assert!(probes_far <= probes_hit + m.num_levels());
        // The far miss must terminate above level 0.
        assert!(probes_far < m.num_levels() + 1 + m.level(0).len());
    }

    #[test]
    fn round_trip_with_csr() {
        let t = vec![(0, 1, 1.0), (5, 0, 2.0), (17, 33, 3.0), (63, 63, 4.0)];
        let s = SmashMatrix::from_triplets(64, 64, &t).unwrap();
        let c = CsrMatrix::from_triplets(64, 64, &t).unwrap();
        assert_eq!(s.triplets(), c.triplets());
    }

    #[test]
    fn storage_includes_all_levels() {
        let m = SmashMatrix::from_triplets(64, 64, &[(0, 0, 1.0)]).unwrap();
        let bitmap_words: usize = (0..m.num_levels()).map(|i| m.level(i).len()).sum();
        assert_eq!(m.storage_bytes(), bitmap_words * 4 + 4);
    }

    #[test]
    fn empty_matrix_probes_do_not_panic() {
        let m = SmashMatrix::from_triplets(8, 8, &[]).unwrap();
        assert_eq!(m.get(3, 3), None);
        assert!(m.triplets().is_empty());
    }
}
