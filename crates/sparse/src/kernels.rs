//! Golden (functional) kernels.
//!
//! These implement the algorithms of the paper in plain Rust with no timing
//! model. The cycle-level simulator's numeric results are cross-checked
//! against these in every integration test, so any bug in the simulated
//! RISC-V kernels or the HHT engines shows up as a numeric mismatch.

use crate::{CsrMatrix, DenseVector, Result, SparseError, SparseFormat, SparseVector};

/// CSR SpMV — the paper's Algorithm 1: `y = M * v` with dense `v`.
pub fn spmv(m: &CsrMatrix, v: &DenseVector) -> Result<DenseVector> {
    if v.len() != m.cols() {
        return Err(SparseError::DimensionMismatch {
            what: format!("matrix has {} cols, vector has {}", m.cols(), v.len()),
        });
    }
    let mut y = DenseVector::zeros(m.rows());
    for i in 0..m.rows() {
        let (cols, vals) = m.row(i);
        let mut s = 0.0f32;
        for (c, a) in cols.iter().zip(vals) {
            s += a * v[*c as usize];
        }
        y[i] = s;
    }
    Ok(y)
}

/// SpMSpV: `y = M * x` with sparse `x`, dense result.
///
/// Row-wise merge-intersection of each CSR row's column indices with the
/// vector's non-zero indices — the index-matching work that variant-1 of the
/// HHT performs in hardware (§5.1).
pub fn spmspv(m: &CsrMatrix, x: &SparseVector) -> Result<DenseVector> {
    if x.len() != m.cols() {
        return Err(SparseError::DimensionMismatch {
            what: format!("matrix has {} cols, sparse vector has {}", m.cols(), x.len()),
        });
    }
    let xi = x.indices();
    let xv = x.values();
    let mut y = DenseVector::zeros(m.rows());
    for i in 0..m.rows() {
        let (cols, vals) = m.row(i);
        let mut s = 0.0f32;
        let (mut a, mut b) = (0usize, 0usize);
        while a < cols.len() && b < xi.len() {
            match cols[a].cmp(&xi[b]) {
                std::cmp::Ordering::Less => a += 1,
                std::cmp::Ordering::Greater => b += 1,
                std::cmp::Ordering::Equal => {
                    s += vals[a] * xv[b];
                    a += 1;
                    b += 1;
                }
            }
        }
        y[i] = s;
    }
    Ok(y)
}

/// Aligned pair stream plus per-row boundaries (see
/// [`spmspv_aligned_pairs`]).
pub type AlignedPairs = (Vec<(f32, f32)>, Vec<usize>);

/// The aligned `(matrix value, vector value)` pair stream that the HHT
/// SpMSpV **variant-1** engine supplies to the CPU (§5.1): for each row, the
/// pairs whose indices match, in order. The row boundaries are returned so
/// tests can reconstruct per-row accumulation.
pub fn spmspv_aligned_pairs(m: &CsrMatrix, x: &SparseVector) -> Result<AlignedPairs> {
    if x.len() != m.cols() {
        return Err(SparseError::DimensionMismatch { what: "matrix/vector width mismatch".into() });
    }
    let xi = x.indices();
    let xv = x.values();
    let mut pairs = Vec::new();
    let mut row_bounds = Vec::with_capacity(m.rows() + 1);
    row_bounds.push(0);
    for i in 0..m.rows() {
        let (cols, vals) = m.row(i);
        let (mut a, mut b) = (0usize, 0usize);
        while a < cols.len() && b < xi.len() {
            match cols[a].cmp(&xi[b]) {
                std::cmp::Ordering::Less => a += 1,
                std::cmp::Ordering::Greater => b += 1,
                std::cmp::Ordering::Equal => {
                    pairs.push((vals[a], xv[b]));
                    a += 1;
                    b += 1;
                }
            }
        }
        row_bounds.push(pairs.len());
    }
    Ok((pairs, row_bounds))
}

/// The vector-value stream that the HHT SpMSpV **variant-2** engine supplies
/// (§5.1): for every non-zero of the matrix (in CSR order), the vector value
/// at that column if present, else `0.0`. At high sparsities most entries
/// are zero — the "wasted computations" the paper discusses.
pub fn spmspv_value_or_zero(m: &CsrMatrix, x: &SparseVector) -> Result<Vec<f32>> {
    if x.len() != m.cols() {
        return Err(SparseError::DimensionMismatch { what: "matrix/vector width mismatch".into() });
    }
    Ok(m.col_indices().iter().map(|&c| x.get(c as usize)).collect())
}

/// SpMM: `Y = A * B` with CSR `A` and CSR `B`, producing CSR. Included for
/// completeness of the kernel library (the paper's motivating algorithms in
/// §1 include SpGEMM-based graph kernels).
pub fn spmm(a: &CsrMatrix, b: &CsrMatrix) -> Result<CsrMatrix> {
    if a.cols() != b.rows() {
        return Err(SparseError::DimensionMismatch {
            what: format!("A is {}x{}, B is {}x{}", a.rows(), a.cols(), b.rows(), b.cols()),
        });
    }
    let mut triplets = Vec::new();
    let mut acc = vec![0.0f32; b.cols()];
    let mut touched: Vec<usize> = Vec::new();
    for i in 0..a.rows() {
        let (acols, avals) = a.row(i);
        for (k, av) in acols.iter().zip(avals) {
            let (bcols, bvals) = b.row(*k as usize);
            for (j, bv) in bcols.iter().zip(bvals) {
                let j = *j as usize;
                if acc[j] == 0.0 {
                    touched.push(j);
                }
                acc[j] += av * bv;
            }
        }
        touched.sort_unstable();
        for &j in &touched {
            if acc[j] != 0.0 {
                triplets.push((i, j, acc[j]));
            }
            acc[j] = 0.0;
        }
        touched.clear();
    }
    CsrMatrix::from_triplets(a.rows(), b.cols(), &triplets)
}

/// Metadata-access accounting for the motivation study (§2): the number of
/// indirect accesses (`v[cols[.]]`), metadata loads (`rows`/`cols` words)
/// and useful value loads performed by Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccessCounts {
    /// Loads of `M_rows[.]` words.
    pub row_ptr_loads: usize,
    /// Loads of `M_cols[.]` words (metadata).
    pub col_idx_loads: usize,
    /// Indirect loads `v[cols[.]]`.
    pub indirect_loads: usize,
    /// Loads of `M_vals[.]` (useful data).
    pub value_loads: usize,
}

impl AccessCounts {
    /// Fraction of loads that are metadata or indirect — the "metadata
    /// overhead" of §2.
    pub fn metadata_fraction(&self) -> f64 {
        let total =
            self.row_ptr_loads + self.col_idx_loads + self.indirect_loads + self.value_loads;
        if total == 0 {
            return 0.0;
        }
        (self.row_ptr_loads + self.col_idx_loads + self.indirect_loads) as f64 / total as f64
    }
}

/// Count the memory accesses Algorithm 1 performs for `m`.
pub fn spmv_access_counts(m: &CsrMatrix) -> AccessCounts {
    AccessCounts {
        row_ptr_loads: m.rows() + 1,
        col_idx_loads: m.nnz(),
        indirect_loads: m.nnz(),
        value_loads: m.nnz(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1() -> CsrMatrix {
        CsrMatrix::from_triplets(3, 3, &[(0, 0, 5.0), (0, 2, 2.0), (1, 2, 3.0), (2, 0, 1.0)])
            .unwrap()
    }

    #[test]
    fn spmv_matches_dense_matvec() {
        let m = fig1();
        let v = DenseVector::from(vec![1.0, 2.0, 3.0]);
        let sparse_y = spmv(&m, &v).unwrap();
        let dense_y = m.to_dense().matvec(&v).unwrap();
        assert_eq!(sparse_y, dense_y);
        assert_eq!(sparse_y.as_slice(), &[11.0, 9.0, 1.0]);
    }

    #[test]
    fn spmv_rejects_bad_width() {
        assert!(spmv(&fig1(), &DenseVector::zeros(4)).is_err());
    }

    #[test]
    fn spmspv_matches_spmv_on_densified_vector() {
        let m = fig1();
        let x = SparseVector::from_pairs(3, &[(0, 2.0), (2, -1.0)]).unwrap();
        let y1 = spmspv(&m, &x).unwrap();
        let y2 = spmv(&m, &x.to_dense()).unwrap();
        assert_eq!(y1, y2);
        assert_eq!(y1.as_slice(), &[8.0, -3.0, 2.0]);
    }

    #[test]
    fn aligned_pairs_reconstruct_spmspv() {
        let m = fig1();
        let x = SparseVector::from_pairs(3, &[(0, 2.0), (2, -1.0)]).unwrap();
        let (pairs, bounds) = spmspv_aligned_pairs(&m, &x).unwrap();
        let y = spmspv(&m, &x).unwrap();
        assert_eq!(bounds.len(), m.rows() + 1);
        for i in 0..m.rows() {
            let s: f32 = pairs[bounds[i]..bounds[i + 1]].iter().map(|(a, b)| a * b).sum();
            assert_eq!(s, y[i]);
        }
    }

    #[test]
    fn value_or_zero_reconstructs_spmspv() {
        let m = fig1();
        let x = SparseVector::from_pairs(3, &[(2, -1.0)]).unwrap();
        let stream = spmspv_value_or_zero(&m, &x).unwrap();
        assert_eq!(stream.len(), m.nnz());
        // Multiply against vals in CSR order and accumulate per row.
        let y = spmspv(&m, &x).unwrap();
        let mut k = 0;
        for i in 0..m.rows() {
            let (_, vals) = m.row(i);
            let s: f32 = vals.iter().zip(&stream[k..k + vals.len()]).map(|(a, b)| a * b).sum();
            assert_eq!(s, y[i]);
            k += vals.len();
        }
    }

    #[test]
    fn value_or_zero_is_mostly_zero_at_high_sparsity() {
        let m = fig1();
        let x = SparseVector::zeros(3);
        let stream = spmspv_value_or_zero(&m, &x).unwrap();
        assert!(stream.iter().all(|v| *v == 0.0));
    }

    #[test]
    fn spmm_matches_dense_product() {
        let a = fig1();
        let b = CsrMatrix::from_triplets(3, 2, &[(0, 0, 1.0), (2, 1, 2.0)]).unwrap();
        let c = spmm(&a, &b).unwrap();
        let cd = c.to_dense();
        // dense check
        let ad = a.to_dense();
        let bd = b.to_dense();
        for i in 0..3 {
            for j in 0..2 {
                let mut s = 0.0;
                for k in 0..3 {
                    s += ad[(i, k)] * bd[(k, j)];
                }
                assert_eq!(cd[(i, j)], s);
            }
        }
    }

    #[test]
    fn spmm_rejects_bad_shapes() {
        let a = fig1();
        let b = CsrMatrix::from_triplets(2, 2, &[]).unwrap();
        assert!(spmm(&a, &b).is_err());
    }

    #[test]
    fn access_counts_match_algorithm1() {
        let m = fig1();
        let c = spmv_access_counts(&m);
        assert_eq!(c.row_ptr_loads, 4);
        assert_eq!(c.col_idx_loads, 4);
        assert_eq!(c.indirect_loads, 4);
        assert_eq!(c.value_loads, 4);
        // 3 of every 4 loads are metadata/indirect here.
        assert!((c.metadata_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn metadata_fraction_of_empty_is_zero() {
        assert_eq!(AccessCounts::default().metadata_fraction(), 0.0);
    }
}
