//! Cycle-level RV32IMF+V CPU core model.
//!
//! This is the "Spike with our extensions" substrate of §4: "We
//! incorporated several extensions to the baseline spike simulator
//! including multi-cycle instruction latency, RAM memory model and
//! processor wait cycles. Our extensions provide for cycle-accurate
//! simulation environment."
//!
//! The model matches Table 1:
//!
//! - in-order 3-stage pipeline: one instruction in flight; simple ops
//!   retire in 1 cycle; "loads that do not complete in a single cycle
//!   stall the pipeline";
//! - the vector unit is **not pipelined** — a vector instruction occupies
//!   the unit until done; vector arithmetic takes 4 cycles;
//! - VL = 8 elements, SEW = 32-bit;
//! - memory beats go through the shared SRAM port ([`hht_mem::Sram`]), so
//!   CPU and HHT contend exactly as in the modeled MCU;
//! - loads/stores landing in the HHT windows are routed to the
//!   [`hht_mem::MmioDevice`], and a `Stall` answer freezes the pipe — the
//!   CPU-waiting-for-HHT cycles of Figs. 6/7.

pub mod config;
pub mod core;
pub mod profile;

pub use crate::core::{Core, CoreStats, RunError, TraceEntry};
pub use config::CoreConfig;
