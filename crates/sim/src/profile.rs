//! Instruction-mix profiling over execution traces.
//!
//! The §2 motivation argument is about *where a sparse kernel's
//! instructions go* — metadata loads, address arithmetic, gathers — so the
//! simulator provides a categorized histogram of any traced run. The
//! `motivation` figure uses the aggregate counters; this module gives the
//! per-category breakdown for kernel debugging and for readers who want to
//! see the overhead instruction by instruction.

use crate::core::TraceEntry;
use hht_isa::Instr;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Coarse instruction categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Category {
    /// Integer ALU and immediate ops (address arithmetic lives here).
    IntAlu,
    /// Multiplies and divides.
    MulDiv,
    /// Scalar loads.
    ScalarLoad,
    /// Scalar stores.
    ScalarStore,
    /// Branches and jumps.
    ControlFlow,
    /// Scalar floating point.
    Float,
    /// Vector arithmetic (incl. reductions and moves).
    VectorArith,
    /// Vector unit-stride memory.
    VectorMem,
    /// Vector indexed (gather) memory — the §2 indirect accesses.
    VectorGather,
    /// CSR access, ecall/ebreak, vsetvli.
    System,
}

impl Category {
    /// All categories in display order.
    pub const ALL: [Category; 10] = [
        Category::IntAlu,
        Category::MulDiv,
        Category::ScalarLoad,
        Category::ScalarStore,
        Category::ControlFlow,
        Category::Float,
        Category::VectorArith,
        Category::VectorMem,
        Category::VectorGather,
        Category::System,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Category::IntAlu => "int-alu",
            Category::MulDiv => "mul/div",
            Category::ScalarLoad => "load",
            Category::ScalarStore => "store",
            Category::ControlFlow => "control",
            Category::Float => "float",
            Category::VectorArith => "vec-arith",
            Category::VectorMem => "vec-mem",
            Category::VectorGather => "vec-gather",
            Category::System => "system",
        }
    }
}

/// Categorize one instruction.
pub fn categorize(i: &Instr) -> Category {
    use Instr::*;
    match i {
        Lui { .. } | Auipc { .. } | OpImm { .. } | Op { .. } => Category::IntAlu,
        Mul { .. } | MulDiv { .. } => Category::MulDiv,
        Lw { .. } | LoadNarrow { .. } | Flw { .. } => Category::ScalarLoad,
        Sw { .. } | StoreNarrow { .. } | Fsw { .. } => Category::ScalarStore,
        Jal { .. } | Jalr { .. } | Branch { .. } => Category::ControlFlow,
        FaddS { .. }
        | FsubS { .. }
        | FmulS { .. }
        | FmaddS { .. }
        | FmvWX { .. }
        | FmvXW { .. } => Category::Float,
        VfmaccVV { .. }
        | VfmulVV { .. }
        | VfaddVV { .. }
        | VfredosumVS { .. }
        | VsllVI { .. }
        | VmvVI { .. }
        | VmvVX { .. }
        | VfmvFS { .. } => Category::VectorArith,
        Vle32 { .. } | Vse32 { .. } => Category::VectorMem,
        Vluxei32 { .. } => Category::VectorGather,
        Vsetvli { .. } | Csrrs { .. } | Ecall | Ebreak => Category::System,
    }
}

/// Instruction-mix histogram.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct InstructionMix {
    counts: std::collections::BTreeMap<&'static str, u64>,
    total: u64,
}

impl InstructionMix {
    /// Build from a recorded trace.
    pub fn from_trace(trace: &[TraceEntry]) -> Self {
        let mut mix = InstructionMix::default();
        for e in trace {
            *mix.counts.entry(categorize(&e.instr).name()).or_insert(0) += 1;
            mix.total += 1;
        }
        mix
    }

    /// Total instructions counted.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count in one category.
    pub fn count(&self, c: Category) -> u64 {
        self.counts.get(c.name()).copied().unwrap_or(0)
    }

    /// Fraction of instructions in one category.
    pub fn fraction(&self, c: Category) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.count(c) as f64 / self.total as f64
    }

    /// The §2 "metadata overhead" share: scalar metadata loads plus gathers
    /// plus the address arithmetic feeding them cannot be separated exactly
    /// post-hoc, so this reports the conservative lower bound — explicit
    /// gather instructions plus scalar loads.
    pub fn indirect_access_fraction(&self) -> f64 {
        self.fraction(Category::VectorGather) + self.fraction(Category::ScalarLoad)
    }
}

impl fmt::Display for InstructionMix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:>12} {:>10} {:>7}", "category", "count", "share")?;
        for c in Category::ALL {
            let n = self.count(c);
            if n > 0 {
                writeln!(f, "{:>12} {:>10} {:>6.1}%", c.name(), n, self.fraction(c) * 100.0)?;
            }
        }
        write!(f, "{:>12} {:>10}", "total", self.total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Core, CoreConfig};
    use hht_isa::asm::assemble;
    use hht_mem::mmio::NullDevice;
    use hht_mem::Sram;

    fn mix_of(src: &str) -> InstructionMix {
        let mut sram = Sram::new(4096, 1);
        sram.load_words(0x200, &[0, 4, 8, 12, 16, 20, 24, 28]);
        let mut core = Core::new(CoreConfig::paper_default(), assemble(src).unwrap());
        core.enable_trace();
        let mut dev = NullDevice;
        let mut now = 0;
        while !core.halted() {
            core.step(now, &mut sram, &mut dev);
            now += 1;
            assert!(now < 100_000);
        }
        InstructionMix::from_trace(&core.trace())
    }

    #[test]
    fn categorizes_a_mixed_program() {
        let m = mix_of(
            "li a0, 8\nvsetvli t0, a0, e32, m1\nli a1, 0x200\nvle32.v v1, (a1)\n\
             vluxei32.v v2, (a1), v1\nvfmacc.vv v0, v1, v2\nlw t1, 0(a1)\n\
             sw t1, 4(a1)\nmul t2, t1, t1\nbeq t2, t2, next\nnext:\nebreak",
        );
        assert_eq!(m.count(Category::VectorGather), 1);
        assert_eq!(m.count(Category::VectorMem), 1);
        assert_eq!(m.count(Category::VectorArith), 1);
        assert_eq!(m.count(Category::ScalarLoad), 1);
        assert_eq!(m.count(Category::ScalarStore), 1);
        assert_eq!(m.count(Category::MulDiv), 1);
        assert_eq!(m.count(Category::ControlFlow), 1);
        assert_eq!(m.count(Category::System), 2); // vsetvli + ebreak
        assert_eq!(m.count(Category::IntAlu), 2); // the two li expansions
        assert_eq!(m.total(), 11);
    }

    #[test]
    fn fractions_sum_to_one() {
        let m = mix_of("li a0, 1\nadd a1, a0, a0\nebreak");
        let sum: f64 = Category::ALL.iter().map(|c| m.fraction(*c)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn display_renders_nonzero_rows() {
        let m = mix_of("li a0, 1\nebreak");
        let text = m.to_string();
        assert!(text.contains("int-alu"));
        assert!(text.contains("system"));
        assert!(!text.contains("vec-gather"));
    }

    #[test]
    fn empty_trace() {
        let m = InstructionMix::from_trace(&[]);
        assert_eq!(m.total(), 0);
        assert_eq!(m.indirect_access_fraction(), 0.0);
    }
}
