//! The in-order core: functional execution + Table-1 timing.

use crate::config::CoreConfig;
use hht_isa::instr::{MemWidth, MulDivOp};
use hht_isa::{AluOp, BranchOp, FReg, Instr, Program, Reg, VReg};
use hht_mem::map;
use hht_mem::mmio::{MmioDevice, MmioReadResult};
use hht_mem::sram::Requester;
use hht_mem::L1dCache;
use hht_mem::MemIssue;
use hht_mem::MemoryPort;
use hht_obs::{Event, EventBus, EventKind, RingBuffer, StallBreakdown, StallCause, Track};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Default bounded capacity of the instruction trace ring (entries kept).
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 16;

/// Byte offset of the counts (chunk header) window inside the HHT buffer
/// region — mirrors `hht_accel::hht::window::COUNTS`, which this crate
/// cannot name without a dependency cycle. Used only to attribute an HHT
/// wait cycle to header reads vs. element reads.
const HHT_COUNTS_WINDOW: u32 = 0x800;

/// Fatal guest-program conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunError {
    /// PC left the program image.
    InvalidPc(u32),
    /// A data access fell outside SRAM and every device window, or was
    /// misaligned.
    MemFault(u32),
    /// The system watchdog expired: no `ebreak` after this many cycles
    /// (kernel or HHT deadlock). Recoverable so one deadlocked experiment
    /// cell fails alone instead of aborting a whole parallel sweep.
    Watchdog(u64),
    /// The HHT wait-timeout/retry protocol gave up: a stream-window load
    /// at `addr` kept timing out after the configured bounded retries.
    /// Recoverable — the system-level policy re-runs the affected kernel
    /// on the baseline software path.
    HhtFailed {
        /// The stream-window address the core was polling.
        addr: u32,
        /// Cycle at which the protocol declared the HHT failed.
        cycle: u64,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::InvalidPc(pc) => write!(f, "invalid PC {pc:#010x}"),
            RunError::MemFault(a) => write!(f, "data access fault at {a:#010x}"),
            RunError::Watchdog(c) => {
                write!(f, "watchdog: no ebreak after {c} cycles (kernel or HHT deadlock?)")
            }
            RunError::HhtFailed { addr, cycle } => {
                write!(f, "HHT failed: window read at {addr:#010x} timed out (cycle {cycle})")
            }
        }
    }
}

impl std::error::Error for RunError {}

/// Performance counters (§4: "We collected total execution cycles, the
/// number of cycles the CPU is waiting for HHT to fill buffers...").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreStats {
    /// Instructions retired.
    pub instructions: u64,
    /// Scalar + vector load instructions.
    pub loads: u64,
    /// Scalar + vector store instructions.
    pub stores: u64,
    /// Vector-unit instructions.
    pub vector_instrs: u64,
    /// Cycles lost to SRAM-port contention (HHT held the port).
    pub mem_port_stall_cycles: u64,
    /// Cycles stalled on a not-ready HHT stream window — the paper's
    /// "CPU waiting for HHT" metric (Figs. 6/7).
    pub hht_wait_cycles: u64,
    /// Memory beats performed (word accesses issued by this core).
    pub mem_beats: u64,
    /// L1D hits (0 when no cache is configured).
    pub l1d_hits: u64,
    /// L1D misses (0 when no cache is configured).
    pub l1d_misses: u64,
    /// HHT window-wait timeouts declared by the fault-recovery protocol.
    pub hht_timeouts: u64,
    /// Bounded retries taken after an HHT window-wait timeout.
    pub hht_retries: u64,
    /// Per-cause stall attribution. Always on; the coarse counters above
    /// remain the source of truth and the breakdown's buckets sum exactly
    /// to them (`arbitration_loss == mem_port_stall_cycles`,
    /// `hht_window_empty + hht_header_wait == hht_wait_cycles`).
    pub stalls: StallBreakdown,
}

#[derive(Debug, Clone, Copy)]
enum BeatAccess {
    RamRead,
    RamWrite(u32),
    DevRead,
    DevWrite(u32),
}

#[derive(Debug, Clone, Copy)]
struct Beat {
    addr: u32,
    access: BeatAccess,
    /// Access width (devices and vector beats are always Word).
    width: MemWidth,
    /// Sign-extend narrow loads.
    signed: bool,
}

#[derive(Debug, Clone, Copy)]
enum Dest {
    X(Reg),
    F(FReg),
    V(VReg),
    None,
}

/// One retired-instruction record of the optional execution trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEntry {
    /// Cycle at which the instruction issued.
    pub cycle: u64,
    /// Its PC.
    pub pc: u32,
    /// The decoded instruction.
    pub instr: Instr,
}

#[derive(Debug)]
struct MemOp {
    beats: Vec<Beat>,
    next: usize,
    collected: Vec<u32>,
    dest: Dest,
    /// Extra cycles added after every beat (gather address generation).
    extra_per_beat: u64,
}

/// The simulated core. Stepped once per cycle by the system harness; the
/// core keeps an internal `busy_until` so multi-cycle instructions occupy
/// the pipe, exactly one instruction in flight (in-order, no overlap —
/// Table 1's simple 3-stage machine).
pub struct Core {
    cfg: CoreConfig,
    program: Program,
    pc: u32,
    x: [u32; 32],
    f: [u32; 32],
    v: Vec<Vec<u32>>,
    vl: usize,
    busy_until: u64,
    mem_op: Option<MemOp>,
    halted: bool,
    error: Option<RunError>,
    stats: CoreStats,
    trace: Option<RingBuffer<TraceEntry>>,
    obs: Option<Box<EventBus>>,
    /// Stall interval currently open on the CPU-pipe event track (only ever
    /// `Some` while an event bus is installed).
    open_stall: Option<StallCause>,
    l1d: Option<L1dCache>,
    /// Consecutive stalled cycles on the current HHT window load (the
    /// timeout protocol's detection window; reset by a successful beat or
    /// a retry).
    hht_stall_run: u64,
    /// Retries taken since the last successful HHT window beat.
    hht_retries_used: u32,
}

impl fmt::Debug for Core {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Core")
            .field("pc", &self.pc)
            .field("vl", &self.vl)
            .field("halted", &self.halted)
            .field("error", &self.error)
            .field("stats", &self.stats)
            .finish()
    }
}

impl Core {
    /// Create a core that will execute `program` from its base address.
    pub fn new(cfg: CoreConfig, program: Program) -> Self {
        let pc = program.base();
        Core {
            cfg,
            program,
            pc,
            x: [0; 32],
            f: [0; 32],
            v: vec![vec![0; cfg.vlen]; 32],
            vl: cfg.vlen,
            busy_until: 0,
            mem_op: None,
            halted: false,
            error: None,
            stats: CoreStats::default(),
            trace: None,
            obs: None,
            open_stall: None,
            l1d: cfg.l1d.map(|g| L1dCache::new(g.size_bytes, g.assoc, g.line_bytes)),
            hht_stall_run: 0,
            hht_retries_used: 0,
        }
    }

    /// Record every issued instruction (cycle, pc, decoded form) into a
    /// bounded ring keeping the most recent [`DEFAULT_TRACE_CAPACITY`]
    /// entries; off by default.
    pub fn enable_trace(&mut self) {
        self.enable_trace_with_capacity(DEFAULT_TRACE_CAPACITY);
    }

    /// Like [`Core::enable_trace`] with an explicit retention bound.
    pub fn enable_trace_with_capacity(&mut self, capacity: usize) {
        self.trace = Some(RingBuffer::new(capacity));
    }

    /// The retained trace window, oldest first (empty when tracing is off).
    pub fn trace(&self) -> Vec<TraceEntry> {
        self.trace.as_ref().map(|t| t.iter().copied().collect()).unwrap_or_default()
    }

    /// Trace entries evicted by the ring bound.
    pub fn trace_dropped(&self) -> u64 {
        self.trace.as_ref().map_or(0, RingBuffer::dropped)
    }

    /// Render the retained trace window as disassembly, one line per
    /// instruction (prefixed with an elision note when entries were
    /// dropped).
    pub fn trace_to_string(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        if self.trace_dropped() > 0 {
            let _ = writeln!(out, "... ({} earlier entries dropped)", self.trace_dropped());
        }
        for e in self.trace() {
            let _ = writeln!(out, "{:>10}  {:#010x}  {}", e.cycle, e.pc, e.instr);
        }
        out
    }

    /// Install a structured-event sink. With no bus installed every event
    /// site costs one `Option` branch and nothing else.
    pub fn set_event_bus(&mut self, bus: EventBus) {
        self.obs = Some(Box::new(bus));
    }

    /// Move the collected events out of the core's bus (empty when no bus
    /// is installed).
    pub fn take_events(&mut self) -> Vec<Event> {
        match self.obs.as_mut() {
            Some(bus) => bus.take_events(),
            None => Vec::new(),
        }
    }

    /// Events evicted from the core's bus by its ring bound.
    pub fn events_dropped(&self) -> u64 {
        self.obs.as_ref().map_or(0, |b| b.dropped())
    }

    /// The core's configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// True once `ebreak` retired or a fault occurred.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// The fault that stopped the core, if any.
    pub fn error(&self) -> Option<RunError> {
        self.error
    }

    /// The earliest cycle `>= now` at which [`Core::step`] can do anything,
    /// or `None` once halted. While `now < busy_until` the core is provably
    /// inert (`step` returns immediately), so the scheduler may fast-forward
    /// to the returned cycle. Stall-retry states (HHT window empty, port
    /// arbitration loss) keep `busy_until <= now` and thus report `now`:
    /// their per-cycle counter updates are never skipped.
    #[inline]
    pub fn next_event(&self, now: u64) -> Option<u64> {
        if self.halted {
            None
        } else {
            Some(self.busy_until.max(now))
        }
    }

    /// When the core is runnable *now* but its next action is a stream-window
    /// load from the HHT buffer region, return that address. The scheduler
    /// combines this with the HHT's wake hint: if the window is empty and the
    /// engine cannot push before cycle `t`, every cycle in between is a
    /// provably failing retry and can be replayed in bulk by
    /// [`Core::skip_hht_wait`].
    #[inline]
    pub fn pending_hht_read(&self, now: u64) -> Option<u32> {
        if self.halted || self.busy_until > now {
            return None;
        }
        let op = self.mem_op.as_ref()?;
        let beat = op.beats.get(op.next)?;
        match beat.access {
            BeatAccess::DevRead if map::is_hht_buffer(beat.addr) => Some(beat.addr),
            _ => None,
        }
    }

    /// Account for `span` skipped cycles starting at `now` during which the
    /// core retried a stream-window load that provably kept stalling: each
    /// cycle charges one `hht_wait_cycles` plus the per-cause bucket, exactly
    /// as the per-cycle retry path does. The stall interval opens at `now`
    /// (a no-op when the first failing attempt already opened it).
    pub fn skip_hht_wait(&mut self, now: u64, span: u64, addr: u32) {
        let cause = if (addr - map::HHT_BUF_BASE) & 0xC00 == HHT_COUNTS_WINDOW {
            StallCause::HhtHeaderWait
        } else {
            StallCause::HhtWindowEmpty
        };
        self.stats.hht_wait_cycles += span;
        self.stats.stalls.record_many(cause, span);
        self.hht_stall_run += span;
        Self::obs_stall(&mut self.obs, &mut self.open_stall, now, cause);
    }

    /// Inclusive bound on how far window-wait retries may be bulk-replayed
    /// before the timeout protocol must run a real step: at the returned
    /// cycle the stall run reaches `hht_timeout - 1`, so the *next* stepped
    /// stall trips the timeout exactly as it would in the per-cycle loop.
    /// `None` when the protocol is disabled (`hht_timeout == 0`).
    #[inline]
    pub fn hht_timeout_bound(&self, now: u64) -> Option<u64> {
        if self.cfg.hht_timeout == 0 {
            return None;
        }
        let left = (self.cfg.hht_timeout - 1).saturating_sub(self.hht_stall_run);
        Some(now + left)
    }

    /// When the core is runnable *now* but its next action is a RAM access
    /// that must win the SRAM port (no L1D hit can serve it), return true.
    /// The scheduler combines this with the port's free cycle: while the
    /// port is held by an in-flight HHT burst, every stepped cycle loses
    /// arbitration and charges exactly one `mem_port_stall_cycles`,
    /// replayed in bulk by [`Core::skip_port_wait`].
    #[inline]
    pub fn pending_port_access(&self, now: u64) -> bool {
        self.pending_port_addr(now).is_some()
    }

    /// Like [`Core::pending_port_access`], but returning the address of the
    /// pending beat — the fabric scheduler resolves it to a *bank*-specific
    /// free cycle on the banked shared memory (the port-wide hint would be
    /// wrong there: another tile's bank can be busy while ours is free).
    #[inline]
    pub fn pending_port_addr(&self, now: u64) -> Option<u32> {
        if self.halted || self.busy_until > now {
            return None;
        }
        let op = self.mem_op.as_ref()?;
        let beat = op.beats.get(op.next)?;
        match beat.access {
            BeatAccess::RamRead => {
                self.l1d.as_ref().is_none_or(|c| !c.probe(beat.addr)).then_some(beat.addr)
            }
            BeatAccess::RamWrite(_) => Some(beat.addr),
            BeatAccess::DevRead | BeatAccess::DevWrite(_) => None,
        }
    }

    /// Account for `span` skipped cycles starting at `now` during which the
    /// core retried SRAM-port arbitration against an in-flight HHT burst:
    /// each cycle charges one `mem_port_stall_cycles` plus the
    /// `ArbitrationLoss` bucket and one port conflict on the SRAM side,
    /// exactly as the per-cycle retry path does. The stall interval opens
    /// at `now` (a no-op when the first failing attempt already opened it).
    pub fn skip_port_wait(&mut self, now: u64, span: u64, sram: &mut dyn MemoryPort) {
        let who = if self.cfg.is_helper { Requester::Hht } else { Requester::Cpu };
        let addr = self.pending_port_addr(now).unwrap_or(0);
        self.stats.mem_port_stall_cycles += span;
        self.stats.stalls.record_many(StallCause::ArbitrationLoss, span);
        sram.skip_conflicts(now, span, addr, who);
        Self::obs_stall(&mut self.obs, &mut self.open_stall, now, StallCause::ArbitrationLoss);
    }

    /// Current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Performance counters.
    pub fn stats(&self) -> CoreStats {
        self.stats
    }

    /// Read an integer register.
    pub fn read_x(&self, r: Reg) -> u32 {
        self.x[r.index()]
    }

    /// Write an integer register (x0 writes are ignored).
    pub fn write_x(&mut self, r: Reg, v: u32) {
        if r.index() != 0 {
            self.x[r.index()] = v;
        }
    }

    /// Read a float register's value.
    pub fn read_f(&self, r: FReg) -> f32 {
        f32::from_bits(self.f[r.index()])
    }

    /// Write a float register.
    pub fn write_f(&mut self, r: FReg, v: f32) {
        self.f[r.index()] = v.to_bits();
    }

    /// Read a vector register (element bit patterns).
    pub fn read_v(&self, r: VReg) -> &[u32] {
        &self.v[r.index()]
    }

    fn fault(&mut self, e: RunError) {
        self.error = Some(e);
        self.halted = true;
    }

    fn set_busy(&mut self, now: u64, cycles: u64) {
        self.busy_until = now + cycles.max(1);
    }

    /// Open (or extend) a stall interval of `cause` on the CPU-pipe track.
    /// Associated fn over the two fields so it stays callable while
    /// `self.mem_op` is borrowed.
    #[inline]
    fn obs_stall(
        obs: &mut Option<Box<EventBus>>,
        open: &mut Option<StallCause>,
        now: u64,
        cause: StallCause,
    ) {
        let Some(bus) = obs.as_mut() else { return };
        if *open == Some(cause) {
            return;
        }
        if let Some(prev) = open.take() {
            bus.emit(now, Track::CpuPipe, EventKind::StallEnd(prev));
        }
        bus.emit(now, Track::CpuPipe, EventKind::StallBegin(cause));
        *open = Some(cause);
    }

    /// Close any open stall interval: the pipe made progress at `now`.
    #[inline]
    fn obs_unstall(obs: &mut Option<Box<EventBus>>, open: &mut Option<StallCause>, now: u64) {
        if let Some(prev) = open.take() {
            if let Some(bus) = obs.as_mut() {
                bus.emit(now, Track::CpuPipe, EventKind::StallEnd(prev));
            }
        }
    }

    /// Attribute the busy span just installed by `set_busy`/a memory beat:
    /// everything beyond the single issue cycle is a `cause` stall. Emits a
    /// closed begin/end pair (the core is guaranteed quiet until
    /// `busy_until`, so the pair cannot interleave with later CPU events).
    #[inline]
    fn attribute_busy(
        stats: &mut CoreStats,
        obs: &mut Option<Box<EventBus>>,
        now: u64,
        busy_until: u64,
        cause: StallCause,
    ) {
        let span = busy_until.saturating_sub(now + 1);
        if span == 0 {
            return;
        }
        stats.stalls.record_many(cause, span);
        if let Some(bus) = obs.as_mut() {
            bus.emit(now + 1, Track::CpuPipe, EventKind::StallBegin(cause));
            bus.emit(busy_until, Track::CpuPipe, EventKind::StallEnd(cause));
        }
    }

    /// [`Core::attribute_busy`] for execute-stage sites (no `mem_op`
    /// borrow in flight).
    #[inline]
    fn attribute_exec_busy(&mut self, now: u64, cause: StallCause) {
        Self::attribute_busy(&mut self.stats, &mut self.obs, now, self.busy_until, cause);
    }

    /// Advance the core by one cycle.
    pub fn step(&mut self, now: u64, sram: &mut dyn MemoryPort, dev: &mut dyn MmioDevice) {
        if self.halted || now < self.busy_until {
            return;
        }
        if self.mem_op.is_some() {
            self.step_mem_beat(now, sram, dev);
            return;
        }
        let Some(instr) = self.program.fetch(self.pc) else {
            self.fault(RunError::InvalidPc(self.pc));
            return;
        };
        self.execute(instr, now, sram);
    }

    fn step_mem_beat(&mut self, now: u64, sram: &mut dyn MemoryPort, dev: &mut dyn MmioDevice) {
        let who = if self.cfg.is_helper { Requester::Hht } else { Requester::Cpu };
        let op = self.mem_op.as_mut().expect("checked by caller");
        let beat = op.beats[op.next];
        match beat.access {
            BeatAccess::RamRead => {
                // With an L1D (§3.2 high-performance integration): hits are
                // served in one cycle without the SRAM port; misses fill a
                // whole line through the port.
                if let Some(cache) = self.l1d.as_mut() {
                    if cache.probe(beat.addr) {
                        cache.access(beat.addr);
                        self.stats.l1d_hits += 1;
                        op.collected.push(read_sized(sram, beat));
                        op.next += 1;
                        self.stats.mem_beats += 1;
                        self.busy_until = now + 1 + op.extra_per_beat;
                        Self::obs_unstall(&mut self.obs, &mut self.open_stall, now);
                        Self::attribute_busy(
                            &mut self.stats,
                            &mut self.obs,
                            now,
                            self.busy_until,
                            StallCause::LoadLatency,
                        );
                    } else {
                        let words = (cache.line_bytes() / 4) as u64;
                        // Split-transaction issue: a refusal (bank busy,
                        // window full or budget spent) is one lost
                        // arbitration cycle whatever the reason; the
                        // backend attributes the kind on its side.
                        match sram.request_burst(now, beat.addr, who, words) {
                            MemIssue::Refused(_) => {
                                self.stats.mem_port_stall_cycles += 1;
                                self.stats.stalls.record(StallCause::ArbitrationLoss);
                                Self::obs_stall(
                                    &mut self.obs,
                                    &mut self.open_stall,
                                    now,
                                    StallCause::ArbitrationLoss,
                                );
                                return;
                            }
                            MemIssue::Granted { data_at: done, .. } => {
                                cache.access(beat.addr);
                                self.stats.l1d_misses += 1;
                                op.collected.push(read_sized(sram, beat));
                                op.next += 1;
                                self.stats.mem_beats += 1;
                                self.busy_until = done + op.extra_per_beat;
                                Self::obs_unstall(&mut self.obs, &mut self.open_stall, now);
                                Self::attribute_busy(
                                    &mut self.stats,
                                    &mut self.obs,
                                    now,
                                    self.busy_until,
                                    StallCause::LoadLatency,
                                );
                            }
                        }
                    }
                    if op.next == op.beats.len() {
                        self.finish_mem_op();
                    }
                    return;
                }
                match sram.request(now, beat.addr, who) {
                    MemIssue::Refused(_) => {
                        self.stats.mem_port_stall_cycles += 1;
                        self.stats.stalls.record(StallCause::ArbitrationLoss);
                        Self::obs_stall(
                            &mut self.obs,
                            &mut self.open_stall,
                            now,
                            StallCause::ArbitrationLoss,
                        );
                        return;
                    }
                    MemIssue::Granted { data_at: done, .. } => {
                        op.collected.push(read_sized(sram, beat));
                        op.next += 1;
                        self.stats.mem_beats += 1;
                        self.busy_until = done + op.extra_per_beat;
                        Self::obs_unstall(&mut self.obs, &mut self.open_stall, now);
                        Self::attribute_busy(
                            &mut self.stats,
                            &mut self.obs,
                            now,
                            self.busy_until,
                            StallCause::LoadLatency,
                        );
                    }
                }
            }
            BeatAccess::RamWrite(v) => match sram.request(now, beat.addr, who) {
                MemIssue::Refused(_) => {
                    self.stats.mem_port_stall_cycles += 1;
                    self.stats.stalls.record(StallCause::ArbitrationLoss);
                    Self::obs_stall(
                        &mut self.obs,
                        &mut self.open_stall,
                        now,
                        StallCause::ArbitrationLoss,
                    );
                    return;
                }
                MemIssue::Granted { data_at: done, .. } => {
                    // Write-through, no-allocate: memory is always current;
                    // update the cache only if the line is resident.
                    if let Some(cache) = self.l1d.as_mut() {
                        if cache.probe(beat.addr) {
                            cache.access(beat.addr);
                        }
                    }
                    write_sized(sram, beat, v);
                    op.next += 1;
                    self.stats.mem_beats += 1;
                    self.busy_until = done + op.extra_per_beat;
                    Self::obs_unstall(&mut self.obs, &mut self.open_stall, now);
                    Self::attribute_busy(
                        &mut self.stats,
                        &mut self.obs,
                        now,
                        self.busy_until,
                        StallCause::LoadLatency,
                    );
                }
            },
            BeatAccess::DevRead => match dev.mmio_read(beat.addr, now) {
                MmioReadResult::Stall => {
                    self.stats.hht_wait_cycles += 1;
                    // Header (counts window) reads wait on chunk metadata;
                    // everything else waits on element data.
                    let cause = if map::is_hht_buffer(beat.addr)
                        && (beat.addr - map::HHT_BUF_BASE) & 0xC00 == HHT_COUNTS_WINDOW
                    {
                        StallCause::HhtHeaderWait
                    } else {
                        StallCause::HhtWindowEmpty
                    };
                    self.stats.stalls.record(cause);
                    Self::obs_stall(&mut self.obs, &mut self.open_stall, now, cause);
                    self.hht_stall_run += 1;
                    if self.cfg.hht_timeout > 0 && self.hht_stall_run >= self.cfg.hht_timeout {
                        self.on_hht_timeout(now, beat.addr);
                    }
                    return;
                }
                MmioReadResult::Data(v) => {
                    self.hht_stall_run = 0;
                    self.hht_retries_used = 0;
                    op.collected.push(v);
                    op.next += 1;
                    self.busy_until = now + self.cfg.hht_beat_cycles;
                    Self::obs_unstall(&mut self.obs, &mut self.open_stall, now);
                    Self::attribute_busy(
                        &mut self.stats,
                        &mut self.obs,
                        now,
                        self.busy_until,
                        StallCause::LoadLatency,
                    );
                }
            },
            BeatAccess::DevWrite(v) => {
                dev.mmio_write(beat.addr, v, now);
                op.next += 1;
                self.busy_until = now + 1;
                Self::obs_unstall(&mut self.obs, &mut self.open_stall, now);
            }
        }
        if op.next == op.beats.len() {
            self.finish_mem_op();
        }
    }

    /// The HHT wait-timeout/retry protocol (detection + bounded recovery):
    /// a window load stalled for `hht_timeout` consecutive cycles. Take a
    /// bounded retry — sleep out an exponential backoff, then re-poll the
    /// same window — or, with retries exhausted, declare the HHT failed so
    /// the system-level policy can fall back to the software kernel.
    fn on_hht_timeout(&mut self, now: u64, addr: u32) {
        self.stats.hht_timeouts += 1;
        if let Some(bus) = self.obs.as_mut() {
            bus.emit(now, Track::Fault, EventKind::FaultDetect { what: "hht_timeout" });
        }
        if self.hht_retries_used < self.cfg.hht_max_retries {
            self.hht_retries_used += 1;
            self.stats.hht_retries += 1;
            self.hht_stall_run = 0;
            let backoff = self.cfg.hht_retry_backoff.max(1) << (self.hht_retries_used - 1).min(16);
            self.busy_until = now + backoff;
            Self::obs_unstall(&mut self.obs, &mut self.open_stall, now);
            Self::attribute_busy(
                &mut self.stats,
                &mut self.obs,
                now,
                self.busy_until,
                StallCause::HhtRetryBackoff,
            );
            if let Some(bus) = self.obs.as_mut() {
                bus.emit(now, Track::Fault, EventKind::Recovery { what: "hht_retry" });
            }
        } else {
            Self::obs_unstall(&mut self.obs, &mut self.open_stall, now);
            if let Some(bus) = self.obs.as_mut() {
                bus.emit(now, Track::Fault, EventKind::FaultDetect { what: "hht_failed" });
            }
            self.fault(RunError::HhtFailed { addr, cycle: now });
        }
    }

    fn finish_mem_op(&mut self) {
        let Some(op) = self.mem_op.take() else { return };
        if op.next < op.beats.len() {
            // Not actually finished (defensive; callers check first).
            self.mem_op = Some(op);
            return;
        }
        match op.dest {
            Dest::X(r) => self.write_x(r, op.collected[0]),
            Dest::F(r) => self.f[r.index()] = op.collected[0],
            Dest::V(r) => {
                for (i, w) in op.collected.iter().enumerate() {
                    self.v[r.index()][i] = *w;
                }
            }
            Dest::None => {}
        }
    }

    /// Classify an address; `None` for unmapped or misaligned.
    fn classify(&self, sram: &dyn MemoryPort, addr: u32, width: MemWidth) -> Option<bool> {
        if !addr.is_multiple_of(width.bytes()) {
            return None;
        }
        if map::is_ram(addr, sram.size()) {
            return Some(true);
        }
        // Devices are word-access only.
        if width == MemWidth::Word && (map::is_hht_mmr(addr) || map::is_hht_buffer(addr)) {
            return Some(false);
        }
        None
    }

    #[allow(clippy::too_many_arguments)]
    fn start_mem_op(
        &mut self,
        now: u64,
        sram: &dyn MemoryPort,
        addrs: Vec<u32>,
        write_values: Option<Vec<u32>>,
        dest: Dest,
        issue_cycles: u64,
        extra_per_beat: u64,
    ) {
        self.start_mem_op_sized(
            now,
            sram,
            addrs,
            write_values,
            dest,
            issue_cycles,
            extra_per_beat,
            MemWidth::Word,
            false,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn start_mem_op_sized(
        &mut self,
        now: u64,
        sram: &dyn MemoryPort,
        addrs: Vec<u32>,
        write_values: Option<Vec<u32>>,
        dest: Dest,
        issue_cycles: u64,
        extra_per_beat: u64,
        width: MemWidth,
        signed: bool,
    ) {
        let mut beats = Vec::with_capacity(addrs.len());
        for (i, addr) in addrs.iter().enumerate() {
            let Some(is_ram) = self.classify(sram, *addr, width) else {
                self.fault(RunError::MemFault(*addr));
                return;
            };
            let access = match (&write_values, is_ram) {
                (None, true) => BeatAccess::RamRead,
                (None, false) => BeatAccess::DevRead,
                (Some(vs), true) => BeatAccess::RamWrite(vs[i]),
                (Some(vs), false) => BeatAccess::DevWrite(vs[i]),
            };
            beats.push(Beat { addr: *addr, access, width, signed });
        }
        if write_values.is_some() {
            self.stats.stores += 1;
        } else {
            self.stats.loads += 1;
        }
        let n = beats.len();
        self.mem_op =
            Some(MemOp { beats, next: 0, collected: Vec::with_capacity(n), dest, extra_per_beat });
        self.set_busy(now, issue_cycles);
    }

    fn execute(&mut self, instr: Instr, now: u64, sram: &dyn MemoryPort) {
        use Instr::*;
        self.stats.instructions += 1;
        if let Some(trace) = self.trace.as_mut() {
            trace.push(TraceEntry { cycle: now, pc: self.pc, instr });
        }
        if instr.is_vector() {
            self.stats.vector_instrs += 1;
        }
        let mut next_pc = self.pc.wrapping_add(4);
        let cfg = self.cfg;
        match instr {
            Lui { rd, imm20 } => {
                self.write_x(rd, (imm20 as u32) << 12);
                self.set_busy(now, cfg.alu_cycles);
            }
            Auipc { rd, imm20 } => {
                self.write_x(rd, self.pc.wrapping_add((imm20 as u32) << 12));
                self.set_busy(now, cfg.alu_cycles);
            }
            Jal { rd, offset } => {
                self.write_x(rd, self.pc.wrapping_add(4));
                next_pc = self.pc.wrapping_add(offset as u32);
                self.set_busy(now, cfg.alu_cycles + cfg.branch_taken_penalty);
                self.attribute_exec_busy(now, StallCause::BranchRefill);
            }
            Jalr { rd, rs1, offset } => {
                let target = self.read_x(rs1).wrapping_add(offset as u32) & !1;
                self.write_x(rd, self.pc.wrapping_add(4));
                next_pc = target;
                self.set_busy(now, cfg.alu_cycles + cfg.branch_taken_penalty);
                self.attribute_exec_busy(now, StallCause::BranchRefill);
            }
            Branch { op, rs1, rs2, offset } => {
                let a = self.read_x(rs1);
                let b = self.read_x(rs2);
                let taken = match op {
                    BranchOp::Eq => a == b,
                    BranchOp::Ne => a != b,
                    BranchOp::Lt => (a as i32) < (b as i32),
                    BranchOp::Ge => (a as i32) >= (b as i32),
                    BranchOp::Ltu => a < b,
                    BranchOp::Geu => a >= b,
                };
                if taken {
                    next_pc = self.pc.wrapping_add(offset as u32);
                    self.set_busy(now, cfg.alu_cycles + cfg.branch_taken_penalty);
                    self.attribute_exec_busy(now, StallCause::BranchRefill);
                } else {
                    self.set_busy(now, cfg.alu_cycles);
                }
            }
            Lw { rd, rs1, offset } => {
                let addr = self.read_x(rs1).wrapping_add(offset as u32);
                self.start_mem_op(now, sram, vec![addr], None, Dest::X(rd), 0, 0);
            }
            Sw { rs1, rs2, offset } => {
                let addr = self.read_x(rs1).wrapping_add(offset as u32);
                let v = self.read_x(rs2);
                self.start_mem_op(now, sram, vec![addr], Some(vec![v]), Dest::None, 0, 0);
            }
            Flw { rd, rs1, offset } => {
                let addr = self.read_x(rs1).wrapping_add(offset as u32);
                self.start_mem_op(now, sram, vec![addr], None, Dest::F(rd), 0, 0);
            }
            Fsw { rs1, rs2, offset } => {
                let addr = self.read_x(rs1).wrapping_add(offset as u32);
                let v = self.f[rs2.index()];
                self.start_mem_op(now, sram, vec![addr], Some(vec![v]), Dest::None, 0, 0);
            }
            OpImm { op, rd, rs1, imm } => {
                let v = alu(op, self.read_x(rs1), imm as u32);
                self.write_x(rd, v);
                self.set_busy(now, cfg.alu_cycles);
            }
            Op { op, rd, rs1, rs2 } => {
                let v = alu(op, self.read_x(rs1), self.read_x(rs2));
                self.write_x(rd, v);
                self.set_busy(now, cfg.alu_cycles);
            }
            Mul { rd, rs1, rs2 } => {
                let v = self.read_x(rs1).wrapping_mul(self.read_x(rs2));
                self.write_x(rd, v);
                self.set_busy(now, cfg.mul_cycles);
            }
            MulDiv { op, rd, rs1, rs2 } => {
                let a = self.read_x(rs1);
                let b = self.read_x(rs2);
                let v = muldiv(op, a, b);
                self.write_x(rd, v);
                // Divides take longer than multiplies on small cores.
                let cost = match op {
                    MulDivOp::Div | MulDivOp::Divu | MulDivOp::Rem | MulDivOp::Remu => {
                        cfg.mul_cycles * 8
                    }
                    _ => cfg.mul_cycles,
                };
                self.set_busy(now, cost);
            }
            LoadNarrow { rd, rs1, offset, width, signed } => {
                let addr = self.read_x(rs1).wrapping_add(offset as u32);
                self.start_mem_op_sized(
                    now,
                    sram,
                    vec![addr],
                    None,
                    Dest::X(rd),
                    0,
                    0,
                    width,
                    signed,
                );
            }
            StoreNarrow { rs1, rs2, offset, width } => {
                let addr = self.read_x(rs1).wrapping_add(offset as u32);
                let v = self.read_x(rs2);
                self.start_mem_op_sized(
                    now,
                    sram,
                    vec![addr],
                    Some(vec![v]),
                    Dest::None,
                    0,
                    0,
                    width,
                    false,
                );
            }
            FaddS { rd, rs1, rs2 } => {
                let v = self.read_f(rs1) + self.read_f(rs2);
                self.write_f(rd, v);
                self.set_busy(now, cfg.fpu_cycles);
            }
            FsubS { rd, rs1, rs2 } => {
                let v = self.read_f(rs1) - self.read_f(rs2);
                self.write_f(rd, v);
                self.set_busy(now, cfg.fpu_cycles);
            }
            FmulS { rd, rs1, rs2 } => {
                let v = self.read_f(rs1) * self.read_f(rs2);
                self.write_f(rd, v);
                self.set_busy(now, cfg.fpu_cycles);
            }
            FmaddS { rd, rs1, rs2, rs3 } => {
                let v = self.read_f(rs1) * self.read_f(rs2) + self.read_f(rs3);
                self.write_f(rd, v);
                self.set_busy(now, cfg.fpu_cycles);
            }
            FmvWX { rd, rs1 } => {
                self.f[rd.index()] = self.read_x(rs1);
                self.set_busy(now, cfg.alu_cycles);
            }
            FmvXW { rd, rs1 } => {
                let v = self.f[rs1.index()];
                self.write_x(rd, v);
                self.set_busy(now, cfg.alu_cycles);
            }
            Vsetvli { rd, rs1, .. } => {
                let avl = if rs1 == Reg::ZERO { cfg.vlen as u32 } else { self.read_x(rs1) };
                self.vl = (avl as usize).min(cfg.vlen);
                self.write_x(rd, self.vl as u32);
                self.set_busy(now, cfg.alu_cycles);
            }
            Vle32 { vd, rs1 } => {
                let base = self.read_x(rs1);
                let addrs = (0..self.vl).map(|i| base.wrapping_add(4 * i as u32)).collect();
                self.start_mem_op(now, sram, addrs, None, Dest::V(vd), cfg.vector_issue_cycles, 0);
            }
            Vse32 { vs3, rs1 } => {
                let base = self.read_x(rs1);
                let addrs: Vec<u32> =
                    (0..self.vl).map(|i| base.wrapping_add(4 * i as u32)).collect();
                let vals = self.v[vs3.index()][..self.vl].to_vec();
                self.start_mem_op(
                    now,
                    sram,
                    addrs,
                    Some(vals),
                    Dest::None,
                    cfg.vector_issue_cycles,
                    0,
                );
            }
            Vluxei32 { vd, rs1, vs2 } => {
                let base = self.read_x(rs1);
                let addrs =
                    (0..self.vl).map(|i| base.wrapping_add(self.v[vs2.index()][i])).collect();
                self.start_mem_op(
                    now,
                    sram,
                    addrs,
                    None,
                    Dest::V(vd),
                    cfg.vector_issue_cycles + cfg.gather_issue_cycles,
                    cfg.gather_addr_cycles,
                );
            }
            VfmaccVV { vd, vs1, vs2 } => {
                for i in 0..self.vl {
                    let a = f32::from_bits(self.v[vs1.index()][i]);
                    let b = f32::from_bits(self.v[vs2.index()][i]);
                    let d = f32::from_bits(self.v[vd.index()][i]);
                    self.v[vd.index()][i] = (d + a * b).to_bits();
                }
                self.set_busy(now, cfg.vector_arith_cycles);
                self.attribute_exec_busy(now, StallCause::VectorBusy);
            }
            VfmulVV { vd, vs1, vs2 } => {
                for i in 0..self.vl {
                    let a = f32::from_bits(self.v[vs1.index()][i]);
                    let b = f32::from_bits(self.v[vs2.index()][i]);
                    self.v[vd.index()][i] = (a * b).to_bits();
                }
                self.set_busy(now, cfg.vector_arith_cycles);
                self.attribute_exec_busy(now, StallCause::VectorBusy);
            }
            VfaddVV { vd, vs1, vs2 } => {
                for i in 0..self.vl {
                    let a = f32::from_bits(self.v[vs1.index()][i]);
                    let b = f32::from_bits(self.v[vs2.index()][i]);
                    self.v[vd.index()][i] = (a + b).to_bits();
                }
                self.set_busy(now, cfg.vector_arith_cycles);
                self.attribute_exec_busy(now, StallCause::VectorBusy);
            }
            VfredosumVS { vd, vs1, vs2 } => {
                let mut s = f32::from_bits(self.v[vs1.index()][0]);
                for i in 0..self.vl {
                    s += f32::from_bits(self.v[vs2.index()][i]);
                }
                self.v[vd.index()][0] = s.to_bits();
                self.set_busy(now, cfg.vector_arith_cycles);
                self.attribute_exec_busy(now, StallCause::VectorBusy);
            }
            VsllVI { vd, vs2, imm5 } => {
                for i in 0..self.vl {
                    self.v[vd.index()][i] = self.v[vs2.index()][i].wrapping_shl(imm5 as u32);
                }
                self.set_busy(now, cfg.alu_cycles);
            }
            VmvVI { vd, imm5 } => {
                for i in 0..self.vl {
                    self.v[vd.index()][i] = imm5 as u32;
                }
                self.set_busy(now, cfg.alu_cycles);
            }
            VmvVX { vd, rs1 } => {
                let v = self.read_x(rs1);
                for i in 0..self.vl {
                    self.v[vd.index()][i] = v;
                }
                self.set_busy(now, cfg.alu_cycles);
            }
            VfmvFS { rd, vs2 } => {
                self.f[rd.index()] = self.v[vs2.index()][0];
                self.set_busy(now, cfg.alu_cycles);
            }
            Csrrs { rd, csr, .. } => {
                let v = match csr {
                    0xC00 => now as u32,
                    0xC02 => self.stats.instructions as u32,
                    _ => 0,
                };
                self.write_x(rd, v);
                self.set_busy(now, cfg.alu_cycles);
            }
            Ecall => {
                self.set_busy(now, cfg.alu_cycles);
            }
            Ebreak => {
                self.halted = true;
            }
        }
        if !self.halted {
            self.pc = next_pc;
        }
    }
}

/// Width- and sign-aware functional read for one beat.
fn read_sized(sram: &dyn MemoryPort, beat: Beat) -> u32 {
    match (beat.width, beat.signed) {
        (MemWidth::Word, _) => sram.read_u32(beat.addr),
        (MemWidth::Byte, false) => sram.read_u8(beat.addr) as u32,
        (MemWidth::Byte, true) => sram.read_u8(beat.addr) as i8 as i32 as u32,
        (MemWidth::Half, false) => sram.read_u16(beat.addr) as u32,
        (MemWidth::Half, true) => sram.read_u16(beat.addr) as i16 as i32 as u32,
    }
}

/// Width-aware functional write for one beat.
fn write_sized(sram: &mut dyn MemoryPort, beat: Beat, v: u32) {
    match beat.width {
        MemWidth::Word => sram.write_u32(beat.addr, v),
        MemWidth::Byte => sram.write_u8(beat.addr, v as u8),
        MemWidth::Half => sram.write_u16(beat.addr, v as u16),
    }
}

/// RV32M semantics, including the division corner cases of the spec.
fn muldiv(op: MulDivOp, a: u32, b: u32) -> u32 {
    match op {
        MulDivOp::Mul => a.wrapping_mul(b),
        MulDivOp::Mulh => ((a as i32 as i64 * b as i32 as i64) >> 32) as u32,
        MulDivOp::Mulhsu => ((a as i32 as i64 * b as i64) >> 32) as u32,
        MulDivOp::Mulhu => ((a as u64 * b as u64) >> 32) as u32,
        MulDivOp::Div => {
            if b == 0 {
                u32::MAX
            } else if a == 0x8000_0000 && b == u32::MAX {
                a // overflow: i32::MIN / -1
            } else {
                (a as i32).wrapping_div(b as i32) as u32
            }
        }
        MulDivOp::Divu => a.checked_div(b).unwrap_or(u32::MAX),
        MulDivOp::Rem => {
            if b == 0 {
                a
            } else if a == 0x8000_0000 && b == u32::MAX {
                0
            } else {
                (a as i32).wrapping_rem(b as i32) as u32
            }
        }
        MulDivOp::Remu => a.checked_rem(b).unwrap_or(a),
    }
}

fn alu(op: AluOp, a: u32, b: u32) -> u32 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Sll => a.wrapping_shl(b & 0x1f),
        AluOp::Slt => ((a as i32) < (b as i32)) as u32,
        AluOp::Sltu => (a < b) as u32,
        AluOp::Xor => a ^ b,
        AluOp::Srl => a.wrapping_shr(b & 0x1f),
        AluOp::Sra => ((a as i32).wrapping_shr(b & 0x1f)) as u32,
        AluOp::Or => a | b,
        AluOp::And => a & b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hht_isa::asm::assemble;
    use hht_mem::mmio::NullDevice;
    use hht_mem::Sram;

    /// Run a program on a fresh core; returns (core, cycles).
    fn run(src: &str, sram: &mut dyn MemoryPort) -> (Core, u64) {
        run_cfg(src, sram, CoreConfig::paper_default())
    }

    fn run_cfg(src: &str, sram: &mut dyn MemoryPort, cfg: CoreConfig) -> (Core, u64) {
        let p = assemble(src).expect("test program assembles");
        let mut core = Core::new(cfg, p);
        let mut dev = NullDevice;
        let mut now = 0;
        while !core.halted() {
            core.step(now, sram, &mut dev);
            now += 1;
            assert!(now < 1_000_000, "test program ran away");
        }
        (core, now)
    }

    #[test]
    fn arithmetic_and_halt() {
        let mut sram = Sram::new(1024, 2);
        let (core, _) = run("li a0, 40\naddi a0, a0, 2\nebreak", &mut sram);
        assert_eq!(core.read_x(Reg::a(0)), 42);
        assert!(core.error().is_none());
        assert_eq!(core.stats().instructions, 3);
    }

    #[test]
    fn x0_is_hardwired_zero() {
        let mut sram = Sram::new(1024, 2);
        let (core, _) = run("addi zero, zero, 5\nadd a0, zero, zero\nebreak", &mut sram);
        assert_eq!(core.read_x(Reg::ZERO), 0);
        assert_eq!(core.read_x(Reg::a(0)), 0);
    }

    #[test]
    fn loop_counts_down() {
        let mut sram = Sram::new(1024, 2);
        let (core, _) = run(
            "li t0, 5\nli a0, 0\nloop:\naddi a0, a0, 2\naddi t0, t0, -1\nbnez t0, loop\nebreak",
            &mut sram,
        );
        assert_eq!(core.read_x(Reg::a(0)), 10);
    }

    #[test]
    fn loads_and_stores() {
        let mut sram = Sram::new(1024, 2);
        sram.write_u32(0x100, 7);
        let (core, _) =
            run("li a0, 0x100\nlw a1, 0(a0)\naddi a1, a1, 1\nsw a1, 4(a0)\nebreak", &mut sram);
        assert_eq!(core.read_x(Reg::a(1)), 8);
        assert_eq!(sram.read_u32(0x104), 8);
    }

    #[test]
    fn float_ops() {
        let mut sram = Sram::new(1024, 2);
        sram.write_f32(0x100, 1.5);
        sram.write_f32(0x104, 2.0);
        let (core, _) = run(
            "li a0, 0x100\nflw fa0, 0(a0)\nflw fa1, 4(a0)\nfmul.s fa2, fa0, fa1\n\
             fmadd.s fa3, fa0, fa1, fa2\nfsw fa3, 8(a0)\nebreak",
            &mut sram,
        );
        assert_eq!(core.read_f(FReg::a(2)), 3.0);
        assert_eq!(sram.read_f32(0x108), 6.0);
    }

    #[test]
    fn vector_load_compute_store() {
        let mut sram = Sram::new(1024, 2);
        sram.load_f32s(0x100, &[1., 2., 3., 4., 5., 6., 7., 8.]);
        sram.load_f32s(0x200, &[10., 20., 30., 40., 50., 60., 70., 80.]);
        let (core, _) = run(
            "li a0, 8\nvsetvli t0, a0, e32, m1\nli a1, 0x100\nli a2, 0x200\nli a3, 0x300\n\
             vle32.v v1, (a1)\nvle32.v v2, (a2)\nvmv.v.i v3, 0\nvfmacc.vv v3, v1, v2\n\
             vse32.v v3, (a3)\nebreak",
            &mut sram,
        );
        assert_eq!(core.read_x(Reg::t(0)), 8);
        let out = sram.read_f32s(0x300, 8);
        assert_eq!(out, vec![10., 40., 90., 160., 250., 360., 490., 640.]);
    }

    #[test]
    fn vsetvli_clamps_to_vlmax() {
        let mut sram = Sram::new(1024, 2);
        let (core, _) = run("li a0, 100\nvsetvli t0, a0, e32, m1\nebreak", &mut sram);
        assert_eq!(core.read_x(Reg::t(0)), 8);
        let (core, _) = run("li a0, 3\nvsetvli t0, a0, e32, m1\nebreak", &mut sram);
        assert_eq!(core.read_x(Reg::t(0)), 3);
    }

    #[test]
    fn gather_load() {
        let mut sram = Sram::new(4096, 2);
        sram.load_f32s(0x100, &[100., 101., 102., 103., 104., 105., 106., 107.]);
        // Byte-offset indices: gather elements 3, 0, 7, 1, 2, 4, 6, 5.
        sram.load_words(0x200, &[12, 0, 28, 4, 8, 16, 24, 20]);
        let (core, _) = run(
            "li a0, 8\nvsetvli t0, a0, e32, m1\nli a1, 0x200\nvle32.v v1, (a1)\n\
             li a2, 0x100\nvluxei32.v v2, (a2), v1\nli a3, 0x300\nvse32.v v2, (a3)\nebreak",
            &mut sram,
        );
        assert!(core.error().is_none());
        let out = sram.read_f32s(0x300, 8);
        assert_eq!(out, vec![103., 100., 107., 101., 102., 104., 106., 105.]);
    }

    #[test]
    fn reduction_sums() {
        let mut sram = Sram::new(1024, 2);
        sram.load_f32s(0x100, &[1., 2., 3., 4., 5., 6., 7., 8.]);
        let (core, _) = run(
            "li a0, 8\nvsetvli t0, a0, e32, m1\nli a1, 0x100\nvle32.v v1, (a1)\n\
             vmv.v.i v0, 0\nvfredosum.vs v2, v1, v0\nvfmv.f.s fa0, v2\nebreak",
            &mut sram,
        );
        assert_eq!(core.read_f(FReg::a(0)), 36.0);
    }

    #[test]
    fn fault_on_unmapped_address() {
        let mut sram = Sram::new(1024, 2);
        let (core, _) = run("li a0, 0x7000\nslli a0, a0, 12\nlw a1, 0(a0)\nebreak", &mut sram);
        assert!(matches!(core.error(), Some(RunError::MemFault(_))));
        assert!(core.halted());
    }

    #[test]
    fn fault_on_misaligned_address() {
        let mut sram = Sram::new(1024, 2);
        let (core, _) = run("li a0, 0x102\nlw a1, 0(a0)\nebreak", &mut sram);
        assert!(matches!(core.error(), Some(RunError::MemFault(0x102))));
    }

    #[test]
    fn fault_on_pc_escape() {
        let mut sram = Sram::new(1024, 2);
        // No ebreak: runs off the end.
        let p = assemble("nop").unwrap();
        let mut core = Core::new(CoreConfig::paper_default(), p);
        let mut dev = NullDevice;
        for now in 0..10 {
            core.step(now, &mut sram, &mut dev);
        }
        assert!(matches!(core.error(), Some(RunError::InvalidPc(4))));
    }

    #[test]
    fn rdcycle_and_instret() {
        let mut sram = Sram::new(1024, 2);
        let (core, cycles) = run("nop\nnop\nrdcycle t0\ncsrrs t1, 0xc02, zero\nebreak", &mut sram);
        let t0 = core.read_x(Reg::t(0));
        assert!(t0 >= 2 && (t0 as u64) < cycles);
        // instret counts issued instructions, including the csrrs itself
        // (2 nops + rdcycle + csrrs).
        assert_eq!(core.read_x(Reg::t(1)), 4);
    }

    #[test]
    fn timing_simple_ops_are_one_cycle() {
        let mut sram = Sram::new(1024, 2);
        // 10 single-cycle adds + ebreak.
        let body = "addi a0, a0, 1\n".repeat(10) + "ebreak";
        let (_, cycles) = run(&body, &mut sram);
        // one cycle each plus the halting step.
        assert!((10..=12).contains(&cycles), "cycles = {cycles}");
    }

    #[test]
    fn timing_vector_arith_is_four_cycles() {
        let mut sram = Sram::new(1024, 2);
        let warm = "li a0, 8\nvsetvli t0, a0, e32, m1\n";
        let (_, base) = run(&format!("{warm}ebreak"), &mut sram);
        let (_, one) = run(&format!("{warm}vfadd.vv v1, v2, v3\nebreak"), &mut sram);
        let (_, two) =
            run(&format!("{warm}vfadd.vv v1, v2, v3\nvfadd.vv v4, v5, v6\nebreak"), &mut sram);
        assert_eq!(one - base, 4);
        assert_eq!(two - one, 4); // not pipelined: strictly serialized
    }

    #[test]
    fn timing_loads_stall_the_pipe() {
        let mut sram2 = Sram::new(1024, 2);
        let mut sram4 = Sram::new(1024, 4);
        let src = "li a0, 0x100\nlw a1, 0(a0)\nlw a2, 4(a0)\nebreak";
        let (_, fast) = run(src, &mut sram2);
        let (_, slow) = run(src, &mut sram4);
        assert_eq!(slow - fast, 4); // 2 loads x 2 extra cycles each
    }

    #[test]
    fn timing_gather_pays_per_element_addressing() {
        let mut sram = Sram::new(4096, 2);
        sram.load_words(0x200, &[0, 4, 8, 12, 16, 20, 24, 28]);
        let pre =
            "li a0, 8\nvsetvli t0, a0, e32, m1\nli a1, 0x200\nvle32.v v1, (a1)\nli a2, 0x100\n";
        let (_, unit) = run(&format!("{pre}vle32.v v2, (a2)\nebreak"), &mut sram);
        let mut sram_b = Sram::new(4096, 2);
        sram_b.load_words(0x200, &[0, 4, 8, 12, 16, 20, 24, 28]);
        let (_, gather) = run(&format!("{pre}vluxei32.v v2, (a2), v1\nebreak"), &mut sram_b);
        // gather adds gather_addr_cycles per element plus the fixed
        // gather_issue_cycles setup.
        let cfg = CoreConfig::paper_default();
        assert_eq!(gather - unit, 8 * cfg.gather_addr_cycles + cfg.gather_issue_cycles);
    }

    #[test]
    fn vector_width_respects_vl() {
        let mut sram = Sram::new(1024, 2);
        sram.load_f32s(0x100, &[1., 2., 3., 4., 5., 6., 7., 8.]);
        let (core, _) = run(
            "li a0, 4\nvsetvli t0, a0, e32, m1\nli a1, 0x100\nvle32.v v1, (a1)\n\
             vfadd.vv v2, v1, v1\nebreak",
            &mut sram,
        );
        let v2 = core.read_v(VReg::new(2));
        assert_eq!(f32::from_bits(v2[0]), 2.0);
        assert_eq!(f32::from_bits(v2[3]), 8.0);
        // elements beyond vl untouched (still zero)
        assert_eq!(v2[4], 0);
    }

    #[test]
    fn rv32m_semantics() {
        let mut sram = Sram::new(1024, 2);
        let (core, _) = run(
            "li a0, -7\nli a1, 2\ndiv a2, a0, a1\nrem a3, a0, a1\n\
             divu a4, a0, a1\nmulh a5, a0, a0\nebreak",
            &mut sram,
        );
        assert_eq!(core.read_x(Reg::a(2)) as i32, -3);
        assert_eq!(core.read_x(Reg::a(3)) as i32, -1);
        assert_eq!(core.read_x(Reg::a(4)), (-7i32 as u32) / 2);
        assert_eq!(core.read_x(Reg::a(5)), (((-7i64) * (-7i64)) >> 32) as u32);
    }

    #[test]
    fn rv32m_division_corner_cases() {
        let mut sram = Sram::new(1024, 2);
        let (core, _) = run(
            "li a0, 5\nli a1, 0\ndiv a2, a0, a1\nrem a3, a0, a1\n\
             li a4, 0x80000000\nli a5, -1\ndiv a6, a4, a5\nrem a7, a4, a5\nebreak",
            &mut sram,
        );
        assert_eq!(core.read_x(Reg::a(2)), u32::MAX); // div by zero
        assert_eq!(core.read_x(Reg::a(3)), 5); // rem by zero
        assert_eq!(core.read_x(Reg::a(6)), 0x8000_0000); // overflow
        assert_eq!(core.read_x(Reg::a(7)), 0);
    }

    #[test]
    fn sub_word_loads_and_stores() {
        let mut sram = Sram::new(1024, 2);
        sram.write_u32(0x100, 0x8081_7F01);
        let (core, _) = run(
            "li a0, 0x100\nlb a1, 3(a0)\nlbu a2, 3(a0)\nlh a3, 2(a0)\nlhu a4, 2(a0)\n\
             lb a5, 0(a0)\nli t0, 0xAB\nsb t0, 4(a0)\nli t1, 0xBEEF\nsh t1, 6(a0)\nebreak",
            &mut sram,
        );
        assert_eq!(core.read_x(Reg::a(1)) as i32, -128); // 0x80 sign-extended
        assert_eq!(core.read_x(Reg::a(2)), 0x80);
        assert_eq!(core.read_x(Reg::a(3)) as i32, 0x8081u16 as i16 as i32);
        assert_eq!(core.read_x(Reg::a(4)), 0x8081);
        assert_eq!(core.read_x(Reg::a(5)), 0x01);
        assert_eq!(sram.read_u8(0x104), 0xAB);
        assert_eq!(sram.read_u16(0x106), 0xBEEF);
    }

    #[test]
    fn sub_word_alignment_rules() {
        let mut sram = Sram::new(1024, 2);
        // Bytes may be anywhere; halves must be 2-aligned.
        let (core, _) = run("li a0, 0x101\nlbu a1, 0(a0)\nebreak", &mut sram);
        assert!(core.error().is_none());
        let (core, _) = run("li a0, 0x101\nlh a1, 0(a0)\nebreak", &mut sram);
        assert!(matches!(core.error(), Some(RunError::MemFault(0x101))));
    }

    #[test]
    fn trace_records_issued_instructions() {
        let mut sram = Sram::new(1024, 2);
        let p = assemble("li a0, 2\nloop:\naddi a0, a0, -1\nbnez a0, loop\nebreak").unwrap();
        let mut core = Core::new(CoreConfig::paper_default(), p);
        core.enable_trace();
        let mut dev = NullDevice;
        let mut now = 0;
        while !core.halted() {
            core.step(now, &mut sram, &mut dev);
            now += 1;
        }
        let t = core.trace();
        // li, (addi, bnez) x2, ebreak = 6 entries.
        assert_eq!(t.len(), 6);
        assert_eq!(t[0].pc, 0);
        assert!(t.windows(2).all(|w| w[0].cycle < w[1].cycle));
        let text = core.trace_to_string();
        assert!(text.contains("addi a0, a0, -1"));
        assert!(text.lines().count() == 6);
    }

    #[test]
    fn trace_is_empty_when_disabled() {
        let mut sram = Sram::new(1024, 2);
        let (core, _) = run("nop\nebreak", &mut sram);
        assert!(core.trace().is_empty());
    }

    #[test]
    fn l1d_hits_serve_in_one_cycle() {
        use crate::config::CacheGeometry;
        let src = "li a0, 0x100\nlw a1, 0(a0)\nlw a2, 0(a0)\nlw a3, 4(a0)\nebreak";
        // Without a cache: each load pays the SRAM latency.
        let mut sram = Sram::new(1024, 4);
        let (core_nc, plain) = run(src, &mut sram);
        assert_eq!(core_nc.stats().l1d_hits, 0);
        // With a cache: the second and third loads hit the filled line.
        let mut sram = Sram::new(1024, 4);
        let cfg = CoreConfig::paper_default().with_l1d(CacheGeometry::embedded_4k());
        let (core, cached) = run_cfg(src, &mut sram, cfg);
        assert_eq!(core.stats().l1d_misses, 1);
        assert_eq!(core.stats().l1d_hits, 2);
        // One 8-word line fill (32c) + 2 hits beats 3x4c only for longer
        // runs; here just check both computed the same values.
        assert_eq!(core.read_x(Reg::a(1)), core_nc.read_x(Reg::a(1)));
        assert!(cached > 0 && plain > 0);
    }

    #[test]
    fn l1d_write_through_keeps_memory_current() {
        use crate::config::CacheGeometry;
        let src = "li a0, 0x100\nlw a1, 0(a0)\nli a2, 7\nsw a2, 0(a0)\nlw a3, 0(a0)\nebreak";
        let mut sram = Sram::new(1024, 2);
        let cfg = CoreConfig::paper_default().with_l1d(CacheGeometry::embedded_4k());
        let (core, _) = run_cfg(src, &mut sram, cfg);
        assert_eq!(core.read_x(Reg::a(3)), 7);
        assert_eq!(sram.read_u32(0x100), 7);
    }

    #[test]
    fn l1d_sequential_scan_mostly_hits() {
        use crate::config::CacheGeometry;
        // 32 sequential word loads: 4 line fills + 28 hits with 32B lines.
        let mut src = String::from("li a0, 0x100\n");
        for i in 0..32 {
            src += &format!("lw a1, {}(a0)\n", 4 * i);
        }
        src += "ebreak";
        let mut sram = Sram::new(1024, 2);
        let cfg = CoreConfig::paper_default().with_l1d(CacheGeometry::embedded_4k());
        let (core, _) = run_cfg(&src, &mut sram, cfg);
        assert_eq!(core.stats().l1d_misses, 4);
        assert_eq!(core.stats().l1d_hits, 28);
    }

    #[test]
    fn narrow_core_config() {
        let mut sram = Sram::new(1024, 2);
        let cfg = CoreConfig::paper_default().with_vlen(1);
        let (core, _) = run_cfg("li a0, 8\nvsetvli t0, a0, e32, m1\nebreak", &mut sram, cfg);
        assert_eq!(core.read_x(Reg::t(0)), 1);
    }
}
