//! Core timing parameters.

use serde::{Deserialize, Serialize};

/// L1 data-cache geometry for the "high-performance processor integration"
/// of §3.2. `None` in [`CoreConfig::l1d`] models the paper's primary MCU
/// configuration (no cache, direct SRAM access).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheGeometry {
    /// Total size in bytes (power of two).
    pub size_bytes: u32,
    /// Associativity.
    pub assoc: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u32,
}

impl CacheGeometry {
    /// A typical embedded L1D: 4 KB, 2-way, 32 B lines.
    pub fn embedded_4k() -> Self {
        CacheGeometry { size_bytes: 4096, assoc: 2, line_bytes: 32 }
    }
}

/// Timing parameters of the in-order core.
///
/// `paper_default()` reflects Table 1 plus the calibrated latencies
/// documented in DESIGN.md §4 (the paper does not print per-instruction
/// latencies beyond "Vector Arithmetic Latency = 4 cycles", so the
/// remaining values are free parameters of the reproduction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Hardware vector length VLMAX in 32-bit elements (Table 1: 8).
    pub vlen: usize,
    /// Latency of simple integer ALU ops and address moves.
    pub alu_cycles: u64,
    /// Latency of integer multiply.
    pub mul_cycles: u64,
    /// Latency of scalar single-precision float ops.
    pub fpu_cycles: u64,
    /// Latency of a vector arithmetic instruction (Table 1: 4; the unit is
    /// not pipelined, so this is also its occupancy).
    pub vector_arith_cycles: u64,
    /// Extra cycles on a taken branch (3-stage pipe refill).
    pub branch_taken_penalty: u64,
    /// Fixed issue overhead of a vector memory instruction before its
    /// first beat.
    pub vector_issue_cycles: u64,
    /// Per-element address-generation cost of the indexed (gather) load —
    /// the hardware must read the index out of the vector register and
    /// form `base + idx` for each element.
    pub gather_addr_cycles: u64,
    /// Fixed setup cost of an indexed load on top of the per-element
    /// cost: the index vector must be staged into the (non-pipelined)
    /// address generator before the first element can issue — this is the
    /// "no look-ahead" property of §2 ("the memory system can not prefetch
    /// data for future requests").
    pub gather_issue_cycles: u64,
    /// Cycles per element popped from an HHT stream window (the buffers
    /// are core-adjacent, faster than the shared SRAM).
    pub hht_beat_cycles: u64,
    /// Watchdog: abort a run after this many cycles.
    pub max_cycles: u64,
    /// HHT window-wait timeout: declare a timeout after this many
    /// *consecutive* stalled cycles on one HHT stream-window load.
    /// 0 disables the protocol (the seed behaviour: wait forever, rely on
    /// the watchdog).
    pub hht_timeout: u64,
    /// Bounded retries after an HHT window-wait timeout before the core
    /// declares the HHT failed ([`crate::core::RunError::HhtFailed`]).
    pub hht_max_retries: u32,
    /// Base backoff in cycles slept after the n-th timeout before
    /// re-polling the window; doubles each retry (exponential backoff).
    pub hht_retry_backoff: u64,
    /// Optional L1 data cache (§3.2's high-performance integration);
    /// `None` = the MCU configuration of the main results.
    pub l1d: Option<CacheGeometry>,
    /// When true, the core's memory accesses arbitrate as the *helper*
    /// (HHT) side of the shared SRAM port instead of the CPU side. Used by
    /// the programmable-HHT engine (§7 future work), whose back-end is
    /// itself a tiny core.
    pub is_helper: bool,
}

impl CoreConfig {
    /// The Table-1 configuration with calibrated free parameters.
    pub fn paper_default() -> Self {
        CoreConfig {
            vlen: 8,
            alu_cycles: 1,
            mul_cycles: 2,
            fpu_cycles: 2,
            vector_arith_cycles: 4,
            branch_taken_penalty: 1,
            vector_issue_cycles: 1,
            gather_addr_cycles: 1,
            gather_issue_cycles: 4,
            hht_beat_cycles: 1,
            max_cycles: 2_000_000_000,
            hht_timeout: 0,
            hht_max_retries: 3,
            hht_retry_backoff: 32,
            l1d: None,
            is_helper: false,
        }
    }

    /// The §7 "programmable HHT" core: a scalar RV32I helper, "even
    /// simpler than traditional 32-bit integer RISCV ... very few integer
    /// instructions, very few integer registers".
    pub fn helper_default() -> Self {
        CoreConfig { vlen: 1, is_helper: true, ..Self::paper_default() }
    }

    /// Same configuration with an L1 data cache (§3.2 ablation).
    pub fn with_l1d(mut self, geometry: CacheGeometry) -> Self {
        self.l1d = Some(geometry);
        self
    }

    /// Same configuration with a different vector width (for the Fig. 8
    /// sensitivity study; `vlen = 1` is the scalar interface).
    pub fn with_vlen(mut self, vlen: usize) -> Self {
        assert!(vlen >= 1, "VL must be at least 1");
        self.vlen = vlen;
        self
    }

    /// Same configuration with the HHT window-wait timeout protocol
    /// enabled: time out after `timeout` consecutive stalled cycles on one
    /// window read (0 disables).
    pub fn with_hht_timeout(mut self, timeout: u64) -> Self {
        self.hht_timeout = timeout;
        self
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_table1() {
        let c = CoreConfig::paper_default();
        assert_eq!(c.vlen, 8);
        assert_eq!(c.vector_arith_cycles, 4);
    }

    #[test]
    fn with_vlen() {
        let c = CoreConfig::paper_default().with_vlen(4);
        assert_eq!(c.vlen, 4);
        assert_eq!(c.vector_arith_cycles, 4);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_vlen_rejected() {
        let _ = CoreConfig::paper_default().with_vlen(0);
    }
}
