//! Cycle-stamped structured events and the per-component event bus.
//!
//! Each simulated component (CPU core, HHT, SRAM) owns an
//! `Option<Box<EventBus>>`; the simulation stays single-threaded and
//! lock-free, and the exporter merges the per-component streams by cycle at
//! the end of a run. With the sink disabled a component pays exactly one
//! `Option` branch per event site.

use crate::{RingBuffer, StallCause};
use serde::{Deserialize, Serialize};

/// Per-component ring-buffer eviction counters for one run (or one fabric
/// tile). Every observability sink is bounded, so a long run can overflow
/// its rings; these counters make the truncation *detectable* in the
/// exported metrics snapshot instead of silently shortening the timeline.
/// All zero when tracing is off or nothing was evicted.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObsDrops {
    /// Events evicted from the CPU core's bus.
    pub core_events: u64,
    /// Instruction-trace entries evicted from the core's trace ring.
    pub instr_trace: u64,
    /// Events evicted from the HHT's bus.
    pub hht_events: u64,
    /// Events evicted from the memory port's per-tile bus.
    pub mem_events: u64,
    /// Events evicted from the tile's fault-timeline bus.
    pub fault_events: u64,
}

impl ObsDrops {
    /// Total evicted records across every sink.
    pub fn total(&self) -> u64 {
        let ObsDrops { core_events, instr_trace, hht_events, mem_events, fault_events } = *self;
        core_events + instr_trace + hht_events + mem_events + fault_events
    }

    /// Fold another tile's drop counters into this one.
    pub fn add(&mut self, other: &ObsDrops) {
        let ObsDrops { core_events, instr_trace, hht_events, mem_events, fault_events } = *other;
        self.core_events += core_events;
        self.instr_trace += instr_trace;
        self.hht_events += hht_events;
        self.mem_events += mem_events;
        self.fault_events += fault_events;
    }
}

/// One span of simulated cycles the event-driven scheduler fast-forwarded
/// over (half-open: `[start, end)`). Collected on a dedicated scheduler
/// sink — never on the per-tile event buses, whose streams must stay
/// bit-identical between the per-cycle and cycle-skipping schedulers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SkipSpan {
    /// First skipped cycle.
    pub start: u64,
    /// First cycle after the span (the scheduler's landing cycle).
    pub end: u64,
}

impl SkipSpan {
    /// Number of cycles the span covered.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// True for a degenerate empty span (never produced by the scheduler).
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// Timeline track an event belongs to — one per hardware unit, rendered as
/// one row ("thread") in the Chrome trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Track {
    /// CPU pipeline (stall slices).
    CpuPipe,
    /// HHT back-end engine (busy slices, output stalls).
    HhtBackend,
    /// SRAM port (arbitration grants/conflicts).
    SramPort,
    /// CPU-side primary element buffer occupancy.
    BufferPrimary,
    /// CPU-side secondary element buffer occupancy.
    BufferSecondary,
    /// CPU-side counts (chunk header) buffer occupancy.
    BufferCounts,
    /// Fault-injection timeline: injected faults, detections (parity,
    /// decode, timeout) and recovery actions (retries, fallback).
    Fault,
    /// Memory-system timeline of the DRAM-class backend: row-buffer
    /// transitions ([`EventKind::RowOpen`]) and in-flight transaction
    /// occupancy samples ([`EventKind::BufferLevel`]). Silent on flat
    /// SRAM-class backends, so their event streams are unchanged.
    MemQueue,
}

impl Track {
    pub const ALL: [Track; 8] = [
        Track::CpuPipe,
        Track::HhtBackend,
        Track::SramPort,
        Track::BufferPrimary,
        Track::BufferSecondary,
        Track::BufferCounts,
        Track::Fault,
        Track::MemQueue,
    ];

    /// Human-readable track name (Chrome trace thread name).
    pub fn name(self) -> &'static str {
        match self {
            Track::CpuPipe => "CPU pipe",
            Track::HhtBackend => "HHT BE",
            Track::SramPort => "SRAM port",
            Track::BufferPrimary => "buf primary",
            Track::BufferSecondary => "buf secondary",
            Track::BufferCounts => "buf counts",
            Track::Fault => "faults",
            Track::MemQueue => "mem queue",
        }
    }

    /// Stable thread id for the Chrome trace (1-based, display order).
    /// 8 and 9 are reserved for the host-side scheduler and fault-domain
    /// lanes (`chrome::SCHED_TID`/`chrome::DOMAIN_TID`), which live outside
    /// the [`Track`] set.
    pub fn tid(self) -> u32 {
        match self {
            Track::CpuPipe => 1,
            Track::HhtBackend => 2,
            Track::SramPort => 3,
            Track::BufferPrimary => 4,
            Track::BufferSecondary => 5,
            Track::BufferCounts => 6,
            Track::Fault => 7,
            Track::MemQueue => 10,
        }
    }
}

/// What happened on a track at a given cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A stall interval opened (closed by the matching `StallEnd`).
    StallBegin(StallCause),
    /// The stall interval for `StallCause` closed.
    StallEnd(StallCause),
    /// A named busy interval opened (e.g. a back-end stage).
    SliceBegin(&'static str),
    /// The busy interval `&str` closed.
    SliceEnd(&'static str),
    /// Port arbitration granted to `requester` this cycle.
    ArbGrant { requester: &'static str },
    /// Port arbitration conflict: `loser` retried while the port was held.
    ArbConflict { loser: &'static str },
    /// Buffer occupancy sample (counter track).
    BufferLevel { level: u32 },
    /// A fault-plan event was injected into the machine (`what` is the
    /// fault-kind label, e.g. `"drop_response"`).
    FaultInject { what: &'static str },
    /// A fault was detected (`"buffer_parity"`, `"mmr_decode"`,
    /// `"hht_timeout"`, `"hht_failed"`).
    FaultDetect { what: &'static str },
    /// A recovery action was taken (`"hht_retry"`, `"software_fallback"`).
    Recovery { what: &'static str },
    /// The fabric's fault-domain policy quarantined this tile after
    /// `retries` failed attempts (0 when a fatal fault skipped the retry
    /// ladder entirely).
    Quarantine { retries: u32 },
    /// This tile's unfinished row shard (`rows` rows) was failed over to
    /// the surviving tiles.
    Failover { rows: u32 },
    /// The DRAM backend opened a new row on `bank` (the previous open row,
    /// if any, was precharged): a row-buffer miss at this cycle's grant.
    RowOpen { bank: u32 },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    pub cycle: u64,
    pub track: Track,
    pub kind: EventKind,
}

/// Bounded, optionally sampling sink for [`Event`]s.
#[derive(Debug, Clone)]
pub struct EventBus {
    events: RingBuffer<Event>,
    /// Record only every Nth `BufferLevel` sample (1 = keep all).
    /// Begin/end pairs are never sampled out, so slices stay balanced.
    sample_every: u64,
}

impl EventBus {
    pub fn new(capacity: usize) -> Self {
        EventBus { events: RingBuffer::new(capacity), sample_every: 1 }
    }

    pub fn with_sampling(capacity: usize, sample_every: u64) -> Self {
        EventBus { events: RingBuffer::new(capacity), sample_every: sample_every.max(1) }
    }

    #[inline]
    pub fn emit(&mut self, cycle: u64, track: Track, kind: EventKind) {
        if matches!(kind, EventKind::BufferLevel { .. }) && !cycle.is_multiple_of(self.sample_every)
        {
            return;
        }
        self.events.push(Event { cycle, track, kind });
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted by the ring bound.
    pub fn dropped(&self) -> u64 {
        self.events.dropped()
    }

    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Move the retained window out of the bus.
    pub fn take_events(&mut self) -> Vec<Event> {
        let out: Vec<Event> = self.events.iter().copied().collect();
        self.events.clear();
        out
    }
}

/// Merge per-component event streams into one cycle-ordered timeline.
///
/// Each input stream must itself be cycle-ordered (true for any stream a
/// stepped component emitted). Ties are broken by track, then input order,
/// so the merge is fully deterministic.
pub fn merge_events(streams: Vec<Vec<Event>>) -> Vec<Event> {
    let mut all: Vec<Event> = streams.into_iter().flatten().collect();
    all.sort_by_key(|e| (e.cycle, e.track));
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_drops_only_counter_events() {
        let mut bus = EventBus::with_sampling(64, 4);
        for cycle in 0..8 {
            bus.emit(cycle, Track::BufferPrimary, EventKind::BufferLevel { level: 1 });
            bus.emit(cycle, Track::CpuPipe, EventKind::StallBegin(StallCause::HhtWindowEmpty));
        }
        let counters =
            bus.iter().filter(|e| matches!(e.kind, EventKind::BufferLevel { .. })).count();
        let stalls = bus.iter().filter(|e| matches!(e.kind, EventKind::StallBegin(_))).count();
        assert_eq!(counters, 2); // cycles 0 and 4
        assert_eq!(stalls, 8);
    }

    #[test]
    fn merge_is_cycle_ordered_and_deterministic() {
        let a = vec![
            Event {
                cycle: 2,
                track: Track::CpuPipe,
                kind: EventKind::StallEnd(StallCause::LoadLatency),
            },
            Event {
                cycle: 5,
                track: Track::CpuPipe,
                kind: EventKind::StallBegin(StallCause::LoadLatency),
            },
        ];
        let b = vec![
            Event {
                cycle: 2,
                track: Track::SramPort,
                kind: EventKind::ArbGrant { requester: "cpu" },
            },
            Event { cycle: 3, track: Track::HhtBackend, kind: EventKind::SliceBegin("gather") },
        ];
        let merged = merge_events(vec![a.clone(), b.clone()]);
        let cycles: Vec<u64> = merged.iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, [2, 2, 3, 5]);
        assert_eq!(merged[0].track, Track::CpuPipe);
        assert_eq!(merged, merge_events(vec![a, b]));
    }

    #[test]
    fn bus_is_bounded() {
        let mut bus = EventBus::new(4);
        for cycle in 0..10 {
            bus.emit(cycle, Track::SramPort, EventKind::ArbGrant { requester: "hht" });
        }
        assert_eq!(bus.len(), 4);
        assert_eq!(bus.dropped(), 6);
        assert_eq!(bus.iter().next().unwrap().cycle, 6);
    }
}
