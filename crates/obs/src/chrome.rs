//! Chrome trace-event / Perfetto JSON exporter.
//!
//! Converts a merged [`Event`] stream into the Trace Event Format
//! (`chrome://tracing`, <https://ui.perfetto.dev>): one "thread" per
//! [`Track`], duration slices (`B`/`E`) for stalls and stages, instant
//! events (`i`) for arbitration, and counter events (`C`) for buffer
//! occupancy. Timestamps are simulated cycles. Output is rendered through
//! the deterministic vendored serde_json, so identical runs export
//! byte-identical JSON (relied on by the golden-file test).
//!
//! Two entry points: [`chrome_trace_json`] renders one event stream as a
//! single process (pid 0, the single-tile system), and
//! [`chrome_trace_json_tiles`] renders one stream *per fabric tile* as one
//! process per tile ("tile N" lanes side by side in the viewer).

use crate::{Event, EventKind, SkipSpan, Track};
use serde::{Number, Value};

/// Thread id of the per-tile scheduler lane (one past the [`Track`] tids).
/// The lane is emitted only by the `_sched` exporters: cycle-skip spans
/// exist only under the event-driven scheduler, so they live outside the
/// [`Track`] set whose streams are compared across scheduler modes.
const SCHED_TID: u32 = 8;

/// Thread id of the per-tile fault-domain lane (one past the scheduler
/// lane). Emitted only by the `_fault_domains` exporters, and only for
/// tiles that were actually quarantined, so a healthy run's export stays
/// byte-identical to the plain tile export.
const DOMAIN_TID: u32 = 9;

fn base_event(name: &str, ph: &str, pid: u64, tid: u32) -> Vec<(String, Value)> {
    vec![
        ("name".into(), Value::Str(name.into())),
        ("ph".into(), Value::Str(ph.into())),
        ("pid".into(), Value::Num(Number::U(pid))),
        ("tid".into(), Value::Num(Number::U(tid as u64))),
    ]
}

fn with_ts(mut fields: Vec<(String, Value)>, cycle: u64) -> Vec<(String, Value)> {
    fields.push(("ts".into(), Value::Num(Number::U(cycle))));
    fields
}

/// Append one process worth of trace records: naming metadata (in fixed
/// track order), the event stream, and auto-closes for slices left open at
/// the final cycle.
fn emit_process(trace_events: &mut Vec<Value>, pid: u64, process_name: &str, events: &[Event]) {
    let mut process_meta = base_event("process_name", "M", pid, 0);
    process_meta
        .push(("args".into(), Value::Map(vec![("name".into(), Value::Str(process_name.into()))])));
    trace_events.push(Value::Map(process_meta));
    for track in Track::ALL {
        let mut meta = base_event("thread_name", "M", pid, track.tid());
        meta.push((
            "args".into(),
            Value::Map(vec![("name".into(), Value::Str(track.name().into()))]),
        ));
        trace_events.push(Value::Map(meta));
    }

    // Track open B slices per (tid, name) so the exported trace is always
    // balanced even if the run ended mid-stall.
    let mut open: Vec<(u32, String)> = Vec::new();
    let mut last_cycle = 0u64;

    for event in events {
        last_cycle = last_cycle.max(event.cycle);
        let tid = event.track.tid();
        match event.kind {
            EventKind::StallBegin(cause) => {
                let name = format!("stall:{}", cause.label());
                trace_events.push(slice(&name, "B", pid, tid, event.cycle, "stall"));
                open.push((tid, name));
            }
            EventKind::StallEnd(cause) => {
                let name = format!("stall:{}", cause.label());
                open.retain(|(t, n)| !(*t == tid && *n == name));
                trace_events.push(slice(&name, "E", pid, tid, event.cycle, "stall"));
            }
            EventKind::SliceBegin(name) => {
                trace_events.push(slice(name, "B", pid, tid, event.cycle, "stage"));
                open.push((tid, name.to_string()));
            }
            EventKind::SliceEnd(name) => {
                open.retain(|(t, n)| !(*t == tid && n == name));
                trace_events.push(slice(name, "E", pid, tid, event.cycle, "stage"));
            }
            EventKind::ArbGrant { requester } => {
                let mut fields =
                    with_ts(base_event(&format!("grant:{requester}"), "i", pid, tid), event.cycle);
                fields.push(("cat".into(), Value::Str("arb".into())));
                fields.push(("s".into(), Value::Str("t".into())));
                trace_events.push(Value::Map(fields));
            }
            EventKind::ArbConflict { loser } => {
                let mut fields =
                    with_ts(base_event(&format!("conflict:{loser}"), "i", pid, tid), event.cycle);
                fields.push(("cat".into(), Value::Str("arb".into())));
                fields.push(("s".into(), Value::Str("t".into())));
                trace_events.push(Value::Map(fields));
            }
            EventKind::FaultInject { what } => {
                trace_events.push(instant(
                    &format!("fault:{what}"),
                    pid,
                    tid,
                    event.cycle,
                    "fault",
                ));
            }
            EventKind::FaultDetect { what } => {
                trace_events.push(instant(
                    &format!("detect:{what}"),
                    pid,
                    tid,
                    event.cycle,
                    "fault",
                ));
            }
            EventKind::Recovery { what } => {
                trace_events.push(instant(
                    &format!("recover:{what}"),
                    pid,
                    tid,
                    event.cycle,
                    "fault",
                ));
            }
            EventKind::Quarantine { retries } => {
                trace_events.push(instant(
                    &format!("quarantine:{retries}retries"),
                    pid,
                    tid,
                    event.cycle,
                    "fault",
                ));
            }
            EventKind::Failover { rows } => {
                trace_events.push(instant(
                    &format!("failover:{rows}rows"),
                    pid,
                    tid,
                    event.cycle,
                    "fault",
                ));
            }
            EventKind::RowOpen { bank } => {
                trace_events.push(instant(
                    &format!("row_open:bank{bank}"),
                    pid,
                    tid,
                    event.cycle,
                    "mem",
                ));
            }
            EventKind::BufferLevel { level } => {
                let mut fields =
                    with_ts(base_event(event.track.name(), "C", pid, tid), event.cycle);
                fields.push((
                    "args".into(),
                    Value::Map(vec![("level".into(), Value::Num(Number::U(level as u64)))]),
                ));
                trace_events.push(Value::Map(fields));
            }
        }
    }

    // Close any dangling slices at the final cycle.
    for (tid, name) in open {
        trace_events.push(slice(&name, "E", pid, tid, last_cycle, "stall"));
    }
}

/// Append one process's scheduler lane: a "cycle-skip" thread carrying one
/// `B`/`E` slice per fast-forwarded span plus a counter track stepping to
/// the span length at its start and back to zero at its end.
fn emit_sched_lane(trace_events: &mut Vec<Value>, pid: u64, spans: &[SkipSpan]) {
    let mut meta = base_event("thread_name", "M", pid, SCHED_TID);
    meta.push(("args".into(), Value::Map(vec![("name".into(), Value::Str("cycle-skip".into()))])));
    trace_events.push(Value::Map(meta));
    for s in spans {
        trace_events.push(slice("skip", "B", pid, SCHED_TID, s.start, "sched"));
        trace_events.push(counter("skipped", pid, SCHED_TID, s.start, s.len()));
        trace_events.push(counter("skipped", pid, SCHED_TID, s.end, 0));
        trace_events.push(slice("skip", "E", pid, SCHED_TID, s.end, "sched"));
    }
}

fn counter(name: &str, pid: u64, tid: u32, cycle: u64, value: u64) -> Value {
    let mut fields = with_ts(base_event(name, "C", pid, tid), cycle);
    fields.push(("args".into(), Value::Map(vec![("value".into(), Value::Num(Number::U(value)))])));
    Value::Map(fields)
}

fn wrap(trace_events: Vec<Value>) -> Value {
    Value::Map(vec![
        ("displayTimeUnit".into(), Value::Str("ns".into())),
        (
            "otherData".into(),
            Value::Map(vec![("timestampUnit".into(), Value::Str("cycle".into()))]),
        ),
        ("traceEvents".into(), Value::Seq(trace_events)),
    ])
}

/// Build the trace as a serde [`Value`] tree (single process, pid 0).
pub fn chrome_trace_value(events: &[Event]) -> Value {
    let mut trace_events: Vec<Value> = Vec::new();
    emit_process(&mut trace_events, 0, "hht simulation", events);
    wrap(trace_events)
}

/// Build a multi-tile trace: one process per tile (`pid` = tile index,
/// named `tile N`), each with the full per-[`Track`] thread set, so an
/// N-tile fabric run renders as N side-by-side lanes.
pub fn chrome_trace_value_tiles(tiles: &[Vec<Event>]) -> Value {
    let mut trace_events: Vec<Value> = Vec::new();
    for (t, events) in tiles.iter().enumerate() {
        emit_process(&mut trace_events, t as u64, &format!("tile {t}"), events);
    }
    wrap(trace_events)
}

/// [`chrome_trace_value_tiles`] plus a scheduler lane per tile: the fabric
/// skips all tiles together, so every tile's lane carries the same
/// cycle-skip spans (rendered as slices and a counter track). With `spans`
/// empty the output is identical to the plain tile export.
pub fn chrome_trace_value_tiles_sched(tiles: &[Vec<Event>], spans: &[SkipSpan]) -> Value {
    let mut trace_events: Vec<Value> = Vec::new();
    for (t, events) in tiles.iter().enumerate() {
        emit_process(&mut trace_events, t as u64, &format!("tile {t}"), events);
        if !spans.is_empty() {
            emit_sched_lane(&mut trace_events, t as u64, spans);
        }
    }
    wrap(trace_events)
}

/// Render a multi-tile trace with per-tile scheduler lanes as a compact
/// JSON string (byte-stable per event stream + span list).
pub fn chrome_trace_json_tiles_sched(tiles: &[Vec<Event>], spans: &[SkipSpan]) -> String {
    serde_json::to_string(&chrome_trace_value_tiles_sched(tiles, spans))
        .expect("trace values are always finite")
}

/// Append one tile's fault-domain lane: a "fault-domain" thread carrying a
/// `B`/`E` "quarantined" slice per span the tile spent quarantined.
fn emit_domain_lane(trace_events: &mut Vec<Value>, pid: u64, spans: &[SkipSpan]) {
    let mut meta = base_event("thread_name", "M", pid, DOMAIN_TID);
    meta.push((
        "args".into(),
        Value::Map(vec![("name".into(), Value::Str("fault-domain".into()))]),
    ));
    trace_events.push(Value::Map(meta));
    for s in spans {
        trace_events.push(slice("quarantined", "B", pid, DOMAIN_TID, s.start, "fault"));
        trace_events.push(slice("quarantined", "E", pid, DOMAIN_TID, s.end, "fault"));
    }
}

/// [`chrome_trace_value_tiles`] plus a fault-domain lane per quarantined
/// tile: `domains[t]` is the list of spans tile `t` spent quarantined
/// (normally one span, from the quarantine cycle to the end of the run).
/// Tiles with no spans get no lane, so a healthy run's export is identical
/// to the plain tile export.
pub fn chrome_trace_value_tiles_fault_domains(
    tiles: &[Vec<Event>],
    domains: &[Vec<SkipSpan>],
) -> Value {
    let mut trace_events: Vec<Value> = Vec::new();
    for (t, events) in tiles.iter().enumerate() {
        emit_process(&mut trace_events, t as u64, &format!("tile {t}"), events);
        if let Some(spans) = domains.get(t) {
            if !spans.is_empty() {
                emit_domain_lane(&mut trace_events, t as u64, spans);
            }
        }
    }
    wrap(trace_events)
}

/// Render a multi-tile trace with per-tile fault-domain lanes as a compact
/// JSON string (byte-stable per event stream + domain-span list).
pub fn chrome_trace_json_tiles_fault_domains(
    tiles: &[Vec<Event>],
    domains: &[Vec<SkipSpan>],
) -> String {
    serde_json::to_string(&chrome_trace_value_tiles_fault_domains(tiles, domains))
        .expect("trace values are always finite")
}

fn slice(name: &str, ph: &str, pid: u64, tid: u32, cycle: u64, cat: &str) -> Value {
    let mut fields = with_ts(base_event(name, ph, pid, tid), cycle);
    fields.push(("cat".into(), Value::Str(cat.into())));
    Value::Map(fields)
}

fn instant(name: &str, pid: u64, tid: u32, cycle: u64, cat: &str) -> Value {
    let mut fields = with_ts(base_event(name, "i", pid, tid), cycle);
    fields.push(("cat".into(), Value::Str(cat.into())));
    fields.push(("s".into(), Value::Str("t".into())));
    Value::Map(fields)
}

/// Render the trace as a compact JSON string (byte-stable per event stream).
pub fn chrome_trace_json(events: &[Event]) -> String {
    serde_json::to_string(&chrome_trace_value(events)).expect("trace values are always finite")
}

/// Render a multi-tile trace (one process per tile) as a compact JSON
/// string (byte-stable per event stream).
pub fn chrome_trace_json_tiles(tiles: &[Vec<Event>]) -> String {
    serde_json::to_string(&chrome_trace_value_tiles(tiles)).expect("trace values are always finite")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StallCause;

    fn sample_events() -> Vec<Event> {
        vec![
            Event {
                cycle: 1,
                track: Track::CpuPipe,
                kind: EventKind::StallBegin(StallCause::HhtWindowEmpty),
            },
            Event {
                cycle: 4,
                track: Track::CpuPipe,
                kind: EventKind::StallEnd(StallCause::HhtWindowEmpty),
            },
            Event {
                cycle: 2,
                track: Track::SramPort,
                kind: EventKind::ArbGrant { requester: "hht" },
            },
            Event {
                cycle: 3,
                track: Track::BufferPrimary,
                kind: EventKind::BufferLevel { level: 5 },
            },
            Event { cycle: 5, track: Track::HhtBackend, kind: EventKind::SliceBegin("gather") },
            Event {
                cycle: 6,
                track: Track::Fault,
                kind: EventKind::FaultInject { what: "drop_response" },
            },
        ]
    }

    #[test]
    fn export_is_byte_stable() {
        assert_eq!(chrome_trace_json(&sample_events()), chrome_trace_json(&sample_events()));
    }

    #[test]
    fn export_names_all_tracks_and_closes_dangling_slices() {
        let json = chrome_trace_json(&sample_events());
        for track in Track::ALL {
            assert!(json.contains(track.name()), "missing track {:?}", track);
        }
        // The dangling "gather" B-slice is closed at the last cycle.
        let begins = json.matches("\"ph\":\"B\"").count();
        let ends = json.matches("\"ph\":\"E\"").count();
        assert_eq!(begins, ends);
        assert!(json.contains("\"stall:hht_window_empty\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"fault:drop_response\""));
    }

    #[test]
    fn export_parses_back_as_json() {
        let json = chrome_trace_json(&sample_events());
        let v: Value = serde_json::from_str(&json).unwrap();
        let events = v.get("traceEvents").and_then(Value::as_seq).unwrap();
        // 1 process + 8 thread metadata records + 6 events + 1 auto-close.
        assert_eq!(events.len(), 16);
    }

    #[test]
    fn tile_export_gives_each_tile_its_own_pid() {
        let tiles = vec![sample_events(), sample_events()];
        let json = chrome_trace_json_tiles(&tiles);
        assert!(json.contains("\"tile 0\""));
        assert!(json.contains("\"tile 1\""));
        assert!(json.contains("\"pid\":1"));
        let v: Value = serde_json::from_str(&json).unwrap();
        let events = v.get("traceEvents").and_then(Value::as_seq).unwrap();
        // Two full processes worth of records.
        assert_eq!(events.len(), 32);
    }

    #[test]
    fn sched_lane_is_additive_and_balanced() {
        let tiles = vec![sample_events()];
        let spans = [SkipSpan { start: 2, end: 10 }, SkipSpan { start: 12, end: 15 }];
        // No spans: byte-identical to the plain tile export.
        assert_eq!(chrome_trace_json_tiles_sched(&tiles, &[]), chrome_trace_json_tiles(&tiles));
        let json = chrome_trace_json_tiles_sched(&tiles, &spans);
        assert!(json.contains("\"cycle-skip\""));
        assert_eq!(json.matches("\"skipped\"").count(), 4); // 2 counter pairs
        assert_eq!(json.matches("\"ph\":\"B\"").count(), json.matches("\"ph\":\"E\"").count());
    }

    #[test]
    fn fault_domain_lane_is_additive_and_balanced() {
        let tiles = vec![sample_events(), sample_events()];
        // No quarantined tiles: byte-identical to the plain tile export.
        assert_eq!(
            chrome_trace_json_tiles_fault_domains(&tiles, &[Vec::new(), Vec::new()]),
            chrome_trace_json_tiles(&tiles)
        );
        // Tile 1 quarantined from cycle 40 to 100: one lane, one slice.
        let domains = vec![Vec::new(), vec![SkipSpan { start: 40, end: 100 }]];
        let json = chrome_trace_json_tiles_fault_domains(&tiles, &domains);
        assert_eq!(json.matches("\"fault-domain\"").count(), 1);
        assert_eq!(json.matches("\"quarantined\"").count(), 2); // one B/E pair
        assert_eq!(json.matches("\"ph\":\"B\"").count(), json.matches("\"ph\":\"E\"").count());
    }

    #[test]
    fn quarantine_and_failover_events_render_as_fault_instants() {
        let events = vec![
            Event { cycle: 7, track: Track::Fault, kind: EventKind::Failover { rows: 12 } },
            Event { cycle: 9, track: Track::Fault, kind: EventKind::Quarantine { retries: 2 } },
        ];
        let json = chrome_trace_json(&events);
        assert!(json.contains("\"failover:12rows\""));
        assert!(json.contains("\"quarantine:2retries\""));
    }

    #[test]
    fn mem_queue_events_render_on_their_own_track() {
        let events = vec![
            Event { cycle: 3, track: Track::MemQueue, kind: EventKind::RowOpen { bank: 2 } },
            Event { cycle: 3, track: Track::MemQueue, kind: EventKind::BufferLevel { level: 4 } },
        ];
        let json = chrome_trace_json(&events);
        assert!(json.contains("\"row_open:bank2\""));
        assert!(json.contains("\"mem queue\""));
        assert!(json.contains("\"tid\":10"));
    }

    #[test]
    fn single_tile_export_matches_single_process_export_modulo_name() {
        // The per-tile exporter with one tile differs from the flat
        // exporter only in the process name.
        let flat = chrome_trace_json(&sample_events());
        let tiled = chrome_trace_json_tiles(&[sample_events()]);
        assert_eq!(tiled.replace("tile 0", "hht simulation"), flat);
    }
}
