//! Chrome trace-event / Perfetto JSON exporter.
//!
//! Converts a merged [`Event`] stream into the Trace Event Format
//! (`chrome://tracing`, <https://ui.perfetto.dev>): one "thread" per
//! [`Track`], duration slices (`B`/`E`) for stalls and stages, instant
//! events (`i`) for arbitration, and counter events (`C`) for buffer
//! occupancy. Timestamps are simulated cycles. Output is rendered through
//! the deterministic vendored serde_json, so identical runs export
//! byte-identical JSON (relied on by the golden-file test).

use crate::{Event, EventKind, Track};
use serde::{Number, Value};

const PID: u64 = 0;

fn base_event(name: &str, ph: &str, tid: u32) -> Vec<(String, Value)> {
    vec![
        ("name".into(), Value::Str(name.into())),
        ("ph".into(), Value::Str(ph.into())),
        ("pid".into(), Value::Num(Number::U(PID))),
        ("tid".into(), Value::Num(Number::U(tid as u64))),
    ]
}

fn with_ts(mut fields: Vec<(String, Value)>, cycle: u64) -> Vec<(String, Value)> {
    fields.push(("ts".into(), Value::Num(Number::U(cycle))));
    fields
}

/// Build the trace as a serde [`Value`] tree.
pub fn chrome_trace_value(events: &[Event]) -> Value {
    let mut trace_events: Vec<Value> = Vec::new();

    // Process + thread naming metadata first, in fixed track order.
    let mut process_meta = base_event("process_name", "M", 0);
    process_meta.push((
        "args".into(),
        Value::Map(vec![("name".into(), Value::Str("hht simulation".into()))]),
    ));
    trace_events.push(Value::Map(process_meta));
    for track in Track::ALL {
        let mut meta = base_event("thread_name", "M", track.tid());
        meta.push((
            "args".into(),
            Value::Map(vec![("name".into(), Value::Str(track.name().into()))]),
        ));
        trace_events.push(Value::Map(meta));
    }

    // Track open B slices per (tid, name) so the exported trace is always
    // balanced even if the run ended mid-stall.
    let mut open: Vec<(u32, String)> = Vec::new();
    let mut last_cycle = 0u64;

    for event in events {
        last_cycle = last_cycle.max(event.cycle);
        let tid = event.track.tid();
        match event.kind {
            EventKind::StallBegin(cause) => {
                let name = format!("stall:{}", cause.label());
                trace_events.push(slice(&name, "B", tid, event.cycle, "stall"));
                open.push((tid, name));
            }
            EventKind::StallEnd(cause) => {
                let name = format!("stall:{}", cause.label());
                open.retain(|(t, n)| !(*t == tid && *n == name));
                trace_events.push(slice(&name, "E", tid, event.cycle, "stall"));
            }
            EventKind::SliceBegin(name) => {
                trace_events.push(slice(name, "B", tid, event.cycle, "stage"));
                open.push((tid, name.to_string()));
            }
            EventKind::SliceEnd(name) => {
                open.retain(|(t, n)| !(*t == tid && n == name));
                trace_events.push(slice(name, "E", tid, event.cycle, "stage"));
            }
            EventKind::ArbGrant { requester } => {
                let mut fields =
                    with_ts(base_event(&format!("grant:{requester}"), "i", tid), event.cycle);
                fields.push(("cat".into(), Value::Str("arb".into())));
                fields.push(("s".into(), Value::Str("t".into())));
                trace_events.push(Value::Map(fields));
            }
            EventKind::ArbConflict { loser } => {
                let mut fields =
                    with_ts(base_event(&format!("conflict:{loser}"), "i", tid), event.cycle);
                fields.push(("cat".into(), Value::Str("arb".into())));
                fields.push(("s".into(), Value::Str("t".into())));
                trace_events.push(Value::Map(fields));
            }
            EventKind::FaultInject { what } => {
                trace_events.push(instant(&format!("fault:{what}"), tid, event.cycle, "fault"));
            }
            EventKind::FaultDetect { what } => {
                trace_events.push(instant(&format!("detect:{what}"), tid, event.cycle, "fault"));
            }
            EventKind::Recovery { what } => {
                trace_events.push(instant(&format!("recover:{what}"), tid, event.cycle, "fault"));
            }
            EventKind::BufferLevel { level } => {
                let mut fields = with_ts(base_event(event.track.name(), "C", tid), event.cycle);
                fields.push((
                    "args".into(),
                    Value::Map(vec![("level".into(), Value::Num(Number::U(level as u64)))]),
                ));
                trace_events.push(Value::Map(fields));
            }
        }
    }

    // Close any dangling slices at the final cycle.
    for (tid, name) in open {
        trace_events.push(slice(&name, "E", tid, last_cycle, "stall"));
    }

    Value::Map(vec![
        ("displayTimeUnit".into(), Value::Str("ns".into())),
        (
            "otherData".into(),
            Value::Map(vec![("timestampUnit".into(), Value::Str("cycle".into()))]),
        ),
        ("traceEvents".into(), Value::Seq(trace_events)),
    ])
}

fn slice(name: &str, ph: &str, tid: u32, cycle: u64, cat: &str) -> Value {
    let mut fields = with_ts(base_event(name, ph, tid), cycle);
    fields.push(("cat".into(), Value::Str(cat.into())));
    Value::Map(fields)
}

fn instant(name: &str, tid: u32, cycle: u64, cat: &str) -> Value {
    let mut fields = with_ts(base_event(name, "i", tid), cycle);
    fields.push(("cat".into(), Value::Str(cat.into())));
    fields.push(("s".into(), Value::Str("t".into())));
    Value::Map(fields)
}

/// Render the trace as a compact JSON string (byte-stable per event stream).
pub fn chrome_trace_json(events: &[Event]) -> String {
    serde_json::to_string(&chrome_trace_value(events)).expect("trace values are always finite")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StallCause;

    fn sample_events() -> Vec<Event> {
        vec![
            Event {
                cycle: 1,
                track: Track::CpuPipe,
                kind: EventKind::StallBegin(StallCause::HhtWindowEmpty),
            },
            Event {
                cycle: 4,
                track: Track::CpuPipe,
                kind: EventKind::StallEnd(StallCause::HhtWindowEmpty),
            },
            Event {
                cycle: 2,
                track: Track::SramPort,
                kind: EventKind::ArbGrant { requester: "hht" },
            },
            Event {
                cycle: 3,
                track: Track::BufferPrimary,
                kind: EventKind::BufferLevel { level: 5 },
            },
            Event { cycle: 5, track: Track::HhtBackend, kind: EventKind::SliceBegin("gather") },
            Event {
                cycle: 6,
                track: Track::Fault,
                kind: EventKind::FaultInject { what: "drop_response" },
            },
        ]
    }

    #[test]
    fn export_is_byte_stable() {
        assert_eq!(chrome_trace_json(&sample_events()), chrome_trace_json(&sample_events()));
    }

    #[test]
    fn export_names_all_tracks_and_closes_dangling_slices() {
        let json = chrome_trace_json(&sample_events());
        for track in Track::ALL {
            assert!(json.contains(track.name()), "missing track {:?}", track);
        }
        // The dangling "gather" B-slice is closed at the last cycle.
        let begins = json.matches("\"ph\":\"B\"").count();
        let ends = json.matches("\"ph\":\"E\"").count();
        assert_eq!(begins, ends);
        assert!(json.contains("\"stall:hht_window_empty\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"fault:drop_response\""));
    }

    #[test]
    fn export_parses_back_as_json() {
        let json = chrome_trace_json(&sample_events());
        let v: Value = serde_json::from_str(&json).unwrap();
        let events = v.get("traceEvents").and_then(Value::as_seq).unwrap();
        // 1 process + 7 thread metadata records + 6 events + 1 auto-close.
        assert_eq!(events.len(), 15);
    }
}
