//! Cycle-domain observability for the HHT simulator.
//!
//! The paper's argument (§2, Fig. 6/7) is about *where cycles go* —
//! CPU-waiting-for-HHT, HHT-waiting-for-CPU, arbitration losses. This crate
//! provides the infrastructure every simulated component uses to make that
//! attribution first-class:
//!
//! - [`StallCause`] / [`StallBreakdown`]: a per-cause stall-cycle histogram
//!   whose buckets sum exactly to the coarse wait counters the stats structs
//!   already expose (making the figures self-auditing);
//! - [`RingBuffer`]: a bounded sink replacing unbounded trace `Vec`s;
//! - [`EventBus`] / [`Event`]: a cycle-stamped structured-event stream with
//!   one [`Track`] per hardware unit, cheap enough to leave compiled in
//!   (`Option`-gated: one branch per event site when disabled);
//! - [`chrome`]: a Chrome trace-event / Perfetto JSON exporter so any run
//!   renders as an interactive timeline.
//!
//! The crate is deliberately leaf-level: it depends only on the (vendored)
//! serde stack, so `hht-sim`, `hht-mem`, `hht-accel`, and `hht-system` can
//! all emit into it without dependency cycles.

pub mod chrome;
mod event;
mod ring;

pub use event::{merge_events, Event, EventBus, EventKind, ObsDrops, SkipSpan, Track};
pub use ring::RingBuffer;

use serde::{Deserialize, Serialize};

/// Why a unit spent a cycle stalled. Core-side causes attribute the CPU's
/// wait counters; [`StallCause::OutputFull`] attributes the HHT back-end's.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StallCause {
    /// CPU blocked on scalar/vector load latency (`busy_until` from a
    /// memory instruction).
    LoadLatency,
    /// CPU blocked on the vector unit finishing a prior vector op.
    VectorBusy,
    /// CPU read an HHT window element but the buffer had none ready.
    HhtWindowEmpty,
    /// CPU read an HHT chunk header (counts FIFO) before it was produced.
    HhtHeaderWait,
    /// CPU lost SRAM port arbitration to the HHT for a cycle.
    ArbitrationLoss,
    /// CPU refilling the pipeline after a taken branch.
    BranchRefill,
    /// HHT back-end stalled because a CPU-side buffer was full
    /// (HHT-waiting-for-CPU in Fig. 7).
    OutputFull,
    /// CPU sleeping out an HHT retry backoff window after a window-wait
    /// timeout (fault-recovery protocol).
    HhtRetryBackoff,
}

impl StallCause {
    /// Every cause, in display order.
    pub const ALL: [StallCause; 8] = [
        StallCause::LoadLatency,
        StallCause::VectorBusy,
        StallCause::HhtWindowEmpty,
        StallCause::HhtHeaderWait,
        StallCause::ArbitrationLoss,
        StallCause::BranchRefill,
        StallCause::OutputFull,
        StallCause::HhtRetryBackoff,
    ];

    /// Stable snake_case label used in trace names and metrics keys.
    pub fn label(self) -> &'static str {
        match self {
            StallCause::LoadLatency => "load_latency",
            StallCause::VectorBusy => "vector_busy",
            StallCause::HhtWindowEmpty => "hht_window_empty",
            StallCause::HhtHeaderWait => "hht_header_wait",
            StallCause::ArbitrationLoss => "arbitration_loss",
            StallCause::BranchRefill => "branch_refill",
            StallCause::OutputFull => "output_full",
            StallCause::HhtRetryBackoff => "hht_retry_backoff",
        }
    }
}

/// Per-cause stall-cycle histogram.
///
/// The counters are plain `u64`s incremented alongside the existing coarse
/// counters, so they are always on (no sink required) and the invariants
/// below hold exactly:
///
/// - `hht_window_empty + hht_header_wait` == the core's `hht_wait_cycles`;
/// - `arbitration_loss` == the core's `mem_port_stall_cycles`;
/// - `output_full` == the engine's `stall_out_full`.
///
/// `load_latency`, `vector_busy`, and `branch_refill` attribute the core's
/// internal busy cycles, which the seed stats did not count at all.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StallBreakdown {
    pub load_latency: u64,
    pub vector_busy: u64,
    pub hht_window_empty: u64,
    pub hht_header_wait: u64,
    pub arbitration_loss: u64,
    pub branch_refill: u64,
    pub output_full: u64,
    pub hht_retry_backoff: u64,
}

impl StallBreakdown {
    /// Attribute one stalled cycle to `cause`.
    #[inline]
    pub fn record(&mut self, cause: StallCause) {
        *self.bucket_mut(cause) += 1;
    }

    /// Attribute `cycles` stalled cycles to `cause`.
    #[inline]
    pub fn record_many(&mut self, cause: StallCause, cycles: u64) {
        *self.bucket_mut(cause) += cycles;
    }

    pub fn get(&self, cause: StallCause) -> u64 {
        match cause {
            StallCause::LoadLatency => self.load_latency,
            StallCause::VectorBusy => self.vector_busy,
            StallCause::HhtWindowEmpty => self.hht_window_empty,
            StallCause::HhtHeaderWait => self.hht_header_wait,
            StallCause::ArbitrationLoss => self.arbitration_loss,
            StallCause::BranchRefill => self.branch_refill,
            StallCause::OutputFull => self.output_full,
            StallCause::HhtRetryBackoff => self.hht_retry_backoff,
        }
    }

    fn bucket_mut(&mut self, cause: StallCause) -> &mut u64 {
        match cause {
            StallCause::LoadLatency => &mut self.load_latency,
            StallCause::VectorBusy => &mut self.vector_busy,
            StallCause::HhtWindowEmpty => &mut self.hht_window_empty,
            StallCause::HhtHeaderWait => &mut self.hht_header_wait,
            StallCause::ArbitrationLoss => &mut self.arbitration_loss,
            StallCause::BranchRefill => &mut self.branch_refill,
            StallCause::OutputFull => &mut self.output_full,
            StallCause::HhtRetryBackoff => &mut self.hht_retry_backoff,
        }
    }

    /// Cycles the CPU spent waiting on the HHT window
    /// (must equal `CoreStats::hht_wait_cycles`).
    pub fn cpu_hht_wait(&self) -> u64 {
        self.hht_window_empty + self.hht_header_wait
    }

    /// All attributed stall cycles.
    pub fn total(&self) -> u64 {
        StallCause::ALL.iter().map(|&c| self.get(c)).sum()
    }

    /// Iterate `(label, cycles)` pairs in display order.
    pub fn entries(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        StallCause::ALL.iter().map(move |&c| (c.label(), self.get(c)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_buckets_sum() {
        let mut b = StallBreakdown::default();
        for &cause in &StallCause::ALL {
            b.record(cause);
        }
        b.record_many(StallCause::HhtWindowEmpty, 9);
        assert_eq!(b.total(), 8 + 9);
        assert_eq!(b.cpu_hht_wait(), 1 + 9 + 1);
        assert_eq!(b.get(StallCause::HhtWindowEmpty), 10);
    }

    #[test]
    fn labels_are_stable_and_distinct() {
        let labels: Vec<_> = StallCause::ALL.iter().map(|c| c.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
        assert_eq!(StallCause::HhtWindowEmpty.label(), "hht_window_empty");
    }

    #[test]
    fn breakdown_serializes_with_named_buckets() {
        let mut b = StallBreakdown::default();
        b.record(StallCause::ArbitrationLoss);
        let json = serde_json::to_string(&b).unwrap();
        assert!(json.contains("\"arbitration_loss\":1"));
        let back: StallBreakdown = serde_json::from_str(&json).unwrap();
        assert_eq!(back, b);
    }
}
