//! Bounded ring buffer used by every trace sink.
//!
//! Long simulations used to accumulate unbounded `Vec<TraceEntry>`s; this
//! keeps the most recent `capacity` records and counts what it dropped, so
//! sinks have a hard memory ceiling while `trace_to_string()`-style
//! consumers still see the retained window.

use std::collections::VecDeque;

#[derive(Debug, Clone)]
pub struct RingBuffer<T> {
    buf: VecDeque<T>,
    capacity: usize,
    dropped: u64,
}

impl<T> RingBuffer<T> {
    /// Create a buffer retaining at most `capacity` records (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingBuffer { buf: VecDeque::with_capacity(capacity.min(4096)), capacity, dropped: 0 }
    }

    /// Append a record, evicting the oldest once full.
    #[inline]
    pub fn push(&mut self, item: T) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(item);
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records evicted to honour the bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Oldest-to-newest iteration over the retained window.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.buf.iter()
    }

    pub fn clear(&mut self) {
        self.buf.clear();
        self.dropped = 0;
    }
}

impl<'a, T> IntoIterator for &'a RingBuffer<T> {
    type Item = &'a T;
    type IntoIter = std::collections::vec_deque::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.buf.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_push_evicts_oldest() {
        let mut rb = RingBuffer::new(3);
        for i in 0..5 {
            rb.push(i);
        }
        assert_eq!(rb.len(), 3);
        assert_eq!(rb.dropped(), 2);
        assert_eq!(rb.iter().copied().collect::<Vec<_>>(), [2, 3, 4]);
    }

    #[test]
    fn capacity_floor_is_one() {
        let mut rb = RingBuffer::new(0);
        rb.push(1);
        rb.push(2);
        assert_eq!(rb.capacity(), 1);
        assert_eq!(rb.iter().copied().collect::<Vec<_>>(), [2]);
    }

    #[test]
    fn clear_resets_window_and_drop_count() {
        let mut rb = RingBuffer::new(2);
        rb.push(1);
        rb.push(2);
        rb.push(3);
        rb.clear();
        assert!(rb.is_empty());
        assert_eq!(rb.dropped(), 0);
    }
}
