//! Whole-system configuration (Table 1) plus the observability knobs.

use hht_accel::HhtParams;
use hht_fault::FaultConfig;
use hht_mem::DramConfig;
use hht_sim::config::CacheGeometry;
use hht_sim::CoreConfig;
use serde::{Deserialize, Serialize};

/// Observability configuration: whether the structured-event sinks are
/// installed and how much they retain. Stall-cause *counters* are always
/// on; this only gates the cycle-stamped event streams (and their memory).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Install event buses on the core, HHT and SRAM port. Off by default:
    /// every event site then costs a single `Option` branch and simulated
    /// cycle counts are bit-identical to an untraced run.
    pub events: bool,
    /// Per-component event ring capacity (most recent events kept).
    pub event_capacity: usize,
    /// Keep only every Nth buffer-occupancy sample (1 = keep all);
    /// begin/end pairs are never sampled out.
    pub sample_every: u64,
    /// Record the CPU instruction trace (bounded ring of
    /// `instr_trace_capacity` entries).
    pub instr_trace: bool,
    /// Instruction-trace ring capacity.
    pub instr_trace_capacity: usize,
}

impl TraceConfig {
    /// Everything off (the measurement configuration).
    pub fn disabled() -> Self {
        TraceConfig {
            events: false,
            event_capacity: 1 << 16,
            sample_every: 1,
            instr_trace: false,
            instr_trace_capacity: 1 << 16,
        }
    }

    /// Event streams on with default retention; instruction trace off.
    pub fn enabled() -> Self {
        TraceConfig { events: true, ..Self::disabled() }
    }

    /// Same configuration with a different event-ring capacity.
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.event_capacity = capacity;
        self
    }

    /// Same configuration keeping only every `n`th buffer-level sample.
    pub fn with_sampling(mut self, n: u64) -> Self {
        self.sample_every = n.max(1);
        self
    }

    /// Same configuration with the CPU instruction trace on.
    pub fn with_instr_trace(mut self) -> Self {
        self.instr_trace = true;
        self
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// Table 1 of the paper, as a value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Core timing parameters (vector width, latencies).
    pub core: CoreConfig,
    /// HHT buffer provisioning (N buffers × BLEN elements).
    pub hht: HhtParams,
    /// SRAM size in bytes (Table 1: 1 MB).
    pub ram_size: u32,
    /// Cycles one 32-bit SRAM word access occupies the shared port.
    pub ram_word_cycles: u64,
    /// Core clock, Hz (Table 1: 1.1 GHz) — used only to convert cycles to
    /// seconds for the energy model.
    pub clock_hz: f64,
    /// Observability sinks (event streams, instruction trace). Disabled by
    /// default; never affects simulated cycle counts.
    pub trace: TraceConfig,
    /// Event-driven cycle skipping: `System::run` fast-forwards over spans
    /// where the core, the HHT and the SRAM port are all provably inert,
    /// charging the skipped cycles to the same counters the per-cycle loop
    /// would have recorded. Simulated cycle counts are bit-identical either
    /// way; turning this off keeps the legacy per-cycle loop for
    /// differential testing.
    pub cycle_skip: bool,
    /// Discrete-event fabric scheduling: each tile advances independently
    /// to its own next wake through a per-tile event queue instead of the
    /// lock-step loop, so one busy tile no longer forces per-cycle host
    /// work for every parked neighbour. Requires `cycle_skip` (the queue
    /// *is* per-tile cycle skipping); `with_cycle_skip(false)` therefore
    /// still selects the pure per-cycle oracle. Simulated cycle counts,
    /// statistics and event streams are bit-identical across all three
    /// scheduler modes (see `tests/determinism.rs`); turning this off
    /// keeps the lock-step scheduler as the differential oracle.
    pub event_queue: bool,
    /// Seed-driven fault injection (`seed == 0`, the default, disables it).
    /// [`crate::system::System::new`] derives the cycle-exact
    /// [`hht_fault::FaultPlan`] from this.
    pub fault: FaultConfig,
    /// System-level recovery policy: when an accelerated run fails
    /// (HHT declared failed, watchdog expiry, or a result that diverges
    /// from golden), the runner re-runs the kernel on the baseline
    /// software path instead of panicking, keeping results numerically
    /// correct at a degraded cycle count. On the fabric path the policy
    /// is per-tile fault domains instead: failed tiles are retried with
    /// bounded exponential backoff (`tile_retries`/`tile_backoff`) and
    /// then quarantined, their unfinished row shards failing over to the
    /// surviving tiles; the whole-run software fallback fires only when
    /// every tile is dead. Off by default (the seed behaviour).
    pub recovery: bool,
    /// Failed attempts a suspected tile may accumulate before it is
    /// quarantined (fatal faults quarantine immediately). Fabric recovery
    /// only.
    pub tile_retries: u32,
    /// Base backoff in cycles charged before a suspected tile's retry;
    /// doubles per accumulated failure (`base << (retries - 1)`). Fabric
    /// recovery only.
    pub tile_backoff: u64,
    /// DRAM-class memory timing (`None`, the default, keeps the flat
    /// SRAM-class [`hht_mem::SharedMemory`] model). When set, the fabric
    /// wraps its memory in [`hht_mem::Dram`]: split-transaction responses
    /// with row-buffer hit/miss latency, a per-tile bounded in-flight
    /// window (the MLP ceiling) and a grants-per-cycle bandwidth budget.
    /// `Some(DramConfig::flat())` is bit-identical to `None` (pinned by
    /// the determinism suite).
    pub dram: Option<DramConfig>,
}

impl SystemConfig {
    /// The paper's configuration: RV32 with VL=8/SEW=32, 4-cycle vector
    /// arithmetic, ASIC HHT with N=2 buffers of 32 B, 1 MB RAM, 1.1 GHz.
    pub fn paper_default() -> Self {
        SystemConfig {
            core: CoreConfig::paper_default(),
            hht: HhtParams { num_buffers: 2, blen: 8 },
            ram_size: 1 << 20,
            ram_word_cycles: 1,
            clock_hz: 1.1e9,
            trace: TraceConfig::disabled(),
            cycle_skip: true,
            event_queue: true,
            fault: FaultConfig::default(),
            recovery: false,
            tile_retries: 2,
            tile_backoff: 64,
            dram: None,
        }
    }

    /// Same configuration with a different vector width (Fig. 8). The HHT
    /// buffer length tracks the vector width ("BLEN ... corresponds to
    /// vector width used by the RISCV vector instructions", §3.1 fn. 3),
    /// with the 1-element scalar interface keeping the Table-1 8-element
    /// buffers.
    pub fn with_vlen(mut self, vlen: usize) -> Self {
        self.core = self.core.with_vlen(vlen);
        self.hht.blen = if vlen >= 8 { vlen } else { 8 };
        self
    }

    /// Same configuration with N buffers (Figs. 4-7 compare N=1 and N=2).
    pub fn with_buffers(mut self, n: usize) -> Self {
        assert!(n >= 1, "at least one buffer required");
        self.hht.num_buffers = n;
        self
    }

    /// Same configuration with a different SRAM word latency (memory
    /// ablation).
    pub fn with_ram_word_cycles(mut self, c: u64) -> Self {
        self.ram_word_cycles = c;
        self
    }

    /// Same configuration with an L1 data cache on the CPU (§3.2's
    /// "high-performance processor integration"; the HHT stays on the
    /// memory side).
    pub fn with_l1d(mut self, g: CacheGeometry) -> Self {
        self.core = self.core.with_l1d(g);
        self
    }

    /// Same configuration with the given observability sinks.
    pub fn with_trace(mut self, t: TraceConfig) -> Self {
        self.trace = t;
        self
    }

    /// Same configuration with cycle skipping on or off (off = the legacy
    /// per-cycle loop, for differential testing).
    pub fn with_cycle_skip(mut self, on: bool) -> Self {
        self.cycle_skip = on;
        self
    }

    /// Same configuration with the discrete-event fabric scheduler on or
    /// off (off = the lock-step scheduler, the event queue's differential
    /// oracle).
    pub fn with_event_queue(mut self, on: bool) -> Self {
        self.event_queue = on;
        self
    }

    /// Same configuration with seed-driven fault injection (seed 0
    /// disables; other knobs keep their [`FaultConfig`] defaults).
    pub fn with_fault_seed(mut self, seed: u64) -> Self {
        self.fault.seed = seed;
        self
    }

    /// Same configuration with full fault-generation knobs.
    pub fn with_fault(mut self, fault: FaultConfig) -> Self {
        self.fault = fault;
        self
    }

    /// Same configuration with the system-level software-fallback recovery
    /// policy on or off.
    pub fn with_recovery(mut self, on: bool) -> Self {
        self.recovery = on;
        self
    }

    /// Same configuration with the core's HHT window-wait timeout protocol
    /// enabled (`timeout` consecutive stalled cycles; 0 disables).
    pub fn with_hht_timeout(mut self, timeout: u64) -> Self {
        self.core = self.core.with_hht_timeout(timeout);
        self
    }

    /// Same configuration with a different per-tile retry budget (failed
    /// attempts a suspected tile gets before quarantine).
    pub fn with_tile_retries(mut self, retries: u32) -> Self {
        self.tile_retries = retries;
        self
    }

    /// Same configuration with a different base retry backoff in cycles
    /// (doubles per accumulated failure).
    pub fn with_tile_backoff(mut self, cycles: u64) -> Self {
        self.tile_backoff = cycles;
        self
    }

    /// Same configuration with DRAM-class memory timing (row-buffer
    /// latency, MLP window, bandwidth budget). `DramConfig::flat()` is
    /// bit-identical to the flat model and exists for differential tests.
    pub fn with_dram(mut self, dram: DramConfig) -> Self {
        self.dram = Some(dram);
        self
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_table1() {
        let c = SystemConfig::paper_default();
        assert_eq!(c.core.vlen, 8);
        assert_eq!(c.hht.num_buffers, 2);
        assert_eq!(c.hht.blen, 8);
        assert_eq!(c.ram_size, 1 << 20);
        assert_eq!(c.clock_hz, 1.1e9);
    }

    #[test]
    fn with_vlen_keeps_blen_at_least_8() {
        assert_eq!(SystemConfig::paper_default().with_vlen(1).hht.blen, 8);
        assert_eq!(SystemConfig::paper_default().with_vlen(4).hht.blen, 8);
        assert_eq!(SystemConfig::paper_default().with_vlen(8).hht.blen, 8);
        assert_eq!(SystemConfig::paper_default().with_vlen(16).hht.blen, 16);
    }

    #[test]
    fn with_buffers() {
        assert_eq!(SystemConfig::paper_default().with_buffers(1).hht.num_buffers, 1);
    }

    #[test]
    #[should_panic(expected = "at least one buffer")]
    fn zero_buffers_rejected() {
        let _ = SystemConfig::paper_default().with_buffers(0);
    }
}
