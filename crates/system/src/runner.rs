//! One-call "run this kernel on this problem" helpers.
//!
//! Every runner builds the SRAM image, assembles the kernel, runs the
//! system to completion, reads back `y` and **verifies it against the
//! golden `hht-sparse` kernel** (exact to a small FP-reassociation
//! tolerance). A wrong result panics: performance numbers from an
//! incorrect kernel are meaningless.

use crate::config::SystemConfig;
use crate::kernels;
use crate::layout;
use crate::system::{System, SystemStats};
use hht_mem::Sram;
use hht_sparse::{
    kernels as golden, CscMatrix, CsrMatrix, DenseMatrix, DenseVector, SmashMatrix, SparseFormat,
    SparseVector,
};

/// Numeric result plus measured statistics of one kernel run.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// The computed output vector.
    pub y: DenseVector,
    /// Measured statistics.
    pub stats: SystemStats,
    /// Merged structured-event timeline (empty unless the configuration
    /// enables event tracing).
    pub events: Vec<hht_obs::Event>,
}

/// Re-export of [`SystemStats`] under the name used by the experiment
/// drivers.
pub type RunStats = SystemStats;

/// Tolerance for comparing simulated FP results with golden results: both
/// use f32 adds in the same per-row order, but vector strip-mining
/// reassociates partial sums.
const TOL: f32 = 1e-3;

fn verify(y: &DenseVector, golden: &DenseVector, what: &str) {
    let scale = golden.as_slice().iter().fold(1.0f32, |m, v| m.max(v.abs()));
    let diff = y.max_abs_diff(golden);
    assert!(
        diff <= TOL * scale,
        "{what}: simulated result diverges from golden (max abs diff {diff}, scale {scale})"
    );
}

/// Build the SRAM, growing it beyond the configured (Table-1) 1 MB when
/// the problem image does not fit. The paper runs 512x512 matrices at 10 %
/// sparsity, whose CSR image alone is ~1.9 MB — their spike memory model
/// must have been sized up the same way (documented in EXPERIMENTS.md).
fn sram_for(cfg: &SystemConfig, words: usize) -> Sram {
    // base offset + arrays + per-array alignment padding slack
    let needed = 0x100u64 + 4 * words as u64 + 32 * 8;
    let size = (cfg.ram_size as u64).max(needed.next_multiple_of(4096)) as u32;
    Sram::new(size, cfg.ram_word_cycles)
}

fn spmv_words(m: &CsrMatrix, v: &DenseVector) -> usize {
    (m.rows() + 1) + 2 * m.nnz() + v.len() + m.rows()
}

fn spmspv_words(m: &CsrMatrix, x: &SparseVector) -> usize {
    (m.rows() + 1) + 2 * m.nnz() + 2 * x.nnz() + m.rows()
}

/// Run baseline SpMV (CPU only, Algorithm 1).
pub fn run_spmv_baseline(cfg: &SystemConfig, m: &CsrMatrix, v: &DenseVector) -> RunOutput {
    let mut sram = sram_for(cfg, spmv_words(m, v));
    let l = layout::layout_spmv(&mut sram, m, v);
    let program = kernels::spmv_baseline(&l, cfg.core.vlen > 1);
    let mut sys = System::new(cfg, program, sram);
    let stats = sys.run().expect("baseline SpMV kernel fault");
    let y = sys.read_output(l.y_base, m.rows());
    verify(&y, &golden::spmv(m, v).expect("shapes validated by layout"), "spmv_baseline");
    RunOutput { y, stats, events: sys.take_events() }
}

/// Run HHT-assisted SpMV.
pub fn run_spmv_hht(cfg: &SystemConfig, m: &CsrMatrix, v: &DenseVector) -> RunOutput {
    let mut sram = sram_for(cfg, spmv_words(m, v));
    let l = layout::layout_spmv(&mut sram, m, v);
    let program = kernels::spmv_hht(&l, cfg.core.vlen > 1);
    let mut sys = System::new(cfg, program, sram);
    let stats = sys.run().expect("HHT SpMV kernel fault");
    let y = sys.read_output(l.y_base, m.rows());
    verify(&y, &golden::spmv(m, v).expect("shapes validated by layout"), "spmv_hht");
    RunOutput { y, stats, events: sys.take_events() }
}

/// Run baseline SpMSpV (CPU-only scalar merge).
pub fn run_spmspv_baseline(cfg: &SystemConfig, m: &CsrMatrix, x: &SparseVector) -> RunOutput {
    let mut sram = sram_for(cfg, spmspv_words(m, x));
    let l = layout::layout_spmspv(&mut sram, m, x);
    let program = kernels::spmspv_baseline(&l);
    let mut sys = System::new(cfg, program, sram);
    let stats = sys.run().expect("baseline SpMSpV kernel fault");
    let y = sys.read_output(l.y_base, m.rows());
    verify(&y, &golden::spmspv(m, x).expect("shapes validated"), "spmspv_baseline");
    RunOutput { y, stats, events: sys.take_events() }
}

/// Run the work-efficient CSC SpMSpV baseline (related work [43]):
/// column-scatter over the non-zeros of `x` only.
pub fn run_spmspv_csc_baseline(cfg: &SystemConfig, m: &CsrMatrix, x: &SparseVector) -> RunOutput {
    let csc = CscMatrix::from_triplets(m.rows(), m.cols(), &m.triplets())
        .expect("valid triplets from CSR");
    let words = (m.cols() + 1) + 2 * m.nnz() + 2 * x.nnz() + m.rows();
    let mut sram = sram_for(cfg, words);
    let l = kernels::layout_spmspv_csc(&mut sram, &csc, x);
    let program = kernels::spmspv_csc_baseline(&l);
    let mut sys = System::new(cfg, program, sram);
    let stats = sys.run().expect("CSC SpMSpV kernel fault");
    let y = sys.read_output(l.y_base, m.rows());
    verify(&y, &golden::spmspv(m, x).expect("shapes validated"), "spmspv_csc_baseline");
    RunOutput { y, stats, events: sys.take_events() }
}

/// Run HHT SpMSpV variant-1 (aligned pairs).
pub fn run_spmspv_hht_v1(cfg: &SystemConfig, m: &CsrMatrix, x: &SparseVector) -> RunOutput {
    let mut sram = sram_for(cfg, spmspv_words(m, x));
    let l = layout::layout_spmspv(&mut sram, m, x);
    let program = kernels::spmspv_hht_v1(&l);
    let mut sys = System::new(cfg, program, sram);
    let stats = sys.run().expect("HHT SpMSpV v1 kernel fault");
    let y = sys.read_output(l.y_base, m.rows());
    verify(&y, &golden::spmspv(m, x).expect("shapes validated"), "spmspv_hht_v1");
    RunOutput { y, stats, events: sys.take_events() }
}

/// Run HHT SpMSpV variant-2 (value-or-zero).
pub fn run_spmspv_hht_v2(cfg: &SystemConfig, m: &CsrMatrix, x: &SparseVector) -> RunOutput {
    let mut sram = sram_for(cfg, spmspv_words(m, x));
    let l = layout::layout_spmspv(&mut sram, m, x);
    let program = kernels::spmspv_hht_v2(&l);
    let mut sys = System::new(cfg, program, sram);
    let stats = sys.run().expect("HHT SpMSpV v2 kernel fault");
    let y = sys.read_output(l.y_base, m.rows());
    verify(&y, &golden::spmspv(m, x).expect("shapes validated"), "spmspv_hht_v2");
    RunOutput { y, stats, events: sys.take_events() }
}

/// Run the dense (expanded) matrix-vector baseline: the §6 comparator that
/// stores every zero and pays no metadata cost.
pub fn run_dense_matvec(cfg: &SystemConfig, m: &DenseMatrix, v: &DenseVector) -> RunOutput {
    let mut sram = sram_for(cfg, m.rows() * m.cols() + v.len() + m.rows());
    let l = layout::layout_dense(&mut sram, m, v);
    let program = kernels::dense_matvec(&l);
    let mut sys = System::new(cfg, program, sram);
    let stats = sys.run().expect("dense matvec kernel fault");
    let y = sys.read_output(l.y_base, m.rows());
    verify(&y, &m.matvec(v).expect("shapes validated"), "dense_matvec");
    RunOutput { y, stats, events: sys.take_events() }
}

/// Run SpMV with the *programmable* HHT back-end (§7 future work): same
/// CPU-side kernel, but the gather is performed by a helper core running a
/// microprogram instead of the ASIC FSM.
pub fn run_spmv_hht_programmable(cfg: &SystemConfig, m: &CsrMatrix, v: &DenseVector) -> RunOutput {
    let mut sram = sram_for(cfg, spmv_words(m, v));
    let l = layout::layout_spmv(&mut sram, m, v);
    let program = kernels::spmv_hht_programmable(&l, cfg.core.vlen > 1);
    let mut sys = System::new(cfg, program, sram);
    let stats = sys.run().expect("programmable HHT SpMV kernel fault");
    let y = sys.read_output(l.y_base, m.rows());
    verify(&y, &golden::spmv(m, v).expect("shapes validated by layout"), "spmv_hht_programmable");
    RunOutput { y, stats, events: sys.take_events() }
}

/// Run HHT-assisted SpMV over a SMASH-encoded matrix (§6 ablation).
pub fn run_smash_spmv_hht(cfg: &SystemConfig, m: &SmashMatrix, v: &DenseVector) -> RunOutput {
    let words = m.level(0).len()
        + if m.num_levels() > 1 { m.level(1).len() } else { 0 }
        + m.nnz()
        + v.len()
        + m.rows();
    let mut sram = sram_for(cfg, words);
    let l = layout::layout_smash_spmv(&mut sram, m, v);
    let program = kernels::smash_spmv_hht(&l);
    let mut sys = System::new(cfg, program, sram);
    let stats = sys.run().expect("SMASH HHT kernel fault");
    let y = sys.read_output(l.y_base, m.rows());
    // Golden: densify via triplets and use CSR spmv.
    let csr = CsrMatrix::from_triplets(m.rows(), m.cols(), &m.triplets())
        .expect("triplets from a valid SMASH matrix");
    verify(&y, &golden::spmv(&csr, v).expect("shapes validated"), "smash_spmv_hht");
    RunOutput { y, stats, events: sys.take_events() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hht_sparse::generate;

    #[test]
    fn spmv_baseline_and_hht_agree_with_golden() {
        let cfg = SystemConfig::paper_default();
        let m = generate::random_csr(24, 24, 0.6, 11);
        let v = generate::random_dense_vector(24, 12);
        let base = run_spmv_baseline(&cfg, &m, &v);
        let hht = run_spmv_hht(&cfg, &m, &v);
        // Both verified against golden inside the runners; also: HHT must
        // be faster.
        assert!(
            hht.stats.cycles < base.stats.cycles,
            "HHT ({}) not faster than baseline ({})",
            hht.stats.cycles,
            base.stats.cycles
        );
    }

    #[test]
    fn spmv_scalar_interface() {
        let cfg = SystemConfig::paper_default().with_vlen(1);
        let m = generate::random_csr(16, 16, 0.5, 21);
        let v = generate::random_dense_vector(16, 22);
        let base = run_spmv_baseline(&cfg, &m, &v);
        let hht = run_spmv_hht(&cfg, &m, &v);
        assert!(hht.stats.cycles < base.stats.cycles);
    }

    #[test]
    fn spmspv_all_three_kernels_agree() {
        let cfg = SystemConfig::paper_default();
        let m = generate::random_csr(24, 24, 0.7, 31);
        let x = generate::random_sparse_vector(24, 0.7, 32);
        let base = run_spmspv_baseline(&cfg, &m, &x);
        let v1 = run_spmspv_hht_v1(&cfg, &m, &x);
        let v2 = run_spmspv_hht_v2(&cfg, &m, &x);
        assert!(v1.y.max_abs_diff(&base.y) < 1e-3);
        assert!(v2.y.max_abs_diff(&base.y) < 1e-3);
    }

    #[test]
    fn smash_run_matches_golden() {
        let cfg = SystemConfig::paper_default();
        let csr = generate::random_csr(32, 32, 0.8, 41);
        let m = SmashMatrix::from_triplets(32, 32, &csr.triplets()).unwrap();
        let v = generate::random_dense_vector(32, 42);
        let out = run_smash_spmv_hht(&cfg, &m, &v);
        assert!(out.stats.cycles > 0);
    }

    #[test]
    fn empty_matrix_runs() {
        let cfg = SystemConfig::paper_default();
        let m = generate::random_csr(8, 8, 1.0, 51);
        let v = generate::random_dense_vector(8, 52);
        let base = run_spmv_baseline(&cfg, &m, &v);
        assert!(base.y.as_slice().iter().all(|x| *x == 0.0));
        let hht = run_spmv_hht(&cfg, &m, &v);
        assert!(hht.y.as_slice().iter().all(|x| *x == 0.0));
    }
}
