//! One-call "run this kernel on this problem" helpers.
//!
//! Every runner builds the SRAM image, assembles the kernel, runs the
//! system to completion, reads back `y` and **verifies it against the
//! golden `hht-sparse` kernel** (exact to a small FP-reassociation
//! tolerance). A wrong result panics: performance numbers from an
//! incorrect kernel are meaningless.
//!
//! With [`SystemConfig::recovery`] enabled, the accelerated runners
//! degrade gracefully instead: when the HHT is declared failed
//! ([`RunError::HhtFailed`]), the watchdog expires, or the accelerated
//! result diverges from golden, the kernel is re-run on the baseline
//! software path (fault injection disabled) and the returned `y` is the
//! numerically correct fallback result. The failed attempt's cycles are
//! added to the total so the degradation is visible in the stats, and the
//! recovery is recorded in [`RunOutput::recovery`] and
//! `stats.faults.fallbacks`.

use crate::config::SystemConfig;
use crate::fabric::{Fabric, FabricConfig, FabricStats, SchedStats, TileSchedStats};
use crate::kernels;
use crate::layout;
use crate::system::{System, SystemStats};
use hht_fault::FaultPlan;
use hht_mem::{SharedMemory, Sram};
use hht_sim::RunError;
use hht_sparse::{
    kernels as golden, CscMatrix, CsrMatrix, DenseMatrix, DenseVector, SmashMatrix, SparseFormat,
    SparseVector,
};

/// How an accelerated run recovered after a fault (see
/// [`RunOutput::recovery`]).
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Human-readable description of what failed (the [`RunError`] or the
    /// golden-divergence that triggered the fallback).
    pub error: String,
    /// Statistics of the failed accelerated attempt (its cycles are also
    /// folded into the returned total).
    pub failed_stats: SystemStats,
}

/// Numeric result plus measured statistics of one kernel run.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// The computed output vector.
    pub y: DenseVector,
    /// Measured statistics.
    pub stats: SystemStats,
    /// Merged structured-event timeline (empty unless the configuration
    /// enables event tracing).
    pub events: Vec<hht_obs::Event>,
    /// `Some` when the recovery policy re-ran the kernel on the software
    /// path after an accelerated-run failure; `None` for a clean run.
    pub recovery: Option<RecoveryReport>,
    /// Host-side scheduler accounting (stepped vs skipped cycles). Not part
    /// of [`SystemStats`]: the split depends on the scheduler mode.
    pub sched: SchedStats,
    /// Ring-buffer eviction counters for the run's observability sinks
    /// (all zero when tracing is off); attach to the exported snapshot with
    /// [`crate::metrics::MetricsSnapshot::with_drops`].
    pub dropped: hht_obs::ObsDrops,
}

/// Read the host-side run accounting (scheduler counters and ring drops),
/// then drain the event streams — in that order: draining resets the rings.
fn drain(sys: &mut System) -> (SchedStats, hht_obs::ObsDrops, Vec<hht_obs::Event>) {
    let sched = sys.sched_stats();
    let dropped = sys.obs_drops();
    (sched, dropped, sys.take_events())
}

/// Re-export of [`SystemStats`] under the name used by the experiment
/// drivers.
pub type RunStats = SystemStats;

/// Tolerance for comparing simulated FP results with golden results: both
/// use f32 adds in the same per-row order, but vector strip-mining
/// reassociates partial sums.
const TOL: f32 = 1e-3;

fn matches_golden(y: &DenseVector, golden: &DenseVector) -> bool {
    let scale = golden.as_slice().iter().fold(1.0f32, |m, v| m.max(v.abs()));
    y.max_abs_diff(golden) <= TOL * scale
}

fn verify(y: &DenseVector, golden: &DenseVector, what: &str) {
    let scale = golden.as_slice().iter().fold(1.0f32, |m, v| m.max(v.abs()));
    let diff = y.max_abs_diff(golden);
    assert!(
        diff <= TOL * scale,
        "{what}: simulated result diverges from golden (max abs diff {diff}, scale {scale})"
    );
}

/// Shared driver for the accelerated (HHT) runners: run the system, verify
/// against golden, and — when `cfg.recovery` is on — degrade to the
/// software `baseline` closure on HHT failure, watchdog expiry, or a
/// corrupted result. Guest faults unrelated to the accelerator still
/// panic: those are kernel bugs, not injected hardware faults.
fn run_accelerated(
    cfg: &SystemConfig,
    what: &str,
    golden: &DenseVector,
    rows: usize,
    plan: Option<FaultPlan>,
    build: &dyn Fn(&SystemConfig) -> (System, u32),
    baseline: &dyn Fn(&SystemConfig) -> RunOutput,
) -> RunOutput {
    let (mut sys, y_base) = build(cfg);
    if let Some(p) = plan {
        sys.set_fault_plan(p);
    }
    match sys.run() {
        Ok(stats) => {
            let y = sys.read_output(y_base, rows);
            if matches_golden(&y, golden) {
                let (sched, dropped, events) = drain(&mut sys);
                return RunOutput { y, stats, events, recovery: None, sched, dropped };
            }
            if !cfg.recovery {
                verify(&y, golden, what); // panics with the standard message
            }
            let error = format!("{what}: accelerated result diverges from golden");
            let (sched, dropped, events) = drain(&mut sys);
            software_fallback(cfg, error, stats, events, sched, dropped, baseline)
        }
        Err(e @ (RunError::HhtFailed { .. } | RunError::Watchdog(_))) if cfg.recovery => {
            let stats = sys.stats();
            let (sched, dropped, events) = drain(&mut sys);
            software_fallback(cfg, e.to_string(), stats, events, sched, dropped, baseline)
        }
        Err(e) => panic!("{what} kernel fault: {e}"),
    }
}

/// Re-run the kernel on the baseline software path after a failed
/// accelerated attempt, folding the failed attempt's cost into the stats.
fn software_fallback(
    cfg: &SystemConfig,
    error: String,
    failed_stats: SystemStats,
    failed_events: Vec<hht_obs::Event>,
    failed_sched: SchedStats,
    failed_dropped: hht_obs::ObsDrops,
    baseline: &dyn Fn(&SystemConfig) -> RunOutput,
) -> RunOutput {
    let mut fb_cfg = *cfg;
    fb_cfg.fault.seed = 0; // the fallback run must not re-inject faults
    let mut out = baseline(&fb_cfg);
    out.sched.add(&failed_sched);
    out.dropped.add(&failed_dropped);
    out.stats.cycles += failed_stats.cycles;
    out.stats.faults.injected = failed_stats.faults.injected;
    out.stats.faults.fallbacks = 1;
    out.stats.faults.failed_cycles = failed_stats.cycles;
    if cfg.trace.events {
        // Keep the failed attempt's timeline (where the injections and
        // detections live) plus one recovery marker; the fallback run's
        // own events would carry restarted cycle stamps, so they are
        // dropped rather than spliced in.
        let mut events = failed_events;
        events.push(hht_obs::Event {
            cycle: failed_stats.cycles,
            track: hht_obs::Track::Fault,
            kind: hht_obs::EventKind::Recovery { what: "software_fallback" },
        });
        out.events = events;
    }
    out.recovery = Some(RecoveryReport { error, failed_stats });
    out
}

/// Build the SRAM, growing it beyond the configured (Table-1) 1 MB when
/// the problem image does not fit. The paper runs 512x512 matrices at 10 %
/// sparsity, whose CSR image alone is ~1.9 MB — their spike memory model
/// must have been sized up the same way (documented in EXPERIMENTS.md).
fn sram_for(cfg: &SystemConfig, words: usize) -> Sram {
    // base offset + arrays + per-array alignment padding slack
    let needed = 0x100u64 + 4 * words as u64 + 32 * 8;
    let size = (cfg.ram_size as u64).max(needed.next_multiple_of(4096)) as u32;
    Sram::new(size, cfg.ram_word_cycles)
}

fn spmv_words(m: &CsrMatrix, v: &DenseVector) -> usize {
    (m.rows() + 1) + 2 * m.nnz() + v.len() + m.rows()
}

fn spmspv_words(m: &CsrMatrix, x: &SparseVector) -> usize {
    (m.rows() + 1) + 2 * m.nnz() + 2 * x.nnz() + m.rows()
}

/// Run baseline SpMV (CPU only, Algorithm 1).
pub fn run_spmv_baseline(cfg: &SystemConfig, m: &CsrMatrix, v: &DenseVector) -> RunOutput {
    let mut sram = sram_for(cfg, spmv_words(m, v));
    let l = layout::layout_spmv(&mut sram, m, v);
    let program = kernels::spmv_baseline(&l, cfg.core.vlen > 1);
    let mut sys = System::new(cfg, program, sram);
    let stats = sys.run().expect("baseline SpMV kernel fault");
    let y = sys.read_output(l.y_base, m.rows());
    verify(&y, &golden::spmv(m, v).expect("shapes validated by layout"), "spmv_baseline");
    let (sched, dropped, events) = drain(&mut sys);
    RunOutput { y, stats, events, recovery: None, sched, dropped }
}

/// Run HHT-assisted SpMV.
pub fn run_spmv_hht(cfg: &SystemConfig, m: &CsrMatrix, v: &DenseVector) -> RunOutput {
    run_spmv_hht_inner(cfg, m, v, None)
}

/// Run HHT-assisted SpMV with an explicit fault schedule (replacing any
/// seed-derived plan from `cfg.fault`).
pub fn run_spmv_hht_with_plan(
    cfg: &SystemConfig,
    m: &CsrMatrix,
    v: &DenseVector,
    plan: FaultPlan,
) -> RunOutput {
    run_spmv_hht_inner(cfg, m, v, Some(plan))
}

fn run_spmv_hht_inner(
    cfg: &SystemConfig,
    m: &CsrMatrix,
    v: &DenseVector,
    plan: Option<FaultPlan>,
) -> RunOutput {
    let gold = golden::spmv(m, v).expect("shapes validated by layout");
    run_accelerated(
        cfg,
        "spmv_hht",
        &gold,
        m.rows(),
        plan,
        &|cfg| {
            let mut sram = sram_for(cfg, spmv_words(m, v));
            let l = layout::layout_spmv(&mut sram, m, v);
            let program = kernels::spmv_hht(&l, cfg.core.vlen > 1);
            (System::new(cfg, program, sram), l.y_base)
        },
        &|cfg| run_spmv_baseline(cfg, m, v),
    )
}

/// Run baseline SpMSpV (CPU-only scalar merge).
pub fn run_spmspv_baseline(cfg: &SystemConfig, m: &CsrMatrix, x: &SparseVector) -> RunOutput {
    let mut sram = sram_for(cfg, spmspv_words(m, x));
    let l = layout::layout_spmspv(&mut sram, m, x);
    let program = kernels::spmspv_baseline(&l);
    let mut sys = System::new(cfg, program, sram);
    let stats = sys.run().expect("baseline SpMSpV kernel fault");
    let y = sys.read_output(l.y_base, m.rows());
    verify(&y, &golden::spmspv(m, x).expect("shapes validated"), "spmspv_baseline");
    let (sched, dropped, events) = drain(&mut sys);
    RunOutput { y, stats, events, recovery: None, sched, dropped }
}

/// Run the work-efficient CSC SpMSpV baseline (related work [43]):
/// column-scatter over the non-zeros of `x` only.
pub fn run_spmspv_csc_baseline(cfg: &SystemConfig, m: &CsrMatrix, x: &SparseVector) -> RunOutput {
    let csc = CscMatrix::from_triplets(m.rows(), m.cols(), &m.triplets())
        .expect("valid triplets from CSR");
    let words = (m.cols() + 1) + 2 * m.nnz() + 2 * x.nnz() + m.rows();
    let mut sram = sram_for(cfg, words);
    let l = kernels::layout_spmspv_csc(&mut sram, &csc, x);
    let program = kernels::spmspv_csc_baseline(&l);
    let mut sys = System::new(cfg, program, sram);
    let stats = sys.run().expect("CSC SpMSpV kernel fault");
    let y = sys.read_output(l.y_base, m.rows());
    verify(&y, &golden::spmspv(m, x).expect("shapes validated"), "spmspv_csc_baseline");
    let (sched, dropped, events) = drain(&mut sys);
    RunOutput { y, stats, events, recovery: None, sched, dropped }
}

/// Run HHT SpMSpV variant-1 (aligned pairs).
pub fn run_spmspv_hht_v1(cfg: &SystemConfig, m: &CsrMatrix, x: &SparseVector) -> RunOutput {
    let gold = golden::spmspv(m, x).expect("shapes validated");
    run_accelerated(
        cfg,
        "spmspv_hht_v1",
        &gold,
        m.rows(),
        None,
        &|cfg| {
            let mut sram = sram_for(cfg, spmspv_words(m, x));
            let l = layout::layout_spmspv(&mut sram, m, x);
            let program = kernels::spmspv_hht_v1(&l);
            (System::new(cfg, program, sram), l.y_base)
        },
        &|cfg| run_spmspv_baseline(cfg, m, x),
    )
}

/// Run HHT SpMSpV variant-2 (value-or-zero).
pub fn run_spmspv_hht_v2(cfg: &SystemConfig, m: &CsrMatrix, x: &SparseVector) -> RunOutput {
    let gold = golden::spmspv(m, x).expect("shapes validated");
    run_accelerated(
        cfg,
        "spmspv_hht_v2",
        &gold,
        m.rows(),
        None,
        &|cfg| {
            let mut sram = sram_for(cfg, spmspv_words(m, x));
            let l = layout::layout_spmspv(&mut sram, m, x);
            let program = kernels::spmspv_hht_v2(&l);
            (System::new(cfg, program, sram), l.y_base)
        },
        &|cfg| run_spmspv_baseline(cfg, m, x),
    )
}

/// Run the dense (expanded) matrix-vector baseline: the §6 comparator that
/// stores every zero and pays no metadata cost.
pub fn run_dense_matvec(cfg: &SystemConfig, m: &DenseMatrix, v: &DenseVector) -> RunOutput {
    let mut sram = sram_for(cfg, m.rows() * m.cols() + v.len() + m.rows());
    let l = layout::layout_dense(&mut sram, m, v);
    let program = kernels::dense_matvec(&l);
    let mut sys = System::new(cfg, program, sram);
    let stats = sys.run().expect("dense matvec kernel fault");
    let y = sys.read_output(l.y_base, m.rows());
    verify(&y, &m.matvec(v).expect("shapes validated"), "dense_matvec");
    let (sched, dropped, events) = drain(&mut sys);
    RunOutput { y, stats, events, recovery: None, sched, dropped }
}

/// Run SpMV with the *programmable* HHT back-end (§7 future work): same
/// CPU-side kernel, but the gather is performed by a helper core running a
/// microprogram instead of the ASIC FSM.
pub fn run_spmv_hht_programmable(cfg: &SystemConfig, m: &CsrMatrix, v: &DenseVector) -> RunOutput {
    let gold = golden::spmv(m, v).expect("shapes validated by layout");
    run_accelerated(
        cfg,
        "spmv_hht_programmable",
        &gold,
        m.rows(),
        None,
        &|cfg| {
            let mut sram = sram_for(cfg, spmv_words(m, v));
            let l = layout::layout_spmv(&mut sram, m, v);
            let program = kernels::spmv_hht_programmable(&l, cfg.core.vlen > 1);
            (System::new(cfg, program, sram), l.y_base)
        },
        &|cfg| run_spmv_baseline(cfg, m, v),
    )
}

/// Run HHT-assisted SpMV over a SMASH-encoded matrix (§6 ablation).
pub fn run_smash_spmv_hht(cfg: &SystemConfig, m: &SmashMatrix, v: &DenseVector) -> RunOutput {
    // Golden (and the fallback path): densify via triplets and use CSR.
    let csr = CsrMatrix::from_triplets(m.rows(), m.cols(), &m.triplets())
        .expect("triplets from a valid SMASH matrix");
    let gold = golden::spmv(&csr, v).expect("shapes validated");
    run_accelerated(
        cfg,
        "smash_spmv_hht",
        &gold,
        m.rows(),
        None,
        &|cfg| {
            let words = m.level(0).len()
                + if m.num_levels() > 1 { m.level(1).len() } else { 0 }
                + m.nnz()
                + v.len()
                + m.rows();
            let mut sram = sram_for(cfg, words);
            let l = layout::layout_smash_spmv(&mut sram, m, v);
            let program = kernels::smash_spmv_hht(&l);
            (System::new(cfg, program, sram), l.y_base)
        },
        &|cfg| run_spmv_baseline(cfg, &csr, v),
    )
}

/// Numeric result plus measured statistics of one fabric run.
#[derive(Debug, Clone)]
pub struct FabricRunOutput {
    /// The computed output vector (the full problem, assembled from every
    /// tile's row block).
    pub y: DenseVector,
    /// Per-tile and shared-memory statistics.
    pub stats: FabricStats,
    /// One merged event timeline per tile (empty unless the configuration
    /// enables event tracing).
    pub tile_events: Vec<Vec<hht_obs::Event>>,
    /// Host-side scheduler accounting (stepped vs skipped cycles),
    /// fabric-wide.
    pub sched: SchedStats,
    /// Host-side per-tile scheduler accounting (queue pops, parked spans),
    /// indexed by tile.
    pub tile_sched: Vec<TileSchedStats>,
    /// Ring-buffer eviction counters summed over every tile's sinks.
    pub dropped: hht_obs::ObsDrops,
    /// The fast-forward spans the cycle-skip scheduler took (empty when
    /// tracing is off or the per-cycle scheduler ran); feed to
    /// [`hht_obs::chrome::chrome_trace_json_tiles_sched`].
    pub skip_spans: Vec<hht_obs::SkipSpan>,
}

/// Shared driver for the fabric runners: build the full image plus
/// per-shard row-pointer copies, run one HHT kernel per tile over the
/// banked memory, and verify the assembled result against golden. The
/// fabric has no software-fallback path: a fault or divergence panics.
fn run_fabric(
    cfg: &SystemConfig,
    fab: FabricConfig,
    what: &str,
    golden: &DenseVector,
    image: (Sram, layout::ProblemLayout),
    m: &CsrMatrix,
    emit: &dyn Fn(&layout::ProblemLayout) -> hht_isa::Program,
) -> FabricRunOutput {
    let (mut sram, full) = image;
    let full = &full;
    let shards = layout::row_shards(m, fab.tiles);
    let layouts = layout::shard_layouts(&mut sram, full, m, &shards);
    let programs = layouts.iter().map(emit).collect();
    let mem = SharedMemory::from_sram(sram, fab.banks, fab.tiles);
    let mut fabric = Fabric::new(cfg, fab, programs, mem);
    let stats = fabric.run().unwrap_or_else(|e| panic!("{what}: fabric run failed: {e:?}"));
    let y = fabric.read_output(full.y_base, m.rows());
    verify(&y, golden, what);
    // Read scheduler counters and drop totals before draining the event
    // streams: `take_all_events` resets the rings (and their counters).
    let sched = fabric.sched_stats();
    let tile_sched = fabric.tile_sched_stats().to_vec();
    let dropped = fabric.obs_drops();
    let skip_spans = fabric.take_skip_spans();
    FabricRunOutput {
        y,
        stats,
        tile_events: fabric.take_all_events(),
        sched,
        tile_sched,
        dropped,
        skip_spans,
    }
}

/// Extra image words for the per-shard rebased row-pointer copies (plus
/// per-array alignment slack).
fn shard_words(m: &CsrMatrix, tiles: usize) -> usize {
    tiles * (m.rows() + 1 + 8)
}

/// Build (but do not run) the N-tile SpMV fabric: the full problem image,
/// per-shard programs, and the banked shared memory — exactly the fabric
/// [`run_spmv_fabric`] would drive. The determinism suite uses this to
/// step the fabric manually as a per-cycle oracle and to run differential
/// schedulers over identical images without the golden-verify panic.
/// Returns the fabric plus the output vector's base address.
pub fn build_spmv_fabric(
    cfg: &SystemConfig,
    fab: FabricConfig,
    m: &CsrMatrix,
    v: &DenseVector,
) -> (Fabric, u32) {
    let mut sram = sram_for(cfg, spmv_words(m, v) + shard_words(m, fab.tiles));
    let full = layout::layout_spmv(&mut sram, m, v);
    let shards = layout::row_shards(m, fab.tiles);
    let layouts = layout::shard_layouts(&mut sram, &full, m, &shards);
    let vectorized = cfg.core.vlen > 1;
    let programs = layouts.iter().map(|sl| kernels::spmv_hht(sl, vectorized)).collect();
    let mem = SharedMemory::from_sram(sram, fab.banks, fab.tiles);
    (Fabric::new(cfg, fab, programs, mem), full.y_base)
}

/// Run HHT-assisted SpMV sharded row-block-wise across an N-tile fabric.
pub fn run_spmv_fabric(
    cfg: &SystemConfig,
    fab: FabricConfig,
    m: &CsrMatrix,
    v: &DenseVector,
) -> FabricRunOutput {
    let gold = golden::spmv(m, v).expect("shapes validated by layout");
    let mut sram = sram_for(cfg, spmv_words(m, v) + shard_words(m, fab.tiles));
    let l = layout::layout_spmv(&mut sram, m, v);
    let vectorized = cfg.core.vlen > 1;
    run_fabric(cfg, fab, "spmv_fabric", &gold, (sram, l), m, &|sl| {
        kernels::spmv_hht(sl, vectorized)
    })
}

/// Run HHT-assisted SpMSpV (variant 1: sparse gather against dense-indexed
/// windows) sharded across an N-tile fabric.
pub fn run_spmspv_fabric_v1(
    cfg: &SystemConfig,
    fab: FabricConfig,
    m: &CsrMatrix,
    x: &SparseVector,
) -> FabricRunOutput {
    let gold = golden::spmspv(m, x).expect("shapes validated");
    let mut sram = sram_for(cfg, spmspv_words(m, x) + shard_words(m, fab.tiles));
    let l = layout::layout_spmspv(&mut sram, m, x);
    run_fabric(cfg, fab, "spmspv_fabric_v1", &gold, (sram, l), m, &kernels::spmspv_hht_v1)
}

/// Run HHT-assisted SpMSpV (variant 2: intersection in the HHT) sharded
/// across an N-tile fabric.
pub fn run_spmspv_fabric_v2(
    cfg: &SystemConfig,
    fab: FabricConfig,
    m: &CsrMatrix,
    x: &SparseVector,
) -> FabricRunOutput {
    let gold = golden::spmspv(m, x).expect("shapes validated");
    let mut sram = sram_for(cfg, spmspv_words(m, x) + shard_words(m, fab.tiles));
    let l = layout::layout_spmspv(&mut sram, m, x);
    run_fabric(cfg, fab, "spmspv_fabric_v2", &gold, (sram, l), m, &kernels::spmspv_hht_v2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hht_sparse::generate;

    #[test]
    fn spmv_baseline_and_hht_agree_with_golden() {
        let cfg = SystemConfig::paper_default();
        let m = generate::random_csr(24, 24, 0.6, 11);
        let v = generate::random_dense_vector(24, 12);
        let base = run_spmv_baseline(&cfg, &m, &v);
        let hht = run_spmv_hht(&cfg, &m, &v);
        // Both verified against golden inside the runners; also: HHT must
        // be faster.
        assert!(
            hht.stats.cycles < base.stats.cycles,
            "HHT ({}) not faster than baseline ({})",
            hht.stats.cycles,
            base.stats.cycles
        );
    }

    #[test]
    fn spmv_scalar_interface() {
        let cfg = SystemConfig::paper_default().with_vlen(1);
        let m = generate::random_csr(16, 16, 0.5, 21);
        let v = generate::random_dense_vector(16, 22);
        let base = run_spmv_baseline(&cfg, &m, &v);
        let hht = run_spmv_hht(&cfg, &m, &v);
        assert!(hht.stats.cycles < base.stats.cycles);
    }

    #[test]
    fn spmspv_all_three_kernels_agree() {
        let cfg = SystemConfig::paper_default();
        let m = generate::random_csr(24, 24, 0.7, 31);
        let x = generate::random_sparse_vector(24, 0.7, 32);
        let base = run_spmspv_baseline(&cfg, &m, &x);
        let v1 = run_spmspv_hht_v1(&cfg, &m, &x);
        let v2 = run_spmspv_hht_v2(&cfg, &m, &x);
        assert!(v1.y.max_abs_diff(&base.y) < 1e-3);
        assert!(v2.y.max_abs_diff(&base.y) < 1e-3);
    }

    #[test]
    fn smash_run_matches_golden() {
        let cfg = SystemConfig::paper_default();
        let csr = generate::random_csr(32, 32, 0.8, 41);
        let m = SmashMatrix::from_triplets(32, 32, &csr.triplets()).unwrap();
        let v = generate::random_dense_vector(32, 42);
        let out = run_smash_spmv_hht(&cfg, &m, &v);
        assert!(out.stats.cycles > 0);
    }

    #[test]
    fn fabric_spmv_matches_golden_across_tile_counts() {
        let cfg = SystemConfig::paper_default();
        let m = generate::random_csr(48, 48, 0.6, 61);
        let v = generate::random_dense_vector(48, 62);
        let single = run_spmv_fabric(&cfg, FabricConfig::single(), &m, &v);
        for n in [2, 4] {
            let out = run_spmv_fabric(&cfg, FabricConfig::scaled(n), &m, &v);
            assert_eq!(out.stats.tiles.len(), n);
            assert!(out.y.max_abs_diff(&single.y) < 1e-3);
        }
    }

    #[test]
    fn fabric_spmspv_variants_match_golden() {
        let cfg = SystemConfig::paper_default();
        let m = generate::random_csr(32, 32, 0.7, 71);
        let x = generate::random_sparse_vector(32, 0.7, 72);
        // Verified against golden inside the runners.
        let v1 = run_spmspv_fabric_v1(&cfg, FabricConfig::scaled(2), &m, &x);
        let v2 = run_spmspv_fabric_v2(&cfg, FabricConfig::scaled(2), &m, &x);
        assert!(v1.y.max_abs_diff(&v2.y) < 1e-3);
    }

    #[test]
    fn empty_matrix_runs() {
        let cfg = SystemConfig::paper_default();
        let m = generate::random_csr(8, 8, 1.0, 51);
        let v = generate::random_dense_vector(8, 52);
        let base = run_spmv_baseline(&cfg, &m, &v);
        assert!(base.y.as_slice().iter().all(|x| *x == 0.0));
        let hht = run_spmv_hht(&cfg, &m, &v);
        assert!(hht.y.as_slice().iter().all(|x| *x == 0.0));
    }
}
