//! One-call "run this kernel on this problem" helpers.
//!
//! Every runner builds the SRAM image, assembles the kernel, runs the
//! system to completion, reads back `y` and **verifies it against the
//! golden `hht-sparse` kernel** (exact to a small FP-reassociation
//! tolerance). A wrong result panics: performance numbers from an
//! incorrect kernel are meaningless.
//!
//! With [`SystemConfig::recovery`] enabled, the accelerated runners
//! degrade gracefully instead: when the HHT is declared failed
//! ([`RunError::HhtFailed`]), the watchdog expires, or the accelerated
//! result diverges from golden, the kernel is re-run on the baseline
//! software path (fault injection disabled) and the returned `y` is the
//! numerically correct fallback result. The failed attempt's cycles are
//! added to the total so the degradation is visible in the stats, and the
//! recovery is recorded in [`RunOutput::recovery`] and
//! `stats.faults.fallbacks`.

use crate::config::SystemConfig;
use crate::fabric::{Fabric, FabricConfig, FabricStats, SchedStats, TileHealth, TileSchedStats};
use crate::kernels;
use crate::layout;
use crate::system::{System, SystemStats};
use hht_fault::FaultPlan;
use hht_mem::{SharedMemStats, SharedMemory, Sram};
use hht_sim::RunError;
use hht_sparse::{
    kernels as golden, CscMatrix, CsrMatrix, DenseMatrix, DenseVector, SmashMatrix, SparseFormat,
    SparseVector,
};

/// How an accelerated run recovered after a fault (see
/// [`RunOutput::recovery`]).
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Human-readable description of what failed (the [`RunError`] or the
    /// golden-divergence that triggered the fallback).
    pub error: String,
    /// Fault domain (tile index) the failure was attributed to. Always 0 on
    /// the single-system path, where the whole machine is one domain.
    pub tile: usize,
    /// Statistics of the failed accelerated attempt (its cycles are also
    /// folded into the returned total).
    pub failed_stats: SystemStats,
}

/// Numeric result plus measured statistics of one kernel run.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// The computed output vector.
    pub y: DenseVector,
    /// Measured statistics.
    pub stats: SystemStats,
    /// Merged structured-event timeline (empty unless the configuration
    /// enables event tracing).
    pub events: Vec<hht_obs::Event>,
    /// `Some` when the recovery policy re-ran the kernel on the software
    /// path after an accelerated-run failure; `None` for a clean run.
    pub recovery: Option<RecoveryReport>,
    /// Host-side scheduler accounting (stepped vs skipped cycles). Not part
    /// of [`SystemStats`]: the split depends on the scheduler mode.
    pub sched: SchedStats,
    /// Ring-buffer eviction counters for the run's observability sinks
    /// (all zero when tracing is off); attach to the exported snapshot with
    /// [`crate::metrics::MetricsSnapshot::with_drops`].
    pub dropped: hht_obs::ObsDrops,
}

/// Read the host-side run accounting (scheduler counters and ring drops),
/// then drain the event streams — in that order: draining resets the rings.
fn drain(sys: &mut System) -> (SchedStats, hht_obs::ObsDrops, Vec<hht_obs::Event>) {
    let sched = sys.sched_stats();
    let dropped = sys.obs_drops();
    (sched, dropped, sys.take_events())
}

/// Re-export of [`SystemStats`] under the name used by the experiment
/// drivers.
pub type RunStats = SystemStats;

/// Tolerance for comparing simulated FP results with golden results: both
/// use f32 adds in the same per-row order, but vector strip-mining
/// reassociates partial sums.
const TOL: f32 = 1e-3;

fn matches_golden(y: &DenseVector, golden: &DenseVector) -> bool {
    let scale = golden.as_slice().iter().fold(1.0f32, |m, v| m.max(v.abs()));
    y.max_abs_diff(golden) <= TOL * scale
}

fn verify(y: &DenseVector, golden: &DenseVector, what: &str) {
    let scale = golden.as_slice().iter().fold(1.0f32, |m, v| m.max(v.abs()));
    let diff = y.max_abs_diff(golden);
    assert!(
        diff <= TOL * scale,
        "{what}: simulated result diverges from golden (max abs diff {diff}, scale {scale})"
    );
}

/// Shared driver for the accelerated (HHT) runners: run the system, verify
/// against golden, and — when `cfg.recovery` is on — degrade to the
/// software `baseline` closure on HHT failure, watchdog expiry, or a
/// corrupted result. Guest faults unrelated to the accelerator still
/// panic: those are kernel bugs, not injected hardware faults.
fn run_accelerated(
    cfg: &SystemConfig,
    what: &str,
    golden: &DenseVector,
    rows: usize,
    plan: Option<FaultPlan>,
    build: &dyn Fn(&SystemConfig) -> (System, u32),
    baseline: &dyn Fn(&SystemConfig) -> RunOutput,
) -> RunOutput {
    let (mut sys, y_base) = build(cfg);
    if let Some(p) = plan {
        sys.set_fault_plan(p);
    }
    match sys.run() {
        Ok(stats) => {
            let y = sys.read_output(y_base, rows);
            if matches_golden(&y, golden) {
                let (sched, dropped, events) = drain(&mut sys);
                return RunOutput { y, stats, events, recovery: None, sched, dropped };
            }
            if !cfg.recovery {
                verify(&y, golden, what); // panics with the standard message
            }
            let error = format!("{what}: accelerated result diverges from golden");
            let (sched, dropped, events) = drain(&mut sys);
            software_fallback(cfg, error, stats, events, sched, dropped, baseline)
        }
        Err(e @ (RunError::HhtFailed { .. } | RunError::Watchdog(_))) if cfg.recovery => {
            let stats = sys.stats();
            let (sched, dropped, events) = drain(&mut sys);
            software_fallback(cfg, e.to_string(), stats, events, sched, dropped, baseline)
        }
        Err(e) => panic!("{what} kernel fault: {e}"),
    }
}

/// Re-run the kernel on the baseline software path after a failed
/// accelerated attempt, folding the failed attempt's cost into the stats.
fn software_fallback(
    cfg: &SystemConfig,
    error: String,
    failed_stats: SystemStats,
    failed_events: Vec<hht_obs::Event>,
    failed_sched: SchedStats,
    failed_dropped: hht_obs::ObsDrops,
    baseline: &dyn Fn(&SystemConfig) -> RunOutput,
) -> RunOutput {
    let mut fb_cfg = *cfg;
    fb_cfg.fault.seed = 0; // the fallback run must not re-inject faults
    let mut out = baseline(&fb_cfg);
    out.sched.add(&failed_sched);
    out.dropped.add(&failed_dropped);
    out.stats.cycles += failed_stats.cycles;
    out.stats.faults.injected = failed_stats.faults.injected;
    out.stats.faults.dropped = failed_stats.faults.dropped;
    out.stats.faults.fallbacks = 1;
    out.stats.faults.failed_cycles = failed_stats.cycles;
    if cfg.trace.events {
        // Keep the failed attempt's timeline (where the injections and
        // detections live) plus one recovery marker; the fallback run's
        // own events would carry restarted cycle stamps, so they are
        // dropped rather than spliced in.
        let mut events = failed_events;
        events.push(hht_obs::Event {
            cycle: failed_stats.cycles,
            track: hht_obs::Track::Fault,
            kind: hht_obs::EventKind::Recovery { what: "software_fallback" },
        });
        out.events = events;
    }
    out.recovery = Some(RecoveryReport { error, tile: 0, failed_stats });
    out
}

/// Build the SRAM, growing it beyond the configured (Table-1) 1 MB when
/// the problem image does not fit. The paper runs 512x512 matrices at 10 %
/// sparsity, whose CSR image alone is ~1.9 MB — their spike memory model
/// must have been sized up the same way (documented in EXPERIMENTS.md).
fn sram_for(cfg: &SystemConfig, words: usize) -> Sram {
    // base offset + arrays + per-array alignment padding slack
    let needed = 0x100u64 + 4 * words as u64 + 32 * 8;
    let size = (cfg.ram_size as u64).max(needed.next_multiple_of(4096)) as u32;
    Sram::new(size, cfg.ram_word_cycles)
}

/// [`sram_for`] into a recycled buffer: same size policy, same (all-zero)
/// contents, so a warm-pool image build is byte-identical to a cold one.
fn sram_for_in(cfg: &SystemConfig, words: usize, mut buf: Vec<u8>) -> Sram {
    let needed = 0x100u64 + 4 * words as u64 + 32 * 8;
    let size = (cfg.ram_size as u64).max(needed.next_multiple_of(4096)) as u32;
    buf.clear();
    buf.resize(size as usize, 0);
    Sram::from_data(buf, cfg.ram_word_cycles)
}

fn spmv_words(m: &CsrMatrix, v: &DenseVector) -> usize {
    (m.rows() + 1) + 2 * m.nnz() + v.len() + m.rows()
}

fn spmspv_words(m: &CsrMatrix, x: &SparseVector) -> usize {
    (m.rows() + 1) + 2 * m.nnz() + 2 * x.nnz() + m.rows()
}

/// Run baseline SpMV (CPU only, Algorithm 1).
pub fn run_spmv_baseline(cfg: &SystemConfig, m: &CsrMatrix, v: &DenseVector) -> RunOutput {
    let mut sram = sram_for(cfg, spmv_words(m, v));
    let l = layout::layout_spmv(&mut sram, m, v);
    let program = kernels::spmv_baseline(&l, cfg.core.vlen > 1);
    let mut sys = System::new(cfg, program, sram);
    let stats = sys.run().expect("baseline SpMV kernel fault");
    let y = sys.read_output(l.y_base, m.rows());
    verify(&y, &golden::spmv(m, v).expect("shapes validated by layout"), "spmv_baseline");
    let (sched, dropped, events) = drain(&mut sys);
    RunOutput { y, stats, events, recovery: None, sched, dropped }
}

/// Run HHT-assisted SpMV.
pub fn run_spmv_hht(cfg: &SystemConfig, m: &CsrMatrix, v: &DenseVector) -> RunOutput {
    run_spmv_hht_inner(cfg, m, v, None)
}

/// Run HHT-assisted SpMV with an explicit fault schedule (replacing any
/// seed-derived plan from `cfg.fault`).
pub fn run_spmv_hht_with_plan(
    cfg: &SystemConfig,
    m: &CsrMatrix,
    v: &DenseVector,
    plan: FaultPlan,
) -> RunOutput {
    run_spmv_hht_inner(cfg, m, v, Some(plan))
}

fn run_spmv_hht_inner(
    cfg: &SystemConfig,
    m: &CsrMatrix,
    v: &DenseVector,
    plan: Option<FaultPlan>,
) -> RunOutput {
    let gold = golden::spmv(m, v).expect("shapes validated by layout");
    run_accelerated(
        cfg,
        "spmv_hht",
        &gold,
        m.rows(),
        plan,
        &|cfg| {
            let mut sram = sram_for(cfg, spmv_words(m, v));
            let l = layout::layout_spmv(&mut sram, m, v);
            let program = kernels::spmv_hht(&l, cfg.core.vlen > 1);
            (System::new(cfg, program, sram), l.y_base)
        },
        &|cfg| run_spmv_baseline(cfg, m, v),
    )
}

/// Run baseline SpMSpV (CPU-only scalar merge).
pub fn run_spmspv_baseline(cfg: &SystemConfig, m: &CsrMatrix, x: &SparseVector) -> RunOutput {
    let mut sram = sram_for(cfg, spmspv_words(m, x));
    let l = layout::layout_spmspv(&mut sram, m, x);
    let program = kernels::spmspv_baseline(&l);
    let mut sys = System::new(cfg, program, sram);
    let stats = sys.run().expect("baseline SpMSpV kernel fault");
    let y = sys.read_output(l.y_base, m.rows());
    verify(&y, &golden::spmspv(m, x).expect("shapes validated"), "spmspv_baseline");
    let (sched, dropped, events) = drain(&mut sys);
    RunOutput { y, stats, events, recovery: None, sched, dropped }
}

/// Run the work-efficient CSC SpMSpV baseline (related work [43]):
/// column-scatter over the non-zeros of `x` only.
pub fn run_spmspv_csc_baseline(cfg: &SystemConfig, m: &CsrMatrix, x: &SparseVector) -> RunOutput {
    let csc = CscMatrix::from_triplets(m.rows(), m.cols(), &m.triplets())
        .expect("valid triplets from CSR");
    let words = (m.cols() + 1) + 2 * m.nnz() + 2 * x.nnz() + m.rows();
    let mut sram = sram_for(cfg, words);
    let l = kernels::layout_spmspv_csc(&mut sram, &csc, x);
    let program = kernels::spmspv_csc_baseline(&l);
    let mut sys = System::new(cfg, program, sram);
    let stats = sys.run().expect("CSC SpMSpV kernel fault");
    let y = sys.read_output(l.y_base, m.rows());
    verify(&y, &golden::spmspv(m, x).expect("shapes validated"), "spmspv_csc_baseline");
    let (sched, dropped, events) = drain(&mut sys);
    RunOutput { y, stats, events, recovery: None, sched, dropped }
}

/// Run HHT SpMSpV variant-1 (aligned pairs).
pub fn run_spmspv_hht_v1(cfg: &SystemConfig, m: &CsrMatrix, x: &SparseVector) -> RunOutput {
    let gold = golden::spmspv(m, x).expect("shapes validated");
    run_accelerated(
        cfg,
        "spmspv_hht_v1",
        &gold,
        m.rows(),
        None,
        &|cfg| {
            let mut sram = sram_for(cfg, spmspv_words(m, x));
            let l = layout::layout_spmspv(&mut sram, m, x);
            let program = kernels::spmspv_hht_v1(&l);
            (System::new(cfg, program, sram), l.y_base)
        },
        &|cfg| run_spmspv_baseline(cfg, m, x),
    )
}

/// Run HHT SpMSpV variant-2 (value-or-zero).
pub fn run_spmspv_hht_v2(cfg: &SystemConfig, m: &CsrMatrix, x: &SparseVector) -> RunOutput {
    let gold = golden::spmspv(m, x).expect("shapes validated");
    run_accelerated(
        cfg,
        "spmspv_hht_v2",
        &gold,
        m.rows(),
        None,
        &|cfg| {
            let mut sram = sram_for(cfg, spmspv_words(m, x));
            let l = layout::layout_spmspv(&mut sram, m, x);
            let program = kernels::spmspv_hht_v2(&l);
            (System::new(cfg, program, sram), l.y_base)
        },
        &|cfg| run_spmspv_baseline(cfg, m, x),
    )
}

/// Run the dense (expanded) matrix-vector baseline: the §6 comparator that
/// stores every zero and pays no metadata cost.
pub fn run_dense_matvec(cfg: &SystemConfig, m: &DenseMatrix, v: &DenseVector) -> RunOutput {
    let mut sram = sram_for(cfg, m.rows() * m.cols() + v.len() + m.rows());
    let l = layout::layout_dense(&mut sram, m, v);
    let program = kernels::dense_matvec(&l);
    let mut sys = System::new(cfg, program, sram);
    let stats = sys.run().expect("dense matvec kernel fault");
    let y = sys.read_output(l.y_base, m.rows());
    verify(&y, &m.matvec(v).expect("shapes validated"), "dense_matvec");
    let (sched, dropped, events) = drain(&mut sys);
    RunOutput { y, stats, events, recovery: None, sched, dropped }
}

/// Run SpMV with the *programmable* HHT back-end (§7 future work): same
/// CPU-side kernel, but the gather is performed by a helper core running a
/// microprogram instead of the ASIC FSM.
pub fn run_spmv_hht_programmable(cfg: &SystemConfig, m: &CsrMatrix, v: &DenseVector) -> RunOutput {
    let gold = golden::spmv(m, v).expect("shapes validated by layout");
    run_accelerated(
        cfg,
        "spmv_hht_programmable",
        &gold,
        m.rows(),
        None,
        &|cfg| {
            let mut sram = sram_for(cfg, spmv_words(m, v));
            let l = layout::layout_spmv(&mut sram, m, v);
            let program = kernels::spmv_hht_programmable(&l, cfg.core.vlen > 1);
            (System::new(cfg, program, sram), l.y_base)
        },
        &|cfg| run_spmv_baseline(cfg, m, v),
    )
}

/// Run HHT-assisted SpMV over a SMASH-encoded matrix (§6 ablation).
pub fn run_smash_spmv_hht(cfg: &SystemConfig, m: &SmashMatrix, v: &DenseVector) -> RunOutput {
    // Golden (and the fallback path): densify via triplets and use CSR.
    let csr = CsrMatrix::from_triplets(m.rows(), m.cols(), &m.triplets())
        .expect("triplets from a valid SMASH matrix");
    let gold = golden::spmv(&csr, v).expect("shapes validated");
    run_accelerated(
        cfg,
        "smash_spmv_hht",
        &gold,
        m.rows(),
        None,
        &|cfg| {
            let words = m.level(0).len()
                + if m.num_levels() > 1 { m.level(1).len() } else { 0 }
                + m.nnz()
                + v.len()
                + m.rows();
            let mut sram = sram_for(cfg, words);
            let l = layout::layout_smash_spmv(&mut sram, m, v);
            let program = kernels::smash_spmv_hht(&l);
            (System::new(cfg, program, sram), l.y_base)
        },
        &|cfg| run_spmv_baseline(cfg, &csr, v),
    )
}

/// Numeric result plus measured statistics of one fabric run.
#[derive(Debug, Clone)]
pub struct FabricRunOutput {
    /// The computed output vector (the full problem, assembled from every
    /// tile's row block).
    pub y: DenseVector,
    /// Per-tile and shared-memory statistics.
    pub stats: FabricStats,
    /// One merged event timeline per tile (empty unless the configuration
    /// enables event tracing).
    pub tile_events: Vec<Vec<hht_obs::Event>>,
    /// Host-side scheduler accounting (stepped vs skipped cycles),
    /// fabric-wide.
    pub sched: SchedStats,
    /// Host-side per-tile scheduler accounting (queue pops, parked spans),
    /// indexed by tile.
    pub tile_sched: Vec<TileSchedStats>,
    /// Ring-buffer eviction counters summed over every tile's sinks.
    pub dropped: hht_obs::ObsDrops,
    /// The fast-forward spans the cycle-skip scheduler took (empty when
    /// tracing is off or the per-cycle scheduler ran); feed to
    /// [`hht_obs::chrome::chrome_trace_json_tiles_sched`].
    pub skip_spans: Vec<hht_obs::SkipSpan>,
    /// `Some` when the per-tile fault-domain recovery policy had to act
    /// (any tile failed an attempt, or the whole run fell back to
    /// software); `None` for a clean run.
    pub recovery: Option<FabricRecovery>,
}

/// One failover attempt of the fabric recovery driver (see
/// [`FabricRecovery::attempts`]).
#[derive(Debug, Clone, PartialEq)]
pub struct FabricAttempt {
    /// Wall cycles this attempt ran before completing or failing (retry
    /// backoff is accounted separately in
    /// [`FabricRecovery::backoff_cycles`]).
    pub wall: u64,
    /// Row-range assignment `(tile, (row0, row1))` per participating tile,
    /// in global (original) tile indices.
    pub shards: Vec<(usize, (usize, usize))>,
    /// Fault domains that failed this attempt (global tile index, rendered
    /// error); empty for a fully clean attempt.
    pub failed: Vec<(usize, String)>,
}

/// How the fabric recovery policy degraded a run across per-tile fault
/// domains (see [`FabricRunOutput::recovery`]).
///
/// Per-tile state machine: healthy → suspected (bounded exponential-backoff
/// retries, `tile_retries`/`tile_backoff`) → quarantined; fatal faults
/// ([`hht_fault::FaultKind::TileKill`]) quarantine immediately. A
/// quarantined tile's unfinished row shard is re-sharded (nnz-balanced)
/// across the surviving tiles and re-run; the whole-run software fallback
/// fires only when every tile is dead.
#[derive(Debug, Clone, PartialEq)]
pub struct FabricRecovery {
    /// Final health verdict per original tile.
    pub health: Vec<TileHealth>,
    /// Every attempt in order; `attempts[0]` is the original full-width run.
    pub attempts: Vec<FabricAttempt>,
    /// Wall cycle at which each tile was quarantined (`None` = never).
    pub quarantined_at: Vec<Option<u64>>,
    /// Total retry-backoff cycles charged to the wall clock (the max
    /// per-attempt backoff across that attempt's failing tiles).
    pub backoff_cycles: u64,
    /// `Some(reason)` when the whole run degraded to the software baseline:
    /// every tile quarantined, retry budget exhausted, or the assembled
    /// result diverged from golden.
    pub fallback: Option<String>,
    /// Cycles the software-fallback run added to the wall clock (0 without
    /// a whole-run fallback).
    pub fallback_cycles: u64,
}

impl FabricRecovery {
    /// Tiles never quarantined.
    pub fn survivors(&self) -> usize {
        self.health.iter().filter(|h| !h.is_quarantined()).count()
    }

    /// Global indices of the quarantined tiles.
    pub fn quarantined(&self) -> Vec<usize> {
        (0..self.health.len()).filter(|&t| self.health[t].is_quarantined()).collect()
    }

    /// Per-tile quarantine spans (quarantine cycle to end of run) for the
    /// Chrome fault-domain lane
    /// ([`hht_obs::chrome::chrome_trace_json_tiles_fault_domains`]).
    pub fn domain_spans(&self, wall: u64) -> Vec<Vec<hht_obs::SkipSpan>> {
        self.quarantined_at
            .iter()
            .map(|q| match q {
                Some(c) => vec![hht_obs::SkipSpan { start: *c, end: wall.max(*c) }],
                None => Vec::new(),
            })
            .collect()
    }
}

/// Where the fabric driver gets (and returns) its fabrics and image
/// buffers. The default implementation is the cold path: fresh allocations
/// and [`Fabric::new`] every attempt, which is exactly the seed behaviour.
/// The serving layer (`hht-serve`) substitutes a warm pool that recycles a
/// retired fabric's multi-megabyte memory buffer into the next image build
/// — the determinism suite pins that both paths are bit-identical.
pub trait FabricProvider {
    /// A byte buffer for the next image build. May hold stale bytes of any
    /// length; image builders clear and refill it.
    fn image_buffer(&mut self) -> Vec<u8> {
        Vec::new()
    }

    /// Produce a fabric for one attempt over an already-loaded memory.
    fn acquire(
        &mut self,
        cfg: &SystemConfig,
        fab: FabricConfig,
        programs: Vec<hht_isa::Program>,
        mem: SharedMemory,
    ) -> Fabric {
        Fabric::new(cfg, fab, programs, mem)
    }

    /// Take a finished attempt's fabric back (the cold path just drops it).
    fn release(&mut self, _fabric: Fabric) {}
}

/// The default [`FabricProvider`]: no reuse, identical to pre-serve
/// behaviour.
pub struct ColdStart;

impl FabricProvider for ColdStart {}

/// A reusable precomputed fabric job: the pristine (pre-shard-copy)
/// problem image, its layout, and the attempt-0 nnz-balanced shard
/// assignment. This is what the serving layer's content-addressed cache
/// stores per `(matrix, operand, kernel, tile count)` key: a cache hit
/// skips SRAM sizing, layout, and shard balancing, and rebuilds the image
/// by a single `memcpy` into a recycled buffer.
///
/// Bit-identity of cached replays holds because the image is captured
/// *before* [`layout::shard_layouts`] runs: the per-attempt shard
/// row-pointer copies are placed by the driver at a deterministic bump
/// address on every attempt, exactly as on the cold path.
#[derive(Debug, Clone)]
pub struct FabricPlan {
    /// The pristine image bytes (full SRAM size, shard area still zero).
    pub image: Vec<u8>,
    /// Layout of the full problem inside `image`.
    pub layout: layout::ProblemLayout,
    /// Attempt-0 row-range assignment for the planned tile count.
    pub shards: Vec<(usize, usize)>,
}

/// Sum per-tile host scheduler counters across attempts. Exhaustive
/// destructuring: a new counter breaks this merge at compile time instead
/// of being silently dropped from multi-attempt totals.
fn add_tile_sched(acc: &mut TileSchedStats, s: &TileSchedStats) {
    let TileSchedStats { pops, stepped_cycles, skipped_cycles, parks } = *s;
    acc.pops += pops;
    acc.stepped_cycles += stepped_cycles;
    acc.skipped_cycles += skipped_cycles;
    acc.parks += parks;
}

/// Assign the pending row ranges to `s` surviving tiles. With at least as
/// many ranges as survivors, the first `s` ranges go out as-is (the rest
/// wait for the next attempt). With fewer, the `s` shard slots are
/// distributed across the ranges proportionally to their nnz (every range
/// gets at least one; leftovers go one at a time to the range with the most
/// nnz per slot, ties to the lowest index — fully deterministic) and each
/// range is nnz-balance split with [`layout::row_shards_range`]. Returns
/// the per-tile ranges plus how many pending ranges were consumed.
fn assign_shards(
    m: &CsrMatrix,
    pending: &[(usize, usize)],
    s: usize,
) -> (Vec<(usize, usize)>, usize) {
    if pending.len() >= s {
        return (pending[..s].to_vec(), s);
    }
    let ptr = m.row_ptr();
    let nnz = |r: &(usize, usize)| (ptr[r.1] - ptr[r.0]) as u64;
    let mut slots = vec![1usize; pending.len()];
    for _ in pending.len()..s {
        let mut best = 0usize;
        let mut best_load = -1.0f64;
        for (i, r) in pending.iter().enumerate() {
            let load = nnz(r) as f64 / slots[i] as f64;
            if load > best_load {
                best_load = load;
                best = i;
            }
        }
        slots[best] += 1;
    }
    let assigned = pending
        .iter()
        .zip(&slots)
        .flat_map(|(&(r0, r1), &k)| layout::row_shards_range(m, r0, r1, k))
        .collect();
    (assigned, pending.len())
}

/// Shared driver for the fabric runners: build the full image plus
/// per-shard row-pointer copies, run one HHT kernel per tile over the
/// banked memory, and verify the assembled result against golden.
///
/// Without `cfg.recovery` a tile fault or divergence panics (the seed
/// behaviour). With it, each tile is its own fault domain: a failed tile is
/// retried with bounded exponential backoff and then quarantined, its
/// unfinished row shard re-sharded nnz-balanced across the surviving tiles
/// on a fresh image; N tiles degrade to N−1, …, down to the software
/// `baseline` fallback only when every tile is quarantined (or the
/// assembled result diverges from golden). Clean tiles of a failed attempt
/// keep their finished row ranges — only unfinished work is re-run.
///
/// Stats: per-original-tile [`SystemStats`] accumulate across attempts; a
/// failed tile's stall counters are discarded (its partial work is thrown
/// away) but its elapsed cycles and backoff are charged to both `cycles`
/// and `faults.failed_cycles`, so CPI accounting stays exact. The wall
/// clock sums every attempt plus the max backoff per failed attempt. Event
/// timelines keep attempt 0 (where injections live) plus host-side
/// quarantine/failover markers; retries run untraced.
#[allow(clippy::too_many_arguments)]
fn run_fabric(
    cfg: &SystemConfig,
    fab: FabricConfig,
    what: &str,
    golden: &DenseVector,
    build_image: &dyn Fn(Vec<u8>) -> (Sram, layout::ProblemLayout),
    m: &CsrMatrix,
    emit: &dyn Fn(&layout::ProblemLayout) -> hht_isa::Program,
    plan: Option<FaultPlan>,
    shards_hint: Option<&[(usize, usize)]>,
    provider: &mut dyn FabricProvider,
    baseline: &dyn Fn(&SystemConfig) -> RunOutput,
) -> FabricRunOutput {
    let n0 = fab.tiles;
    let rows = m.rows();
    let mut health = vec![TileHealth::Healthy; n0];
    let mut quarantined_at: Vec<Option<u64>> = vec![None; n0];
    let mut acc: Vec<SystemStats> = vec![SystemStats::default(); n0];
    let mut mem_acc = SharedMemStats::default();
    let mut y = vec![0f32; rows];
    let mut wall = 0u64;
    let mut backoff_total = 0u64;
    let mut attempts: Vec<FabricAttempt> = Vec::new();
    let mut pending: Vec<(usize, usize)> = vec![(0, rows)];
    let mut sched = SchedStats::default();
    let mut tile_sched = vec![TileSchedStats::default(); n0];
    let mut dropped = hht_obs::ObsDrops::default();
    let mut tile_events: Vec<Vec<hht_obs::Event>> = vec![Vec::new(); n0];
    let mut skip_spans: Vec<hht_obs::SkipSpan> = Vec::new();
    let mut plan = plan;
    let mut fallback_reason: Option<String> = None;
    let mut fallback_cycles = 0u64;
    // Retry-storm backstop: enough for every tile to burn its full retry
    // budget plus the quarantine cascade, with slack.
    let max_attempts = (cfg.tile_retries as usize + 2) * n0 + 2;

    let mut attempt = 0usize;
    loop {
        let survivors: Vec<usize> = (0..n0).filter(|&t| !health[t].is_quarantined()).collect();
        if survivors.is_empty() {
            fallback_reason = Some("every tile quarantined".into());
            break;
        }
        if attempts.len() >= max_attempts {
            fallback_reason = Some("retry budget exhausted".into());
            break;
        }
        // The attempt-0 full-width assignment may come precomputed from a
        // cached plan; `assign_shards` over the initial single pending
        // range is deterministic, so the hint is the same split it would
        // produce (the determinism suite pins this end to end).
        let (assigned, taken) = match shards_hint {
            Some(h) if attempt == 0 && survivors.len() == n0 => (h.to_vec(), pending.len()),
            _ => assign_shards(m, &pending, survivors.len()),
        };
        // Fresh image per attempt: failover restarts shards from clean
        // state (a fault may have corrupted shared arrays), and the bump
        // allocator re-places the rebased row-pointer copies.
        let (mut sram, full) = build_image(provider.image_buffer());
        let layouts = layout::shard_layouts(&mut sram, &full, m, &assigned);
        let programs = layouts.iter().map(emit).collect();
        let fab_a = FabricConfig { tiles: survivors.len(), banks: fab.banks, arb: fab.arb };
        let mem = SharedMemory::from_sram(sram, fab.banks, survivors.len());
        let mut attempt_cfg = *cfg;
        if attempt > 0 {
            // Retries run clean and untraced: the injected campaign (and
            // its timeline) belongs to the original attempt.
            attempt_cfg.fault.seed = 0;
            attempt_cfg.trace.events = false;
        }
        let mut fabric = provider.acquire(&attempt_cfg, fab_a, programs, mem);
        if attempt == 0 {
            if let Some(p) = plan.take() {
                fabric.set_fault_plan(p);
            }
        }
        let result = fabric.run();
        if let Err(e) = &result {
            if !cfg.recovery {
                panic!("{what}: fabric run failed: {e:?}");
            }
        }
        let st = fabric.stats();
        wall += st.cycles;
        mem_acc.absorb(&st.mem);
        sched.add(&fabric.sched_stats());
        let attempt_tile_sched = fabric.tile_sched_stats().to_vec();
        for (lt, &g) in survivors.iter().enumerate() {
            add_tile_sched(&mut tile_sched[g], &attempt_tile_sched[lt]);
        }
        dropped.add(&fabric.obs_drops());
        let spans = fabric.take_skip_spans();
        if attempt == 0 {
            skip_spans = spans;
            tile_events = fabric.take_all_events();
        }
        let failed: Vec<(usize, RunError)> = match &result {
            Ok(_) => Vec::new(),
            Err(e) => e.tiles.clone(),
        };
        let mut failed_named: Vec<(usize, String)> = Vec::new();
        let mut requeue: Vec<(usize, usize)> = Vec::new();
        let mut max_backoff = 0u64;
        for (lt, &g) in survivors.iter().enumerate() {
            let (r0, r1) = assigned[lt];
            if let Some((_, e)) = failed.iter().find(|&&(ft, _)| ft == lt) {
                // Failed domain: discard its partial counters, charge its
                // elapsed cycles as failed cycles, re-queue its range.
                let tc = st.tiles[lt].cycles;
                acc[g].cycles += tc;
                acc[g].faults.failed_cycles += tc;
                acc[g].faults.injected += st.tiles[lt].faults.injected;
                acc[g].faults.dropped += st.tiles[lt].faults.dropped;
                acc[g].faults.failovers += 1;
                failed_named.push((g, e.to_string()));
                if r1 > r0 {
                    requeue.push((r0, r1));
                }
                let prev_retries = match health[g] {
                    TileHealth::Suspected { retries } => retries,
                    _ => 0,
                };
                if fabric.tile_fatal(lt) || prev_retries + 1 > cfg.tile_retries {
                    health[g] = TileHealth::Quarantined;
                    quarantined_at[g] = Some(wall);
                } else {
                    let retries = prev_retries + 1;
                    health[g] = TileHealth::Suspected { retries };
                    let backoff = cfg.tile_backoff << (retries - 1);
                    acc[g].cycles += backoff;
                    acc[g].faults.failed_cycles += backoff;
                    max_backoff = max_backoff.max(backoff);
                }
                if cfg.trace.events {
                    tile_events[g].push(hht_obs::Event {
                        cycle: wall,
                        track: hht_obs::Track::Fault,
                        kind: hht_obs::EventKind::Failover { rows: (r1 - r0) as u32 },
                    });
                    if health[g].is_quarantined() {
                        tile_events[g].push(hht_obs::Event {
                            cycle: wall,
                            track: hht_obs::Track::Fault,
                            kind: hht_obs::EventKind::Quarantine { retries: prev_retries },
                        });
                    }
                }
            } else {
                // Clean domain: full stats absorb, salvage its row range —
                // finished work is never re-run.
                acc[g].absorb(&st.tiles[lt]);
                let out = fabric.read_output(full.y_base + 4 * r0 as u32, r1 - r0);
                y[r0..r1].copy_from_slice(out.as_slice());
            }
        }
        provider.release(fabric);
        wall += max_backoff;
        backoff_total += max_backoff;
        attempts.push(FabricAttempt {
            wall: st.cycles,
            shards: survivors.iter().copied().zip(assigned.iter().copied()).collect(),
            failed: failed_named,
        });
        let mut next: Vec<(usize, usize)> = pending[taken..].to_vec();
        next.extend(requeue);
        pending = next;
        if pending.is_empty() {
            break;
        }
        attempt += 1;
    }

    let mut yv = DenseVector::from(y);
    if fallback_reason.is_none() && !matches_golden(&yv, golden) {
        if !cfg.recovery {
            verify(&yv, golden, what); // panics with the standard message
        }
        fallback_reason = Some(format!("{what}: assembled result diverges from golden"));
    }
    if fallback_reason.is_some() {
        // Whole-run degradation: re-run on the baseline software path
        // (fault injection off), exactly like the single-system policy.
        let mut fb_cfg = *cfg;
        fb_cfg.fault.seed = 0;
        let base = baseline(&fb_cfg);
        yv = base.y;
        wall += base.stats.cycles;
        fallback_cycles = base.stats.cycles;
        acc[0].faults.fallbacks = 1;
        if cfg.trace.events {
            tile_events[0].push(hht_obs::Event {
                cycle: wall,
                track: hht_obs::Track::Fault,
                kind: hht_obs::EventKind::Recovery { what: "software_fallback" },
            });
        }
    }

    let recovered = fallback_reason.is_some() || attempts.iter().any(|a| !a.failed.is_empty());
    FabricRunOutput {
        y: yv,
        stats: FabricStats { cycles: wall, tiles: acc, mem: mem_acc },
        tile_events,
        sched,
        tile_sched,
        dropped,
        skip_spans,
        recovery: recovered.then_some(FabricRecovery {
            health,
            attempts,
            quarantined_at,
            backoff_cycles: backoff_total,
            fallback: fallback_reason,
            fallback_cycles,
        }),
    }
}

/// Extra image words for the per-shard rebased row-pointer copies (plus
/// per-array alignment slack).
fn shard_words(m: &CsrMatrix, tiles: usize) -> usize {
    tiles * (m.rows() + 1 + 8)
}

/// Build (but do not run) the N-tile SpMV fabric: the full problem image,
/// per-shard programs, and the banked shared memory — exactly the fabric
/// [`run_spmv_fabric`] would drive. The determinism suite uses this to
/// step the fabric manually as a per-cycle oracle and to run differential
/// schedulers over identical images without the golden-verify panic.
/// Returns the fabric plus the output vector's base address.
pub fn build_spmv_fabric(
    cfg: &SystemConfig,
    fab: FabricConfig,
    m: &CsrMatrix,
    v: &DenseVector,
) -> (Fabric, u32) {
    let mut sram = sram_for(cfg, spmv_words(m, v) + shard_words(m, fab.tiles));
    let full = layout::layout_spmv(&mut sram, m, v);
    let shards = layout::row_shards(m, fab.tiles);
    let layouts = layout::shard_layouts(&mut sram, &full, m, &shards);
    let vectorized = cfg.core.vlen > 1;
    let programs = layouts.iter().map(|sl| kernels::spmv_hht(sl, vectorized)).collect();
    let mem = SharedMemory::from_sram(sram, fab.banks, fab.tiles);
    (Fabric::new(cfg, fab, programs, mem), full.y_base)
}

/// Run HHT-assisted SpMV sharded row-block-wise across an N-tile fabric.
pub fn run_spmv_fabric(
    cfg: &SystemConfig,
    fab: FabricConfig,
    m: &CsrMatrix,
    v: &DenseVector,
) -> FabricRunOutput {
    run_spmv_fabric_inner(cfg, fab, m, v, None)
}

/// Run HHT-assisted fabric SpMV with an explicit fault schedule (replacing
/// any seed-derived plan from `cfg.fault`); the plan applies to the
/// original attempt only — failover retries always run clean.
pub fn run_spmv_fabric_with_plan(
    cfg: &SystemConfig,
    fab: FabricConfig,
    m: &CsrMatrix,
    v: &DenseVector,
    plan: FaultPlan,
) -> FabricRunOutput {
    run_spmv_fabric_inner(cfg, fab, m, v, Some(plan))
}

fn run_spmv_fabric_inner(
    cfg: &SystemConfig,
    fab: FabricConfig,
    m: &CsrMatrix,
    v: &DenseVector,
    plan: Option<FaultPlan>,
) -> FabricRunOutput {
    let gold = golden::spmv(m, v).expect("shapes validated by layout");
    let vectorized = cfg.core.vlen > 1;
    run_fabric(
        cfg,
        fab,
        "spmv_fabric",
        &gold,
        &|buf| {
            let mut sram = sram_for_in(cfg, spmv_words(m, v) + shard_words(m, fab.tiles), buf);
            let l = layout::layout_spmv(&mut sram, m, v);
            (sram, l)
        },
        m,
        &|sl| kernels::spmv_hht(sl, vectorized),
        plan,
        None,
        &mut ColdStart,
        &|cfg| run_spmv_baseline(cfg, m, v),
    )
}

/// Precompute the reusable SpMV fabric job for `fab.tiles` tiles: image,
/// layout and attempt-0 shards (see [`FabricPlan`]).
pub fn plan_spmv_fabric(
    cfg: &SystemConfig,
    fab: FabricConfig,
    m: &CsrMatrix,
    v: &DenseVector,
) -> FabricPlan {
    let mut sram = sram_for(cfg, spmv_words(m, v) + shard_words(m, fab.tiles));
    let layout = layout::layout_spmv(&mut sram, m, v);
    let (shards, _) = assign_shards(m, &[(0, m.rows())], fab.tiles);
    FabricPlan { image: sram.into_data(), layout, shards }
}

/// Run fabric SpMV from a precomputed [`FabricPlan`] through a
/// [`FabricProvider`]. With `&mut ColdStart` and a fresh plan this is
/// bit-identical to [`run_spmv_fabric`]; the serving layer passes its warm
/// pool and cached plans instead. The image is rebuilt from the plan by
/// `memcpy` each attempt, so failover re-sharding behaves exactly as on
/// the cold path.
pub fn run_spmv_fabric_planned(
    cfg: &SystemConfig,
    fab: FabricConfig,
    m: &CsrMatrix,
    v: &DenseVector,
    plan: &FabricPlan,
    provider: &mut dyn FabricProvider,
) -> FabricRunOutput {
    let gold = golden::spmv(m, v).expect("shapes validated by layout");
    let vectorized = cfg.core.vlen > 1;
    run_fabric(
        cfg,
        fab,
        "spmv_fabric",
        &gold,
        &|mut buf| {
            buf.clear();
            buf.extend_from_slice(&plan.image);
            (Sram::from_data(buf, cfg.ram_word_cycles), plan.layout)
        },
        m,
        &|sl| kernels::spmv_hht(sl, vectorized),
        None,
        Some(&plan.shards),
        provider,
        &|cfg| run_spmv_baseline(cfg, m, v),
    )
}

/// Run HHT-assisted SpMSpV (variant 1: sparse gather against dense-indexed
/// windows) sharded across an N-tile fabric.
pub fn run_spmspv_fabric_v1(
    cfg: &SystemConfig,
    fab: FabricConfig,
    m: &CsrMatrix,
    x: &SparseVector,
) -> FabricRunOutput {
    let gold = golden::spmspv(m, x).expect("shapes validated");
    run_fabric(
        cfg,
        fab,
        "spmspv_fabric_v1",
        &gold,
        &|buf| {
            let mut sram = sram_for_in(cfg, spmspv_words(m, x) + shard_words(m, fab.tiles), buf);
            let l = layout::layout_spmspv(&mut sram, m, x);
            (sram, l)
        },
        m,
        &kernels::spmspv_hht_v1,
        None,
        None,
        &mut ColdStart,
        &|cfg| run_spmspv_baseline(cfg, m, x),
    )
}

/// Precompute the reusable SpMSpV fabric job (shared by both kernel
/// variants: they run over the same image and layout).
pub fn plan_spmspv_fabric(
    cfg: &SystemConfig,
    fab: FabricConfig,
    m: &CsrMatrix,
    x: &SparseVector,
) -> FabricPlan {
    let mut sram = sram_for(cfg, spmspv_words(m, x) + shard_words(m, fab.tiles));
    let layout = layout::layout_spmspv(&mut sram, m, x);
    let (shards, _) = assign_shards(m, &[(0, m.rows())], fab.tiles);
    FabricPlan { image: sram.into_data(), layout, shards }
}

/// Run fabric SpMSpV (either variant) from a precomputed [`FabricPlan`]
/// through a [`FabricProvider`] (see [`run_spmv_fabric_planned`]).
pub fn run_spmspv_fabric_planned(
    cfg: &SystemConfig,
    fab: FabricConfig,
    m: &CsrMatrix,
    x: &SparseVector,
    variant2: bool,
    plan: &FabricPlan,
    provider: &mut dyn FabricProvider,
) -> FabricRunOutput {
    let gold = golden::spmspv(m, x).expect("shapes validated");
    let emit: &dyn Fn(&layout::ProblemLayout) -> hht_isa::Program =
        if variant2 { &kernels::spmspv_hht_v2 } else { &kernels::spmspv_hht_v1 };
    run_fabric(
        cfg,
        fab,
        if variant2 { "spmspv_fabric_v2" } else { "spmspv_fabric_v1" },
        &gold,
        &|mut buf| {
            buf.clear();
            buf.extend_from_slice(&plan.image);
            (Sram::from_data(buf, cfg.ram_word_cycles), plan.layout)
        },
        m,
        emit,
        None,
        Some(&plan.shards),
        provider,
        &|cfg| run_spmspv_baseline(cfg, m, x),
    )
}

/// Run HHT-assisted SpMSpV (variant 2: intersection in the HHT) sharded
/// across an N-tile fabric.
pub fn run_spmspv_fabric_v2(
    cfg: &SystemConfig,
    fab: FabricConfig,
    m: &CsrMatrix,
    x: &SparseVector,
) -> FabricRunOutput {
    let gold = golden::spmspv(m, x).expect("shapes validated");
    run_fabric(
        cfg,
        fab,
        "spmspv_fabric_v2",
        &gold,
        &|buf| {
            let mut sram = sram_for_in(cfg, spmspv_words(m, x) + shard_words(m, fab.tiles), buf);
            let l = layout::layout_spmspv(&mut sram, m, x);
            (sram, l)
        },
        m,
        &kernels::spmspv_hht_v2,
        None,
        None,
        &mut ColdStart,
        &|cfg| run_spmspv_baseline(cfg, m, x),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hht_sparse::generate;

    #[test]
    fn spmv_baseline_and_hht_agree_with_golden() {
        let cfg = SystemConfig::paper_default();
        let m = generate::random_csr(24, 24, 0.6, 11);
        let v = generate::random_dense_vector(24, 12);
        let base = run_spmv_baseline(&cfg, &m, &v);
        let hht = run_spmv_hht(&cfg, &m, &v);
        // Both verified against golden inside the runners; also: HHT must
        // be faster.
        assert!(
            hht.stats.cycles < base.stats.cycles,
            "HHT ({}) not faster than baseline ({})",
            hht.stats.cycles,
            base.stats.cycles
        );
    }

    #[test]
    fn spmv_scalar_interface() {
        let cfg = SystemConfig::paper_default().with_vlen(1);
        let m = generate::random_csr(16, 16, 0.5, 21);
        let v = generate::random_dense_vector(16, 22);
        let base = run_spmv_baseline(&cfg, &m, &v);
        let hht = run_spmv_hht(&cfg, &m, &v);
        assert!(hht.stats.cycles < base.stats.cycles);
    }

    #[test]
    fn spmspv_all_three_kernels_agree() {
        let cfg = SystemConfig::paper_default();
        let m = generate::random_csr(24, 24, 0.7, 31);
        let x = generate::random_sparse_vector(24, 0.7, 32);
        let base = run_spmspv_baseline(&cfg, &m, &x);
        let v1 = run_spmspv_hht_v1(&cfg, &m, &x);
        let v2 = run_spmspv_hht_v2(&cfg, &m, &x);
        assert!(v1.y.max_abs_diff(&base.y) < 1e-3);
        assert!(v2.y.max_abs_diff(&base.y) < 1e-3);
    }

    #[test]
    fn smash_run_matches_golden() {
        let cfg = SystemConfig::paper_default();
        let csr = generate::random_csr(32, 32, 0.8, 41);
        let m = SmashMatrix::from_triplets(32, 32, &csr.triplets()).unwrap();
        let v = generate::random_dense_vector(32, 42);
        let out = run_smash_spmv_hht(&cfg, &m, &v);
        assert!(out.stats.cycles > 0);
    }

    #[test]
    fn fabric_spmv_matches_golden_across_tile_counts() {
        let cfg = SystemConfig::paper_default();
        let m = generate::random_csr(48, 48, 0.6, 61);
        let v = generate::random_dense_vector(48, 62);
        let single = run_spmv_fabric(&cfg, FabricConfig::single(), &m, &v);
        for n in [2, 4] {
            let out = run_spmv_fabric(&cfg, FabricConfig::scaled(n), &m, &v);
            assert_eq!(out.stats.tiles.len(), n);
            assert!(out.y.max_abs_diff(&single.y) < 1e-3);
        }
    }

    #[test]
    fn fabric_spmspv_variants_match_golden() {
        let cfg = SystemConfig::paper_default();
        let m = generate::random_csr(32, 32, 0.7, 71);
        let x = generate::random_sparse_vector(32, 0.7, 72);
        // Verified against golden inside the runners.
        let v1 = run_spmspv_fabric_v1(&cfg, FabricConfig::scaled(2), &m, &x);
        let v2 = run_spmspv_fabric_v2(&cfg, FabricConfig::scaled(2), &m, &x);
        assert!(v1.y.max_abs_diff(&v2.y) < 1e-3);
    }

    #[test]
    fn empty_matrix_runs() {
        let cfg = SystemConfig::paper_default();
        let m = generate::random_csr(8, 8, 1.0, 51);
        let v = generate::random_dense_vector(8, 52);
        let base = run_spmv_baseline(&cfg, &m, &v);
        assert!(base.y.as_slice().iter().all(|x| *x == 0.0));
        let hht = run_spmv_hht(&cfg, &m, &v);
        assert!(hht.y.as_slice().iter().all(|x| *x == 0.0));
    }
}
