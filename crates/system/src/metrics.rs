//! Unified metrics export.
//!
//! Every component keeps its own counters ([`CoreStats`], [`HhtStats`] with
//! its nested engine stats, [`SramStats`], and the per-cause
//! [`StallBreakdown`]); this module gathers them into one serializable
//! tree, [`MetricsSnapshot`], together with the derived Fig. 6/7 wait
//! fractions. The snapshot is *self-auditing*: [`MetricsSnapshot::validate`]
//! checks that the fine-grained stall histogram sums exactly to the coarse
//! wait counters the figures are computed from.

use crate::system::{FaultSummary, SystemStats};
use hht_accel::HhtStats;
use hht_mem::SramStats;
use hht_obs::{ObsDrops, StallBreakdown};
use hht_sim::CoreStats;
use serde::{Deserialize, Serialize};

/// One run's complete measurement record as a single serde tree.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Total execution cycles.
    pub cycles: u64,
    /// CPU counters (including the core-side stall attribution).
    pub core: CoreStats,
    /// HHT counters (front-end and nested back-end engine).
    pub hht: HhtStats,
    /// SRAM port counters.
    pub sram: SramStats,
    /// Unified per-cause stall histogram: the core's causes plus the
    /// back-end's output-full cycles, one tree for the whole machine.
    pub stalls: StallBreakdown,
    /// Fraction of cycles the CPU waited on the HHT (Figs. 6/7).
    pub cpu_wait_frac: f64,
    /// Fraction of cycles the HHT back-end was throttled by full buffers.
    pub hht_wait_frac: f64,
    /// Fault-injection and recovery counters (all zero on a clean run).
    pub faults: FaultSummary,
    /// Ring-buffer eviction counters for the observability sinks: non-zero
    /// values mean the exported event timeline is *incomplete* and any
    /// trace-derived analysis should be treated as sampled. Zero in
    /// [`MetricsSnapshot::from_stats`]; attach the run's real counters with
    /// [`MetricsSnapshot::with_drops`].
    pub dropped: ObsDrops,
}

impl MetricsSnapshot {
    /// Assemble the snapshot from a run's [`SystemStats`].
    pub fn from_stats(s: &SystemStats) -> Self {
        let mut stalls = s.core.stalls;
        stalls.output_full = s.hht.engine.stall_out_full;
        MetricsSnapshot {
            cycles: s.cycles,
            core: s.core,
            hht: s.hht,
            sram: s.sram,
            stalls,
            cpu_wait_frac: s.cpu_wait_frac(),
            hht_wait_frac: s.hht_wait_frac(),
            faults: s.faults,
            dropped: ObsDrops::default(),
        }
    }

    /// Attach the run's ring-buffer drop counters (see
    /// [`crate::runner::RunOutput::dropped`]).
    pub fn with_drops(mut self, dropped: ObsDrops) -> Self {
        self.dropped = dropped;
        self
    }

    /// Check the exact-sum invariants between the per-cause histogram and
    /// the coarse counters:
    ///
    /// - `stalls.hht_window_empty + stalls.hht_header_wait` ==
    ///   `core.hht_wait_cycles` (the CPU-waiting-for-HHT counter);
    /// - `stalls.arbitration_loss` == `core.mem_port_stall_cycles`;
    /// - `stalls.output_full` == `hht.engine.stall_out_full`;
    /// - `sram.cpu_conflicts` == `core.mem_port_stall_cycles` (every port
    ///   rejection the memory charged to the CPU is a stall the core saw),
    ///   with `sram.cpu_cross_tile_conflicts` a subset of it.
    pub fn validate(&self) -> Result<(), String> {
        if self.stalls.cpu_hht_wait() != self.core.hht_wait_cycles {
            return Err(format!(
                "hht_window_empty + hht_header_wait = {} != hht_wait_cycles = {}",
                self.stalls.cpu_hht_wait(),
                self.core.hht_wait_cycles
            ));
        }
        if self.stalls.arbitration_loss != self.core.mem_port_stall_cycles {
            return Err(format!(
                "arbitration_loss = {} != mem_port_stall_cycles = {}",
                self.stalls.arbitration_loss, self.core.mem_port_stall_cycles
            ));
        }
        if self.stalls.output_full != self.hht.engine.stall_out_full {
            return Err(format!(
                "output_full = {} != stall_out_full = {}",
                self.stalls.output_full, self.hht.engine.stall_out_full
            ));
        }
        if self.sram.cpu_conflicts != self.core.mem_port_stall_cycles {
            return Err(format!(
                "sram.cpu_conflicts = {} != mem_port_stall_cycles = {}",
                self.sram.cpu_conflicts, self.core.mem_port_stall_cycles
            ));
        }
        if self.sram.cpu_cross_tile_conflicts > self.sram.cpu_conflicts {
            return Err(format!(
                "cpu_cross_tile_conflicts = {} exceeds cpu_conflicts = {}",
                self.sram.cpu_cross_tile_conflicts, self.sram.cpu_conflicts
            ));
        }
        Ok(())
    }

    /// Render as pretty JSON (deterministic field order).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot fields are always finite")
    }
}

impl SystemStats {
    /// The unified, validated-by-construction metrics tree for this run.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot::from_stats(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::runner;
    use hht_sparse::generate;

    #[test]
    fn snapshot_validates_and_round_trips() {
        let cfg = SystemConfig::paper_default();
        let m = generate::random_csr(24, 24, 0.6, 5);
        let v = generate::random_dense_vector(24, 6);
        let out = runner::run_spmv_hht(&cfg, &m, &v);
        let snap = out.stats.snapshot();
        snap.validate().unwrap();
        // The HHT run must actually have attributed CPU waits.
        assert!(snap.stalls.cpu_hht_wait() > 0 || snap.core.hht_wait_cycles == 0);
        let json = snap.to_json();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn validate_catches_a_broken_histogram() {
        let cfg = SystemConfig::paper_default();
        let m = generate::random_csr(16, 16, 0.5, 9);
        let v = generate::random_dense_vector(16, 10);
        let mut snap = runner::run_spmv_hht(&cfg, &m, &v).stats.snapshot();
        snap.stalls.hht_window_empty += 1;
        assert!(snap.validate().is_err());
    }
}
