//! SRAM image construction for a problem instance.
//!
//! Software (the host side of the reproduction) lays out the CSR arrays,
//! the vector(s) and the output array in the simulated 1 MB SRAM; the
//! resulting [`ProblemLayout`] carries the base addresses the kernels and
//! the HHT MMR programming need.

use hht_mem::Sram;
use hht_sparse::{CsrMatrix, DenseMatrix, DenseVector, SmashMatrix, SparseFormat, SparseVector};

/// Base addresses of every array placed in SRAM for one problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProblemLayout {
    /// CSR row-pointer array (`rows() + 1` words).
    pub rows_base: u32,
    /// CSR column-index array (`nnz` words).
    pub cols_base: u32,
    /// CSR value array (`nnz` words). For SMASH problems this is the packed
    /// value array.
    pub vals_base: u32,
    /// Dense vector (SpMV) base; 0 when absent.
    pub v_base: u32,
    /// Sparse vector index array base; 0 when absent.
    pub x_idx_base: u32,
    /// Sparse vector value array base; 0 when absent.
    pub x_vals_base: u32,
    /// Output vector `y` base.
    pub y_base: u32,
    /// SMASH level-0 bitmap base; 0 when absent.
    pub smash_l0_base: u32,
    /// SMASH level-1 bitmap base; 0 when no summary level.
    pub smash_l1_base: u32,
    /// Matrix shape and counts.
    pub num_rows: u32,
    /// Number of matrix columns.
    pub num_cols: u32,
    /// Matrix stored non-zero count.
    pub m_nnz: u32,
    /// Sparse vector non-zero count (0 for dense-vector problems).
    pub x_nnz: u32,
}

/// Incremental SRAM image builder with word-aligned bump allocation.
#[derive(Debug)]
pub struct ImageBuilder<'a> {
    sram: &'a mut Sram,
    cursor: u32,
}

impl<'a> ImageBuilder<'a> {
    /// Start allocating at `base` (must be word-aligned).
    pub fn new(sram: &'a mut Sram, base: u32) -> Self {
        assert_eq!(base % 4, 0, "image base must be word aligned");
        ImageBuilder { sram, cursor: base }
    }

    /// Next free address.
    pub fn cursor(&self) -> u32 {
        self.cursor
    }

    fn reserve(&mut self, words: usize) -> u32 {
        let addr = self.cursor;
        let bytes = 4 * words as u32;
        assert!(
            addr + bytes <= self.sram.size(),
            "problem does not fit in SRAM ({} bytes needed past {addr:#x})",
            bytes
        );
        self.cursor += bytes;
        // Keep arrays 32-byte separated to mimic alignment padding.
        self.cursor = (self.cursor + 31) & !31;
        addr
    }

    /// Place a `u32` array, returning its base address.
    pub fn place_words(&mut self, words: &[u32]) -> u32 {
        let addr = self.reserve(words.len().max(1));
        self.sram.load_words(addr, words);
        addr
    }

    /// Place an `f32` array, returning its base address.
    pub fn place_f32s(&mut self, values: &[f32]) -> u32 {
        let addr = self.reserve(values.len().max(1));
        self.sram.load_f32s(addr, values);
        addr
    }

    /// Reserve a zeroed output array of `words` words.
    pub fn place_output(&mut self, words: usize) -> u32 {
        self.reserve(words.max(1))
    }
}

/// Lay out a CSR SpMV problem (`y = M * v`, dense `v`).
pub fn layout_spmv(sram: &mut Sram, m: &CsrMatrix, v: &DenseVector) -> ProblemLayout {
    assert_eq!(m.cols(), v.len(), "matrix/vector width mismatch");
    let mut b = ImageBuilder::new(sram, 0x100);
    let rows_base = b.place_words(m.row_ptr());
    let cols_base = b.place_words(m.col_indices());
    let vals_base = b.place_f32s(m.values());
    let v_base = b.place_f32s(v.as_slice());
    let y_base = b.place_output(m.rows());
    ProblemLayout {
        rows_base,
        cols_base,
        vals_base,
        v_base,
        x_idx_base: 0,
        x_vals_base: 0,
        y_base,
        smash_l0_base: 0,
        smash_l1_base: 0,
        num_rows: m.rows() as u32,
        num_cols: m.cols() as u32,
        m_nnz: m.nnz() as u32,
        x_nnz: 0,
    }
}

/// Lay out a CSR SpMSpV problem (`y = M * x`, sparse `x`).
pub fn layout_spmspv(sram: &mut Sram, m: &CsrMatrix, x: &SparseVector) -> ProblemLayout {
    assert_eq!(m.cols(), x.len(), "matrix/vector width mismatch");
    let mut b = ImageBuilder::new(sram, 0x100);
    let rows_base = b.place_words(m.row_ptr());
    let cols_base = b.place_words(m.col_indices());
    let vals_base = b.place_f32s(m.values());
    let x_idx_base = b.place_words(x.indices());
    let x_vals_base = b.place_f32s(x.values());
    let y_base = b.place_output(m.rows());
    ProblemLayout {
        rows_base,
        cols_base,
        vals_base,
        v_base: 0,
        x_idx_base,
        x_vals_base,
        y_base,
        smash_l0_base: 0,
        smash_l1_base: 0,
        num_rows: m.rows() as u32,
        num_cols: m.cols() as u32,
        m_nnz: m.nnz() as u32,
        x_nnz: x.nnz() as u32,
    }
}

/// Lay out a *dense* matrix-vector problem (`vals_base` holds the
/// row-major dense matrix) — the expansion baseline of the §6 discussion
/// ("at lower sparsities, such expansion can improve performance").
pub fn layout_dense(sram: &mut Sram, m: &DenseMatrix, v: &DenseVector) -> ProblemLayout {
    assert_eq!(m.cols(), v.len(), "matrix/vector width mismatch");
    let mut b = ImageBuilder::new(sram, 0x100);
    let vals_base = b.place_f32s(m.as_slice());
    let v_base = b.place_f32s(v.as_slice());
    let y_base = b.place_output(m.rows());
    ProblemLayout {
        rows_base: 0,
        cols_base: 0,
        vals_base,
        v_base,
        x_idx_base: 0,
        x_vals_base: 0,
        y_base,
        smash_l0_base: 0,
        smash_l1_base: 0,
        num_rows: m.rows() as u32,
        num_cols: m.cols() as u32,
        m_nnz: (m.rows() * m.cols()) as u32,
        x_nnz: 0,
    }
}

/// Lay out a SMASH SpMV problem: hierarchical bitmaps + packed values +
/// dense vector.
pub fn layout_smash_spmv(sram: &mut Sram, m: &SmashMatrix, v: &DenseVector) -> ProblemLayout {
    assert_eq!(m.cols(), v.len(), "matrix/vector width mismatch");
    let mut b = ImageBuilder::new(sram, 0x100);
    let smash_l0_base = b.place_words(m.level(0));
    let smash_l1_base = if m.num_levels() > 1 { b.place_words(m.level(1)) } else { 0 };
    let vals_base = b.place_f32s(m.values());
    let v_base = b.place_f32s(v.as_slice());
    let y_base = b.place_output(m.rows());
    ProblemLayout {
        rows_base: 0,
        cols_base: 0,
        vals_base,
        v_base,
        x_idx_base: 0,
        x_vals_base: 0,
        y_base,
        smash_l0_base,
        smash_l1_base,
        num_rows: m.rows() as u32,
        num_cols: m.cols() as u32,
        m_nnz: m.nnz() as u32,
        x_nnz: 0,
    }
}

/// Split `m`'s rows into `n` contiguous shards, balancing non-zeros (the
/// work driver for both the CPU inner loops and the HHT gather streams)
/// rather than row counts. Returns `n` half-open row ranges `(r0, r1)`
/// that partition `[0, rows)` in order; a shard can be empty when the
/// matrix has fewer (or much heavier) rows than shards.
pub fn row_shards(m: &CsrMatrix, n: usize) -> Vec<(usize, usize)> {
    row_shards_range(m, 0, m.rows(), n)
}

/// [`row_shards`] over a row *sub-range*: split `[row0, row1)` into `n`
/// contiguous shards balancing the range's non-zeros. The failover path
/// uses this to re-shard a quarantined tile's unfinished rows across the
/// surviving tiles with the same nnz-balancing rule the initial sharding
/// used. `row_shards(m, n)` is exactly `row_shards_range(m, 0, rows, n)`.
pub fn row_shards_range(m: &CsrMatrix, row0: usize, row1: usize, n: usize) -> Vec<(usize, usize)> {
    assert!(n > 0, "at least one shard");
    assert!(row0 <= row1 && row1 <= m.rows(), "shard range out of bounds");
    let ptr = m.row_ptr();
    let base = ptr[row0] as u64;
    let total = ptr[row1] as u64 - base;
    let mut out = Vec::with_capacity(n);
    let mut r0 = row0;
    for i in 0..n {
        let mut r1 = if i == n - 1 {
            row1
        } else {
            // Extend while cumulative nnz stays within this shard's even
            // share of the range total.
            let target = base + total * (i as u64 + 1) / n as u64;
            let mut r = r0;
            while r < row1 && ptr[r + 1] as u64 <= target {
                r += 1;
            }
            r
        };
        if r1 < r0 {
            r1 = r0;
        }
        out.push((r0, r1));
        r0 = r1;
    }
    out
}

/// Derive per-shard [`ProblemLayout`]s from an already-built full image.
///
/// Each shard gets its own *rebased* copy of its row-pointer slice
/// (`ptr[r0..=r1] - ptr[r0]`, placed after the main image), so both the
/// CPU kernels (which index `cols`/`vals` at `base + 4*ptr[r]`) and the
/// HHT engines (which stream `cols` from offset 0 and compare absolute
/// row-end pointers against a from-zero element cursor) see a
/// self-consistent `m_nnz`-element sub-problem. The shards *share* the
/// full image's column/value arrays (shifted to the shard's first
/// non-zero), input vector and output array (shifted to the shard's first
/// row) — row-disjoint shards write disjoint `y` words.
pub fn shard_layouts(
    sram: &mut Sram,
    l: &ProblemLayout,
    m: &CsrMatrix,
    shards: &[(usize, usize)],
) -> Vec<ProblemLayout> {
    let ptr = m.row_ptr();
    // Resume the bump allocator after the full image: every placed array
    // ends 32-byte aligned, so the first free byte is the aligned end of
    // the output array.
    let start = (l.y_base + 4 * l.num_rows + 31) & !31;
    let mut b = ImageBuilder::new(sram, start);
    shards
        .iter()
        .map(|&(r0, r1)| {
            let nnz0 = ptr[r0];
            let rebased: Vec<u32> = ptr[r0..=r1].iter().map(|p| p - nnz0).collect();
            let rows_base = b.place_words(&rebased);
            ProblemLayout {
                rows_base,
                cols_base: l.cols_base + 4 * nnz0,
                vals_base: l.vals_base + 4 * nnz0,
                y_base: l.y_base + 4 * r0 as u32,
                num_rows: (r1 - r0) as u32,
                m_nnz: ptr[r1] - nnz0,
                ..*l
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hht_sparse::generate;

    #[test]
    fn spmv_layout_places_all_arrays() {
        let mut sram = Sram::new(1 << 20, 1);
        let m = generate::random_csr(16, 16, 0.5, 1);
        let v = generate::random_dense_vector(16, 2);
        let l = layout_spmv(&mut sram, &m, &v);
        // Arrays readable back.
        assert_eq!(sram.read_u32s(l.rows_base, 17), m.row_ptr());
        assert_eq!(sram.read_u32s(l.cols_base, m.nnz()), m.col_indices());
        assert_eq!(sram.read_f32s(l.vals_base, m.nnz()), m.values());
        assert_eq!(sram.read_f32s(l.v_base, 16), v.as_slice());
        assert!(l.y_base > l.v_base);
        assert_eq!(l.m_nnz, m.nnz() as u32);
    }

    #[test]
    fn arrays_do_not_overlap() {
        let mut sram = Sram::new(1 << 20, 1);
        let m = generate::random_csr(32, 32, 0.3, 3);
        let v = generate::random_dense_vector(32, 4);
        let l = layout_spmv(&mut sram, &m, &v);
        let ends = [
            (l.rows_base, 33 * 4),
            (l.cols_base, m.nnz() * 4),
            (l.vals_base, m.nnz() * 4),
            (l.v_base, 32 * 4),
            (l.y_base, 32 * 4),
        ];
        for (i, (a, alen)) in ends.iter().enumerate() {
            for (b, blen) in ends.iter().skip(i + 1) {
                let (a0, a1) = (*a, a + *alen as u32);
                let (b0, b1) = (*b, b + *blen as u32);
                assert!(a1 <= b0 || b1 <= a0, "overlap between {a0:#x} and {b0:#x}");
            }
        }
    }

    #[test]
    fn spmspv_layout_places_vector_arrays() {
        let mut sram = Sram::new(1 << 20, 1);
        let m = generate::random_csr(16, 16, 0.5, 5);
        let x = generate::random_sparse_vector(16, 0.5, 6);
        let l = layout_spmspv(&mut sram, &m, &x);
        assert_eq!(sram.read_u32s(l.x_idx_base, x.nnz()), x.indices());
        assert_eq!(sram.read_f32s(l.x_vals_base, x.nnz()), x.values());
        assert_eq!(l.x_nnz, x.nnz() as u32);
    }

    #[test]
    fn smash_layout() {
        let mut sram = Sram::new(1 << 20, 1);
        let m = SmashMatrix::from_triplets(64, 64, &[(0, 0, 1.0), (63, 63, 2.0)]).unwrap();
        let v = generate::random_dense_vector(64, 7);
        let l = layout_smash_spmv(&mut sram, &m, &v);
        assert_ne!(l.smash_l0_base, 0);
        assert_ne!(l.smash_l1_base, 0);
        assert_eq!(sram.read_u32s(l.smash_l0_base, m.level(0).len()), m.level(0));
    }

    #[test]
    #[should_panic(expected = "fit in SRAM")]
    fn overflow_is_detected() {
        let mut sram = Sram::new(4096, 1);
        let m = generate::random_csr(64, 64, 0.1, 1);
        let v = generate::random_dense_vector(64, 2);
        let _ = layout_spmv(&mut sram, &m, &v);
    }

    #[test]
    fn row_shards_partition_all_rows() {
        for n in [1, 2, 3, 4, 8] {
            let m = generate::random_csr(61, 61, 0.7, 9);
            let shards = row_shards(&m, n);
            assert_eq!(shards.len(), n);
            assert_eq!(shards[0].0, 0);
            assert_eq!(shards[n - 1].1, m.rows());
            for w in shards.windows(2) {
                assert_eq!(w[0].1, w[1].0, "shards must be contiguous");
            }
            let nnz: usize =
                shards.iter().map(|&(r0, r1)| (m.row_ptr()[r1] - m.row_ptr()[r0]) as usize).sum();
            assert_eq!(nnz, m.nnz());
        }
    }

    #[test]
    fn row_shards_range_partitions_a_sub_range() {
        let m = generate::random_csr(61, 61, 0.7, 9);
        for (row0, row1) in [(0, 61), (10, 50), (17, 18), (30, 30)] {
            for n in [1, 2, 3, 5] {
                let shards = row_shards_range(&m, row0, row1, n);
                assert_eq!(shards.len(), n);
                assert_eq!(shards[0].0, row0);
                assert_eq!(shards[n - 1].1, row1);
                for w in shards.windows(2) {
                    assert_eq!(w[0].1, w[1].0, "shards must be contiguous");
                }
            }
        }
        // The full range reproduces row_shards exactly.
        for n in [1, 2, 4, 8] {
            assert_eq!(row_shards_range(&m, 0, 61, n), row_shards(&m, n));
        }
    }

    #[test]
    fn shard_layouts_rebase_row_pointers() {
        let mut sram = Sram::new(1 << 20, 1);
        let m = generate::random_csr(64, 64, 0.5, 5);
        let v = generate::random_dense_vector(64, 6);
        let l = layout_spmv(&mut sram, &m, &v);
        let shards = row_shards(&m, 4);
        let ls = shard_layouts(&mut sram, &l, &m, &shards);
        let ptr = m.row_ptr();
        let mut nnz = 0u32;
        let mut rows = 0u32;
        for (sl, &(r0, r1)) in ls.iter().zip(&shards) {
            // Rebased pointer slice starts at 0 and ends at the shard nnz.
            let p = sram.read_u32s(sl.rows_base, r1 - r0 + 1);
            assert_eq!(p[0], 0);
            assert_eq!(*p.last().unwrap(), sl.m_nnz);
            assert_eq!(sl.m_nnz, ptr[r1] - ptr[r0]);
            // Shifted views line up with the full arrays.
            assert_eq!(sl.cols_base, l.cols_base + 4 * ptr[r0]);
            assert_eq!(sl.vals_base, l.vals_base + 4 * ptr[r0]);
            assert_eq!(sl.y_base, l.y_base + 4 * r0 as u32);
            assert_eq!(sl.v_base, l.v_base);
            assert_eq!(sl.num_cols, l.num_cols);
            // Shard copies live past the full image.
            assert!(sl.rows_base >= l.y_base + 4 * l.num_rows);
            nnz += sl.m_nnz;
            rows += sl.num_rows;
        }
        assert_eq!(nnz, l.m_nnz);
        assert_eq!(rows, l.num_rows);
    }
}
