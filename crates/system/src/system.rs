//! The lock-step cycle loop coupling CPU, HHT and SRAM.

use crate::config::SystemConfig;
use hht_accel::{Hht, HhtStats};
use hht_isa::Program;
use hht_mem::{Sram, SramStats};
use hht_obs::{merge_events, Event, EventBus};
use hht_sim::{Core, CoreStats, RunError};
use hht_sparse::DenseVector;
use serde::{Deserialize, Serialize};

/// Everything measured in one run (§4's counters plus port statistics).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemStats {
    /// Total execution cycles.
    pub cycles: u64,
    /// CPU counters.
    pub core: CoreStats,
    /// HHT counters.
    pub hht: HhtStats,
    /// SRAM port counters.
    pub sram: SramStats,
}

impl SystemStats {
    /// Fraction of total time the CPU idled waiting for the HHT (Figs. 6/7).
    pub fn cpu_wait_frac(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.core.hht_wait_cycles as f64 / self.cycles as f64
    }

    /// Fraction of total time the HHT was throttled waiting for the CPU to
    /// free buffers.
    pub fn hht_wait_frac(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.hht.engine.stall_out_full as f64 / self.cycles as f64
    }
}

/// A CPU + HHT + SRAM instance executing one program.
pub struct System {
    core: Core,
    hht: Hht,
    sram: Sram,
    cycle: u64,
    max_cycles: u64,
}

impl System {
    /// Build a system: the SRAM must already hold the problem image. When
    /// `cfg.trace` asks for it, event buses are installed on the core, the
    /// HHT and the SRAM port (sinks never change simulated timing).
    pub fn new(cfg: &SystemConfig, program: Program, mut sram: Sram) -> Self {
        let mut core = Core::new(cfg.core, program);
        let mut hht = Hht::new(cfg.hht);
        if cfg.trace.events {
            let bus = || EventBus::with_sampling(cfg.trace.event_capacity, cfg.trace.sample_every);
            core.set_event_bus(bus());
            hht.set_event_bus(bus());
            sram.set_event_bus(bus());
        }
        if cfg.trace.instr_trace {
            core.enable_trace_with_capacity(cfg.trace.instr_trace_capacity);
        }
        System { core, hht, sram, cycle: 0, max_cycles: cfg.core.max_cycles }
    }

    /// Advance one cycle: CPU first (port priority), then the HHT.
    pub fn step(&mut self) {
        self.core.step(self.cycle, &mut self.sram, &mut self.hht);
        self.hht.step(self.cycle, &mut self.sram);
        self.cycle += 1;
    }

    /// Run to `ebreak`. Returns the collected statistics.
    ///
    /// Errors on guest faults; panics only if the watchdog expires (a
    /// kernel/HHT deadlock is a reproduction bug, not a data condition).
    pub fn run(&mut self) -> Result<SystemStats, RunError> {
        while !self.core.halted() {
            self.step();
            assert!(
                self.cycle < self.max_cycles,
                "watchdog: no ebreak after {} cycles (kernel or HHT deadlock?)",
                self.max_cycles
            );
        }
        if let Some(e) = self.core.error() {
            return Err(e);
        }
        Ok(self.stats())
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> SystemStats {
        SystemStats {
            cycles: self.cycle,
            core: self.core.stats(),
            hht: self.hht.stats(),
            sram: self.sram.stats(),
        }
    }

    /// Read the output vector from SRAM after a run.
    pub fn read_output(&self, y_base: u32, n: usize) -> DenseVector {
        DenseVector::from(self.sram.read_f32s(y_base, n))
    }

    /// Borrow the memory (for test inspection).
    pub fn sram(&self) -> &Sram {
        &self.sram
    }

    /// Borrow the core (for test inspection).
    pub fn core(&self) -> &Core {
        &self.core
    }

    /// Drain every component's event stream into one cycle-ordered
    /// timeline (empty when the system was built without event sinks).
    pub fn take_events(&mut self) -> Vec<Event> {
        merge_events(vec![self.core.take_events(), self.hht.take_events(), self.sram.take_events()])
    }

    /// Drain the event streams and render them as Chrome trace-event JSON
    /// (load in `chrome://tracing` or <https://ui.perfetto.dev>).
    pub fn chrome_trace_json(&mut self) -> String {
        hht_obs::chrome::chrome_trace_json(&self.take_events())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hht_isa::asm::assemble;

    #[test]
    fn trivial_program_runs() {
        let cfg = SystemConfig::paper_default();
        let sram = Sram::new(cfg.ram_size, cfg.ram_word_cycles);
        let p = assemble("li a0, 1\nebreak").unwrap();
        let mut sys = System::new(&cfg, p, sram);
        let stats = sys.run().unwrap();
        assert!(stats.cycles >= 2);
        assert_eq!(stats.core.instructions, 2);
        assert_eq!(stats.cpu_wait_frac(), 0.0);
    }

    #[test]
    fn guest_fault_is_an_error() {
        let cfg = SystemConfig::paper_default();
        let sram = Sram::new(cfg.ram_size, cfg.ram_word_cycles);
        let p = assemble("li a0, 0x50000000\nlw a1, 0(a0)\nebreak").unwrap();
        let mut sys = System::new(&cfg, p, sram);
        // 0x5000_0000 is unmapped (not RAM, not HHT windows).
        assert!(sys.run().is_err());
    }
}
