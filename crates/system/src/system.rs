//! The single-tile system: a thin wrapper over a one-tile [`Fabric`].
//!
//! Historically this module owned the lock-step cycle loop coupling CPU,
//! HHT and SRAM directly. That loop now lives in two places: the verbatim
//! pre-refactor machine is preserved as
//! [`LegacySystem`](crate::legacy::LegacySystem) (the differential-test
//! oracle), and the live implementation is the port-based
//! [`Fabric`](crate::fabric::Fabric) run with one tile over one bank —
//! a configuration proved cycle-, stats- and event-identical to the legacy
//! loop in `tests/determinism.rs`.

use crate::config::SystemConfig;
use crate::fabric::{Fabric, FabricConfig};
use hht_accel::HhtStats;
use hht_fault::FaultPlan;
use hht_isa::Program;
use hht_mem::{FabricMemory, SharedMemory, Sram, SramStats};
use hht_obs::Event;
use hht_sim::{Core, CoreStats, RunError};
use hht_sparse::DenseVector;
use serde::{Deserialize, Serialize};

/// Fault-injection and recovery counters for one run (or one fabric
/// tile). `injected`/`dropped` are filled by the fabric as plan events
/// land; `fallbacks`/`failovers`/`failed_cycles` are filled by the
/// runner's recovery policy when an accelerated run degrades.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSummary {
    /// Fault-plan events injected into the machine.
    pub injected: u64,
    /// Tile-targeted fault-plan events dropped because the target tile had
    /// already halted when they came due (a frozen tile can neither apply
    /// nor observe a fault).
    pub dropped: u64,
    /// Software-fallback recoveries taken (0 or 1 per run).
    pub fallbacks: u64,
    /// Shard failovers: how many failed attempts this tile caused, each of
    /// which re-queued its unfinished row range for the surviving tiles.
    pub failovers: u64,
    /// Cycles burned by failed accelerated attempts (and their retry
    /// backoff) before recovery (already included in the total `cycles`).
    pub failed_cycles: u64,
}

/// Everything measured in one run (§4's counters plus port statistics).
///
/// In a multi-tile fabric each tile produces one of these (with `cycles`
/// being that tile's own completion cycle), and
/// [`FabricStats::merged`](crate::fabric::FabricStats::merged) folds them
/// into one record normalized by total tile-time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SystemStats {
    /// Total execution cycles.
    pub cycles: u64,
    /// CPU counters.
    pub core: CoreStats,
    /// HHT counters.
    pub hht: HhtStats,
    /// SRAM port counters.
    pub sram: SramStats,
    /// Fault-injection and recovery counters.
    pub faults: FaultSummary,
}

impl SystemStats {
    /// Fraction of total time the CPU idled waiting for the HHT (Figs. 6/7).
    pub fn cpu_wait_frac(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.core.hht_wait_cycles as f64 / self.cycles as f64
    }

    /// Fraction of total time the HHT was throttled waiting for the CPU to
    /// free buffers.
    pub fn hht_wait_frac(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.hht.engine.stall_out_full as f64 / self.cycles as f64
    }
}

/// A CPU + HHT + SRAM instance executing one program: a one-tile
/// [`Fabric`] over a single memory bank, which behaves bit-identically to
/// the pre-fabric machine.
pub struct System {
    fabric: Fabric,
}

impl System {
    /// Build a system: the SRAM must already hold the problem image. When
    /// `cfg.trace` asks for it, event buses are installed on the core, the
    /// HHT and the memory port (sinks never change simulated timing).
    pub fn new(cfg: &SystemConfig, program: Program, sram: Sram) -> Self {
        let mem = SharedMemory::from_sram(sram, 1, 1);
        System { fabric: Fabric::new(cfg, FabricConfig::single(), vec![program], mem) }
    }

    /// Install an explicit fault schedule (replacing any seed-derived one).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fabric.set_fault_plan(plan);
    }

    /// Advance one cycle: CPU first (port priority), then the HHT.
    pub fn step(&mut self) {
        self.fabric.step();
    }

    /// Run to `ebreak`. Returns the collected statistics.
    ///
    /// Errors on guest faults and on watchdog expiry
    /// ([`RunError::Watchdog`]), so a deadlocked configuration fails one
    /// experiment cell instead of aborting a whole parallel sweep.
    ///
    /// With `cfg.cycle_skip` (the default) the loop is event-driven: after
    /// each stepped cycle it asks every component for its next wake cycle
    /// and fast-forwards over spans where all of them are provably inert,
    /// charging the span to the same counters the per-cycle loop would
    /// have recorded. Cycle counts, stats and obs event streams are
    /// bit-identical between the two modes (see `tests/determinism.rs`).
    pub fn run(&mut self) -> Result<SystemStats, RunError> {
        // A single-tile fabric's error list names exactly one fault domain
        // (tile 0); unwrap it back to the plain per-run error.
        self.fabric.run().map(|s| s.tiles[0]).map_err(|e| e.first())
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> SystemStats {
        self.fabric.stats().tiles[0]
    }

    /// Read the output vector from memory after a run.
    pub fn read_output(&self, y_base: u32, n: usize) -> DenseVector {
        self.fabric.read_output(y_base, n)
    }

    /// Borrow the memory (for test inspection).
    pub fn mem(&self) -> &FabricMemory {
        self.fabric.mem()
    }

    /// Borrow the core (for test inspection).
    pub fn core(&self) -> &Core {
        self.fabric.core(0)
    }

    /// Host-side scheduler accounting: stepped vs skipped simulated cycles.
    pub fn sched_stats(&self) -> crate::fabric::SchedStats {
        self.fabric.sched_stats()
    }

    /// Move the recorded fast-forward spans out of the scheduler's sink
    /// (empty when tracing is off or the per-cycle scheduler ran).
    pub fn take_skip_spans(&mut self) -> Vec<hht_obs::SkipSpan> {
        self.fabric.take_skip_spans()
    }

    /// Ring-buffer eviction counters for every observability sink. Read
    /// *before* draining events: `take_events` resets the rings.
    pub fn obs_drops(&self) -> hht_obs::ObsDrops {
        self.fabric.obs_drops_for(0)
    }

    /// Drain every component's event stream into one cycle-ordered
    /// timeline (empty when the system was built without event sinks).
    pub fn take_events(&mut self) -> Vec<Event> {
        self.fabric.take_tile_events(0)
    }

    /// Drain the event streams and render them as Chrome trace-event JSON
    /// (load in `chrome://tracing` or <https://ui.perfetto.dev>).
    pub fn chrome_trace_json(&mut self) -> String {
        hht_obs::chrome::chrome_trace_json(&self.take_events())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hht_isa::asm::assemble;

    #[test]
    fn trivial_program_runs() {
        let cfg = SystemConfig::paper_default();
        let sram = Sram::new(cfg.ram_size, cfg.ram_word_cycles);
        let p = assemble("li a0, 1\nebreak").unwrap();
        let mut sys = System::new(&cfg, p, sram);
        let stats = sys.run().unwrap();
        assert!(stats.cycles >= 2);
        assert_eq!(stats.core.instructions, 2);
        assert_eq!(stats.cpu_wait_frac(), 0.0);
    }

    #[test]
    fn guest_fault_is_an_error() {
        let cfg = SystemConfig::paper_default();
        let sram = Sram::new(cfg.ram_size, cfg.ram_word_cycles);
        let p = assemble("li a0, 0x50000000\nlw a1, 0(a0)\nebreak").unwrap();
        let mut sys = System::new(&cfg, p, sram);
        // 0x5000_0000 is unmapped (not RAM, not HHT windows).
        assert!(sys.run().is_err());
    }
}
